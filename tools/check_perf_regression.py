#!/usr/bin/env python
"""Kernel perf-regression gate against the committed baseline.

Re-times the native kernels with the same protocol as
``benchmarks/bench_kernels_measured.py`` (best-of-reps wall clock on a
64k-row TI operator, Table-I minimum-traffic bytes -> GB/s) and
compares against the committed ``benchmarks/results/BENCH_kernels.json``.
Exit 1 if any native stage's throughput regressed by more than
``--max-regress`` (default 15%).

Because CI machines differ from the host that produced the baseline,
the default comparison is *normalized*: each backend's GB/s is divided
by the numpy GB/s of the same (stage, format) measured in the same run,
so host speed cancels and the gate tracks the native kernels' advantage
over the numpy reference.  ``--absolute`` compares raw GB/s instead
(meaningful only on the baseline host).

Usage::

    PYTHONPATH=src python tools/check_perf_regression.py [--max-regress 0.15]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

BASELINE = Path(__file__).resolve().parents[1] / (
    "benchmarks/results/BENCH_kernels.json"
)
SIMD_BASELINE = Path(__file__).resolve().parents[1] / (
    "benchmarks/results/BENCH_simd.json"
)


def _vectors(n, r, seed=1):
    import numpy as np

    from repro.util.constants import DTYPE

    rng = np.random.default_rng(seed)
    v = np.ascontiguousarray(
        rng.normal(size=(n, r)) + 1j * rng.normal(size=(n, r))
    ).astype(DTYPE)
    w = np.ascontiguousarray(
        rng.normal(size=(n, r)) + 1j * rng.normal(size=(n, r))
    ).astype(DTYPE)
    return v, w


def _time_backend_step(bk, A, scale, stage, r, reps=5, precision="fp64",
                       simd=None):
    """Best-of-reps seconds + minimum-traffic bytes (bench protocol)."""
    import numpy as np

    from repro.util.counters import PerfCounters
    from repro.util.precision import get_precision

    prec = get_precision(precision)
    n = A.n_rows
    plan = bk.plan(A, r, precision=prec, simd=simd)
    step = {
        "naive": bk.naive_step,
        "aug_spmv": bk.aug_spmv_step,
        "aug_spmmv": bk.aug_spmmv_step,
    }[stage]
    if r == 1:
        v, w = _vectors(n, 1)
        v, w = v[:, 0].copy(), w[:, 0].copy()
    else:
        v, w = _vectors(n, r)
    if prec.half_vectors:
        v, w = prec.encode(v), prec.encode(w)
    elif prec.vector_dtype != v.dtype:
        v = np.ascontiguousarray(v.astype(prec.vector_dtype))
        w = np.ascontiguousarray(w.astype(prec.vector_dtype))
    counters = PerfCounters()
    step(A, v, w, scale.a, scale.b, plan=plan, counters=counters)  # warm-up
    nbytes = counters.bytes_total
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        step(A, v, w, scale.a, scale.b, plan=plan)
        best = min(best, time.perf_counter() - t0)
    return best, nbytes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--max-regress", type=float, default=0.15,
                        help="tolerated fractional throughput loss "
                             "(default 0.15)")
    parser.add_argument("--absolute", action="store_true",
                        help="compare raw GB/s instead of normalizing by "
                             "the numpy backend measured in the same run")
    parser.add_argument("--baseline", type=Path, default=BASELINE)
    parser.add_argument("--trials", type=int, default=3,
                        help="measurement trials per kernel; the gate "
                             "takes the most favorable (default 3)")
    args = parser.parse_args(argv)

    from repro.core.scaling import SpectralScale
    from repro.physics import build_topological_insulator
    from repro.sparse.backend import get_backend
    from repro.sparse.sell import SellMatrix

    baseline = json.loads(args.baseline.read_text())
    if not baseline.get("native_available"):
        print("baseline was recorded without native kernels; nothing to gate")
        return 0
    native = get_backend("native")
    if not native.available():
        print("FAIL: native kernels unavailable on this host, cannot gate")
        return 1
    numpy_bk = get_backend("numpy")

    # the baseline problem: same lattice as the bench
    nx, nz = 40, 10
    h, _ = build_topological_insulator(nx, nx, nz)
    assert h.n_rows == baseline["n_rows"], "baseline problem size changed"
    s = SellMatrix(h, chunk_height=32, sigma=128)
    scale = SpectralScale.from_bounds(*h.gershgorin_bounds())
    mats = {"csr": h, "sell": s}

    def base_gbps(stage, fmt, backend, precision):
        for row in baseline["series"]:
            if (row["stage"], row["format"], row["backend"],
                    row.get("precision", "fp64")) == (
                    stage, fmt, backend, precision):
                return row["gbps"]
        raise KeyError((stage, fmt, backend, precision))

    failures = []
    print(f"{'kernel':>22} {'base':>8} {'now':>8} {'ratio':>7}   "
          f"({'normalized by numpy' if not args.absolute else 'raw GB/s'})")
    for row in baseline["series"]:
        if row["backend"] != "native":
            continue
        stage, fmt, r = row["stage"], row["format"], row["r"]
        precision = row.get("precision", "fp64")
        base = row["gbps"]
        if not args.absolute:
            base = base / base_gbps(stage, fmt, "numpy", precision)
        # a genuine regression shows up in every trial; timer noise on a
        # loaded host does not — gate on the most favorable of a few
        now = 0.0
        for _ in range(args.trials):
            secs, nbytes = _time_backend_step(
                native, mats[fmt], scale, stage, r, precision=precision)
            trial = nbytes / secs / 1e9
            if not args.absolute:
                np_secs, np_bytes = _time_backend_step(
                    numpy_bk, mats[fmt], scale, stage, r,
                    precision=precision)
                trial = trial / (np_bytes / np_secs / 1e9)
            now = max(now, trial)
            if now / base >= 1.0 - args.max_regress:
                break  # already within budget, no need for more trials
        ratio = now / base
        label = f"{stage}/{fmt}/{precision}"
        print(f"{label:>22} {base:8.3f} {now:8.3f} {ratio:7.3f}")
        if ratio < 1.0 - args.max_regress:
            failures.append(
                f"{label}: native throughput {ratio:.2f}x of baseline "
                f"(allowed >= {1.0 - args.max_regress:.2f}x)"
            )

    failures += _gate_simd(args, native, mats, scale)

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(f"native kernel throughput within {args.max_regress:.0%} "
          "of the committed baseline")
    return 0


def _gate_simd(args, native, mats, scale) -> list[str]:
    """Gate the vectorized kernels' speedup against BENCH_simd.json.

    The simd speedup is scalar-vs-vector measured on the *same* host in
    the same run, so host speed cancels by construction and the gate is
    meaningful on any CI runner — no numpy normalization needed.  Hosts
    whose compiler cannot target AVX2 recorded (and re-measure) ~1.0x
    fallback rows; the gate skips them via the compiled mask.
    """
    if not SIMD_BASELINE.exists():
        print("no BENCH_simd.json baseline; skipping the simd gate")
        return []
    from repro.sparse.backend.native import simd_compiled_mask

    baseline = json.loads(SIMD_BASELINE.read_text())
    if not simd_compiled_mask() & 1:
        print("simd kernels not compiled on this host; skipping the "
              "simd gate (scalar fallback is covered by the kernel gate)")
        return []

    failures = []
    print(f"\n{'simd speedup':>26} {'base':>8} {'now':>8} {'ratio':>7}   "
          f"(scalar vs vector, same host)")
    for row in baseline["series"]:
        stage, fmt, r = row["stage"], row["format"], row["r"]
        precision = row.get("precision", "fp64")
        base = row["simd_speedup"]
        if base < 1.05:
            continue  # fallback or noise-level row, nothing to protect
        now = 0.0
        for _ in range(args.trials):
            t_off, _ = _time_backend_step(
                native, mats[fmt], scale, stage, r, precision=precision,
                simd="off")
            t_on, _ = _time_backend_step(
                native, mats[fmt], scale, stage, r, precision=precision,
                simd="on")
            now = max(now, t_off / t_on)
            if now / base >= 1.0 - args.max_regress:
                break
        ratio = now / base
        label = f"{stage}/{fmt}/r{r}/{precision}"
        print(f"{label:>26} {base:8.3f} {now:8.3f} {ratio:7.3f}")
        if ratio < 1.0 - args.max_regress:
            failures.append(
                f"{label}: simd speedup {now:.2f}x vs baseline "
                f"{base:.2f}x (allowed >= "
                f"{base * (1.0 - args.max_regress):.2f}x)"
            )
    return failures


if __name__ == "__main__":
    sys.exit(main())
