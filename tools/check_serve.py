#!/usr/bin/env python
"""Exactness gate for the serving layer's traffic amortization claim.

The serve layer's promise is the paper's Eq. 5-7 applied across users:
coalescing k requests into one width-k ``aug_spmmv`` block pays the
matrix stream once, so the *measured* bytes per request must fall as
the width grows — and must equal the analytic minimum-traffic model
(:func:`repro.perf.report.expected_counters`) to the byte, exactly as
``tools/check_metrics.py`` demands of the engines themselves.

For widths 1, 2, 4, 8 this script submits that many width-1 DOS
requests to a fresh synchronous :class:`~repro.serve.KPMServer`,
asserts the requests coalesced into exactly one batch, and checks:

* measured batch bytes and flops == ``expected_counters(H, M, w)``
  (integer equality, zero tolerance),
* bytes-per-request strictly decreasing in w,
* the measured ``serve.bytes_per_request`` distribution agrees with
  the counters,
* every request's moments are bitwise identical to a solo
  ``KPMSolver.from_spec`` solve with the same pinned scale (fp64),
* the cache answers a repeat query with zero additional traffic.

Exit code 0 iff every check holds on both backends available here.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.solver import KPMSolver  # noqa: E402
from repro.perf.report import expected_counters  # noqa: E402
from repro.serve import HamiltonianSpec, KPMServer, Request  # noqa: E402
from repro.sparse.backend import get_backend  # noqa: E402
from repro.sparse.backend.native import native_available  # noqa: E402

SPEC = HamiltonianSpec("topological_insulator", {"nx": 8, "ny": 8, "nz": 4})
M = 128
WIDTHS = (1, 2, 4, 8)

failures: list[str] = []


def fail(msg: str) -> None:
    failures.append(msg)
    print(f"  FAIL {msg}")


def check_backend(backend: str) -> None:
    print(f"backend = {backend}")
    print(f"  {'width':>6} {'measured bytes':>15} {'model bytes':>13} "
          f"{'B/request':>12} {'B/F':>7}")
    per_request: list[float] = []
    solo_mu: dict[int, np.ndarray] = {}
    for w in WIDTHS:
        srv = KPMServer(max_width=w, backend=backend)
        tickets = [
            srv.submit(Request(SPEC, n_moments=M, n_vectors=1, seed=s))
            for s in range(w)
        ]
        n_batches = srv.step()
        if n_batches != 1:
            fail(f"width {w}: expected 1 batch, ran {n_batches}")
            continue
        H, _model, scale = srv.operator(SPEC)
        _batch, counters = srv.last_batches[0]
        model = expected_counters(H, M, w)
        if counters.bytes_total != model.bytes_total:
            fail(f"width {w}: measured {counters.bytes_total} B != "
                 f"model {model.bytes_total} B")
        if counters.flops != model.flops:
            fail(f"width {w}: measured {counters.flops} F != "
                 f"model {model.flops} F")
        bpr = counters.bytes_total / w
        per_request.append(bpr)
        # the obs distribution must agree with the raw counters
        dist = srv.metrics.distributions.get("serve.bytes_per_request")
        if dist is None or dist.count != 1 or dist.max != bpr:
            fail(f"width {w}: serve.bytes_per_request distribution "
                 f"disagrees with counters")
        print(f"  {w:>6} {counters.bytes_total:>15,} "
              f"{model.bytes_total:>13,} {bpr:>12,.0f} "
              f"{counters.code_balance:>7.3f}")
        # bitwise parity of every coalesced request vs its solo solve
        for s, t in enumerate(tickets):
            if s not in solo_mu:
                solver = KPMSolver.from_spec(
                    SPEC, M, 1, scale_seed=0, seed=s, backend=backend
                )
                solo_mu[s] = solver.moments()
            if not np.array_equal(t.result().moments, solo_mu[s]):
                fail(f"width {w}: seed {s} moments != solo solve (fp64 "
                     f"bitwise)")
        # a repeat query must be served from cache with zero traffic
        before = counters.bytes_total
        t_hit = srv.submit(Request(SPEC, n_moments=M, n_vectors=1, seed=0,
                                   kernel="lorentz"))
        if t_hit.via != "cache":
            fail(f"width {w}: repeat query not served from cache "
                 f"(via={t_hit.via!r})")
        if counters.bytes_total != before:
            fail(f"width {w}: cache hit charged traffic")
    falling = all(b < a for a, b in zip(per_request, per_request[1:]))
    if not falling:
        fail(f"bytes per request not strictly decreasing: {per_request}")
    else:
        print(f"  bytes/request strictly decreasing "
              f"({per_request[0]:,.0f} -> {per_request[-1]:,.0f}, "
              f"x{per_request[0] / per_request[-1]:.2f} amortization)")


def main() -> int:
    backends = ["numpy"]
    if native_available():
        backends.append("native")
    else:
        print("note: native backend unavailable, checking numpy only")
    for b in backends:
        get_backend(b)  # fail loudly if the name is wrong
        check_backend(b)
    if failures:
        print(f"\n{len(failures)} failure(s)")
        return 1
    print("\nall serve traffic checks passed (measured == Eq. 5-7 model, "
          "exactly)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
