#!/usr/bin/env python
"""Smoke-check the native kernel backend on this host.

Compiles the C kernels if needed, verifies numpy/native parity on a
small topological-insulator matrix in both sparse formats, and times
the blocked SELL kernel against the NumPy path.  Intended as the
first thing to run on a new machine (or in CI with a ``slow`` pytest
marker) before trusting ``backend='auto'`` for production runs.

Usage::

    PYTHONPATH=src python tools/check_native.py

Exit status 0 means the native backend is healthy (or cleanly absent
with ``--allow-missing``); 1 means compilation or parity failed.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np


def _fail(msg: str) -> int:
    print(f"FAIL: {msg}")
    return 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--allow-missing", action="store_true",
        help="exit 0 when no C compiler is available (auto falls back "
             "to numpy; useful for optional CI jobs)",
    )
    parser.add_argument("--nx", type=int, default=24,
                        help="timing-matrix extent (nx = ny)")
    parser.add_argument("--nz", type=int, default=8)
    args = parser.parse_args(argv)

    from repro.core.moments import compute_eta
    from repro.core.scaling import SpectralScale
    from repro.core.stochastic import make_block_vector
    from repro.physics import build_topological_insulator
    from repro.sparse import SellMatrix
    from repro.sparse.backend import get_backend
    from repro.sparse.backend.native import (
        compile_library,
        native_available,
        native_error,
    )

    # 1. compilation ----------------------------------------------------
    t0 = time.perf_counter()
    if not native_available():
        reason = native_error()
        if args.allow_missing:
            print(f"native backend unavailable ({reason}); numpy fallback "
                  "is in effect — OK (--allow-missing)")
            return 0
        return _fail(f"native backend unavailable: {reason}")
    compile_library()  # cached .so: near-instant when already built
    print(f"compile/load: ok ({time.perf_counter() - t0:.1f}s)")

    numpy_bk = get_backend("numpy")
    native_bk = get_backend("native")

    # 2. parity on a small matrix, both formats, scalar and blocked -----
    h, _ = build_topological_insulator(8, 8, 6)
    s = SellMatrix(h, chunk_height=32, sigma=128)
    scale = SpectralScale.from_bounds(*h.gershgorin_bounds())
    block = make_block_vector(h.n_rows, 8, seed=7)
    for name, m in (("csr", h), ("sell", s)):
        for engine in ("naive", "aug_spmv", "aug_spmmv"):
            ref = compute_eta(m, scale, 32, block, engine, backend=numpy_bk)
            got = compute_eta(m, scale, 32, block, engine, backend=native_bk)
            if not np.allclose(ref, got, atol=1e-9):
                return _fail(f"parity: {engine}/{name} moments diverge "
                             f"(max |d| = {np.abs(ref - got).max():.2e})")
            print(f"parity:  {engine:>9}/{name} ok "
                  f"(N = {h.n_rows:,}, R = 8, M = 32)")

    # 3. speedup on a larger blocked SELL iteration ---------------------
    h_big, _ = build_topological_insulator(args.nx, args.nx, args.nz)
    s_big = SellMatrix(h_big, chunk_height=32, sigma=128)
    scale_big = SpectralScale.from_bounds(*h_big.gershgorin_bounds())
    rng = np.random.default_rng(3)
    n, r = s_big.n_rows, 32
    V = np.ascontiguousarray(
        rng.normal(size=(n, r)) + 1j * rng.normal(size=(n, r)))
    W = np.ascontiguousarray(
        rng.normal(size=(n, r)) + 1j * rng.normal(size=(n, r)))
    times = {}
    for bk in (numpy_bk, native_bk):
        plan = bk.plan(s_big, r)
        bk.aug_spmmv_step(s_big, V, W, scale_big.a, scale_big.b, plan=plan)
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            bk.aug_spmmv_step(s_big, V, W, scale_big.a, scale_big.b,
                              plan=plan)
            best = min(best, time.perf_counter() - t0)
        times[bk.name] = best
    speedup = times["numpy"] / times["native"]
    print(f"speedup: aug_spmmv/sell R={r}, N={n:,}: "
          f"numpy {times['numpy'] * 1e3:.1f} ms, "
          f"native {times['native'] * 1e3:.1f} ms -> {speedup:.2f}x")
    if speedup < 1.0:
        return _fail("native kernels are slower than numpy on this host")
    print("native backend healthy")
    return 0


if __name__ == "__main__":
    sys.exit(main())
