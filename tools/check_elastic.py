#!/usr/bin/env python
"""End-to-end drills of elastic distributed execution.

Exercises :mod:`repro.dist.elastic` the way an operator would and
asserts the properties the design promises:

1. **Bitwise invariance** — an elastic mp run (segmented, boundary
   checkpoints, repartitioning allowed) returns fp64 moments bitwise
   identical to an uninterrupted single-partition grid-mode run, and
   the reconstructed DOS still integrates to N.
2. **Kill-a-worker drill** — a planned ``crash`` fault kills one rank
   mid-run; the driver re-partitions to the survivors (no engine
   degradation), finishes with the *same bitwise moments*, and every
   shm segment any attempt created is dead afterwards (no leaks).
3. **Slow-rank drill** — a persistent ``slow`` fault skews one rank;
   the monitor's debounce trips, a rebalance event fires, and the
   recomputed weights shift rows off the slow rank.
4. **Exact segment accounting** — the run's merged PerfCounters equal
   the sum of :func:`repro.perf.report.expected_segment_counters` over
   the segments the report says were executed, and each mp segment's
   message log matches the Eq. 5-7 halo/allreduce accounting (checked
   engine-side; here we assert the shared log's total equals the
   uninterrupted run's when the worker count never changed).

Exit status 0 when every drill passes; 1 pinpoints the first failure.
Intended for CI (the ``elastic`` leg) and as the first check after
touching the elastic driver, grid-eta mode, or segment accounting.

Usage::

    PYTHONPATH=src python tools/check_elastic.py [--grid 32]
"""

from __future__ import annotations

import argparse
import sys


def _fail(msg: str) -> int:
    print(f"FAIL: {msg}")
    return 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nx", type=int, default=6)
    parser.add_argument("--ny", type=int, default=6)
    parser.add_argument("--nz", type=int, default=4)
    parser.add_argument("--moments", type=int, default=32)
    parser.add_argument("--vectors", type=int, default=4)
    parser.add_argument("--grid", type=int, default=32)
    parser.add_argument("--workers", type=int, default=3)
    args = parser.parse_args(argv)

    import numpy as np

    from repro.core.moments import eta_to_moments
    from repro.core.reconstruct import integrate_density, reconstruct_dos
    from repro.core.scaling import lanczos_scale
    from repro.core.stochastic import make_block_vector
    from repro.dist.comm import SimWorld
    from repro.dist.elastic import RebalancePolicy, elastic_eta
    from repro.dist.kpm_parallel import distributed_eta
    from repro.dist.partition import RowPartition
    from repro.dist.shm import segment_exists
    from repro.obs import MetricsRegistry
    from repro.perf.report import expected_segment_counters
    from repro.physics import build_topological_insulator
    from repro.util.counters import PerfCounters

    h, _ = build_topological_insulator(args.nx, args.ny, args.nz)
    scale = lanczos_scale(h, seed=0)
    block = make_block_vector(h.n_rows, args.vectors, "phase", 0)
    m, r, grid, workers = args.moments, args.vectors, args.grid, args.workers
    pol = RebalancePolicy(grid=grid, interval=5)
    print(f"operator: {h.n_rows:,} rows, {h.nnz:,} nnz; M={m}, R={r}, "
          f"grid={grid}, {workers} workers")

    # Reference: uninterrupted single-partition grid-mode run.
    part1 = RowPartition.equal(h.n_rows, 1, align=grid)
    ref = distributed_eta(h, part1, scale, m, block, SimWorld(1),
                          eta_grid=grid)
    mu_ref = eta_to_moments(ref).mean(axis=0).real

    # -- drill 1: plain elastic run, bitwise vs reference --------------
    counters = PerfCounters()
    eta, rep = elastic_eta(
        h, scale, m, block, n_workers=workers, policy=pol, engine="mp",
        counters=counters,
    )
    if not np.array_equal(eta, ref):
        return _fail("elastic mp eta != uninterrupted grid-mode eta "
                     f"(max diff {np.abs(eta - ref).max():.3e})")
    exp = PerfCounters()
    for seg in rep.segments:
        exp.merge(expected_segment_counters(
            h, m, r, first_m=seg.first_m, stop_m=seg.stop_m, eta_grid=grid,
        ))
    if (counters.bytes_total != exp.bytes_total
            or counters.flops != exp.flops):
        return _fail(
            f"measured counters != segment-sum analytic "
            f"({counters.bytes_total:,}/{counters.flops:,} vs "
            f"{exp.bytes_total:,}/{exp.flops:,})"
        )
    # worker count never changed, so the shared MessageLog must equal
    # the uninterrupted P-rank run's traffic byte for byte
    partw = RowPartition.equal(h.n_rows, workers, align=grid)
    ref_world = SimWorld(workers)
    distributed_eta(h, partw, scale, m, block, ref_world, eta_grid=grid)
    if rep.log.total_bytes != ref_world.log.total_bytes:
        return _fail(
            f"elastic message log {rep.log.total_bytes:,} B != "
            f"uninterrupted {ref_world.log.total_bytes:,} B"
        )
    leaked = [nm for nm in rep.segment_names if segment_exists(nm)]
    if leaked:
        return _fail(f"leaked shm segments: {leaked}")
    print(f"drill 1 OK: {len(rep.segments)} segments, bitwise eta, exact "
          f"counters ({counters.bytes_total:,} B), log matches "
          f"uninterrupted ({rep.log.total_bytes:,} B), no shm leaks")

    # -- drill 2: kill a worker mid-run --------------------------------
    metrics = MetricsRegistry()
    eta2, rep2 = elastic_eta(
        h, scale, m, block, n_workers=workers, policy=pol, engine="mp",
        fault_plan="crash:rank=1,m=3", metrics=metrics,
    )
    if not np.array_equal(eta2, ref):
        return _fail("post-crash elastic eta != reference (survivor "
                     "repartition changed the numbers)")
    if rep2.leaves != 1 or rep2.final_n_workers != workers - 1:
        return _fail(
            f"crash drill: expected 1 leave -> {workers - 1} survivors, "
            f"got leaves={rep2.leaves}, final={rep2.final_n_workers}"
        )
    deaths = [e for e in rep2.events if e.kind == "leave" and not e.planned]
    if not deaths:
        return _fail("crash drill: no unplanned leave event recorded")
    mu2 = eta_to_moments(eta2).mean(axis=0).real
    energies, rho = reconstruct_dos(mu2, scale, n_points=256)
    total = integrate_density(energies, rho)
    if abs(total - h.n_rows) > 0.05 * h.n_rows:
        return _fail(f"post-crash DOS integral {total:.1f} far from "
                     f"N={h.n_rows}")
    leaked = [nm for nm in rep2.segment_names if segment_exists(nm)]
    if leaked:
        return _fail(f"crash drill leaked shm segments: {leaked}")
    print(f"drill 2 OK: worker death absorbed ({deaths[0].describe()}), "
          f"finished on {rep2.final_n_workers} workers, bitwise eta, DOS "
          f"integral {total:.1f}, no shm leaks")

    # -- drill 3: slow rank triggers a rebalance -----------------------
    # A deterministic per-row timer models rank 0 running 4x slow (the
    # sim path: real busy times on a shared CI box are too noisy to
    # assert on).  The monitor must debounce, fire exactly one
    # rebalance, and shift rows off the slow rank.
    slow = lambda p, nn: nn * (4.0 if p == 0 else 1.0)  # noqa: E731
    eta3, rep3 = elastic_eta(
        h, scale, m, block, n_workers=workers, policy=pol, engine="sim",
        timer=slow,
    )
    if not np.array_equal(eta3, ref):
        return _fail("rebalanced sim eta != reference")
    if rep3.rebalances < 1:
        return _fail(
            f"slow-rank drill: no rebalance fired "
            f"(imbalances: {[s.imbalance for s in rep3.segments]})"
        )
    before = rep3.segments[0]
    after = rep3.segments[-1]
    rows_before = before.offsets[1] - before.offsets[0]
    rows_after = after.offsets[1] - after.offsets[0]
    if rows_after >= rows_before:
        return _fail(
            f"slow-rank drill: rank 0 rows did not shrink "
            f"({rows_before} -> {rows_after})"
        )
    imb_first = before.imbalance
    imb_last = after.imbalance
    if imb_last is None or imb_first is None or imb_last >= imb_first:
        return _fail(
            f"slow-rank drill: imbalance did not drop "
            f"({imb_first} -> {imb_last})"
        )
    print(f"drill 3 OK: {rep3.rebalances} rebalance(s), slow rank rows "
          f"{rows_before} -> {rows_after}, imbalance "
          f"{imb_first:.3f} -> {imb_last:.3f}, bitwise eta")

    print("CHECK PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
