#!/usr/bin/env python
"""Accuracy gate for the reduced-precision execution profiles.

For every engine x backend x precision combination, computes the DOS of
a small topological-insulator lattice under the reduced profile and
compares it point-by-point against the **fp64 run of the same engine
and backend** (isolating the storage-precision effect from engine or
backend differences).  The relative L-infinity error

    err = max_E |rho_p(E) - rho_64(E)| / max_E |rho_64(E)|

must stay within the documented budget:

* ``fp32``  — 1e-4.  Values and vectors are stored in complex64 but
  every dot product accumulates in fp64 (Kahan in the native kernels,
  fp64 einsum in NumPy), so the error is dominated by fp32 rounding of
  the recurrence vectors, growing roughly with sqrt(M): observed
  ~1.5e-5 at M=64; the budget leaves a ~6x margin.
* ``fp16v`` — 1e-1.  Vectors round-trip through float16 (re,im) pairs
  once per iteration; the recurrence amplifies the 2^-11 unit roundoff
  into an observed ~2e-2 at M=64, so this profile is an *exploratory*
  tier — use it where a few-percent DOS error is acceptable (e.g.
  scouting runs before a production fp32/fp64 sweep).

The ``naive`` engine is fp64/fp32 only: its three-live-block recurrence
has no per-step decode pass, so fp16v is rejected by construction (the
gate documents rather than tests that exclusion).

Exit status 0 means every combination is within budget; 1 pinpoints the
first breach.  Intended for CI next to ``check_metrics.py``: that tool
proves the *byte accounting* of the reduced profiles, this one proves
their *numerics*.

Usage::

    PYTHONPATH=src python tools/check_accuracy.py [--backend numpy]
"""

from __future__ import annotations

import argparse
import sys

#: Relative L-infinity DOS error budget per precision profile.
BUDGETS = {"fp32": 1e-4, "fp16v": 1e-1}


def _fail(msg: str) -> int:
    print(f"FAIL: {msg}")
    return 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--backend", default="numpy",
                        choices=("numpy", "native", "auto"),
                        help="kernel backend to check (default numpy)")
    parser.add_argument("--nx", type=int, default=6)
    parser.add_argument("--ny", type=int, default=5)
    parser.add_argument("--nz", type=int, default=4)
    parser.add_argument("--moments", type=int, default=64)
    parser.add_argument("--vectors", type=int, default=4)
    args = parser.parse_args(argv)

    import numpy as np

    from repro.core.moments import compute_eta, eta_to_moments
    from repro.core.reconstruct import reconstruct_dos
    from repro.core.scaling import lanczos_scale
    from repro.core.stochastic import make_block_vector
    from repro.physics.hamiltonian import build_topological_insulator
    from repro.sparse.backend import get_backend

    try:
        backend = get_backend(args.backend)
    except Exception as exc:  # noqa: BLE001 - report and bail
        return _fail(f"backend {args.backend!r} unavailable: {exc}")
    print(f"kernel backend: {backend.name}")

    H, _ = build_topological_insulator(args.nx, args.ny, args.nz)
    scale = lanczos_scale(H, seed=1)
    m = args.moments
    block = make_block_vector(H.n_rows, args.vectors, seed=3)

    def dos(engine: str, precision: str) -> np.ndarray:
        eta = compute_eta(H, scale, m, block, engine, backend=backend,
                          precision=precision)
        mu = eta_to_moments(eta).mean(axis=0)
        _, rho = reconstruct_dos(mu.real / H.n_rows, scale, n_points=512)
        return rho

    failures = 0
    for engine in ("naive", "aug_spmv", "aug_spmmv"):
        ref = dos(engine, "fp64")
        ref_peak = float(np.max(np.abs(ref)))
        for prec, budget in BUDGETS.items():
            err = float(np.max(np.abs(dos(engine, prec) - ref))) / ref_peak
            ok = err <= budget
            status = "ok" if ok else "FAIL"
            print(f"  {status}: {engine:10s} {prec:6s} "
                  f"L_inf rel err {err:.3e} (budget {budget:.0e})")
            if not ok:
                failures += 1

    if failures:
        return _fail(f"{failures} precision/engine combination(s) over "
                     "the DOS error budget")
    print("\nall precision profiles within the DOS accuracy budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
