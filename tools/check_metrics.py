#!/usr/bin/env python
"""Cross-check measured KPM traffic against the paper's analytic models.

Runs the serial moment computation on a small topological-insulator
lattice with live :class:`~repro.util.counters.PerfCounters` and a
:class:`~repro.obs.MetricsRegistry`, then asserts:

1. the measured byte/flop totals equal
   :func:`repro.perf.report.expected_counters` (the Table-I
   ``charge_*`` minima re-charged analytically) **exactly** — for both
   sparse formats (CSR, SELL-C-sigma), every engine, every precision
   profile (fp64 / fp32 / fp16v — including the naive engine's fp16v
   decode pass), and R in {1, 8};
2. the per-kernel achieved code balance from the metrics layer equals
   the per-call model balance;
3. a JSONL trace written during one run parses back and its aggregated
   per-kernel bytes/flops agree with the counters;
4. the overlapped (task-mode) distributed schedule, whose iterations
   run as split ``aug_spmmv_int``/``aug_spmmv_bnd`` kernel pairs,
   still matches ``expected_counters(..., splits=...)`` exactly —
   byte/flop totals equal the serial minima and the per-kernel call
   attribution reflects the two phases;
5. (native backend only) the threaded kernels change neither story:
   measured traffic equals the same Eq. 5-7 analytic charge at every
   thread count, and the fp64 moments are bitwise identical across
   thread counts, for both formats;
6. (native backend only) the vectorized (``_simd``) kernels change
   neither story either: traffic stays exactly equal to the analytic
   charge under ``simd='on'``/``'off'`` for every engine, format and
   precision, and the fp64 moments are bitwise identical across the
   two kernel families.

Exit status 0 means the measurement layer and the models tell the same
story; 1 pinpoints the first divergence.  Intended for CI (fast: a few
seconds) and as the first sanity check after touching any kernel's
accounting.

Usage::

    PYTHONPATH=src python tools/check_metrics.py [--backend numpy]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path


def _fail(msg: str) -> int:
    print(f"FAIL: {msg}")
    return 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--backend", default="numpy",
                        choices=("numpy", "native", "auto"),
                        help="kernel backend to measure (default numpy)")
    parser.add_argument("--nx", type=int, default=6)
    parser.add_argument("--ny", type=int, default=5)
    parser.add_argument("--nz", type=int, default=4)
    parser.add_argument("--moments", type=int, default=16)
    args = parser.parse_args(argv)

    from repro.core.moments import compute_eta
    from repro.core.scaling import lanczos_scale
    from repro.core.stochastic import make_block_vector
    from repro.obs import MetricsRegistry, Trace, aggregate_spans, read_trace
    from repro.perf.report import (
        expected_counters,
        measured_vs_model_section,
        trace_section,
    )
    from repro.physics.hamiltonian import build_topological_insulator
    from repro.sparse.backend import get_backend
    from repro.sparse.sell import SellMatrix
    from repro.util.counters import PerfCounters

    try:
        backend = get_backend(args.backend)
    except Exception as exc:  # noqa: BLE001 - report and bail
        return _fail(f"backend {args.backend!r} unavailable: {exc}")
    print(f"kernel backend: {backend.name}")

    H, _ = build_topological_insulator(args.nx, args.ny, args.nz)
    scale = lanczos_scale(H, seed=1)
    m = args.moments
    matrices = [("csr", H), ("sell", SellMatrix(H, chunk_height=8, sigma=32))]

    # -- 1. exact counter equality, engines x formats x R x precision --
    for fmt, A in matrices:
        for r in (1, 8):
            block = make_block_vector(A.n_rows, r, seed=2)
            for engine in ("naive", "aug_spmv", "aug_spmmv"):
                for prec in ("fp64", "fp32", "fp16v"):
                    counters = PerfCounters()
                    compute_eta(A, scale, m, block, engine, counters,
                                backend=backend, precision=prec)
                    exp = expected_counters(A, m, r, engine, precision=prec)
                    label = f"{fmt} R={r} {engine} {prec}"
                    if (counters.bytes_loaded, counters.bytes_stored,
                            counters.flops) != (exp.bytes_loaded,
                                                exp.bytes_stored, exp.flops):
                        return _fail(
                            f"{label}: measured {counters.summary()} != "
                            f"analytic {exp.summary()}"
                        )
                    print(f"  ok: {label:30s} "
                          f"{counters.bytes_total:>12,} B exact")

    # -- 2. per-kernel achieved balance == model balance ---------------
    r = 8
    block = make_block_vector(H.n_rows, r, seed=2)
    counters = PerfCounters()
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "kpm_trace.jsonl"
        with Trace(trace_path) as trace:
            metrics = MetricsRegistry(trace=trace)
            compute_eta(H, scale, m, block, "aug_spmmv", counters,
                        backend=backend, metrics=metrics)
        for name in ("aug_spmmv", "spmmv"):
            nbytes = metrics.counters.get(f"bytes.{name}", 0)
            nflops = metrics.counters.get(f"flops.{name}", 0)
            if not nflops:
                return _fail(f"metrics recorded no flops for span {name!r}")
        print("\n" + measured_vs_model_section(
            H, counters, m, r, "aug_spmmv", metrics=metrics))

        # -- 3. trace round-trip agrees with the counters --------------
        records = read_trace(trace_path)
        agg = aggregate_spans(records)
        total_bytes = sum(e["bytes"] for e in agg.values())
        total_flops = sum(e["flops"] for e in agg.values())
        if total_bytes != counters.bytes_total:
            return _fail(
                f"trace bytes {total_bytes:,} != counter bytes "
                f"{counters.bytes_total:,}"
            )
        if total_flops != counters.flops:
            return _fail(
                f"trace flops {total_flops:,} != counter flops "
                f"{counters.flops:,}"
            )
        for e in agg.values():
            if e["seconds"] <= 0.0:
                return _fail("trace span with non-positive wall time")
        print(trace_section(records))
        print(f"trace round-trip: {len(records)} records, totals match "
              "counters exactly")

    # -- 4. overlap split-kernel attribution ---------------------------
    from repro.dist.comm import SimWorld
    from repro.dist.halo import partition_matrix
    from repro.dist.kpm_parallel import distributed_eta
    from repro.dist.overlap import task_split
    from repro.dist.partition import RowPartition

    n_ranks = 3
    part = RowPartition.equal(H.n_rows, n_ranks)
    dist = partition_matrix(H, part)
    splits = [task_split(blk) for blk in dist.blocks]
    print()
    for r in (1, 8):
        block = make_block_vector(H.n_rows, r, seed=2)
        for prec in ("fp64", "fp32", "fp16v"):
            counters = PerfCounters()
            distributed_eta(dist, None, scale, m, block,
                            SimWorld(n_ranks), backend=backend,
                            counters=counters, overlap=True,
                            precision=prec)
            exp = expected_counters(H, m, r, "aug_spmmv", splits=splits,
                                    precision=prec)
            label = f"overlap {n_ranks} ranks R={r} {prec}"
            if (counters.bytes_loaded, counters.bytes_stored,
                    counters.flops) != (exp.bytes_loaded,
                                        exp.bytes_stored, exp.flops):
                return _fail(
                    f"{label}: measured {counters.summary()} != "
                    f"analytic {exp.summary()}"
                )
            if counters.calls != exp.calls:
                return _fail(
                    f"{label}: call attribution {counters.calls} != "
                    f"analytic {exp.calls}"
                )
            if prec == "fp64":
                serial = PerfCounters()
                compute_eta(H, scale, m, block, "aug_spmmv", serial,
                            backend=backend)
                if (counters.bytes_loaded, counters.bytes_stored,
                        counters.flops) != (serial.bytes_loaded,
                                            serial.bytes_stored,
                                            serial.flops):
                    return _fail(
                        f"{label}: split totals drifted from the "
                        "serial minima"
                    )
            print(f"  ok: {label:30s} "
                  f"{counters.bytes_total:>12,} B exact, "
                  f"calls {dict(sorted(counters.calls.items()))}")

    # -- 5. threaded kernels: same exact traffic, bitwise moments ------
    import numpy as np

    if backend.name == "native":
        print()
        r = 4
        block = make_block_vector(H.n_rows, r, seed=2)
        for fmt, A in matrices:
            etas = []
            for t in (1, 2, 4):
                counters = PerfCounters()
                etas.append(compute_eta(A, scale, m, block, "aug_spmmv",
                                        counters, backend=backend,
                                        threads=t))
                exp = expected_counters(A, m, r, "aug_spmmv")
                label = f"threads={t} {fmt} R={r}"
                if (counters.bytes_loaded, counters.bytes_stored,
                        counters.flops) != (exp.bytes_loaded,
                                            exp.bytes_stored, exp.flops):
                    return _fail(
                        f"{label}: measured {counters.summary()} != "
                        f"analytic {exp.summary()}"
                    )
                print(f"  ok: {label:30s} "
                      f"{counters.bytes_total:>12,} B exact")
            for t, eta in zip((2, 4), etas[1:]):
                if not np.array_equal(etas[0], eta):
                    return _fail(
                        f"{fmt}: fp64 moments differ between threads=1 "
                        f"and threads={t} (bitwise contract broken)"
                    )
            print(f"  ok: {fmt} fp64 moments bitwise across "
                  "threads (1, 2, 4)")
    else:
        print("\n(threaded-kernel checks skipped: "
              f"backend {backend.name!r} has no threaded path)")

    # -- 6. simd kernels: same exact traffic, bitwise fp64 moments -----
    if backend.name == "native":
        print()
        r = 8
        block = make_block_vector(H.n_rows, r, seed=2)
        for fmt, A in matrices:
            for engine in ("naive", "aug_spmv", "aug_spmmv"):
                for prec in ("fp64", "fp32", "fp16v"):
                    etas = []
                    for simd in ("off", "on"):
                        counters = PerfCounters()
                        etas.append(compute_eta(A, scale, m, block, engine,
                                                counters, backend=backend,
                                                precision=prec, simd=simd))
                        exp = expected_counters(A, m, r, engine,
                                                precision=prec)
                        label = f"simd={simd} {fmt} {engine} {prec}"
                        if (counters.bytes_loaded, counters.bytes_stored,
                                counters.flops) != (exp.bytes_loaded,
                                                    exp.bytes_stored,
                                                    exp.flops):
                            return _fail(
                                f"{label}: measured {counters.summary()} "
                                f"!= analytic {exp.summary()}"
                            )
                    if prec == "fp64" and not np.array_equal(*etas):
                        return _fail(
                            f"{fmt} {engine}: fp64 moments differ between "
                            "simd=off and simd=on (bitwise contract broken)"
                        )
                print(f"  ok: {fmt:5s} {engine:10s} traffic exact under "
                      "simd on/off x fp64/fp32/fp16v, fp64 bitwise")
    else:
        print("\n(simd-kernel checks skipped: "
              f"backend {backend.name!r} has no vectorized path)")

    print("\nall metric/model cross-checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
