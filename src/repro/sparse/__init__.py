"""Sparse-matrix substrate: storage formats and computational kernels.

This subpackage implements, from scratch, everything the paper's KPM solver
needs from a sparse linear-algebra library:

* :mod:`repro.sparse.csr` — the CRS/CSR format (paper Section IV-A notes
  CRS ≙ SELL-1 and is the format of choice for SpMMV).
* :mod:`repro.sparse.sell` — SELL-C-σ (Kreutzer et al., SIAM J. Sci.
  Comput. 36(5), 2014), the unified CPU/GPU format, with chunk height C,
  sorting scope σ, and padding efficiency β.
* :mod:`repro.sparse.blas1` — the BLAS level-1 calls of the naive
  algorithm (paper Fig. 3) with byte/flop accounting per paper Table I.
* :mod:`repro.sparse.spmv` — sparse matrix–(multiple-)vector products.
* :mod:`repro.sparse.fused` — the paper's contribution at kernel level:
  the augmented SpMV (optimization stage 1, Fig. 4) and augmented SpMMV
  (optimization stage 2, Fig. 5) with on-the-fly shift/scale/dot fusion.
* :mod:`repro.sparse.backend` — pluggable kernel backends: the NumPy
  reference and the compiled native C kernels behind one interface.
"""

from repro.sparse.csr import CSRMatrix
from repro.sparse.sell import SellMatrix
from repro.sparse.blas1 import axpy, scal, dot, nrm2_sq
from repro.sparse.spmv import spmv, spmmv
from repro.sparse.io import read_matrix_market, write_matrix_market
from repro.sparse.stats import analyze, stencil_reuse_rows, row_length_histogram
from repro.sparse.fused import (
    naive_kpm_step,
    aug_spmv_step,
    aug_spmmv_step,
    aug_spmmv_nodot_step,
)
from repro.sparse.backend import (
    BACKEND_CHOICES,
    KernelBackend,
    KernelPlan,
    available_backends,
    get_backend,
)

__all__ = [
    "BACKEND_CHOICES",
    "KernelBackend",
    "KernelPlan",
    "available_backends",
    "get_backend",
    "CSRMatrix",
    "SellMatrix",
    "axpy",
    "scal",
    "dot",
    "nrm2_sq",
    "spmv",
    "spmmv",
    "naive_kpm_step",
    "aug_spmv_step",
    "aug_spmmv_step",
    "aug_spmmv_nodot_step",
    "read_matrix_market",
    "write_matrix_market",
    "analyze",
    "stencil_reuse_rows",
    "row_length_histogram",
]
