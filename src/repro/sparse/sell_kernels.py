"""Layout-faithful SELL-C-sigma kernels.

The fast paths in :mod:`repro.sparse.spmv` compute through an ELLPACK
view or a compiled CSR backend; those are *numerically* equivalent but do
not traverse the actual SELL-C-sigma memory layout. The kernels here do:
chunk by chunk, slot-column major within the chunk, C rows per SIMD
"instruction" — a direct transcription of the SELL kernel of the paper's
Ref. [13] with the flat ``data``/``indices``/``chunk_ptr`` arrays as the
only matrix inputs. They exist to validate the storage layout itself
(every byte of the flat arrays is consumed exactly once per traversal)
and to serve as the reference for the SELL ablation bench.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.sell import SellMatrix
from repro.util.constants import DTYPE
from repro.util.counters import NULL_COUNTERS, PerfCounters
from repro.util.errors import ShapeError
from repro.util.validation import check_block_vector, check_vector


def sell_spmv_chunked(
    A: SellMatrix,
    x: np.ndarray,
    out: np.ndarray | None = None,
    counters: PerfCounters = NULL_COUNTERS,
) -> np.ndarray:
    """SpMV traversing the flat SELL arrays chunk by chunk.

    For each chunk c of height C and length L, slots are stored
    column-major: slot (j, lane) lives at ``chunk_ptr[c] + j*C + lane``.
    The inner update ``acc[lane] += data[slot] * x[idx[slot]]`` runs
    vectorized over the C lanes — the SIMD axis of the format.
    """
    x = check_vector("x", x, A.n_cols)
    if out is None:
        out = np.empty(A.n_rows, dtype=DTYPE)
    elif out.shape != (A.n_rows,):
        raise ShapeError(f"out must have shape ({A.n_rows},)")
    c = A.chunk_height
    acc_sorted = np.zeros(A.n_chunks * c, dtype=DTYPE)
    for ci in range(A.n_chunks):
        base = int(A.chunk_ptr[ci])
        length = int(A.chunk_len[ci])
        acc = acc_sorted[ci * c : (ci + 1) * c]
        for j in range(length):
            slot = slice(base + j * c, base + (j + 1) * c)
            acc += A.data[slot] * x[A.indices[slot].astype(np.int64)]
    out[:] = acc_sorted[A.inv_perm[: A.n_rows]]
    counters.charge(
        "sell_spmv_chunked",
        loads=A.stored_slots * 20 + A.n_rows * 16,
        stores=A.n_rows * 16,
        flops=A.stored_slots * 8,
    )
    return out


def sell_spmmv_chunked(
    A: SellMatrix,
    X: np.ndarray,
    out: np.ndarray | None = None,
    counters: PerfCounters = NULL_COUNTERS,
) -> np.ndarray:
    """Block-vector SELL product over the flat chunk layout.

    The gather of one slot column reads C rows of X (R contiguous values
    each) — the block-vector generalization keeps the matrix traversal
    identical and widens only the vector axis, exactly the property the
    paper's stage-2 kernel exploits.
    """
    X = check_block_vector("X", X, A.n_cols)
    r = X.shape[1]
    if out is None:
        out = np.empty((A.n_rows, r), dtype=DTYPE)
    elif out.shape != (A.n_rows, r):
        raise ShapeError(f"out must have shape ({A.n_rows}, {r})")
    c = A.chunk_height
    acc_sorted = np.zeros((A.n_chunks * c, r), dtype=DTYPE)
    for ci in range(A.n_chunks):
        base = int(A.chunk_ptr[ci])
        length = int(A.chunk_len[ci])
        acc = acc_sorted[ci * c : (ci + 1) * c]
        for j in range(length):
            slot = slice(base + j * c, base + (j + 1) * c)
            acc += (
                A.data[slot, None]
                * X[A.indices[slot].astype(np.int64), :]
            )
    out[:] = acc_sorted[A.inv_perm[: A.n_rows], :]
    counters.charge(
        "sell_spmmv_chunked",
        loads=A.stored_slots * 20 + r * A.n_rows * 16,
        stores=r * A.n_rows * 16,
        flops=r * A.stored_slots * 8,
    )
    return out


def validate_layout(A: SellMatrix) -> None:
    """Structural audit of the flat SELL arrays.

    Checks every invariant the kernels rely on; raises ``ShapeError`` on
    the first violation. Used by tests and available to users ingesting
    externally produced SELL data.
    """
    c = A.chunk_height
    if A.chunk_ptr.shape != (A.n_chunks + 1,):
        raise ShapeError("chunk_ptr length must be n_chunks + 1")
    if A.chunk_ptr[0] != 0:
        raise ShapeError("chunk_ptr must start at 0")
    widths = np.diff(A.chunk_ptr)
    if np.any(widths != A.chunk_len * c):
        raise ShapeError("chunk_ptr increments must equal chunk_len * C")
    if A.chunk_ptr[-1] != A.data.shape[0] or A.data.shape != A.indices.shape:
        raise ShapeError("flat arrays must cover exactly the stored slots")
    if A.indices.size and (
        A.indices.min() < 0 or int(A.indices.max()) >= A.n_cols
    ):
        raise ShapeError("slot column index out of range")
    nnz_seen = int(np.count_nonzero(A.data))
    if nnz_seen > A.nnz:
        raise ShapeError("more nonzero slots than recorded nnz")
