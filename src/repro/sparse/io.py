"""Matrix import/export: MatrixMarket coordinate format.

Downstream users of the original GHOST library feed matrices from disk;
this module provides the same capability with the standard MatrixMarket
(.mtx) exchange format — enough to round-trip every matrix this package
produces (complex/real general/hermitian/symmetric, coordinate layout).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.util.errors import FormatError

_FIELDS = {"real", "complex", "integer", "pattern"}
_SYMMETRIES = {"general", "symmetric", "hermitian", "skew-symmetric"}


def write_matrix_market(
    A: CSRMatrix,
    path: str | Path,
    *,
    symmetry: str = "general",
    comment: str = "",
) -> None:
    """Write ``A`` in MatrixMarket coordinate format.

    ``symmetry='hermitian'`` stores only the lower triangle (including
    the diagonal) and is only valid for Hermitian matrices — the usual
    compact form for the TI Hamiltonian.
    """
    if symmetry not in ("general", "hermitian", "symmetric"):
        raise ValueError(f"unsupported symmetry {symmetry!r}")
    rows = np.repeat(np.arange(A.n_rows), A.nnz_per_row)
    cols = A.indices.astype(np.int64)
    vals = A.data
    if symmetry in ("hermitian", "symmetric"):
        if A.n_rows != A.n_cols:
            raise FormatError(f"{symmetry} output requires a square matrix")
        keep = rows >= cols
        rows, cols, vals = rows[keep], cols[keep], vals[keep]
    is_complex = bool(np.abs(vals.imag).max()) if vals.size else False
    field = "complex" if is_complex else "real"
    path = Path(path)
    with path.open("w") as fh:
        fh.write(f"%%MatrixMarket matrix coordinate {field} {symmetry}\n")
        if comment:
            for line in comment.splitlines():
                fh.write(f"% {line}\n")
        fh.write(f"{A.n_rows} {A.n_cols} {rows.size}\n")
        if is_complex:
            for r, c, v in zip(rows.tolist(), cols.tolist(), vals):
                fh.write(f"{r + 1} {c + 1} {v.real:.17g} {v.imag:.17g}\n")
        else:
            for r, c, v in zip(rows.tolist(), cols.tolist(), vals.real):
                fh.write(f"{r + 1} {c + 1} {v:.17g}\n")


def read_matrix_market(path: str | Path) -> CSRMatrix:
    """Read a MatrixMarket coordinate file into a :class:`CSRMatrix`.

    Symmetric/Hermitian/skew-symmetric storage is expanded to the full
    matrix; ``pattern`` entries become 1.0.
    """
    path = Path(path)
    with path.open() as fh:
        header = fh.readline()
        parts = header.strip().split()
        if (
            len(parts) != 5
            or parts[0] != "%%MatrixMarket"
            or parts[1].lower() != "matrix"
            or parts[2].lower() != "coordinate"
        ):
            raise FormatError(f"not a MatrixMarket coordinate file: {header!r}")
        field = parts[3].lower()
        symmetry = parts[4].lower()
        if field not in _FIELDS:
            raise FormatError(f"unknown field {field!r}")
        if symmetry not in _SYMMETRIES:
            raise FormatError(f"unknown symmetry {symmetry!r}")

        line = fh.readline()
        while line.startswith("%") or not line.strip():
            line = fh.readline()
        try:
            n_rows, n_cols, nnz = (int(t) for t in line.split())
        except ValueError:
            raise FormatError(f"bad size line: {line!r}") from None

        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=np.complex128)
        for i in range(nnz):
            toks = fh.readline().split()
            if len(toks) < 2:
                raise FormatError(f"truncated file at entry {i}")
            rows[i] = int(toks[0]) - 1
            cols[i] = int(toks[1]) - 1
            if field == "pattern":
                vals[i] = 1.0
            elif field == "complex":
                vals[i] = float(toks[2]) + 1j * float(toks[3])
            else:
                vals[i] = float(toks[2])

    if symmetry != "general":
        off = rows != cols
        mr, mc, mv = cols[off], rows[off], vals[off]
        if symmetry == "hermitian":
            mv = np.conj(mv)
        elif symmetry == "skew-symmetric":
            mv = -mv
        rows = np.concatenate([rows, mr])
        cols = np.concatenate([cols, mc])
        vals = np.concatenate([vals, mv])
    return CSRMatrix.from_coo(rows, cols, vals, (n_rows, n_cols),
                              sum_duplicates=False)
