"""The paper's kernel-level contribution: augmented (fused) SpMV/SpMMV.

Three inner-iteration kernels, one per optimization stage:

* :func:`naive_kpm_step` — paper Fig. 3: one SpMV plus five BLAS-1 calls,
  13 N S_d of vector traffic per iteration (Table I).
* :func:`aug_spmv_step` — paper Fig. 4, optimization stage 1: shift,
  scale, recombination, and both scalar products fused into one kernel;
  vector traffic down to 3 N S_d.
* :func:`aug_spmmv_step` — paper Fig. 5, optimization stage 2: the
  augmented SpMMV over a row-major block vector of width R; the matrix is
  streamed once per iteration instead of once per (iteration, vector).

All kernels compute, in the storage of ``w``/``W``,

    w_new = 2 a (H - b 1) v - w                                (Eq. (3))

and return the two KPM scalar products of the iteration,

    eta_even = <v|v>,     eta_odd = <w_new|v>.

The caller swaps the roles of ``v`` and ``w`` afterwards (the paper's
"swap" is likewise just a pointer exchange).

These are the *NumPy* implementations: every array pass is in-place into
caller-provided scratch (zero per-iteration allocation — see the
workspace plans in :mod:`repro.sparse.backend`), but true single-pass
fusion needs compiled code; the native backend
(:mod:`repro.sparse.backend.native_backend`) provides exactly that with
identical accounting.

For the distributed driver the block kernels accept a *rectangular*
input: ``V`` may have ``A.n_cols`` rows (local + halo columns) while
``W`` has ``A.n_rows`` rows; the update and both dot products then run
over the first ``n_rows`` rows of ``V`` — each rank's partial dots.
"""

from __future__ import annotations

import numpy as np

from repro.obs import NULL_METRICS, MetricsRegistry
from repro.sparse.blas1 import axpy, dot, nrm2_sq, scal
from repro.sparse.csr import CSRMatrix
from repro.sparse.sell import SellMatrix
from repro.sparse.spmv import spmv, spmmv
from repro.util.constants import DTYPE, F_ADD, F_MUL, S_D, S_I
from repro.util.counters import NULL_COUNTERS, PerfCounters
from repro.util.validation import check_block_vector, check_vector

#: Per-row flops of one full KPM inner iteration beyond the SpMV part:
#: the paper's 7 F_a/2 + 9 F_m/2 (Table I, "KPM" row).
_ROW_FLOPS = 7 * F_ADD // 2 + 9 * F_MUL // 2


def _slots(A) -> int:
    """Streamed matrix slots: nnz for CSR, padded slots for SELL."""
    return A.stored_slots if isinstance(A, SellMatrix) else A.nnz


def charge_aug_spmv(A, counters: PerfCounters) -> None:
    """Table-I accounting of one augmented SpMV call (any backend)."""
    n = A.n_rows
    slots = _slots(A)
    counters.charge(
        "aug_spmv",
        loads=slots * (S_D + S_I) + 2 * n * S_D,
        stores=n * S_D,
        flops=slots * (F_ADD + F_MUL) + n * _ROW_FLOPS,
    )


def charge_aug_spmmv(A, r: int, counters: PerfCounters) -> None:
    """Table-I accounting of one augmented SpMMV call (any backend)."""
    n = A.n_rows
    slots = _slots(A)
    counters.charge(
        "aug_spmmv",
        loads=slots * (S_D + S_I) + 2 * r * n * S_D,
        stores=r * n * S_D,
        flops=r * (slots * (F_ADD + F_MUL) + n * _ROW_FLOPS),
    )


def charge_aug_spmv_part(
    n_rows: int, slots: int, counters: PerfCounters, name: str
) -> None:
    """Table-I charge of one *phase* of a split augmented SpMV.

    Linear in (rows, slots): charging the interior phase with
    ``(n_int, nnz_int)`` and the boundary phase with ``(n_bnd, nnz_bnd)``
    sums to exactly :func:`charge_aug_spmv` of the whole matrix, so the
    split kernels keep the measured == analytic invariant while the
    per-kernel attribution reflects the two phases.
    """
    counters.charge(
        name,
        loads=slots * (S_D + S_I) + 2 * n_rows * S_D,
        stores=n_rows * S_D,
        flops=slots * (F_ADD + F_MUL) + n_rows * _ROW_FLOPS,
    )


def charge_aug_spmmv_part(
    n_rows: int, slots: int, r: int, counters: PerfCounters, name: str
) -> None:
    """Table-I charge of one phase of a split augmented SpMMV (see
    :func:`charge_aug_spmv_part` for the exact-sum property)."""
    counters.charge(
        name,
        loads=slots * (S_D + S_I) + 2 * r * n_rows * S_D,
        stores=r * n_rows * S_D,
        flops=r * (slots * (F_ADD + F_MUL) + n_rows * _ROW_FLOPS),
    )


def _recombine(W, U, V, a: float, b: float) -> None:
    """In-place ``W <- 2a U - 2ab V - W`` with zero temporaries.

    ``U`` is consumed as workspace (it holds the SpMV result on entry and
    garbage on exit) — five in-place passes, no allocation.
    """
    two_a = 2.0 * a
    W *= -1.0
    U *= two_a
    W += U
    np.multiply(V, two_a * b, out=U)
    W -= U


def _col_dots(V: np.ndarray, W: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Column-wise ``<V|V>`` (real) and ``<W|V>`` without (N, R) temporaries.

    Works on the real/imaginary views so no conjugated copy of the block
    is ever materialized; only the (R,) outputs are allocated.
    """
    vr, vi = V.real, V.imag
    wr, wi = W.real, W.imag
    eta_even = np.einsum("nr,nr->r", vr, vr) + np.einsum("nr,nr->r", vi, vi)
    re = np.einsum("nr,nr->r", wr, vr) + np.einsum("nr,nr->r", wi, vi)
    im = np.einsum("nr,nr->r", wr, vi) - np.einsum("nr,nr->r", wi, vr)
    return eta_even, re + 1j * im


def _check_block_pair(A, V: np.ndarray, W: np.ndarray):
    """Validate the (possibly rectangular) V/W pair; returns (V, W, r)."""
    V = check_block_vector("V", V, A.n_cols)
    W = check_block_vector("W", W, A.n_rows, V.shape[1])
    return V, W, V.shape[1]


def naive_kpm_step(
    A: CSRMatrix | SellMatrix,
    v: np.ndarray,
    w: np.ndarray,
    a: float,
    b: float,
    scratch: np.ndarray | None = None,
    counters: PerfCounters = NULL_COUNTERS,
    scratch2: np.ndarray | None = None,
    metrics: MetricsRegistry = NULL_METRICS,
) -> tuple[float, complex]:
    """One inner iteration of the *naive* algorithm (paper Fig. 3).

    Every operation is a separate library call with its own pass over the
    vectors::

        u <- H v            (spmv)
        u <- u - b v        (axpy)
        w <- -w             (scal)
        w <- w + 2a u       (axpy)
        eta_even <- <v|v>   (nrm2)
        eta_odd  <- <w|v>   (dot)
    """
    n = A.n_rows
    v = check_vector("v", v, n)
    w = check_vector("w", w, n)
    u = scratch if scratch is not None else np.empty(n, dtype=DTYPE)
    with metrics.span("naive_step", counters=counters):
        spmv(A, v, out=u, counters=counters)
        axpy(u, -b, v, counters=counters, work=scratch2)
        scal(-1.0, w, counters=counters)
        axpy(w, 2.0 * a, u, counters=counters, work=scratch2)
        eta_even = nrm2_sq(v, counters=counters)
        eta_odd = dot(w, v, counters=counters)
    return eta_even, eta_odd


def aug_spmv_step(
    A: CSRMatrix | SellMatrix,
    v: np.ndarray,
    w: np.ndarray,
    a: float,
    b: float,
    scratch: np.ndarray | None = None,
    counters: PerfCounters = NULL_COUNTERS,
    metrics: MetricsRegistry = NULL_METRICS,
) -> tuple[float, complex]:
    """Optimization stage 1 (paper Fig. 4): the augmented SpMV.

    Shift, scale, recombination and both dot products are charged as a
    single kernel touching each of v and w once:
    ``N_nz (S_d+S_i) + 3 N S_d`` bytes per call.
    """
    n = A.n_rows
    v = check_vector("v", v, n)
    w = check_vector("w", w, n)
    u = scratch if scratch is not None else np.empty(n, dtype=DTYPE)
    with metrics.span("aug_spmv", counters=counters):
        spmv(A, v, out=u, counters=NULL_COUNTERS)
        _recombine(w, u, v, a, b)
        eta_even = float(np.vdot(v, v).real)
        eta_odd = complex(np.vdot(w, v))
        charge_aug_spmv(A, counters)
    return eta_even, eta_odd


def aug_spmmv_step(
    A: CSRMatrix | SellMatrix,
    V: np.ndarray,
    W: np.ndarray,
    a: float,
    b: float,
    scratch: np.ndarray | None = None,
    counters: PerfCounters = NULL_COUNTERS,
    metrics: MetricsRegistry = NULL_METRICS,
) -> tuple[np.ndarray, np.ndarray]:
    """Optimization stage 2 (paper Fig. 5): the augmented SpMMV.

    ``V`` and ``W`` are row-major (interleaved) block vectors of shape
    (N, R). Returns the per-column scalar products
    ``eta_even[R] = colwise <V|V>`` and ``eta_odd[R] = colwise <W_new|V>``.

    Charged traffic: ``N_nz (S_d+S_i) + 3 R N S_d`` bytes per call —
    Eq. (4)'s final line divided by the M/2 iterations.
    """
    n = A.n_rows
    V, W, r = _check_block_pair(A, V, W)
    U = scratch if scratch is not None else np.empty((n, r), dtype=DTYPE)
    with metrics.span("aug_spmmv", counters=counters):
        spmmv(A, V, out=U, counters=NULL_COUNTERS)
        Vn = V[:n]
        _recombine(W, U, Vn, a, b)
        eta_even, eta_odd = _col_dots(Vn, W)
        charge_aug_spmmv(A, r, counters)
    return eta_even, eta_odd


def aug_spmmv_nodot_step(
    A: CSRMatrix | SellMatrix,
    V: np.ndarray,
    W: np.ndarray,
    a: float,
    b: float,
    scratch: np.ndarray | None = None,
    counters: PerfCounters = NULL_COUNTERS,
) -> None:
    """Augmented SpMMV *without* on-the-fly dot products.

    This is kernel (b) of the paper's GPU bottleneck study (Fig. 10): the
    recurrence update is fused but the scalar products are left to separate
    (and separately charged) reduction kernels. Used by the performance
    benches to isolate the cost of the in-kernel reductions.
    """
    n = A.n_rows
    V, W, r = _check_block_pair(A, V, W)
    U = scratch if scratch is not None else np.empty((n, r), dtype=DTYPE)
    spmmv(A, V, out=U, counters=NULL_COUNTERS)
    _recombine(W, U, V[:n], a, b)
    slots = _slots(A)
    counters.charge(
        "aug_spmmv_nodot",
        loads=slots * (S_D + S_I) + 2 * r * n * S_D,
        stores=r * n * S_D,
        flops=r
        * (
            slots * (F_ADD + F_MUL)
            + n * (3 * F_ADD + 3 * F_MUL + F_MUL)  # update only, no dots
        ),
    )


def block_dots(
    V: np.ndarray, W: np.ndarray, counters: PerfCounters = NULL_COUNTERS
) -> tuple[np.ndarray, np.ndarray]:
    """Separate column-wise <V|V> and <W|V> for the no-dot kernel variant."""
    n, r = V.shape
    eta_even, eta_odd = _col_dots(V, W)
    counters.charge(
        "block_dots",
        loads=3 * n * r * S_D,
        flops=r * n * (F_ADD + F_MUL + F_ADD // 2 + F_MUL // 2),
    )
    return eta_even, eta_odd
