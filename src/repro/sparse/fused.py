"""The paper's kernel-level contribution: augmented (fused) SpMV/SpMMV.

Three inner-iteration kernels, one per optimization stage:

* :func:`naive_kpm_step` — paper Fig. 3: one SpMV plus five BLAS-1 calls,
  13 N S_d of vector traffic per iteration (Table I).
* :func:`aug_spmv_step` — paper Fig. 4, optimization stage 1: shift,
  scale, recombination, and both scalar products fused into one kernel;
  vector traffic down to 3 N S_d.
* :func:`aug_spmmv_step` — paper Fig. 5, optimization stage 2: the
  augmented SpMMV over a row-major block vector of width R; the matrix is
  streamed once per iteration instead of once per (iteration, vector).

All kernels compute, in the storage of ``w``/``W``,

    w_new = 2 a (H - b 1) v - w                                (Eq. (3))

and return the two KPM scalar products of the iteration,

    eta_even = <v|v>,     eta_odd = <w_new|v>.

The caller swaps the roles of ``v`` and ``w`` afterwards (the paper's
"swap" is likewise just a pointer exchange).

These are the *NumPy* implementations: every array pass is in-place into
caller-provided scratch (zero per-iteration allocation — see the
workspace plans in :mod:`repro.sparse.backend`), but true single-pass
fusion needs compiled code; the native backend
(:mod:`repro.sparse.backend.native_backend`) provides exactly that with
identical accounting.

For the distributed driver the block kernels accept a *rectangular*
input: ``V`` may have ``A.n_cols`` rows (local + halo columns) while
``W`` has ``A.n_rows`` rows; the update and both dot products then run
over the first ``n_rows`` rows of ``V`` — each rank's partial dots.

Mixed precision: the kernels accept complex64 operands as-is (the fp32
profile) — the elementwise recurrence update runs in the storage dtype
while every scalar product accumulates in fp64 (:func:`col_dots`,
:func:`vec_dots`).  Byte charges follow the active profile: pass
``precision=`` explicitly, or let it be inferred from the vector dtype
(:func:`repro.util.precision.precision_of`).  Half-storage (fp16v)
vectors are decoded/encoded by the kernel *backends*, which then call
these kernels on complex64 views with ``precision=FP16V`` so the
charges reflect the half-width stream.
"""

from __future__ import annotations

import numpy as np

from repro.obs import NULL_METRICS, MetricsRegistry
from repro.sparse.blas1 import axpy, dot, nrm2_sq, scal
from repro.sparse.csr import CSRMatrix
from repro.sparse.sell import SellMatrix
from repro.sparse.spmv import spmv, spmmv
from repro.util.constants import F_ADD, F_MUL, S_I
from repro.util.counters import NULL_COUNTERS, PerfCounters
from repro.util.precision import FP64, Precision, precision_of
from repro.util.validation import check_block_vector, check_vector

#: Per-row flops of one full KPM inner iteration beyond the SpMV part:
#: the paper's 7 F_a/2 + 9 F_m/2 (Table I, "KPM" row).
_ROW_FLOPS = 7 * F_ADD // 2 + 9 * F_MUL // 2


def _slots(A) -> int:
    """Streamed matrix slots: nnz for CSR, padded slots for SELL."""
    return A.stored_slots if isinstance(A, SellMatrix) else A.nnz


def charge_aug_spmv(
    A, counters: PerfCounters, prec: Precision = FP64
) -> None:
    """Table-I accounting of one augmented SpMV call (any backend)."""
    n = A.n_rows
    slots = _slots(A)
    s_v, s_x = prec.s_value, prec.s_vector
    s_i = prec.index_bytes(A.n_cols)
    counters.charge(
        "aug_spmv",
        loads=slots * (s_v + s_i) + 2 * n * s_x,
        stores=n * s_x,
        flops=slots * (F_ADD + F_MUL) + n * _ROW_FLOPS,
    )


def charge_aug_spmmv(
    A, r: int, counters: PerfCounters, prec: Precision = FP64
) -> None:
    """Table-I accounting of one augmented SpMMV call (any backend)."""
    n = A.n_rows
    slots = _slots(A)
    s_v, s_x = prec.s_value, prec.s_vector
    s_i = prec.index_bytes(A.n_cols)
    counters.charge(
        "aug_spmmv",
        loads=slots * (s_v + s_i) + 2 * r * n * s_x,
        stores=r * n * s_x,
        flops=r * (slots * (F_ADD + F_MUL) + n * _ROW_FLOPS),
    )


def charge_aug_spmv_part(
    n_rows: int,
    slots: int,
    counters: PerfCounters,
    name: str,
    prec: Precision = FP64,
    s_index: int | None = None,
) -> None:
    """Table-I charge of one *phase* of a split augmented SpMV.

    Linear in (rows, slots): charging the interior phase with
    ``(n_int, nnz_int)`` and the boundary phase with ``(n_bnd, nnz_bnd)``
    sums to exactly :func:`charge_aug_spmv` of the whole matrix, so the
    split kernels keep the measured == analytic invariant while the
    per-kernel attribution reflects the two phases.

    ``s_index`` is the realized index width; split callers pass
    ``prec.index_bytes(A.n_cols)`` of the *whole* rank-local operator so
    both phases charge the same width the unsplit kernel would.
    """
    s_i = S_I if s_index is None else s_index
    counters.charge(
        name,
        loads=slots * (prec.s_value + s_i) + 2 * n_rows * prec.s_vector,
        stores=n_rows * prec.s_vector,
        flops=slots * (F_ADD + F_MUL) + n_rows * _ROW_FLOPS,
    )


def charge_aug_spmmv_part(
    n_rows: int,
    slots: int,
    r: int,
    counters: PerfCounters,
    name: str,
    prec: Precision = FP64,
    s_index: int | None = None,
) -> None:
    """Table-I charge of one phase of a split augmented SpMMV (see
    :func:`charge_aug_spmv_part` for the exact-sum property)."""
    s_i = S_I if s_index is None else s_index
    counters.charge(
        name,
        loads=slots * (prec.s_value + s_i) + 2 * r * n_rows * prec.s_vector,
        stores=r * n_rows * prec.s_vector,
        flops=r * (slots * (F_ADD + F_MUL) + n_rows * _ROW_FLOPS),
    )


def _recombine(W, U, V, a: float, b: float) -> None:
    """In-place ``W <- 2a U - 2ab V - W`` with zero temporaries.

    ``U`` is consumed as workspace (it holds the SpMV result on entry and
    garbage on exit) — five in-place passes, no allocation.  All five are
    real-scalar elementwise operations, so the same code serves
    complex128, complex64, and float16 (re, im) pair storage.
    """
    two_a = 2.0 * a
    W *= -1.0
    U *= two_a
    W += U
    np.multiply(V, two_a * b, out=U)
    W -= U


def _components(X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(real, imag) component views of complex or f16-pair storage."""
    if X.dtype.kind == "c":
        return X.real, X.imag
    return X[..., 0], X[..., 1]


def _col_dots(V: np.ndarray, W: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Column-wise ``<V|V>`` (real) and ``<W|V>`` without (N, R) temporaries.

    Works on the real/imaginary views so no conjugated copy of the block
    is ever materialized; only the (R,) outputs are allocated.  For
    complex128 blocks this is the paper-baseline path, bit-for-bit
    unchanged; narrower storage (complex64, f16 pairs) accumulates the
    same reductions in fp64 (the "on-the-fly fp64 dot accumulation" of
    the precision profiles), so eta — and hence the DOS — keeps fp64
    reduction accuracy regardless of how vectors are stored.
    """
    if V.dtype == np.complex128:
        vr, vi = V.real, V.imag
        wr, wi = W.real, W.imag
        eta_even = (np.einsum("nr,nr->r", vr, vr)
                    + np.einsum("nr,nr->r", vi, vi))
        re = np.einsum("nr,nr->r", wr, vr) + np.einsum("nr,nr->r", wi, vi)
        im = np.einsum("nr,nr->r", wr, vi) - np.einsum("nr,nr->r", wi, vr)
        return eta_even, re + 1j * im
    vr, vi = _components(V)
    wr, wi = _components(W)
    f64 = np.float64
    eta_even = (np.einsum("nr,nr->r", vr, vr, dtype=f64)
                + np.einsum("nr,nr->r", vi, vi, dtype=f64))
    re = (np.einsum("nr,nr->r", wr, vr, dtype=f64)
          + np.einsum("nr,nr->r", wi, vi, dtype=f64))
    im = (np.einsum("nr,nr->r", wr, vi, dtype=f64)
          - np.einsum("nr,nr->r", wi, vr, dtype=f64))
    return eta_even, re + 1j * im


#: Public alias: fp64-accumulating column dots for any vector storage.
col_dots = _col_dots


def vec_dots(v: np.ndarray, w: np.ndarray) -> tuple[float, complex]:
    """Single-vector ``(<v|v>, <w|v>)`` with fp64 accumulation.

    Bitwise-identical to the historical ``np.vdot`` pair for complex128.
    """
    if v.dtype == np.complex128:
        return float(np.vdot(v, v).real), complex(np.vdot(w, v))
    vr, vi = _components(v)
    wr, wi = _components(w)
    f64 = np.float64
    ee = (np.einsum("n,n->", vr, vr, dtype=f64)
          + np.einsum("n,n->", vi, vi, dtype=f64))
    re = (np.einsum("n,n->", wr, vr, dtype=f64)
          + np.einsum("n,n->", wi, vi, dtype=f64))
    im = (np.einsum("n,n->", wr, vi, dtype=f64)
          - np.einsum("n,n->", wi, vr, dtype=f64))
    return float(ee), complex(re + 1j * im)


def _check_block_pair(A, V: np.ndarray, W: np.ndarray):
    """Validate the (possibly rectangular) V/W pair; returns (V, W, r)."""
    V = check_block_vector("V", V, A.n_cols)
    W = check_block_vector("W", W, A.n_rows, V.shape[1])
    return V, W, V.shape[1]


def _resolve_precision(x: np.ndarray, precision) -> Precision:
    prec = precision_of(x) if precision is None else precision
    if prec.half_vectors and x.dtype != np.float16:
        # backend decoded f16 storage to complex64 for us; charges keep
        # the half-width layout — nothing to do
        return prec
    if x.dtype == np.float16:
        raise TypeError(
            "half-storage (fp16v) vectors are decoded by the kernel "
            "backends; call through repro.sparse.backend instead"
        )
    return prec


def naive_kpm_step(
    A: CSRMatrix | SellMatrix,
    v: np.ndarray,
    w: np.ndarray,
    a: float,
    b: float,
    scratch: np.ndarray | None = None,
    counters: PerfCounters = NULL_COUNTERS,
    scratch2: np.ndarray | None = None,
    metrics: MetricsRegistry = NULL_METRICS,
) -> tuple[float, complex]:
    """One inner iteration of the *naive* algorithm (paper Fig. 3).

    Every operation is a separate library call with its own pass over the
    vectors::

        u <- H v            (spmv)
        u <- u - b v        (axpy)
        w <- -w             (scal)
        w <- w + 2a u       (axpy)
        eta_even <- <v|v>   (nrm2)
        eta_odd  <- <w|v>   (dot)

    Works for complex128 and complex64 storage (the BLAS-1 charges track
    the element size automatically); half storage is handled by the
    kernel backends' decode pass (half SpMV + fp32 BLAS-1), not here.
    """
    if v.dtype == np.float16:
        raise TypeError(
            "half-storage (fp16v) vectors are decoded by the kernel "
            "backends; call through repro.sparse.backend instead"
        )
    n = A.n_rows
    v = check_vector("v", v, n)
    w = check_vector("w", w, n)
    u = scratch if scratch is not None else np.empty(n, dtype=v.dtype)
    with metrics.span("naive_step", counters=counters):
        spmv(A, v, out=u, counters=counters)
        axpy(u, -b, v, counters=counters, work=scratch2)
        scal(-1.0, w, counters=counters)
        axpy(w, 2.0 * a, u, counters=counters, work=scratch2)
        eta_even = nrm2_sq(v, counters=counters)
        eta_odd = dot(w, v, counters=counters)
    return eta_even, eta_odd


def aug_spmv_step(
    A: CSRMatrix | SellMatrix,
    v: np.ndarray,
    w: np.ndarray,
    a: float,
    b: float,
    scratch: np.ndarray | None = None,
    counters: PerfCounters = NULL_COUNTERS,
    metrics: MetricsRegistry = NULL_METRICS,
    precision: Precision | None = None,
) -> tuple[float, complex]:
    """Optimization stage 1 (paper Fig. 4): the augmented SpMV.

    Shift, scale, recombination and both dot products are charged as a
    single kernel touching each of v and w once:
    ``N_nz (S_d+S_i) + 3 N S_d`` bytes per call.
    """
    prec = _resolve_precision(v, precision)
    n = A.n_rows
    v = check_vector("v", v, n)
    w = check_vector("w", w, n)
    u = scratch if scratch is not None else np.empty(n, dtype=v.dtype)
    with metrics.span("aug_spmv", counters=counters):
        spmv(A, v, out=u, counters=NULL_COUNTERS)
        _recombine(w, u, v, a, b)
        eta_even, eta_odd = vec_dots(v, w)
        charge_aug_spmv(A, counters, prec)
    return eta_even, eta_odd


def aug_spmmv_step(
    A: CSRMatrix | SellMatrix,
    V: np.ndarray,
    W: np.ndarray,
    a: float,
    b: float,
    scratch: np.ndarray | None = None,
    counters: PerfCounters = NULL_COUNTERS,
    metrics: MetricsRegistry = NULL_METRICS,
    precision: Precision | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Optimization stage 2 (paper Fig. 5): the augmented SpMMV.

    ``V`` and ``W`` are row-major (interleaved) block vectors of shape
    (N, R). Returns the per-column scalar products
    ``eta_even[R] = colwise <V|V>`` and ``eta_odd[R] = colwise <W_new|V>``.

    Charged traffic: ``N_nz (S_d+S_i) + 3 R N S_d`` bytes per call —
    Eq. (4)'s final line divided by the M/2 iterations.
    """
    prec = _resolve_precision(V, precision)
    n = A.n_rows
    V, W, r = _check_block_pair(A, V, W)
    U = scratch if scratch is not None else np.empty((n, r), dtype=V.dtype)
    with metrics.span("aug_spmmv", counters=counters):
        spmmv(A, V, out=U, counters=NULL_COUNTERS)
        Vn = V[:n]
        _recombine(W, U, Vn, a, b)
        eta_even, eta_odd = _col_dots(Vn, W)
        charge_aug_spmmv(A, r, counters, prec)
    return eta_even, eta_odd


def aug_spmmv_nodot_step(
    A: CSRMatrix | SellMatrix,
    V: np.ndarray,
    W: np.ndarray,
    a: float,
    b: float,
    scratch: np.ndarray | None = None,
    counters: PerfCounters = NULL_COUNTERS,
    precision: Precision | None = None,
) -> None:
    """Augmented SpMMV *without* on-the-fly dot products.

    This is kernel (b) of the paper's GPU bottleneck study (Fig. 10): the
    recurrence update is fused but the scalar products are left to separate
    (and separately charged) reduction kernels. Used by the performance
    benches to isolate the cost of the in-kernel reductions.
    """
    prec = _resolve_precision(V, precision)
    n = A.n_rows
    V, W, r = _check_block_pair(A, V, W)
    U = scratch if scratch is not None else np.empty((n, r), dtype=V.dtype)
    spmmv(A, V, out=U, counters=NULL_COUNTERS)
    _recombine(W, U, V[:n], a, b)
    slots = _slots(A)
    s_x = prec.s_vector
    counters.charge(
        "aug_spmmv_nodot",
        loads=slots * (prec.s_value + prec.index_bytes(A.n_cols))
        + 2 * r * n * s_x,
        stores=r * n * s_x,
        flops=r
        * (
            slots * (F_ADD + F_MUL)
            + n * (3 * F_ADD + 3 * F_MUL + F_MUL)  # update only, no dots
        ),
    )


def charge_col_dots(
    n_rows: int,
    r: int,
    counters: PerfCounters,
    name: str = "grid_dots",
    prec: Precision = FP64,
) -> None:
    """Charge of a column-dot post-pass over ``n_rows`` rows.

    The grid-eta path (:mod:`repro.dist.elastic`) recomputes the two KPM
    scalar products per fixed global row block instead of per rank, so
    the reduction order never depends on the partition.  The charge is
    linear in ``n_rows``: summing the per-block charges of any partition
    of N rows gives exactly one whole-matrix :func:`block_dots` charge,
    keeping measured == analytic accounting partition independent.
    """
    s_x = prec.s_vector
    counters.charge(
        name,
        loads=3 * n_rows * r * s_x,
        flops=r * n_rows * (F_ADD + F_MUL + F_ADD // 2 + F_MUL // 2),
    )


def block_dots(
    V: np.ndarray, W: np.ndarray, counters: PerfCounters = NULL_COUNTERS
) -> tuple[np.ndarray, np.ndarray]:
    """Separate column-wise <V|V> and <W|V> for the no-dot kernel variant."""
    n, r = V.shape[:2]
    s_x = V.dtype.itemsize if V.dtype.kind == "c" else 2 * V.dtype.itemsize
    eta_even, eta_odd = _col_dots(V, W)
    counters.charge(
        "block_dots",
        loads=3 * n * r * s_x,
        flops=r * n * (F_ADD + F_MUL + F_ADD // 2 + F_MUL // 2),
    )
    return eta_even, eta_odd
