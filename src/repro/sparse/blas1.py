"""BLAS level-1 kernels of the naive KPM algorithm (paper Fig. 3).

Each function charges the *minimum* data traffic and flop count of paper
Table I to an optional :class:`~repro.util.counters.PerfCounters`:

=========  =====================  ==========================
function   min. bytes per call     flops per call
=========  =====================  ==========================
axpy       3 N S_d                N (F_a + F_m)
scal       2 N S_d                N F_m
nrm2       N S_d                  N (F_a/2 + F_m/2)
dot        2 N S_d                N (F_a + F_m)
=========  =====================  ==========================

These are the building blocks the optimized kernels in
:mod:`repro.sparse.fused` make redundant: running the naive algorithm
through these functions transfers the 13 N S_d vector bytes per inner
iteration that optimization stage 1 cuts to 3 N S_d.
"""

from __future__ import annotations

import numpy as np

from repro.util.constants import F_ADD, F_MUL, S_D
from repro.util.counters import NULL_COUNTERS, PerfCounters


def axpy(
    y: np.ndarray,
    alpha: complex,
    x: np.ndarray,
    counters: PerfCounters = NULL_COUNTERS,
    work: np.ndarray | None = None,
) -> np.ndarray:
    """In-place ``y += alpha * x``; returns ``y``.

    A real BLAS axpy allocates nothing; NumPy's ``y += alpha * x`` hides
    an ``alpha * x`` temporary. Passing ``work`` (any buffer of y's
    shape/dtype, contents destroyed) routes the product through it so the
    call is allocation-free — the moment-engine workspace plans do this.
    """
    n = y.shape[0]
    if work is not None:
        np.multiply(x, alpha, out=work)
        y += work
    else:
        y += alpha * x
    counters.charge(
        "axpy", loads=2 * n * S_D, stores=n * S_D, flops=n * (F_ADD + F_MUL)
    )
    return y


def scal(
    alpha: complex,
    x: np.ndarray,
    counters: PerfCounters = NULL_COUNTERS,
) -> np.ndarray:
    """In-place ``x *= alpha``; returns ``x``."""
    n = x.shape[0]
    x *= alpha
    counters.charge("scal", loads=n * S_D, stores=n * S_D, flops=n * F_MUL)
    return x


def dot(
    x: np.ndarray,
    y: np.ndarray,
    counters: PerfCounters = NULL_COUNTERS,
) -> complex:
    """Conjugated inner product ``<x|y> = sum(conj(x) * y)``."""
    n = x.shape[0]
    counters.charge("dot", loads=2 * n * S_D, flops=n * (F_ADD + F_MUL))
    return complex(np.vdot(x, y))


def nrm2_sq(
    x: np.ndarray,
    counters: PerfCounters = NULL_COUNTERS,
) -> float:
    """Squared 2-norm ``<x|x>`` (the paper's eta_2m = <v|v>)."""
    n = x.shape[0]
    counters.charge(
        "nrm2", loads=n * S_D, flops=n * (F_ADD // 2 + F_MUL // 2)
    )
    return float(np.vdot(x, x).real)
