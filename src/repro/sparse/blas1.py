"""BLAS level-1 kernels of the naive KPM algorithm (paper Fig. 3).

Each function charges the *minimum* data traffic and flop count of paper
Table I to an optional :class:`~repro.util.counters.PerfCounters`:

=========  =====================  ==========================
function   min. bytes per call     flops per call
=========  =====================  ==========================
axpy       3 N S_d                N (F_a + F_m)
scal       2 N S_d                N F_m
nrm2       N S_d                  N (F_a/2 + F_m/2)
dot        2 N S_d                N (F_a + F_m)
=========  =====================  ==========================

These are the building blocks the optimized kernels in
:mod:`repro.sparse.fused` make redundant: running the naive algorithm
through these functions transfers the 13 N S_d vector bytes per inner
iteration that optimization stage 1 cuts to 3 N S_d.

Mixed precision: ``S_d`` above is the *vector element* size, taken from
the operand's dtype (16 for complex128, 8 for complex64), so the charges
follow the active :mod:`~repro.util.precision` profile automatically.
Reductions (``dot``, ``nrm2_sq``) always accumulate in fp64 regardless
of storage precision — narrow storage never degrades the eta moments.
"""

from __future__ import annotations

import numpy as np

from repro.util.constants import F_ADD, F_MUL
from repro.util.counters import NULL_COUNTERS, PerfCounters


def _sd(x: np.ndarray) -> int:
    """Bytes per logical (complex) element of a vector storage array."""
    if x.dtype.kind == "c":
        return x.dtype.itemsize
    # float16 (re, im) pair storage: two halves per complex element
    return 2 * x.dtype.itemsize


def axpy(
    y: np.ndarray,
    alpha: complex,
    x: np.ndarray,
    counters: PerfCounters = NULL_COUNTERS,
    work: np.ndarray | None = None,
) -> np.ndarray:
    """In-place ``y += alpha * x``; returns ``y``.

    A real BLAS axpy allocates nothing; NumPy's ``y += alpha * x`` hides
    an ``alpha * x`` temporary. Passing ``work`` (any buffer of y's
    shape/dtype, contents destroyed) routes the product through it so the
    call is allocation-free — the moment-engine workspace plans do this.
    """
    n = y.shape[0]
    s_d = _sd(y)
    if work is not None:
        np.multiply(x, alpha, out=work)
        y += work
    else:
        y += alpha * x
    counters.charge(
        "axpy", loads=2 * n * s_d, stores=n * s_d, flops=n * (F_ADD + F_MUL)
    )
    return y


def scal(
    alpha: complex,
    x: np.ndarray,
    counters: PerfCounters = NULL_COUNTERS,
) -> np.ndarray:
    """In-place ``x *= alpha``; returns ``x``."""
    n = x.shape[0]
    s_d = _sd(x)
    x *= alpha
    counters.charge("scal", loads=n * s_d, stores=n * s_d, flops=n * F_MUL)
    return x


def dot(
    x: np.ndarray,
    y: np.ndarray,
    counters: PerfCounters = NULL_COUNTERS,
) -> complex:
    """Conjugated inner product ``<x|y> = sum(conj(x) * y)``.

    Accumulates in fp64 for every storage precision: bitwise-identical
    ``np.vdot`` for complex128, fp64-dtype einsum reductions over the
    real/imag component views otherwise.
    """
    n = x.shape[0]
    counters.charge("dot", loads=2 * n * _sd(x), flops=n * (F_ADD + F_MUL))
    if x.dtype == np.complex128:
        return complex(np.vdot(x, y))
    if x.dtype.kind == "c":
        xr, xi, yr, yi = x.real, x.imag, y.real, y.imag
    else:  # float16 (re, im) pairs
        xr, xi, yr, yi = x[..., 0], x[..., 1], y[..., 0], y[..., 1]
    re = (np.einsum("n,n->", xr, yr, dtype=np.float64)
          + np.einsum("n,n->", xi, yi, dtype=np.float64))
    im = (np.einsum("n,n->", xr, yi, dtype=np.float64)
          - np.einsum("n,n->", xi, yr, dtype=np.float64))
    return complex(re + 1j * im)


def nrm2_sq(
    x: np.ndarray,
    counters: PerfCounters = NULL_COUNTERS,
) -> float:
    """Squared 2-norm ``<x|x>`` (the paper's eta_2m = <v|v>).

    fp64 accumulation for every storage precision (see :func:`dot`).
    """
    n = x.shape[0]
    counters.charge(
        "nrm2", loads=n * _sd(x), flops=n * (F_ADD // 2 + F_MUL // 2)
    )
    if x.dtype == np.complex128:
        return float(np.vdot(x, x).real)
    if x.dtype.kind == "c":
        xr, xi = x.real, x.imag
    else:
        xr, xi = x[..., 0], x[..., 1]
    return float(np.einsum("n,n->", xr, xr, dtype=np.float64)
                 + np.einsum("n,n->", xi, xi, dtype=np.float64))
