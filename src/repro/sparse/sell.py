"""SELL-C-sigma: the unified sparse format for wide-SIMD CPUs and GPUs.

Reference: Kreutzer, Hager, Wellein, Fehske, Bishop, "A unified sparse
matrix data format for efficient general sparse matrix-vector
multiplication on modern processors with wide SIMD units", SIAM J. Sci.
Comput. 36(5):C401-C423 (2014) — the paper's Ref. [13].

Layout
------
Rows are grouped into *chunks* of height ``C``. Within a *sorting scope* of
``sigma`` consecutive rows, rows are sorted by descending nonzero count so
rows sharing a chunk have similar lengths. Every row in a chunk is padded
to the chunk's maximum length; padded slots hold ``value 0`` at ``column
row`` (self-referencing zero fill-in), so they are numerically inert yet
execute real flops — exactly as on hardware. The chunk stores its entries
column-major (SIMD lanes run down the chunk), concatenated chunk after
chunk in one flat array.

``C = 1`` degenerates to CRS (the paper calls CRS "similar to SELL-1");
``C = n_rows, sigma = 1`` degenerates to ELLPACK.

The *padding efficiency* ``beta = nnz / stored_slots`` quantifies the
zero-fill overhead; ``beta = 1`` means no padding.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.util.constants import DTYPE, IDTYPE
from repro.util.errors import FormatError
from repro.util.validation import check_positive


class SellMatrix:
    """A sparse matrix in SELL-C-sigma storage.

    Attributes
    ----------
    chunk_height:
        C — number of rows per chunk (SIMD/warp granularity).
    sigma:
        Sorting scope in rows (multiple of C recommended; 1 = no sorting).
    perm:
        ``perm[sorted_pos] = original_row``; kernels compute in sorted
        order and scatter results back through this permutation.
    chunk_len:
        Length (padded row width) of each chunk.
    chunk_ptr:
        Offset of each chunk's first slot in ``data``/``indices``.
    data, indices:
        Flat chunk-major, column-major-within-chunk value/column arrays.
    """

    def __init__(self, csr: CSRMatrix, chunk_height: int = 32, sigma: int = 1) -> None:
        check_positive("chunk_height", chunk_height)
        check_positive("sigma", sigma)
        if sigma != 1 and sigma % chunk_height != 0:
            raise FormatError(
                f"sigma ({sigma}) must be 1 or a multiple of chunk_height "
                f"({chunk_height})"
            )
        self.chunk_height = int(chunk_height)
        self.sigma = int(sigma)
        self.shape = csr.shape
        self.nnz = csr.nnz

        n = csr.n_rows
        c = self.chunk_height
        n_chunks = (n + c - 1) // c
        self.n_chunks = n_chunks
        n_padded = n_chunks * c

        lengths = np.zeros(n_padded, dtype=np.int64)
        lengths[:n] = csr.nnz_per_row

        # sigma-scope sorting: descending row length inside each scope.
        perm = np.arange(n_padded)
        if self.sigma > 1:
            for lo in range(0, n_padded, self.sigma):
                hi = min(lo + self.sigma, n_padded)
                local = np.argsort(-lengths[lo:hi], kind="stable")
                perm[lo:hi] = lo + local
        self.perm = perm  # perm[sorted_pos] -> original row (or padding row >= n)
        sorted_lengths = lengths[perm]

        self.chunk_len = sorted_lengths.reshape(n_chunks, c).max(axis=1)
        slots_per_chunk = self.chunk_len * c
        self.chunk_ptr = np.zeros(n_chunks + 1, dtype=np.int64)
        np.cumsum(slots_per_chunk, out=self.chunk_ptr[1:])
        total_slots = int(self.chunk_ptr[-1])

        data = np.zeros(total_slots, dtype=DTYPE)
        # Self-referencing padding: column = the row's own (original) index,
        # clipped into the *column* range (rectangular matrices may have
        # fewer columns than rows; any valid column works since the value
        # is zero).
        pad_col_per_sorted = np.minimum(perm, csr.n_cols - 1).astype(IDTYPE)
        indices = np.empty(total_slots, dtype=IDTYPE)

        # Fill chunk by chunk (vectorized within each chunk).
        for ci in range(n_chunks):
            L = int(self.chunk_len[ci])
            if L == 0:
                continue
            base = int(self.chunk_ptr[ci])
            block_vals = np.zeros((c, L), dtype=DTYPE)
            block_idx = np.repeat(
                pad_col_per_sorted[ci * c : (ci + 1) * c, None], L, axis=1
            )
            for rlocal in range(c):
                row = perm[ci * c + rlocal]
                if row >= n:
                    continue
                lo, hi = csr.indptr[row], csr.indptr[row + 1]
                k = hi - lo
                block_vals[rlocal, :k] = csr.data[lo:hi]
                block_idx[rlocal, :k] = csr.indices[lo:hi]
            # column-major within the chunk: slot (j, rlocal) at base + j*c + rlocal
            data[base : base + L * c] = block_vals.T.reshape(-1)
            indices[base : base + L * c] = block_idx.T.reshape(-1)

        self.data = data
        self.indices = indices
        self._n_padded = n_padded

        # ELLPACK compute view (global max width, zero/self padding) used by
        # the vectorized NumPy kernels. The *accounting* (stored_slots, beta,
        # flops) always refers to the true SELL layout above.
        lmax = int(self.chunk_len.max()) if n_chunks else 0
        self._ell_data = np.zeros((n_padded, lmax), dtype=DTYPE)
        self._ell_idx = np.repeat(pad_col_per_sorted[:, None], max(lmax, 1), axis=1)[
            :, :lmax
        ]
        for ci in range(n_chunks):
            L = int(self.chunk_len[ci])
            if L == 0:
                continue
            base = int(self.chunk_ptr[ci])
            vals = self.data[base : base + L * c].reshape(L, c).T
            idx = self.indices[base : base + L * c].reshape(L, c).T
            self._ell_data[ci * c : (ci + 1) * c, :L] = vals
            self._ell_idx[ci * c : (ci + 1) * c, :L] = idx

        # inverse permutation restricted to real rows
        self.inv_perm = np.empty(n_padded, dtype=np.int64)
        self.inv_perm[perm] = np.arange(n_padded)

    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    def nnzr(self) -> float:
        """Average nonzeros per (real) row."""
        return self.nnz / self.n_rows if self.n_rows else 0.0

    @property
    def stored_slots(self) -> int:
        """Total slots including zero fill-in (what the kernel streams)."""
        return int(self.chunk_ptr[-1])

    @property
    def beta(self) -> float:
        """Padding efficiency nnz / stored_slots in (0, 1]."""
        slots = self.stored_slots
        return self.nnz / slots if slots else 1.0

    def memory_bytes(self, s_d: int = 16, s_i: int = 4) -> int:
        """Streamed bytes per full matrix traversal (includes padding)."""
        return self.stored_slots * (s_d + s_i)

    # ------------------------------------------------------------------
    def to_csr(self) -> CSRMatrix:
        """Convert back to CSR, dropping the zero fill-in."""
        n = self.n_rows
        rows_sorted = np.repeat(np.arange(self._n_padded), self._ell_data.shape[1])
        vals = self._ell_data.reshape(-1)
        cols = self._ell_idx.reshape(-1).astype(np.int64)
        orig_rows = self.perm[rows_sorted]
        keep = (vals != 0) & (orig_rows < n)
        return CSRMatrix.from_coo(
            orig_rows[keep], cols[keep], vals[keep], self.shape,
            sum_duplicates=True,
        )

    def to_dense(self) -> np.ndarray:
        """Materialize as dense (tests only)."""
        return self.to_csr().to_dense()

    def __repr__(self) -> str:
        return (
            f"SellMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"C={self.chunk_height}, sigma={self.sigma}, beta={self.beta:.3f})"
        )
