"""Sparse matrix (multiple-)vector multiplication for CSR and SELL-C-sigma.

``spmv`` charges the paper's Table I minimum traffic
``N_nz (S_d + S_i) + 2 N S_d`` and ``N_nz (F_a + F_m)`` flops;
``spmmv`` charges the block generalization (matrix read once, R vectors).
For SELL matrices the *streamed* slot count (including zero fill-in, i.e.
``nnz / beta``) is charged, mirroring what the hardware kernel moves.

Implementation notes (cf. the hpc-parallel guides: vectorize, avoid
temporaries where cheap, respect memory layout):

* CSR products use a flat gather ``x[indices]`` followed by a segmented
  sum — every loop is inside NumPy.
* SELL products run over the (few) stencil diagonals of the ELLPACK view:
  for each slot column ``l`` one fused gather-multiply-accumulate over all
  rows. The block-vector variant gathers *rows* of the row-major block
  ``X[idx, :]`` — R contiguous elements per access, which is precisely the
  locality argument of paper Section IV-A for interleaved block vectors.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as _sp

try:  # allocation-free compiled CSR products (y += A x into caller storage)
    from scipy.sparse import _sparsetools
except ImportError:  # pragma: no cover - very old scipy
    _sparsetools = None

from repro.obs import NULL_METRICS, MetricsRegistry
from repro.sparse.csr import CSRMatrix, segment_sum
from repro.sparse.sell import SellMatrix
from repro.util.constants import DTYPE, F_ADD, F_MUL
from repro.util.counters import NULL_COUNTERS, PerfCounters
from repro.util.errors import ShapeError
from repro.util.precision import FP64, Precision, precision_of
from repro.util.validation import check_block_vector, check_vector


#: When True (default), the numerical work of spmv/spmmv is delegated to
#: a compiled CSR kernel (scipy.sparse) whose inner loop is precisely the
#: paper's row-major SpMMV access pattern — one fused gather-multiply-add
#: pass per matrix entry over R contiguous block-vector elements. The
#: pure-NumPy kernels below remain the layout-faithful reference
#: implementation (SELL chunk traversal, explicit padding) and are parity-
#: tested against the fast path; switch with :func:`set_fast_backend` to
#: study them (e.g. the SELL ablation bench does).
_FAST_BACKEND = True


def set_fast_backend(enabled: bool) -> bool:
    """Enable/disable the compiled CSR compute backend; returns the old
    setting. Accounting (counters, Table I charging) is identical either
    way — only the arithmetic implementation changes."""
    global _FAST_BACKEND
    old = _FAST_BACKEND
    _FAST_BACKEND = bool(enabled)
    return old


def _scipy_handle(A: CSRMatrix | SellMatrix, dtype=DTYPE) -> "_sp.csr_matrix":
    """Cached scipy CSR view of the matrix's numerical content.

    One handle per value dtype: the fp64 baseline keeps its historical
    ``_scipy_cache`` attribute; the complex64 handle (shared by the fp32
    and fp16v profiles) is cached separately and built by downcasting the
    fp64 handle's value array once.
    """
    handle = getattr(A, "_scipy_cache", None)
    if handle is None:
        if isinstance(A, CSRMatrix):
            handle = _sp.csr_matrix(
                (A.data, A.indices, A.indptr), shape=A.shape
            )
        else:
            csr = A.to_csr()
            handle = _sp.csr_matrix(
                (csr.data, csr.indices, csr.indptr), shape=csr.shape
            )
        A._scipy_cache = handle
    if np.dtype(dtype) == np.complex128:
        return handle
    narrow = getattr(A, "_scipy_cache32", None)
    if narrow is None:
        narrow = _sp.csr_matrix(
            (handle.data.astype(np.complex64), handle.indices,
             handle.indptr),
            shape=handle.shape,
        )
        A._scipy_cache32 = narrow
    return narrow


def _fast_product(A, X: np.ndarray, out: np.ndarray) -> None:
    """``out = A @ X`` through the compiled scipy CSR kernel.

    Uses the accumulate-into-``out`` entry points of
    ``scipy.sparse._sparsetools`` when available so the product allocates
    nothing (the workspace plans rely on this); falls back to the public
    operator otherwise.  The matrix-value dtype follows ``out``: fp32
    products run entirely in complex64.
    """
    handle = _scipy_handle(A, dtype=out.dtype)
    X = X.astype(out.dtype, copy=False)
    if (
        _sparsetools is not None
        and X.flags.c_contiguous
        and out.flags.c_contiguous
    ):
        out.fill(0.0)
        m, k = handle.shape
        if X.ndim == 1:
            _sparsetools.csr_matvec(
                m, k, handle.indptr, handle.indices, handle.data, X, out
            )
        else:
            _sparsetools.csr_matvecs(
                m, k, X.shape[1], handle.indptr, handle.indices, handle.data,
                X.ravel(), out.ravel(),
            )
    else:
        out[:] = handle @ X


def _charge_spmv(
    A,
    n_vecs: int,
    counters: PerfCounters,
    name: str,
    prec: Precision = FP64,
) -> None:
    n = A.n_rows
    if isinstance(A, SellMatrix):
        slots = A.stored_slots
    else:
        slots = A.nnz
    s_v, s_x = prec.s_value, prec.s_vector
    s_i = prec.index_bytes(A.n_cols)
    counters.charge(
        name,
        loads=slots * (s_v + s_i) + n_vecs * n * s_x,
        stores=n_vecs * n * s_x,
        flops=n_vecs * slots * (F_ADD + F_MUL),
    )


def spmv(
    A: CSRMatrix | SellMatrix,
    x: np.ndarray,
    out: np.ndarray | None = None,
    counters: PerfCounters = NULL_COUNTERS,
    metrics: MetricsRegistry = NULL_METRICS,
    precision: Precision | None = None,
) -> np.ndarray:
    """Compute ``y = A @ x`` for a single vector.

    Parameters
    ----------
    A:
        Matrix in CSR or SELL-C-sigma storage.
    x:
        Input vector of length ``A.n_cols``; complex128, complex64, or
        float16 (re, im) pair storage of shape ``(n_cols, 2)``.
    out:
        Optional pre-allocated output of length ``A.n_rows`` (matching
        ``x``'s storage layout).
    counters:
        Sink for the Table-I minimum traffic/flop accounting.
    precision:
        Profile to charge; inferred from ``x``'s dtype when omitted.
        Backends pass it explicitly when they hand over pre-decoded
        complex views of half storage.
    """
    if not isinstance(A, (CSRMatrix, SellMatrix)):
        raise TypeError(f"unsupported matrix type {type(A).__name__}")
    prec = precision_of(x) if precision is None else precision
    half = x.dtype == np.float16
    if half:
        from repro.util.precision import FP16V

        xin = check_vector("x", FP16V.decode(x), A.n_cols)
        if out is None:
            out = np.empty((A.n_rows, 2), dtype=np.float16)
        elif out.shape != (A.n_rows, 2) or out.dtype != np.float16:
            raise ShapeError(
                f"out must be float16 of shape ({A.n_rows}, 2), got "
                f"{out.dtype} {out.shape}"
            )
        tgt = np.empty(A.n_rows, dtype=np.complex64)
    else:
        xin = check_vector("x", x, A.n_cols)
        if out is None:
            out = np.empty(A.n_rows, dtype=x.dtype)
        elif out.shape != (A.n_rows,):
            raise ShapeError(
                f"out must have shape ({A.n_rows},), got {out.shape}"
            )
        tgt = out

    with metrics.span("spmv", counters=counters):
        if _FAST_BACKEND:
            _fast_product(A, xin, tgt)
        elif isinstance(A, CSRMatrix):
            products = A.data * xin[A.indices.astype(np.int64)]
            tgt[:] = segment_sum(products, A.indptr)
        else:
            n_padded, lmax = A._ell_data.shape
            acc = np.zeros(n_padded, dtype=DTYPE)
            for l in range(lmax):
                acc += (A._ell_data[:, l]
                        * xin[A._ell_idx[:, l].astype(np.int64)])
            tgt[:] = acc[A.inv_perm[: A.n_rows]]
        if half:
            from repro.util.precision import FP16V

            FP16V.encode(tgt, out=out)
        _charge_spmv(A, 1, counters, "spmv", prec)
    return out


def spmmv(
    A: CSRMatrix | SellMatrix,
    X: np.ndarray,
    out: np.ndarray | None = None,
    counters: PerfCounters = NULL_COUNTERS,
    metrics: MetricsRegistry = NULL_METRICS,
    precision: Precision | None = None,
) -> np.ndarray:
    """Compute ``Y = A @ X`` for a row-major block vector ``X`` of width R.

    The matrix is traversed once regardless of R — the defining data-traffic
    property of SpMMV the paper's optimization stage 2 exploits.
    """
    if not isinstance(A, (CSRMatrix, SellMatrix)):
        raise TypeError(f"unsupported matrix type {type(A).__name__}")
    prec = precision_of(X) if precision is None else precision
    half = X.dtype == np.float16
    if half:
        from repro.util.precision import FP16V

        Xin = check_block_vector("X", FP16V.decode(X), A.n_cols)
        r = Xin.shape[1]
        if out is None:
            out = np.empty((A.n_rows, r, 2), dtype=np.float16)
        elif out.shape != (A.n_rows, r, 2) or out.dtype != np.float16:
            raise ShapeError(
                f"out must be float16 of shape ({A.n_rows}, {r}, 2), got "
                f"{out.dtype} {out.shape}"
            )
        tgt = np.empty((A.n_rows, r), dtype=np.complex64)
    else:
        Xin = check_block_vector("X", X, A.n_cols)
        r = Xin.shape[1]
        if out is None:
            out = np.empty((A.n_rows, r), dtype=X.dtype)
        elif out.shape != (A.n_rows, r):
            raise ShapeError(
                f"out must have shape ({A.n_rows}, {r}), got {out.shape}"
            )
        tgt = out

    with metrics.span("spmmv", counters=counters):
        if _FAST_BACKEND:
            _fast_product(A, Xin, tgt)
        elif isinstance(A, CSRMatrix):
            _csr_spmmv_blocked(A, Xin, tgt)
        else:
            _sell_spmmv_blocked(A, Xin, tgt)
        if half:
            from repro.util.precision import FP16V

            FP16V.encode(tgt, out=out)
        _charge_spmv(A, r, counters, "spmmv", prec)
    return out


#: Row-block size for the cache-blocked SpMMV paths: chosen so one block
#: of the accumulator (block * R * 16 bytes) plus scratch stays inside a
#: typical last level cache while the 13-ish stencil terms stream over it
#: (the cache-blocking idea of the paper's Ref. [31]).
_SPMMV_ROW_BLOCK = 8192


def _csr_spmmv_blocked(A: CSRMatrix, X: np.ndarray, out: np.ndarray) -> None:
    """CSR block-vector product without the (nnz, R) global temporary."""
    idx64 = A.indices.astype(np.int64, copy=False)
    n = A.n_rows
    for lo in range(0, n, _SPMMV_ROW_BLOCK):
        hi = min(lo + _SPMMV_ROW_BLOCK, n)
        p0, p1 = A.indptr[lo], A.indptr[hi]
        products = A.data[p0:p1, None] * X[idx64[p0:p1], :]
        out[lo:hi] = segment_sum(products, A.indptr[lo : hi + 1] - p0)


def _sell_spmmv_blocked(A: SellMatrix, X: np.ndarray, out: np.ndarray) -> None:
    """SELL block-vector product, row-blocked with reused gather buffers.

    For each row block the (block, R) accumulator stays cache-resident
    across all slot columns; gathers land in a preallocated buffer and
    are multiply-accumulated in place, so each slot column costs one
    gather pass instead of three temporaries.
    """
    ell_data = A._ell_data
    ell_idx = A._ell_idx
    n_padded, lmax = ell_data.shape
    r = X.shape[1]
    acc = np.empty((min(_SPMMV_ROW_BLOCK, n_padded), r), dtype=X.dtype)
    buf = np.empty_like(acc)
    for lo in range(0, n_padded, _SPMMV_ROW_BLOCK):
        hi = min(lo + _SPMMV_ROW_BLOCK, n_padded)
        blk = hi - lo
        a_blk = acc[:blk]
        b_blk = buf[:blk]
        a_blk[:] = 0.0
        for l in range(lmax):
            np.take(X, ell_idx[lo:hi, l].astype(np.int64), axis=0, out=b_blk)
            b_blk *= ell_data[lo:hi, l, None]
            a_blk += b_blk
        # scatter this sorted block back to original row order
        sorted_rows = A.perm[lo:hi]
        valid = sorted_rows < A.n_rows
        out[sorted_rows[valid]] = a_blk[valid]
