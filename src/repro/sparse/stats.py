"""Sparsity-structure analysis.

The paper characterizes the TI matrix structurally: "the presence of
several sub-diagonals", "periodic boundary conditions in the x and y
directions lead to outlying diagonals in the matrix corners", "the
matrix is a stencil but not a band matrix". These diagnostics make those
statements checkable on any matrix, and they feed the cache-pressure
model (stencil reuse span) in :mod:`repro.perf.traffic`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sparse.csr import CSRMatrix


@dataclass
class MatrixStats:
    """Structural summary of a sparse matrix."""

    n_rows: int
    n_cols: int
    nnz: int
    nnzr_mean: float
    nnzr_min: int
    nnzr_max: int
    bandwidth: int
    #: offsets (col - row) that carry at least ``diag_threshold`` of the
    #: rows, sorted by descending population — the matrix "diagonals".
    diagonals: list[int] = field(default_factory=list)
    #: fraction of nnz on the listed diagonals
    diagonal_coverage: float = 0.0
    #: True when *partial* diagonals are present — diagonals populated on
    #: well under the full row count, the signature of periodic-boundary
    #: wrap-around terms ("outlying diagonals in the matrix corners",
    #: paper Sec. I-B): a wrap along an axis of extent L populates only
    #: N/L rows of its diagonal.
    has_corner_entries: bool = False

    @property
    def is_stencil_like(self) -> bool:
        """Most entries on a handful of diagonals, but not a band matrix
        (corner wrap entries present) — the paper's description."""
        return self.diagonal_coverage > 0.9 and len(self.diagonals) < 64


def analyze(A: CSRMatrix, diag_threshold: float = 0.05) -> MatrixStats:
    """Compute structural statistics of ``A``.

    ``diag_threshold``: minimum fraction of rows a (col-row) offset must
    populate to count as a diagonal.
    """
    rows = np.repeat(np.arange(A.n_rows), A.nnz_per_row)
    offsets = A.indices.astype(np.int64) - rows
    per_row = A.nnz_per_row
    if A.nnz:
        uniq, counts = np.unique(offsets, return_counts=True)
        order = np.argsort(-counts)
        keep = counts[order] >= diag_threshold * A.n_rows
        diagonals = uniq[order][keep].tolist()
        kept_counts = counts[order][keep]
        coverage = float(kept_counts.sum() / A.nnz)
        bandwidth = int(np.abs(offsets).max())
        # wrap diagonals are populated on only ~N/L rows, far below the
        # dominant (full) diagonals
        corner = bool(
            kept_counts.size
            and np.any(kept_counts <= 0.6 * kept_counts.max())
        )
    else:
        diagonals, coverage, bandwidth, corner = [], 0.0, 0, False
    return MatrixStats(
        n_rows=A.n_rows,
        n_cols=A.n_cols,
        nnz=A.nnz,
        nnzr_mean=A.nnzr,
        nnzr_min=int(per_row.min()) if A.n_rows else 0,
        nnzr_max=int(per_row.max()) if A.n_rows else 0,
        bandwidth=bandwidth,
        diagonals=diagonals,
        diagonal_coverage=coverage,
        has_corner_entries=corner,
    )


def stencil_reuse_rows(A: CSRMatrix, quantile: float = 0.98) -> float:
    """Row span over which input-vector entries are reused.

    For a stencil matrix, row i gathers x entries within
    ``[i - span, i + span]``; the reuse window that must stay cached for
    Omega ~ 1 is ``2 * span`` rows. Returns the ``quantile`` of |col-row|
    (robust to the few periodic wrap entries), times 2. This is the
    ``stencil_rows`` parameter of
    :func:`repro.perf.traffic.omega_parametric`.
    """
    if A.nnz == 0:
        return 0.0
    rows = np.repeat(np.arange(A.n_rows), A.nnz_per_row)
    offsets = np.abs(A.indices.astype(np.int64) - rows)
    return 2.0 * float(np.quantile(offsets, quantile))


def row_length_histogram(A: CSRMatrix) -> dict[int, int]:
    """Histogram {row length: count} — the SELL padding driver."""
    lengths, counts = np.unique(A.nnz_per_row, return_counts=True)
    return {int(l): int(c) for l, c in zip(lengths, counts)}
