"""Compile-on-first-use loader for the native C kernels.

The shared library is built from ``_kernels.c`` with whatever C compiler
the host offers (``$CC``, else ``gcc``, else ``cc``) at ``-O3``; the
resulting ``.so`` is cached under a per-user directory keyed by a hash of
the source text, so recompilation only happens when the kernels change.
Everything degrades gracefully: if no compiler is present, compilation
fails, or ``REPRO_NATIVE_DISABLE`` is set in the environment, the loader
reports the native backend as unavailable and callers fall back to the
NumPy backend (see :mod:`repro.sparse.backend`).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sysconfig
import tempfile
from pathlib import Path

import numpy as np

_SOURCE = Path(__file__).with_name("_kernels.c")

#: Compiler flags: -march=native lets the preprocessor see AVX2/F16C so
#: the explicitly vectorized ``_simd`` kernels are compiled in;
#: -funroll-loops measurably helps the short fixed-trip k loops over the
#: block width.  No -ffast-math — fp semantics must match NumPy's.
#:
#: ``-ffp-contract=off -fno-tree-vectorize`` pin the *scalar* kernels to
#: the literal source DAG.  This is what makes ``simd=on|off`` bitwise
#: reproducible: the hand-written intrinsic kernels replay exactly that
#: DAG lane-by-lane, but GCC's autovectorizer does not — e.g. GCC 12's
#: SLP pass contracts the interleaved complex multiply pattern into
#: ``vfmaddsub231pd`` even under ``-ffp-contract=off``, silently fusing
#: the rounding the flag was supposed to forbid.  With autovectorization
#: off the scalar build computes what the C says, the SIMD build matches
#: it bitwise by construction, and the old shape-dependent ``novector``
#: pragmas become redundant belt-and-suspenders.
#:
#: ``-fopenmp`` is appended by :func:`_cflags` when the compiler accepts
#: it (probed once, cached); without it the ``_mt`` kernels run their
#: block loop serially with bitwise-identical results.
_CFLAGS = [
    "-O3",
    "-march=native",
    "-funroll-loops",
    "-std=c11",
    "-ffp-contract=off",
    "-fno-tree-vectorize",
    "-fPIC",
    "-shared",
]

_openmp_supported: bool | None = None


def _probe_openmp(cc: str) -> bool:
    """Whether ``cc`` accepts ``-fopenmp`` (tiny probe compile, cached).

    The verdict is memoized in-process and persisted as a marker file in
    the cache directory so mp worker processes skip the probe.
    """
    global _openmp_supported
    if _openmp_supported is not None:
        return _openmp_supported
    marker = _cache_dir() / "omp.flag"
    try:
        cached = marker.read_text().strip()
        if cached in ("1", "0"):
            _openmp_supported = cached == "1"
            return _openmp_supported
    except OSError:
        pass
    with tempfile.TemporaryDirectory() as tmp:
        src = Path(tmp) / "probe.c"
        src.write_text(
            "#ifdef _OPENMP\n#include <omp.h>\n#endif\n"
            "int main(void) { return 0; }\n"
        )
        try:
            proc = subprocess.run(
                [cc, "-fopenmp", "-o", str(Path(tmp) / "probe"), str(src)],
                capture_output=True, timeout=30,
            )
            ok = proc.returncode == 0
        except (OSError, subprocess.TimeoutExpired):
            ok = False
    _openmp_supported = ok
    try:
        marker.parent.mkdir(parents=True, exist_ok=True)
        marker.write_text("1" if ok else "0")
    except OSError:
        pass
    return ok


def _cflags(cc: str | None = None) -> list[str]:
    """The effective compiler flags, including ``-fopenmp`` if usable."""
    cc = cc or _find_compiler()
    if cc is not None and _probe_openmp(cc):
        return [*_CFLAGS, "-fopenmp"]
    return list(_CFLAGS)


# ---------------------------------------------------------------------
# CPU-feature detection and the SIMD compile probe
# ---------------------------------------------------------------------

#: Feature flags that change which kernels end up in the ``.so`` (and
#: whether a cached one is safe to execute here); everything else the
#: CPU advertises is irrelevant to the cache key.
_SIMD_FEATURES = ("avx2", "f16c", "fma")

_HW_FEATURES: frozenset[str] | None = None
_SIMD_PROBE: dict[str, int] = {}


def cpu_features() -> frozenset[str]:
    """The host CPU's feature flags (cpuid, via ``/proc/cpuinfo``).

    Lower-cased; empty on platforms without ``/proc`` — the compile
    probe then stands in, since ``-march=native`` only enables what the
    compiler itself detected on this machine.
    """
    global _HW_FEATURES
    if _HW_FEATURES is None:
        feats: set[str] = set()
        try:
            with open("/proc/cpuinfo", encoding="utf-8", errors="replace") as fh:
                for line in fh:
                    if line.lower().startswith(("flags", "features")):
                        feats.update(line.split(":", 1)[1].lower().split())
                        break
        except OSError:
            pass
        _HW_FEATURES = frozenset(feats)
    return _HW_FEATURES


def _probe_simd_mask(cc: str) -> int:
    """What ``cc -march=native`` will vectorize: bit0 AVX2, bit1 F16C.

    A preprocessor-only probe (``-dM -E``) — fast, no binary, and it
    answers the exact question the ``#if`` gates in ``_kernels.c`` ask,
    so its verdict always matches what :func:`compile_library` builds.
    """
    cached = _SIMD_PROBE.get(cc)
    if cached is not None:
        return cached
    mask = 0
    try:
        proc = subprocess.run(
            [cc, *(f for f in _CFLAGS if f.startswith("-march")), "-dM", "-E", "-"],
            input="", capture_output=True, text=True, timeout=30,
        )
        if proc.returncode == 0:
            macros = proc.stdout
            if "__AVX2__" in macros:
                mask |= 1
                if "__F16C__" in macros:
                    mask |= 2
    except (OSError, subprocess.TimeoutExpired):
        mask = 0
    _SIMD_PROBE[cc] = mask
    return mask


def _feature_fingerprint(cc: str | None) -> str:
    """Cache-key component tying a built ``.so`` to this host's ISA.

    ``-march=native`` bakes host-specific instruction selection into the
    binary while leaving the source+flags hash unchanged, so a container
    migrated from an AVX2 host to one without it would happily dlopen a
    library it cannot execute.  Folding the cpuid flags and the compile
    probe's verdict into the key forces a rebuild the moment either
    changes.
    """
    hw = ",".join(f for f in _SIMD_FEATURES if f in cpu_features())
    probe = _probe_simd_mask(cc) if cc is not None else 0
    return f"hw={hw};probe={probe}"


def simd_compiled_mask() -> int:
    """SIMD kernel families present in the loaded library.

    Bit 0: AVX2/FMA-lane kernels; bit 1: F16C half-precision kernels.
    0 when the native library is unavailable or was built scalar-only.
    """
    lib = load_library()
    if lib is None:
        return 0
    return int(lib.repro_simd_compiled())


def simd_available() -> bool:
    """True when the ``_simd`` kernels exist and are not disabled.

    ``REPRO_SIMD_DISABLE`` is consulted per call so the forced-scalar
    drill can flip it without reloading the library.
    """
    if os.environ.get("REPRO_SIMD_DISABLE"):
        return False
    return bool(simd_compiled_mask() & 1)


def simd_f16c_available() -> bool:
    """True when the F16C half-precision SIMD kernels are usable."""
    if os.environ.get("REPRO_SIMD_DISABLE"):
        return False
    return bool(simd_compiled_mask() & 2)


def _compile_timeout() -> float:
    """Seconds the compiler subprocess may run before we give up.

    ``REPRO_NATIVE_COMPILE_TIMEOUT`` overrides the default; a malformed
    or non-positive value falls back to the default rather than crashing
    (or, for values ``<= 0``, instantly "timing out" every compile and
    silently quarantining the native backend) — the whole point of this
    knob is that a compile problem must never take the run down with it.
    """
    raw = os.environ.get("REPRO_NATIVE_COMPILE_TIMEOUT")
    if raw:
        try:
            value = float(raw)
        except ValueError:
            return COMPILE_TIMEOUT
        if value > 0:
            return value
    return COMPILE_TIMEOUT


#: Default compiler-subprocess timeout (seconds); see
#: :envvar:`REPRO_NATIVE_COMPILE_TIMEOUT`.
COMPILE_TIMEOUT = 120.0

_lib: ctypes.CDLL | None = None
_load_attempted = False
_load_error: str | None = None

_P_F64 = ctypes.POINTER(ctypes.c_double)
_P_F32 = ctypes.POINTER(ctypes.c_float)
_P_I64 = ctypes.POINTER(ctypes.c_int64)
_P_I32 = ctypes.POINTER(ctypes.c_int32)
_P_U16 = ctypes.POINTER(ctypes.c_uint16)

#: Exported kernel-name suffix per precision profile, mapped to the
#: (matrix values, vector storage, column indices) pointer types that
#: profile streams.  Mirrors the macro expansions in ``_kernels.c``:
#: float16 vectors travel as their raw uint16 bit patterns.
KERNEL_SUFFIXES = {
    "": (_P_F64, _P_F64, _P_I32),
    "_f32": (_P_F32, _P_F32, _P_I32),
    "_f32u16": (_P_F32, _P_F32, _P_U16),
    "_f16v": (_P_F32, _P_U16, _P_I32),
    "_f16vu16": (_P_F32, _P_U16, _P_U16),
}

#: Argtype templates shared by every typed expansion of a kernel:
#: ``n`` int64 scalar, ``s`` double scalar, ``L`` int64* (indptr /
#: chunk arrays / row lists), ``I`` column indices*, ``V`` matrix
#: values*, ``X`` vector storage*, ``E`` double* (eta outputs — always
#: fp64, the kernels accumulate the dots in double in every profile).
_SIGNATURES = {
    "repro_csr_spmv": "nLIVXX",
    "repro_csr_spmmv": "nnLIVXX",
    "repro_csr_aug_spmv": "nLIVXXssEE",
    "repro_csr_aug_spmmv": "nnLIVXXssEE",
    # split (task-mode) variants: a contiguous [row0, row1) range and a
    # gathered row list, both absolute on the original CSR arrays
    "repro_csr_aug_spmv_range": "nnLIVXXssEE",
    "repro_csr_aug_spmv_rows": "nLLIVXXssEE",
    "repro_csr_aug_spmmv_range": "nnnLIVXXssEE",
    "repro_csr_aug_spmmv_rows": "nLnLIVXXssEE",
    "repro_sell_spmv": "nnnLLLIVXX",
    "repro_sell_spmmv": "nnnnLLLIVXX",
    "repro_sell_aug_spmv": "nnnLLLIVXXssEE",
    "repro_sell_aug_spmmv": "nnnnLLLIVXXssEE",
    # threaded (_mt) variants: an extra n_threads scalar after r; the
    # block-grid reduction keeps fp64 bitwise across thread counts
    "repro_csr_aug_spmmv_mt": "nnnLIVXXssEE",
    "repro_csr_aug_spmmv_range_mt": "nnnnLIVXXssEE",
    "repro_csr_aug_spmmv_rows_mt": "nLnnLIVXXssEE",
    "repro_sell_aug_spmmv_mt": "nnnnnLLLIVXXssEE",
}


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    home = Path.home()
    if os.access(home, os.W_OK):
        return home / ".cache" / "repro-native"
    return Path(tempfile.gettempdir()) / "repro-native"


def _find_compiler() -> str | None:
    for cand in (os.environ.get("CC"), "gcc", "cc"):
        if cand and shutil.which(cand):
            return cand
    return None


def _lib_path() -> Path:
    # Key on the flags too: a flag change alters codegen (and can alter
    # rounding), so it must miss the cache just like a source change.
    # The feature fingerprint keys the host ISA in as well — see
    # _feature_fingerprint for why -march=native makes that mandatory.
    cc = _find_compiler()
    recipe = (
        _SOURCE.read_bytes()
        + "\0".join(_cflags(cc)).encode()
        + b"\0" + _feature_fingerprint(cc).encode()
    )
    tag = hashlib.sha256(recipe).hexdigest()[:16]
    suffix = sysconfig.get_config_var("SHLIB_SUFFIX") or ".so"
    return _cache_dir() / f"repro_kernels-{tag}{suffix}"


def _declare(lib: ctypes.CDLL) -> ctypes.CDLL:
    for suffix, (vp, xp, ip) in KERNEL_SUFFIXES.items():
        codes = {
            "n": ctypes.c_int64,
            "s": ctypes.c_double,
            "L": _P_I64,
            "I": ip,
            "V": vp,
            "X": xp,
            "E": _P_F64,
        }
        for base, sig in _SIGNATURES.items():
            fn = getattr(lib, base + suffix)
            fn.argtypes = [codes[ch] for ch in sig]
            fn.restype = None
            # The vectorized twins share the scalar signature; they only
            # exist when the build host's compiler saw AVX2 (F16C for the
            # half-precision profiles), so probe instead of assuming.
            try:
                simd_fn = getattr(lib, base + suffix + "_simd")
            except AttributeError:
                continue
            simd_fn.argtypes = [codes[ch] for ch in sig]
            simd_fn.restype = None
    lib.repro_simd_compiled.argtypes = []
    lib.repro_simd_compiled.restype = ctypes.c_int32
    return lib


def compile_library(verbose: bool = False) -> Path:
    """Compile ``_kernels.c`` into the cache and return the .so path.

    Raises ``RuntimeError`` when no compiler is available or the compile
    fails; callers wanting the graceful path use :func:`load_library`.
    """
    path = _lib_path()
    if path.exists():
        return path
    cc = _find_compiler()
    if cc is None:
        raise RuntimeError("no C compiler found ($CC, gcc, cc)")
    path.parent.mkdir(parents=True, exist_ok=True)
    # build into a temp name, then atomic-rename: concurrent processes
    # compiling the same hash never observe a half-written library
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    cmd = [cc, *_cflags(cc), "-o", str(tmp), str(_SOURCE), "-lm"]
    if verbose:
        print("$ " + " ".join(cmd))
    timeout = _compile_timeout()
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=timeout)
    except subprocess.TimeoutExpired:
        tmp.unlink(missing_ok=True)
        raise RuntimeError(
            f"native kernel compilation timed out after {timeout:.0f}s ({cc})"
        ) from None
    if proc.returncode != 0:
        tmp.unlink(missing_ok=True)
        raise RuntimeError(
            f"native kernel compilation failed ({cc}):\n{proc.stderr.strip()}"
        )
    os.replace(tmp, path)
    return path


def load_library(force_reload: bool = False) -> ctypes.CDLL | None:
    """Return the compiled kernel library, or None when unavailable."""
    global _lib, _load_attempted, _load_error
    if force_reload:
        _lib, _load_attempted, _load_error = None, False, None
    if _lib is not None:
        return _lib
    if _load_attempted:
        return None
    _load_attempted = True
    if os.environ.get("REPRO_NATIVE_DISABLE"):
        _load_error = "disabled via REPRO_NATIVE_DISABLE"
        return None
    try:
        _lib = _declare(ctypes.CDLL(str(compile_library())))
    except (RuntimeError, OSError) as exc:
        _load_error = str(exc)
        if _load_error.startswith("native kernel compilation"):
            # A compiler exists but failed (or timed out): this is worth
            # one loud warning and a health counter — unlike the silent
            # no-compiler / disabled cases, something on this host is
            # broken, yet the run must proceed on the numpy kernels.
            import warnings

            from repro.obs import GLOBAL_METRICS

            GLOBAL_METRICS.count("backend.native.compile_failures")
            warnings.warn(
                f"falling back to the numpy kernels: {_load_error}",
                RuntimeWarning,
                stacklevel=2,
            )
        return None
    return _lib


def native_available() -> bool:
    """True when the compiled kernels can be (or have been) loaded."""
    return load_library() is not None


def native_error() -> str | None:
    """Why the native backend is unavailable (None when it is fine)."""
    load_library()
    return _load_error


# ---------------------------------------------------------------------
# array marshalling
# ---------------------------------------------------------------------

def _pc(arr: np.ndarray):
    """Complex128 C-contiguous array as a double* (interleaved re, im)."""
    return arr.ctypes.data_as(_P_F64)


def _pf32(arr: np.ndarray):
    """Complex64 C-contiguous array as a float* (interleaved re, im)."""
    return arr.ctypes.data_as(_P_F32)


def _pu16(arr: np.ndarray):
    """uint16 indices — or float16 pair storage as raw uint16 bits."""
    return arr.ctypes.data_as(_P_U16)


def _pvec(arr: np.ndarray):
    """Value/vector storage pointer for any precision profile's dtype."""
    dt = arr.dtype
    if dt == np.complex128:
        return arr.ctypes.data_as(_P_F64)
    if dt == np.complex64:
        return arr.ctypes.data_as(_P_F32)
    if dt == np.float16:
        return arr.ctypes.data_as(_P_U16)
    raise TypeError(f"no native storage marshalling for dtype {dt}")


def _pidx(arr: np.ndarray):
    """Column-index pointer: int32 (wide) or uint16 (compressed)."""
    dt = arr.dtype
    if dt == np.int32:
        return arr.ctypes.data_as(_P_I32)
    if dt == np.uint16:
        return arr.ctypes.data_as(_P_U16)
    raise TypeError(f"no native index marshalling for dtype {dt}")


def _pi64(arr: np.ndarray):
    return arr.ctypes.data_as(_P_I64)


def _pi32(arr: np.ndarray):
    return arr.ctypes.data_as(_P_I32)
