"""Compile-on-first-use loader for the native C kernels.

The shared library is built from ``_kernels.c`` with whatever C compiler
the host offers (``$CC``, else ``gcc``, else ``cc``) at ``-O3``; the
resulting ``.so`` is cached under a per-user directory keyed by a hash of
the source text, so recompilation only happens when the kernels change.
Everything degrades gracefully: if no compiler is present, compilation
fails, or ``REPRO_NATIVE_DISABLE`` is set in the environment, the loader
reports the native backend as unavailable and callers fall back to the
NumPy backend (see :mod:`repro.sparse.backend`).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sysconfig
import tempfile
from pathlib import Path

import numpy as np

_SOURCE = Path(__file__).with_name("_kernels.c")

#: Compiler flags: -O3 auto-vectorizes the lane/k loops; -march=native
#: unlocks FMA where the host has it; -funroll-loops measurably helps the
#: short fixed-trip k loops over the block width. No -ffast-math — the
#: kernels use plain real arithmetic, so fp semantics match NumPy's.
_CFLAGS = ["-O3", "-march=native", "-funroll-loops", "-std=c11", "-fPIC", "-shared"]


def _compile_timeout() -> float:
    """Seconds the compiler subprocess may run before we give up.

    ``REPRO_NATIVE_COMPILE_TIMEOUT`` overrides the default (a malformed
    value falls back rather than crashing — the whole point of this knob
    is that a compile problem must never take the run down with it).
    """
    raw = os.environ.get("REPRO_NATIVE_COMPILE_TIMEOUT")
    if raw:
        try:
            return float(raw)
        except ValueError:
            pass
    return COMPILE_TIMEOUT


#: Default compiler-subprocess timeout (seconds); see
#: :envvar:`REPRO_NATIVE_COMPILE_TIMEOUT`.
COMPILE_TIMEOUT = 120.0

_lib: ctypes.CDLL | None = None
_load_attempted = False
_load_error: str | None = None

_P_F64 = ctypes.POINTER(ctypes.c_double)
_P_I64 = ctypes.POINTER(ctypes.c_int64)
_P_I32 = ctypes.POINTER(ctypes.c_int32)


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    home = Path.home()
    if os.access(home, os.W_OK):
        return home / ".cache" / "repro-native"
    return Path(tempfile.gettempdir()) / "repro-native"


def _find_compiler() -> str | None:
    for cand in (os.environ.get("CC"), "gcc", "cc"):
        if cand and shutil.which(cand):
            return cand
    return None


def _lib_path() -> Path:
    tag = hashlib.sha256(_SOURCE.read_bytes()).hexdigest()[:16]
    suffix = sysconfig.get_config_var("SHLIB_SUFFIX") or ".so"
    return _cache_dir() / f"repro_kernels-{tag}{suffix}"


def _declare(lib: ctypes.CDLL) -> ctypes.CDLL:
    i64, f64 = ctypes.c_int64, ctypes.c_double
    lib.repro_csr_spmv.argtypes = [i64, _P_I64, _P_I32, _P_F64, _P_F64, _P_F64]
    lib.repro_csr_spmmv.argtypes = [
        i64, i64, _P_I64, _P_I32, _P_F64, _P_F64, _P_F64,
    ]
    lib.repro_csr_aug_spmv.argtypes = [
        i64, _P_I64, _P_I32, _P_F64, _P_F64, _P_F64, f64, f64, _P_F64, _P_F64,
    ]
    lib.repro_csr_aug_spmmv.argtypes = [
        i64, i64, _P_I64, _P_I32, _P_F64, _P_F64, _P_F64, f64, f64,
        _P_F64, _P_F64,
    ]
    # split (task-mode) variants: a contiguous [row0, row1) range and a
    # gathered row list, both absolute on the original CSR arrays
    lib.repro_csr_aug_spmv_range.argtypes = [
        i64, i64, _P_I64, _P_I32, _P_F64, _P_F64, _P_F64, f64, f64,
        _P_F64, _P_F64,
    ]
    lib.repro_csr_aug_spmv_rows.argtypes = [
        i64, _P_I64, _P_I64, _P_I32, _P_F64, _P_F64, _P_F64, f64, f64,
        _P_F64, _P_F64,
    ]
    lib.repro_csr_aug_spmmv_range.argtypes = [
        i64, i64, i64, _P_I64, _P_I32, _P_F64, _P_F64, _P_F64, f64, f64,
        _P_F64, _P_F64,
    ]
    lib.repro_csr_aug_spmmv_rows.argtypes = [
        i64, _P_I64, i64, _P_I64, _P_I32, _P_F64, _P_F64, _P_F64, f64, f64,
        _P_F64, _P_F64,
    ]
    lib.repro_sell_spmv.argtypes = [
        i64, i64, i64, _P_I64, _P_I64, _P_I64, _P_I32, _P_F64, _P_F64, _P_F64,
    ]
    lib.repro_sell_spmmv.argtypes = [
        i64, i64, i64, i64, _P_I64, _P_I64, _P_I64, _P_I32, _P_F64,
        _P_F64, _P_F64,
    ]
    lib.repro_sell_aug_spmv.argtypes = [
        i64, i64, i64, _P_I64, _P_I64, _P_I64, _P_I32, _P_F64, _P_F64, _P_F64,
        f64, f64, _P_F64, _P_F64,
    ]
    lib.repro_sell_aug_spmmv.argtypes = [
        i64, i64, i64, i64, _P_I64, _P_I64, _P_I64, _P_I32, _P_F64,
        _P_F64, _P_F64, f64, f64, _P_F64, _P_F64,
    ]
    for name in (
        "repro_csr_spmv", "repro_csr_spmmv", "repro_csr_aug_spmv",
        "repro_csr_aug_spmmv", "repro_csr_aug_spmv_range",
        "repro_csr_aug_spmv_rows", "repro_csr_aug_spmmv_range",
        "repro_csr_aug_spmmv_rows", "repro_sell_spmv", "repro_sell_spmmv",
        "repro_sell_aug_spmv", "repro_sell_aug_spmmv",
    ):
        getattr(lib, name).restype = None
    return lib


def compile_library(verbose: bool = False) -> Path:
    """Compile ``_kernels.c`` into the cache and return the .so path.

    Raises ``RuntimeError`` when no compiler is available or the compile
    fails; callers wanting the graceful path use :func:`load_library`.
    """
    path = _lib_path()
    if path.exists():
        return path
    cc = _find_compiler()
    if cc is None:
        raise RuntimeError("no C compiler found ($CC, gcc, cc)")
    path.parent.mkdir(parents=True, exist_ok=True)
    # build into a temp name, then atomic-rename: concurrent processes
    # compiling the same hash never observe a half-written library
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    cmd = [cc, *_CFLAGS, "-o", str(tmp), str(_SOURCE), "-lm"]
    if verbose:
        print("$ " + " ".join(cmd))
    timeout = _compile_timeout()
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=timeout)
    except subprocess.TimeoutExpired:
        tmp.unlink(missing_ok=True)
        raise RuntimeError(
            f"native kernel compilation timed out after {timeout:.0f}s ({cc})"
        ) from None
    if proc.returncode != 0:
        tmp.unlink(missing_ok=True)
        raise RuntimeError(
            f"native kernel compilation failed ({cc}):\n{proc.stderr.strip()}"
        )
    os.replace(tmp, path)
    return path


def load_library(force_reload: bool = False) -> ctypes.CDLL | None:
    """Return the compiled kernel library, or None when unavailable."""
    global _lib, _load_attempted, _load_error
    if force_reload:
        _lib, _load_attempted, _load_error = None, False, None
    if _lib is not None:
        return _lib
    if _load_attempted:
        return None
    _load_attempted = True
    if os.environ.get("REPRO_NATIVE_DISABLE"):
        _load_error = "disabled via REPRO_NATIVE_DISABLE"
        return None
    try:
        _lib = _declare(ctypes.CDLL(str(compile_library())))
    except (RuntimeError, OSError) as exc:
        _load_error = str(exc)
        if _load_error.startswith("native kernel compilation"):
            # A compiler exists but failed (or timed out): this is worth
            # one loud warning and a health counter — unlike the silent
            # no-compiler / disabled cases, something on this host is
            # broken, yet the run must proceed on the numpy kernels.
            import warnings

            from repro.obs import GLOBAL_METRICS

            GLOBAL_METRICS.count("backend.native.compile_failures")
            warnings.warn(
                f"falling back to the numpy kernels: {_load_error}",
                RuntimeWarning,
                stacklevel=2,
            )
        return None
    return _lib


def native_available() -> bool:
    """True when the compiled kernels can be (or have been) loaded."""
    return load_library() is not None


def native_error() -> str | None:
    """Why the native backend is unavailable (None when it is fine)."""
    load_library()
    return _load_error


# ---------------------------------------------------------------------
# array marshalling
# ---------------------------------------------------------------------

def _pc(arr: np.ndarray):
    """Complex128 C-contiguous array as a double* (interleaved re, im)."""
    return arr.ctypes.data_as(_P_F64)


def _pi64(arr: np.ndarray):
    return arr.ctypes.data_as(_P_I64)


def _pi32(arr: np.ndarray):
    return arr.ctypes.data_as(_P_I32)
