"""Pluggable kernel backends for the KPM inner-iteration kernels.

The moment engines, the distributed driver, and the CLI all consume the
four performance-critical kernels (``spmv``, ``spmmv``, ``aug_spmv``,
``aug_spmmv``) through the :class:`KernelBackend` interface defined
here.  Two implementations are registered:

``numpy``
    The vectorized NumPy/SciPy kernels of :mod:`repro.sparse.spmv` and
    :mod:`repro.sparse.fused`, driven through preallocated workspace
    plans so the steady-state iteration allocates nothing.
``native``
    Truly single-pass C kernels (CSR and SELL-C-sigma) compiled from
    ``_kernels.c`` on first use — see
    :mod:`repro.sparse.backend.native_backend`.  Unavailable hosts (no C
    compiler, or ``REPRO_NATIVE_DISABLE`` set) fall back to ``numpy``
    automatically under the ``auto`` selector.

Both backends charge identical Table-I traffic/flop accounting to
:class:`~repro.util.counters.PerfCounters`, so every performance model
in :mod:`repro.perf` works unchanged whichever backend computed the
numbers.

Usage::

    from repro.sparse.backend import get_backend

    bk = get_backend("auto")          # native if compilable, else numpy
    plan = bk.plan(H, r=32)           # workspaces sized once per (H, R)
    eta_even, eta_odd = bk.aug_spmmv_step(H, V, W, a, b, plan=plan)
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.obs import NULL_METRICS, MetricsRegistry
from repro.util.constants import DTYPE
from repro.util.counters import NULL_COUNTERS, PerfCounters
from repro.util.errors import BackendError

#: Valid values of the user-facing ``backend=`` knob.
BACKEND_CHOICES = ("auto", "numpy", "native")


class KernelPlan:
    """Preallocated workspaces for repeated kernel steps on one (A, R).

    Sized once per matrix/block-width pair and reused across all M/2
    inner iterations; the buffers are scratch (contents undefined between
    calls).  ``u`` holds the SpM(M)V result, ``work`` is a second pass
    buffer, and the small ``eta`` buffers receive the per-column dots
    without per-call allocation.
    """

    def __init__(self, A, r: int = 1) -> None:
        self.matrix = A
        self.r = int(r)
        n = A.n_rows
        shape = (n,) if self.r == 1 else (n, self.r)
        self.u = np.empty(shape, dtype=DTYPE)
        self.work = np.empty(shape, dtype=DTYPE)
        # 2-D views of the same storage for the blocked engines, which
        # need (n, r) even when r == 1 (where u/work are 1-D vectors).
        self.u_block = self.u.reshape(n, self.r)
        self.work_block = self.work.reshape(n, self.r)
        self.eta_even = np.empty(self.r, dtype=np.float64)
        self.eta_odd = np.empty(self.r, dtype=DTYPE)


class KernelBackend(ABC):
    """Interface every kernel backend implements.

    ``A`` is a :class:`~repro.sparse.csr.CSRMatrix` or
    :class:`~repro.sparse.sell.SellMatrix`; block vectors are row-major
    (N, R) complex128.  The ``*_step`` kernels update ``w``/``W`` in
    place with ``w_new = 2a(H - b)v - w`` and return
    ``(eta_even, eta_odd)`` — see :mod:`repro.sparse.fused`.

    Every kernel accepts, besides the Table-I ``counters`` sink, a
    :class:`~repro.obs.MetricsRegistry`; implementations must record one
    span named after the kernel per invocation (with the counters
    attached, so measured wall time and charged traffic line up span by
    span).  Both are free when the null defaults are used.
    """

    name: str = "?"

    @abstractmethod
    def available(self) -> bool:
        """Whether this backend can run on the current host."""

    def plan(self, A, r: int = 1) -> KernelPlan:
        """Allocate the workspaces for repeated steps on ``(A, r)``."""
        return KernelPlan(A, r)

    @abstractmethod
    def spmv(self, A, x, out=None, counters: PerfCounters = NULL_COUNTERS,
             metrics: MetricsRegistry = NULL_METRICS):
        """``out = A @ x`` for a single vector."""

    @abstractmethod
    def spmmv(self, A, X, out=None, counters: PerfCounters = NULL_COUNTERS,
              metrics: MetricsRegistry = NULL_METRICS):
        """``out = A @ X`` for a row-major (N, R) block vector."""

    @abstractmethod
    def naive_step(
        self, A, v, w, a, b, plan: KernelPlan | None = None,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        """Paper Fig. 3: SpMV + separate BLAS-1 calls."""

    @abstractmethod
    def aug_spmv_step(
        self, A, v, w, a, b, plan: KernelPlan | None = None,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        """Paper Fig. 4 (stage 1): fused single-vector update + dots."""

    @abstractmethod
    def aug_spmmv_step(
        self, A, V, W, a, b, plan: KernelPlan | None = None,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        """Paper Fig. 5 (stage 2): fused block update + column dots."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


# ---------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------

_REGISTRY: dict[str, type[KernelBackend]] = {}
_INSTANCES: dict[str, KernelBackend] = {}

#: Runtime health ledger: failures observed against each backend *after*
#: it loaded fine (compile crashes mid-run, repeated kernel errors, ...).
#: A quarantined backend is skipped by the ``auto`` selector until
#: :func:`reset_backend_health` — asking for it *by name* still works, so
#: an operator can always override the quarantine deliberately.
_HEALTH: dict[str, dict] = {}


def _health_entry(name: str) -> dict:
    if name not in _HEALTH:
        _HEALTH[name] = {"failures": 0, "quarantined": False, "last_error": None}
    return _HEALTH[name]


def report_backend_failure(
    name: str, reason: str = "", *, quarantine: bool = True
) -> None:
    """Record a runtime failure against a backend (see ``_HEALTH``).

    Called by the resilience supervisor when it classifies an engine
    failure as backend-induced; with ``quarantine=True`` (default) the
    ``auto`` selector stops handing the backend out.
    """
    from repro.obs import GLOBAL_METRICS

    entry = _health_entry(name)
    entry["failures"] += 1
    entry["last_error"] = reason or entry["last_error"]
    if quarantine:
        entry["quarantined"] = True
    GLOBAL_METRICS.count(f"backend.{name}.failures")


def backend_health() -> dict[str, dict]:
    """A copy of the runtime health ledger (for reports and tests)."""
    return {name: dict(entry) for name, entry in _HEALTH.items()}


def backend_quarantined(name: str) -> bool:
    """Whether the ``auto`` selector currently avoids this backend."""
    return bool(_HEALTH.get(name, {}).get("quarantined"))


def reset_backend_health(name: str | None = None) -> None:
    """Clear the health ledger (one backend, or all with ``None``)."""
    if name is None:
        _HEALTH.clear()
    else:
        _HEALTH.pop(name, None)


def register_backend(name: str, cls: type[KernelBackend]) -> None:
    """Register a backend class under ``name`` (replaces any previous)."""
    _REGISTRY[name] = cls
    _INSTANCES.pop(name, None)


def _instance(name: str) -> KernelBackend:
    if name not in _REGISTRY:
        raise BackendError(
            f"unknown kernel backend {name!r}; choose from "
            f"{sorted([*_REGISTRY, 'auto'])}"
        )
    if name not in _INSTANCES:
        _INSTANCES[name] = _REGISTRY[name]()
    return _INSTANCES[name]


def get_backend(name: str | KernelBackend | None = "auto") -> KernelBackend:
    """Resolve a backend by name.

    ``'auto'`` (or None) prefers ``native`` when the C kernels compile on
    this host and silently falls back to ``numpy`` otherwise.  Asking for
    ``'native'`` explicitly raises :class:`~repro.util.errors.BackendError`
    when it is unavailable, with the compiler diagnostic attached.
    Passing an existing :class:`KernelBackend` returns it unchanged.
    """
    if isinstance(name, KernelBackend):
        return name
    name = (name or "auto").lower()
    if name == "auto":
        native = _instance("native")
        if native.available() and not backend_quarantined("native"):
            return native
        return _instance("numpy")
    backend = _instance(name)
    if not backend.available():
        from repro.sparse.backend.native import native_error

        reason = native_error() if name == "native" else "unavailable"
        raise BackendError(f"kernel backend {name!r} unavailable: {reason}")
    return backend


def available_backends() -> dict[str, bool]:
    """Availability of every registered backend on this host."""
    return {name: _instance(name).available() for name in sorted(_REGISTRY)}


# Register the built-in implementations (import order matters: these
# modules import the base class from this package).
from repro.sparse.backend.numpy_backend import NumpyBackend  # noqa: E402
from repro.sparse.backend.native_backend import NativeBackend  # noqa: E402

register_backend(NumpyBackend.name, NumpyBackend)
register_backend(NativeBackend.name, NativeBackend)

__all__ = [
    "BACKEND_CHOICES",
    "KernelBackend",
    "KernelPlan",
    "NativeBackend",
    "NumpyBackend",
    "available_backends",
    "backend_health",
    "backend_quarantined",
    "get_backend",
    "register_backend",
    "report_backend_failure",
    "reset_backend_health",
]
