"""Pluggable kernel backends for the KPM inner-iteration kernels.

The moment engines, the distributed driver, and the CLI all consume the
four performance-critical kernels (``spmv``, ``spmmv``, ``aug_spmv``,
``aug_spmmv``) through the :class:`KernelBackend` interface defined
here.  Two implementations are registered:

``numpy``
    The vectorized NumPy/SciPy kernels of :mod:`repro.sparse.spmv` and
    :mod:`repro.sparse.fused`, driven through preallocated workspace
    plans so the steady-state iteration allocates nothing.
``native``
    Truly single-pass C kernels (CSR and SELL-C-sigma) compiled from
    ``_kernels.c`` on first use — see
    :mod:`repro.sparse.backend.native_backend`.  Unavailable hosts (no C
    compiler, or ``REPRO_NATIVE_DISABLE`` set) fall back to ``numpy``
    automatically under the ``auto`` selector.

Both backends charge identical Table-I traffic/flop accounting to
:class:`~repro.util.counters.PerfCounters`, so every performance model
in :mod:`repro.perf` works unchanged whichever backend computed the
numbers.

Usage::

    from repro.sparse.backend import get_backend

    bk = get_backend("auto")          # native if compilable, else numpy
    plan = bk.plan(H, r=32)           # workspaces sized once per (H, R)
    eta_even, eta_odd = bk.aug_spmmv_step(H, V, W, a, b, plan=plan)
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.obs import NULL_METRICS, MetricsRegistry
from repro.util.constants import DTYPE
from repro.util.counters import NULL_COUNTERS, PerfCounters
from repro.util.errors import BackendError

#: Valid values of the user-facing ``backend=`` knob.
BACKEND_CHOICES = ("auto", "numpy", "native")

#: Valid values of the user-facing ``simd=`` knob (``None`` ≡ ``auto``).
SIMD_CHOICES = ("auto", "on", "off")


def resolve_simd(simd: str | None) -> str:
    """Normalize and validate the ``simd`` knob value.

    ``None`` means ``"auto"`` (use the vectorized kernels whenever the
    host has them).  The tri-state mirrors how ``threads`` rides the
    plans: the knob is resolved here once, carried on the plan, and the
    backends consult it at dispatch.  The choice never changes results —
    fp64 moments are bitwise identical either way — only which of the
    two bitwise-equal kernel families runs.
    """
    if simd is None:
        return "auto"
    if isinstance(simd, str) and simd.lower() in SIMD_CHOICES:
        return simd.lower()
    raise BackendError(
        f"invalid simd selector {simd!r}; choose from "
        f"{[None, *SIMD_CHOICES]}"
    )


class KernelPlan:
    """Preallocated workspaces for repeated kernel steps on one (A, R).

    Sized once per matrix/block-width pair and reused across all M/2
    inner iterations; the buffers are scratch (contents undefined between
    calls).  ``u`` holds the SpM(M)V result, ``work`` is a second pass
    buffer, and the small ``eta`` buffers receive the per-column dots
    without per-call allocation.

    ``precision`` selects the profile the plan serves.  ``u``/``work``
    are *compute*-dtype scratch (complex128 for fp64, complex64 for the
    narrow profiles — they hold intermediate SpM(M)V results, which are
    formed in the compute dtype even when vectors are stored narrower);
    the eta buffers stay fp64/complex128 in every profile, matching the
    kernels' double-accumulated dots.  The fp16v profile adds complex64
    decode scratch (``vc``/``wc``) for the NumPy backend's half-storage
    paths.

    ``threads`` selects the intra-rank threaded (``_mt``) kernels:
    ``None`` (the default) runs the historical sequential kernels
    untouched; any explicit count >= 1 routes the augmented steps
    through the block-grid threaded variants, whose fp64 results are
    bitwise identical at every thread count (the grid and the
    block-order Kahan combine depend only on the problem).  The NumPy
    backend accepts the knob and ignores it — its vectorized reduction
    is trivially thread-count invariant.

    ``simd`` (``None``/``"auto"``/``"on"``/``"off"``) selects the
    explicitly vectorized AVX2/F16C kernel family in the native backend;
    like ``threads`` it is carried on the plan and never changes fp64
    results bitwise.  ``"on"`` falls back to scalar cleanly (with an obs
    counter) when the host lacks the vectorized build; the NumPy backend
    accepts the knob and ignores it.
    """

    def __init__(self, A, r: int = 1, precision=None, threads=None,
                 simd=None) -> None:
        from repro.util.precision import get_precision

        self.matrix = A
        self.precision = prec = get_precision(precision)
        self.r = int(r)
        self.threads = None if threads is None else max(1, int(threads))
        self.simd = resolve_simd(simd)
        n = A.n_rows
        shape = (n,) if self.r == 1 else (n, self.r)
        cdt = prec.compute_dtype
        self.u = np.empty(shape, dtype=cdt)
        self.work = np.empty(shape, dtype=cdt)
        # 2-D views of the same storage for the blocked engines, which
        # need (n, r) even when r == 1 (where u/work are 1-D vectors).
        self.u_block = self.u.reshape(n, self.r)
        self.work_block = self.work.reshape(n, self.r)
        self.eta_even = np.empty(self.r, dtype=np.float64)
        self.eta_odd = np.empty(self.r, dtype=DTYPE)
        if prec.half_vectors:
            # complex64 decode scratch for the NumPy half-storage paths:
            # vc spans the full column range (local + halo), wc the rows
            self.vc = np.empty((A.n_cols, self.r), dtype=cdt)
            self.wc = np.empty((n, self.r), dtype=cdt)
            # half-storage SpM(M)V output scratch for the decode-pass
            # engines (naive, ldos): the matrix apply streams the half
            # layout, the BLAS-1 work happens on the decoded fp32 copies
            self.uh = (
                prec.vec_empty(n) if self.r == 1
                else prec.vec_empty(n, self.r)
            )
            self.uh_block = self.uh.reshape(n, self.r, 2)


class SplitKernelPlan:
    """Workspaces for the two-phase (task-mode) split kernels.

    Built once per ``(A, split, R)`` by :meth:`KernelBackend.split_plan`
    and reused across all inner iterations.  ``split`` is an execution
    split in the shape of :class:`repro.dist.overlap.TaskSplit` (duck
    typed — ``row0``/``row1``/``boundary`` — so this layer stays free of
    a dependency on the distributed package): a contiguous interior row
    range plus a sorted gathered boundary row list.

    The plan holds everything either backend needs allocation-free in
    the steady state: the extracted interior/boundary sub-matrices (full
    local+halo column range, for the NumPy phase kernels), gather/scatter
    scratch for the boundary rows, the contiguous int64 row list (for
    the native gathered kernel), and per-phase eta partial buffers.
    Split kernels are CSR-only: the distributed engines partition CSR
    operators, so a SELL split has no consumer.
    """

    def __init__(self, A, split, r: int = 1, precision=None,
                 threads=None, simd=None) -> None:
        from repro.sparse.csr import CSRMatrix
        from repro.util.precision import get_precision

        if not isinstance(A, CSRMatrix):
            raise BackendError(
                "split (task-mode) kernels support CSR matrices only — the "
                "distributed engines partition CSR operators; got "
                f"{type(A).__name__}"
            )
        self.matrix = A
        self.split = split
        self.precision = prec = get_precision(precision)
        self.r = int(r)
        self.threads = None if threads is None else max(1, int(threads))
        self.simd = resolve_simd(simd)
        self.row0 = int(split.row0)
        self.row1 = int(split.row1)
        self.rows = np.ascontiguousarray(split.boundary, dtype=np.int64)
        if self.rows.size and (
            self.rows[0] < 0 or self.rows[-1] >= A.n_rows
        ):
            raise BackendError(
                f"boundary rows outside [0, {A.n_rows}): "
                f"[{self.rows.min()}, {self.rows.max()}]"
            )
        if not (0 <= self.row0 <= self.row1 <= A.n_rows):
            raise BackendError(
                f"interior range [{self.row0}, {self.row1}) outside "
                f"[0, {A.n_rows})"
            )
        self.n_interior = self.row1 - self.row0
        self.n_boundary = int(self.rows.size)
        if self.n_interior + self.n_boundary != A.n_rows:
            raise BackendError(
                f"split covers {self.n_interior} + {self.n_boundary} rows, "
                f"matrix has {A.n_rows}"
            )
        self.nnz_interior = int(A.indptr[self.row1] - A.indptr[self.row0])
        self.nnz_boundary = int(A.nnz - self.nnz_interior)
        # phase sub-matrices (full column range — the NumPy kernels run
        # them against the whole [local | halo] input block)
        self.interior_matrix = A.extract_rows(self.row0, self.row1)
        self.boundary_matrix = self._gather_rows(A, self.rows)
        # steady-state scratch: SpMMV outputs per phase plus boundary
        # gather/scatter buffers (the boundary rows are non-contiguous).
        # Compute-dtype: these hold intermediates, not narrow storage.
        cdt = prec.compute_dtype
        shape_i = (self.n_interior, self.r)
        shape_b = (self.n_boundary, self.r)
        self.u_interior = np.empty(shape_i, dtype=cdt)
        self.u_boundary = np.empty(shape_b, dtype=cdt)
        self.v_boundary = np.empty(shape_b, dtype=cdt)
        self.w_boundary = np.empty(shape_b, dtype=cdt)
        # per-phase eta partials (native kernels write these in place)
        self.ee_interior = np.empty(self.r, dtype=np.float64)
        self.eo_interior = np.empty(self.r, dtype=DTYPE)
        self.ee_boundary = np.empty(self.r, dtype=np.float64)
        self.eo_boundary = np.empty(self.r, dtype=DTYPE)
        if prec.half_vectors:
            # complex64 decode scratch for the NumPy half-storage paths
            self.vc = np.empty((A.n_cols, self.r), dtype=cdt)
            self.wc = np.empty((A.n_rows, self.r), dtype=cdt)

    @staticmethod
    def _gather_rows(A, rows: np.ndarray):
        """Extract a gathered-row CSR sub-matrix (full column range)."""
        from repro.sparse.csr import CSRMatrix

        counts = A.nnz_per_row[rows] if rows.size else np.empty(0, np.int64)
        indptr = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=A.indices.dtype)
        data = np.empty(int(indptr[-1]), dtype=DTYPE)
        for k, i in enumerate(rows.tolist()):
            lo, hi = A.indptr[i], A.indptr[i + 1]
            indices[indptr[k] : indptr[k + 1]] = A.indices[lo:hi]
            data[indptr[k] : indptr[k + 1]] = A.data[lo:hi]
        return CSRMatrix(indptr, indices, data, (rows.size, A.n_cols))


class KernelBackend(ABC):
    """Interface every kernel backend implements.

    ``A`` is a :class:`~repro.sparse.csr.CSRMatrix` or
    :class:`~repro.sparse.sell.SellMatrix`; block vectors are row-major
    (N, R) complex128.  The ``*_step`` kernels update ``w``/``W`` in
    place with ``w_new = 2a(H - b)v - w`` and return
    ``(eta_even, eta_odd)`` — see :mod:`repro.sparse.fused`.

    Every kernel accepts, besides the Table-I ``counters`` sink, a
    :class:`~repro.obs.MetricsRegistry`; implementations must record one
    span named after the kernel per invocation (with the counters
    attached, so measured wall time and charged traffic line up span by
    span).  Both are free when the null defaults are used.
    """

    name: str = "?"

    @abstractmethod
    def available(self) -> bool:
        """Whether this backend can run on the current host."""

    def plan(self, A, r: int = 1, precision=None, threads=None,
             simd=None) -> KernelPlan:
        """Allocate the workspaces for repeated steps on ``(A, r)``.

        ``threads`` (None = sequential kernels) selects the intra-rank
        threaded kernel variants; ``simd`` the vectorized kernel family.
        See :class:`KernelPlan` for both knobs.
        """
        return KernelPlan(A, r, precision, threads, simd)

    @abstractmethod
    def spmv(self, A, x, out=None, counters: PerfCounters = NULL_COUNTERS,
             metrics: MetricsRegistry = NULL_METRICS):
        """``out = A @ x`` for a single vector."""

    @abstractmethod
    def spmmv(self, A, X, out=None, counters: PerfCounters = NULL_COUNTERS,
              metrics: MetricsRegistry = NULL_METRICS):
        """``out = A @ X`` for a row-major (N, R) block vector."""

    @abstractmethod
    def naive_step(
        self, A, v, w, a, b, plan: KernelPlan | None = None,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        """Paper Fig. 3: SpMV + separate BLAS-1 calls."""

    def _naive_step_half(
        self, A, v, w, a, b, plan: KernelPlan | None,
        counters: PerfCounters, metrics: MetricsRegistry,
    ):
        """Decode-pass naive iteration for fp16v half storage.

        Shared by both backends (each supplies its own ``spmv``): the
        matrix apply streams the half layout — charged half-width, like
        every fp16v kernel — then the BLAS-1 chain of paper Fig. 3 runs
        on fp32 decodes (charged at their complex64 element size) and
        the new w is rounded back to storage.  Identical call structure
        and charges on either backend, and the same one-rounding-per-
        iteration accuracy contract as the fused fp16v kernels.
        """
        from repro.sparse.blas1 import axpy, dot, nrm2_sq, scal
        from repro.util.precision import FP16V

        n = A.n_rows
        if plan is not None and getattr(plan, "uh", None) is not None \
                and plan.r == 1:
            u16 = plan.uh
            vc, wc = plan.vc[:n, 0], plan.wc[:, 0]
            uc, work = plan.u, plan.work
        else:
            u16 = FP16V.vec_empty(n)
            vc = np.empty(n, dtype=np.complex64)
            wc = np.empty(n, dtype=np.complex64)
            uc = np.empty(n, dtype=np.complex64)
            work = np.empty(n, dtype=np.complex64)
        with metrics.span("naive_step", counters=counters):
            self.spmv(A, v, out=u16, counters=counters)
            FP16V.decode(v, out=vc)
            FP16V.decode(w, out=wc)
            FP16V.decode(u16, out=uc)
            axpy(uc, -b, vc, counters=counters, work=work)
            scal(-1.0, wc, counters=counters)
            axpy(wc, 2.0 * a, uc, counters=counters, work=work)
            eta_even = nrm2_sq(vc, counters=counters)
            eta_odd = dot(wc, vc, counters=counters)
            FP16V.encode(wc, out=w)
        return eta_even, eta_odd

    @abstractmethod
    def aug_spmv_step(
        self, A, v, w, a, b, plan: KernelPlan | None = None,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        """Paper Fig. 4 (stage 1): fused single-vector update + dots."""

    @abstractmethod
    def aug_spmmv_step(
        self, A, V, W, a, b, plan: KernelPlan | None = None,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        """Paper Fig. 5 (stage 2): fused block update + column dots."""

    # -- split (task-mode) kernels -------------------------------------
    # Two-phase variants of the augmented kernels for overlapped
    # execution: the *interior* phase updates a contiguous halo-free row
    # range (runnable while the halo exchange is in flight), the
    # *boundary* phase the remaining gathered rows.  Each phase returns
    # its own eta partials; callers combine them in the fixed order
    # interior + boundary, which makes the result independent of the
    # execution schedule (sync == overlapped, bitwise).  The W update is
    # row-local, hence bitwise identical to the plain kernel.

    def split_plan(self, A, split, r: int = 1, precision=None,
                   threads=None, simd=None) -> SplitKernelPlan:
        """Allocate the split-kernel workspaces for ``(A, split, r)``."""
        return SplitKernelPlan(A, split, r, precision, threads, simd)

    def aug_spmv_interior(
        self, A, v, w, a, b, plan: SplitKernelPlan,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        """Interior phase of the split augmented SpMV."""
        raise BackendError(
            f"backend {self.name!r} does not implement split kernels"
        )

    def aug_spmv_boundary(
        self, A, v, w, a, b, plan: SplitKernelPlan,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        """Boundary phase of the split augmented SpMV."""
        raise BackendError(
            f"backend {self.name!r} does not implement split kernels"
        )

    def aug_spmmv_interior(
        self, A, V, W, a, b, plan: SplitKernelPlan,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        """Interior phase of the split augmented SpMMV."""
        raise BackendError(
            f"backend {self.name!r} does not implement split kernels"
        )

    def aug_spmmv_boundary(
        self, A, V, W, a, b, plan: SplitKernelPlan,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        """Boundary phase of the split augmented SpMMV."""
        raise BackendError(
            f"backend {self.name!r} does not implement split kernels"
        )

    def aug_spmv_split_step(
        self, A, v, w, a, b, plan: SplitKernelPlan,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        """Both phases back to back; the synchronous task-mode step."""
        ee_i, eo_i = self.aug_spmv_interior(
            A, v, w, a, b, plan, counters=counters, metrics=metrics
        )
        ee_b, eo_b = self.aug_spmv_boundary(
            A, v, w, a, b, plan, counters=counters, metrics=metrics
        )
        return ee_i + ee_b, eo_i + eo_b

    def aug_spmmv_split_step(
        self, A, V, W, a, b, plan: SplitKernelPlan,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        """Both phases back to back; the synchronous task-mode step."""
        ee_i, eo_i = self.aug_spmmv_interior(
            A, V, W, a, b, plan, counters=counters, metrics=metrics
        )
        ee_b, eo_b = self.aug_spmmv_boundary(
            A, V, W, a, b, plan, counters=counters, metrics=metrics
        )
        return ee_i + ee_b, eo_i + eo_b

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


# ---------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------

_REGISTRY: dict[str, type[KernelBackend]] = {}
_INSTANCES: dict[str, KernelBackend] = {}

#: Runtime health ledger: failures observed against each backend *after*
#: it loaded fine (compile crashes mid-run, repeated kernel errors, ...).
#: A quarantined backend is skipped by the ``auto`` selector until
#: :func:`reset_backend_health` — asking for it *by name* still works, so
#: an operator can always override the quarantine deliberately.
_HEALTH: dict[str, dict] = {}


def _health_entry(name: str) -> dict:
    if name not in _HEALTH:
        _HEALTH[name] = {"failures": 0, "quarantined": False, "last_error": None}
    return _HEALTH[name]


def report_backend_failure(
    name: str, reason: str = "", *, quarantine: bool = True
) -> None:
    """Record a runtime failure against a backend (see ``_HEALTH``).

    Called by the resilience supervisor when it classifies an engine
    failure as backend-induced; with ``quarantine=True`` (default) the
    ``auto`` selector stops handing the backend out.
    """
    from repro.obs import GLOBAL_METRICS

    entry = _health_entry(name)
    entry["failures"] += 1
    entry["last_error"] = reason or entry["last_error"]
    if quarantine:
        entry["quarantined"] = True
    GLOBAL_METRICS.count(f"backend.{name}.failures")


def backend_health() -> dict[str, dict]:
    """A copy of the runtime health ledger (for reports and tests)."""
    return {name: dict(entry) for name, entry in _HEALTH.items()}


def backend_quarantined(name: str) -> bool:
    """Whether the ``auto`` selector currently avoids this backend."""
    return bool(_HEALTH.get(name, {}).get("quarantined"))


def reset_backend_health(name: str | None = None) -> None:
    """Clear the health ledger (one backend, or all with ``None``)."""
    if name is None:
        _HEALTH.clear()
    else:
        _HEALTH.pop(name, None)


def register_backend(name: str, cls: type[KernelBackend]) -> None:
    """Register a backend class under ``name`` (replaces any previous)."""
    _REGISTRY[name] = cls
    _INSTANCES.pop(name, None)


def _instance(name: str) -> KernelBackend:
    if name not in _REGISTRY:
        raise BackendError(
            f"unknown kernel backend {name!r}; choose from "
            f"{sorted([*_REGISTRY, 'auto'])}"
        )
    if name not in _INSTANCES:
        _INSTANCES[name] = _REGISTRY[name]()
    return _INSTANCES[name]


def get_backend(name: str | KernelBackend | None = "auto") -> KernelBackend:
    """Resolve a backend by name.

    ``'auto'`` (or None) prefers ``native`` when the C kernels compile on
    this host and silently falls back to ``numpy`` otherwise.  Asking for
    ``'native'`` explicitly raises :class:`~repro.util.errors.BackendError`
    when it is unavailable, with the compiler diagnostic attached.
    Passing an existing :class:`KernelBackend` returns it unchanged.
    """
    if isinstance(name, KernelBackend):
        return name
    name = (name or "auto").lower()
    if name == "auto":
        native = _instance("native")
        if native.available() and not backend_quarantined("native"):
            return native
        return _instance("numpy")
    backend = _instance(name)
    if not backend.available():
        from repro.sparse.backend.native import native_error

        reason = native_error() if name == "native" else "unavailable"
        raise BackendError(f"kernel backend {name!r} unavailable: {reason}")
    return backend


def available_backends() -> dict[str, bool]:
    """Availability of every registered backend on this host."""
    return {name: _instance(name).available() for name in sorted(_REGISTRY)}


# Register the built-in implementations (import order matters: these
# modules import the base class from this package).
from repro.sparse.backend.numpy_backend import NumpyBackend  # noqa: E402
from repro.sparse.backend.native_backend import NativeBackend  # noqa: E402

register_backend(NumpyBackend.name, NumpyBackend)
register_backend(NativeBackend.name, NativeBackend)

__all__ = [
    "BACKEND_CHOICES",
    "SIMD_CHOICES",
    "resolve_simd",
    "KernelBackend",
    "KernelPlan",
    "SplitKernelPlan",
    "NativeBackend",
    "NumpyBackend",
    "available_backends",
    "backend_health",
    "backend_quarantined",
    "get_backend",
    "register_backend",
    "report_backend_failure",
    "reset_backend_health",
]
