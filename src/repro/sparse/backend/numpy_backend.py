"""The NumPy kernel backend: vectorized reference implementation.

Thin adapter that routes the :class:`~repro.sparse.backend.KernelBackend`
interface onto the existing NumPy/SciPy kernels in
:mod:`repro.sparse.spmv` and :mod:`repro.sparse.fused`, feeding them the
plan's preallocated workspaces so a steady-state KPM iteration performs
zero array allocation (``out=`` everywhere; the recombination runs as
in-place passes through the plan's scratch buffers).

Precision: complex128 and complex64 operands flow straight through (the
underlying kernels infer the fp64/fp32 profile from the dtype).  fp16v
half storage is decoded into the plan's complex64 scratch, computed in
fp32, and encoded back — the charges still follow the half-width layout
(``precision=FP16V`` is threaded into the fused kernels and the part
charges).  Note the NumPy backend *physically* streams whatever SciPy
streams (e.g. int32 indices); the charges model the profile's Table-I
minimum layout, which is what the native kernels actually realize — the
NumPy backend is the reference implementation, charged identically so
every model stays backend-independent.
"""

from __future__ import annotations

import numpy as np

from repro.obs import NULL_METRICS, MetricsRegistry
from repro.sparse import fused
from repro.sparse.backend import KernelBackend, KernelPlan, SplitKernelPlan
from repro.sparse.spmv import spmmv as _spmmv
from repro.sparse.spmv import spmv as _spmv
from repro.util.counters import NULL_COUNTERS, PerfCounters
from repro.util.precision import FP16V, precision_of


def _plan_scratch(plan, v, block: bool = False):
    """Plan scratch buffers when their dtype matches the compute dtype."""
    if plan is None:
        return None, None
    u = plan.u_block if block else plan.u
    if u.dtype != v.dtype:
        return None, None
    return u, plan.work


class NumpyBackend(KernelBackend):
    """Pure NumPy/SciPy kernels — always available.

    Span recording is delegated to the underlying kernels in
    :mod:`repro.sparse.spmv` / :mod:`repro.sparse.fused` (which span
    themselves), so direct kernel calls and backend-dispatched calls
    produce identical metrics.
    """

    name = "numpy"

    def available(self) -> bool:
        return True

    def spmv(self, A, x, out=None, counters: PerfCounters = NULL_COUNTERS,
             metrics: MetricsRegistry = NULL_METRICS):
        return _spmv(A, x, out=out, counters=counters, metrics=metrics)

    def spmmv(self, A, X, out=None, counters: PerfCounters = NULL_COUNTERS,
              metrics: MetricsRegistry = NULL_METRICS):
        return _spmmv(A, X, out=out, counters=counters, metrics=metrics)

    def naive_step(
        self, A, v, w, a, b, plan: KernelPlan | None = None,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        if v.dtype == np.float16:
            # decode pass: half-storage SpMV + fp32 BLAS-1 (shared base
            # implementation, charge-identical to the native backend)
            return self._naive_step_half(
                A, v, w, a, b, plan, counters, metrics
            )
        scratch, work = _plan_scratch(plan, v)
        return fused.naive_kpm_step(
            A, v, w, a, b, scratch=scratch, counters=counters, scratch2=work,
            metrics=metrics,
        )

    def aug_spmv_step(
        self, A, v, w, a, b, plan: KernelPlan | None = None,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        if v.dtype == np.float16:
            vc, wc = self._decode_pair(A, v, w, plan, r=None)
            scratch, _ = _plan_scratch(plan, vc)
            ee, eo = fused.aug_spmv_step(
                A, vc, wc, a, b, scratch=scratch, counters=counters,
                metrics=metrics, precision=FP16V,
            )
            FP16V.encode(wc, out=w)
            return ee, eo
        scratch, _ = _plan_scratch(plan, v)
        return fused.aug_spmv_step(
            A, v, w, a, b, scratch=scratch, counters=counters, metrics=metrics
        )

    def aug_spmmv_step(
        self, A, V, W, a, b, plan: KernelPlan | None = None,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        if V.dtype == np.float16:
            Vc, Wc = self._decode_pair(A, V, W, plan, r=V.shape[1])
            scratch, _ = _plan_scratch(plan, Vc, block=True)
            ee, eo = fused.aug_spmmv_step(
                A, Vc, Wc, a, b, scratch=scratch, counters=counters,
                metrics=metrics, precision=FP16V,
            )
            FP16V.encode(Wc, out=W)
            return ee, eo
        scratch, _ = _plan_scratch(plan, V, block=True)
        return fused.aug_spmmv_step(
            A, V, W, a, b, scratch=scratch, counters=counters, metrics=metrics
        )

    # -- fp16v decode helpers ------------------------------------------

    @staticmethod
    def _decode_pair(A, v, w, plan, r):
        """Decode f16 pair storage into complex64 working copies.

        Uses the plan's ``vc``/``wc`` scratch when it fits (zero
        steady-state allocation); ``r=None`` selects the single-vector
        shape.  ``v`` spans the full column range (local + halo), ``w``
        the rows.
        """
        width = 1 if r is None else r
        if (
            plan is not None
            and getattr(plan, "vc", None) is not None
            and plan.r == width
        ):
            vc, wc = plan.vc, plan.wc
            if r is None:
                vc, wc = vc[:, 0], wc[:, 0]
        else:
            shape_v = (A.n_cols,) if r is None else (A.n_cols, r)
            shape_w = (A.n_rows,) if r is None else (A.n_rows, r)
            vc = np.empty(shape_v, dtype=np.complex64)
            wc = np.empty(shape_w, dtype=np.complex64)
        FP16V.decode(v, out=vc)
        FP16V.decode(w, out=wc)
        return vc, wc

    # -- split (task-mode) kernels -------------------------------------
    # The phase update is the plain kernel restricted to a row subset:
    # the SpMMV runs on the extracted phase sub-matrix (per-row data
    # order preserved, so the per-row sums — and hence the W update —
    # are bitwise the single-phase values), the recombination and dots
    # on contiguous views (interior) or gathered scratch (boundary).
    # Half storage is decoded into the split plan's complex64 scratch
    # per phase — V is re-decoded each phase because the halo exchange
    # may land between the interior and boundary phases.

    def aug_spmv_interior(
        self, A, v, w, a, b, plan: SplitKernelPlan,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        prec = precision_of(v)
        with metrics.span("aug_spmv_int", counters=counters):
            u = plan.u_interior.reshape(plan.n_interior)
            if prec.half_vectors:
                vc = plan.vc[:, 0]
                FP16V.decode(v, out=vc)
                vn = vc[plan.row0 : plan.row1]
                wn = plan.wc[plan.row0 : plan.row1, 0]
                FP16V.decode(w[plan.row0 : plan.row1], out=wn)
            else:
                vc = v
                vn = v[plan.row0 : plan.row1]
                wn = w[plan.row0 : plan.row1]
            _spmv(plan.interior_matrix, vc, out=u, counters=NULL_COUNTERS)
            fused._recombine(wn, u, vn, a, b)
            if prec.half_vectors:
                FP16V.encode(wn, out=w[plan.row0 : plan.row1])
            ee, eo = fused.vec_dots(vn, wn)
            fused.charge_aug_spmv_part(
                plan.n_interior, plan.nnz_interior, counters, "aug_spmv_int",
                prec, s_index=prec.index_bytes(A.n_cols),
            )
        return ee, eo

    def aug_spmv_boundary(
        self, A, v, w, a, b, plan: SplitKernelPlan,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        prec = precision_of(v)
        with metrics.span("aug_spmv_bnd", counters=counters):
            rows = plan.rows
            u = plan.u_boundary.reshape(plan.n_boundary)
            vb = plan.v_boundary.reshape(plan.n_boundary)
            wb = plan.w_boundary.reshape(plan.n_boundary)
            if prec.half_vectors:
                vc = plan.vc[:, 0]
                FP16V.decode(v, out=vc)
                _spmv(plan.boundary_matrix, vc, out=u, counters=NULL_COUNTERS)
                np.take(vc, rows, axis=0, out=vb, mode="clip")
                FP16V.decode(w[rows], out=wb)
            else:
                _spmv(plan.boundary_matrix, v, out=u, counters=NULL_COUNTERS)
                # mode='clip' keeps the gather buffer-free (the default
                # 'raise' materializes a temporary); rows are validated
                # in range when the split plan is built
                np.take(v, rows, axis=0, out=vb, mode="clip")
                np.take(w, rows, axis=0, out=wb, mode="clip")
            fused._recombine(wb, u, vb, a, b)
            if prec.half_vectors:
                w[rows] = FP16V.encode(wb)
            else:
                w[rows] = wb
            ee, eo = fused.vec_dots(vb, wb)
            fused.charge_aug_spmv_part(
                plan.n_boundary, plan.nnz_boundary, counters, "aug_spmv_bnd",
                prec, s_index=prec.index_bytes(A.n_cols),
            )
        return ee, eo

    def aug_spmmv_interior(
        self, A, V, W, a, b, plan: SplitKernelPlan,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        prec = precision_of(V)
        with metrics.span("aug_spmmv_int", counters=counters):
            u = plan.u_interior
            if prec.half_vectors:
                FP16V.decode(V, out=plan.vc)
                vn = plan.vc[plan.row0 : plan.row1]
                wn = plan.wc[plan.row0 : plan.row1]
                FP16V.decode(W[plan.row0 : plan.row1], out=wn)
                _spmmv(
                    plan.interior_matrix, plan.vc, out=u,
                    counters=NULL_COUNTERS,
                )
            else:
                vn = V[plan.row0 : plan.row1]
                wn = W[plan.row0 : plan.row1]
                _spmmv(plan.interior_matrix, V, out=u, counters=NULL_COUNTERS)
            fused._recombine(wn, u, vn, a, b)
            if prec.half_vectors:
                FP16V.encode(wn, out=W[plan.row0 : plan.row1])
            ee, eo = fused._col_dots(vn, wn)
            fused.charge_aug_spmmv_part(
                plan.n_interior, plan.nnz_interior, plan.r, counters,
                "aug_spmmv_int", prec, s_index=prec.index_bytes(A.n_cols),
            )
        return ee, eo

    def aug_spmmv_boundary(
        self, A, V, W, a, b, plan: SplitKernelPlan,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        prec = precision_of(V)
        with metrics.span("aug_spmmv_bnd", counters=counters):
            rows = plan.rows
            u = plan.u_boundary
            vb = plan.v_boundary
            wb = plan.w_boundary
            if prec.half_vectors:
                FP16V.decode(V, out=plan.vc)
                _spmmv(
                    plan.boundary_matrix, plan.vc, out=u,
                    counters=NULL_COUNTERS,
                )
                np.take(plan.vc, rows, axis=0, out=vb, mode="clip")
                FP16V.decode(W[rows], out=wb)
            else:
                _spmmv(plan.boundary_matrix, V, out=u, counters=NULL_COUNTERS)
                # see aug_spmv_boundary: clip mode == allocation-free gather
                np.take(V, rows, axis=0, out=vb, mode="clip")
                np.take(W, rows, axis=0, out=wb, mode="clip")
            fused._recombine(wb, u, vb, a, b)
            if prec.half_vectors:
                W[rows] = FP16V.encode(wb)
            else:
                W[rows] = wb
            ee, eo = fused._col_dots(vb, wb)
            fused.charge_aug_spmmv_part(
                plan.n_boundary, plan.nnz_boundary, plan.r, counters,
                "aug_spmmv_bnd", prec, s_index=prec.index_bytes(A.n_cols),
            )
        return ee, eo
