"""The NumPy kernel backend: vectorized reference implementation.

Thin adapter that routes the :class:`~repro.sparse.backend.KernelBackend`
interface onto the existing NumPy/SciPy kernels in
:mod:`repro.sparse.spmv` and :mod:`repro.sparse.fused`, feeding them the
plan's preallocated workspaces so a steady-state KPM iteration performs
zero array allocation (``out=`` everywhere; the recombination runs as
in-place passes through the plan's scratch buffers).
"""

from __future__ import annotations

from repro.obs import NULL_METRICS, MetricsRegistry
from repro.sparse import fused
from repro.sparse.backend import KernelBackend, KernelPlan
from repro.sparse.spmv import spmmv as _spmmv
from repro.sparse.spmv import spmv as _spmv
from repro.util.counters import NULL_COUNTERS, PerfCounters


class NumpyBackend(KernelBackend):
    """Pure NumPy/SciPy kernels — always available.

    Span recording is delegated to the underlying kernels in
    :mod:`repro.sparse.spmv` / :mod:`repro.sparse.fused` (which span
    themselves), so direct kernel calls and backend-dispatched calls
    produce identical metrics.
    """

    name = "numpy"

    def available(self) -> bool:
        return True

    def spmv(self, A, x, out=None, counters: PerfCounters = NULL_COUNTERS,
             metrics: MetricsRegistry = NULL_METRICS):
        return _spmv(A, x, out=out, counters=counters, metrics=metrics)

    def spmmv(self, A, X, out=None, counters: PerfCounters = NULL_COUNTERS,
              metrics: MetricsRegistry = NULL_METRICS):
        return _spmmv(A, X, out=out, counters=counters, metrics=metrics)

    def naive_step(
        self, A, v, w, a, b, plan: KernelPlan | None = None,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        scratch = plan.u if plan is not None else None
        work = plan.work if plan is not None else None
        return fused.naive_kpm_step(
            A, v, w, a, b, scratch=scratch, counters=counters, scratch2=work,
            metrics=metrics,
        )

    def aug_spmv_step(
        self, A, v, w, a, b, plan: KernelPlan | None = None,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        scratch = plan.u if plan is not None else None
        return fused.aug_spmv_step(
            A, v, w, a, b, scratch=scratch, counters=counters, metrics=metrics
        )

    def aug_spmmv_step(
        self, A, V, W, a, b, plan: KernelPlan | None = None,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        scratch = plan.u_block if plan is not None else None
        return fused.aug_spmmv_step(
            A, V, W, a, b, scratch=scratch, counters=counters, metrics=metrics
        )
