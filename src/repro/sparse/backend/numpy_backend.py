"""The NumPy kernel backend: vectorized reference implementation.

Thin adapter that routes the :class:`~repro.sparse.backend.KernelBackend`
interface onto the existing NumPy/SciPy kernels in
:mod:`repro.sparse.spmv` and :mod:`repro.sparse.fused`, feeding them the
plan's preallocated workspaces so a steady-state KPM iteration performs
zero array allocation (``out=`` everywhere; the recombination runs as
in-place passes through the plan's scratch buffers).
"""

from __future__ import annotations

import numpy as np

from repro.obs import NULL_METRICS, MetricsRegistry
from repro.sparse import fused
from repro.sparse.backend import KernelBackend, KernelPlan, SplitKernelPlan
from repro.sparse.spmv import spmmv as _spmmv
from repro.sparse.spmv import spmv as _spmv
from repro.util.counters import NULL_COUNTERS, PerfCounters


class NumpyBackend(KernelBackend):
    """Pure NumPy/SciPy kernels — always available.

    Span recording is delegated to the underlying kernels in
    :mod:`repro.sparse.spmv` / :mod:`repro.sparse.fused` (which span
    themselves), so direct kernel calls and backend-dispatched calls
    produce identical metrics.
    """

    name = "numpy"

    def available(self) -> bool:
        return True

    def spmv(self, A, x, out=None, counters: PerfCounters = NULL_COUNTERS,
             metrics: MetricsRegistry = NULL_METRICS):
        return _spmv(A, x, out=out, counters=counters, metrics=metrics)

    def spmmv(self, A, X, out=None, counters: PerfCounters = NULL_COUNTERS,
              metrics: MetricsRegistry = NULL_METRICS):
        return _spmmv(A, X, out=out, counters=counters, metrics=metrics)

    def naive_step(
        self, A, v, w, a, b, plan: KernelPlan | None = None,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        scratch = plan.u if plan is not None else None
        work = plan.work if plan is not None else None
        return fused.naive_kpm_step(
            A, v, w, a, b, scratch=scratch, counters=counters, scratch2=work,
            metrics=metrics,
        )

    def aug_spmv_step(
        self, A, v, w, a, b, plan: KernelPlan | None = None,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        scratch = plan.u if plan is not None else None
        return fused.aug_spmv_step(
            A, v, w, a, b, scratch=scratch, counters=counters, metrics=metrics
        )

    def aug_spmmv_step(
        self, A, V, W, a, b, plan: KernelPlan | None = None,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        scratch = plan.u_block if plan is not None else None
        return fused.aug_spmmv_step(
            A, V, W, a, b, scratch=scratch, counters=counters, metrics=metrics
        )

    # -- split (task-mode) kernels -------------------------------------
    # The phase update is the plain kernel restricted to a row subset:
    # the SpMMV runs on the extracted phase sub-matrix (per-row data
    # order preserved, so the per-row sums — and hence the W update —
    # are bitwise the single-phase values), the recombination and dots
    # on contiguous views (interior) or gathered scratch (boundary).

    def aug_spmv_interior(
        self, A, v, w, a, b, plan: SplitKernelPlan,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        with metrics.span("aug_spmv_int", counters=counters):
            u = plan.u_interior.reshape(plan.n_interior)
            _spmv(plan.interior_matrix, v, out=u, counters=NULL_COUNTERS)
            vn = v[plan.row0 : plan.row1]
            wn = w[plan.row0 : plan.row1]
            fused._recombine(wn, u, vn, a, b)
            ee = float(np.vdot(vn, vn).real)
            eo = complex(np.vdot(wn, vn))
            fused.charge_aug_spmv_part(
                plan.n_interior, plan.nnz_interior, counters, "aug_spmv_int"
            )
        return ee, eo

    def aug_spmv_boundary(
        self, A, v, w, a, b, plan: SplitKernelPlan,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        with metrics.span("aug_spmv_bnd", counters=counters):
            rows = plan.rows
            u = plan.u_boundary.reshape(plan.n_boundary)
            vb = plan.v_boundary.reshape(plan.n_boundary)
            wb = plan.w_boundary.reshape(plan.n_boundary)
            _spmv(plan.boundary_matrix, v, out=u, counters=NULL_COUNTERS)
            # mode='clip' keeps the gather buffer-free (the default
            # 'raise' materializes a temporary); rows are validated in
            # range when the split plan is built
            np.take(v, rows, axis=0, out=vb, mode="clip")
            np.take(w, rows, axis=0, out=wb, mode="clip")
            fused._recombine(wb, u, vb, a, b)
            w[rows] = wb
            ee = float(np.vdot(vb, vb).real)
            eo = complex(np.vdot(wb, vb))
            fused.charge_aug_spmv_part(
                plan.n_boundary, plan.nnz_boundary, counters, "aug_spmv_bnd"
            )
        return ee, eo

    def aug_spmmv_interior(
        self, A, V, W, a, b, plan: SplitKernelPlan,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        with metrics.span("aug_spmmv_int", counters=counters):
            u = plan.u_interior
            _spmmv(plan.interior_matrix, V, out=u, counters=NULL_COUNTERS)
            vn = V[plan.row0 : plan.row1]
            wn = W[plan.row0 : plan.row1]
            fused._recombine(wn, u, vn, a, b)
            ee, eo = fused._col_dots(vn, wn)
            fused.charge_aug_spmmv_part(
                plan.n_interior, plan.nnz_interior, plan.r, counters,
                "aug_spmmv_int",
            )
        return ee, eo

    def aug_spmmv_boundary(
        self, A, V, W, a, b, plan: SplitKernelPlan,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        with metrics.span("aug_spmmv_bnd", counters=counters):
            rows = plan.rows
            u = plan.u_boundary
            vb = plan.v_boundary
            wb = plan.w_boundary
            _spmmv(plan.boundary_matrix, V, out=u, counters=NULL_COUNTERS)
            # see aug_spmv_boundary: clip mode == allocation-free gather
            np.take(V, rows, axis=0, out=vb, mode="clip")
            np.take(W, rows, axis=0, out=wb, mode="clip")
            fused._recombine(wb, u, vb, a, b)
            W[rows] = wb
            ee, eo = fused._col_dots(vb, wb)
            fused.charge_aug_spmmv_part(
                plan.n_boundary, plan.nnz_boundary, plan.r, counters,
                "aug_spmmv_bnd",
            )
        return ee, eo
