/* Single-pass KPM kernels for CSR and SELL-C-sigma, typed by precision.
 *
 * This file backs repro.sparse.backend.native: it is compiled on first
 * use with `cc -O3 -shared` and loaded through ctypes.  Each kernel is a
 * genuinely fused single traversal of the matrix stream — the augmented
 * variants perform the shift/scale/recombination of paper Eq. (3)
 *
 *     w_new = 2 a (H - b 1) v - w
 *
 * plus BOTH on-the-fly scalar products (eta_even = <v|v>,
 * eta_odd = <w_new|v>) inside the same row loop, exactly as the paper's
 * Figs. 4 and 5 prescribe and as the NumPy backend cannot.
 *
 * Complex numbers are handled as interleaved (re, im) scalar pairs —
 * the memory layout of numpy complex128/complex64 and of the float16
 * (re, im) pair storage — with the arithmetic written out in real
 * components so the compiler can vectorize without libm/__muldc3 calls.
 * Block vectors are row-major (N, R): the R values of one row are
 * contiguous, the locality argument of paper Section IV-A.
 *
 * MACRO EXPANSION (the precision profiles of repro.util.precision):
 * the sixteen kernels below are written ONCE as a template (the #else
 * branch of this file) and expanded via `#include "_kernels.c"` for each
 * (value type, vector storage, index type) combination — no hand-copied
 * variants:
 *
 *   suffix      values   vectors          indices   exported example
 *   (none)      double   double           int32     repro_csr_aug_spmmv
 *   _f32        float    float            int32     repro_csr_aug_spmmv_f32
 *   _f32u16     float    float            uint16    repro_csr_aug_spmmv_f32u16
 *   _f16v       float    half (fp16)      int32     repro_csr_aug_spmmv_f16v
 *   _f16vu16    float    half (fp16)      uint16    repro_csr_aug_spmmv_f16vu16
 *
 * The unsuffixed f64/int32 expansion is operation-for-operation the
 * historical baseline.  The narrow expansions compute in fp32 (half
 * storage is converted at load/store with round-to-nearest-even) while
 * BOTH eta scalar products are accumulated in fp64 with compensated
 * (Kahan) summation — each partial product is formed exactly in double
 * before the compensated add, so narrow storage never degrades the
 * moments' reduction accuracy.
 *
 * Index types match the Python containers: CSR indptr / SELL chunk_ptr,
 * chunk_len, perm are int64; in-kernel column indices are int32 (the
 * paper's S_i = 4) or uint16 (compressed, S_i = 2) per the table above.
 */

#ifndef REPRO_KERNELS_TEMPLATE

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#ifdef _MSC_VER
#define EXPORT __declspec(dllexport)
#else
#define EXPORT __attribute__((visibility("default")))
#endif

#if defined(__GNUC__) || defined(__clang__)
#define REPRO_PF(addr) __builtin_prefetch((addr), 0, 3)
#else
#define REPRO_PF(addr) ((void)0)
#endif

/* Prefetch one gathered block-vector row (nbytes, touching every cache
 * line).  The column index of the *next* slot is known one iteration
 * ahead, which is enough distance to hide the gather latency the
 * hardware prefetcher cannot predict.                                 */
static inline void repro_pf_row(const void *restrict p, size_t nbytes)
{
    const char *restrict cp = (const char *)p;
    for (size_t q = 0; q < nbytes; q += 64)
        REPRO_PF(cp + q);
}

/* The per-row recombination + eta-update loop over the block width r
 * must round identically for every column regardless of r: the serve
 * layer coalesces independent requests into one wide block and promises
 * each caller the bitwise moments of a solo run.  Auto-vectorizing that
 * loop breaks the promise — columns landing in the vector body round
 * differently from columns in the scalar epilogue, so a column's result
 * would depend on its position and on r.  Keep it scalar; it is O(r)
 * work per row against the O(nnz_row * r) gather loop above it, which
 * stays fully vectorized.  Only the fp64 baseline carries the bitwise
 * contract — the narrow profiles promise tolerance, so their (heavier,
 * Kahan-compensated) eta loops keep the vectorizer; see the
 * REPRO_KNOVEC variant gate in the template header.                   */
#if defined(__clang__)
#define REPRO_NOVEC _Pragma("clang loop vectorize(disable)")
#define REPRO_NOVEC_STMT ((void)0)
#elif defined(__GNUC__) && __GNUC__ >= 14
#define REPRO_NOVEC _Pragma("GCC novector")
#define REPRO_NOVEC_STMT ((void)0)
#elif defined(__GNUC__)
/* GCC < 14 has no novector pragma (and silently ignores unknown GCC
 * pragmas), so plant an empty volatile asm in the loop body instead:
 * the tree vectorizer refuses any loop containing an asm statement,
 * and the statement itself emits no instructions.                     */
#define REPRO_NOVEC
#define REPRO_NOVEC_STMT __asm__ volatile("")
#else
#define REPRO_NOVEC
#define REPRO_NOVEC_STMT ((void)0)
#endif

/* Row-block granularity of the threaded (_mt) kernels.  The block grid
 * is a function of the PROBLEM (row count / chunk height), never of the
 * thread count: every eta partial is accumulated per block with Kahan
 * compensation and the partials are combined sequentially in block
 * order, so the fp64 results are bitwise identical for any n_threads —
 * including 1 — and for the serial fallback when the compiler has no
 * OpenMP.  256 rows is large enough to amortize scheduling and small
 * enough to load-balance the boundary-row tails of a split.           */
#define REPRO_MT_BLOCK 256

/* One compensated (Kahan) accumulation step: *s += x with carry *c.   */
static inline void repro_kadd(double *restrict s, double *restrict c,
                              double x)
{
    const double y = x - *c;
    const double t = *s + y;
    *c = (t - *s) - y;
    *s = t;
}

/* IEEE 754 binary16 <-> binary32, bit manipulation only (portable, no
 * compiler fp16 support required); float->half rounds to nearest even,
 * matching numpy's float16 casts.                                     */
static inline float repro_half_to_float(uint16_t h)
{
    const uint32_t sign = (uint32_t)(h & 0x8000u) << 16;
    uint32_t exp = (h >> 10) & 0x1Fu;
    uint32_t man = h & 0x3FFu;
    uint32_t bits;
    if (exp == 0u) {
        if (man == 0u) {
            bits = sign;                       /* signed zero */
        } else {                               /* subnormal: normalize */
            int shift = 0;
            while (!(man & 0x400u)) {
                man <<= 1;
                ++shift;
            }
            man &= 0x3FFu;
            /* value is 1.m * 2^(-14 - shift); biased fp32 exponent is
             * therefore 127 - 14 - shift (a 127-15-shift off-by-one here
             * used to halve every subnormal, diverging from both numpy
             * and F16C).                                                */
            bits = sign | ((uint32_t)(127 - 14 - shift) << 23) | (man << 13);
        }
    } else if (exp == 31u) {                   /* inf / nan */
        bits = sign | 0x7F800000u | (man << 13);
    } else {
        bits = sign | ((exp + (127u - 15u)) << 23) | (man << 13);
    }
    float f;
    memcpy(&f, &bits, sizeof f);
    return f;
}

static inline uint16_t repro_float_to_half(float f)
{
    uint32_t x;
    memcpy(&x, &f, sizeof x);
    const uint32_t sign = (x >> 16) & 0x8000u;
    const uint32_t fexp = (x >> 23) & 0xFFu;
    uint32_t man = x & 0x7FFFFFu;
    if (fexp == 0xFFu)                         /* inf / nan */
        return (uint16_t)(sign | 0x7C00u | (man ? 0x200u : 0u));
    const int32_t e = (int32_t)fexp - 127 + 15;
    if (e >= 31)                               /* overflow -> inf */
        return (uint16_t)(sign | 0x7C00u);
    if (e <= 0) {                              /* half subnormal / zero */
        if (e < -10)
            return (uint16_t)sign;
        man |= 0x800000u;                      /* implicit leading 1 */
        const uint32_t shift = (uint32_t)(14 - e);
        uint16_t hv = (uint16_t)(sign | (man >> shift));
        const uint32_t rem = man & ((1u << shift) - 1u);
        const uint32_t half = 1u << (shift - 1u);
        if (rem > half || (rem == half && (hv & 1u)))
            ++hv;                              /* round to nearest even */
        return hv;
    }
    uint16_t hv = (uint16_t)(sign | ((uint32_t)e << 10) | (man >> 13));
    const uint32_t rem = man & 0x1FFFu;
    if (rem > 0x1000u || (rem == 0x1000u && (hv & 1u)))
        ++hv;           /* may carry into the exponent: rounds up to inf */
    return hv;
}

#define REPRO_CAT_(a, b) a##b
#define REPRO_CAT(a, b) REPRO_CAT_(a, b)

/* ------------------------------------------------------------------ */
/* Explicit SIMD (AVX2 / F16C) support                                 */
/*                                                                     */
/* Every aug/split kernel below is expanded a SECOND time per profile  */
/* with REPRO_SIMD=1, exporting a `_simd`-suffixed variant whose inner */
/* loops are hand-written AVX2 intrinsics.  The vectorization is       */
/* DETERMINISTIC by construction:                                      */
/*                                                                     */
/*   * Blocked kernels vectorize VERTICALLY — one fp64 lane per block  */
/*     column (re, im interleaved), so each column's rounding DAG is   */
/*     exactly the scalar kernel's at every block width R.  Tails run  */
/*     the scalar per-column code, which is the same DAG.              */
/*   * The single-vector CSR row dot uses a fixed 8-lane (4 complex)   */
/*     LANE-BLOCKED accumulator: entry p of a row lands in complex     */
/*     lane (p - p0) mod 4, reduced in one hard-coded order.  The      */
/*     scalar build runs the identical lane-blocked recurrence, so the */
/*     bits agree between builds for every row length.                 */
/*   * No FMA contraction anywhere in the fp64 DAG: the scalar build   */
/*     is compiled at -std=c11 (fp-contract off), so the vector code   */
/*     uses mul/add/sub only, exploiting the IEEE identities           */
/*     a + (-b) == a - b and (-x)*y == -(x*y) for the sign-flipped     */
/*     multiply of the complex product.                                */
/*   * fp16v storage converts through F16C (`vcvtph2ps`/`vcvtps2ph`),  */
/*     which is bit-identical to the software converter above (half    */
/*     to float is exact; float to half rounds to nearest even).       */
/*                                                                     */
/* Net effect: `_simd` kernels are bitwise-identical to their scalar   */
/* twins in EVERY profile, which subsumes the REPRO_NOVEC crutch —     */
/* the vectorized recombination loop is width-stable because each      */
/* column is a dedicated lane, not a position in a shape-dependent     */
/* vector body.                                                        */
/* ------------------------------------------------------------------ */

#if defined(__AVX2__)
#define REPRO_HAVE_AVX2 1
#include <immintrin.h>
#else
#define REPRO_HAVE_AVX2 0
#endif

#if REPRO_HAVE_AVX2 && defined(__F16C__)
#define REPRO_HAVE_F16C 1
#else
#define REPRO_HAVE_F16C 0
#endif

/* Introspection for the Python loader: bit 0 = AVX2 `_simd` kernels
 * compiled in, bit 1 = the fp16v variants use F16C conversions.       */
EXPORT int32_t repro_simd_compiled(void)
{
    return (REPRO_HAVE_AVX2 ? 1 : 0) | (REPRO_HAVE_F16C ? 2 : 0);
}

#if REPRO_HAVE_AVX2

/* [-ai, +ai, -ai, +ai]: the sign-flipped imaginary broadcast used by
 * the complex product (the - lands on the real component's ai*xi).   */
static inline __m256d repro_aiv_pd(double ai)
{
    return _mm256_xor_pd(_mm256_set1_pd(ai),
                         _mm256_set_pd(0.0, -0.0, 0.0, -0.0));
}

static inline __m128d repro_aiv_pd128(double ai)
{
    return _mm_xor_pd(_mm_set1_pd(ai), _mm_set_pd(0.0, -0.0));
}

static inline __m256 repro_aiv_ps(float ai)
{
    return _mm256_xor_ps(
        _mm256_set1_ps(ai),
        _mm256_set_ps(0.0f, -0.0f, 0.0f, -0.0f, 0.0f, -0.0f, 0.0f, -0.0f));
}

/* acc += (ar + i*ai) * x on interleaved (re, im) pairs; mul/add only,
 * so each lane reproduces the scalar `ar*xr - ai*xi` / `ar*xi + ai*xr`
 * rounding exactly (arv broadcasts ar, aiv alternates -ai, +ai).      */
static inline __m256d repro_cmadd_pd(__m256d acc, __m256d arv, __m256d aiv,
                                     __m256d x)
{
    const __m256d t1 = _mm256_mul_pd(arv, x);
    const __m256d t2 = _mm256_mul_pd(aiv, _mm256_permute_pd(x, 0x5));
    return _mm256_add_pd(acc, _mm256_add_pd(t1, t2));
}

static inline __m128d repro_cmadd_pd128(__m128d acc, __m128d arv,
                                        __m128d aiv, __m128d x)
{
    const __m128d t1 = _mm_mul_pd(arv, x);
    const __m128d t2 = _mm_mul_pd(aiv, _mm_shuffle_pd(x, x, 0x1));
    return _mm_add_pd(acc, _mm_add_pd(t1, t2));
}

static inline __m256 repro_cmadd_ps(__m256 acc, __m256 arv, __m256 aiv,
                                    __m256 x)
{
    const __m256 t1 = _mm256_mul_ps(arv, x);
    const __m256 t2 = _mm256_mul_ps(aiv, _mm256_permute_ps(x, 0xB1));
    return _mm256_add_ps(acc, _mm256_add_ps(t1, t2));
}

/* Per-pair coefficient variant: d packs the (ar, ai) pairs of 2 (pd) /
 * 4 (ps) matrix entries; each complex lane keeps its own coefficient. */
static inline __m256d repro_cmadd_pairs_pd(__m256d acc, __m256d d,
                                           __m256d x)
{
    const __m256d arv = _mm256_movedup_pd(d);
    const __m256d aiv = _mm256_xor_pd(_mm256_permute_pd(d, 0xF),
                                      _mm256_set_pd(0.0, -0.0, 0.0, -0.0));
    return repro_cmadd_pd(acc, arv, aiv, x);
}

static inline __m256 repro_cmadd_pairs_ps(__m256 acc, __m256 d, __m256 x)
{
    const __m256 arv = _mm256_moveldup_ps(d);
    const __m256 aiv = _mm256_xor_ps(
        _mm256_movehdup_ps(d),
        _mm256_set_ps(0.0f, -0.0f, 0.0f, -0.0f, 0.0f, -0.0f, 0.0f, -0.0f));
    return repro_cmadd_ps(acc, arv, aiv, x);
}

/* Plain vector accumulate-into-memory (unaligned).                    */
static inline void repro_vadd_pd2(double *restrict s, __m128d x)
{
    _mm_storeu_pd(s, _mm_add_pd(_mm_loadu_pd(s), x));
}

static inline void repro_vadd_pd4(double *restrict s, __m256d x)
{
    _mm256_storeu_pd(s, _mm256_add_pd(_mm256_loadu_pd(s), x));
}

/* Vector Kahan steps: elementwise, so each lane runs exactly the
 * scalar repro_kadd recurrence for its own accumulator.               */
static inline void repro_kadd_pd2(double *restrict s, double *restrict c,
                                  __m128d x)
{
    const __m128d sv = _mm_loadu_pd(s);
    const __m128d y = _mm_sub_pd(x, _mm_loadu_pd(c));
    const __m128d t = _mm_add_pd(sv, y);
    _mm_storeu_pd(c, _mm_sub_pd(_mm_sub_pd(t, sv), y));
    _mm_storeu_pd(s, t);
}

static inline void repro_kadd_pd4(double *restrict s, double *restrict c,
                                  __m256d x)
{
    const __m256d sv = _mm256_loadu_pd(s);
    const __m256d y = _mm256_sub_pd(x, _mm256_loadu_pd(c));
    const __m256d t = _mm256_add_pd(sv, y);
    _mm256_storeu_pd(c, _mm256_sub_pd(_mm256_sub_pd(t, sv), y));
    _mm256_storeu_pd(s, t);
}

/* Column-pair eta terms from interleaved (re, im) fp64 lanes: v and w
 * hold 2 block columns.  ee = vr*vr + vi*vi per column, compacted to
 * an xmm pair; eo = [re_k, im_k, re_k+1, im_k+1] where
 * re = wr*vr + wi*vi and im = wr*vi - wi*vr (the - enters as a sign
 * flip on the product, exact in IEEE).  hadd pairs (a0+a1) in the same
 * order as the scalar sums.                                           */
static inline __m128d repro_ee_pair_pd(__m256d v)
{
    const __m256d pv = _mm256_mul_pd(v, v);
    const __m256d h = _mm256_hadd_pd(pv, pv);
    return _mm256_castpd256_pd128(_mm256_permute4x64_pd(h, 0xE8));
}

static inline __m256d repro_eo_quad_pd(__m256d v, __m256d w)
{
    const __m256d p1 = _mm256_mul_pd(w, v);
    const __m256d vs = _mm256_xor_pd(_mm256_permute_pd(v, 0x5),
                                     _mm256_set_pd(-0.0, 0.0, -0.0, 0.0));
    const __m256d p2 = _mm256_mul_pd(w, vs);
    return _mm256_hadd_pd(p1, p2);
}

/* Two interleaved complex loads gathered into one ymm.                */
static inline __m256d repro_gather2c_pd(const double *restrict x,
                                        int64_t j0, int64_t j1)
{
    return _mm256_insertf128_pd(
        _mm256_castpd128_pd256(_mm_loadu_pd(x + 2 * j0)),
        _mm_loadu_pd(x + 2 * j1), 1);
}

/* Four interleaved complex64 loads gathered into one ymm.             */
static inline __m256 repro_gather4c_ps(const float *restrict x, int64_t j0,
                                       int64_t j1, int64_t j2, int64_t j3)
{
    const __m128 lo = _mm_movelh_ps(
        _mm_castsi128_ps(_mm_loadl_epi64((const __m128i *)(x + 2 * j0))),
        _mm_castsi128_ps(_mm_loadl_epi64((const __m128i *)(x + 2 * j1))));
    const __m128 hi = _mm_movelh_ps(
        _mm_castsi128_ps(_mm_loadl_epi64((const __m128i *)(x + 2 * j2))),
        _mm_castsi128_ps(_mm_loadl_epi64((const __m128i *)(x + 2 * j3))));
    return _mm256_insertf128_ps(_mm256_castps128_ps256(lo), hi, 1);
}

#endif /* REPRO_HAVE_AVX2 */

#if REPRO_HAVE_F16C

/* F16C conversions: half->float is exact, float->half rounds to
 * nearest even — both bit-identical to the software converters.       */
static inline __m256 repro_load8h(const uint16_t *restrict p)
{
    return _mm256_cvtph_ps(_mm_loadu_si128((const __m128i *)p));
}

static inline void repro_store8h(uint16_t *restrict p, __m256 x)
{
    _mm_storeu_si128((__m128i *)p,
                     _mm256_cvtps_ph(x, _MM_FROUND_TO_NEAREST_INT));
}

static inline __m128 repro_load4h(const uint16_t *restrict p)
{
    return _mm_cvtph_ps(_mm_loadl_epi64((const __m128i *)p));
}

static inline void repro_store4h(uint16_t *restrict p, __m128 x)
{
    _mm_storel_epi64((__m128i *)p,
                     _mm_cvtps_ph(x, _MM_FROUND_TO_NEAREST_INT));
}

/* Four gathered (re, im) half pairs converted to one ps ymm.          */
static inline __m256 repro_gather4c_ph(const uint16_t *restrict x,
                                       int64_t j0, int64_t j1, int64_t j2,
                                       int64_t j3)
{
    uint32_t c0, c1, c2, c3;
    memcpy(&c0, x + 2 * j0, 4);
    memcpy(&c1, x + 2 * j1, 4);
    memcpy(&c2, x + 2 * j2, 4);
    memcpy(&c3, x + 2 * j3, 4);
    return _mm256_cvtph_ps(
        _mm_set_epi32((int32_t)c3, (int32_t)c2, (int32_t)c1, (int32_t)c0));
}

#endif /* REPRO_HAVE_F16C */

/* ------------------------------------------------------------------ */
/* Template expansions: one block per precision profile.               */
/* ------------------------------------------------------------------ */

#define REPRO_KERNELS_TEMPLATE 1

/* fp64 baseline: complex128 values & vectors, int32 indices, plain
 * double eta accumulation — the paper's original kernels.             */
#define REPRO_SUF
#define REPRO_VT double
#define REPRO_XT double
#define REPRO_AT double
#define REPRO_IT int32_t
#define REPRO_LOADX(p, i) ((p)[(i)])
#define REPRO_STOREX(p, i, val) ((p)[(i)] = (val))
#define REPRO_ETA_KAHAN 0
#include "_kernels.c"
#undef REPRO_SUF
#undef REPRO_VT
#undef REPRO_XT
#undef REPRO_AT
#undef REPRO_IT
#undef REPRO_LOADX
#undef REPRO_STOREX
#undef REPRO_ETA_KAHAN

/* fp32: complex64 values & vectors, int32 indices.                    */
#define REPRO_SUF _f32
#define REPRO_VT float
#define REPRO_XT float
#define REPRO_AT float
#define REPRO_IT int32_t
#define REPRO_LOADX(p, i) ((p)[(i)])
#define REPRO_STOREX(p, i, val) ((p)[(i)] = (val))
#define REPRO_ETA_KAHAN 1
#include "_kernels.c"
#undef REPRO_SUF
#undef REPRO_VT
#undef REPRO_XT
#undef REPRO_AT
#undef REPRO_IT
#undef REPRO_LOADX
#undef REPRO_STOREX
#undef REPRO_ETA_KAHAN

/* fp32 with compressed uint16 column indices.                         */
#define REPRO_SUF _f32u16
#define REPRO_VT float
#define REPRO_XT float
#define REPRO_AT float
#define REPRO_IT uint16_t
#define REPRO_LOADX(p, i) ((p)[(i)])
#define REPRO_STOREX(p, i, val) ((p)[(i)] = (val))
#define REPRO_ETA_KAHAN 1
#include "_kernels.c"
#undef REPRO_SUF
#undef REPRO_VT
#undef REPRO_XT
#undef REPRO_AT
#undef REPRO_IT
#undef REPRO_LOADX
#undef REPRO_STOREX
#undef REPRO_ETA_KAHAN

/* fp16v: complex64 values, float16 (re, im) pair vectors promoted to
 * fp32 in registers, int32 indices.                                   */
#define REPRO_SUF _f16v
#define REPRO_VT float
#define REPRO_XT uint16_t
#define REPRO_AT float
#define REPRO_IT int32_t
#define REPRO_LOADX(p, i) repro_half_to_float((p)[(i)])
#define REPRO_STOREX(p, i, val) ((p)[(i)] = repro_float_to_half(val))
#define REPRO_ETA_KAHAN 1
#include "_kernels.c"
#undef REPRO_SUF
#undef REPRO_VT
#undef REPRO_XT
#undef REPRO_AT
#undef REPRO_IT
#undef REPRO_LOADX
#undef REPRO_STOREX
#undef REPRO_ETA_KAHAN

/* fp16v with compressed uint16 column indices.                        */
#define REPRO_SUF _f16vu16
#define REPRO_VT float
#define REPRO_XT uint16_t
#define REPRO_AT float
#define REPRO_IT uint16_t
#define REPRO_LOADX(p, i) repro_half_to_float((p)[(i)])
#define REPRO_STOREX(p, i, val) ((p)[(i)] = repro_float_to_half(val))
#define REPRO_ETA_KAHAN 1
#include "_kernels.c"
#undef REPRO_SUF
#undef REPRO_VT
#undef REPRO_XT
#undef REPRO_AT
#undef REPRO_IT
#undef REPRO_LOADX
#undef REPRO_STOREX
#undef REPRO_ETA_KAHAN

/* ------------------------------------------------------------------ */
/* SIMD re-expansions (REPRO_SIMD=1): the same template with the hand- */
/* vectorized inner-loop bodies, exported under a `_simd` suffix.      */
/* Bitwise-identical to the scalar expansions above in every profile;  */
/* only compiled when the build targets AVX2 (and F16C for fp16v) —    */
/* the Python loader probes repro_simd_compiled() before dispatching.  */
/* ------------------------------------------------------------------ */

#if REPRO_HAVE_AVX2

#define REPRO_SUF _simd
#define REPRO_VT double
#define REPRO_XT double
#define REPRO_AT double
#define REPRO_IT int32_t
#define REPRO_LOADX(p, i) ((p)[(i)])
#define REPRO_STOREX(p, i, val) ((p)[(i)] = (val))
#define REPRO_ETA_KAHAN 0
#define REPRO_SIMD 1
#include "_kernels.c"
#undef REPRO_SUF
#undef REPRO_VT
#undef REPRO_XT
#undef REPRO_AT
#undef REPRO_IT
#undef REPRO_LOADX
#undef REPRO_STOREX
#undef REPRO_ETA_KAHAN

#define REPRO_SUF _f32_simd
#define REPRO_VT float
#define REPRO_XT float
#define REPRO_AT float
#define REPRO_IT int32_t
#define REPRO_LOADX(p, i) ((p)[(i)])
#define REPRO_STOREX(p, i, val) ((p)[(i)] = (val))
#define REPRO_ETA_KAHAN 1
#define REPRO_SIMD 1
#include "_kernels.c"
#undef REPRO_SUF
#undef REPRO_VT
#undef REPRO_XT
#undef REPRO_AT
#undef REPRO_IT
#undef REPRO_LOADX
#undef REPRO_STOREX
#undef REPRO_ETA_KAHAN

#define REPRO_SUF _f32u16_simd
#define REPRO_VT float
#define REPRO_XT float
#define REPRO_AT float
#define REPRO_IT uint16_t
#define REPRO_LOADX(p, i) ((p)[(i)])
#define REPRO_STOREX(p, i, val) ((p)[(i)] = (val))
#define REPRO_ETA_KAHAN 1
#define REPRO_SIMD 1
#include "_kernels.c"
#undef REPRO_SUF
#undef REPRO_VT
#undef REPRO_XT
#undef REPRO_AT
#undef REPRO_IT
#undef REPRO_LOADX
#undef REPRO_STOREX
#undef REPRO_ETA_KAHAN

#if REPRO_HAVE_F16C

#define REPRO_SUF _f16v_simd
#define REPRO_VT float
#define REPRO_XT uint16_t
#define REPRO_AT float
#define REPRO_IT int32_t
#define REPRO_LOADX(p, i) repro_half_to_float((p)[(i)])
#define REPRO_STOREX(p, i, val) ((p)[(i)] = repro_float_to_half(val))
#define REPRO_ETA_KAHAN 1
#define REPRO_SIMD 1
#define REPRO_HALF 1
#include "_kernels.c"
#undef REPRO_SUF
#undef REPRO_VT
#undef REPRO_XT
#undef REPRO_AT
#undef REPRO_IT
#undef REPRO_LOADX
#undef REPRO_STOREX
#undef REPRO_ETA_KAHAN

#define REPRO_SUF _f16vu16_simd
#define REPRO_VT float
#define REPRO_XT uint16_t
#define REPRO_AT float
#define REPRO_IT uint16_t
#define REPRO_LOADX(p, i) repro_half_to_float((p)[(i)])
#define REPRO_STOREX(p, i, val) ((p)[(i)] = repro_float_to_half(val))
#define REPRO_ETA_KAHAN 1
#define REPRO_SIMD 1
#define REPRO_HALF 1
#include "_kernels.c"
#undef REPRO_SUF
#undef REPRO_VT
#undef REPRO_XT
#undef REPRO_AT
#undef REPRO_IT
#undef REPRO_LOADX
#undef REPRO_STOREX
#undef REPRO_ETA_KAHAN

#endif /* REPRO_HAVE_F16C */

#endif /* REPRO_HAVE_AVX2 */

#else  /* REPRO_KERNELS_TEMPLATE: the kernel template, expanded above  */

#define KN(base) REPRO_CAT(base, REPRO_SUF)

/* Per-variant width-stability gate: only the fp64 baseline (the one
 * variant without compensated eta accumulation) must keep its per-row
 * eta loops scalar for the bitwise coalescing contract.               */
#if REPRO_ETA_KAHAN
#define REPRO_KNOVEC
#define REPRO_KNOVEC_STMT ((void)0)
#else
#define REPRO_KNOVEC REPRO_NOVEC
#define REPRO_KNOVEC_STMT REPRO_NOVEC_STMT
#endif

/* Scalar-kernel eta accumulators: plain double for the fp64 baseline
 * (bitwise-identical to the historical kernels), compensated for the
 * narrow profiles.  Partial products are always formed in double.     */
#if REPRO_ETA_KAHAN
#define REPRO_ESUM_DECL(name) double name = 0.0, name##_c = 0.0
#define REPRO_ESUM_ADD(name, x) repro_kadd(&name, &name##_c, (x))
/* Block-kernel eta arrays: compensation buffer [0,r) for eta_even,
 * [r, 3r) for the interleaved eta_odd.                                */
#define REPRO_EARR_DECL(r, cleanup)                                        \
    double *repro_ecomp = (double *)calloc((size_t)(3 * (r)),              \
                                           sizeof(double));                \
    if (!repro_ecomp) {                                                    \
        cleanup;                                                           \
        return;                                                            \
    }
#define REPRO_EE_ADD(k, x) repro_kadd(&eta_even[k], &repro_ecomp[k], (x))
#define REPRO_EO_ADD(k2, x) repro_kadd(&eta_odd[k2], &repro_ecomp[r + (k2)], (x))
#define REPRO_EARR_FREE() free(repro_ecomp)
#else
#define REPRO_ESUM_DECL(name) double name = 0.0
#define REPRO_ESUM_ADD(name, x) name += (x)
#define REPRO_EARR_DECL(r, cleanup)
#define REPRO_EE_ADD(k, x) eta_even[k] += (x)
#define REPRO_EO_ADD(k2, x) eta_odd[k2] += (x)
#define REPRO_EARR_FREE() ((void)0)
#endif

/* REPRO_SIMD selects the hand-vectorized inner loops; the SIMD
 * re-expansions at the bottom of the file set it to 1.  REPRO_HALF
 * marks the fp16v storage profiles (F16C conversions).                */
#ifndef REPRO_SIMD
#define REPRO_SIMD 0
#endif
#ifndef REPRO_HALF
#define REPRO_HALF 0
#endif

/* The SIMD build drops the software row prefetch: its unrolled gather
 * loops give the hardware prefetcher enough lookahead, and at large R
 * the per-entry prefetch call chain (one builtin per cache line of the
 * gathered row) is pure instruction overhead.  Architecturally inert
 * either way — prefetch never changes bits.                           */
#if REPRO_SIMD
#define REPRO_PFROW(p, nb) ((void)0)
#else
#define REPRO_PFROW(p, nb) repro_pf_row((p), (nb))
#endif

/* Narrow-profile vector load/store of the XT storage: identity for
 * fp32, F16C conversion (bitwise the software converters) for fp16v.  */
#if REPRO_SIMD && REPRO_ETA_KAHAN
#if REPRO_HALF
#define REPRO_SIMD_LOAD8(p) repro_load8h(p)
#define REPRO_SIMD_LOAD4(p) repro_load4h(p)
#define REPRO_SIMD_STORE4(p, v4) repro_store4h((p), (v4))
#define REPRO_SIMD_GATHER4C(x, j0, j1, j2, j3)                             \
    repro_gather4c_ph((x), (j0), (j1), (j2), (j3))
#else
#define REPRO_SIMD_LOAD8(p) _mm256_loadu_ps(p)
#define REPRO_SIMD_LOAD4(p) _mm_loadu_ps(p)
#define REPRO_SIMD_STORE4(p, v4) _mm_storeu_ps((p), (v4))
#define REPRO_SIMD_GATHER4C(x, j0, j1, j2, j3)                             \
    repro_gather4c_ps((x), (j0), (j1), (j2), (j3))
#endif
#endif

/* ------------------------------------------------------------------ */
/* Shared per-row bodies.  Each is written twice — scalar and AVX2 —   */
/* with IDENTICAL rounding DAGs (see the SIMD section header above),   */
/* so every kernel below produces the same bits with REPRO_SIMD on or  */
/* off.                                                                */
/* ------------------------------------------------------------------ */

/* Single-vector row dot with the fixed 8-lane lane-blocked reduction:
 * entry p accumulates into complex lane (p - p0) & 3 and the four
 * lanes reduce in one hard-coded order, independent of row length.
 * BOTH builds run this recurrence — the scalar build emulates the
 * lane grid — which is what makes the vectorized dot bitwise equal
 * to the scalar kernel for every row.                                 */
static inline void KN(repro_rowdot)(
    int64_t p0,
    int64_t p1,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict x,
    REPRO_AT *restrict sr_out,
    REPRO_AT *restrict si_out)
{
    REPRO_AT L[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    int64_t p = p0;
#if REPRO_SIMD && !REPRO_ETA_KAHAN
    {
        /* complex lanes 0..1 in acc0, 2..3 in acc1 */
        __m256d acc0 = _mm256_setzero_pd();
        __m256d acc1 = _mm256_setzero_pd();
        for (; p + 4 <= p1; p += 4) {
            const __m256d d01 = _mm256_loadu_pd(data + 2 * p);
            const __m256d d23 = _mm256_loadu_pd(data + 2 * p + 4);
            const __m256d x01 = repro_gather2c_pd(
                x, (int64_t)indices[p], (int64_t)indices[p + 1]);
            const __m256d x23 = repro_gather2c_pd(
                x, (int64_t)indices[p + 2], (int64_t)indices[p + 3]);
            acc0 = repro_cmadd_pairs_pd(acc0, d01, x01);
            acc1 = repro_cmadd_pairs_pd(acc1, d23, x23);
        }
        _mm256_storeu_pd(L, acc0);
        _mm256_storeu_pd(L + 4, acc1);
    }
#elif REPRO_SIMD
    {
        /* four float complex lanes in one ymm */
        __m256 acc = _mm256_setzero_ps();
        for (; p + 4 <= p1; p += 4) {
            const __m256 d = _mm256_loadu_ps(data + 2 * p);
            const __m256 xv = REPRO_SIMD_GATHER4C(
                x, (int64_t)indices[p], (int64_t)indices[p + 1],
                (int64_t)indices[p + 2], (int64_t)indices[p + 3]);
            acc = repro_cmadd_pairs_ps(acc, d, xv);
        }
        _mm256_storeu_ps(L, acc);
    }
#endif
    for (; p < p1; ++p) {
        const REPRO_AT ar = (REPRO_AT)data[2 * p];
        const REPRO_AT ai = (REPRO_AT)data[2 * p + 1];
        const int64_t j = (int64_t)indices[p];
        const REPRO_AT xr = REPRO_LOADX(x, 2 * j);
        const REPRO_AT xi = REPRO_LOADX(x, 2 * j + 1);
        const int e = (int)((p - p0) & 3);
        L[2 * e] += ar * xr - ai * xi;
        L[2 * e + 1] += ar * xi + ai * xr;
    }
    *sr_out = (L[0] + L[2]) + (L[4] + L[6]);
    *si_out = (L[1] + L[3]) + (L[5] + L[7]);
}

/* Blocked gather update acc += (ar + i ai) * xj over the r columns of
 * one gathered row.  Vertical vectorization: a block column is a
 * dedicated vector lane, so each column's accumulation DAG is the
 * scalar loop's for every r (tail columns run the scalar body).       */
static inline void KN(repro_rowaxpy)(
    REPRO_AT *restrict acc,
    const REPRO_XT *restrict xj,
    REPRO_AT ar,
    REPRO_AT ai,
    int64_t r)
{
    const int64_t m = 2 * r;
    int64_t q = 0;
#if REPRO_SIMD && !REPRO_ETA_KAHAN
    {
        const __m256d arv = _mm256_set1_pd(ar);
        const __m256d aiv = repro_aiv_pd(ai);
        for (; q + 4 <= m; q += 4) {
            __m256d av = _mm256_loadu_pd(acc + q);
            av = repro_cmadd_pd(av, arv, aiv, _mm256_loadu_pd(xj + q));
            _mm256_storeu_pd(acc + q, av);
        }
        if (q < m) { /* one trailing column */
            const __m128d ar2 = _mm_set1_pd(ar);
            const __m128d ai2 = repro_aiv_pd128(ai);
            __m128d av = _mm_loadu_pd(acc + q);
            av = repro_cmadd_pd128(av, ar2, ai2, _mm_loadu_pd(xj + q));
            _mm_storeu_pd(acc + q, av);
            q = m;
        }
    }
#elif REPRO_SIMD
    {
        const __m256 arv = _mm256_set1_ps(ar);
        const __m256 aiv = repro_aiv_ps(ai);
        for (; q + 8 <= m; q += 8) {
            __m256 av = _mm256_loadu_ps(acc + q);
            av = repro_cmadd_ps(av, arv, aiv, REPRO_SIMD_LOAD8(xj + q));
            _mm256_storeu_ps(acc + q, av);
        }
    }
#endif
    for (; q < m; q += 2) {
        const REPRO_AT xr = REPRO_LOADX(xj, q);
        const REPRO_AT xi = REPRO_LOADX(xj, q + 1);
        acc[q] += ar * xr - ai * xi;
        acc[q + 1] += ar * xi + ai * xr;
    }
}

/* SELL gather update for one slot column j: lane <-> vector lane, so
 * the per-row (per-lane) accumulation order over j is untouched.      */
static inline void KN(repro_lanecmadd)(
    REPRO_AT *restrict acc,
    const REPRO_VT *restrict data,
    const REPRO_IT *restrict indices,
    int64_t slot0,
    int64_t c,
    const REPRO_XT *restrict x)
{
    int64_t lane = 0;
#if REPRO_SIMD && !REPRO_ETA_KAHAN
    for (; lane + 2 <= c; lane += 2) {
        const __m256d d = _mm256_loadu_pd(data + 2 * (slot0 + lane));
        const __m256d xv = repro_gather2c_pd(
            x, (int64_t)indices[slot0 + lane],
            (int64_t)indices[slot0 + lane + 1]);
        __m256d av = _mm256_loadu_pd(acc + 2 * lane);
        av = repro_cmadd_pairs_pd(av, d, xv);
        _mm256_storeu_pd(acc + 2 * lane, av);
    }
#elif REPRO_SIMD
    for (; lane + 4 <= c; lane += 4) {
        const __m256 d = _mm256_loadu_ps(data + 2 * (slot0 + lane));
        const __m256 xv = REPRO_SIMD_GATHER4C(
            x, (int64_t)indices[slot0 + lane],
            (int64_t)indices[slot0 + lane + 1],
            (int64_t)indices[slot0 + lane + 2],
            (int64_t)indices[slot0 + lane + 3]);
        __m256 av = _mm256_loadu_ps(acc + 2 * lane);
        av = repro_cmadd_pairs_ps(av, d, xv);
        _mm256_storeu_ps(acc + 2 * lane, av);
    }
#endif
    for (; lane < c; ++lane) {
        const REPRO_AT ar = (REPRO_AT)data[2 * (slot0 + lane)];
        const REPRO_AT ai = (REPRO_AT)data[2 * (slot0 + lane) + 1];
        const int64_t col = (int64_t)indices[slot0 + lane];
        const REPRO_AT xr = REPRO_LOADX(x, 2 * col);
        const REPRO_AT xi = REPRO_LOADX(x, 2 * col + 1);
        acc[2 * lane] += ar * xr - ai * xi;
        acc[2 * lane + 1] += ar * xi + ai * xr;
    }
}

/* Store m accumulator values into XT storage.  Only the fp16v SIMD
 * build deviates from the plain loop: 8 conversions per vcvtps2ph
 * (round-to-nearest-even, bitwise the software converter).            */
static inline void KN(repro_storerow)(
    REPRO_XT *restrict y,
    const REPRO_AT *restrict acc,
    int64_t m)
{
    int64_t q = 0;
#if REPRO_SIMD && REPRO_HALF
    for (; q + 8 <= m; q += 8)
        repro_store8h(y + q, _mm256_loadu_ps(acc + q));
#endif
    for (; q < m; ++q)
        REPRO_STOREX(y, q, acc[q]);
}

#if !REPRO_ETA_KAHAN
/* Recombination + eta update over the r columns of one row, plain
 * (uncompensated) eta accumulation — the fp64 non-threaded kernels.
 * Scalar build: the historical loop, kept off the autovectorizer so a
 * column's bits never depend on r (the coalescing contract).  SIMD
 * build: one fp64 lane per column, the SAME per-column DAG at every
 * width — which is exactly why the vectorized path needs no such
 * crutch.                                                             */
static inline void KN(repro_loopb_plain)(
    const REPRO_XT *restrict vrow,
    REPRO_XT *restrict wrow,
    const REPRO_AT *restrict acc,
    int64_t r,
    REPRO_AT ta,
    REPRO_AT tab,
    double *restrict ee,
    double *restrict eo)
{
    int64_t k = 0;
#if REPRO_SIMD
    {
        const __m256d tav = _mm256_set1_pd(ta);
        const __m256d tabv = _mm256_set1_pd(tab);
        for (; k + 2 <= r; k += 2) {
            const __m256d vv = _mm256_loadu_pd(vrow + 2 * k);
            const __m256d av = _mm256_loadu_pd(acc + 2 * k);
            const __m256d wold = _mm256_loadu_pd(wrow + 2 * k);
            const __m256d wv = _mm256_sub_pd(
                _mm256_sub_pd(_mm256_mul_pd(tav, av),
                              _mm256_mul_pd(tabv, vv)),
                wold);
            _mm256_storeu_pd(wrow + 2 * k, wv);
            repro_vadd_pd2(ee + k, repro_ee_pair_pd(vv));
            repro_vadd_pd4(eo + 2 * k, repro_eo_quad_pd(vv, wv));
        }
    }
    for (; k < r; ++k) {
        const REPRO_AT vr = REPRO_LOADX(vrow, 2 * k);
        const REPRO_AT vi = REPRO_LOADX(vrow, 2 * k + 1);
        const REPRO_AT wr = ta * acc[2 * k] - tab * vr
            - REPRO_LOADX(wrow, 2 * k);
        const REPRO_AT wi = ta * acc[2 * k + 1] - tab * vi
            - REPRO_LOADX(wrow, 2 * k + 1);
        REPRO_STOREX(wrow, 2 * k, wr);
        REPRO_STOREX(wrow, 2 * k + 1, wi);
        ee[k] += (double)vr * (double)vr + (double)vi * (double)vi;
        eo[2 * k] += (double)wr * (double)vr + (double)wi * (double)vi;
        eo[2 * k + 1] += (double)wr * (double)vi - (double)wi * (double)vr;
    }
#else
    REPRO_NOVEC
    for (; k < r; ++k) {
        REPRO_NOVEC_STMT;
        const REPRO_AT vr = REPRO_LOADX(vrow, 2 * k);
        const REPRO_AT vi = REPRO_LOADX(vrow, 2 * k + 1);
        const REPRO_AT wr = ta * acc[2 * k] - tab * vr
            - REPRO_LOADX(wrow, 2 * k);
        const REPRO_AT wi = ta * acc[2 * k + 1] - tab * vi
            - REPRO_LOADX(wrow, 2 * k + 1);
        REPRO_STOREX(wrow, 2 * k, wr);
        REPRO_STOREX(wrow, 2 * k + 1, wi);
        ee[k] += (double)vr * (double)vr + (double)vi * (double)vi;
        eo[2 * k] += (double)wr * (double)vr + (double)wi * (double)vi;
        eo[2 * k + 1] += (double)wr * (double)vi - (double)wi * (double)vr;
    }
#endif
}
#endif /* !REPRO_ETA_KAHAN */

/* Compensated flavor of the recombination + eta loop, shared by the
 * narrow profiles (non-threaded) and ALL _mt block bodies.  The carry
 * layout is the unified [ee r | eo 2r] slice used by both repro_ecomp
 * and the per-block bcc buffers.                                      */
static inline void KN(repro_loopb_kahan)(
    const REPRO_XT *restrict vrow,
    REPRO_XT *restrict wrow,
    const REPRO_AT *restrict acc,
    int64_t r,
    REPRO_AT ta,
    REPRO_AT tab,
    double *restrict ee,
    double *restrict eo,
    double *restrict cc)
{
    int64_t k = 0;
#if REPRO_SIMD && !REPRO_ETA_KAHAN
    {
        const __m256d tav = _mm256_set1_pd(ta);
        const __m256d tabv = _mm256_set1_pd(tab);
        for (; k + 2 <= r; k += 2) {
            const __m256d vv = _mm256_loadu_pd(vrow + 2 * k);
            const __m256d av = _mm256_loadu_pd(acc + 2 * k);
            const __m256d wold = _mm256_loadu_pd(wrow + 2 * k);
            const __m256d wv = _mm256_sub_pd(
                _mm256_sub_pd(_mm256_mul_pd(tav, av),
                              _mm256_mul_pd(tabv, vv)),
                wold);
            _mm256_storeu_pd(wrow + 2 * k, wv);
            repro_kadd_pd2(ee + k, cc + k, repro_ee_pair_pd(vv));
            repro_kadd_pd4(eo + 2 * k, cc + r + 2 * k,
                           repro_eo_quad_pd(vv, wv));
        }
    }
#elif REPRO_SIMD
    {
        const __m128 ta4 = _mm_set1_ps(ta);
        const __m128 tab4 = _mm_set1_ps(tab);
        for (; k + 2 <= r; k += 2) {
            const __m128 v4 = REPRO_SIMD_LOAD4(vrow + 2 * k);
            const __m128 a4 = _mm_loadu_ps(acc + 2 * k);
            const __m128 w4old = REPRO_SIMD_LOAD4(wrow + 2 * k);
            const __m128 w4 = _mm_sub_ps(
                _mm_sub_ps(_mm_mul_ps(ta4, a4), _mm_mul_ps(tab4, v4)),
                w4old);
            REPRO_SIMD_STORE4(wrow + 2 * k, w4);
            /* exact float->double promotion, then the fp64 eta DAG */
            const __m256d vv = _mm256_cvtps_pd(v4);
            const __m256d wv = _mm256_cvtps_pd(w4);
            repro_kadd_pd2(ee + k, cc + k, repro_ee_pair_pd(vv));
            repro_kadd_pd4(eo + 2 * k, cc + r + 2 * k,
                           repro_eo_quad_pd(vv, wv));
        }
    }
#endif
    REPRO_KNOVEC
    for (; k < r; ++k) {
        REPRO_KNOVEC_STMT;
        const REPRO_AT vr = REPRO_LOADX(vrow, 2 * k);
        const REPRO_AT vi = REPRO_LOADX(vrow, 2 * k + 1);
        const REPRO_AT wr = ta * acc[2 * k] - tab * vr
            - REPRO_LOADX(wrow, 2 * k);
        const REPRO_AT wi = ta * acc[2 * k + 1] - tab * vi
            - REPRO_LOADX(wrow, 2 * k + 1);
        REPRO_STOREX(wrow, 2 * k, wr);
        REPRO_STOREX(wrow, 2 * k + 1, wi);
        repro_kadd(&ee[k], &cc[k],
                   (double)vr * (double)vr + (double)vi * (double)vi);
        repro_kadd(&eo[2 * k], &cc[r + 2 * k],
                   (double)wr * (double)vr + (double)wi * (double)vi);
        repro_kadd(&eo[2 * k + 1], &cc[r + 2 * k + 1],
                   (double)wr * (double)vi - (double)wi * (double)vr);
    }
}

/* Dispatch for the non-threaded blocked kernels: the narrow profiles
 * carry the repro_ecomp compensation array, the fp64 baseline the
 * plain accumulators.                                                 */
#if REPRO_ETA_KAHAN
#define REPRO_LOOPB(vrow, wrow, accp)                                      \
    KN(repro_loopb_kahan)((vrow), (wrow), (accp), r, ta, tab, eta_even,    \
                          eta_odd, repro_ecomp)
#else
#define REPRO_LOOPB(vrow, wrow, accp)                                      \
    KN(repro_loopb_plain)((vrow), (wrow), (accp), r, ta, tab, eta_even,    \
                          eta_odd)
#endif

/* ------------------------------------------------------------------ */
/* CSR                                                                 */
/* ------------------------------------------------------------------ */

EXPORT void KN(repro_csr_spmv)(
    int64_t n_rows,
    const int64_t *restrict indptr,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,   /* 2*nnz    */
    const REPRO_XT *restrict x,      /* 2*n_cols */
    REPRO_XT *restrict y)            /* 2*n_rows */
{
    for (int64_t i = 0; i < n_rows; ++i) {
        REPRO_AT sr = 0, si = 0;
        const int64_t p0 = indptr[i], p1 = indptr[i + 1];
        for (int64_t p = p0; p < p1; ++p) {
            const REPRO_AT ar = (REPRO_AT)data[2 * p];
            const REPRO_AT ai = (REPRO_AT)data[2 * p + 1];
            const int64_t j = (int64_t)indices[p];
            const REPRO_AT xr = REPRO_LOADX(x, 2 * j);
            const REPRO_AT xi = REPRO_LOADX(x, 2 * j + 1);
            sr += ar * xr - ai * xi;
            si += ar * xi + ai * xr;
        }
        REPRO_STOREX(y, 2 * i, sr);
        REPRO_STOREX(y, 2 * i + 1, si);
    }
}

EXPORT void KN(repro_csr_spmmv)(
    int64_t n_rows,
    int64_t r,
    const int64_t *restrict indptr,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict X,      /* 2*n_cols*r, row-major */
    REPRO_XT *restrict Y)            /* 2*n_rows*r, row-major */
{
    REPRO_AT *acc = (REPRO_AT *)malloc((size_t)(2 * r) * sizeof(REPRO_AT));
    if (!acc)
        return;
    for (int64_t i = 0; i < n_rows; ++i) {
        memset(acc, 0, (size_t)(2 * r) * sizeof(REPRO_AT));
        const int64_t p0 = indptr[i], p1 = indptr[i + 1];
        for (int64_t p = p0; p < p1; ++p) {
            if (p + 1 < p1)
                REPRO_PFROW(X + 2 * (int64_t)indices[p + 1] * r,
                            (size_t)(2 * r) * sizeof(REPRO_XT));
            const REPRO_AT ar = (REPRO_AT)data[2 * p];
            const REPRO_AT ai = (REPRO_AT)data[2 * p + 1];
            const REPRO_XT *restrict xj = X + 2 * (int64_t)indices[p] * r;
            KN(repro_rowaxpy)(acc, xj, ar, ai, r);
        }
        KN(repro_storerow)(Y + 2 * i * r, acc, 2 * r);
    }
    free(acc);
}

/* w <- 2a(Hv - b v) - w, plus eta_even = <v|v>, eta_odd = <w_new|v>.
 * eta_odd is one interleaved complex value.                           */
EXPORT void KN(repro_csr_aug_spmv)(
    int64_t n_rows,
    const int64_t *restrict indptr,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict v,
    REPRO_XT *restrict w,
    double a,
    double b,
    double *restrict eta_even,     /* 1 double  */
    double *restrict eta_odd)      /* 2 doubles */
{
    const REPRO_AT ta = (REPRO_AT)(2.0 * a), tab = (REPRO_AT)(2.0 * a * b);
    REPRO_ESUM_DECL(ee);
    REPRO_ESUM_DECL(eor);
    REPRO_ESUM_DECL(eoi);
    for (int64_t i = 0; i < n_rows; ++i) {
        REPRO_AT sr, si;
        KN(repro_rowdot)(indptr[i], indptr[i + 1], indices, data, v, &sr,
                         &si);
        const REPRO_AT vr = REPRO_LOADX(v, 2 * i);
        const REPRO_AT vi = REPRO_LOADX(v, 2 * i + 1);
        const REPRO_AT wr = ta * sr - tab * vr - REPRO_LOADX(w, 2 * i);
        const REPRO_AT wi = ta * si - tab * vi - REPRO_LOADX(w, 2 * i + 1);
        REPRO_STOREX(w, 2 * i, wr);
        REPRO_STOREX(w, 2 * i + 1, wi);
        REPRO_ESUM_ADD(ee, (double)vr * (double)vr + (double)vi * (double)vi);
        /* conj(w_new) * v */
        REPRO_ESUM_ADD(eor, (double)wr * (double)vr + (double)wi * (double)vi);
        REPRO_ESUM_ADD(eoi, (double)wr * (double)vi - (double)wi * (double)vr);
    }
    *eta_even = ee;
    eta_odd[0] = eor;
    eta_odd[1] = eoi;
}

/* Blocked variant: V, W are (N, R) row-major; eta_even is R doubles,
 * eta_odd R interleaved complex values.                               */
EXPORT void KN(repro_csr_aug_spmmv)(
    int64_t n_rows,
    int64_t r,
    const int64_t *restrict indptr,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict V,
    REPRO_XT *restrict W,
    double a,
    double b,
    double *restrict eta_even,     /* r doubles   */
    double *restrict eta_odd)      /* 2*r doubles */
{
    const REPRO_AT ta = (REPRO_AT)(2.0 * a), tab = (REPRO_AT)(2.0 * a * b);
    REPRO_AT *acc = (REPRO_AT *)malloc((size_t)(2 * r) * sizeof(REPRO_AT));
    if (!acc)
        return;
    memset(eta_even, 0, (size_t)r * sizeof(double));
    memset(eta_odd, 0, (size_t)(2 * r) * sizeof(double));
    REPRO_EARR_DECL(r, free(acc))
    for (int64_t i = 0; i < n_rows; ++i) {
        memset(acc, 0, (size_t)(2 * r) * sizeof(REPRO_AT));
        const int64_t p0 = indptr[i], p1 = indptr[i + 1];
        for (int64_t p = p0; p < p1; ++p) {
            if (p + 1 < p1)
                REPRO_PFROW(V + 2 * (int64_t)indices[p + 1] * r,
                            (size_t)(2 * r) * sizeof(REPRO_XT));
            const REPRO_AT ar = (REPRO_AT)data[2 * p];
            const REPRO_AT ai = (REPRO_AT)data[2 * p + 1];
            const REPRO_XT *restrict xj = V + 2 * (int64_t)indices[p] * r;
            KN(repro_rowaxpy)(acc, xj, ar, ai, r);
        }
        REPRO_LOOPB(V + 2 * i * r, W + 2 * i * r, acc);
    }
    REPRO_EARR_FREE();
    free(acc);
}

/* ------------------------------------------------------------------ */
/* CSR split kernels (task-mode overlapped execution)                  */
/*                                                                     */
/* The distributed engines hide the halo exchange by running the KPM   */
/* update in two phases: a contiguous *interior* row range [row0,row1) */
/* whose entries reference only local columns (computable before the   */
/* halo arrives), then the gathered *boundary* rows.  Both variants    */
/* index the ORIGINAL local matrix absolutely — no row extraction —    */
/* and the per-row arithmetic is byte-for-byte the plain kernel's, so  */
/* the W update is bitwise identical to a single-phase call for any    */
/* split.  Each phase zeroes and returns its OWN eta partials; the     */
/* caller combines them in a fixed order (interior + boundary), which  */
/* makes the combined dots independent of the execution schedule.      */
/* ------------------------------------------------------------------ */

EXPORT void KN(repro_csr_aug_spmv_range)(
    int64_t row0,
    int64_t row1,
    const int64_t *restrict indptr,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict v,
    REPRO_XT *restrict w,
    double a,
    double b,
    double *restrict eta_even,     /* 1 double: this phase's partial  */
    double *restrict eta_odd)      /* 2 doubles                       */
{
    const REPRO_AT ta = (REPRO_AT)(2.0 * a), tab = (REPRO_AT)(2.0 * a * b);
    REPRO_ESUM_DECL(ee);
    REPRO_ESUM_DECL(eor);
    REPRO_ESUM_DECL(eoi);
    for (int64_t i = row0; i < row1; ++i) {
        REPRO_AT sr, si;
        KN(repro_rowdot)(indptr[i], indptr[i + 1], indices, data, v, &sr,
                         &si);
        const REPRO_AT vr = REPRO_LOADX(v, 2 * i);
        const REPRO_AT vi = REPRO_LOADX(v, 2 * i + 1);
        const REPRO_AT wr = ta * sr - tab * vr - REPRO_LOADX(w, 2 * i);
        const REPRO_AT wi = ta * si - tab * vi - REPRO_LOADX(w, 2 * i + 1);
        REPRO_STOREX(w, 2 * i, wr);
        REPRO_STOREX(w, 2 * i + 1, wi);
        REPRO_ESUM_ADD(ee, (double)vr * (double)vr + (double)vi * (double)vi);
        REPRO_ESUM_ADD(eor, (double)wr * (double)vr + (double)wi * (double)vi);
        REPRO_ESUM_ADD(eoi, (double)wr * (double)vi - (double)wi * (double)vr);
    }
    *eta_even = ee;
    eta_odd[0] = eor;
    eta_odd[1] = eoi;
}

EXPORT void KN(repro_csr_aug_spmv_rows)(
    int64_t n_sub,
    const int64_t *restrict rows,  /* gathered local row indices      */
    const int64_t *restrict indptr,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict v,
    REPRO_XT *restrict w,
    double a,
    double b,
    double *restrict eta_even,
    double *restrict eta_odd)
{
    const REPRO_AT ta = (REPRO_AT)(2.0 * a), tab = (REPRO_AT)(2.0 * a * b);
    REPRO_ESUM_DECL(ee);
    REPRO_ESUM_DECL(eor);
    REPRO_ESUM_DECL(eoi);
    for (int64_t t = 0; t < n_sub; ++t) {
        const int64_t i = rows[t];
        REPRO_AT sr, si;
        KN(repro_rowdot)(indptr[i], indptr[i + 1], indices, data, v, &sr,
                         &si);
        const REPRO_AT vr = REPRO_LOADX(v, 2 * i);
        const REPRO_AT vi = REPRO_LOADX(v, 2 * i + 1);
        const REPRO_AT wr = ta * sr - tab * vr - REPRO_LOADX(w, 2 * i);
        const REPRO_AT wi = ta * si - tab * vi - REPRO_LOADX(w, 2 * i + 1);
        REPRO_STOREX(w, 2 * i, wr);
        REPRO_STOREX(w, 2 * i + 1, wi);
        REPRO_ESUM_ADD(ee, (double)vr * (double)vr + (double)vi * (double)vi);
        REPRO_ESUM_ADD(eor, (double)wr * (double)vr + (double)wi * (double)vi);
        REPRO_ESUM_ADD(eoi, (double)wr * (double)vi - (double)wi * (double)vr);
    }
    *eta_even = ee;
    eta_odd[0] = eor;
    eta_odd[1] = eoi;
}

EXPORT void KN(repro_csr_aug_spmmv_range)(
    int64_t row0,
    int64_t row1,
    int64_t r,
    const int64_t *restrict indptr,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict V,
    REPRO_XT *restrict W,
    double a,
    double b,
    double *restrict eta_even,     /* r doubles: this phase's partials */
    double *restrict eta_odd)      /* 2*r doubles                      */
{
    const REPRO_AT ta = (REPRO_AT)(2.0 * a), tab = (REPRO_AT)(2.0 * a * b);
    REPRO_AT *acc = (REPRO_AT *)malloc((size_t)(2 * r) * sizeof(REPRO_AT));
    if (!acc)
        return;
    memset(eta_even, 0, (size_t)r * sizeof(double));
    memset(eta_odd, 0, (size_t)(2 * r) * sizeof(double));
    REPRO_EARR_DECL(r, free(acc))
    for (int64_t i = row0; i < row1; ++i) {
        memset(acc, 0, (size_t)(2 * r) * sizeof(REPRO_AT));
        const int64_t p0 = indptr[i], p1 = indptr[i + 1];
        for (int64_t p = p0; p < p1; ++p) {
            if (p + 1 < p1)
                REPRO_PFROW(V + 2 * (int64_t)indices[p + 1] * r,
                            (size_t)(2 * r) * sizeof(REPRO_XT));
            const REPRO_AT ar = (REPRO_AT)data[2 * p];
            const REPRO_AT ai = (REPRO_AT)data[2 * p + 1];
            const REPRO_XT *restrict xj = V + 2 * (int64_t)indices[p] * r;
            KN(repro_rowaxpy)(acc, xj, ar, ai, r);
        }
        REPRO_LOOPB(V + 2 * i * r, W + 2 * i * r, acc);
    }
    REPRO_EARR_FREE();
    free(acc);
}

EXPORT void KN(repro_csr_aug_spmmv_rows)(
    int64_t n_sub,
    const int64_t *restrict rows,
    int64_t r,
    const int64_t *restrict indptr,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict V,
    REPRO_XT *restrict W,
    double a,
    double b,
    double *restrict eta_even,
    double *restrict eta_odd)
{
    const REPRO_AT ta = (REPRO_AT)(2.0 * a), tab = (REPRO_AT)(2.0 * a * b);
    REPRO_AT *acc = (REPRO_AT *)malloc((size_t)(2 * r) * sizeof(REPRO_AT));
    if (!acc)
        return;
    memset(eta_even, 0, (size_t)r * sizeof(double));
    memset(eta_odd, 0, (size_t)(2 * r) * sizeof(double));
    REPRO_EARR_DECL(r, free(acc))
    for (int64_t t = 0; t < n_sub; ++t) {
        const int64_t i = rows[t];
        memset(acc, 0, (size_t)(2 * r) * sizeof(REPRO_AT));
        const int64_t p0 = indptr[i], p1 = indptr[i + 1];
        for (int64_t p = p0; p < p1; ++p) {
            if (p + 1 < p1)
                REPRO_PFROW(V + 2 * (int64_t)indices[p + 1] * r,
                            (size_t)(2 * r) * sizeof(REPRO_XT));
            const REPRO_AT ar = (REPRO_AT)data[2 * p];
            const REPRO_AT ai = (REPRO_AT)data[2 * p + 1];
            const REPRO_XT *restrict xj = V + 2 * (int64_t)indices[p] * r;
            KN(repro_rowaxpy)(acc, xj, ar, ai, r);
        }
        REPRO_LOOPB(V + 2 * i * r, W + 2 * i * r, acc);
    }
    REPRO_EARR_FREE();
    free(acc);
}

/* ------------------------------------------------------------------ */
/* SELL-C-sigma                                                        */
/*                                                                     */
/* Flat layout: chunk ci of height C and length L = chunk_len[ci]      */
/* stores slot (j, lane) at chunk_ptr[ci] + j*C + lane (column-major   */
/* within the chunk).  perm[sorted_pos] is the original row; sorted    */
/* positions whose perm value is >= n_rows are padding rows.  Padded   */
/* slots hold value 0 with a valid self-referencing column, so they    */
/* are numerically inert but are streamed like real entries.           */
/* ------------------------------------------------------------------ */

EXPORT void KN(repro_sell_spmv)(
    int64_t n_rows,
    int64_t n_chunks,
    int64_t c,
    const int64_t *restrict chunk_ptr,
    const int64_t *restrict chunk_len,
    const int64_t *restrict perm,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict x,
    REPRO_XT *restrict y)
{
    REPRO_AT *acc = (REPRO_AT *)malloc((size_t)(2 * c) * sizeof(REPRO_AT));
    if (!acc)
        return;
    for (int64_t ci = 0; ci < n_chunks; ++ci) {
        const int64_t base = chunk_ptr[ci], len = chunk_len[ci];
        memset(acc, 0, (size_t)(2 * c) * sizeof(REPRO_AT));
        for (int64_t j = 0; j < len; ++j)
            KN(repro_lanecmadd)(acc, data, indices, base + j * c, c, x);
        for (int64_t lane = 0; lane < c; ++lane) {
            const int64_t row = perm[ci * c + lane];
            if (row < n_rows) {
                REPRO_STOREX(y, 2 * row, acc[2 * lane]);
                REPRO_STOREX(y, 2 * row + 1, acc[2 * lane + 1]);
            }
        }
    }
    free(acc);
}

EXPORT void KN(repro_sell_spmmv)(
    int64_t n_rows,
    int64_t n_chunks,
    int64_t c,
    int64_t r,
    const int64_t *restrict chunk_ptr,
    const int64_t *restrict chunk_len,
    const int64_t *restrict perm,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict X,
    REPRO_XT *restrict Y)
{
    REPRO_AT *acc =
        (REPRO_AT *)malloc((size_t)(2 * c * r) * sizeof(REPRO_AT));
    if (!acc)
        return;
    for (int64_t ci = 0; ci < n_chunks; ++ci) {
        const int64_t base = chunk_ptr[ci], len = chunk_len[ci];
        memset(acc, 0, (size_t)(2 * c * r) * sizeof(REPRO_AT));
        for (int64_t j = 0; j < len; ++j) {
            const int64_t slot0 = base + j * c;
            const int has_next = (j + 1 < len);
            for (int64_t lane = 0; lane < c; ++lane) {
                if (has_next)
                    REPRO_PFROW(
                        X + 2 * (int64_t)indices[slot0 + c + lane] * r,
                        (size_t)(2 * r) * sizeof(REPRO_XT));
                const REPRO_AT ar = (REPRO_AT)data[2 * (slot0 + lane)];
                const REPRO_AT ai = (REPRO_AT)data[2 * (slot0 + lane) + 1];
                const REPRO_XT *restrict xj =
                    X + 2 * (int64_t)indices[slot0 + lane] * r;
                KN(repro_rowaxpy)(acc + 2 * lane * r, xj, ar, ai, r);
            }
        }
        for (int64_t lane = 0; lane < c; ++lane) {
            const int64_t row = perm[ci * c + lane];
            if (row < n_rows)
                KN(repro_storerow)(Y + 2 * row * r, acc + 2 * lane * r,
                                   2 * r);
        }
    }
    free(acc);
}

EXPORT void KN(repro_sell_aug_spmv)(
    int64_t n_rows,
    int64_t n_chunks,
    int64_t c,
    const int64_t *restrict chunk_ptr,
    const int64_t *restrict chunk_len,
    const int64_t *restrict perm,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict v,
    REPRO_XT *restrict w,
    double a,
    double b,
    double *restrict eta_even,
    double *restrict eta_odd)
{
    const REPRO_AT ta = (REPRO_AT)(2.0 * a), tab = (REPRO_AT)(2.0 * a * b);
    REPRO_ESUM_DECL(ee);
    REPRO_ESUM_DECL(eor);
    REPRO_ESUM_DECL(eoi);
    REPRO_AT *acc = (REPRO_AT *)malloc((size_t)(2 * c) * sizeof(REPRO_AT));
    if (!acc)
        return;
    for (int64_t ci = 0; ci < n_chunks; ++ci) {
        const int64_t base = chunk_ptr[ci], len = chunk_len[ci];
        memset(acc, 0, (size_t)(2 * c) * sizeof(REPRO_AT));
        for (int64_t j = 0; j < len; ++j)
            KN(repro_lanecmadd)(acc, data, indices, base + j * c, c, v);
        for (int64_t lane = 0; lane < c; ++lane) {
            const int64_t row = perm[ci * c + lane];
            if (row >= n_rows)
                continue;
            const REPRO_AT vr = REPRO_LOADX(v, 2 * row);
            const REPRO_AT vi = REPRO_LOADX(v, 2 * row + 1);
            const REPRO_AT wr = ta * acc[2 * lane] - tab * vr
                - REPRO_LOADX(w, 2 * row);
            const REPRO_AT wi = ta * acc[2 * lane + 1] - tab * vi
                - REPRO_LOADX(w, 2 * row + 1);
            REPRO_STOREX(w, 2 * row, wr);
            REPRO_STOREX(w, 2 * row + 1, wi);
            REPRO_ESUM_ADD(ee,
                           (double)vr * (double)vr + (double)vi * (double)vi);
            REPRO_ESUM_ADD(eor,
                           (double)wr * (double)vr + (double)wi * (double)vi);
            REPRO_ESUM_ADD(eoi,
                           (double)wr * (double)vi - (double)wi * (double)vr);
        }
    }
    free(acc);
    *eta_even = ee;
    eta_odd[0] = eor;
    eta_odd[1] = eoi;
}

EXPORT void KN(repro_sell_aug_spmmv)(
    int64_t n_rows,
    int64_t n_chunks,
    int64_t c,
    int64_t r,
    const int64_t *restrict chunk_ptr,
    const int64_t *restrict chunk_len,
    const int64_t *restrict perm,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict V,
    REPRO_XT *restrict W,
    double a,
    double b,
    double *restrict eta_even,
    double *restrict eta_odd)
{
    const REPRO_AT ta = (REPRO_AT)(2.0 * a), tab = (REPRO_AT)(2.0 * a * b);
    REPRO_AT *acc =
        (REPRO_AT *)malloc((size_t)(2 * c * r) * sizeof(REPRO_AT));
    if (!acc)
        return;
    memset(eta_even, 0, (size_t)r * sizeof(double));
    memset(eta_odd, 0, (size_t)(2 * r) * sizeof(double));
    REPRO_EARR_DECL(r, free(acc))
    for (int64_t ci = 0; ci < n_chunks; ++ci) {
        const int64_t base = chunk_ptr[ci], len = chunk_len[ci];
        memset(acc, 0, (size_t)(2 * c * r) * sizeof(REPRO_AT));
        for (int64_t j = 0; j < len; ++j) {
            const int64_t slot0 = base + j * c;
            const int has_next = (j + 1 < len);
            for (int64_t lane = 0; lane < c; ++lane) {
                if (has_next)
                    REPRO_PFROW(
                        V + 2 * (int64_t)indices[slot0 + c + lane] * r,
                        (size_t)(2 * r) * sizeof(REPRO_XT));
                const REPRO_AT ar = (REPRO_AT)data[2 * (slot0 + lane)];
                const REPRO_AT ai = (REPRO_AT)data[2 * (slot0 + lane) + 1];
                const REPRO_XT *restrict xj =
                    V + 2 * (int64_t)indices[slot0 + lane] * r;
                KN(repro_rowaxpy)(acc + 2 * lane * r, xj, ar, ai, r);
            }
        }
        for (int64_t lane = 0; lane < c; ++lane) {
            const int64_t row = perm[ci * c + lane];
            if (row >= n_rows)
                continue;
            REPRO_LOOPB(V + 2 * row * r, W + 2 * row * r,
                        acc + 2 * lane * r);
        }
    }
    REPRO_EARR_FREE();
    free(acc);
}

/* ------------------------------------------------------------------ */
/* Threaded (_mt) kernels: OpenMP parallel-for over fixed row blocks   */
/*                                                                     */
/* The paper's hybrid execution is MPI + OpenMP — each rank drives all */
/* of a socket's cores (Sections V-VI).  These variants parallelize    */
/* the row loop of the augmented block kernels over REPRO_MT_BLOCK-row */
/* blocks with a DETERMINISTIC reduction: the block grid depends only  */
/* on the row range (never the thread count), each block accumulates   */
/* its eta partials with Kahan compensation into its own slice of a    */
/* preallocated array, and after the parallel region the partials are  */
/* combined sequentially in block order.  Result: bitwise-identical    */
/* eta for every n_threads >= 1, OpenMP or not — the checkpoint-       */
/* resume / mp==sim / serve-coalescing invariants survive threading.   */
/* The W update is row-local (disjoint rows per block; SELL perm is a  */
/* permutation), so it is race-free and bitwise equal to the serial    */
/* kernels' update.  No allocation happens inside the parallel region. */
/* ------------------------------------------------------------------ */

/* Shared CSR body: iterates t over [t0, t1); the row is rows[t] when a
 * gather list is given (the boundary phase), else t itself (the plain
 * and interior-range variants, which pass t0=row0, t1=row1).          */
static void KN(repro_csr_aug_spmmv_mt_body)(
    int64_t t0,
    int64_t t1,
    const int64_t *restrict rows,
    int64_t r,
    int64_t n_threads,
    const int64_t *restrict indptr,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict V,
    REPRO_XT *restrict W,
    double a,
    double b,
    double *restrict eta_even,     /* r doubles   */
    double *restrict eta_odd)      /* 2*r doubles */
{
    const REPRO_AT ta = (REPRO_AT)(2.0 * a), tab = (REPRO_AT)(2.0 * a * b);
    const int64_t span = t1 > t0 ? t1 - t0 : 0;
    const int64_t nb = (span + REPRO_MT_BLOCK - 1) / REPRO_MT_BLOCK;
    const int nt = (int)(n_threads > 0 ? n_threads : 1);
    memset(eta_even, 0, (size_t)r * sizeof(double));
    memset(eta_odd, 0, (size_t)(2 * r) * sizeof(double));
    if (nb == 0)
        return;
    (void)nt;
    REPRO_AT *accs =
        (REPRO_AT *)malloc((size_t)(nb * 2 * r) * sizeof(REPRO_AT));
    /* per-block eta partials [ee r | eo 2r | kahan carries 3r], plus a
     * trailing 3r carry slice for the block-order combine             */
    double *epart =
        (double *)calloc((size_t)(nb * 6 * r + 3 * r), sizeof(double));
    if (!accs || !epart) {
        free(accs);
        free(epart);
        return;
    }
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads(nt)
#endif
    for (int64_t bi = 0; bi < nb; ++bi) {
        REPRO_AT *restrict acc = accs + (size_t)(bi * 2 * r);
        double *restrict bee = epart + (size_t)(bi * 6 * r);
        double *restrict beo = bee + r;
        double *restrict bcc = bee + 3 * r;
        const int64_t tb0 = t0 + bi * REPRO_MT_BLOCK;
        const int64_t tb1 =
            tb0 + REPRO_MT_BLOCK < t1 ? tb0 + REPRO_MT_BLOCK : t1;
        for (int64_t t = tb0; t < tb1; ++t) {
            const int64_t i = rows ? rows[t] : t;
            memset(acc, 0, (size_t)(2 * r) * sizeof(REPRO_AT));
            const int64_t p0 = indptr[i], p1 = indptr[i + 1];
            for (int64_t p = p0; p < p1; ++p) {
                if (p + 1 < p1)
                    REPRO_PFROW(V + 2 * (int64_t)indices[p + 1] * r,
                                (size_t)(2 * r) * sizeof(REPRO_XT));
                const REPRO_AT ar = (REPRO_AT)data[2 * p];
                const REPRO_AT ai = (REPRO_AT)data[2 * p + 1];
                const REPRO_XT *restrict xj =
                    V + 2 * (int64_t)indices[p] * r;
                KN(repro_rowaxpy)(acc, xj, ar, ai, r);
            }
            KN(repro_loopb_kahan)(V + 2 * i * r, W + 2 * i * r, acc, r, ta,
                                  tab, bee, beo, bcc);
        }
    }
    /* sequential block-order combine: the only cross-block reduction  */
    double *restrict ccomb = epart + (size_t)(nb * 6 * r);
    for (int64_t bi = 0; bi < nb; ++bi) {
        const double *restrict bee = epart + (size_t)(bi * 6 * r);
        const double *restrict beo = bee + r;
        for (int64_t k = 0; k < r; ++k)
            repro_kadd(&eta_even[k], &ccomb[k], bee[k]);
        for (int64_t k = 0; k < 2 * r; ++k)
            repro_kadd(&eta_odd[k], &ccomb[r + k], beo[k]);
    }
    free(epart);
    free(accs);
}

EXPORT void KN(repro_csr_aug_spmmv_mt)(
    int64_t n_rows,
    int64_t r,
    int64_t n_threads,
    const int64_t *restrict indptr,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict V,
    REPRO_XT *restrict W,
    double a,
    double b,
    double *restrict eta_even,
    double *restrict eta_odd)
{
    KN(repro_csr_aug_spmmv_mt_body)(0, n_rows, NULL, r, n_threads, indptr,
                                    indices, data, V, W, a, b, eta_even,
                                    eta_odd);
}

EXPORT void KN(repro_csr_aug_spmmv_range_mt)(
    int64_t row0,
    int64_t row1,
    int64_t r,
    int64_t n_threads,
    const int64_t *restrict indptr,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict V,
    REPRO_XT *restrict W,
    double a,
    double b,
    double *restrict eta_even,
    double *restrict eta_odd)
{
    KN(repro_csr_aug_spmmv_mt_body)(row0, row1, NULL, r, n_threads, indptr,
                                    indices, data, V, W, a, b, eta_even,
                                    eta_odd);
}

EXPORT void KN(repro_csr_aug_spmmv_rows_mt)(
    int64_t n_sub,
    const int64_t *restrict rows,
    int64_t r,
    int64_t n_threads,
    const int64_t *restrict indptr,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict V,
    REPRO_XT *restrict W,
    double a,
    double b,
    double *restrict eta_even,
    double *restrict eta_odd)
{
    KN(repro_csr_aug_spmmv_mt_body)(0, n_sub, rows, r, n_threads, indptr,
                                    indices, data, V, W, a, b, eta_even,
                                    eta_odd);
}

/* SELL threaded variant: blocks are fixed runs of whole chunks — the
 * chunks-per-block count depends only on the chunk height c, so the
 * grid (hence the bits) is again independent of the thread count.     */
EXPORT void KN(repro_sell_aug_spmmv_mt)(
    int64_t n_rows,
    int64_t n_chunks,
    int64_t c,
    int64_t r,
    int64_t n_threads,
    const int64_t *restrict chunk_ptr,
    const int64_t *restrict chunk_len,
    const int64_t *restrict perm,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict V,
    REPRO_XT *restrict W,
    double a,
    double b,
    double *restrict eta_even,
    double *restrict eta_odd)
{
    const REPRO_AT ta = (REPRO_AT)(2.0 * a), tab = (REPRO_AT)(2.0 * a * b);
    const int64_t cpb = REPRO_MT_BLOCK / c > 0 ? REPRO_MT_BLOCK / c : 1;
    const int64_t nb = (n_chunks + cpb - 1) / cpb;
    const int nt = (int)(n_threads > 0 ? n_threads : 1);
    memset(eta_even, 0, (size_t)r * sizeof(double));
    memset(eta_odd, 0, (size_t)(2 * r) * sizeof(double));
    if (nb == 0)
        return;
    (void)nt;
    REPRO_AT *accs =
        (REPRO_AT *)malloc((size_t)(nb * 2 * c * r) * sizeof(REPRO_AT));
    double *epart =
        (double *)calloc((size_t)(nb * 6 * r + 3 * r), sizeof(double));
    if (!accs || !epart) {
        free(accs);
        free(epart);
        return;
    }
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads(nt)
#endif
    for (int64_t bi = 0; bi < nb; ++bi) {
        REPRO_AT *restrict acc = accs + (size_t)(bi * 2 * c * r);
        double *restrict bee = epart + (size_t)(bi * 6 * r);
        double *restrict beo = bee + r;
        double *restrict bcc = bee + 3 * r;
        const int64_t cb1 =
            (bi + 1) * cpb < n_chunks ? (bi + 1) * cpb : n_chunks;
        for (int64_t ci = bi * cpb; ci < cb1; ++ci) {
            const int64_t base = chunk_ptr[ci], len = chunk_len[ci];
            memset(acc, 0, (size_t)(2 * c * r) * sizeof(REPRO_AT));
            for (int64_t j = 0; j < len; ++j) {
                const int64_t slot0 = base + j * c;
                const int has_next = (j + 1 < len);
                for (int64_t lane = 0; lane < c; ++lane) {
                    if (has_next)
                        REPRO_PFROW(
                            V + 2 * (int64_t)indices[slot0 + c + lane] * r,
                            (size_t)(2 * r) * sizeof(REPRO_XT));
                    const REPRO_AT ar = (REPRO_AT)data[2 * (slot0 + lane)];
                    const REPRO_AT ai =
                        (REPRO_AT)data[2 * (slot0 + lane) + 1];
                    const REPRO_XT *restrict xj =
                        V + 2 * (int64_t)indices[slot0 + lane] * r;
                    KN(repro_rowaxpy)(acc + 2 * lane * r, xj, ar, ai, r);
                }
            }
            for (int64_t lane = 0; lane < c; ++lane) {
                const int64_t row = perm[ci * c + lane];
                if (row >= n_rows)
                    continue;
                KN(repro_loopb_kahan)(V + 2 * row * r, W + 2 * row * r,
                                      acc + 2 * lane * r, r, ta, tab, bee,
                                      beo, bcc);
            }
        }
    }
    double *restrict ccomb = epart + (size_t)(nb * 6 * r);
    for (int64_t bi = 0; bi < nb; ++bi) {
        const double *restrict bee = epart + (size_t)(bi * 6 * r);
        const double *restrict beo = bee + r;
        for (int64_t k = 0; k < r; ++k)
            repro_kadd(&eta_even[k], &ccomb[k], bee[k]);
        for (int64_t k = 0; k < 2 * r; ++k)
            repro_kadd(&eta_odd[k], &ccomb[r + k], beo[k]);
    }
    free(epart);
    free(accs);
}

#undef KN
#undef REPRO_ESUM_DECL
#undef REPRO_ESUM_ADD
#undef REPRO_EARR_DECL
#undef REPRO_EE_ADD
#undef REPRO_EO_ADD
#undef REPRO_EARR_FREE
#undef REPRO_KNOVEC
#undef REPRO_KNOVEC_STMT
#undef REPRO_LOOPB
#undef REPRO_PFROW
#undef REPRO_SIMD
#undef REPRO_HALF
#ifdef REPRO_SIMD_LOAD8
#undef REPRO_SIMD_LOAD8
#undef REPRO_SIMD_LOAD4
#undef REPRO_SIMD_STORE4
#undef REPRO_SIMD_GATHER4C
#endif

#endif /* REPRO_KERNELS_TEMPLATE */
