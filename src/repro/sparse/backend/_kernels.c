/* Single-pass KPM kernels for CSR and SELL-C-sigma, typed by precision.
 *
 * This file backs repro.sparse.backend.native: it is compiled on first
 * use with `cc -O3 -shared` and loaded through ctypes.  Each kernel is a
 * genuinely fused single traversal of the matrix stream — the augmented
 * variants perform the shift/scale/recombination of paper Eq. (3)
 *
 *     w_new = 2 a (H - b 1) v - w
 *
 * plus BOTH on-the-fly scalar products (eta_even = <v|v>,
 * eta_odd = <w_new|v>) inside the same row loop, exactly as the paper's
 * Figs. 4 and 5 prescribe and as the NumPy backend cannot.
 *
 * Complex numbers are handled as interleaved (re, im) scalar pairs —
 * the memory layout of numpy complex128/complex64 and of the float16
 * (re, im) pair storage — with the arithmetic written out in real
 * components so the compiler can vectorize without libm/__muldc3 calls.
 * Block vectors are row-major (N, R): the R values of one row are
 * contiguous, the locality argument of paper Section IV-A.
 *
 * MACRO EXPANSION (the precision profiles of repro.util.precision):
 * the sixteen kernels below are written ONCE as a template (the #else
 * branch of this file) and expanded via `#include "_kernels.c"` for each
 * (value type, vector storage, index type) combination — no hand-copied
 * variants:
 *
 *   suffix      values   vectors          indices   exported example
 *   (none)      double   double           int32     repro_csr_aug_spmmv
 *   _f32        float    float            int32     repro_csr_aug_spmmv_f32
 *   _f32u16     float    float            uint16    repro_csr_aug_spmmv_f32u16
 *   _f16v       float    half (fp16)      int32     repro_csr_aug_spmmv_f16v
 *   _f16vu16    float    half (fp16)      uint16    repro_csr_aug_spmmv_f16vu16
 *
 * The unsuffixed f64/int32 expansion is operation-for-operation the
 * historical baseline.  The narrow expansions compute in fp32 (half
 * storage is converted at load/store with round-to-nearest-even) while
 * BOTH eta scalar products are accumulated in fp64 with compensated
 * (Kahan) summation — each partial product is formed exactly in double
 * before the compensated add, so narrow storage never degrades the
 * moments' reduction accuracy.
 *
 * Index types match the Python containers: CSR indptr / SELL chunk_ptr,
 * chunk_len, perm are int64; in-kernel column indices are int32 (the
 * paper's S_i = 4) or uint16 (compressed, S_i = 2) per the table above.
 */

#ifndef REPRO_KERNELS_TEMPLATE

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#ifdef _MSC_VER
#define EXPORT __declspec(dllexport)
#else
#define EXPORT __attribute__((visibility("default")))
#endif

#if defined(__GNUC__) || defined(__clang__)
#define REPRO_PF(addr) __builtin_prefetch((addr), 0, 3)
#else
#define REPRO_PF(addr) ((void)0)
#endif

/* Prefetch one gathered block-vector row (nbytes, touching every cache
 * line).  The column index of the *next* slot is known one iteration
 * ahead, which is enough distance to hide the gather latency the
 * hardware prefetcher cannot predict.                                 */
static inline void repro_pf_row(const void *restrict p, size_t nbytes)
{
    const char *restrict cp = (const char *)p;
    for (size_t q = 0; q < nbytes; q += 64)
        REPRO_PF(cp + q);
}

/* The per-row recombination + eta-update loop over the block width r
 * must round identically for every column regardless of r: the serve
 * layer coalesces independent requests into one wide block and promises
 * each caller the bitwise moments of a solo run.  Auto-vectorizing that
 * loop breaks the promise — columns landing in the vector body round
 * differently from columns in the scalar epilogue, so a column's result
 * would depend on its position and on r.  Keep it scalar; it is O(r)
 * work per row against the O(nnz_row * r) gather loop above it, which
 * stays fully vectorized.  Only the fp64 baseline carries the bitwise
 * contract — the narrow profiles promise tolerance, so their (heavier,
 * Kahan-compensated) eta loops keep the vectorizer; see the
 * REPRO_KNOVEC variant gate in the template header.                   */
#if defined(__clang__)
#define REPRO_NOVEC _Pragma("clang loop vectorize(disable)")
#define REPRO_NOVEC_STMT ((void)0)
#elif defined(__GNUC__) && __GNUC__ >= 14
#define REPRO_NOVEC _Pragma("GCC novector")
#define REPRO_NOVEC_STMT ((void)0)
#elif defined(__GNUC__)
/* GCC < 14 has no novector pragma (and silently ignores unknown GCC
 * pragmas), so plant an empty volatile asm in the loop body instead:
 * the tree vectorizer refuses any loop containing an asm statement,
 * and the statement itself emits no instructions.                     */
#define REPRO_NOVEC
#define REPRO_NOVEC_STMT __asm__ volatile("")
#else
#define REPRO_NOVEC
#define REPRO_NOVEC_STMT ((void)0)
#endif

/* Row-block granularity of the threaded (_mt) kernels.  The block grid
 * is a function of the PROBLEM (row count / chunk height), never of the
 * thread count: every eta partial is accumulated per block with Kahan
 * compensation and the partials are combined sequentially in block
 * order, so the fp64 results are bitwise identical for any n_threads —
 * including 1 — and for the serial fallback when the compiler has no
 * OpenMP.  256 rows is large enough to amortize scheduling and small
 * enough to load-balance the boundary-row tails of a split.           */
#define REPRO_MT_BLOCK 256

/* One compensated (Kahan) accumulation step: *s += x with carry *c.   */
static inline void repro_kadd(double *restrict s, double *restrict c,
                              double x)
{
    const double y = x - *c;
    const double t = *s + y;
    *c = (t - *s) - y;
    *s = t;
}

/* IEEE 754 binary16 <-> binary32, bit manipulation only (portable, no
 * compiler fp16 support required); float->half rounds to nearest even,
 * matching numpy's float16 casts.                                     */
static inline float repro_half_to_float(uint16_t h)
{
    const uint32_t sign = (uint32_t)(h & 0x8000u) << 16;
    uint32_t exp = (h >> 10) & 0x1Fu;
    uint32_t man = h & 0x3FFu;
    uint32_t bits;
    if (exp == 0u) {
        if (man == 0u) {
            bits = sign;                       /* signed zero */
        } else {                               /* subnormal: normalize */
            int shift = 0;
            while (!(man & 0x400u)) {
                man <<= 1;
                ++shift;
            }
            man &= 0x3FFu;
            bits = sign | ((uint32_t)(127 - 15 - shift) << 23) | (man << 13);
        }
    } else if (exp == 31u) {                   /* inf / nan */
        bits = sign | 0x7F800000u | (man << 13);
    } else {
        bits = sign | ((exp + (127u - 15u)) << 23) | (man << 13);
    }
    float f;
    memcpy(&f, &bits, sizeof f);
    return f;
}

static inline uint16_t repro_float_to_half(float f)
{
    uint32_t x;
    memcpy(&x, &f, sizeof x);
    const uint32_t sign = (x >> 16) & 0x8000u;
    const uint32_t fexp = (x >> 23) & 0xFFu;
    uint32_t man = x & 0x7FFFFFu;
    if (fexp == 0xFFu)                         /* inf / nan */
        return (uint16_t)(sign | 0x7C00u | (man ? 0x200u : 0u));
    const int32_t e = (int32_t)fexp - 127 + 15;
    if (e >= 31)                               /* overflow -> inf */
        return (uint16_t)(sign | 0x7C00u);
    if (e <= 0) {                              /* half subnormal / zero */
        if (e < -10)
            return (uint16_t)sign;
        man |= 0x800000u;                      /* implicit leading 1 */
        const uint32_t shift = (uint32_t)(14 - e);
        uint16_t hv = (uint16_t)(sign | (man >> shift));
        const uint32_t rem = man & ((1u << shift) - 1u);
        const uint32_t half = 1u << (shift - 1u);
        if (rem > half || (rem == half && (hv & 1u)))
            ++hv;                              /* round to nearest even */
        return hv;
    }
    uint16_t hv = (uint16_t)(sign | ((uint32_t)e << 10) | (man >> 13));
    const uint32_t rem = man & 0x1FFFu;
    if (rem > 0x1000u || (rem == 0x1000u && (hv & 1u)))
        ++hv;           /* may carry into the exponent: rounds up to inf */
    return hv;
}

#define REPRO_CAT_(a, b) a##b
#define REPRO_CAT(a, b) REPRO_CAT_(a, b)

/* ------------------------------------------------------------------ */
/* Template expansions: one block per precision profile.               */
/* ------------------------------------------------------------------ */

#define REPRO_KERNELS_TEMPLATE 1

/* fp64 baseline: complex128 values & vectors, int32 indices, plain
 * double eta accumulation — the paper's original kernels.             */
#define REPRO_SUF
#define REPRO_VT double
#define REPRO_XT double
#define REPRO_AT double
#define REPRO_IT int32_t
#define REPRO_LOADX(p, i) ((p)[(i)])
#define REPRO_STOREX(p, i, val) ((p)[(i)] = (val))
#define REPRO_ETA_KAHAN 0
#include "_kernels.c"
#undef REPRO_SUF
#undef REPRO_VT
#undef REPRO_XT
#undef REPRO_AT
#undef REPRO_IT
#undef REPRO_LOADX
#undef REPRO_STOREX
#undef REPRO_ETA_KAHAN

/* fp32: complex64 values & vectors, int32 indices.                    */
#define REPRO_SUF _f32
#define REPRO_VT float
#define REPRO_XT float
#define REPRO_AT float
#define REPRO_IT int32_t
#define REPRO_LOADX(p, i) ((p)[(i)])
#define REPRO_STOREX(p, i, val) ((p)[(i)] = (val))
#define REPRO_ETA_KAHAN 1
#include "_kernels.c"
#undef REPRO_SUF
#undef REPRO_VT
#undef REPRO_XT
#undef REPRO_AT
#undef REPRO_IT
#undef REPRO_LOADX
#undef REPRO_STOREX
#undef REPRO_ETA_KAHAN

/* fp32 with compressed uint16 column indices.                         */
#define REPRO_SUF _f32u16
#define REPRO_VT float
#define REPRO_XT float
#define REPRO_AT float
#define REPRO_IT uint16_t
#define REPRO_LOADX(p, i) ((p)[(i)])
#define REPRO_STOREX(p, i, val) ((p)[(i)] = (val))
#define REPRO_ETA_KAHAN 1
#include "_kernels.c"
#undef REPRO_SUF
#undef REPRO_VT
#undef REPRO_XT
#undef REPRO_AT
#undef REPRO_IT
#undef REPRO_LOADX
#undef REPRO_STOREX
#undef REPRO_ETA_KAHAN

/* fp16v: complex64 values, float16 (re, im) pair vectors promoted to
 * fp32 in registers, int32 indices.                                   */
#define REPRO_SUF _f16v
#define REPRO_VT float
#define REPRO_XT uint16_t
#define REPRO_AT float
#define REPRO_IT int32_t
#define REPRO_LOADX(p, i) repro_half_to_float((p)[(i)])
#define REPRO_STOREX(p, i, val) ((p)[(i)] = repro_float_to_half(val))
#define REPRO_ETA_KAHAN 1
#include "_kernels.c"
#undef REPRO_SUF
#undef REPRO_VT
#undef REPRO_XT
#undef REPRO_AT
#undef REPRO_IT
#undef REPRO_LOADX
#undef REPRO_STOREX
#undef REPRO_ETA_KAHAN

/* fp16v with compressed uint16 column indices.                        */
#define REPRO_SUF _f16vu16
#define REPRO_VT float
#define REPRO_XT uint16_t
#define REPRO_AT float
#define REPRO_IT uint16_t
#define REPRO_LOADX(p, i) repro_half_to_float((p)[(i)])
#define REPRO_STOREX(p, i, val) ((p)[(i)] = repro_float_to_half(val))
#define REPRO_ETA_KAHAN 1
#include "_kernels.c"
#undef REPRO_SUF
#undef REPRO_VT
#undef REPRO_XT
#undef REPRO_AT
#undef REPRO_IT
#undef REPRO_LOADX
#undef REPRO_STOREX
#undef REPRO_ETA_KAHAN

#else  /* REPRO_KERNELS_TEMPLATE: the kernel template, expanded above  */

#define KN(base) REPRO_CAT(base, REPRO_SUF)

/* Per-variant width-stability gate: only the fp64 baseline (the one
 * variant without compensated eta accumulation) must keep its per-row
 * eta loops scalar for the bitwise coalescing contract.               */
#if REPRO_ETA_KAHAN
#define REPRO_KNOVEC
#define REPRO_KNOVEC_STMT ((void)0)
#else
#define REPRO_KNOVEC REPRO_NOVEC
#define REPRO_KNOVEC_STMT REPRO_NOVEC_STMT
#endif

/* Scalar-kernel eta accumulators: plain double for the fp64 baseline
 * (bitwise-identical to the historical kernels), compensated for the
 * narrow profiles.  Partial products are always formed in double.     */
#if REPRO_ETA_KAHAN
#define REPRO_ESUM_DECL(name) double name = 0.0, name##_c = 0.0
#define REPRO_ESUM_ADD(name, x) repro_kadd(&name, &name##_c, (x))
/* Block-kernel eta arrays: compensation buffer [0,r) for eta_even,
 * [r, 3r) for the interleaved eta_odd.                                */
#define REPRO_EARR_DECL(r, cleanup)                                        \
    double *repro_ecomp = (double *)calloc((size_t)(3 * (r)),              \
                                           sizeof(double));                \
    if (!repro_ecomp) {                                                    \
        cleanup;                                                           \
        return;                                                            \
    }
#define REPRO_EE_ADD(k, x) repro_kadd(&eta_even[k], &repro_ecomp[k], (x))
#define REPRO_EO_ADD(k2, x) repro_kadd(&eta_odd[k2], &repro_ecomp[r + (k2)], (x))
#define REPRO_EARR_FREE() free(repro_ecomp)
#else
#define REPRO_ESUM_DECL(name) double name = 0.0
#define REPRO_ESUM_ADD(name, x) name += (x)
#define REPRO_EARR_DECL(r, cleanup)
#define REPRO_EE_ADD(k, x) eta_even[k] += (x)
#define REPRO_EO_ADD(k2, x) eta_odd[k2] += (x)
#define REPRO_EARR_FREE() ((void)0)
#endif

/* ------------------------------------------------------------------ */
/* CSR                                                                 */
/* ------------------------------------------------------------------ */

EXPORT void KN(repro_csr_spmv)(
    int64_t n_rows,
    const int64_t *restrict indptr,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,   /* 2*nnz    */
    const REPRO_XT *restrict x,      /* 2*n_cols */
    REPRO_XT *restrict y)            /* 2*n_rows */
{
    for (int64_t i = 0; i < n_rows; ++i) {
        REPRO_AT sr = 0, si = 0;
        const int64_t p0 = indptr[i], p1 = indptr[i + 1];
        for (int64_t p = p0; p < p1; ++p) {
            const REPRO_AT ar = (REPRO_AT)data[2 * p];
            const REPRO_AT ai = (REPRO_AT)data[2 * p + 1];
            const int64_t j = (int64_t)indices[p];
            const REPRO_AT xr = REPRO_LOADX(x, 2 * j);
            const REPRO_AT xi = REPRO_LOADX(x, 2 * j + 1);
            sr += ar * xr - ai * xi;
            si += ar * xi + ai * xr;
        }
        REPRO_STOREX(y, 2 * i, sr);
        REPRO_STOREX(y, 2 * i + 1, si);
    }
}

EXPORT void KN(repro_csr_spmmv)(
    int64_t n_rows,
    int64_t r,
    const int64_t *restrict indptr,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict X,      /* 2*n_cols*r, row-major */
    REPRO_XT *restrict Y)            /* 2*n_rows*r, row-major */
{
    REPRO_AT *acc = (REPRO_AT *)malloc((size_t)(2 * r) * sizeof(REPRO_AT));
    if (!acc)
        return;
    for (int64_t i = 0; i < n_rows; ++i) {
        memset(acc, 0, (size_t)(2 * r) * sizeof(REPRO_AT));
        const int64_t p0 = indptr[i], p1 = indptr[i + 1];
        for (int64_t p = p0; p < p1; ++p) {
            if (p + 1 < p1)
                repro_pf_row(X + 2 * (int64_t)indices[p + 1] * r,
                             (size_t)(2 * r) * sizeof(REPRO_XT));
            const REPRO_AT ar = (REPRO_AT)data[2 * p];
            const REPRO_AT ai = (REPRO_AT)data[2 * p + 1];
            const REPRO_XT *restrict xj = X + 2 * (int64_t)indices[p] * r;
            for (int64_t k = 0; k < r; ++k) {
                const REPRO_AT xr = REPRO_LOADX(xj, 2 * k);
                const REPRO_AT xi = REPRO_LOADX(xj, 2 * k + 1);
                acc[2 * k] += ar * xr - ai * xi;
                acc[2 * k + 1] += ar * xi + ai * xr;
            }
        }
        REPRO_XT *restrict yi = Y + 2 * i * r;
        for (int64_t k = 0; k < 2 * r; ++k)
            REPRO_STOREX(yi, k, acc[k]);
    }
    free(acc);
}

/* w <- 2a(Hv - b v) - w, plus eta_even = <v|v>, eta_odd = <w_new|v>.
 * eta_odd is one interleaved complex value.                           */
EXPORT void KN(repro_csr_aug_spmv)(
    int64_t n_rows,
    const int64_t *restrict indptr,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict v,
    REPRO_XT *restrict w,
    double a,
    double b,
    double *restrict eta_even,     /* 1 double  */
    double *restrict eta_odd)      /* 2 doubles */
{
    const REPRO_AT ta = (REPRO_AT)(2.0 * a), tab = (REPRO_AT)(2.0 * a * b);
    REPRO_ESUM_DECL(ee);
    REPRO_ESUM_DECL(eor);
    REPRO_ESUM_DECL(eoi);
    for (int64_t i = 0; i < n_rows; ++i) {
        REPRO_AT sr = 0, si = 0;
        const int64_t p0 = indptr[i], p1 = indptr[i + 1];
        for (int64_t p = p0; p < p1; ++p) {
            const REPRO_AT ar = (REPRO_AT)data[2 * p];
            const REPRO_AT ai = (REPRO_AT)data[2 * p + 1];
            const int64_t j = (int64_t)indices[p];
            const REPRO_AT xr = REPRO_LOADX(v, 2 * j);
            const REPRO_AT xi = REPRO_LOADX(v, 2 * j + 1);
            sr += ar * xr - ai * xi;
            si += ar * xi + ai * xr;
        }
        const REPRO_AT vr = REPRO_LOADX(v, 2 * i);
        const REPRO_AT vi = REPRO_LOADX(v, 2 * i + 1);
        const REPRO_AT wr = ta * sr - tab * vr - REPRO_LOADX(w, 2 * i);
        const REPRO_AT wi = ta * si - tab * vi - REPRO_LOADX(w, 2 * i + 1);
        REPRO_STOREX(w, 2 * i, wr);
        REPRO_STOREX(w, 2 * i + 1, wi);
        REPRO_ESUM_ADD(ee, (double)vr * (double)vr + (double)vi * (double)vi);
        /* conj(w_new) * v */
        REPRO_ESUM_ADD(eor, (double)wr * (double)vr + (double)wi * (double)vi);
        REPRO_ESUM_ADD(eoi, (double)wr * (double)vi - (double)wi * (double)vr);
    }
    *eta_even = ee;
    eta_odd[0] = eor;
    eta_odd[1] = eoi;
}

/* Blocked variant: V, W are (N, R) row-major; eta_even is R doubles,
 * eta_odd R interleaved complex values.                               */
EXPORT void KN(repro_csr_aug_spmmv)(
    int64_t n_rows,
    int64_t r,
    const int64_t *restrict indptr,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict V,
    REPRO_XT *restrict W,
    double a,
    double b,
    double *restrict eta_even,     /* r doubles   */
    double *restrict eta_odd)      /* 2*r doubles */
{
    const REPRO_AT ta = (REPRO_AT)(2.0 * a), tab = (REPRO_AT)(2.0 * a * b);
    REPRO_AT *acc = (REPRO_AT *)malloc((size_t)(2 * r) * sizeof(REPRO_AT));
    if (!acc)
        return;
    memset(eta_even, 0, (size_t)r * sizeof(double));
    memset(eta_odd, 0, (size_t)(2 * r) * sizeof(double));
    REPRO_EARR_DECL(r, free(acc))
    for (int64_t i = 0; i < n_rows; ++i) {
        memset(acc, 0, (size_t)(2 * r) * sizeof(REPRO_AT));
        const int64_t p0 = indptr[i], p1 = indptr[i + 1];
        for (int64_t p = p0; p < p1; ++p) {
            if (p + 1 < p1)
                repro_pf_row(V + 2 * (int64_t)indices[p + 1] * r,
                             (size_t)(2 * r) * sizeof(REPRO_XT));
            const REPRO_AT ar = (REPRO_AT)data[2 * p];
            const REPRO_AT ai = (REPRO_AT)data[2 * p + 1];
            const REPRO_XT *restrict xj = V + 2 * (int64_t)indices[p] * r;
            for (int64_t k = 0; k < r; ++k) {
                const REPRO_AT xr = REPRO_LOADX(xj, 2 * k);
                const REPRO_AT xi = REPRO_LOADX(xj, 2 * k + 1);
                acc[2 * k] += ar * xr - ai * xi;
                acc[2 * k + 1] += ar * xi + ai * xr;
            }
        }
        const REPRO_XT *restrict vi_ = V + 2 * i * r;
        REPRO_XT *restrict wi_ = W + 2 * i * r;
        REPRO_KNOVEC
        for (int64_t k = 0; k < r; ++k) {
            REPRO_KNOVEC_STMT;
            const REPRO_AT vr = REPRO_LOADX(vi_, 2 * k);
            const REPRO_AT vi = REPRO_LOADX(vi_, 2 * k + 1);
            const REPRO_AT wr = ta * acc[2 * k] - tab * vr
                - REPRO_LOADX(wi_, 2 * k);
            const REPRO_AT wi = ta * acc[2 * k + 1] - tab * vi
                - REPRO_LOADX(wi_, 2 * k + 1);
            REPRO_STOREX(wi_, 2 * k, wr);
            REPRO_STOREX(wi_, 2 * k + 1, wi);
            REPRO_EE_ADD(k, (double)vr * (double)vr + (double)vi * (double)vi);
            REPRO_EO_ADD(2 * k,
                         (double)wr * (double)vr + (double)wi * (double)vi);
            REPRO_EO_ADD(2 * k + 1,
                         (double)wr * (double)vi - (double)wi * (double)vr);
        }
    }
    REPRO_EARR_FREE();
    free(acc);
}

/* ------------------------------------------------------------------ */
/* CSR split kernels (task-mode overlapped execution)                  */
/*                                                                     */
/* The distributed engines hide the halo exchange by running the KPM   */
/* update in two phases: a contiguous *interior* row range [row0,row1) */
/* whose entries reference only local columns (computable before the   */
/* halo arrives), then the gathered *boundary* rows.  Both variants    */
/* index the ORIGINAL local matrix absolutely — no row extraction —    */
/* and the per-row arithmetic is byte-for-byte the plain kernel's, so  */
/* the W update is bitwise identical to a single-phase call for any    */
/* split.  Each phase zeroes and returns its OWN eta partials; the     */
/* caller combines them in a fixed order (interior + boundary), which  */
/* makes the combined dots independent of the execution schedule.      */
/* ------------------------------------------------------------------ */

EXPORT void KN(repro_csr_aug_spmv_range)(
    int64_t row0,
    int64_t row1,
    const int64_t *restrict indptr,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict v,
    REPRO_XT *restrict w,
    double a,
    double b,
    double *restrict eta_even,     /* 1 double: this phase's partial  */
    double *restrict eta_odd)      /* 2 doubles                       */
{
    const REPRO_AT ta = (REPRO_AT)(2.0 * a), tab = (REPRO_AT)(2.0 * a * b);
    REPRO_ESUM_DECL(ee);
    REPRO_ESUM_DECL(eor);
    REPRO_ESUM_DECL(eoi);
    for (int64_t i = row0; i < row1; ++i) {
        REPRO_AT sr = 0, si = 0;
        const int64_t p0 = indptr[i], p1 = indptr[i + 1];
        for (int64_t p = p0; p < p1; ++p) {
            const REPRO_AT ar = (REPRO_AT)data[2 * p];
            const REPRO_AT ai = (REPRO_AT)data[2 * p + 1];
            const int64_t j = (int64_t)indices[p];
            const REPRO_AT xr = REPRO_LOADX(v, 2 * j);
            const REPRO_AT xi = REPRO_LOADX(v, 2 * j + 1);
            sr += ar * xr - ai * xi;
            si += ar * xi + ai * xr;
        }
        const REPRO_AT vr = REPRO_LOADX(v, 2 * i);
        const REPRO_AT vi = REPRO_LOADX(v, 2 * i + 1);
        const REPRO_AT wr = ta * sr - tab * vr - REPRO_LOADX(w, 2 * i);
        const REPRO_AT wi = ta * si - tab * vi - REPRO_LOADX(w, 2 * i + 1);
        REPRO_STOREX(w, 2 * i, wr);
        REPRO_STOREX(w, 2 * i + 1, wi);
        REPRO_ESUM_ADD(ee, (double)vr * (double)vr + (double)vi * (double)vi);
        REPRO_ESUM_ADD(eor, (double)wr * (double)vr + (double)wi * (double)vi);
        REPRO_ESUM_ADD(eoi, (double)wr * (double)vi - (double)wi * (double)vr);
    }
    *eta_even = ee;
    eta_odd[0] = eor;
    eta_odd[1] = eoi;
}

EXPORT void KN(repro_csr_aug_spmv_rows)(
    int64_t n_sub,
    const int64_t *restrict rows,  /* gathered local row indices      */
    const int64_t *restrict indptr,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict v,
    REPRO_XT *restrict w,
    double a,
    double b,
    double *restrict eta_even,
    double *restrict eta_odd)
{
    const REPRO_AT ta = (REPRO_AT)(2.0 * a), tab = (REPRO_AT)(2.0 * a * b);
    REPRO_ESUM_DECL(ee);
    REPRO_ESUM_DECL(eor);
    REPRO_ESUM_DECL(eoi);
    for (int64_t t = 0; t < n_sub; ++t) {
        const int64_t i = rows[t];
        REPRO_AT sr = 0, si = 0;
        const int64_t p0 = indptr[i], p1 = indptr[i + 1];
        for (int64_t p = p0; p < p1; ++p) {
            const REPRO_AT ar = (REPRO_AT)data[2 * p];
            const REPRO_AT ai = (REPRO_AT)data[2 * p + 1];
            const int64_t j = (int64_t)indices[p];
            const REPRO_AT xr = REPRO_LOADX(v, 2 * j);
            const REPRO_AT xi = REPRO_LOADX(v, 2 * j + 1);
            sr += ar * xr - ai * xi;
            si += ar * xi + ai * xr;
        }
        const REPRO_AT vr = REPRO_LOADX(v, 2 * i);
        const REPRO_AT vi = REPRO_LOADX(v, 2 * i + 1);
        const REPRO_AT wr = ta * sr - tab * vr - REPRO_LOADX(w, 2 * i);
        const REPRO_AT wi = ta * si - tab * vi - REPRO_LOADX(w, 2 * i + 1);
        REPRO_STOREX(w, 2 * i, wr);
        REPRO_STOREX(w, 2 * i + 1, wi);
        REPRO_ESUM_ADD(ee, (double)vr * (double)vr + (double)vi * (double)vi);
        REPRO_ESUM_ADD(eor, (double)wr * (double)vr + (double)wi * (double)vi);
        REPRO_ESUM_ADD(eoi, (double)wr * (double)vi - (double)wi * (double)vr);
    }
    *eta_even = ee;
    eta_odd[0] = eor;
    eta_odd[1] = eoi;
}

EXPORT void KN(repro_csr_aug_spmmv_range)(
    int64_t row0,
    int64_t row1,
    int64_t r,
    const int64_t *restrict indptr,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict V,
    REPRO_XT *restrict W,
    double a,
    double b,
    double *restrict eta_even,     /* r doubles: this phase's partials */
    double *restrict eta_odd)      /* 2*r doubles                      */
{
    const REPRO_AT ta = (REPRO_AT)(2.0 * a), tab = (REPRO_AT)(2.0 * a * b);
    REPRO_AT *acc = (REPRO_AT *)malloc((size_t)(2 * r) * sizeof(REPRO_AT));
    if (!acc)
        return;
    memset(eta_even, 0, (size_t)r * sizeof(double));
    memset(eta_odd, 0, (size_t)(2 * r) * sizeof(double));
    REPRO_EARR_DECL(r, free(acc))
    for (int64_t i = row0; i < row1; ++i) {
        memset(acc, 0, (size_t)(2 * r) * sizeof(REPRO_AT));
        const int64_t p0 = indptr[i], p1 = indptr[i + 1];
        for (int64_t p = p0; p < p1; ++p) {
            if (p + 1 < p1)
                repro_pf_row(V + 2 * (int64_t)indices[p + 1] * r,
                             (size_t)(2 * r) * sizeof(REPRO_XT));
            const REPRO_AT ar = (REPRO_AT)data[2 * p];
            const REPRO_AT ai = (REPRO_AT)data[2 * p + 1];
            const REPRO_XT *restrict xj = V + 2 * (int64_t)indices[p] * r;
            for (int64_t k = 0; k < r; ++k) {
                const REPRO_AT xr = REPRO_LOADX(xj, 2 * k);
                const REPRO_AT xi = REPRO_LOADX(xj, 2 * k + 1);
                acc[2 * k] += ar * xr - ai * xi;
                acc[2 * k + 1] += ar * xi + ai * xr;
            }
        }
        const REPRO_XT *restrict vi_ = V + 2 * i * r;
        REPRO_XT *restrict wi_ = W + 2 * i * r;
        REPRO_KNOVEC
        for (int64_t k = 0; k < r; ++k) {
            REPRO_KNOVEC_STMT;
            const REPRO_AT vr = REPRO_LOADX(vi_, 2 * k);
            const REPRO_AT vi = REPRO_LOADX(vi_, 2 * k + 1);
            const REPRO_AT wr = ta * acc[2 * k] - tab * vr
                - REPRO_LOADX(wi_, 2 * k);
            const REPRO_AT wi = ta * acc[2 * k + 1] - tab * vi
                - REPRO_LOADX(wi_, 2 * k + 1);
            REPRO_STOREX(wi_, 2 * k, wr);
            REPRO_STOREX(wi_, 2 * k + 1, wi);
            REPRO_EE_ADD(k, (double)vr * (double)vr + (double)vi * (double)vi);
            REPRO_EO_ADD(2 * k,
                         (double)wr * (double)vr + (double)wi * (double)vi);
            REPRO_EO_ADD(2 * k + 1,
                         (double)wr * (double)vi - (double)wi * (double)vr);
        }
    }
    REPRO_EARR_FREE();
    free(acc);
}

EXPORT void KN(repro_csr_aug_spmmv_rows)(
    int64_t n_sub,
    const int64_t *restrict rows,
    int64_t r,
    const int64_t *restrict indptr,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict V,
    REPRO_XT *restrict W,
    double a,
    double b,
    double *restrict eta_even,
    double *restrict eta_odd)
{
    const REPRO_AT ta = (REPRO_AT)(2.0 * a), tab = (REPRO_AT)(2.0 * a * b);
    REPRO_AT *acc = (REPRO_AT *)malloc((size_t)(2 * r) * sizeof(REPRO_AT));
    if (!acc)
        return;
    memset(eta_even, 0, (size_t)r * sizeof(double));
    memset(eta_odd, 0, (size_t)(2 * r) * sizeof(double));
    REPRO_EARR_DECL(r, free(acc))
    for (int64_t t = 0; t < n_sub; ++t) {
        const int64_t i = rows[t];
        memset(acc, 0, (size_t)(2 * r) * sizeof(REPRO_AT));
        const int64_t p0 = indptr[i], p1 = indptr[i + 1];
        for (int64_t p = p0; p < p1; ++p) {
            if (p + 1 < p1)
                repro_pf_row(V + 2 * (int64_t)indices[p + 1] * r,
                             (size_t)(2 * r) * sizeof(REPRO_XT));
            const REPRO_AT ar = (REPRO_AT)data[2 * p];
            const REPRO_AT ai = (REPRO_AT)data[2 * p + 1];
            const REPRO_XT *restrict xj = V + 2 * (int64_t)indices[p] * r;
            for (int64_t k = 0; k < r; ++k) {
                const REPRO_AT xr = REPRO_LOADX(xj, 2 * k);
                const REPRO_AT xi = REPRO_LOADX(xj, 2 * k + 1);
                acc[2 * k] += ar * xr - ai * xi;
                acc[2 * k + 1] += ar * xi + ai * xr;
            }
        }
        const REPRO_XT *restrict vi_ = V + 2 * i * r;
        REPRO_XT *restrict wi_ = W + 2 * i * r;
        REPRO_KNOVEC
        for (int64_t k = 0; k < r; ++k) {
            REPRO_KNOVEC_STMT;
            const REPRO_AT vr = REPRO_LOADX(vi_, 2 * k);
            const REPRO_AT vi = REPRO_LOADX(vi_, 2 * k + 1);
            const REPRO_AT wr = ta * acc[2 * k] - tab * vr
                - REPRO_LOADX(wi_, 2 * k);
            const REPRO_AT wi = ta * acc[2 * k + 1] - tab * vi
                - REPRO_LOADX(wi_, 2 * k + 1);
            REPRO_STOREX(wi_, 2 * k, wr);
            REPRO_STOREX(wi_, 2 * k + 1, wi);
            REPRO_EE_ADD(k, (double)vr * (double)vr + (double)vi * (double)vi);
            REPRO_EO_ADD(2 * k,
                         (double)wr * (double)vr + (double)wi * (double)vi);
            REPRO_EO_ADD(2 * k + 1,
                         (double)wr * (double)vi - (double)wi * (double)vr);
        }
    }
    REPRO_EARR_FREE();
    free(acc);
}

/* ------------------------------------------------------------------ */
/* SELL-C-sigma                                                        */
/*                                                                     */
/* Flat layout: chunk ci of height C and length L = chunk_len[ci]      */
/* stores slot (j, lane) at chunk_ptr[ci] + j*C + lane (column-major   */
/* within the chunk).  perm[sorted_pos] is the original row; sorted    */
/* positions whose perm value is >= n_rows are padding rows.  Padded   */
/* slots hold value 0 with a valid self-referencing column, so they    */
/* are numerically inert but are streamed like real entries.           */
/* ------------------------------------------------------------------ */

EXPORT void KN(repro_sell_spmv)(
    int64_t n_rows,
    int64_t n_chunks,
    int64_t c,
    const int64_t *restrict chunk_ptr,
    const int64_t *restrict chunk_len,
    const int64_t *restrict perm,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict x,
    REPRO_XT *restrict y)
{
    REPRO_AT *acc = (REPRO_AT *)malloc((size_t)(2 * c) * sizeof(REPRO_AT));
    if (!acc)
        return;
    for (int64_t ci = 0; ci < n_chunks; ++ci) {
        const int64_t base = chunk_ptr[ci], len = chunk_len[ci];
        memset(acc, 0, (size_t)(2 * c) * sizeof(REPRO_AT));
        for (int64_t j = 0; j < len; ++j) {
            const int64_t slot0 = base + j * c;
            for (int64_t lane = 0; lane < c; ++lane) {
                const REPRO_AT ar = (REPRO_AT)data[2 * (slot0 + lane)];
                const REPRO_AT ai = (REPRO_AT)data[2 * (slot0 + lane) + 1];
                const int64_t col = (int64_t)indices[slot0 + lane];
                const REPRO_AT xr = REPRO_LOADX(x, 2 * col);
                const REPRO_AT xi = REPRO_LOADX(x, 2 * col + 1);
                acc[2 * lane] += ar * xr - ai * xi;
                acc[2 * lane + 1] += ar * xi + ai * xr;
            }
        }
        for (int64_t lane = 0; lane < c; ++lane) {
            const int64_t row = perm[ci * c + lane];
            if (row < n_rows) {
                REPRO_STOREX(y, 2 * row, acc[2 * lane]);
                REPRO_STOREX(y, 2 * row + 1, acc[2 * lane + 1]);
            }
        }
    }
    free(acc);
}

EXPORT void KN(repro_sell_spmmv)(
    int64_t n_rows,
    int64_t n_chunks,
    int64_t c,
    int64_t r,
    const int64_t *restrict chunk_ptr,
    const int64_t *restrict chunk_len,
    const int64_t *restrict perm,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict X,
    REPRO_XT *restrict Y)
{
    REPRO_AT *acc =
        (REPRO_AT *)malloc((size_t)(2 * c * r) * sizeof(REPRO_AT));
    if (!acc)
        return;
    for (int64_t ci = 0; ci < n_chunks; ++ci) {
        const int64_t base = chunk_ptr[ci], len = chunk_len[ci];
        memset(acc, 0, (size_t)(2 * c * r) * sizeof(REPRO_AT));
        for (int64_t j = 0; j < len; ++j) {
            const int64_t slot0 = base + j * c;
            const int has_next = (j + 1 < len);
            for (int64_t lane = 0; lane < c; ++lane) {
                if (has_next)
                    repro_pf_row(
                        X + 2 * (int64_t)indices[slot0 + c + lane] * r,
                        (size_t)(2 * r) * sizeof(REPRO_XT));
                const REPRO_AT ar = (REPRO_AT)data[2 * (slot0 + lane)];
                const REPRO_AT ai = (REPRO_AT)data[2 * (slot0 + lane) + 1];
                const REPRO_XT *restrict xj =
                    X + 2 * (int64_t)indices[slot0 + lane] * r;
                REPRO_AT *restrict al = acc + 2 * lane * r;
                for (int64_t k = 0; k < r; ++k) {
                    const REPRO_AT xr = REPRO_LOADX(xj, 2 * k);
                    const REPRO_AT xi = REPRO_LOADX(xj, 2 * k + 1);
                    al[2 * k] += ar * xr - ai * xi;
                    al[2 * k + 1] += ar * xi + ai * xr;
                }
            }
        }
        for (int64_t lane = 0; lane < c; ++lane) {
            const int64_t row = perm[ci * c + lane];
            if (row < n_rows) {
                const REPRO_AT *restrict al = acc + 2 * lane * r;
                REPRO_XT *restrict yrow = Y + 2 * row * r;
                for (int64_t k = 0; k < 2 * r; ++k)
                    REPRO_STOREX(yrow, k, al[k]);
            }
        }
    }
    free(acc);
}

EXPORT void KN(repro_sell_aug_spmv)(
    int64_t n_rows,
    int64_t n_chunks,
    int64_t c,
    const int64_t *restrict chunk_ptr,
    const int64_t *restrict chunk_len,
    const int64_t *restrict perm,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict v,
    REPRO_XT *restrict w,
    double a,
    double b,
    double *restrict eta_even,
    double *restrict eta_odd)
{
    const REPRO_AT ta = (REPRO_AT)(2.0 * a), tab = (REPRO_AT)(2.0 * a * b);
    REPRO_ESUM_DECL(ee);
    REPRO_ESUM_DECL(eor);
    REPRO_ESUM_DECL(eoi);
    REPRO_AT *acc = (REPRO_AT *)malloc((size_t)(2 * c) * sizeof(REPRO_AT));
    if (!acc)
        return;
    for (int64_t ci = 0; ci < n_chunks; ++ci) {
        const int64_t base = chunk_ptr[ci], len = chunk_len[ci];
        memset(acc, 0, (size_t)(2 * c) * sizeof(REPRO_AT));
        for (int64_t j = 0; j < len; ++j) {
            const int64_t slot0 = base + j * c;
            for (int64_t lane = 0; lane < c; ++lane) {
                const REPRO_AT ar = (REPRO_AT)data[2 * (slot0 + lane)];
                const REPRO_AT ai = (REPRO_AT)data[2 * (slot0 + lane) + 1];
                const int64_t col = (int64_t)indices[slot0 + lane];
                const REPRO_AT xr = REPRO_LOADX(v, 2 * col);
                const REPRO_AT xi = REPRO_LOADX(v, 2 * col + 1);
                acc[2 * lane] += ar * xr - ai * xi;
                acc[2 * lane + 1] += ar * xi + ai * xr;
            }
        }
        for (int64_t lane = 0; lane < c; ++lane) {
            const int64_t row = perm[ci * c + lane];
            if (row >= n_rows)
                continue;
            const REPRO_AT vr = REPRO_LOADX(v, 2 * row);
            const REPRO_AT vi = REPRO_LOADX(v, 2 * row + 1);
            const REPRO_AT wr = ta * acc[2 * lane] - tab * vr
                - REPRO_LOADX(w, 2 * row);
            const REPRO_AT wi = ta * acc[2 * lane + 1] - tab * vi
                - REPRO_LOADX(w, 2 * row + 1);
            REPRO_STOREX(w, 2 * row, wr);
            REPRO_STOREX(w, 2 * row + 1, wi);
            REPRO_ESUM_ADD(ee,
                           (double)vr * (double)vr + (double)vi * (double)vi);
            REPRO_ESUM_ADD(eor,
                           (double)wr * (double)vr + (double)wi * (double)vi);
            REPRO_ESUM_ADD(eoi,
                           (double)wr * (double)vi - (double)wi * (double)vr);
        }
    }
    free(acc);
    *eta_even = ee;
    eta_odd[0] = eor;
    eta_odd[1] = eoi;
}

EXPORT void KN(repro_sell_aug_spmmv)(
    int64_t n_rows,
    int64_t n_chunks,
    int64_t c,
    int64_t r,
    const int64_t *restrict chunk_ptr,
    const int64_t *restrict chunk_len,
    const int64_t *restrict perm,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict V,
    REPRO_XT *restrict W,
    double a,
    double b,
    double *restrict eta_even,
    double *restrict eta_odd)
{
    const REPRO_AT ta = (REPRO_AT)(2.0 * a), tab = (REPRO_AT)(2.0 * a * b);
    REPRO_AT *acc =
        (REPRO_AT *)malloc((size_t)(2 * c * r) * sizeof(REPRO_AT));
    if (!acc)
        return;
    memset(eta_even, 0, (size_t)r * sizeof(double));
    memset(eta_odd, 0, (size_t)(2 * r) * sizeof(double));
    REPRO_EARR_DECL(r, free(acc))
    for (int64_t ci = 0; ci < n_chunks; ++ci) {
        const int64_t base = chunk_ptr[ci], len = chunk_len[ci];
        memset(acc, 0, (size_t)(2 * c * r) * sizeof(REPRO_AT));
        for (int64_t j = 0; j < len; ++j) {
            const int64_t slot0 = base + j * c;
            const int has_next = (j + 1 < len);
            for (int64_t lane = 0; lane < c; ++lane) {
                if (has_next)
                    repro_pf_row(
                        V + 2 * (int64_t)indices[slot0 + c + lane] * r,
                        (size_t)(2 * r) * sizeof(REPRO_XT));
                const REPRO_AT ar = (REPRO_AT)data[2 * (slot0 + lane)];
                const REPRO_AT ai = (REPRO_AT)data[2 * (slot0 + lane) + 1];
                const REPRO_XT *restrict xj =
                    V + 2 * (int64_t)indices[slot0 + lane] * r;
                REPRO_AT *restrict al = acc + 2 * lane * r;
                for (int64_t k = 0; k < r; ++k) {
                    const REPRO_AT xr = REPRO_LOADX(xj, 2 * k);
                    const REPRO_AT xi = REPRO_LOADX(xj, 2 * k + 1);
                    al[2 * k] += ar * xr - ai * xi;
                    al[2 * k + 1] += ar * xi + ai * xr;
                }
            }
        }
        for (int64_t lane = 0; lane < c; ++lane) {
            const int64_t row = perm[ci * c + lane];
            if (row >= n_rows)
                continue;
            const REPRO_AT *restrict al = acc + 2 * lane * r;
            const REPRO_XT *restrict vrow = V + 2 * row * r;
            REPRO_XT *restrict wrow = W + 2 * row * r;
            REPRO_KNOVEC
            for (int64_t k = 0; k < r; ++k) {
                REPRO_KNOVEC_STMT;
                const REPRO_AT vr = REPRO_LOADX(vrow, 2 * k);
                const REPRO_AT vi = REPRO_LOADX(vrow, 2 * k + 1);
                const REPRO_AT wr = ta * al[2 * k] - tab * vr
                    - REPRO_LOADX(wrow, 2 * k);
                const REPRO_AT wi = ta * al[2 * k + 1] - tab * vi
                    - REPRO_LOADX(wrow, 2 * k + 1);
                REPRO_STOREX(wrow, 2 * k, wr);
                REPRO_STOREX(wrow, 2 * k + 1, wi);
                REPRO_EE_ADD(k,
                             (double)vr * (double)vr + (double)vi * (double)vi);
                REPRO_EO_ADD(2 * k,
                             (double)wr * (double)vr + (double)wi * (double)vi);
                REPRO_EO_ADD(2 * k + 1,
                             (double)wr * (double)vi - (double)wi * (double)vr);
            }
        }
    }
    REPRO_EARR_FREE();
    free(acc);
}

/* ------------------------------------------------------------------ */
/* Threaded (_mt) kernels: OpenMP parallel-for over fixed row blocks   */
/*                                                                     */
/* The paper's hybrid execution is MPI + OpenMP — each rank drives all */
/* of a socket's cores (Sections V-VI).  These variants parallelize    */
/* the row loop of the augmented block kernels over REPRO_MT_BLOCK-row */
/* blocks with a DETERMINISTIC reduction: the block grid depends only  */
/* on the row range (never the thread count), each block accumulates   */
/* its eta partials with Kahan compensation into its own slice of a    */
/* preallocated array, and after the parallel region the partials are  */
/* combined sequentially in block order.  Result: bitwise-identical    */
/* eta for every n_threads >= 1, OpenMP or not — the checkpoint-       */
/* resume / mp==sim / serve-coalescing invariants survive threading.   */
/* The W update is row-local (disjoint rows per block; SELL perm is a  */
/* permutation), so it is race-free and bitwise equal to the serial    */
/* kernels' update.  No allocation happens inside the parallel region. */
/* ------------------------------------------------------------------ */

/* Shared CSR body: iterates t over [t0, t1); the row is rows[t] when a
 * gather list is given (the boundary phase), else t itself (the plain
 * and interior-range variants, which pass t0=row0, t1=row1).          */
static void KN(repro_csr_aug_spmmv_mt_body)(
    int64_t t0,
    int64_t t1,
    const int64_t *restrict rows,
    int64_t r,
    int64_t n_threads,
    const int64_t *restrict indptr,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict V,
    REPRO_XT *restrict W,
    double a,
    double b,
    double *restrict eta_even,     /* r doubles   */
    double *restrict eta_odd)      /* 2*r doubles */
{
    const REPRO_AT ta = (REPRO_AT)(2.0 * a), tab = (REPRO_AT)(2.0 * a * b);
    const int64_t span = t1 > t0 ? t1 - t0 : 0;
    const int64_t nb = (span + REPRO_MT_BLOCK - 1) / REPRO_MT_BLOCK;
    const int nt = (int)(n_threads > 0 ? n_threads : 1);
    memset(eta_even, 0, (size_t)r * sizeof(double));
    memset(eta_odd, 0, (size_t)(2 * r) * sizeof(double));
    if (nb == 0)
        return;
    (void)nt;
    REPRO_AT *accs =
        (REPRO_AT *)malloc((size_t)(nb * 2 * r) * sizeof(REPRO_AT));
    /* per-block eta partials [ee r | eo 2r | kahan carries 3r], plus a
     * trailing 3r carry slice for the block-order combine             */
    double *epart =
        (double *)calloc((size_t)(nb * 6 * r + 3 * r), sizeof(double));
    if (!accs || !epart) {
        free(accs);
        free(epart);
        return;
    }
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads(nt)
#endif
    for (int64_t bi = 0; bi < nb; ++bi) {
        REPRO_AT *restrict acc = accs + (size_t)(bi * 2 * r);
        double *restrict bee = epart + (size_t)(bi * 6 * r);
        double *restrict beo = bee + r;
        double *restrict bcc = bee + 3 * r;
        const int64_t tb0 = t0 + bi * REPRO_MT_BLOCK;
        const int64_t tb1 =
            tb0 + REPRO_MT_BLOCK < t1 ? tb0 + REPRO_MT_BLOCK : t1;
        for (int64_t t = tb0; t < tb1; ++t) {
            const int64_t i = rows ? rows[t] : t;
            memset(acc, 0, (size_t)(2 * r) * sizeof(REPRO_AT));
            const int64_t p0 = indptr[i], p1 = indptr[i + 1];
            for (int64_t p = p0; p < p1; ++p) {
                if (p + 1 < p1)
                    repro_pf_row(V + 2 * (int64_t)indices[p + 1] * r,
                                 (size_t)(2 * r) * sizeof(REPRO_XT));
                const REPRO_AT ar = (REPRO_AT)data[2 * p];
                const REPRO_AT ai = (REPRO_AT)data[2 * p + 1];
                const REPRO_XT *restrict xj =
                    V + 2 * (int64_t)indices[p] * r;
                for (int64_t k = 0; k < r; ++k) {
                    const REPRO_AT xr = REPRO_LOADX(xj, 2 * k);
                    const REPRO_AT xi = REPRO_LOADX(xj, 2 * k + 1);
                    acc[2 * k] += ar * xr - ai * xi;
                    acc[2 * k + 1] += ar * xi + ai * xr;
                }
            }
            const REPRO_XT *restrict vi_ = V + 2 * i * r;
            REPRO_XT *restrict wi_ = W + 2 * i * r;
            REPRO_KNOVEC
            for (int64_t k = 0; k < r; ++k) {
                REPRO_KNOVEC_STMT;
                const REPRO_AT vr = REPRO_LOADX(vi_, 2 * k);
                const REPRO_AT vi = REPRO_LOADX(vi_, 2 * k + 1);
                const REPRO_AT wr = ta * acc[2 * k] - tab * vr
                    - REPRO_LOADX(wi_, 2 * k);
                const REPRO_AT wi = ta * acc[2 * k + 1] - tab * vi
                    - REPRO_LOADX(wi_, 2 * k + 1);
                REPRO_STOREX(wi_, 2 * k, wr);
                REPRO_STOREX(wi_, 2 * k + 1, wi);
                repro_kadd(&bee[k], &bcc[k],
                           (double)vr * (double)vr
                               + (double)vi * (double)vi);
                repro_kadd(&beo[2 * k], &bcc[r + 2 * k],
                           (double)wr * (double)vr
                               + (double)wi * (double)vi);
                repro_kadd(&beo[2 * k + 1], &bcc[r + 2 * k + 1],
                           (double)wr * (double)vi
                               - (double)wi * (double)vr);
            }
        }
    }
    /* sequential block-order combine: the only cross-block reduction  */
    double *restrict ccomb = epart + (size_t)(nb * 6 * r);
    for (int64_t bi = 0; bi < nb; ++bi) {
        const double *restrict bee = epart + (size_t)(bi * 6 * r);
        const double *restrict beo = bee + r;
        for (int64_t k = 0; k < r; ++k)
            repro_kadd(&eta_even[k], &ccomb[k], bee[k]);
        for (int64_t k = 0; k < 2 * r; ++k)
            repro_kadd(&eta_odd[k], &ccomb[r + k], beo[k]);
    }
    free(epart);
    free(accs);
}

EXPORT void KN(repro_csr_aug_spmmv_mt)(
    int64_t n_rows,
    int64_t r,
    int64_t n_threads,
    const int64_t *restrict indptr,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict V,
    REPRO_XT *restrict W,
    double a,
    double b,
    double *restrict eta_even,
    double *restrict eta_odd)
{
    KN(repro_csr_aug_spmmv_mt_body)(0, n_rows, NULL, r, n_threads, indptr,
                                    indices, data, V, W, a, b, eta_even,
                                    eta_odd);
}

EXPORT void KN(repro_csr_aug_spmmv_range_mt)(
    int64_t row0,
    int64_t row1,
    int64_t r,
    int64_t n_threads,
    const int64_t *restrict indptr,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict V,
    REPRO_XT *restrict W,
    double a,
    double b,
    double *restrict eta_even,
    double *restrict eta_odd)
{
    KN(repro_csr_aug_spmmv_mt_body)(row0, row1, NULL, r, n_threads, indptr,
                                    indices, data, V, W, a, b, eta_even,
                                    eta_odd);
}

EXPORT void KN(repro_csr_aug_spmmv_rows_mt)(
    int64_t n_sub,
    const int64_t *restrict rows,
    int64_t r,
    int64_t n_threads,
    const int64_t *restrict indptr,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict V,
    REPRO_XT *restrict W,
    double a,
    double b,
    double *restrict eta_even,
    double *restrict eta_odd)
{
    KN(repro_csr_aug_spmmv_mt_body)(0, n_sub, rows, r, n_threads, indptr,
                                    indices, data, V, W, a, b, eta_even,
                                    eta_odd);
}

/* SELL threaded variant: blocks are fixed runs of whole chunks — the
 * chunks-per-block count depends only on the chunk height c, so the
 * grid (hence the bits) is again independent of the thread count.     */
EXPORT void KN(repro_sell_aug_spmmv_mt)(
    int64_t n_rows,
    int64_t n_chunks,
    int64_t c,
    int64_t r,
    int64_t n_threads,
    const int64_t *restrict chunk_ptr,
    const int64_t *restrict chunk_len,
    const int64_t *restrict perm,
    const REPRO_IT *restrict indices,
    const REPRO_VT *restrict data,
    const REPRO_XT *restrict V,
    REPRO_XT *restrict W,
    double a,
    double b,
    double *restrict eta_even,
    double *restrict eta_odd)
{
    const REPRO_AT ta = (REPRO_AT)(2.0 * a), tab = (REPRO_AT)(2.0 * a * b);
    const int64_t cpb = REPRO_MT_BLOCK / c > 0 ? REPRO_MT_BLOCK / c : 1;
    const int64_t nb = (n_chunks + cpb - 1) / cpb;
    const int nt = (int)(n_threads > 0 ? n_threads : 1);
    memset(eta_even, 0, (size_t)r * sizeof(double));
    memset(eta_odd, 0, (size_t)(2 * r) * sizeof(double));
    if (nb == 0)
        return;
    (void)nt;
    REPRO_AT *accs =
        (REPRO_AT *)malloc((size_t)(nb * 2 * c * r) * sizeof(REPRO_AT));
    double *epart =
        (double *)calloc((size_t)(nb * 6 * r + 3 * r), sizeof(double));
    if (!accs || !epart) {
        free(accs);
        free(epart);
        return;
    }
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads(nt)
#endif
    for (int64_t bi = 0; bi < nb; ++bi) {
        REPRO_AT *restrict acc = accs + (size_t)(bi * 2 * c * r);
        double *restrict bee = epart + (size_t)(bi * 6 * r);
        double *restrict beo = bee + r;
        double *restrict bcc = bee + 3 * r;
        const int64_t cb1 =
            (bi + 1) * cpb < n_chunks ? (bi + 1) * cpb : n_chunks;
        for (int64_t ci = bi * cpb; ci < cb1; ++ci) {
            const int64_t base = chunk_ptr[ci], len = chunk_len[ci];
            memset(acc, 0, (size_t)(2 * c * r) * sizeof(REPRO_AT));
            for (int64_t j = 0; j < len; ++j) {
                const int64_t slot0 = base + j * c;
                const int has_next = (j + 1 < len);
                for (int64_t lane = 0; lane < c; ++lane) {
                    if (has_next)
                        repro_pf_row(
                            V + 2 * (int64_t)indices[slot0 + c + lane] * r,
                            (size_t)(2 * r) * sizeof(REPRO_XT));
                    const REPRO_AT ar = (REPRO_AT)data[2 * (slot0 + lane)];
                    const REPRO_AT ai =
                        (REPRO_AT)data[2 * (slot0 + lane) + 1];
                    const REPRO_XT *restrict xj =
                        V + 2 * (int64_t)indices[slot0 + lane] * r;
                    REPRO_AT *restrict al = acc + 2 * lane * r;
                    for (int64_t k = 0; k < r; ++k) {
                        const REPRO_AT xr = REPRO_LOADX(xj, 2 * k);
                        const REPRO_AT xi = REPRO_LOADX(xj, 2 * k + 1);
                        al[2 * k] += ar * xr - ai * xi;
                        al[2 * k + 1] += ar * xi + ai * xr;
                    }
                }
            }
            for (int64_t lane = 0; lane < c; ++lane) {
                const int64_t row = perm[ci * c + lane];
                if (row >= n_rows)
                    continue;
                const REPRO_AT *restrict al = acc + 2 * lane * r;
                const REPRO_XT *restrict vrow = V + 2 * row * r;
                REPRO_XT *restrict wrow = W + 2 * row * r;
                REPRO_KNOVEC
                for (int64_t k = 0; k < r; ++k) {
                    REPRO_KNOVEC_STMT;
                    const REPRO_AT vr = REPRO_LOADX(vrow, 2 * k);
                    const REPRO_AT vi = REPRO_LOADX(vrow, 2 * k + 1);
                    const REPRO_AT wr = ta * al[2 * k] - tab * vr
                        - REPRO_LOADX(wrow, 2 * k);
                    const REPRO_AT wi = ta * al[2 * k + 1] - tab * vi
                        - REPRO_LOADX(wrow, 2 * k + 1);
                    REPRO_STOREX(wrow, 2 * k, wr);
                    REPRO_STOREX(wrow, 2 * k + 1, wi);
                    repro_kadd(&bee[k], &bcc[k],
                               (double)vr * (double)vr
                                   + (double)vi * (double)vi);
                    repro_kadd(&beo[2 * k], &bcc[r + 2 * k],
                               (double)wr * (double)vr
                                   + (double)wi * (double)vi);
                    repro_kadd(&beo[2 * k + 1], &bcc[r + 2 * k + 1],
                               (double)wr * (double)vi
                                   - (double)wi * (double)vr);
                }
            }
        }
    }
    double *restrict ccomb = epart + (size_t)(nb * 6 * r);
    for (int64_t bi = 0; bi < nb; ++bi) {
        const double *restrict bee = epart + (size_t)(bi * 6 * r);
        const double *restrict beo = bee + r;
        for (int64_t k = 0; k < r; ++k)
            repro_kadd(&eta_even[k], &ccomb[k], bee[k]);
        for (int64_t k = 0; k < 2 * r; ++k)
            repro_kadd(&eta_odd[k], &ccomb[r + k], beo[k]);
    }
    free(epart);
    free(accs);
}

#undef KN
#undef REPRO_ESUM_DECL
#undef REPRO_ESUM_ADD
#undef REPRO_EARR_DECL
#undef REPRO_EE_ADD
#undef REPRO_EO_ADD
#undef REPRO_EARR_FREE

#endif /* REPRO_KERNELS_TEMPLATE */
