/* Single-pass KPM kernels for CSR and SELL-C-sigma (complex128).
 *
 * This file backs repro.sparse.backend.native: it is compiled on first
 * use with `cc -O3 -shared` and loaded through ctypes.  Each kernel is a
 * genuinely fused single traversal of the matrix stream — the augmented
 * variants perform the shift/scale/recombination of paper Eq. (3)
 *
 *     w_new = 2 a (H - b 1) v - w
 *
 * plus BOTH on-the-fly scalar products (eta_even = <v|v>,
 * eta_odd = <w_new|v>) inside the same row loop, exactly as the paper's
 * Figs. 4 and 5 prescribe and as the NumPy backend cannot.
 *
 * Complex numbers are handled as interleaved (re, im) double pairs — the
 * memory layout of numpy complex128 — with the arithmetic written out in
 * real components so the compiler can vectorize without libm/__muldc3
 * calls.  Block vectors are row-major (N, R): the R values of one row
 * are contiguous, the locality argument of paper Section IV-A.
 *
 * Index types match the Python containers: CSR indptr / SELL chunk_ptr,
 * chunk_len, perm are int64; in-kernel column indices are int32 (the
 * paper's S_i = 4).
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#ifdef _MSC_VER
#define EXPORT __declspec(dllexport)
#else
#define EXPORT __attribute__((visibility("default")))
#endif

#if defined(__GNUC__) || defined(__clang__)
#define REPRO_PF(addr) __builtin_prefetch((addr), 0, 3)
#else
#define REPRO_PF(addr) ((void)0)
#endif

/* Prefetch one gathered block-vector row (2*r doubles, touching every
 * cache line).  The column index of the *next* slot is known one
 * iteration ahead, which is enough distance to hide the gather latency
 * the hardware prefetcher cannot predict.                             */
static inline void repro_pf_row(const double *restrict p, int64_t r2)
{
    for (int64_t q = 0; q < r2; q += 8)
        REPRO_PF(p + q);
}

/* ------------------------------------------------------------------ */
/* CSR                                                                 */
/* ------------------------------------------------------------------ */

EXPORT void repro_csr_spmv(
    int64_t n_rows,
    const int64_t *restrict indptr,
    const int32_t *restrict indices,
    const double *restrict data,   /* 2*nnz   */
    const double *restrict x,      /* 2*n_cols */
    double *restrict y)            /* 2*n_rows */
{
    for (int64_t i = 0; i < n_rows; ++i) {
        double sr = 0.0, si = 0.0;
        const int64_t p0 = indptr[i], p1 = indptr[i + 1];
        for (int64_t p = p0; p < p1; ++p) {
            const double ar = data[2 * p], ai = data[2 * p + 1];
            const int64_t j = (int64_t)indices[p];
            const double xr = x[2 * j], xi = x[2 * j + 1];
            sr += ar * xr - ai * xi;
            si += ar * xi + ai * xr;
        }
        y[2 * i] = sr;
        y[2 * i + 1] = si;
    }
}

EXPORT void repro_csr_spmmv(
    int64_t n_rows,
    int64_t r,
    const int64_t *restrict indptr,
    const int32_t *restrict indices,
    const double *restrict data,
    const double *restrict X,      /* 2*n_cols*r, row-major */
    double *restrict Y)            /* 2*n_rows*r, row-major */
{
    for (int64_t i = 0; i < n_rows; ++i) {
        double *restrict yi = Y + 2 * i * r;
        memset(yi, 0, (size_t)(2 * r) * sizeof(double));
        const int64_t p0 = indptr[i], p1 = indptr[i + 1];
        for (int64_t p = p0; p < p1; ++p) {
            if (p + 1 < p1)
                repro_pf_row(X + 2 * (int64_t)indices[p + 1] * r, 2 * r);
            const double ar = data[2 * p], ai = data[2 * p + 1];
            const double *restrict xj = X + 2 * (int64_t)indices[p] * r;
            for (int64_t k = 0; k < r; ++k) {
                const double xr = xj[2 * k], xi = xj[2 * k + 1];
                yi[2 * k] += ar * xr - ai * xi;
                yi[2 * k + 1] += ar * xi + ai * xr;
            }
        }
    }
}

/* w <- 2a(Hv - b v) - w, plus eta_even = <v|v>, eta_odd = <w_new|v>.
 * eta_odd is one interleaved complex value.                           */
EXPORT void repro_csr_aug_spmv(
    int64_t n_rows,
    const int64_t *restrict indptr,
    const int32_t *restrict indices,
    const double *restrict data,
    const double *restrict v,
    double *restrict w,
    double a,
    double b,
    double *restrict eta_even,     /* 1 double  */
    double *restrict eta_odd)      /* 2 doubles */
{
    const double ta = 2.0 * a, tab = 2.0 * a * b;
    double ee = 0.0, eor = 0.0, eoi = 0.0;
    for (int64_t i = 0; i < n_rows; ++i) {
        double sr = 0.0, si = 0.0;
        const int64_t p0 = indptr[i], p1 = indptr[i + 1];
        for (int64_t p = p0; p < p1; ++p) {
            const double ar = data[2 * p], ai = data[2 * p + 1];
            const int64_t j = (int64_t)indices[p];
            const double xr = v[2 * j], xi = v[2 * j + 1];
            sr += ar * xr - ai * xi;
            si += ar * xi + ai * xr;
        }
        const double vr = v[2 * i], vi = v[2 * i + 1];
        const double wr = ta * sr - tab * vr - w[2 * i];
        const double wi = ta * si - tab * vi - w[2 * i + 1];
        w[2 * i] = wr;
        w[2 * i + 1] = wi;
        ee += vr * vr + vi * vi;
        /* conj(w_new) * v */
        eor += wr * vr + wi * vi;
        eoi += wr * vi - wi * vr;
    }
    *eta_even = ee;
    eta_odd[0] = eor;
    eta_odd[1] = eoi;
}

/* Blocked variant: V, W are (N, R) row-major; eta_even is R doubles,
 * eta_odd R interleaved complex values.                               */
EXPORT void repro_csr_aug_spmmv(
    int64_t n_rows,
    int64_t r,
    const int64_t *restrict indptr,
    const int32_t *restrict indices,
    const double *restrict data,
    const double *restrict V,
    double *restrict W,
    double a,
    double b,
    double *restrict eta_even,     /* r doubles   */
    double *restrict eta_odd)      /* 2*r doubles */
{
    const double ta = 2.0 * a, tab = 2.0 * a * b;
    double *acc = (double *)malloc((size_t)(2 * r) * sizeof(double));
    if (!acc)
        return;
    memset(eta_even, 0, (size_t)r * sizeof(double));
    memset(eta_odd, 0, (size_t)(2 * r) * sizeof(double));
    for (int64_t i = 0; i < n_rows; ++i) {
        memset(acc, 0, (size_t)(2 * r) * sizeof(double));
        const int64_t p0 = indptr[i], p1 = indptr[i + 1];
        for (int64_t p = p0; p < p1; ++p) {
            if (p + 1 < p1)
                repro_pf_row(V + 2 * (int64_t)indices[p + 1] * r, 2 * r);
            const double ar = data[2 * p], ai = data[2 * p + 1];
            const double *restrict xj = V + 2 * (int64_t)indices[p] * r;
            for (int64_t k = 0; k < r; ++k) {
                const double xr = xj[2 * k], xi = xj[2 * k + 1];
                acc[2 * k] += ar * xr - ai * xi;
                acc[2 * k + 1] += ar * xi + ai * xr;
            }
        }
        const double *restrict vi_ = V + 2 * i * r;
        double *restrict wi_ = W + 2 * i * r;
        for (int64_t k = 0; k < r; ++k) {
            const double vr = vi_[2 * k], vi = vi_[2 * k + 1];
            const double wr = ta * acc[2 * k] - tab * vr - wi_[2 * k];
            const double wi = ta * acc[2 * k + 1] - tab * vi - wi_[2 * k + 1];
            wi_[2 * k] = wr;
            wi_[2 * k + 1] = wi;
            eta_even[k] += vr * vr + vi * vi;
            eta_odd[2 * k] += wr * vr + wi * vi;
            eta_odd[2 * k + 1] += wr * vi - wi * vr;
        }
    }
    free(acc);
}

/* ------------------------------------------------------------------ */
/* CSR split kernels (task-mode overlapped execution)                  */
/*                                                                     */
/* The distributed engines hide the halo exchange by running the KPM   */
/* update in two phases: a contiguous *interior* row range [row0,row1) */
/* whose entries reference only local columns (computable before the   */
/* halo arrives), then the gathered *boundary* rows.  Both variants    */
/* index the ORIGINAL local matrix absolutely — no row extraction —    */
/* and the per-row arithmetic is byte-for-byte the plain kernel's, so  */
/* the W update is bitwise identical to a single-phase call for any    */
/* split.  Each phase zeroes and returns its OWN eta partials; the     */
/* caller combines them in a fixed order (interior + boundary), which  */
/* makes the combined dots independent of the execution schedule.      */
/* ------------------------------------------------------------------ */

EXPORT void repro_csr_aug_spmv_range(
    int64_t row0,
    int64_t row1,
    const int64_t *restrict indptr,
    const int32_t *restrict indices,
    const double *restrict data,
    const double *restrict v,
    double *restrict w,
    double a,
    double b,
    double *restrict eta_even,     /* 1 double: this phase's partial  */
    double *restrict eta_odd)      /* 2 doubles                       */
{
    const double ta = 2.0 * a, tab = 2.0 * a * b;
    double ee = 0.0, eor = 0.0, eoi = 0.0;
    for (int64_t i = row0; i < row1; ++i) {
        double sr = 0.0, si = 0.0;
        const int64_t p0 = indptr[i], p1 = indptr[i + 1];
        for (int64_t p = p0; p < p1; ++p) {
            const double ar = data[2 * p], ai = data[2 * p + 1];
            const int64_t j = (int64_t)indices[p];
            const double xr = v[2 * j], xi = v[2 * j + 1];
            sr += ar * xr - ai * xi;
            si += ar * xi + ai * xr;
        }
        const double vr = v[2 * i], vi = v[2 * i + 1];
        const double wr = ta * sr - tab * vr - w[2 * i];
        const double wi = ta * si - tab * vi - w[2 * i + 1];
        w[2 * i] = wr;
        w[2 * i + 1] = wi;
        ee += vr * vr + vi * vi;
        eor += wr * vr + wi * vi;
        eoi += wr * vi - wi * vr;
    }
    *eta_even = ee;
    eta_odd[0] = eor;
    eta_odd[1] = eoi;
}

EXPORT void repro_csr_aug_spmv_rows(
    int64_t n_sub,
    const int64_t *restrict rows,  /* gathered local row indices      */
    const int64_t *restrict indptr,
    const int32_t *restrict indices,
    const double *restrict data,
    const double *restrict v,
    double *restrict w,
    double a,
    double b,
    double *restrict eta_even,
    double *restrict eta_odd)
{
    const double ta = 2.0 * a, tab = 2.0 * a * b;
    double ee = 0.0, eor = 0.0, eoi = 0.0;
    for (int64_t t = 0; t < n_sub; ++t) {
        const int64_t i = rows[t];
        double sr = 0.0, si = 0.0;
        const int64_t p0 = indptr[i], p1 = indptr[i + 1];
        for (int64_t p = p0; p < p1; ++p) {
            const double ar = data[2 * p], ai = data[2 * p + 1];
            const int64_t j = (int64_t)indices[p];
            const double xr = v[2 * j], xi = v[2 * j + 1];
            sr += ar * xr - ai * xi;
            si += ar * xi + ai * xr;
        }
        const double vr = v[2 * i], vi = v[2 * i + 1];
        const double wr = ta * sr - tab * vr - w[2 * i];
        const double wi = ta * si - tab * vi - w[2 * i + 1];
        w[2 * i] = wr;
        w[2 * i + 1] = wi;
        ee += vr * vr + vi * vi;
        eor += wr * vr + wi * vi;
        eoi += wr * vi - wi * vr;
    }
    *eta_even = ee;
    eta_odd[0] = eor;
    eta_odd[1] = eoi;
}

EXPORT void repro_csr_aug_spmmv_range(
    int64_t row0,
    int64_t row1,
    int64_t r,
    const int64_t *restrict indptr,
    const int32_t *restrict indices,
    const double *restrict data,
    const double *restrict V,
    double *restrict W,
    double a,
    double b,
    double *restrict eta_even,     /* r doubles: this phase's partials */
    double *restrict eta_odd)      /* 2*r doubles                      */
{
    const double ta = 2.0 * a, tab = 2.0 * a * b;
    double *acc = (double *)malloc((size_t)(2 * r) * sizeof(double));
    if (!acc)
        return;
    memset(eta_even, 0, (size_t)r * sizeof(double));
    memset(eta_odd, 0, (size_t)(2 * r) * sizeof(double));
    for (int64_t i = row0; i < row1; ++i) {
        memset(acc, 0, (size_t)(2 * r) * sizeof(double));
        const int64_t p0 = indptr[i], p1 = indptr[i + 1];
        for (int64_t p = p0; p < p1; ++p) {
            if (p + 1 < p1)
                repro_pf_row(V + 2 * (int64_t)indices[p + 1] * r, 2 * r);
            const double ar = data[2 * p], ai = data[2 * p + 1];
            const double *restrict xj = V + 2 * (int64_t)indices[p] * r;
            for (int64_t k = 0; k < r; ++k) {
                const double xr = xj[2 * k], xi = xj[2 * k + 1];
                acc[2 * k] += ar * xr - ai * xi;
                acc[2 * k + 1] += ar * xi + ai * xr;
            }
        }
        const double *restrict vi_ = V + 2 * i * r;
        double *restrict wi_ = W + 2 * i * r;
        for (int64_t k = 0; k < r; ++k) {
            const double vr = vi_[2 * k], vi = vi_[2 * k + 1];
            const double wr = ta * acc[2 * k] - tab * vr - wi_[2 * k];
            const double wi = ta * acc[2 * k + 1] - tab * vi - wi_[2 * k + 1];
            wi_[2 * k] = wr;
            wi_[2 * k + 1] = wi;
            eta_even[k] += vr * vr + vi * vi;
            eta_odd[2 * k] += wr * vr + wi * vi;
            eta_odd[2 * k + 1] += wr * vi - wi * vr;
        }
    }
    free(acc);
}

EXPORT void repro_csr_aug_spmmv_rows(
    int64_t n_sub,
    const int64_t *restrict rows,
    int64_t r,
    const int64_t *restrict indptr,
    const int32_t *restrict indices,
    const double *restrict data,
    const double *restrict V,
    double *restrict W,
    double a,
    double b,
    double *restrict eta_even,
    double *restrict eta_odd)
{
    const double ta = 2.0 * a, tab = 2.0 * a * b;
    double *acc = (double *)malloc((size_t)(2 * r) * sizeof(double));
    if (!acc)
        return;
    memset(eta_even, 0, (size_t)r * sizeof(double));
    memset(eta_odd, 0, (size_t)(2 * r) * sizeof(double));
    for (int64_t t = 0; t < n_sub; ++t) {
        const int64_t i = rows[t];
        memset(acc, 0, (size_t)(2 * r) * sizeof(double));
        const int64_t p0 = indptr[i], p1 = indptr[i + 1];
        for (int64_t p = p0; p < p1; ++p) {
            if (p + 1 < p1)
                repro_pf_row(V + 2 * (int64_t)indices[p + 1] * r, 2 * r);
            const double ar = data[2 * p], ai = data[2 * p + 1];
            const double *restrict xj = V + 2 * (int64_t)indices[p] * r;
            for (int64_t k = 0; k < r; ++k) {
                const double xr = xj[2 * k], xi = xj[2 * k + 1];
                acc[2 * k] += ar * xr - ai * xi;
                acc[2 * k + 1] += ar * xi + ai * xr;
            }
        }
        const double *restrict vi_ = V + 2 * i * r;
        double *restrict wi_ = W + 2 * i * r;
        for (int64_t k = 0; k < r; ++k) {
            const double vr = vi_[2 * k], vi = vi_[2 * k + 1];
            const double wr = ta * acc[2 * k] - tab * vr - wi_[2 * k];
            const double wi = ta * acc[2 * k + 1] - tab * vi - wi_[2 * k + 1];
            wi_[2 * k] = wr;
            wi_[2 * k + 1] = wi;
            eta_even[k] += vr * vr + vi * vi;
            eta_odd[2 * k] += wr * vr + wi * vi;
            eta_odd[2 * k + 1] += wr * vi - wi * vr;
        }
    }
    free(acc);
}

/* ------------------------------------------------------------------ */
/* SELL-C-sigma                                                        */
/*                                                                     */
/* Flat layout: chunk ci of height C and length L = chunk_len[ci]      */
/* stores slot (j, lane) at chunk_ptr[ci] + j*C + lane (column-major   */
/* within the chunk).  perm[sorted_pos] is the original row; sorted    */
/* positions whose perm value is >= n_rows are padding rows.  Padded   */
/* slots hold value 0 with a valid self-referencing column, so they    */
/* are numerically inert but are streamed like real entries.           */
/* ------------------------------------------------------------------ */

EXPORT void repro_sell_spmv(
    int64_t n_rows,
    int64_t n_chunks,
    int64_t c,
    const int64_t *restrict chunk_ptr,
    const int64_t *restrict chunk_len,
    const int64_t *restrict perm,
    const int32_t *restrict indices,
    const double *restrict data,
    const double *restrict x,
    double *restrict y)
{
    double *acc = (double *)malloc((size_t)(2 * c) * sizeof(double));
    if (!acc)
        return;
    for (int64_t ci = 0; ci < n_chunks; ++ci) {
        const int64_t base = chunk_ptr[ci], len = chunk_len[ci];
        memset(acc, 0, (size_t)(2 * c) * sizeof(double));
        for (int64_t j = 0; j < len; ++j) {
            const int64_t slot0 = base + j * c;
            for (int64_t lane = 0; lane < c; ++lane) {
                const double ar = data[2 * (slot0 + lane)];
                const double ai = data[2 * (slot0 + lane) + 1];
                const int64_t col = (int64_t)indices[slot0 + lane];
                const double xr = x[2 * col], xi = x[2 * col + 1];
                acc[2 * lane] += ar * xr - ai * xi;
                acc[2 * lane + 1] += ar * xi + ai * xr;
            }
        }
        for (int64_t lane = 0; lane < c; ++lane) {
            const int64_t row = perm[ci * c + lane];
            if (row < n_rows) {
                y[2 * row] = acc[2 * lane];
                y[2 * row + 1] = acc[2 * lane + 1];
            }
        }
    }
    free(acc);
}

EXPORT void repro_sell_spmmv(
    int64_t n_rows,
    int64_t n_chunks,
    int64_t c,
    int64_t r,
    const int64_t *restrict chunk_ptr,
    const int64_t *restrict chunk_len,
    const int64_t *restrict perm,
    const int32_t *restrict indices,
    const double *restrict data,
    const double *restrict X,
    double *restrict Y)
{
    double *acc = (double *)malloc((size_t)(2 * c * r) * sizeof(double));
    if (!acc)
        return;
    for (int64_t ci = 0; ci < n_chunks; ++ci) {
        const int64_t base = chunk_ptr[ci], len = chunk_len[ci];
        memset(acc, 0, (size_t)(2 * c * r) * sizeof(double));
        for (int64_t j = 0; j < len; ++j) {
            const int64_t slot0 = base + j * c;
            const int has_next = (j + 1 < len);
            for (int64_t lane = 0; lane < c; ++lane) {
                if (has_next)
                    repro_pf_row(
                        X + 2 * (int64_t)indices[slot0 + c + lane] * r, 2 * r);
                const double ar = data[2 * (slot0 + lane)];
                const double ai = data[2 * (slot0 + lane) + 1];
                const double *restrict xj =
                    X + 2 * (int64_t)indices[slot0 + lane] * r;
                double *restrict al = acc + 2 * lane * r;
                for (int64_t k = 0; k < r; ++k) {
                    const double xr = xj[2 * k], xi = xj[2 * k + 1];
                    al[2 * k] += ar * xr - ai * xi;
                    al[2 * k + 1] += ar * xi + ai * xr;
                }
            }
        }
        for (int64_t lane = 0; lane < c; ++lane) {
            const int64_t row = perm[ci * c + lane];
            if (row < n_rows)
                memcpy(Y + 2 * row * r, acc + 2 * lane * r,
                       (size_t)(2 * r) * sizeof(double));
        }
    }
    free(acc);
}

EXPORT void repro_sell_aug_spmv(
    int64_t n_rows,
    int64_t n_chunks,
    int64_t c,
    const int64_t *restrict chunk_ptr,
    const int64_t *restrict chunk_len,
    const int64_t *restrict perm,
    const int32_t *restrict indices,
    const double *restrict data,
    const double *restrict v,
    double *restrict w,
    double a,
    double b,
    double *restrict eta_even,
    double *restrict eta_odd)
{
    const double ta = 2.0 * a, tab = 2.0 * a * b;
    double ee = 0.0, eor = 0.0, eoi = 0.0;
    double *acc = (double *)malloc((size_t)(2 * c) * sizeof(double));
    if (!acc)
        return;
    for (int64_t ci = 0; ci < n_chunks; ++ci) {
        const int64_t base = chunk_ptr[ci], len = chunk_len[ci];
        memset(acc, 0, (size_t)(2 * c) * sizeof(double));
        for (int64_t j = 0; j < len; ++j) {
            const int64_t slot0 = base + j * c;
            for (int64_t lane = 0; lane < c; ++lane) {
                const double ar = data[2 * (slot0 + lane)];
                const double ai = data[2 * (slot0 + lane) + 1];
                const int64_t col = (int64_t)indices[slot0 + lane];
                const double xr = v[2 * col], xi = v[2 * col + 1];
                acc[2 * lane] += ar * xr - ai * xi;
                acc[2 * lane + 1] += ar * xi + ai * xr;
            }
        }
        for (int64_t lane = 0; lane < c; ++lane) {
            const int64_t row = perm[ci * c + lane];
            if (row >= n_rows)
                continue;
            const double vr = v[2 * row], vi = v[2 * row + 1];
            const double wr = ta * acc[2 * lane] - tab * vr - w[2 * row];
            const double wi = ta * acc[2 * lane + 1] - tab * vi - w[2 * row + 1];
            w[2 * row] = wr;
            w[2 * row + 1] = wi;
            ee += vr * vr + vi * vi;
            eor += wr * vr + wi * vi;
            eoi += wr * vi - wi * vr;
        }
    }
    free(acc);
    *eta_even = ee;
    eta_odd[0] = eor;
    eta_odd[1] = eoi;
}

EXPORT void repro_sell_aug_spmmv(
    int64_t n_rows,
    int64_t n_chunks,
    int64_t c,
    int64_t r,
    const int64_t *restrict chunk_ptr,
    const int64_t *restrict chunk_len,
    const int64_t *restrict perm,
    const int32_t *restrict indices,
    const double *restrict data,
    const double *restrict V,
    double *restrict W,
    double a,
    double b,
    double *restrict eta_even,
    double *restrict eta_odd)
{
    const double ta = 2.0 * a, tab = 2.0 * a * b;
    double *acc = (double *)malloc((size_t)(2 * c * r) * sizeof(double));
    if (!acc)
        return;
    memset(eta_even, 0, (size_t)r * sizeof(double));
    memset(eta_odd, 0, (size_t)(2 * r) * sizeof(double));
    for (int64_t ci = 0; ci < n_chunks; ++ci) {
        const int64_t base = chunk_ptr[ci], len = chunk_len[ci];
        memset(acc, 0, (size_t)(2 * c * r) * sizeof(double));
        for (int64_t j = 0; j < len; ++j) {
            const int64_t slot0 = base + j * c;
            const int has_next = (j + 1 < len);
            for (int64_t lane = 0; lane < c; ++lane) {
                if (has_next)
                    repro_pf_row(
                        V + 2 * (int64_t)indices[slot0 + c + lane] * r, 2 * r);
                const double ar = data[2 * (slot0 + lane)];
                const double ai = data[2 * (slot0 + lane) + 1];
                const double *restrict xj =
                    V + 2 * (int64_t)indices[slot0 + lane] * r;
                double *restrict al = acc + 2 * lane * r;
                for (int64_t k = 0; k < r; ++k) {
                    const double xr = xj[2 * k], xi = xj[2 * k + 1];
                    al[2 * k] += ar * xr - ai * xi;
                    al[2 * k + 1] += ar * xi + ai * xr;
                }
            }
        }
        for (int64_t lane = 0; lane < c; ++lane) {
            const int64_t row = perm[ci * c + lane];
            if (row >= n_rows)
                continue;
            const double *restrict al = acc + 2 * lane * r;
            const double *restrict vrow = V + 2 * row * r;
            double *restrict wrow = W + 2 * row * r;
            for (int64_t k = 0; k < r; ++k) {
                const double vr = vrow[2 * k], vi = vrow[2 * k + 1];
                const double wr = ta * al[2 * k] - tab * vr - wrow[2 * k];
                const double wi = ta * al[2 * k + 1] - tab * vi - wrow[2 * k + 1];
                wrow[2 * k] = wr;
                wrow[2 * k + 1] = wi;
                eta_even[k] += vr * vr + vi * vi;
                eta_odd[2 * k] += wr * vr + wi * vi;
                eta_odd[2 * k + 1] += wr * vi - wi * vr;
            }
        }
    }
    free(acc);
}
