"""The native kernel backend: compiled single-pass C kernels.

Marshals the CSR / SELL-C-sigma containers into the ctypes entry points
of ``_kernels.c`` (see :mod:`repro.sparse.backend.native`).  Unlike the
NumPy backend, the augmented kernels here really are one traversal of
the matrix stream per iteration with the recurrence update and both
scalar products computed inside the row loop — the kernel structure of
paper Figs. 4 and 5.

Precision dispatch: every kernel exists in the typed expansions of
``_kernels.c`` (see :data:`repro.sparse.backend.native.KERNEL_SUFFIXES`)
and the profile is inferred from the vector operands — complex128,
complex64 and float16 pair storage map one-to-one onto the fp64 / fp32 /
fp16v profiles of :mod:`repro.util.precision`.  The matrix side streams
the profile's typed kernel pack (:func:`repro.sparse.compress.kernel_pack`):
narrowed values plus uint16-compressed column indices when the operator
is narrow enough, int32 fallback otherwise.

Accounting is charged through the exact same helpers as the NumPy
backend, so :class:`~repro.util.counters.PerfCounters` totals and every
Table-I-derived model are backend-independent.
"""

from __future__ import annotations

import numpy as np

from repro.obs import NULL_METRICS, MetricsRegistry
from repro.sparse.backend import KernelBackend, KernelPlan, SplitKernelPlan
from repro.sparse.backend.native import (
    _pc,
    _pi32,
    _pi64,
    _pidx,
    _pvec,
    load_library,
    simd_available,
    simd_f16c_available,
)
from repro.sparse.compress import kernel_pack
from repro.sparse.csr import CSRMatrix
from repro.sparse.fused import (
    charge_aug_spmmv,
    charge_aug_spmmv_part,
    charge_aug_spmv,
    charge_aug_spmv_part,
)
from repro.sparse.sell import SellMatrix
from repro.sparse.spmv import _charge_spmv
from repro.util.constants import DTYPE
from repro.util.counters import NULL_COUNTERS, PerfCounters
from repro.util.errors import BackendError, ShapeError
from repro.util.precision import Precision, precision_of
from repro.util.validation import check_block_vector, check_vector

_KERNEL_DTYPES = (
    np.dtype(np.complex128),
    np.dtype(np.complex64),
    np.dtype(np.float16),
)


def _kernel_suffix(prec: Precision, indices: np.ndarray) -> str:
    """Exported-name suffix for this profile and realized index width."""
    if prec.is_fp64:
        return ""
    base = "_f16v" if prec.half_vectors else "_f32"
    if indices.dtype == np.uint16:
        base += "u16"
    return base


def _simd_suffix(simd: str | None, prec: Precision) -> str:
    """``"_simd"`` when the vectorized kernel family should run.

    ``simd`` is the plan's normalized knob (``None`` for plan-less calls
    ≡ ``"auto"``).  The scalar and ``_simd`` expansions are bitwise
    identical in fp64 results, so ``"auto"`` simply takes the fast family
    whenever the build has it; the half-storage profiles additionally
    need the F16C converters compiled in.  An explicit ``"on"`` on a host
    without the vectorized build falls back to scalar *cleanly* — same
    numbers, plus a ``backend.native.simd_fallbacks`` health counter so
    the degradation is observable instead of silent.
    """
    if simd == "off":
        return ""
    if simd_f16c_available() if prec.half_vectors else simd_available():
        return "_simd"
    if simd == "on":
        from repro.obs import GLOBAL_METRICS

        GLOBAL_METRICS.count("backend.native.simd_fallbacks")
    return ""


def _as_kernel_block(name: str, X: np.ndarray, n: int) -> np.ndarray:
    """Validate an (n, R) block for the C kernels: contiguous storage."""
    X = check_block_vector(name, X, n)
    if X.dtype not in _KERNEL_DTYPES or not X.flags.c_contiguous:
        raise ShapeError(
            f"{name} must be C-contiguous complex128/complex64 (or float16 "
            "pair storage) for the native backend"
        )
    return X


def _as_kernel_vector(name: str, x: np.ndarray, n: int) -> np.ndarray:
    x = check_vector(name, x, n)
    if x.dtype not in _KERNEL_DTYPES or not x.flags.c_contiguous:
        raise ShapeError(
            f"{name} must be contiguous complex128/complex64 (or float16 "
            "pair storage) for the native backend"
        )
    return x


def _check_same_storage(av: np.ndarray, aw: np.ndarray) -> None:
    if av.dtype != aw.dtype:
        raise ShapeError(
            "v and w must share one precision profile's storage dtype, got "
            f"{av.dtype} and {aw.dtype}"
        )


class NativeBackend(KernelBackend):
    """Compiled C kernels (CSR + SELL-C-sigma), single pass per iteration."""

    name = "native"

    def available(self) -> bool:
        return load_library() is not None

    def _lib(self):
        lib = load_library()
        if lib is None:
            from repro.sparse.backend.native import native_error

            raise BackendError(
                f"native kernel backend unavailable: {native_error()}"
            )
        return lib

    # -- marshalling ---------------------------------------------------
    # The matrix-side pointers are cached on the matrix object (the
    # containers are immutable, same pattern as the ``_scipy_cache``
    # handle): ``data_as`` builds fresh ctypes wrappers per call, which
    # is measurable overhead when the distributed driver calls into the
    # kernels once per rank per iteration on small row blocks.  Narrow
    # profiles cache one pointer tuple per kernel suffix; the arrays
    # they point into live in the matrix's kernel-pack cache.
    @staticmethod
    def _csr_args(A: CSRMatrix, prec: Precision):
        if prec.is_fp64:
            args = getattr(A, "_native_arg_cache", None)
            if args is None:
                args = (_pi64(A.indptr), _pi32(A.indices), _pc(A.data))
                A._native_arg_cache = args
            return "", args
        values, indices = kernel_pack(A, prec)
        suffix = _kernel_suffix(prec, indices)
        cache = getattr(A, "_native_typed_args", None)
        if cache is None:
            cache = {}
            A._native_typed_args = cache
        args = cache.get(suffix)
        if args is None:
            args = (_pi64(A.indptr), _pidx(indices), _pvec(values))
            cache[suffix] = args
        return suffix, args

    @staticmethod
    def _sell_args(A: SellMatrix, prec: Precision):
        if prec.is_fp64:
            args = getattr(A, "_native_arg_cache", None)
            if args is None:
                args = (
                    A.n_chunks,
                    A.chunk_height,
                    _pi64(A.chunk_ptr),
                    _pi64(A.chunk_len),
                    _pi64(A.perm),
                    _pi32(A.indices),
                    _pc(A.data),
                )
                A._native_arg_cache = args
            return "", args
        values, indices = kernel_pack(A, prec)
        suffix = _kernel_suffix(prec, indices)
        cache = getattr(A, "_native_typed_args", None)
        if cache is None:
            cache = {}
            A._native_typed_args = cache
        args = cache.get(suffix)
        if args is None:
            args = (
                A.n_chunks,
                A.chunk_height,
                _pi64(A.chunk_ptr),
                _pi64(A.chunk_len),
                _pi64(A.perm),
                _pidx(indices),
                _pvec(values),
            )
            cache[suffix] = args
        return suffix, args

    # -- kernels -------------------------------------------------------
    def spmv(self, A, x, out=None, counters: PerfCounters = NULL_COUNTERS,
             metrics: MetricsRegistry = NULL_METRICS):
        lib = self._lib()
        x = _as_kernel_vector("x", x, A.n_cols)
        prec = precision_of(x)
        shape = prec.vec_shape(A.n_rows)
        if out is None:
            out = np.empty(shape, dtype=x.dtype)
        elif out.shape != shape or out.dtype != x.dtype:
            raise ShapeError(
                f"out must have shape {shape} and dtype {x.dtype}, got "
                f"{out.shape} / {out.dtype}"
            )
        vs = _simd_suffix(None, prec)
        with metrics.span("spmv", counters=counters):
            if isinstance(A, CSRMatrix):
                suf, args = self._csr_args(A, prec)
                getattr(lib, "repro_csr_spmv" + suf + vs)(
                    A.n_rows, *args, _pvec(x), _pvec(out)
                )
            elif isinstance(A, SellMatrix):
                suf, args = self._sell_args(A, prec)
                getattr(lib, "repro_sell_spmv" + suf + vs)(
                    A.n_rows, *args, _pvec(x), _pvec(out)
                )
            else:
                raise TypeError(f"unsupported matrix type {type(A).__name__}")
            _charge_spmv(A, 1, counters, "spmv", prec)
        return out

    def spmmv(self, A, X, out=None, counters: PerfCounters = NULL_COUNTERS,
              metrics: MetricsRegistry = NULL_METRICS):
        lib = self._lib()
        X = _as_kernel_block("X", X, A.n_cols)
        prec = precision_of(X)
        r = X.shape[1]
        shape = prec.vec_shape(A.n_rows, r)
        if out is None:
            out = np.empty(shape, dtype=X.dtype)
        elif out.shape != shape or out.dtype != X.dtype:
            raise ShapeError(
                f"out must have shape {shape} and dtype {X.dtype}, got "
                f"{out.shape} / {out.dtype}"
            )
        vs = _simd_suffix(None, prec)
        with metrics.span("spmmv", counters=counters):
            if isinstance(A, CSRMatrix):
                suf, args = self._csr_args(A, prec)
                getattr(lib, "repro_csr_spmmv" + suf + vs)(
                    A.n_rows, r, *args, _pvec(X), _pvec(out)
                )
            elif isinstance(A, SellMatrix):
                suf, (nc, c, *rest) = self._sell_args(A, prec)
                getattr(lib, "repro_sell_spmmv" + suf + vs)(
                    A.n_rows, nc, c, r, *rest, _pvec(X), _pvec(out)
                )
            else:
                raise TypeError(f"unsupported matrix type {type(A).__name__}")
            _charge_spmv(A, r, counters, "spmmv", prec)
        return out

    def naive_step(
        self, A, v, w, a, b, plan: KernelPlan | None = None,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        # The naive algorithm *is* the library-call structure of paper
        # Fig. 3 — an optimized SpMV plus separate BLAS-1 passes. Only
        # the SpMV is native; fusing more would make it stage 1.
        from repro.sparse.blas1 import axpy, dot, nrm2_sq, scal

        n = A.n_rows
        v = _as_kernel_vector("v", v, n)
        w = _as_kernel_vector("w", w, n)
        _check_same_storage(v, w)
        if v.dtype == np.float16:
            # decode pass: half-storage SpMV + fp32 BLAS-1 (shared base
            # implementation; the spmv below streams the native kernels)
            return self._naive_step_half(
                A, v, w, a, b, plan, counters, metrics
            )
        if plan is not None and plan.u.dtype == v.dtype:
            u, work = plan.u, plan.work
        else:
            u, work = np.empty(n, dtype=v.dtype), None
        # one span for the whole library-call chain (same shape as the
        # NumPy fused.naive_kpm_step span); the inner spmv stays unspanned
        with metrics.span("naive_step", counters=counters):
            self.spmv(A, v, out=u, counters=counters)
            axpy(u, -b, v, counters=counters, work=work)
            scal(-1.0, w, counters=counters)
            axpy(w, 2.0 * a, u, counters=counters, work=work)
            eta_even = nrm2_sq(v, counters=counters)
            eta_odd = dot(w, v, counters=counters)
        return eta_even, eta_odd

    def aug_spmv_step(
        self, A, v, w, a, b, plan: KernelPlan | None = None,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        lib = self._lib()
        v = _as_kernel_vector("v", v, A.n_cols)
        w = _as_kernel_vector("w", w, A.n_rows)
        _check_same_storage(v, w)
        prec = precision_of(v)
        if plan is not None:
            ee, eo = plan.eta_even[:1], plan.eta_odd[:1]
        else:
            ee = np.empty(1, dtype=np.float64)
            eo = np.empty(1, dtype=DTYPE)
        threads = plan.threads if plan is not None else None
        vs = _simd_suffix(plan.simd if plan is not None else None, prec)
        meta = {} if threads is None else {"threads": threads}
        with metrics.span("aug_spmv", counters=counters, **meta):
            if isinstance(A, CSRMatrix):
                suf, args = self._csr_args(A, prec)
                if threads is not None:
                    # an (n,) interleaved complex vector is memory-
                    # identical to an (n, 1) row-major block, so the
                    # threaded path reuses the blocked mt kernel at r=1
                    getattr(lib, "repro_csr_aug_spmmv_mt" + suf + vs)(
                        A.n_rows, 1, threads, *args, _pvec(v), _pvec(w),
                        a, b, _pc(ee), _pc(eo),
                    )
                else:
                    getattr(lib, "repro_csr_aug_spmv" + suf + vs)(
                        A.n_rows, *args, _pvec(v), _pvec(w), a, b,
                        _pc(ee), _pc(eo),
                    )
            elif isinstance(A, SellMatrix):
                if threads is not None:
                    suf, (nc, c, *rest) = self._sell_args(A, prec)
                    getattr(lib, "repro_sell_aug_spmmv_mt" + suf + vs)(
                        A.n_rows, nc, c, 1, threads, *rest,
                        _pvec(v), _pvec(w), a, b, _pc(ee), _pc(eo),
                    )
                else:
                    suf, args = self._sell_args(A, prec)
                    getattr(lib, "repro_sell_aug_spmv" + suf + vs)(
                        A.n_rows, *args, _pvec(v), _pvec(w), a, b,
                        _pc(ee), _pc(eo),
                    )
            else:
                raise TypeError(f"unsupported matrix type {type(A).__name__}")
            charge_aug_spmv(A, counters, prec)
        return float(ee[0]), complex(eo[0])

    def aug_spmmv_step(
        self, A, V, W, a, b, plan: KernelPlan | None = None,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        lib = self._lib()
        V = _as_kernel_block("V", V, A.n_cols)
        W = _as_kernel_block("W", W, A.n_rows)
        _check_same_storage(V, W)
        prec = precision_of(V)
        r = V.shape[1]
        if W.shape[1] != r:
            raise ShapeError(
                f"V and W must share a block width, got {r} and {W.shape[1]}"
            )
        if plan is not None and plan.r == r:
            ee, eo = plan.eta_even, plan.eta_odd
        else:
            ee = np.empty(r, dtype=np.float64)
            eo = np.empty(r, dtype=DTYPE)
        threads = plan.threads if plan is not None else None
        vs = _simd_suffix(plan.simd if plan is not None else None, prec)
        meta = {} if threads is None else {"threads": threads}
        with metrics.span("aug_spmmv", counters=counters, **meta):
            if isinstance(A, CSRMatrix):
                suf, args = self._csr_args(A, prec)
                if threads is not None:
                    getattr(lib, "repro_csr_aug_spmmv_mt" + suf + vs)(
                        A.n_rows, r, threads, *args, _pvec(V), _pvec(W),
                        a, b, _pc(ee), _pc(eo),
                    )
                else:
                    getattr(lib, "repro_csr_aug_spmmv" + suf + vs)(
                        A.n_rows, r, *args, _pvec(V), _pvec(W), a, b,
                        _pc(ee), _pc(eo),
                    )
            elif isinstance(A, SellMatrix):
                suf, (nc, c, *rest) = self._sell_args(A, prec)
                if threads is not None:
                    getattr(lib, "repro_sell_aug_spmmv_mt" + suf + vs)(
                        A.n_rows, nc, c, r, threads, *rest,
                        _pvec(V), _pvec(W), a, b, _pc(ee), _pc(eo),
                    )
                else:
                    getattr(lib, "repro_sell_aug_spmmv" + suf + vs)(
                        A.n_rows, nc, c, r, *rest, _pvec(V), _pvec(W), a, b,
                        _pc(ee), _pc(eo),
                    )
            else:
                raise TypeError(f"unsupported matrix type {type(A).__name__}")
            charge_aug_spmmv(A, r, counters, prec)
        return ee.copy(), eo.copy()

    # -- split (task-mode) kernels -------------------------------------
    # The range/rows C kernels traverse the ORIGINAL local CSR arrays
    # with absolute row indexing (no extraction), write the phase's
    # rows of W with byte-for-byte the plain kernel's per-row
    # arithmetic, and return the phase's own eta partials.  CSR only:
    # SplitKernelPlan already rejects SELL at plan time.  The index-
    # width charge uses the WHOLE local operator's width so interior +
    # boundary partial charges still sum exactly to the unsplit charge.

    def _require_csr(self, A) -> None:
        if not isinstance(A, CSRMatrix):
            raise BackendError(
                "split (task-mode) kernels support CSR matrices only, got "
                f"{type(A).__name__}"
            )

    def aug_spmv_interior(
        self, A, v, w, a, b, plan: SplitKernelPlan,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        lib = self._lib()
        self._require_csr(A)
        v = _as_kernel_vector("v", v, A.n_cols)
        w = _as_kernel_vector("w", w, A.n_rows)
        _check_same_storage(v, w)
        prec = precision_of(v)
        ee, eo = plan.ee_interior[:1], plan.eo_interior[:1]
        threads = plan.threads
        vs = _simd_suffix(plan.simd, prec)
        meta = {} if threads is None else {"threads": threads}
        with metrics.span("aug_spmv_int", counters=counters, **meta):
            suf, args = self._csr_args(A, prec)
            if threads is not None:
                getattr(lib, "repro_csr_aug_spmmv_range_mt" + suf + vs)(
                    plan.row0, plan.row1, 1, threads, *args,
                    _pvec(v), _pvec(w), a, b, _pc(ee), _pc(eo),
                )
            else:
                getattr(lib, "repro_csr_aug_spmv_range" + suf + vs)(
                    plan.row0, plan.row1, *args, _pvec(v), _pvec(w),
                    a, b, _pc(ee), _pc(eo),
                )
            charge_aug_spmv_part(
                plan.n_interior, plan.nnz_interior, counters, "aug_spmv_int",
                prec, s_index=prec.index_bytes(A.n_cols),
            )
        return float(ee[0]), complex(eo[0])

    def aug_spmv_boundary(
        self, A, v, w, a, b, plan: SplitKernelPlan,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        lib = self._lib()
        self._require_csr(A)
        v = _as_kernel_vector("v", v, A.n_cols)
        w = _as_kernel_vector("w", w, A.n_rows)
        _check_same_storage(v, w)
        prec = precision_of(v)
        ee, eo = plan.ee_boundary[:1], plan.eo_boundary[:1]
        threads = plan.threads
        vs = _simd_suffix(plan.simd, prec)
        meta = {} if threads is None else {"threads": threads}
        with metrics.span("aug_spmv_bnd", counters=counters, **meta):
            suf, args = self._csr_args(A, prec)
            if threads is not None:
                getattr(lib, "repro_csr_aug_spmmv_rows_mt" + suf + vs)(
                    plan.n_boundary, _pi64(plan.rows), 1, threads, *args,
                    _pvec(v), _pvec(w), a, b, _pc(ee), _pc(eo),
                )
            else:
                getattr(lib, "repro_csr_aug_spmv_rows" + suf + vs)(
                    plan.n_boundary, _pi64(plan.rows), *args,
                    _pvec(v), _pvec(w), a, b, _pc(ee), _pc(eo),
                )
            charge_aug_spmv_part(
                plan.n_boundary, plan.nnz_boundary, counters, "aug_spmv_bnd",
                prec, s_index=prec.index_bytes(A.n_cols),
            )
        return float(ee[0]), complex(eo[0])

    def aug_spmmv_interior(
        self, A, V, W, a, b, plan: SplitKernelPlan,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        lib = self._lib()
        self._require_csr(A)
        V = _as_kernel_block("V", V, A.n_cols)
        W = _as_kernel_block("W", W, A.n_rows)
        _check_same_storage(V, W)
        prec = precision_of(V)
        r = V.shape[1]
        ee, eo = plan.ee_interior, plan.eo_interior
        threads = plan.threads
        vs = _simd_suffix(plan.simd, prec)
        meta = {} if threads is None else {"threads": threads}
        with metrics.span("aug_spmmv_int", counters=counters, **meta):
            suf, args = self._csr_args(A, prec)
            if threads is not None:
                getattr(lib, "repro_csr_aug_spmmv_range_mt" + suf + vs)(
                    plan.row0, plan.row1, r, threads, *args,
                    _pvec(V), _pvec(W), a, b, _pc(ee), _pc(eo),
                )
            else:
                getattr(lib, "repro_csr_aug_spmmv_range" + suf + vs)(
                    plan.row0, plan.row1, r, *args, _pvec(V), _pvec(W),
                    a, b, _pc(ee), _pc(eo),
                )
            charge_aug_spmmv_part(
                plan.n_interior, plan.nnz_interior, r, counters,
                "aug_spmmv_int", prec, s_index=prec.index_bytes(A.n_cols),
            )
        return ee.copy(), eo.copy()

    def aug_spmmv_boundary(
        self, A, V, W, a, b, plan: SplitKernelPlan,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        lib = self._lib()
        self._require_csr(A)
        V = _as_kernel_block("V", V, A.n_cols)
        W = _as_kernel_block("W", W, A.n_rows)
        _check_same_storage(V, W)
        prec = precision_of(V)
        r = V.shape[1]
        ee, eo = plan.ee_boundary, plan.eo_boundary
        threads = plan.threads
        vs = _simd_suffix(plan.simd, prec)
        meta = {} if threads is None else {"threads": threads}
        with metrics.span("aug_spmmv_bnd", counters=counters, **meta):
            suf, args = self._csr_args(A, prec)
            if threads is not None:
                getattr(lib, "repro_csr_aug_spmmv_rows_mt" + suf + vs)(
                    plan.n_boundary, _pi64(plan.rows), r, threads, *args,
                    _pvec(V), _pvec(W), a, b, _pc(ee), _pc(eo),
                )
            else:
                getattr(lib, "repro_csr_aug_spmmv_rows" + suf + vs)(
                    plan.n_boundary, _pi64(plan.rows), r, *args,
                    _pvec(V), _pvec(W), a, b, _pc(ee), _pc(eo),
                )
            charge_aug_spmmv_part(
                plan.n_boundary, plan.nnz_boundary, r, counters,
                "aug_spmmv_bnd", prec, s_index=prec.index_bytes(A.n_cols),
            )
        return ee.copy(), eo.copy()
