"""Compressed Row Storage (CRS/CSR) built from scratch.

The paper stores the topological-insulator Hamiltonian in CRS for the
SpMMV-based kernels (Section IV-A: "the CRS format (similar to SELL-1) can
be used on both architectures without drawbacks") because vectorization
happens across the block-vector width, not across matrix rows.

The container is three flat NumPy arrays:

``indptr``  (int64, n_rows+1)  row start offsets into data/indices,
``indices`` (int32, nnz)       column index of each stored entry,
``data``    (complex128, nnz)  value of each stored entry,

with entries of one row stored consecutively and (by construction here)
sorted by column. 4-byte column indices mirror the paper's in-kernel
indexing (S_i = 4); ``indptr`` is 8-byte as the paper notes global
quantities need 64-bit indices.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.util.constants import DTYPE, IDTYPE
from repro.util.errors import FormatError, ShapeError


def segment_sum(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Sum ``values`` over segments delimited by ``indptr``.

    Equivalent to ``[values[indptr[i]:indptr[i+1]].sum(axis=0) ...]`` but
    vectorized, and — unlike a bare ``np.add.reduceat`` — correct for empty
    segments (reduceat returns ``values[i]`` instead of 0 for them).

    ``values`` may be 1-D (nnz,) or 2-D (nnz, R); segments are along axis 0.
    """
    indptr = np.asarray(indptr)
    n = indptr.shape[0] - 1
    out_shape = (n,) + values.shape[1:]
    out = np.zeros(out_shape, dtype=values.dtype)
    lengths = np.diff(indptr)
    nonempty = np.nonzero(lengths > 0)[0]
    if nonempty.size == 0:
        return out
    starts = indptr[nonempty]
    if values.shape[0] == 0:
        return out
    sums = np.add.reduceat(values, starts, axis=0)
    # reduceat merges a segment with the next when consecutive starts are
    # equal; since we dropped empty segments, all starts here are strictly
    # increasing and each reduceat slot is exactly one nonempty segment —
    # except the region after the last start, which reduceat sums to the end
    # of `values`; that is exactly the last nonempty segment only if it ends
    # at len(values). Guard by trimming values to the last segment's end.
    last = nonempty[-1]
    end = indptr[last + 1]
    if end != values.shape[0]:
        sums = np.add.reduceat(values[:end], starts, axis=0)
    out[nonempty] = sums
    return out


class CSRMatrix:
    """A square-or-rectangular sparse matrix in CRS/CSR layout.

    Instances are immutable by convention: kernels never modify the three
    storage arrays. Use the classmethod constructors to build one.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: tuple[int, int],
        *,
        validate: bool = True,
    ) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=IDTYPE)
        self.data = np.ascontiguousarray(data, dtype=DTYPE)
        self.shape = (int(shape[0]), int(shape[1]))
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        rows: Iterable[int],
        cols: Iterable[int],
        vals: Iterable[complex],
        shape: tuple[int, int],
        *,
        sum_duplicates: bool = True,
        drop_zeros: bool = False,
    ) -> "CSRMatrix":
        """Assemble from coordinate triplets.

        Duplicate ``(row, col)`` entries are summed (the natural semantics
        for Hamiltonian assembly where several terms hit the same matrix
        element). Entries are sorted by (row, col).
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=DTYPE)
        if not (rows.shape == cols.shape == vals.shape):
            raise ShapeError(
                f"COO triplet arrays must have identical shapes, got "
                f"{rows.shape}, {cols.shape}, {vals.shape}"
            )
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if rows.size:
            if rows.min() < 0 or rows.max() >= n_rows:
                raise FormatError("COO row index out of range")
            if cols.min() < 0 or cols.max() >= n_cols:
                raise FormatError("COO column index out of range")
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        if sum_duplicates and rows.size:
            key_new = np.empty(rows.shape, dtype=bool)
            key_new[0] = True
            key_new[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
            group = np.cumsum(key_new) - 1
            uvals = np.zeros(int(group[-1]) + 1, dtype=DTYPE)
            np.add.at(uvals, group, vals)
            rows, cols, vals = rows[key_new], cols[key_new], uvals
        if drop_zeros and vals.size:
            keep = vals != 0
            rows, cols, vals = rows[keep], cols[keep], vals[keep]
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, cols.astype(IDTYPE), vals, (n_rows, n_cols))

    @classmethod
    def from_dense(cls, dense: np.ndarray, *, tol: float = 0.0) -> "CSRMatrix":
        """Build from a dense 2-D array, keeping entries with ``|a| > tol``."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ShapeError(f"dense matrix must be 2-D, got shape {dense.shape}")
        rows, cols = np.nonzero(np.abs(dense) > tol)
        return cls.from_coo(rows, cols, dense[rows, cols], dense.shape)

    @classmethod
    def identity(cls, n: int) -> "CSRMatrix":
        """The n x n identity matrix."""
        idx = np.arange(n)
        return cls.from_coo(idx, idx, np.ones(n), (n, n))

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indptr[-1])

    @property
    def nnz_per_row(self) -> np.ndarray:
        """Stored entries in each row (int64 array of length n_rows)."""
        return np.diff(self.indptr)

    @property
    def nnzr(self) -> float:
        """Average stored entries per row — the paper's ``N_nzr``."""
        return self.nnz / self.n_rows if self.n_rows else 0.0

    def memory_bytes(self, s_d: int = 16, s_i: int = 4) -> int:
        """Storage footprint: data + in-kernel indices (indptr excluded,
        matching the paper's per-entry accounting of N_nz*(S_d + S_i))."""
        return self.nnz * (s_d + s_i)

    # ------------------------------------------------------------------
    # conversions and derived matrices
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array (small matrices / tests only)."""
        out = np.zeros(self.shape, dtype=DTYPE)
        rows = np.repeat(np.arange(self.n_rows), self.nnz_per_row)
        np.add.at(out, (rows, self.indices.astype(np.int64)), self.data)
        return out

    def transpose_conj(self) -> "CSRMatrix":
        """Return the conjugate transpose A^H as a new CSR matrix."""
        rows = np.repeat(np.arange(self.n_rows), self.nnz_per_row)
        return CSRMatrix.from_coo(
            self.indices.astype(np.int64),
            rows,
            np.conj(self.data),
            (self.n_cols, self.n_rows),
            sum_duplicates=False,
        )

    def diagonal(self) -> np.ndarray:
        """Extract the main diagonal (zeros where not stored)."""
        n = min(self.shape)
        diag = np.zeros(n, dtype=DTYPE)
        rows = np.repeat(np.arange(self.n_rows), self.nnz_per_row)
        on_diag = rows == self.indices
        dr = rows[on_diag]
        keep = dr < n
        diag[dr[keep]] = self.data[on_diag][keep]
        return diag

    def scale_shift(self, a: float, b: float) -> "CSRMatrix":
        """Return ``a * (A - b * Identity)`` as a new CSR matrix.

        This materializes the paper's rescaled operator H~ = a(H - b 1);
        the fused kernels instead apply the shift/scale on the fly and never
        build this matrix — it exists for reference implementations/tests.
        """
        if self.n_rows != self.n_cols:
            raise ShapeError("scale_shift requires a square matrix")
        rows = np.repeat(np.arange(self.n_rows), self.nnz_per_row)
        n = self.n_rows
        all_rows = np.concatenate([rows, np.arange(n)])
        all_cols = np.concatenate([self.indices.astype(np.int64), np.arange(n)])
        all_vals = np.concatenate(
            [a * self.data, np.full(n, -a * b, dtype=DTYPE)]
        )
        return CSRMatrix.from_coo(all_rows, all_cols, all_vals, self.shape)

    def extract_rows(self, row_start: int, row_stop: int) -> "CSRMatrix":
        """Slice a contiguous row block (used for distributed partitioning).

        Columns keep their *global* indexing; callers remap them.
        """
        if not (0 <= row_start <= row_stop <= self.n_rows):
            raise ShapeError(
                f"row slice [{row_start}, {row_stop}) outside [0, {self.n_rows})"
            )
        lo = self.indptr[row_start]
        hi = self.indptr[row_stop]
        return CSRMatrix(
            self.indptr[row_start : row_stop + 1] - lo,
            self.indices[lo:hi].copy(),
            self.data[lo:hi].copy(),
            (row_stop - row_start, self.n_cols),
        )

    def remap_columns(self, mapping: np.ndarray, n_cols: int) -> "CSRMatrix":
        """Return a copy with ``indices[i] -> mapping[indices[i]]``.

        ``mapping`` must be defined (>= 0) for every referenced column.
        Used to convert global column indices into local+halo indices.
        """
        new_idx = mapping[self.indices.astype(np.int64)]
        if new_idx.size and new_idx.min() < 0:
            raise FormatError("column remap hit an unmapped (-1) column")
        return CSRMatrix(
            self.indptr.copy(), new_idx.astype(IDTYPE), self.data.copy(),
            (self.n_rows, n_cols),
        )

    # ------------------------------------------------------------------
    # analysis helpers
    # ------------------------------------------------------------------
    def is_hermitian(self, tol: float = 1e-12) -> bool:
        """Check A == A^H entrywise within ``tol`` (structural + values)."""
        if self.n_rows != self.n_cols:
            return False
        ah = self.transpose_conj()
        if not np.array_equal(ah.indptr, self.indptr):
            return False
        if not np.array_equal(ah.indices, self.indices):
            return False
        return bool(np.allclose(ah.data, self.data, atol=tol, rtol=0.0))

    def gershgorin_bounds(self) -> tuple[float, float]:
        """Real-spectrum enclosure from Gershgorin's circle theorem.

        For a Hermitian matrix every eigenvalue lies in
        ``[min_i(c_i - r_i), max_i(c_i + r_i)]`` with ``c_i = Re(A_ii)`` and
        ``r_i`` the off-diagonal absolute row sum. This is the paper's
        cheap option for determining the KPM rescaling (Section II).
        """
        if self.n_rows != self.n_cols:
            raise ShapeError("gershgorin_bounds requires a square matrix")
        rows = np.repeat(np.arange(self.n_rows), self.nnz_per_row)
        absdata = np.abs(self.data)
        rowsum = np.zeros(self.n_rows)
        np.add.at(rowsum, rows, absdata)
        centers = self.diagonal().real
        radii = rowsum - np.abs(self.diagonal())
        return float(np.min(centers - radii)), float(np.max(centers + radii))

    def bandwidth(self) -> int:
        """Maximum |row - col| over stored entries (0 for empty matrices)."""
        if self.nnz == 0:
            return 0
        rows = np.repeat(np.arange(self.n_rows), self.nnz_per_row)
        return int(np.max(np.abs(rows - self.indices)))

    def _validate(self) -> None:
        if self.indptr.ndim != 1 or self.indptr.shape[0] != self.n_rows + 1:
            raise FormatError(
                f"indptr must have length n_rows+1={self.n_rows + 1}, "
                f"got {self.indptr.shape}"
            )
        if self.indptr[0] != 0:
            raise FormatError("indptr[0] must be 0")
        if np.any(np.diff(self.indptr) < 0):
            raise FormatError("indptr must be non-decreasing")
        if self.indptr[-1] != self.indices.shape[0]:
            raise FormatError(
                f"indptr[-1]={self.indptr[-1]} does not match "
                f"len(indices)={self.indices.shape[0]}"
            )
        if self.indices.shape != self.data.shape:
            raise FormatError("indices and data must have equal length")
        if self.indices.size and (
            self.indices.min() < 0 or int(self.indices.max()) >= self.n_cols
        ):
            raise FormatError("column index out of range")

    def __repr__(self) -> str:
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"nnzr={self.nnzr:.2f})"
        )
