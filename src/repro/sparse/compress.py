"""Index compression and typed kernel packs for mixed-precision execution.

After the distributed partition renumbers columns into [local | halo]
order (:func:`repro.dist.halo.partition_matrix`), every column index of
a rank-local operator lies in ``[0, n_local + n_halo)`` — a range that
fits in uint16 for any realistic per-rank block (and for serial
operators of up to 65,536 columns).  The narrow precision profiles
exploit this: their kernels stream 2-byte indices, cutting the S_i part
of the per-nonzero traffic in half.  Wider operators fall back to the
4-byte int32 indices transparently — the *profile* stays the same, only
the realized index width (and its byte charge) differs.

The typed kernel pack is the storage the kernels actually stream for a
given profile: a (values, indices) pair in the profile's dtypes.  Packs
are built once per (matrix, layout) and cached on the matrix object —
both :class:`~repro.sparse.csr.CSRMatrix` and
:class:`~repro.sparse.sell.SellMatrix` are immutable by convention, the
same convention the scipy-handle and native-argument caches already
rely on.  The fp64 profile's pack is the matrix's own arrays (no copy),
so the baseline path is untouched.
"""

from __future__ import annotations

import numpy as np

from repro.util.constants import IDTYPE
from repro.util.precision import FP64, UINT16_MAX_COLS, Precision

__all__ = [
    "compress_indices",
    "decompress_indices",
    "kernel_pack",
    "narrow_index_dtype",
]


def narrow_index_dtype(n_cols: int):
    """Narrowest index dtype able to address ``n_cols`` columns.

    uint16 holds indices 0..65535, i.e. up to exactly 65,536 columns;
    anything wider falls back to the kernels' int32.
    """
    return np.uint16 if n_cols <= UINT16_MAX_COLS else IDTYPE


def compress_indices(indices: np.ndarray, n_cols: int) -> np.ndarray:
    """Return ``indices`` in the narrowest width addressing ``n_cols``.

    The input must already be column indices of an ``n_cols``-wide
    operator (values in ``[0, n_cols)``); out-of-range values raise
    rather than silently wrapping.  When no narrowing is possible the
    original int32 array is returned uncopied — the 4-byte fallback.
    """
    dt = narrow_index_dtype(n_cols)
    if np.dtype(dt) == np.dtype(indices.dtype):
        return indices
    if indices.size and (int(indices.max()) >= n_cols
                         or int(indices.min()) < 0):
        raise ValueError(
            f"column index out of range for n_cols={n_cols}; refusing to "
            "compress"
        )
    return np.ascontiguousarray(indices, dtype=dt)


def decompress_indices(indices: np.ndarray) -> np.ndarray:
    """Widen compressed indices back to the kernels' int32."""
    if np.dtype(indices.dtype) == np.dtype(IDTYPE):
        return indices
    return np.ascontiguousarray(indices, dtype=IDTYPE)


def kernel_pack(A, precision: Precision) -> tuple[np.ndarray, np.ndarray]:
    """(values, indices) streamed by the kernels for this profile.

    ``A`` is a :class:`CSRMatrix` or :class:`SellMatrix` (anything with
    contiguous ``data``/``indices`` arrays and ``n_cols``).  fp64
    returns the matrix's own arrays; narrow profiles build complex64
    values and uint16 indices (when ``n_cols`` allows) once and cache
    them on the matrix.
    """
    if precision is FP64 or precision.is_fp64:
        return A.data, A.indices
    idx_dt = precision.index_dtype(A.n_cols)
    key = (np.dtype(precision.value_dtype).str, np.dtype(idx_dt).str)
    cache = getattr(A, "_kernel_pack_cache", None)
    if cache is None:
        cache = {}
        A._kernel_pack_cache = cache
    pack = cache.get(key)
    if pack is None:
        values = np.ascontiguousarray(A.data, dtype=precision.value_dtype)
        if np.dtype(idx_dt) == np.dtype(A.indices.dtype):
            indices = A.indices
        else:
            indices = compress_indices(A.indices, A.n_cols)
        pack = (values, indices)
        cache[key] = pack
    return pack
