"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``dos``     compute and print the DOS of a TI sample (or a .mtx file),
``info``    structural analysis of the TI matrix or a .mtx file,
``report``  the full model-driven performance report,
``scaling`` weak-scaling prediction table for the Piz Daint model,
``tune``    offline configuration search; saves a tuned profile that
            ``dos --engine auto`` consults.
"""

from __future__ import annotations

import argparse
import sys


def _add_matrix_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--nx", type=int, default=16)
    p.add_argument("--ny", type=int, default=0, help="default: same as --nx")
    p.add_argument("--nz", type=int, default=8)
    p.add_argument("--mtx", type=str, default=None,
                   help="read the matrix from a MatrixMarket file instead")


def _load_matrix(args):
    from repro.physics import build_topological_insulator
    from repro.sparse.io import read_matrix_market

    if args.mtx:
        return read_matrix_market(args.mtx)
    ny = args.ny or args.nx
    h, _ = build_topological_insulator(args.nx, ny, args.nz)
    return h


def _parse_threads(raw):
    """``--threads`` value: None, 'auto', or a positive int."""
    if raw is None or raw == "auto":
        return raw
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"--threads must be an integer or 'auto', got {raw!r}"
        ) from exc
    if value < 1:
        raise ValueError(f"--threads must be >= 1, got {value}")
    return value


def cmd_dos(args) -> int:
    import numpy as np

    from repro.core.reconstruct import integrate_density
    from repro.core.solver import KPMSolver
    from repro.obs import NULL_METRICS, MetricsRegistry, Trace
    from repro.sparse.backend import get_backend
    from repro.util.counters import NULL_COUNTERS, PerfCounters
    from repro.util.errors import BackendError

    h = _load_matrix(args)
    print(f"matrix: {h.n_rows:,} rows, {h.nnz:,} nnz ({h.nnzr:.2f}/row)")
    try:
        threads = _parse_threads(args.threads)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.engine == "auto":
        # consult the tuned profile store for this (machine, matrix);
        # the tuned *execution* knobs apply (backend, format, workers,
        # weights, overlap, threads, simd) — never precision or the
        # block
        # width, which belong to the physics the user asked for.
        from repro.dist.tune import lookup

        tuned = lookup(h, args.profile)
        if tuned is None:
            print("tuned profile: none for this matrix/machine "
                  "(run 'repro tune'); using serial aug_spmmv defaults")
            args.engine = "aug_spmmv"
        else:
            print(f"tuned profile: backend={tuned.backend} fmt={tuned.fmt} "
                  f"workers={tuned.workers} overlap={tuned.overlap} "
                  f"threads={tuned.threads} simd={tuned.simd}")
            args.engine = (tuned.engine if tuned.workers > 1
                           else "aug_spmmv")
            args.backend = tuned.backend
            args.workers = tuned.workers
            args.overlap = "on" if tuned.overlap == "on" else "off"
            if threads is None:
                threads = tuned.threads
            if args.simd is None:
                args.simd = tuned.simd
            if tuned.weights is not None and not args.weights:
                args.weights = ",".join(str(w) for w in tuned.weights)
            if tuned.fmt == "sell" and tuned.workers == 1:
                # the tuner probes distributed SELL configs by
                # converting each rank's block after partitioning, but
                # this solver path partitions the global operator
                # itself — apply the format knob only to serial runs
                from repro.sparse.sell import SellMatrix

                if not isinstance(h, SellMatrix):
                    h = SellMatrix(h, chunk_height=tuned.chunk,
                                   sigma=tuned.sigma)
    try:
        backend = get_backend(args.backend)
    except BackendError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"kernel backend: {backend.name}")
    weights = None
    if args.weights:
        try:
            weights = [float(w) for w in args.weights.split(",")]
        except ValueError:
            print(f"error: --weights must be comma-separated numbers, "
                  f"got {args.weights!r}", file=sys.stderr)
            return 1
    # --metrics / --trace turn on the observability layer: counters for
    # the Table-I traffic accounting, a registry for per-kernel spans,
    # and (with --trace) one JSONL record per span.
    observe = args.metrics or args.trace
    trace = Trace(args.trace) if args.trace else None
    counters = PerfCounters() if observe else NULL_COUNTERS
    metrics = MetricsRegistry(trace=trace) if observe else NULL_METRICS
    # --retries / --fault-plan / --checkpoint-every turn on the
    # resilience supervisor: supervised retries, checkpoint recovery,
    # and graceful engine degradation.
    resil = None
    if (args.retries or args.fault_plan or args.checkpoint_every
            or args.stall_timeout is not None):
        from repro.resil import FaultPlan, Resilience, RetryPolicy

        try:
            plan = (FaultPlan.parse(args.fault_plan, seed=args.seed)
                    if args.fault_plan else None)
        except ValueError as exc:
            print(f"error: bad --fault-plan: {exc}", file=sys.stderr)
            return 1
        mp_timeouts = None
        if args.stall_timeout is not None:
            from repro.dist.mp import MpTimeouts

            mp_timeouts = MpTimeouts(stall=args.stall_timeout)
        resil = Resilience(
            policy=RetryPolicy(max_attempts=args.retries + 1),
            checkpoint_every=args.checkpoint_every,
            checkpoint_path=args.checkpoint_path,
            degrade=args.degrade,
            fault_plan=plan,
            mp_timeouts=mp_timeouts,
        )
    # --rebalance / --elastic turn on elastic distributed execution:
    # grid-eta mode (partition-independent moments), live skew
    # rebalancing, and planned membership changes at boundaries.
    rebalance = None
    membership = None
    if args.rebalance is not None or args.elastic:
        from repro.dist.elastic import MembershipPlan, resolve_rebalance

        try:
            rebalance = resolve_rebalance(
                args.rebalance if args.rebalance is not None else "auto"
            )
            if args.elastic:
                membership = MembershipPlan.parse(args.elastic)
                if rebalance is None:
                    # a membership plan needs the elastic driver even
                    # with rebalancing itself switched off
                    rebalance = resolve_rebalance("auto")
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    # sim/mp select a *distributed* engine; the rank-local kernels are
    # always the stage-2 blocked ones (the paper's production scheme).
    distributed = args.engine in ("sim", "mp")
    try:
        solver = KPMSolver(
            h, n_moments=args.moments, n_vectors=args.vectors, seed=args.seed,
            engine="aug_spmmv" if distributed else args.engine, backend=backend,
            dist_engine=args.engine if distributed else None,
            workers=args.workers, weights=weights, overlap=args.overlap,
            counters=counters, metrics=metrics, resilience=resil,
            precision=args.precision, threads=threads, simd=args.simd,
            rebalance=rebalance, membership=membership,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.precision != "fp64":
        prec = solver.precision
        print(f"precision: {prec.name} (values {np.dtype(prec.value_dtype).name}, "
              f"vectors {np.dtype(prec.vector_dtype).name}"
              f"{' pairs' if prec.half_vectors else ''}, fp64 dot accumulation)")
    if distributed:
        from repro.dist.overlap import resolve_overlap

        mode = "on" if resolve_overlap(args.overlap, args.workers) else "off"
        print(f"distributed engine: {args.engine} ({args.workers} workers, "
              f"overlap {mode})")
    if rebalance is not None:
        bits = [f"grid={rebalance.grid}",
                f"threshold={rebalance.threshold:g}",
                f"interval={rebalance.interval}"]
        if membership is not None:
            bits.append(f"plan '{membership}'")
        print("elastic: rebalancing on (" + ", ".join(bits) + ")")
    if threads is not None:
        print(f"kernel threads: {threads}"
              + (" per rank" if distributed else ""))
    if args.simd is not None:
        from repro.sparse.backend.native import simd_available

        print(f"simd kernels: {args.simd} (compiled "
              f"{'available' if simd_available() else 'unavailable'})")
    if resil is not None:
        bits = [f"retries={args.retries}"]
        if args.checkpoint_every:
            bits.append(f"checkpoint every {args.checkpoint_every} iterations")
        if args.fault_plan:
            bits.append(f"fault plan '{args.fault_plan}'")
        print("resilience: supervised (" + ", ".join(bits) + ")")
    try:
        dos = solver.dos()
    except Exception as exc:
        if resil is None:
            raise
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if trace is not None:
            trace.close()
    if solver.resilience_report is not None:
        print(solver.resilience_report.summary())
    if solver.elastic_report is not None:
        print(solver.elastic_report.summary())
    if distributed and solver.world is not None:
        log = solver.world.log
        phases = ", ".join(
            f"{k}: {v:,} B" for k, v in sorted(log.bytes_by_phase().items())
        )
        print(f"communication: {log.n_messages} messages, "
              f"{log.total_bytes:,} bytes ({phases})")
    total = integrate_density(dos.energies, dos.rho)
    print(f"DOS integral: {total:,.1f} (N = {h.n_rows:,})")
    step = max(len(dos.energies) // args.points, 1)
    print(f"{'E':>12} {'rho(E)':>14}")
    for e, r in zip(dos.energies[::step], dos.rho[::step]):
        print(f"{e:>12.4f} {r:>14.5g}")
    if observe:
        from repro.perf.report import measured_vs_model_section

        # Distributed runs use the stage-2 kernels and their merged
        # counters equal the serial charge, so the same model applies.
        eng = "aug_spmmv" if distributed else args.engine
        print("\n== MEASURED vs MODEL ==")
        print(measured_vs_model_section(
            h, counters, args.moments, args.vectors, eng, metrics=metrics,
            precision=args.precision,
        ), end="")
        print("\n== METRICS ==")
        print(metrics.summary())
    if trace is not None:
        print(f"\ntrace: {trace.n_records} spans -> {trace.path}")
    return 0


def cmd_info(args) -> int:
    from repro.sparse.stats import analyze, row_length_histogram, stencil_reuse_rows

    h = _load_matrix(args)
    stats = analyze(h)
    print(f"shape:         {stats.n_rows} x {stats.n_cols}")
    print(f"nnz:           {stats.nnz:,} "
          f"({stats.nnzr_mean:.2f}/row, min {stats.nnzr_min}, "
          f"max {stats.nnzr_max})")
    print(f"bandwidth:     {stats.bandwidth}")
    print(f"diagonals:     {len(stats.diagonals)} carrying "
          f"{stats.diagonal_coverage:.1%} of nnz")
    print(f"corner wraps:  {stats.has_corner_entries} "
          "(periodic boundary diagonals)")
    print(f"stencil-like:  {stats.is_stencil_like}")
    print(f"reuse window:  {stencil_reuse_rows(h):.0f} rows")
    hist = row_length_histogram(h)
    print("row lengths:   "
          + ", ".join(f"{l}:{c}" for l, c in sorted(hist.items())))
    return 0


def cmd_serve(args) -> int:
    """Multi-tenant serving drill: concurrent clients, one server.

    Phase 1 submits ``--requests`` overlapping DOS queries from several
    tenant threads against one operator and lets the worker thread
    coalesce them.  Phase 2 sweeps coalescing widths 1/2/4/8
    synchronously and reports the measured traffic per request (the
    Eq. 5-7 amortization).  Phase 3 replays a request with a different
    damping kernel (a kernel-free cache hit).  With ``--fault-plan``
    the phase-1 batches run under a batch-scoped supervisor.
    ``--check`` turns the expectations into hard assertions.
    """
    import threading

    from repro.perf.report import expected_counters
    from repro.resil import FaultPlan, Resilience, RetryPolicy
    from repro.serve import HamiltonianSpec, KPMServer, Request

    ny = args.ny or args.nx
    spec = HamiltonianSpec(
        "topological_insulator", {"nx": args.nx, "ny": ny, "nz": args.nz}
    )
    resilience = None
    if args.fault_plan or args.retries:
        resilience = Resilience(
            policy=RetryPolicy(max_attempts=max(args.retries, 2)),
            fault_plan=(FaultPlan.parse(args.fault_plan, seed=args.seed)
                        if args.fault_plan else None),
        )
    engine = None if args.engine == "serial" else args.engine
    try:
        threads = _parse_threads(args.threads)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    # -- phase 1: concurrent tenants against the worker thread ---------
    srv = KPMServer(
        max_width=args.max_width, engine=engine, backend=args.backend,
        workers=args.workers, threads=threads, simd=args.simd,
        resilience=resilience, linger=0.05, stream_every=0,
    )
    tickets = []
    t_lock = threading.Lock()

    def client(tenant: str, seeds: list[int]) -> None:
        for s in seeds:
            t = srv.submit(Request(
                spec, n_moments=args.moments, n_vectors=1, seed=s,
                tenant=tenant, priority=int(tenant[-1]) % 2,
            ))
            with t_lock:
                tickets.append(t)

    n_req = args.requests
    seeds = list(range(n_req))
    threads = [
        threading.Thread(target=client, args=(f"tenant{i}", seeds[i::3]))
        for i in range(3)
    ]
    with srv:
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        results = [t.result(timeout=600.0) for t in tickets]
    widths = [t.via for t in tickets if isinstance(t.via, int)]
    max_seen = max(widths) if widths else 0
    print(f"phase 1: {n_req} overlapping requests from 3 tenants -> "
          f"{srv.metrics.counters.get('serve.batches', 0):.0f} batches, "
          f"max coalesced width {max_seen}")
    assert len(results) == n_req

    # -- phase 2: width sweep, measured traffic per request ------------
    print(f"\nphase 2: traffic per request vs coalescing width "
          f"(M = {args.moments}, serial accounting)")
    print(f"{'width':>6} {'measured B/req':>15} {'model B/req':>13} "
          f"{'exact':>6}")
    per_request = []
    H = None
    for w in (1, 2, 4, 8):
        s2 = KPMServer(max_width=w)
        for s in range(w):
            s2.submit(Request(spec, n_moments=args.moments,
                              n_vectors=1, seed=s))
        s2.step()
        if H is None:
            H, _model, _scale = s2.operator(spec)
        _batch, counters = s2.last_batches[0]
        model = expected_counters(H, args.moments, w)
        bpr = counters.bytes_total / w
        exact = counters.bytes_total == model.bytes_total \
            and counters.flops == model.flops
        per_request.append(bpr)
        print(f"{w:>6} {bpr:>15,.0f} {model.bytes_total / w:>13,.0f} "
              f"{'yes' if exact else 'NO':>6}")
        if args.check and not exact:
            print("CHECK FAILED: measured != analytic counters")
            return 1
    falling = all(b < a for a, b in zip(per_request, per_request[1:]))
    print(f"traffic per request strictly decreasing: "
          f"{'yes' if falling else 'NO'}")

    # -- phase 3: kernel-free cache hit --------------------------------
    t_hit = srv.submit(Request(spec, n_moments=args.moments, n_vectors=1,
                               seed=0, kernel="lorentz"))
    hits = srv.cache.stats()["hits"]
    print(f"\nphase 3: re-query with kernel='lorentz' -> via={t_hit.via!r}, "
          f"cache hits = {hits}")

    print("\nserver metrics:")
    print(srv.metrics.summary())

    if args.check:
        failures = []
        if len(tickets) < 8:
            failures.append(f"only {len(tickets)} overlapping requests (< 8)")
        if max_seen < 2:
            failures.append(f"max coalesced width {max_seen} < 2")
        if hits < 1:
            failures.append("no cache hits")
        if not falling:
            failures.append("traffic per request not strictly decreasing")
        if resilience is not None and args.fault_plan:
            retries = srv.metrics.counters.get("serve.batch.retries", 0)
            if retries < 1:
                failures.append("fault plan given but no batch retries seen")
        if failures:
            print("CHECK FAILED: " + "; ".join(failures))
            return 1
        print("CHECK PASSED")
    return 0


def cmd_tune(args) -> int:
    """Offline configuration search; persists the tuned profile."""
    from repro.dist.tune import (
        DEFAULT_CONFIG,
        TuneSpace,
        default_profile_path,
        save_profile,
        tune,
    )

    h = _load_matrix(args)
    print(f"matrix: {h.n_rows:,} rows, {h.nnz:,} nnz ({h.nnzr:.2f}/row)")

    def parse_list(raw, kind):
        out = []
        for tok in raw.split(","):
            tok = tok.strip()
            out.append(None if tok in ("none", "") else kind(tok))
        return tuple(out)

    try:
        space = TuneSpace(
            workers=parse_list(args.workers_list, int),
            threads=parse_list(args.threads_list, int),
            rs=parse_list(args.vectors_list, int),
            simds=tuple(args.simd_list.split(",")),
            precisions=tuple(args.precisions.split(",")),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    def log(cfg, seconds):
        mark = " (default)" if cfg == DEFAULT_CONFIG else ""
        print(f"  {seconds:>9.4f}s  fmt={cfg.fmt:<4} R={cfg.r:<3} "
              f"workers={cfg.workers} overlap={cfg.overlap:<3} "
              f"threads={cfg.threads!s:<4} simd={cfg.simd:<4} "
              f"backend={cfg.backend}{mark}")

    print(f"probing: M={args.probe_moments}, best of {args.repeats} "
          f"repeat(s) per candidate")
    result = tune(
        h, space=space, n_random=args.random, n_measure=args.measure,
        greedy_rounds=args.greedy, n_moments=args.probe_moments,
        seed=args.seed, repeats=args.repeats, log=log,
    )
    c = result.config
    print(f"\nbest: fmt={c.fmt} (C={c.chunk}, sigma={c.sigma}) R={c.r} "
          f"workers={c.workers} overlap={c.overlap} threads={c.threads} "
          f"simd={c.simd} backend={c.backend} precision={c.precision}")
    print(f"measured {result.seconds:.4f}s vs untuned default "
          f"{result.baseline_seconds:.4f}s -> speedup {result.speedup:.2f}x "
          f"({len(result.evaluated)} candidates measured)")
    path = args.profile if args.profile else default_profile_path()
    saved = save_profile(h, result, path)
    print(f"profile saved: {saved} [{result.signature}]")
    print("use it with: repro dos --engine auto"
          + (f" --profile {saved}" if args.profile else ""))
    return 0


def cmd_report(args) -> int:
    from repro.perf.report import full_report

    print(
        full_report(
            nx=args.nx, ny=args.ny or args.nx, nz=args.nz, r=args.vectors,
            m=args.moments, nodes=args.nodes,
        )
    )
    return 0


def cmd_scaling(args) -> int:
    from repro.dist.scaling_model import ClusterModel

    cm = ClusterModel(r=args.vectors)
    nodes = [int(n) for n in args.nodes_list.split(",")]
    print(f"{'nodes':>7} {'case':>8} {'domain':>20} "
          f"{'Tflop/s':>9} {'eff':>7}")
    for case in ("square", "bar"):
        try:
            rows = cm.weak_scaling(case, nodes, m=args.moments)
        except ValueError as exc:
            print(f"  ({case}: {exc})", file=sys.stderr)
            continue
        for row in rows:
            print(
                f"{int(row['nodes']):>7} {case:>8} "
                f"{str(row['domain']):>20} {row['tflops']:>9.2f} "
                f"{row['efficiency']:>7.1%}"
            )
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro.dist.overlap import OVERLAP_CHOICES
    from repro.sparse.backend import BACKEND_CHOICES
    from repro.util.precision import PRECISION_CHOICES

    parser = argparse.ArgumentParser(
        prog="repro",
        description="KPM performance-engineering reproduction (IPDPS'15)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("dos", help="compute a density of states")
    _add_matrix_args(p)
    p.add_argument("--moments", type=int, default=512)
    p.add_argument("--vectors", type=int, default=8)
    p.add_argument("--points", type=int, default=24,
                   help="rows of the printed table")
    p.add_argument("--engine", default="aug_spmmv",
                   choices=["naive", "aug_spmv", "aug_spmmv", "sim", "mp",
                            "auto"],
                   help="serial moment engine (paper stages 0/1/2), a "
                        "distributed run ('sim' = sequential SPMD "
                        "simulator, 'mp' = real worker processes over "
                        "shared memory), or 'auto' = apply the tuned "
                        "profile saved by 'repro tune'")
    p.add_argument("--workers", type=int, default=2,
                   help="rank count for --engine sim|mp")
    p.add_argument("--threads", type=str, default=None, metavar="N",
                   help="intra-rank kernel threads for the native backend "
                        "(an integer, or 'auto' = cores/workers per rank); "
                        "fp64 results are bitwise identical at every "
                        "thread count")
    p.add_argument("--simd", default=None, choices=["auto", "on", "off"],
                   help="native AVX2/FMA vectorized kernels: 'auto' (use "
                        "when compiled in), 'on' (request; scalar fallback "
                        "when unavailable), 'off' (scalar); fp64 results "
                        "are bitwise identical either way")
    p.add_argument("--profile", type=str, default=None, metavar="FILE",
                   help="tuned-profile store consulted by --engine auto "
                        "(default: $REPRO_TUNE_PROFILE or "
                        "~/.cache/repro/tuned.json)")
    p.add_argument("--overlap", default="auto", choices=list(OVERLAP_CHOICES),
                   help="communication/computation overlap for sim|mp "
                        "(task-mode pipelining); auto = on with >1 rank")
    p.add_argument("--weights", type=str, default=None,
                   help="comma-separated per-rank partition weights "
                        "(default: equal split)")
    p.add_argument("--rebalance", type=str, default=None, metavar="MODE",
                   help="live skew rebalancing for --engine sim|mp: 'off', "
                        "'auto', or an imbalance threshold such as 0.4 "
                        "(the (max-min)/mean busy-time spread that "
                        "triggers a repartition); runs in grid-eta mode, "
                        "so repartitioning never changes the fp64 moments")
    p.add_argument("--elastic", type=str, default=None, metavar="PLAN",
                   help="planned worker membership changes at iteration "
                        "boundaries, e.g. 'join:m=8;leave:m=16,rank=0' "
                        "(implies --rebalance auto when not given)")
    p.add_argument("--backend", default="auto", choices=list(BACKEND_CHOICES),
                   help="kernel backend (auto: native C kernels when a "
                        "compiler is available, else numpy)")
    p.add_argument("--precision", default="fp64",
                   choices=list(PRECISION_CHOICES),
                   help="storage profile: fp64 (baseline), fp32 (complex64 "
                        "values+vectors, compressed indices, fp64 dot "
                        "accumulation), fp16v (float16 pair vectors, fp32 "
                        "compute)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--retries", type=int, default=0,
                   help="supervised retries per engine before degrading "
                        "(any value > 0 turns the resilience supervisor on)")
    p.add_argument("--fault-plan", type=str, default=None, metavar="PLAN",
                   help="inject planned faults, e.g. 'crash:rank=1,m=8' or "
                        "'stall:rank=0,m=4;corrupt-ckpt:attempt=2' "
                        "(kinds: crash, raise, stall, slow, corrupt-halo, "
                        "corrupt-ckpt)")
    p.add_argument("--checkpoint-every", type=int, default=0, metavar="K",
                   help="checkpoint the recurrence state every K inner "
                        "iterations (atomic .npz; enables crash recovery)")
    p.add_argument("--checkpoint-path", type=str, default=None, metavar="FILE",
                   help="checkpoint file (default: a temporary file removed "
                        "on success)")
    p.add_argument("--stall-timeout", type=float, default=None, metavar="S",
                   help="declare an mp worker wedged after S seconds "
                        "without a heartbeat (default: 120)")
    p.add_argument("--no-degrade", dest="degrade", action="store_false",
                   help="fail instead of degrading mp -> sim -> serial "
                        "(and native -> numpy) after exhausted retries")
    p.add_argument("--metrics", action="store_true",
                   help="record per-kernel wall-time spans and Table-I "
                        "traffic; print the measured-vs-model report")
    p.add_argument("--trace", type=str, default=None, metavar="FILE",
                   help="write one JSONL record per instrumented span to "
                        "FILE (implies the --metrics instrumentation)")
    p.set_defaults(fn=cmd_dos)

    p = sub.add_parser(
        "serve",
        help="multi-tenant serving drill: coalescing, caching, traffic",
    )
    p.add_argument("--nx", type=int, default=8)
    p.add_argument("--ny", type=int, default=0, help="default: same as --nx")
    p.add_argument("--nz", type=int, default=4)
    p.add_argument("--moments", type=int, default=128)
    p.add_argument("--requests", type=int, default=8,
                   help="overlapping client requests in phase 1")
    p.add_argument("--max-width", type=int, default=8,
                   help="coalescing width cap (columns per batch)")
    p.add_argument("--engine", default="serial",
                   choices=["serial", "sim", "mp"],
                   help="batch execution engine")
    p.add_argument("--workers", type=int, default=2,
                   help="rank count for --engine sim|mp")
    p.add_argument("--threads", type=str, default=None, metavar="N",
                   help="intra-rank kernel threads per batch (integer or "
                        "'auto'); bitwise-invariant under fp64, so "
                        "coalescing stays invisible threaded or not")
    p.add_argument("--simd", default=None, choices=["auto", "on", "off"],
                   help="native vectorized kernels per batch "
                        "(bitwise-invariant under fp64, like --threads)")
    p.add_argument("--backend", default="auto", choices=list(BACKEND_CHOICES))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--retries", type=int, default=0,
                   help="batch-scoped supervised retries (> 0 enables the "
                        "resilience supervisor per batch)")
    p.add_argument("--fault-plan", type=str, default=None, metavar="PLAN",
                   help="inject planned faults into batch solves "
                        "(same syntax as 'dos --fault-plan')")
    p.add_argument("--check", action="store_true",
                   help="assert coalescing width >= 2, cache hits > 0, and "
                        "strictly falling traffic per request; exit 1 on "
                        "any failure")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "tune",
        help="offline configuration search; saves the tuned profile "
             "that 'dos --engine auto' consults",
    )
    _add_matrix_args(p)
    p.add_argument("--random", type=int, default=8,
                   help="random candidates sampled from the space")
    p.add_argument("--measure", type=int, default=5,
                   help="most promising candidates (by the analytic "
                        "traffic model) actually measured")
    p.add_argument("--greedy", type=int, default=2,
                   help="greedy single-knob refinement rounds")
    p.add_argument("--probe-moments", type=int, default=32,
                   help="moments per probe measurement")
    p.add_argument("--repeats", type=int, default=1,
                   help="probe repeats per candidate (best is scored)")
    p.add_argument("--workers-list", type=str, default="1,2",
                   help="comma-separated rank counts to search")
    p.add_argument("--threads-list", type=str, default="none,2,4",
                   help="comma-separated thread counts to search "
                        "('none' = sequential kernels)")
    p.add_argument("--vectors-list", type=str, default="4,8,16",
                   help="comma-separated block widths R to search")
    p.add_argument("--simd-list", type=str, default="auto,off",
                   help="comma-separated SIMD kernel modes to search "
                        "(auto/on/off; bitwise-invisible in fp64)")
    p.add_argument("--precisions", type=str, default="fp64",
                   help="comma-separated storage profiles to search "
                        "(beware: a non-fp64 profile changes results)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--profile", type=str, default=None, metavar="FILE",
                   help="profile store to write (default: "
                        "$REPRO_TUNE_PROFILE or ~/.cache/repro/tuned.json)")
    p.set_defaults(fn=cmd_tune)

    p = sub.add_parser("info", help="analyze matrix structure")
    _add_matrix_args(p)
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("report", help="model-driven performance report")
    _add_matrix_args(p)
    p.add_argument("--moments", type=int, default=2000)
    p.add_argument("--vectors", type=int, default=32)
    p.add_argument("--nodes", type=int, default=64)
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("scaling", help="cluster weak-scaling prediction")
    p.add_argument("--nodes-list", default="1,4,16,64,256,1024")
    p.add_argument("--moments", type=int, default=2000)
    p.add_argument("--vectors", type=int, default=32)
    p.set_defaults(fn=cmd_scaling)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
