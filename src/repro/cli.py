"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``dos``     compute and print the DOS of a TI sample (or a .mtx file),
``info``    structural analysis of the TI matrix or a .mtx file,
``report``  the full model-driven performance report,
``scaling`` weak-scaling prediction table for the Piz Daint model.
"""

from __future__ import annotations

import argparse
import sys


def _add_matrix_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--nx", type=int, default=16)
    p.add_argument("--ny", type=int, default=0, help="default: same as --nx")
    p.add_argument("--nz", type=int, default=8)
    p.add_argument("--mtx", type=str, default=None,
                   help="read the matrix from a MatrixMarket file instead")


def _load_matrix(args):
    from repro.physics import build_topological_insulator
    from repro.sparse.io import read_matrix_market

    if args.mtx:
        return read_matrix_market(args.mtx)
    ny = args.ny or args.nx
    h, _ = build_topological_insulator(args.nx, ny, args.nz)
    return h


def cmd_dos(args) -> int:
    import numpy as np

    from repro.core.reconstruct import integrate_density
    from repro.core.solver import KPMSolver
    from repro.obs import NULL_METRICS, MetricsRegistry, Trace
    from repro.sparse.backend import get_backend
    from repro.util.counters import NULL_COUNTERS, PerfCounters
    from repro.util.errors import BackendError

    h = _load_matrix(args)
    print(f"matrix: {h.n_rows:,} rows, {h.nnz:,} nnz ({h.nnzr:.2f}/row)")
    try:
        backend = get_backend(args.backend)
    except BackendError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"kernel backend: {backend.name}")
    weights = None
    if args.weights:
        try:
            weights = [float(w) for w in args.weights.split(",")]
        except ValueError:
            print(f"error: --weights must be comma-separated numbers, "
                  f"got {args.weights!r}", file=sys.stderr)
            return 1
    # --metrics / --trace turn on the observability layer: counters for
    # the Table-I traffic accounting, a registry for per-kernel spans,
    # and (with --trace) one JSONL record per span.
    observe = args.metrics or args.trace
    trace = Trace(args.trace) if args.trace else None
    counters = PerfCounters() if observe else NULL_COUNTERS
    metrics = MetricsRegistry(trace=trace) if observe else NULL_METRICS
    # --retries / --fault-plan / --checkpoint-every turn on the
    # resilience supervisor: supervised retries, checkpoint recovery,
    # and graceful engine degradation.
    resil = None
    if (args.retries or args.fault_plan or args.checkpoint_every
            or args.stall_timeout is not None):
        from repro.resil import FaultPlan, Resilience, RetryPolicy

        try:
            plan = (FaultPlan.parse(args.fault_plan, seed=args.seed)
                    if args.fault_plan else None)
        except ValueError as exc:
            print(f"error: bad --fault-plan: {exc}", file=sys.stderr)
            return 1
        mp_timeouts = None
        if args.stall_timeout is not None:
            from repro.dist.mp import MpTimeouts

            mp_timeouts = MpTimeouts(stall=args.stall_timeout)
        resil = Resilience(
            policy=RetryPolicy(max_attempts=args.retries + 1),
            checkpoint_every=args.checkpoint_every,
            checkpoint_path=args.checkpoint_path,
            degrade=args.degrade,
            fault_plan=plan,
            mp_timeouts=mp_timeouts,
        )
    # sim/mp select a *distributed* engine; the rank-local kernels are
    # always the stage-2 blocked ones (the paper's production scheme).
    distributed = args.engine in ("sim", "mp")
    try:
        solver = KPMSolver(
            h, n_moments=args.moments, n_vectors=args.vectors, seed=args.seed,
            engine="aug_spmmv" if distributed else args.engine, backend=backend,
            dist_engine=args.engine if distributed else None,
            workers=args.workers, weights=weights, overlap=args.overlap,
            counters=counters, metrics=metrics, resilience=resil,
            precision=args.precision,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.precision != "fp64":
        prec = solver.precision
        print(f"precision: {prec.name} (values {np.dtype(prec.value_dtype).name}, "
              f"vectors {np.dtype(prec.vector_dtype).name}"
              f"{' pairs' if prec.half_vectors else ''}, fp64 dot accumulation)")
    if distributed:
        from repro.dist.overlap import resolve_overlap

        mode = "on" if resolve_overlap(args.overlap, args.workers) else "off"
        print(f"distributed engine: {args.engine} ({args.workers} workers, "
              f"overlap {mode})")
    if resil is not None:
        bits = [f"retries={args.retries}"]
        if args.checkpoint_every:
            bits.append(f"checkpoint every {args.checkpoint_every} iterations")
        if args.fault_plan:
            bits.append(f"fault plan '{args.fault_plan}'")
        print("resilience: supervised (" + ", ".join(bits) + ")")
    try:
        dos = solver.dos()
    except Exception as exc:
        if resil is None:
            raise
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if trace is not None:
            trace.close()
    if solver.resilience_report is not None:
        print(solver.resilience_report.summary())
    if distributed and solver.world is not None:
        log = solver.world.log
        phases = ", ".join(
            f"{k}: {v:,} B" for k, v in sorted(log.bytes_by_phase().items())
        )
        print(f"communication: {log.n_messages} messages, "
              f"{log.total_bytes:,} bytes ({phases})")
    total = integrate_density(dos.energies, dos.rho)
    print(f"DOS integral: {total:,.1f} (N = {h.n_rows:,})")
    step = max(len(dos.energies) // args.points, 1)
    print(f"{'E':>12} {'rho(E)':>14}")
    for e, r in zip(dos.energies[::step], dos.rho[::step]):
        print(f"{e:>12.4f} {r:>14.5g}")
    if observe:
        from repro.perf.report import measured_vs_model_section

        # Distributed runs use the stage-2 kernels and their merged
        # counters equal the serial charge, so the same model applies.
        eng = "aug_spmmv" if distributed else args.engine
        print("\n== MEASURED vs MODEL ==")
        print(measured_vs_model_section(
            h, counters, args.moments, args.vectors, eng, metrics=metrics,
            precision=args.precision,
        ), end="")
        print("\n== METRICS ==")
        print(metrics.summary())
    if trace is not None:
        print(f"\ntrace: {trace.n_records} spans -> {trace.path}")
    return 0


def cmd_info(args) -> int:
    from repro.sparse.stats import analyze, row_length_histogram, stencil_reuse_rows

    h = _load_matrix(args)
    stats = analyze(h)
    print(f"shape:         {stats.n_rows} x {stats.n_cols}")
    print(f"nnz:           {stats.nnz:,} "
          f"({stats.nnzr_mean:.2f}/row, min {stats.nnzr_min}, "
          f"max {stats.nnzr_max})")
    print(f"bandwidth:     {stats.bandwidth}")
    print(f"diagonals:     {len(stats.diagonals)} carrying "
          f"{stats.diagonal_coverage:.1%} of nnz")
    print(f"corner wraps:  {stats.has_corner_entries} "
          "(periodic boundary diagonals)")
    print(f"stencil-like:  {stats.is_stencil_like}")
    print(f"reuse window:  {stencil_reuse_rows(h):.0f} rows")
    hist = row_length_histogram(h)
    print("row lengths:   "
          + ", ".join(f"{l}:{c}" for l, c in sorted(hist.items())))
    return 0


def cmd_report(args) -> int:
    from repro.perf.report import full_report

    print(
        full_report(
            nx=args.nx, ny=args.ny or args.nx, nz=args.nz, r=args.vectors,
            m=args.moments, nodes=args.nodes,
        )
    )
    return 0


def cmd_scaling(args) -> int:
    from repro.dist.scaling_model import ClusterModel

    cm = ClusterModel(r=args.vectors)
    nodes = [int(n) for n in args.nodes_list.split(",")]
    print(f"{'nodes':>7} {'case':>8} {'domain':>20} "
          f"{'Tflop/s':>9} {'eff':>7}")
    for case in ("square", "bar"):
        try:
            rows = cm.weak_scaling(case, nodes, m=args.moments)
        except ValueError as exc:
            print(f"  ({case}: {exc})", file=sys.stderr)
            continue
        for row in rows:
            print(
                f"{int(row['nodes']):>7} {case:>8} "
                f"{str(row['domain']):>20} {row['tflops']:>9.2f} "
                f"{row['efficiency']:>7.1%}"
            )
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro.dist.overlap import OVERLAP_CHOICES
    from repro.sparse.backend import BACKEND_CHOICES
    from repro.util.precision import PRECISION_CHOICES

    parser = argparse.ArgumentParser(
        prog="repro",
        description="KPM performance-engineering reproduction (IPDPS'15)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("dos", help="compute a density of states")
    _add_matrix_args(p)
    p.add_argument("--moments", type=int, default=512)
    p.add_argument("--vectors", type=int, default=8)
    p.add_argument("--points", type=int, default=24,
                   help="rows of the printed table")
    p.add_argument("--engine", default="aug_spmmv",
                   choices=["naive", "aug_spmv", "aug_spmmv", "sim", "mp"],
                   help="serial moment engine (paper stages 0/1/2), or a "
                        "distributed run: 'sim' = sequential SPMD "
                        "simulator, 'mp' = real worker processes over "
                        "shared memory")
    p.add_argument("--workers", type=int, default=2,
                   help="rank count for --engine sim|mp")
    p.add_argument("--overlap", default="auto", choices=list(OVERLAP_CHOICES),
                   help="communication/computation overlap for sim|mp "
                        "(task-mode pipelining); auto = on with >1 rank")
    p.add_argument("--weights", type=str, default=None,
                   help="comma-separated per-rank partition weights "
                        "(default: equal split)")
    p.add_argument("--backend", default="auto", choices=list(BACKEND_CHOICES),
                   help="kernel backend (auto: native C kernels when a "
                        "compiler is available, else numpy)")
    p.add_argument("--precision", default="fp64",
                   choices=list(PRECISION_CHOICES),
                   help="storage profile: fp64 (baseline), fp32 (complex64 "
                        "values+vectors, compressed indices, fp64 dot "
                        "accumulation), fp16v (float16 pair vectors, fp32 "
                        "compute)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--retries", type=int, default=0,
                   help="supervised retries per engine before degrading "
                        "(any value > 0 turns the resilience supervisor on)")
    p.add_argument("--fault-plan", type=str, default=None, metavar="PLAN",
                   help="inject planned faults, e.g. 'crash:rank=1,m=8' or "
                        "'stall:rank=0,m=4;corrupt-ckpt:attempt=2' "
                        "(kinds: crash, raise, stall, slow, corrupt-halo, "
                        "corrupt-ckpt)")
    p.add_argument("--checkpoint-every", type=int, default=0, metavar="K",
                   help="checkpoint the recurrence state every K inner "
                        "iterations (atomic .npz; enables crash recovery)")
    p.add_argument("--checkpoint-path", type=str, default=None, metavar="FILE",
                   help="checkpoint file (default: a temporary file removed "
                        "on success)")
    p.add_argument("--stall-timeout", type=float, default=None, metavar="S",
                   help="declare an mp worker wedged after S seconds "
                        "without a heartbeat (default: 120)")
    p.add_argument("--no-degrade", dest="degrade", action="store_false",
                   help="fail instead of degrading mp -> sim -> serial "
                        "(and native -> numpy) after exhausted retries")
    p.add_argument("--metrics", action="store_true",
                   help="record per-kernel wall-time spans and Table-I "
                        "traffic; print the measured-vs-model report")
    p.add_argument("--trace", type=str, default=None, metavar="FILE",
                   help="write one JSONL record per instrumented span to "
                        "FILE (implies the --metrics instrumentation)")
    p.set_defaults(fn=cmd_dos)

    p = sub.add_parser("info", help="analyze matrix structure")
    _add_matrix_args(p)
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("report", help="model-driven performance report")
    _add_matrix_args(p)
    p.add_argument("--moments", type=int, default=2000)
    p.add_argument("--vectors", type=int, default=32)
    p.add_argument("--nodes", type=int, default=64)
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("scaling", help="cluster weak-scaling prediction")
    p.add_argument("--nodes-list", default="1,4,16,64,256,1024")
    p.add_argument("--moments", type=int, default=2000)
    p.add_argument("--vectors", type=int, default=32)
    p.set_defaults(fn=cmd_scaling)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
