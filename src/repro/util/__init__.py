"""Shared utilities: error types, datatype constants, counters, RNG, timing.

These are the lowest-level building blocks of the reproduction; every other
subpackage (``repro.sparse``, ``repro.core``, ``repro.perf``, ...) depends on
them and nothing here depends on the rest of the package.
"""

from repro.util.errors import (
    ReproError,
    ShapeError,
    FormatError,
    ConvergenceError,
    PartitionError,
    SimulationError,
)
from repro.util.constants import (
    S_D,
    S_I,
    F_ADD,
    F_MUL,
    DTYPE,
    IDTYPE,
    BYTES_PER_GB,
)
from repro.util.counters import PerfCounters, NULL_COUNTERS
from repro.util.rng import make_rng, spawn_rngs
from repro.util.timing import Timer
from repro.util.validation import (
    check_positive,
    check_nonnegative,
    check_in_range,
    check_vector,
    check_block_vector,
)

__all__ = [
    "ReproError",
    "ShapeError",
    "FormatError",
    "ConvergenceError",
    "PartitionError",
    "SimulationError",
    "S_D",
    "S_I",
    "F_ADD",
    "F_MUL",
    "DTYPE",
    "IDTYPE",
    "BYTES_PER_GB",
    "PerfCounters",
    "NULL_COUNTERS",
    "make_rng",
    "spawn_rngs",
    "Timer",
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "check_vector",
    "check_block_vector",
]
