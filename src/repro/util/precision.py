"""Precision profiles: mixed-precision storage for the bandwidth-bound kernels.

The paper's roofline argument (Sections III and V) makes KPM memory-
bandwidth-bound once the solver is blocked: after code balance drops to
Eq. (7)'s ~0.35 bytes/flop limit the only remaining lever is moving
fewer bytes per nonzero.  The classic KPM review (Weisse et al., RMP
2006) observes that single precision is typically sufficient for
Chebyshev moment accumulation once the spectrum is rescaled into
[-1, 1] — the recurrence is a bounded polynomial map, so storage
rounding does not amplify.

A :class:`Precision` profile bundles every storage decision the kernels
make:

``fp64``
    The paper's baseline: complex128 matrix values and vectors
    (S_d = 16), 4-byte column indices.  Bitwise identical to the
    pre-precision code path everywhere.
``fp32``
    complex64 matrix values *and* vectors (8 bytes each) with narrow
    (compressed) column indices.  All scalar products are still
    accumulated in fp64 on the fly — compensated (Kahan) partials in
    the native C kernels, fp64-dtype einsum reductions in the NumPy
    reference — so the eta moments stay accurate and deterministic.
``fp16v``
    The opt-in half-storage tier: matrix values stay complex64, but
    block *vectors* are stored as interleaved (re, im) float16 pairs
    (4 bytes per complex element) and promoted to fp32 inside the
    kernels (fp16 storage / fp32 compute).  Dot accumulation remains
    fp64/compensated as for ``fp32``.

Index compression rides along: after the distributed partition
renumbers columns into [local | halo] order (and for any serial
operator with at most 65,536 columns), local column indices fit in
uint16, so the narrow profiles charge and stream S_i = 2 instead of 4.
The fp64 profile always keeps the paper's S_i = 4 so every published
Table-I number is untouched.

Half-complex vectors are NumPy arrays of shape ``(..., 2)`` float16 —
the trailing axis is the (re, im) pair, matching the interleaved memory
layout the C kernels read.  Because row indexing, row gathers
(``np.take(..., axis=0)``) and real-scalar elementwise arithmetic all
act on leading axes only, the distributed halo machinery handles these
arrays through exactly the same code paths as complex blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.constants import S_D, S_I

#: Largest column count addressable by uint16 indices (index values are
#: 0 .. n_cols-1, so exactly 65,536 columns still fit).
UINT16_MAX_COLS: int = 1 << 16

#: Bytes per uint16 column index.
S_I_NARROW: int = 2


@dataclass(frozen=True)
class Precision:
    """One storage profile for matrix values, vectors, and indices.

    Attributes
    ----------
    name:
        User-facing profile name (``'fp64'``, ``'fp32'``, ``'fp16v'``).
    value_dtype:
        NumPy dtype of the matrix-value stream the kernels read.
    vector_dtype:
        Scalar dtype of vector storage: a complex dtype, or
        ``float16`` for the half-complex (re, im) pair layout.
    s_value:
        Bytes per streamed matrix value element (paper: part of S_d).
    s_vector:
        Bytes per stored complex vector element.
    narrow_indices:
        Whether this profile compresses eligible column indices to
        uint16 (the fp64 baseline never does, preserving S_i = 4).
    """

    name: str
    value_dtype: object
    vector_dtype: object
    s_value: int
    s_vector: int
    narrow_indices: bool

    # -- classification ------------------------------------------------
    @property
    def is_fp64(self) -> bool:
        return self.name == "fp64"

    @property
    def half_vectors(self) -> bool:
        """True when vectors are stored as float16 (re, im) pairs."""
        return np.dtype(self.vector_dtype) == np.float16

    @property
    def compute_dtype(self):
        """Complex dtype the arithmetic runs in (fp16 promotes to fp32)."""
        return np.complex128 if self.is_fp64 else np.complex64

    # -- index compression ---------------------------------------------
    def index_dtype(self, n_cols: int):
        """Narrowest index dtype this profile uses for ``n_cols`` columns."""
        if self.narrow_indices and n_cols <= UINT16_MAX_COLS:
            return np.uint16
        return np.int32

    def index_bytes(self, n_cols: int) -> int:
        """S_i of this profile for a matrix with ``n_cols`` columns."""
        if self.narrow_indices and n_cols <= UINT16_MAX_COLS:
            return S_I_NARROW
        return S_I

    # -- vector storage ------------------------------------------------
    def vec_shape(self, *dims: int) -> tuple[int, ...]:
        """Storage shape of a logical ``dims`` vector/block (adds the
        trailing (re, im) pair axis for half storage)."""
        return (*dims, 2) if self.half_vectors else tuple(dims)

    def vec_empty(self, *dims: int) -> np.ndarray:
        return np.empty(self.vec_shape(*dims), dtype=self.vector_dtype)

    def vec_zeros(self, *dims: int) -> np.ndarray:
        return np.zeros(self.vec_shape(*dims), dtype=self.vector_dtype)

    def logical_shape(self, arr: np.ndarray) -> tuple[int, ...]:
        """Logical (complex-element) shape of a storage array."""
        return arr.shape[:-1] if self.half_vectors else arr.shape

    def encode(self, src: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Convert a complex array into this profile's vector storage.

        Always copies (the result is private storage).  ``out`` may be a
        preallocated storage array of the matching shape.
        """
        src = np.asarray(src)
        if not self.half_vectors:
            if out is None:
                return np.ascontiguousarray(src, dtype=self.vector_dtype).copy() \
                    if src.dtype == self.vector_dtype else \
                    src.astype(self.vector_dtype)
            np.copyto(out, src, casting="same_kind" if out.dtype == src.dtype
                      else "unsafe")
            return out
        if out is None:
            out = np.empty((*src.shape, 2), dtype=np.float16)
        out[..., 0] = src.real
        out[..., 1] = src.imag
        return out

    def decode(self, storage: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Convert vector storage back to the profile's compute dtype.

        ``out`` (compute-dtype, logical shape) makes the call
        allocation-free; the workspace plans rely on this.
        """
        if not self.half_vectors:
            if out is None:
                return storage.astype(self.compute_dtype, copy=True)
            np.copyto(out, storage, casting="unsafe"
                      if out.dtype != storage.dtype else "same_kind")
            return out
        if out is None:
            out = np.empty(storage.shape[:-1], dtype=self.compute_dtype)
        out.real = storage[..., 0]
        out.imag = storage[..., 1]
        return out


#: The paper's baseline profile — everything exactly as before this layer.
FP64 = Precision("fp64", np.complex128, np.complex128, S_D, S_D, False)

#: Single-precision values and vectors, fp64-accumulated dots.
FP32 = Precision("fp32", np.complex64, np.complex64, 8, 8, True)

#: fp16 vector storage / fp32 compute; matrix values stay complex64.
FP16V = Precision("fp16v", np.complex64, np.float16, 8, 4, True)

PRECISIONS: dict[str, Precision] = {p.name: p for p in (FP64, FP32, FP16V)}

#: Valid values of the user-facing ``precision=`` knob.
PRECISION_CHOICES = tuple(PRECISIONS)


def get_precision(precision: "Precision | str | None") -> Precision:
    """Resolve a profile by name (``None`` means the fp64 baseline)."""
    if precision is None:
        return FP64
    if isinstance(precision, Precision):
        return precision
    try:
        return PRECISIONS[str(precision).lower()]
    except KeyError:
        raise ValueError(
            f"unknown precision {precision!r}; choose from "
            f"{sorted(PRECISIONS)}"
        ) from None


def precision_of(vec: np.ndarray) -> Precision:
    """Infer the profile from a vector storage array's dtype.

    The three profiles have disjoint vector storage dtypes (complex128 /
    complex64 / float16 pairs), so any kernel can recover the active
    profile — and hence the correct Table-I byte charges — from its
    vector operand alone, keeping every existing call site valid.
    """
    dt = vec.dtype
    if dt == np.complex128:
        return FP64
    if dt == np.complex64:
        return FP32
    if dt == np.float16:
        return FP16V
    raise TypeError(
        f"no precision profile stores vectors as dtype {dt}; expected "
        "complex128, complex64, or float16 (re, im) pairs"
    )
