"""Datatype and flop-cost constants used throughout the paper's analysis.

The paper (Section III) parameterizes all traffic/flop accounting by

* ``S_d`` — size in bytes of one matrix/vector data element,
* ``S_i`` — size in bytes of one matrix index element,
* ``F_a`` — flops per (complex) addition,
* ``F_m`` — flops per (complex) multiplication.

For the topological-insulator application the matrix and vectors are complex
double precision, hence ``S_d = 16``; kernels index with 4-byte integers,
hence ``S_i = 4``; complex arithmetic costs ``F_a = 2`` and ``F_m = 6``
real flops (paper Section III-A).
"""

from __future__ import annotations

import numpy as np

#: Bytes per complex double-precision data element (paper: S_d).
S_D: int = 16

#: Bytes per (local, in-kernel) integer index element (paper: S_i).
S_I: int = 4

#: Real flops per complex addition (paper: F_a).
F_ADD: int = 2

#: Real flops per complex multiplication (paper: F_m).
F_MUL: int = 6

#: NumPy dtype of all matrix and vector data.
DTYPE = np.complex128

#: NumPy dtype of in-kernel column indices (4-byte as in the paper's kernels).
IDTYPE = np.int32

#: 1 GB in bytes (decimal, as used for bandwidth figures in the paper).
BYTES_PER_GB: float = 1.0e9


def element_size(dtype=DTYPE) -> int:
    """Return the size in bytes of one element of ``dtype``."""
    return np.dtype(dtype).itemsize


def flops_per_cmul(dtype=DTYPE) -> int:
    """Flops for one multiplication in ``dtype`` (6 complex, 1 real)."""
    return F_MUL if np.issubdtype(np.dtype(dtype), np.complexfloating) else 1


def flops_per_cadd(dtype=DTYPE) -> int:
    """Flops for one addition in ``dtype`` (2 complex, 1 real)."""
    return F_ADD if np.issubdtype(np.dtype(dtype), np.complexfloating) else 1
