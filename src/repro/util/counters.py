"""Byte/flop accounting used to validate the paper's Table I.

Every computational kernel in :mod:`repro.sparse` optionally accepts a
:class:`PerfCounters` instance and charges to it the *minimum* data traffic
(compulsory loads and stores, assuming perfect caching — exactly the
accounting of paper Table I) and the executed flops. The instrumentation is
free when the default :data:`NULL_COUNTERS` sentinel is used.

Traffic actually observed on hardware is larger by the factor
``Omega = V_meas / V_KPM`` (paper Eq. (8)); *that* quantity comes from the
cache simulator in :mod:`repro.perf.cachesim`, not from these counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType


@dataclass
class PerfCounters:
    """Accumulates minimum byte traffic and executed flops per kernel class.

    Attributes
    ----------
    bytes_loaded:
        Compulsory bytes read from memory (matrix data, indices, vectors).
    bytes_stored:
        Compulsory bytes written to memory.
    flops:
        Real floating-point operations executed.
    calls:
        Number of kernel invocations per kernel name.
    """

    bytes_loaded: int = 0
    bytes_stored: int = 0
    flops: int = 0
    calls: dict = field(default_factory=dict)
    enabled: bool = True

    def charge(self, name: str, *, loads: int = 0, stores: int = 0, flops: int = 0) -> None:
        """Charge one kernel invocation.

        Parameters
        ----------
        name:
            Kernel identifier (e.g. ``"spmv"``, ``"axpy"``, ``"aug_spmmv"``).
        loads, stores:
            Minimum bytes read / written by this invocation.
        flops:
            Real flops executed by this invocation.
        """
        if not self.enabled:
            return
        self.bytes_loaded += int(loads)
        self.bytes_stored += int(stores)
        self.flops += int(flops)
        self.calls[name] = self.calls.get(name, 0) + 1

    @property
    def bytes_total(self) -> int:
        """Total compulsory traffic (loads + stores)."""
        return self.bytes_loaded + self.bytes_stored

    @property
    def code_balance(self) -> float:
        """Achieved minimum code balance in bytes/flop (inf when flops==0)."""
        if self.flops == 0:
            return float("inf")
        return self.bytes_total / self.flops

    def reset(self) -> None:
        """Zero all counters and call tallies."""
        self.bytes_loaded = 0
        self.bytes_stored = 0
        self.flops = 0
        self.calls.clear()

    def merge(self, other: "PerfCounters") -> "PerfCounters":
        """Accumulate ``other`` into ``self`` and return ``self``."""
        self.bytes_loaded += other.bytes_loaded
        self.bytes_stored += other.bytes_stored
        self.flops += other.flops
        for k, v in other.calls.items():
            self.calls[k] = self.calls.get(k, 0) + v
        return self

    def to_dict(self) -> dict:
        """JSON-serializable dump (e.g. for shipping between processes)."""
        return {
            "bytes_loaded": self.bytes_loaded,
            "bytes_stored": self.bytes_stored,
            "flops": self.flops,
            "calls": dict(self.calls),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "PerfCounters":
        """Rebuild a counter set from :meth:`to_dict` output."""
        return cls(
            bytes_loaded=int(d.get("bytes_loaded", 0)),
            bytes_stored=int(d.get("bytes_stored", 0)),
            flops=int(d.get("flops", 0)),
            calls={str(k): int(v) for k, v in d.get("calls", {}).items()},
        )

    def summary(self) -> str:
        """Human-readable one-line summary."""
        return (
            f"PerfCounters(bytes={self.bytes_total}, flops={self.flops}, "
            f"balance={self.code_balance:.4g} B/F, calls={dict(self.calls)})"
        )


class _NullCounters(PerfCounters):
    """The disabled counter sink — a shared, *immutable* singleton.

    Because :data:`NULL_COUNTERS` is the process-wide default of every
    kernel, any mutation would silently poison every later read (e.g.
    ``code_balance`` of a run that never asked for accounting).  Every
    mutating operation is therefore overridden: ``charge``, ``merge``
    and ``reset`` are no-ops (``merge`` notably must not fall through to
    :meth:`PerfCounters.merge`, which accumulates into ``self``), and
    direct attribute assignment raises.
    """

    def __init__(self) -> None:
        super().__init__(enabled=False)
        self.calls = MappingProxyType({})  # even calls[...] = 1 raises
        self._frozen = True

    def __setattr__(self, name: str, value) -> None:
        if getattr(self, "_frozen", False):
            raise AttributeError(
                "NULL_COUNTERS is a shared immutable sentinel; create a "
                "PerfCounters() to accumulate measurements"
            )
        super().__setattr__(name, value)

    def charge(self, name: str, *, loads: int = 0, stores: int = 0, flops: int = 0) -> None:
        return

    def merge(self, other: "PerfCounters") -> "PerfCounters":
        return self

    def reset(self) -> None:
        return


#: Shared no-op counters used as the default for all kernels.
NULL_COUNTERS = _NullCounters()
