"""Deterministic random-number-generator helpers.

KPM's stochastic trace estimation needs R independent random initial
vectors (paper Section II).  In the distributed driver each simulated rank
additionally needs an independent stream that is *reproducible* regardless
of the number of ranks.  Both needs are served by NumPy's ``SeedSequence``
spawning, wrapped here so that every call site creates generators the same
way.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | None | np.random.Generator = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator``.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged), so public APIs can take a single
    ``seed`` argument of any of those kinds.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` statistically independent child generators from ``seed``.

    The children are derived via ``SeedSequence.spawn`` so that
    ``spawn_rngs(seed, n)[i]`` is stable across runs and across different
    values of ``n`` for ``i < n``.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of rngs: {n}")
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def random_phase_vector(
    rng: np.random.Generator, n: int, dtype=np.complex128
) -> np.ndarray:
    """Draw one random-phase vector ``exp(i*phi)`` with iid phases.

    Random-phase vectors are the standard choice for KPM stochastic trace
    estimation (Weisse et al., Rev. Mod. Phys. 78, 275 (2006)): each entry
    has unit modulus, giving ``E[v v^H] = Identity`` and minimal estimator
    variance among rotation-invariant unit-modulus ensembles.
    """
    phases = rng.uniform(0.0, 2.0 * np.pi, size=n)
    return np.exp(1j * phases).astype(dtype)


def rademacher_vector(
    rng: np.random.Generator, n: int, dtype=np.complex128
) -> np.ndarray:
    """Draw one Rademacher (+/-1) vector, cast to ``dtype``."""
    return (2.0 * rng.integers(0, 2, size=n) - 1.0).astype(dtype)


def gaussian_vector(
    rng: np.random.Generator, n: int, dtype=np.complex128
) -> np.ndarray:
    """Draw one complex standard-normal vector (unit component variance)."""
    if np.issubdtype(np.dtype(dtype), np.complexfloating):
        v = rng.normal(size=n) + 1j * rng.normal(size=n)
        return (v / np.sqrt(2.0)).astype(dtype)
    return rng.normal(size=n).astype(dtype)
