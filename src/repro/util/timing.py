"""Lightweight wall-clock timing helpers for benchmarks and examples."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Context-manager stopwatch that accumulates over repeated entries.

    Example
    -------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.elapsed > 0
    True
    """

    elapsed: float = 0.0
    laps: list = field(default_factory=list)
    _t0: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        lap = time.perf_counter() - self._t0
        self.elapsed += lap
        self.laps.append(lap)

    @property
    def mean(self) -> float:
        """Mean lap time (0.0 if never entered)."""
        return self.elapsed / len(self.laps) if self.laps else 0.0

    @property
    def best(self) -> float:
        """Fastest lap time (inf if never entered)."""
        return min(self.laps) if self.laps else float("inf")

    def reset(self) -> None:
        """Clear accumulated time and laps."""
        self.elapsed = 0.0
        self.laps.clear()


def gflops(flops: float, seconds: float) -> float:
    """Convert a flop count and duration to Gflop/s (0 if seconds<=0)."""
    if seconds <= 0:
        return 0.0
    return flops / seconds / 1.0e9
