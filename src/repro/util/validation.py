"""Argument-validation helpers producing consistent error messages."""

from __future__ import annotations

import numpy as np

from repro.util.errors import ShapeError


def check_positive(name: str, value) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_nonnegative(name: str, value) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_in_range(name: str, value, lo, hi) -> None:
    """Raise ``ValueError`` unless ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")


def check_vector(name: str, v: np.ndarray, n: int) -> np.ndarray:
    """Validate that ``v`` is a length-``n`` vector; return it.

    Complex storage is 1-D of length ``n``; float16 half-complex storage
    carries a trailing (re, im) pair axis and must be ``(n, 2)``.
    """
    v = np.asarray(v)
    if v.dtype == np.float16:
        if v.ndim != 2 or v.shape != (n, 2):
            raise ShapeError(
                f"{name} must be float16 (re, im) pairs of shape ({n}, 2), "
                f"got shape {v.shape}"
            )
        return v
    if v.ndim != 1 or v.shape[0] != n:
        raise ShapeError(f"{name} must be a 1-D array of length {n}, got shape {v.shape}")
    return v


def check_block_vector(name: str, v: np.ndarray, n: int, r: int | None = None) -> np.ndarray:
    """Validate that ``v`` is an (n, R) row-major block vector; return it.

    The paper stores block vectors interleaved (row-major) so that the R
    entries of one matrix row are contiguous (Section IV-A). We enforce
    C-contiguity here because the fused kernels rely on that layout for
    their locality advantage.  float16 half-complex storage carries a
    trailing (re, im) pair axis: shape ``(n, R, 2)``.
    """
    v = np.asarray(v)
    pair = 1 if v.dtype == np.float16 else 0
    if v.ndim != 2 + pair or v.shape[0] != n or (pair and v.shape[-1] != 2):
        raise ShapeError(
            f"{name} must be a {'(n, R, 2) float16 pair' if pair else '2-D (n, R)'}"
            f" block vector with n={n}, got shape {v.shape}"
        )
    if r is not None and v.shape[1] != r:
        raise ShapeError(f"{name} must have R={r} columns, got {v.shape[1]}")
    if not v.flags.c_contiguous:
        raise ShapeError(f"{name} must be C-contiguous (row-major / interleaved)")
    return v
