"""Exception hierarchy for the reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of ``repro`` with a single except clause while
still being able to distinguish failure classes.
"""

from dataclasses import dataclass


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ShapeError(ReproError, ValueError):
    """An array argument has an incompatible shape, dtype, or layout."""


class FormatError(ReproError, ValueError):
    """A sparse-matrix container is malformed (bad indptr, indices, ...)."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative procedure (e.g. Lanczos bounds) failed to converge."""


class PartitionError(ReproError, ValueError):
    """A row partition is invalid (non-contiguous, wrong total, bad weights)."""


class SimulationError(ReproError, RuntimeError):
    """A hardware/distributed simulation entered an inconsistent state."""


class BackendError(ReproError, RuntimeError):
    """A kernel backend is unknown or unavailable on this host."""


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint file is missing, truncated, or fails its integrity check.

    Raised by :class:`repro.core.checkpoint.KpmCheckpoint` instead of the
    raw ``zipfile``/``KeyError`` soup NumPy produces on damaged ``.npz``
    archives, so the resilience supervisor can classify the failure and
    fall back to an older checkpoint (or a fresh start) deliberately.
    """


class FaultInjected(ReproError, RuntimeError):
    """An injected fault fired in an in-process engine (sim or serial).

    The multiprocess engine injects *real* faults (``os._exit``, stalls in
    worker processes); the sequential engines surface the same fault plan
    as this exception so the supervisor exercises an identical recovery
    path without killing the host interpreter.  ``kind`` carries the fault
    kind (``'crash'``, ``'raise'``, ``'stall'``, ...).
    """

    def __init__(self, message: str, kind: str = "raise") -> None:
        super().__init__(message)
        self.kind = kind


@dataclass(frozen=True)
class WorkerFault:
    """One worker's contribution to a failed multiprocess run.

    ``kind`` is one of ``'exception'`` (the worker raised and forwarded
    the message), ``'death'`` (the process died without reporting —
    a crash, OOM kill, or injected ``os._exit``), ``'stall'`` (the
    parent's heartbeat monitor declared it wedged), or ``'timeout'``
    (the whole-run deadline expired).
    """

    rank: int
    kind: str
    detail: str = ""
    exit_code: int | None = None

    def describe(self) -> str:
        bits = [f"rank {self.rank}: {self.kind}"]
        if self.detail:
            bits.append(self.detail)
        if self.exit_code is not None:
            bits.append(f"exit code {self.exit_code}")
        return " — ".join(bits)


class WorkerFailure(SimulationError):
    """A multiprocess run failed, with a structured per-worker payload.

    Subclasses :class:`SimulationError` so existing ``except`` clauses
    keep working; carries machine-readable :class:`WorkerFault` records
    plus the latest checkpointed iteration (``resume_m``, None when no
    checkpoint was taken) so a supervisor can classify the failure and
    resume instead of parsing the message string.
    """

    def __init__(
        self,
        message: str,
        failures: list[WorkerFault] | tuple[WorkerFault, ...] = (),
        resume_m: int | None = None,
    ) -> None:
        super().__init__(message)
        self.failures = list(failures)
        self.resume_m = resume_m

    @property
    def kinds(self) -> set[str]:
        return {f.kind for f in self.failures}


class RetryExhaustedError(ReproError, RuntimeError):
    """The resilience supervisor ran out of attempts (and ladder rungs).

    ``history`` lists one ``(engine, attempt, error_class, detail)`` tuple
    per failed attempt, in order.
    """

    def __init__(self, message: str, history: list | None = None) -> None:
        super().__init__(message)
        self.history = list(history or [])
