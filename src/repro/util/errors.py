"""Exception hierarchy for the reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of ``repro`` with a single except clause while
still being able to distinguish failure classes.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ShapeError(ReproError, ValueError):
    """An array argument has an incompatible shape, dtype, or layout."""


class FormatError(ReproError, ValueError):
    """A sparse-matrix container is malformed (bad indptr, indices, ...)."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative procedure (e.g. Lanczos bounds) failed to converge."""


class PartitionError(ReproError, ValueError):
    """A row partition is invalid (non-contiguous, wrong total, bad weights)."""


class SimulationError(ReproError, RuntimeError):
    """A hardware/distributed simulation entered an inconsistent state."""


class BackendError(ReproError, RuntimeError):
    """A kernel backend is unknown or unavailable on this host."""
