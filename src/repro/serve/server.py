"""The multi-tenant KPM solver server.

:class:`KPMServer` ties the serving pieces together.  ``submit()``
canonicalizes a :class:`~repro.serve.spec.Request` into its three
content-addressed keys and returns a :class:`~repro.serve.queue.Ticket`
after the cheapest sufficient action:

1. **Cache hit** — a complete moment set under the request's
   kernel-free ``moment_key`` already exists: the ticket is fulfilled
   immediately by re-damping the cached moments with the request's own
   kernel (zero operator traffic).
2. **In-flight dedup** — another ticket with the same ``moment_key``
   is already queued or solving: this ticket piggybacks on that solve
   (it still gets its own kernel at reconstruction).
3. **Enqueue** — the request joins the priority queue for the next
   coalescing round.

Batches are executed either synchronously (:meth:`step`, the
deterministic path the tests drive) or by a background worker thread
(:meth:`start`/:meth:`close`) that lingers briefly after the first
pending request so concurrent submitters land in the same batch — the
linger window is what turns independent tenants into one wide
``aug_spmmv`` block (paper Eq. 5-7).

Determinism contract: the server pins one spectral map per operator
(``lanczos_scale`` with the server's ``scale_seed``, computed outside
any batch's traffic accounting), and start vectors are derived from
each request's own seed — so a request's moments are a pure function
of its ``moment_key``, independent of batch composition (bitwise under
fp64), arrival order, and which tenant asked first.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.core.reconstruct import reconstruct_dos
from repro.core.scaling import lanczos_scale
from repro.core.solver import DOSResult, LDOSResult, dos_result_from_moments
from repro.dist.elastic import resolve_rebalance
from repro.obs import MetricsRegistry
from repro.serve.cache import MomentCache, SpectraCache
from repro.serve.coalescer import execute_batch, plan_batches, slice_moments
from repro.serve.queue import RequestQueue, Ticket
from repro.serve.spec import Request
from repro.util.counters import NULL_COUNTERS, PerfCounters

__all__ = ["KPMServer"]


class KPMServer:
    """Async multi-tenant KPM solver with request coalescing.

    Parameters
    ----------
    max_width:
        Maximum columns per coalesced batch (the block width cap).
    engine:
        ``None``/'serial', 'sim', or 'mp' — the execution engine for
        every batch (same engines, same semantics as
        :class:`~repro.core.solver.KPMSolver`).
    backend / workers / weights / overlap / precision-per-request:
        Threaded through to the engines unchanged.
    threads:
        Intra-rank kernel thread count for every batch (``None``,
        int, or ``'auto'`` — same semantics as
        :class:`~repro.core.solver.KPMSolver`).  Because the threaded
        fp64 kernels are bitwise invariant across thread counts, a
        threaded server returns byte-identical moments to a sequential
        one — determinism and cache keys are unaffected.
    simd:
        Native vectorized-kernel selector for every batch (``None``/
        ``'auto'``/``'on'``/``'off'``).  The vectorized fp64 kernels
        are bitwise equal to the scalar ones, so — like ``threads`` —
        the knob never shows up in results or cache keys.
    resilience:
        Optional :class:`~repro.resil.Resilience`; each batch then runs
        under its own fresh Supervisor (batch-scoped retries,
        checkpoint recovery, and degradation — a fault in one batch
        never touches another batch's results).
    scale_seed:
        Seed of the pinned per-operator Lanczos spectral map.
    stream_every:
        Streaming cadence in inner iterations; 0 disables partial
        results.  (The mp engine streams at its checkpoint cadence and
        therefore needs checkpointing configured in ``resilience``.)
    linger:
        Worker-thread batching window in seconds: after the first
        pending request, wait this long for more before solving.
    rebalance / membership:
        Elastic execution knobs (same values as
        :class:`~repro.core.solver.KPMSolver`): ``rebalance`` is
        ``None``/'off', 'auto', a threshold float, or a
        :class:`~repro.dist.elastic.RebalancePolicy`; ``membership`` a
        :class:`~repro.dist.elastic.MembershipPlan` (or its string
        form) applied to every batch.  With rebalancing on, mp batches
        run elastically and the learned weights (and surviving worker
        count) carry over to the *next* batch — the server rebalances
        between batches.
    cache:
        The :class:`MomentCache` (a default-sized one when omitted).
    spectra_cache:
        The :class:`SpectraCache` of final reconstructed spectra (a
        default-sized one when omitted): a kernel-identical repeat of a
        cached request skips the DOS reconstruction entirely.
    metrics / counters:
        Server-wide observability sinks.  Every batch additionally gets
        a fresh per-batch :class:`PerfCounters` (merged into
        ``counters`` afterwards) so per-request traffic is measurable.
    """

    def __init__(
        self,
        *,
        max_width: int = 8,
        engine: str | None = None,
        backend="auto",
        workers: int = 2,
        weights=None,
        overlap: bool | str | None = "auto",
        threads: int | str | None = None,
        simd: str | None = None,
        resilience=None,
        scale_seed: int = 0,
        stream_every: int = 0,
        linger: float = 0.005,
        rebalance=None,
        membership=None,
        cache: MomentCache | None = None,
        spectra_cache: SpectraCache | None = None,
        metrics: MetricsRegistry | None = None,
        counters: PerfCounters = NULL_COUNTERS,
    ) -> None:
        if engine not in (None, "serial", "sim", "mp"):
            raise ValueError(
                f"engine must be None, 'serial', 'sim' or 'mp', got {engine!r}"
            )
        if max_width < 1:
            raise ValueError(f"max_width must be >= 1, got {max_width}")
        self.max_width = int(max_width)
        self.engine = None if engine == "serial" else engine
        self.backend = backend
        self.workers = int(workers)
        self.weights = list(weights) if weights is not None else None
        self.overlap = overlap
        self.threads = threads
        self.simd = simd
        self.resilience = resilience
        self.scale_seed = int(scale_seed)
        self.stream_every = int(stream_every)
        self.linger = float(linger)
        self.rebalance = resolve_rebalance(rebalance)
        self.membership = membership
        self.cache = cache if cache is not None else MomentCache()
        self.spectra = spectra_cache if spectra_cache is not None \
            else SpectraCache()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.counters = counters
        self.queue = RequestQueue()
        #: results of the most recent batches: list of (Batch, PerfCounters)
        self.last_batches: list = []
        self._operators: dict[str, tuple] = {}
        self._inflight: dict[str, list[Ticket]] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- operator cache ------------------------------------------------
    def operator(self, spec) -> tuple:
        """``(H, model, scale)`` for the spec, built & pinned on first use.

        The Lanczos spectral map is computed here with the server's
        ``scale_seed`` and *outside* any batch's PerfCounters — the
        scale is part of the operator's identity, not of any request's
        traffic — and reused verbatim by every batch and cache entry
        that references this operator.
        """
        digest = spec.digest
        with self._lock:
            entry = self._operators.get(digest)
        if entry is not None:
            return entry
        with self.metrics.span("serve.build_operator", phase="serve"):
            H, model = spec.build()
            scale = lanczos_scale(H, seed=self.scale_seed)
        with self._lock:
            entry = self._operators.setdefault(digest, (H, model, scale))
        return entry

    # -- submission ----------------------------------------------------
    def submit(self, request: Request) -> Ticket:
        """Canonicalize, then cache-hit / dedup / enqueue (see module doc)."""
        ticket = Ticket(
            request,
            request.request_key(self.scale_seed),
            request.moment_key(self.scale_seed),
            request.group_key(self.scale_seed),
            self.queue.next_seq(),
        )
        self.metrics.count("serve.requests")
        self.metrics.count(f"serve.tenant.{request.tenant}.requests")

        entry = self.cache.get(ticket.moment_key)
        if entry is not None:
            ticket.via = "cache"
            self.metrics.count("serve.cache.hits")
            self._fulfill(ticket, entry.moments)
            return ticket
        self.metrics.count("serve.cache.misses")

        with self._lock:
            followers = self._inflight.get(ticket.moment_key)
            if followers is not None:
                followers.append(ticket)
                ticket.via = "dedup"
                self.metrics.count("serve.dedup.hits")
                return ticket
            self._inflight[ticket.moment_key] = [ticket]

        partial = self.cache.peek_partial(ticket.moment_key)
        if partial is not None:
            ticket.add_partial(partial.n_done, partial.moments)
        self.queue.push(ticket)
        return ticket

    # -- batch execution -----------------------------------------------
    def step(self) -> int:
        """Drain the queue, solve every planned batch; returns the batch
        count.  Synchronous and deterministic — the test-facing path."""
        tickets = self.queue.drain()
        primaries = [t for t in tickets if not t.done]
        if not primaries:
            return 0
        batches = plan_batches(primaries, self.max_width)
        self.last_batches = []
        for batch in batches:
            self._run_batch(batch)
        return len(batches)

    def _run_batch(self, batch) -> None:
        req0 = batch.items[0].ticket.request
        H, _model, scale = self.operator(req0.spec)

        def on_partial(item, n_done: int, mu: np.ndarray) -> None:
            self.cache.put_partial(
                item.ticket.moment_key, mu, n_done, req0.n_moments,
                kind=item.ticket.request.kind,
            )
            for t in self._tickets_for(item.ticket):
                t.add_partial(n_done, mu)

        try:
            eta, counters = execute_batch(
                batch, H, scale,
                engine=self.engine, backend=self.backend,
                workers=self.workers, weights=self.weights,
                overlap=self.overlap, precision=req0.precision,
                threads=self.threads, simd=self.simd,
                resilience=self.resilience, metrics=self.metrics,
                seed=self.scale_seed, stream_every=self.stream_every,
                on_partial=on_partial,
                rebalance=self.rebalance, membership=self.membership,
            )
        except Exception as exc:  # noqa: BLE001 - isolate to this batch
            self.metrics.count("serve.batch.failures")
            for item in batch.items:
                self.cache.discard(item.ticket.moment_key)
                for t in self._tickets_for(item.ticket):
                    t.fail(exc)
                self._retire(item.ticket)
            return
        self.metrics.count("serve.batches")
        erep = batch.elastic_report
        if erep is not None and erep.final_weights:
            # Rebalance between batches: the weights (and the surviving
            # worker count) the elastic solve converged on become the
            # next batch's starting point.  Numerics are unaffected —
            # grid-eta mode makes moments partition-independent.
            self.weights = list(erep.final_weights)
            self.workers = int(erep.final_n_workers)
        if batch.n_requests > 1:
            self.metrics.count(
                "serve.requests_coalesced", batch.n_requests
            )
        if self.counters.enabled:
            self.counters.merge(counters)
        self.last_batches.append((batch, counters))

        for item, mu in slice_moments(batch, eta):
            t0 = item.ticket
            self.cache.put(
                t0.moment_key, mu, req0.n_moments, kind=t0.request.kind,
                meta={"spec": req0.spec.digest, "width": batch.width},
            )
            for t in self._tickets_for(t0):
                t.via = t.via if t.via == "dedup" else batch.width
                self._fulfill(t, mu)
            self._retire(t0)

    def _tickets_for(self, primary: Ticket) -> list[Ticket]:
        with self._lock:
            return list(self._inflight.get(primary.moment_key, [primary]))

    def _retire(self, primary: Ticket) -> None:
        with self._lock:
            self._inflight.pop(primary.moment_key, None)

    def _fulfill(self, ticket: Ticket, mu: np.ndarray) -> None:
        """Reconstruct with the *ticket's own* kernel and complete it.

        Kernel-identical repeats skip even this step: the final
        ``(energies, rho)`` arrays are cached under
        ``(moment_key, kernel, grid)`` in the :class:`SpectraCache`, so
        only a *new* kernel (or grid) on known moments pays the damping
        and Chebyshev evaluation.
        """
        req = ticket.request
        _H, _model, scale = self.operator(req.spec)
        pts = max(2 * req.n_moments, 256)
        skey = SpectraCache.key(ticket.moment_key, req.kernel, pts)
        entry = self.spectra.get(skey)
        if entry is not None:
            self.metrics.count("serve.spectra.hits")
            if req.kind == "dos":
                result = DOSResult(
                    entry.energies, entry.rho, mu, scale,
                    req.n_vectors, req.kernel,
                )
            else:
                result = LDOSResult(
                    entry.energies, entry.rho,
                    np.asarray(req.rows, dtype=np.int64), scale, req.kernel,
                )
        else:
            self.metrics.count("serve.spectra.misses")
            with self.metrics.span("serve.reconstruct", phase="serve"):
                if req.kind == "dos":
                    result = dos_result_from_moments(
                        mu, scale, kernel=req.kernel, n_vectors=req.n_vectors
                    )
                else:
                    e_grid, rho = reconstruct_dos(
                        mu, scale, n_points=pts, kernel=req.kernel
                    )
                    result = LDOSResult(
                        e_grid, rho, np.asarray(req.rows, dtype=np.int64),
                        scale, req.kernel,
                    )
            self.spectra.put(
                skey, result.energies, result.rho, meta={"kind": req.kind}
            )
        if ticket.deadline_at is not None \
                and time.monotonic() > ticket.deadline_at:
            self.metrics.count("serve.deadline_missed")
            self.metrics.count(f"serve.tenant.{req.tenant}.deadline_missed")
        ticket.fulfill(result)

    # -- background worker ---------------------------------------------
    def start(self) -> "KPMServer":
        """Run the batching loop in a daemon thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()

        def loop() -> None:
            while not self._stop.is_set():
                if not self.queue.wait(timeout=0.05):
                    continue
                # linger: let concurrent submitters join this round's
                # batch — the window that creates coalescing width
                if self.linger > 0:
                    time.sleep(self.linger)
                self.step()

        self._thread = threading.Thread(
            target=loop, name="kpm-serve", daemon=True
        )
        self._thread.start()
        return self

    def close(self, timeout: float | None = 10.0) -> None:
        """Stop the worker thread after finishing queued work."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        self.step()  # drain anything that raced the shutdown

    def __enter__(self) -> "KPMServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- introspection -------------------------------------------------
    def stats(self) -> dict:
        """Cache stats + the metrics snapshot, one JSON-able dict."""
        return {"cache": self.cache.stats(),
                "spectra": self.spectra.stats(),
                "metrics": self.metrics.snapshot()}
