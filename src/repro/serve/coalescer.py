"""Request coalescing: stack concurrent solves into one wide block.

This is the serving-layer application of the paper's central
optimization.  Eq. 5-7 show that the blocked ``aug_spmmv`` kernel pays
the matrix stream (values + indices, the dominant traffic at KPM's
code balance) *once per iteration regardless of the block width*; only
the thin vector streams scale with the width.  Inside one solve that
amortization is the R-loop blocking of Sec. IV; across *users* it means
k concurrent requests against the same operator should never run k
separate recurrences — the coalescer concatenates their start columns
into one block, runs one wide solve, and slices each requester's
columns back out.

Correctness rests on a property the kernels guarantee (enforced by the
``REPRO_NOVEC`` pragmas in ``_kernels.c`` and the width-stable fp64
dot path, tested in ``tests/serve/test_coalesce_parity.py``): every
column of a block solve is computed independently and rounds
identically to a solo run of that column.  Under fp64 the coalesced
moments are *bitwise* the solo moments; the narrow profiles agree to
accumulation tolerance.

Batches are planned over the compatibility ``group_key`` (operator +
M + precision + spectral map) up to ``max_width`` columns, executed on
the configured engine (serial / sim / mp, optionally under a fresh
batch-scoped :class:`~repro.resil.Supervisor`), accounted with a
per-batch :class:`~repro.util.counters.PerfCounters` (whose totals
match :func:`~repro.perf.report.expected_counters` exactly), and
streamed: each progress firing publishes every member request's moment
prefix to its ticket and the moment cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.checkpoint import checkpointed_eta
from repro.core.moments import eta_to_moments
from repro.core.stochastic import make_block_vector, unit_block_vector
from repro.obs import NULL_METRICS
from repro.serve.queue import Ticket
from repro.util.counters import PerfCounters

__all__ = ["Batch", "BatchItem", "execute_batch", "plan_batches"]


@dataclass
class BatchItem:
    """One request's slot in a coalesced batch: its column range."""

    ticket: Ticket
    col0: int
    col1: int

    @property
    def width(self) -> int:
        return self.col1 - self.col0


@dataclass
class Batch:
    """A set of compatible requests solved as one wide block."""

    group_key: str
    items: list[BatchItem] = field(default_factory=list)
    #: the communicator of the batch's distributed solve (leak checks,
    #: per-rank accounting); None for serial batches
    world: object = None
    #: the :class:`~repro.dist.elastic.ElasticReport` of an elastic
    #: batch solve (rebalance enabled); None otherwise
    elastic_report: object = None

    @property
    def width(self) -> int:
        return sum(i.width for i in self.items)

    @property
    def n_requests(self) -> int:
        return len(self.items)


def plan_batches(tickets: list[Ticket], max_width: int = 8) -> list[Batch]:
    """Group urgency-ordered tickets into batches of compatible requests.

    Greedy fill per ``group_key`` up to ``max_width`` total columns; a
    single request wider than ``max_width`` gets a batch of its own
    (never split — its columns must stay one contiguous solve).  Batch
    execution order follows the most urgent member of each group, so
    coalescing never starves a high-priority tenant behind an unrelated
    group.
    """
    if max_width < 1:
        raise ValueError(f"max_width must be >= 1, got {max_width}")
    open_by_group: dict[str, Batch] = {}
    batches: list[Batch] = []
    for t in tickets:
        w = t.request.width
        batch = open_by_group.get(t.group_key)
        if batch is not None and batch.width + w > max_width:
            batch = None  # full: start a fresh batch for this group
            open_by_group.pop(t.group_key, None)
        if batch is None:
            batch = Batch(group_key=t.group_key)
            batches.append(batch)
            if w < max_width:
                open_by_group[t.group_key] = batch
        col0 = batch.width
        batch.items.append(BatchItem(t, col0, col0 + w))
        if batch.width >= max_width:
            open_by_group.pop(t.group_key, None)
    return batches


def _start_columns(request, n: int) -> np.ndarray:
    """The request's deterministic (n, width) start columns."""
    if request.kind == "ldos":
        return unit_block_vector(n, np.asarray(request.rows, dtype=np.int64))
    return make_block_vector(
        n, request.n_vectors, request.vector_kind, request.seed
    )


def stack_start_block(batch: Batch, n: int) -> np.ndarray:
    """Concatenate every item's start columns into one C-contiguous
    (n, batch.width) block, in item (column-slot) order."""
    cols = [_start_columns(i.ticket.request, n) for i in batch.items]
    return np.ascontiguousarray(np.concatenate(cols, axis=1))


def slice_moments(batch: Batch, eta_prefix: np.ndarray):
    """Per-item moment prefixes of a (width, n_eta) eta slab.

    Yields ``(item, mu)`` where ``mu`` is the request's own view of the
    doubled moments: the column-mean real trace for DOS, the per-row
    real diagonal moments for LDOS.  Slicing first keeps each request's
    values bitwise independent of its neighbours' columns.
    """
    for item in batch.items:
        rows = eta_to_moments(eta_prefix[item.col0:item.col1])
        if item.ticket.request.kind == "dos":
            yield item, rows.mean(axis=0).real
        else:
            yield item, rows.real


def _run_eta(H, scale, n_moments, block, *, engine, backend, workers,
             weights, overlap, precision, threads, simd, resilience,
             counters, metrics, seed, progress, progress_every,
             rebalance=None, membership=None):
    """One batch eta solve on the configured engine.

    Returns ``(eta, resilience_report, world, elastic_report)`` — the
    last two are None on paths that do not produce them.
    """
    if resilience is not None:
        from repro.resil import Supervisor

        # A fresh Supervisor per batch scopes retries, checkpoints and
        # degradation to this batch alone: a crash mid-batch replays or
        # degrades *these* columns and never touches other batches'
        # already-delivered results.
        sup = Supervisor.from_config(
            resilience, metrics=metrics, counters=counters, seed=seed
        )
        if rebalance is not None:
            sup.rebalance = rebalance
            sup.membership = membership or sup.membership
        eta = sup.run_eta(
            H, scale, n_moments, block, engine=engine or "serial",
            workers=workers, weights=weights, backend=backend,
            overlap=overlap, precision=precision, threads=threads,
            simd=simd, progress=progress, progress_every=progress_every,
        )
        return eta, sup.report, sup.last_world, sup.last_elastic_report
    if engine == "mp" and rebalance is not None:
        from repro.dist.elastic import elastic_eta

        eta, erep = elastic_eta(
            H, scale, n_moments, block, n_workers=workers, weights=weights,
            policy=rebalance, membership=membership, engine="mp",
            backend=backend, counters=counters, metrics=metrics,
            overlap=overlap, precision=precision, threads=threads,
            simd=simd,
        )
        return eta, None, None, erep
    if engine in ("sim", "mp"):
        from repro.dist.comm import SimWorld
        from repro.dist.kpm_parallel import distributed_eta
        from repro.dist.mp import MpWorld
        from repro.dist.partition import RowPartition

        # An elastic server runs its sim batches in grid-eta mode so a
        # later switch to mp (or an elastic mp batch of the same
        # problem) returns byte-identical moments.
        align = 4 if rebalance is None else rebalance.grid
        if weights is not None:
            part = RowPartition.from_weights(H.n_rows, weights, align=align)
        else:
            part = RowPartition.equal(H.n_rows, workers, align=align)
        world = MpWorld(part.n_ranks) if engine == "mp" \
            else SimWorld(part.n_ranks)
        eta = distributed_eta(
            H, part, scale, n_moments, block, world, backend=backend,
            counters=counters, metrics=metrics, overlap=overlap,
            precision=precision, threads=threads, simd=simd,
            progress=progress, progress_every=progress_every,
            eta_grid=0 if rebalance is None else rebalance.grid,
        )
        return eta, None, world, None
    if threads == "auto":
        import os

        threads = max(1, os.cpu_count() or 1)
    eta = checkpointed_eta(
        H, scale, n_moments, block, counters=counters, backend=backend,
        metrics=metrics, precision=precision, threads=threads, simd=simd,
        progress=progress, progress_every=progress_every,
    )
    return eta, None, None, None


def execute_batch(
    batch: Batch,
    H,
    scale,
    *,
    engine: str | None = None,
    backend="auto",
    workers: int = 2,
    weights=None,
    overlap: bool | str | None = "auto",
    precision=None,
    threads: int | str | None = None,
    simd: str | None = None,
    resilience=None,
    metrics=NULL_METRICS,
    seed: int | None = None,
    stream_every: int = 0,
    on_partial=None,
    rebalance=None,
    membership=None,
) -> tuple[np.ndarray, PerfCounters]:
    """Run one coalesced batch; return ``(eta, batch_counters)``.

    The batch's traffic is accounted in a fresh per-batch
    :class:`PerfCounters` so the amortization is measurable request by
    request: for a serial width-w batch the totals equal
    ``expected_counters(H, M, w)`` *exactly*, and
    ``bytes_total / n_requests`` is the per-request traffic that
    Eq. 5-7 predict falls with the width.  Recorded distributions:
    ``serve.batch.width`` (columns), ``serve.batch.requests``,
    ``serve.bytes_per_request`` and ``serve.bytes_per_column``.

    ``on_partial(item, n_done, mu_prefix)`` fires for every member at
    every streamed prefix (requires ``stream_every > 0``; the mp engine
    additionally needs checkpointing in ``resilience`` to stream).

    ``threads`` is forwarded to every execution path unchanged; because
    the threaded fp64 kernels are bitwise invariant across thread
    counts, a threaded batch returns the exact bytes a sequential one
    would — coalescing stays invisible at any thread count.  ``simd``
    rides the same rail with the same guarantee: the vectorized fp64
    kernels are bitwise equal to the scalar ones.

    ``rebalance`` (a resolved :class:`~repro.dist.elastic.RebalancePolicy`
    or None) turns mp batches into elastic solves and sim batches into
    grid-eta solves; the resulting :class:`ElasticReport` lands on
    ``batch.elastic_report`` so the server can carry learned weights
    into the next batch.  ``membership`` is a
    :class:`~repro.dist.elastic.MembershipPlan` applied per batch.
    """
    n_moments = batch.items[0].ticket.request.n_moments
    block = stack_start_block(batch, H.n_rows)
    counters = PerfCounters()

    progress = None
    if on_partial is not None and stream_every > 0:
        def progress(n_eta: int, eta_prefix: np.ndarray) -> None:
            for item, mu in slice_moments(batch, eta_prefix):
                on_partial(item, n_eta, mu)

    with metrics.span("serve.batch", phase="serve", counters=counters,
                      width=batch.width, requests=batch.n_requests):
        eta, report, batch.world, batch.elastic_report = _run_eta(
            H, scale, n_moments, block, engine=engine, backend=backend,
            workers=workers, weights=weights, overlap=overlap,
            precision=precision, threads=threads, simd=simd,
            resilience=resilience,
            counters=counters, metrics=metrics, seed=seed,
            progress=progress, progress_every=stream_every,
            rebalance=rebalance, membership=membership,
        )
    metrics.observe("serve.batch.width", batch.width)
    metrics.observe("serve.batch.requests", batch.n_requests)
    if counters.enabled and counters.bytes_total:
        metrics.observe(
            "serve.bytes_per_request", counters.bytes_total / batch.n_requests
        )
        metrics.observe(
            "serve.bytes_per_column", counters.bytes_total / batch.width
        )
    if report is not None:
        metrics.count("serve.batch.retries", report.retries)
        metrics.count("serve.batch.degradations", report.engine_degradations)
    if batch.elastic_report is not None:
        metrics.count("serve.batch.rebalances", batch.elastic_report.rebalances)
    return eta, counters
