"""Request queue and tickets: the client-facing half of the server.

``submit()`` returns a :class:`Ticket` immediately; the solve happens
whenever the coalescer next drains the queue.  A ticket is a small
future: clients block on :meth:`Ticket.result`, poll :attr:`done`, or
consume the streaming side-channel — every partial moment prefix the
solver publishes lands in :attr:`partials` (and wakes blocked readers
via :meth:`next_partial`), so an interactive client can refine its
spectrum plot while the full solve is still running.

The queue orders strictly by ``(priority, absolute deadline, seq)`` —
an urgent tenant's request leaves the queue first.  Deadlines are
*relative* seconds in the request spec; the ticket stamps the absolute
expiry on the monotonic clock at submission (``deadline_at``), so a
wall-clock step (NTP slew, DST) can neither expire every queued request
at once nor revive an expired one — but ordering is only a
*preference* for the coalescer: batch planning groups compatible
requests regardless of arrival order, because sharing one block solve
is cheaper for everyone (paper Eq. 5-7).  Fairness is restored at the
batch level: groups are executed in the order of their most urgent
member.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time

from repro.serve.spec import Request

__all__ = ["RequestQueue", "Ticket"]


class Ticket:
    """Handle to one submitted request (a future plus a partial stream)."""

    def __init__(self, request: Request, request_key: str,
                 moment_key: str, group_key: str, seq: int) -> None:
        self.request = request
        self.request_key = request_key
        self.moment_key = moment_key
        self.group_key = group_key
        self.seq = seq
        #: absolute expiry on the monotonic clock (None = no deadline);
        #: stamped once at submission from the request's *relative*
        #: ``deadline`` seconds, so queue ordering and the server's miss
        #: check are immune to wall-clock steps
        self.deadline_at = (
            None if request.deadline is None
            else time.monotonic() + float(request.deadline)
        )
        #: streamed (n_done, result) pairs, oldest first
        self.partials: list = []
        #: how the answer was produced: 'cache', 'dedup', or the width
        #: of the coalesced batch that solved it (int >= 1)
        self.via: str | int | None = None
        self._event = threading.Event()
        self._partial_cv = threading.Condition()
        self._result = None
        self._error: BaseException | None = None

    # -- solver side ---------------------------------------------------
    def add_partial(self, n_done: int, value) -> None:
        with self._partial_cv:
            self.partials.append((n_done, value))
            self._partial_cv.notify_all()

    def fulfill(self, result) -> None:
        self._result = result
        self._event.set()
        with self._partial_cv:
            self._partial_cv.notify_all()

    def fail(self, exc: BaseException) -> None:
        self._error = exc
        self._event.set()
        with self._partial_cv:
            self._partial_cv.notify_all()

    # -- client side ---------------------------------------------------
    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def failed(self) -> bool:
        return self._error is not None

    @property
    def error(self) -> BaseException | None:
        return self._error

    def result(self, timeout: float | None = None):
        """Block for the final result (re-raises the solve's failure)."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_key[:12]} not done after {timeout}s"
            )
        if self._error is not None:
            raise self._error
        return self._result

    def next_partial(self, after: int = 0, timeout: float | None = None):
        """Block until a partial with index >= ``after`` exists (or the
        ticket completes); returns ``(index, (n_done, value))`` or None
        when the ticket finished with no further partials."""
        deadline_ev = self._event
        with self._partial_cv:
            while len(self.partials) <= after and not deadline_ev.is_set():
                if not self._partial_cv.wait(timeout):
                    raise TimeoutError("no partial arrived in time")
            if len(self.partials) > after:
                return after, self.partials[after]
            return None


class RequestQueue:
    """Thread-safe priority queue of pending tickets.

    Heap order: ``(priority, deadline_at-or-inf, seq)``.  ``drain()`` is
    the coalescer's entry point — it empties the queue in one motion so
    batch planning sees every concurrent request at once (the whole
    point of serving: the wider the concurrent set, the wider the
    blocks).
    """

    def __init__(self) -> None:
        self._lock = threading.Condition()
        self._heap: list = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def next_seq(self) -> int:
        return next(self._seq)

    def push(self, ticket: Ticket) -> None:
        req = ticket.request
        deadline = (
            ticket.deadline_at if ticket.deadline_at is not None
            else float("inf")
        )
        with self._lock:
            heapq.heappush(
                self._heap, (req.priority, deadline, ticket.seq, ticket)
            )
            self._lock.notify_all()

    def drain(self) -> list[Ticket]:
        """All pending tickets, urgency-ordered; the queue empties."""
        with self._lock:
            out = [heapq.heappop(self._heap)[3] for _ in range(len(self._heap))]
            return out

    def wait(self, timeout: float | None = None) -> bool:
        """Block until at least one request is pending (False: timeout)."""
        with self._lock:
            if self._heap:
                return True
            return self._lock.wait(timeout) and bool(self._heap)
