"""Moment cache: content-addressed LRU storage of (partial) moments.

Moments are the expensive artifact — M/2 blocked operator applications
each — while everything downstream of them (kernel damping, grid
reconstruction, integration) is milliseconds of dense arithmetic.  The
cache therefore stores *moments* under the kernel-free
:meth:`~repro.serve.spec.Request.moment_key`: a repeat query with a
different damping kernel is a hit followed by a cheap re-damp, exactly
as the paper's separation of stage 2 (moments) from reconstruction
implies.

Entries may be *partial*: while a batch solve streams, the coalescer
publishes each request's moment prefix as it accumulates, so a client
joining mid-solve can read the best-known prefix instead of starting
from zero.  A partial entry is upgraded in place when the full solve
lands; only complete entries count as ``hits`` (prefix reads count as
``partial_hits``).

Eviction is LRU over complete entries, bounded by entry count and total
payload bytes.  Partial entries are pinned (their solve is in flight;
evicting them would drop live streams) until completed or abandoned.
All operations are thread-safe — the server's worker thread and client
threads share one instance.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

__all__ = ["CacheEntry", "MomentCache", "SpectrumEntry", "SpectraCache"]


@dataclass
class CacheEntry:
    """One cached moment set (complete or a streaming prefix)."""

    key: str
    moments: np.ndarray  # (M,) dos trace, or (n_rows, M) ldos
    n_moments: int  # full M of the request
    n_done: int  # valid moment prefix length (== n_moments when complete)
    kind: str = "dos"
    meta: dict = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return self.n_done >= self.n_moments

    @property
    def nbytes(self) -> int:
        return int(self.moments.nbytes)


class MomentCache:
    """Thread-safe LRU moment cache bounded by entries and bytes."""

    def __init__(self, max_entries: int = 256,
                 max_bytes: int = 256 * 1024 * 1024) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.partial_hits = 0
        self.evictions = 0

    # -- introspection -------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            e = self._entries.get(key)
            return e is not None and e.complete

    @property
    def nbytes(self) -> int:
        with self._lock:
            return self._bytes

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "hits": self.hits,
                "misses": self.misses,
                "partial_hits": self.partial_hits,
                "evictions": self.evictions,
            }

    # -- access --------------------------------------------------------
    def get(self, key: str) -> CacheEntry | None:
        """The complete entry for ``key``, or None (counts hit/miss)."""
        with self._lock:
            e = self._entries.get(key)
            if e is None or not e.complete:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return e

    def peek_partial(self, key: str) -> CacheEntry | None:
        """The entry for ``key`` even if partial (no hit/miss/LRU effect
        for complete entries; counts ``partial_hits`` for prefixes)."""
        with self._lock:
            e = self._entries.get(key)
            if e is not None and not e.complete:
                self.partial_hits += 1
            return e

    def put(self, key: str, moments: np.ndarray, n_moments: int,
            kind: str = "dos", meta: dict | None = None) -> CacheEntry:
        """Store a complete moment set (upgrading any partial in place)."""
        moments = np.ascontiguousarray(moments)
        entry = CacheEntry(key, moments, int(n_moments), int(n_moments),
                           kind, dict(meta or {}))
        with self._lock:
            self._insert(entry)
            self._evict()
        return entry

    def put_partial(self, key: str, prefix: np.ndarray, n_done: int,
                    n_moments: int, kind: str = "dos",
                    meta: dict | None = None) -> CacheEntry:
        """Publish a streaming prefix (``prefix[..., :n_done]`` valid).

        Never downgrades: a complete entry, or a longer prefix, wins.
        """
        prefix = np.ascontiguousarray(prefix)
        with self._lock:
            old = self._entries.get(key)
            if old is not None and old.n_done >= n_done:
                return old
            entry = CacheEntry(key, prefix, int(n_moments), int(n_done),
                               kind, dict(meta or {}))
            self._insert(entry)
            self._evict()
        return entry

    def discard(self, key: str) -> None:
        """Drop the entry (partial entries of an abandoned solve)."""
        with self._lock:
            e = self._entries.pop(key, None)
            if e is not None:
                self._bytes -= e.nbytes

    # -- internals (lock held) -----------------------------------------
    def _insert(self, entry: CacheEntry) -> None:
        old = self._entries.pop(entry.key, None)
        if old is not None:
            self._bytes -= old.nbytes
        self._entries[entry.key] = entry
        self._bytes += entry.nbytes

    def _evict(self) -> None:
        # LRU over complete entries only; partials are pinned (live
        # streams).  Guaranteed to terminate: each pass either evicts or
        # runs out of evictable entries.
        def over() -> bool:
            return (len(self._entries) > self.max_entries
                    or self._bytes > self.max_bytes)

        while over():
            victim = next(
                (k for k, e in self._entries.items() if e.complete), None
            )
            if victim is None:
                return
            e = self._entries.pop(victim)
            self._bytes -= e.nbytes
            self.evictions += 1


@dataclass
class SpectrumEntry:
    """One cached reconstructed spectrum (the post-kernel artifact)."""

    key: tuple
    energies: np.ndarray
    rho: np.ndarray  # (n_energies,) dos, or (n_rows, n_energies) ldos
    meta: dict = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        return int(self.energies.nbytes + self.rho.nbytes)


class SpectraCache:
    """Thread-safe LRU cache of *final spectra*, one layer past moments.

    A moment-cache hit still pays the reconstruction — kernel damping
    plus the dense Chebyshev evaluation over the energy grid.  That cost
    is per ``(moments, kernel, grid)``, so a repeat query that is also
    *kernel-identical* (same damping kernel, same grid) can skip the
    reconstruction too.  Entries are keyed
    ``(moment_key, kernel, grid)`` — the moment key already pins the
    operator, seed, block width, and (for LDOS) the row set, so the
    tuple is a complete identity of the returned ``(energies, rho)``
    arrays.  A different kernel on the same moments misses here and
    falls back to the moment cache's re-damp path, exactly as before.

    Same bounded-LRU semantics as :class:`MomentCache`, without the
    partial/pinning machinery (spectra are never streamed).
    """

    def __init__(self, max_entries: int = 512,
                 max_bytes: int = 128 * 1024 * 1024) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, SpectrumEntry] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key(moment_key: str, kernel: str, grid) -> tuple:
        """The cache identity of one reconstruction.

        ``grid`` is the energy-grid identity: the point count for the
        default Chebyshev grid, or a tuple fingerprint for an explicit
        energy array.
        """
        if isinstance(grid, np.ndarray):
            grid = (int(grid.size), float(grid[0]), float(grid[-1]),
                    hash(grid.tobytes()))
        return (str(moment_key), str(kernel), grid)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        with self._lock:
            return self._bytes

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def get(self, key: tuple) -> SpectrumEntry | None:
        with self._lock:
            e = self._entries.get(key)
            if e is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return e

    def put(self, key: tuple, energies: np.ndarray, rho: np.ndarray,
            meta: dict | None = None) -> SpectrumEntry:
        entry = SpectrumEntry(
            key, np.ascontiguousarray(energies), np.ascontiguousarray(rho),
            dict(meta or {}),
        )
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = entry
            self._bytes += entry.nbytes
            while (len(self._entries) > self.max_entries
                    or self._bytes > self.max_bytes):
                _k, victim = self._entries.popitem(last=False)
                self._bytes -= victim.nbytes
                self.evictions += 1
        return entry
