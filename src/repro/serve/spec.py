"""Canonical request specs and content-addressed keys for the server.

The multi-tenant server never trusts two clients to describe the same
problem the same way: one sends ``{"nx": 8, "mass": 1.0}``, another
``{"mass": 1, "nx": 8}`` with a numpy scalar, a third spells the
precision ``"double"`` instead of ``"fp64"``.  Everything the server
does — coalescing concurrent requests into one wide block solve,
deduplicating in-flight work, caching moments — hinges on those three
requests mapping to the *same* identity, and on any physically
different request mapping to a *different* one.  This module is that
identity layer.

Three derived keys, all sha256 hex digests of canonical JSON:

``request_key``
    Everything that determines the bytes a client receives, including
    the damping kernel and reconstruction grid.
``moment_key``
    The same minus the kernel/grid.  Chebyshev moments are a property
    of (operator, spectral map, start vectors, M, precision) only —
    damping is applied at reconstruction time — so a repeat query with
    a different kernel is a *cache hit* on the stored moments followed
    by a cheap re-damp.
``group_key``
    The coalescing compatibility class: operator spec + M + precision
    + spectral map.  Requests sharing a group key can be stacked into
    one ``aug_spmmv`` block solve (paper Eq. 5-7: matrix traffic is
    paid once for the whole block, so bytes per request fall as the
    width grows); their start vectors differ per request, so the group
    key deliberately excludes them.

Canonicalization guarantees (property-tested in
``tests/serve/test_key_cache_props.py``): dict ordering never matters;
tuples and lists are equivalent; numpy scalars equal their Python
values; ``-0.0`` equals ``0.0``; precision and kernel aliases
(``"double"``/``"complex128"``/``"fp64"``, ``"none"``/``"dirichlet"``)
collapse to one spelling.  Any *value* change changes the key.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

__all__ = [
    "FAMILIES",
    "HamiltonianSpec",
    "Request",
    "canonical_json",
    "canonical_kernel",
    "canonical_precision",
    "register_family",
]

#: Registered operator families: name -> builder(**params) -> (matrix, model).
FAMILIES: dict[str, Callable] = {}


def register_family(name: str, builder: Callable) -> None:
    """Register an operator family builder under a canonical name."""
    FAMILIES[name] = builder


def _build_ti(**params):
    from repro.physics.hamiltonian import build_topological_insulator

    return build_topological_insulator(
        int(params["nx"]), int(params["ny"]), int(params["nz"]),
        t=float(params.get("t", 1.0)),
        mass=float(params.get("mass", 1.0)),
        pbc=tuple(bool(p) for p in params.get("pbc", (True, True, False))),
    )


def _build_graphene(**params):
    from repro.physics.graphene import build_graphene_dot_lattice

    return build_graphene_dot_lattice(
        int(params["ncx"]), int(params["ncy"]),
        t=float(params.get("t", 1.0)),
        v_dot=float(params.get("v_dot", 0.0)),
        spacing=float(params.get("spacing", 10.0)),
    )


register_family("topological_insulator", _build_ti)
register_family("graphene_dot", _build_graphene)


#: Equivalent spellings of the storage profiles (serve-level aliases on
#: top of :func:`repro.util.precision.get_precision`'s canonical names).
_PRECISION_ALIASES = {
    "fp64": "fp64", "float64": "fp64", "double": "fp64",
    "complex128": "fp64", "f64": "fp64",
    "fp32": "fp32", "float32": "fp32", "single": "fp32",
    "complex64": "fp32", "f32": "fp32",
    "fp16v": "fp16v", "float16": "fp16v", "half": "fp16v", "f16v": "fp16v",
}

#: Equivalent spellings of the damping kernels ('none' is Dirichlet).
_KERNEL_ALIASES = {
    "jackson": "jackson",
    "lorentz": "lorentz",
    "dirichlet": "dirichlet",
    "none": "dirichlet",
}


def canonical_precision(name: str | None) -> str:
    """Collapse precision spellings to 'fp64' / 'fp32' / 'fp16v'."""
    if name is None:
        return "fp64"
    key = str(name).strip().lower()
    try:
        return _PRECISION_ALIASES[key]
    except KeyError:
        raise ValueError(
            f"unknown precision {name!r}; choose from "
            f"{sorted(set(_PRECISION_ALIASES.values()))}"
        ) from None


def canonical_kernel(name: str | None) -> str:
    """Collapse kernel spellings to 'jackson' / 'lorentz' / 'dirichlet'."""
    if name is None:
        return "jackson"
    key = str(name).strip().lower()
    try:
        return _KERNEL_ALIASES[key]
    except KeyError:
        raise ValueError(
            f"unknown kernel {name!r}; choose from "
            f"{sorted(set(_KERNEL_ALIASES.values()))}"
        ) from None


def _canon_value(v: Any) -> Any:
    """Normalize one value for canonical JSON (recursive)."""
    if isinstance(v, dict):
        return {str(k): _canon_value(v[k]) for k in v}
    if isinstance(v, (list, tuple)):
        return [_canon_value(x) for x in v]
    if isinstance(v, (bool, np.bool_)):
        return bool(v)
    if isinstance(v, (int, np.integer)):
        return int(v)
    if isinstance(v, (float, np.floating)):
        f = float(v)
        if math.isnan(f):
            raise ValueError("NaN is not a valid spec parameter")
        return f + 0.0  # -0.0 -> 0.0
    if isinstance(v, np.ndarray):
        return [_canon_value(x) for x in v.tolist()]
    if v is None or isinstance(v, str):
        return v
    raise TypeError(f"spec parameters must be JSON-like, got {type(v)!r}")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON text: sorted keys, normalized scalar values."""
    return json.dumps(_canon_value(obj), sort_keys=True,
                      separators=(",", ":"))


def _digest(obj: Any) -> str:
    return hashlib.sha256(canonical_json(obj).encode()).hexdigest()


@dataclass(frozen=True)
class HamiltonianSpec:
    """A buildable operator description: family name + parameters.

    ``params`` values must be JSON-like (numbers, strings, booleans,
    nested lists/tuples/dicts, numpy scalars).  Two specs with the same
    canonical form share one ``digest`` — the identity under which the
    server caches the built operator and its pinned spectral map.
    """

    family: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ValueError(
                f"unknown operator family {self.family!r}; registered: "
                f"{sorted(FAMILIES)}"
            )

    @property
    def digest(self) -> str:
        """sha256 of the canonical (family, params) JSON."""
        return _digest({"family": self.family, "params": self.params})

    def build(self):
        """Construct ``(matrix, model)`` via the registered builder."""
        return FAMILIES[self.family](**self.params)

    def to_dict(self) -> dict:
        return {"family": self.family, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, d: dict) -> "HamiltonianSpec":
        return cls(family=d["family"], params=dict(d.get("params", {})))


@dataclass(frozen=True)
class Request:
    """One client query: a DOS or LDOS solve against a spec'd operator.

    Parameters
    ----------
    spec:
        The operator (built server-side, cached by spec digest).
    kind:
        ``'dos'`` (stochastic trace over ``n_vectors`` random columns)
        or ``'ldos'`` (exact per-site moments; ``rows`` selects sites —
        served through the *same* doubled eta recurrence, since
        ``mu_m[i] = <e_i|T_m|e_i>`` is a global scalar product of the
        unit-vector recurrence, so LDOS coalesces with DOS columns).
    n_moments:
        Chebyshev moments M (even).
    kernel:
        Damping kernel applied at reconstruction (not part of the
        moment identity).
    precision:
        Storage profile name (any alias; canonicalized).
    n_vectors / seed:
        DOS only — stochastic block width and its deterministic RNG
        seed (the seed is part of the moment identity: same seed, same
        start vectors, same moments).
    rows:
        LDOS only — site indices.
    vector_kind:
        DOS stochastic ensemble ('phase' by default).
    tenant:
        Client identity, for accounting and fairness (not part of any
        key: two tenants asking the same physics share the cache).
    priority:
        Smaller runs earlier within a batch-planning window.
    deadline:
        Optional deadline as *relative* seconds from submission.  The
        ticket converts it to an absolute expiry on the monotonic clock
        (``Ticket.deadline_at``) for ordering and missed-deadline
        accounting, so a wall-clock step never expires or revives
        queued requests.  Excluded from every content key.
    """

    spec: HamiltonianSpec
    kind: str = "dos"
    n_moments: int = 128
    kernel: str = "jackson"
    precision: str | None = None
    n_vectors: int = 1
    seed: int = 0
    rows: tuple = ()
    vector_kind: str = "phase"
    tenant: str = "default"
    priority: int = 0
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("dos", "ldos"):
            raise ValueError(f"kind must be 'dos' or 'ldos', got {self.kind!r}")
        if self.n_moments < 2 or self.n_moments % 2:
            raise ValueError(
                f"n_moments must be even >= 2, got {self.n_moments}"
            )
        if self.kind == "ldos":
            rows = tuple(int(r) for r in self.rows)
            if not rows:
                raise ValueError("ldos requests need at least one row")
            object.__setattr__(self, "rows", rows)
        else:
            if self.n_vectors < 1:
                raise ValueError(
                    f"n_vectors must be >= 1, got {self.n_vectors}"
                )
        # canonicalize aliases eagerly so equality on the dataclass
        # matches equality of the derived keys
        object.__setattr__(self, "kernel", canonical_kernel(self.kernel))
        object.__setattr__(
            self, "precision", canonical_precision(self.precision)
        )

    # -- derived identities --------------------------------------------
    @property
    def width(self) -> int:
        """Columns this request contributes to a coalesced block."""
        return len(self.rows) if self.kind == "ldos" else int(self.n_vectors)

    def group_key(self, scale_seed: int) -> str:
        """Coalescing class: same operator, M, precision, spectral map."""
        return _digest({
            "spec": self.spec.digest,
            "n_moments": int(self.n_moments),
            "precision": self.precision,
            "scale_seed": int(scale_seed),
        })

    def moment_key(self, scale_seed: int) -> str:
        """Identity of the raw moments (kernel-free — see module doc)."""
        body = {
            "group": self.group_key(scale_seed),
            "kind": self.kind,
        }
        if self.kind == "dos":
            body["n_vectors"] = int(self.n_vectors)
            body["seed"] = int(self.seed)
            body["vector_kind"] = self.vector_kind
        else:
            body["rows"] = list(self.rows)
        return _digest(body)

    def request_key(self, scale_seed: int) -> str:
        """Full identity of the client-visible answer (kernel included)."""
        return _digest({
            "moments": self.moment_key(scale_seed),
            "kernel": self.kernel,
        })
