"""KPM-as-a-service: a coalescing multi-tenant solver server.

The paper's Eq. 5-7 argument — block many runs into one ``aug_spmmv``
so the matrix stream is paid once — applied across *users*: concurrent
DOS/LDOS requests against the same operator are canonicalized into
content-addressed keys, coalesced into one wide block solve, streamed
as partial spectra while the moments accumulate, and cached kernel-free
so a repeat query with a different damping kernel is a re-damp, not a
re-solve.

* :class:`HamiltonianSpec` / :class:`Request` — canonical specs and the
  three derived keys (request / moment / group).
* :class:`MomentCache` — content-addressed LRU moment storage with
  streaming partial entries.
* :class:`RequestQueue` / :class:`Ticket` — priority queue + futures
  with a partial-result stream.
* ``plan_batches`` / ``execute_batch`` — the coalescer.
* :class:`KPMServer` — the assembled server (sync ``step()`` or a
  background worker thread).
"""

from repro.serve.cache import (
    CacheEntry,
    MomentCache,
    SpectraCache,
    SpectrumEntry,
)
from repro.serve.coalescer import (
    Batch,
    BatchItem,
    execute_batch,
    plan_batches,
)
from repro.serve.queue import RequestQueue, Ticket
from repro.serve.server import KPMServer
from repro.serve.spec import (
    FAMILIES,
    HamiltonianSpec,
    Request,
    canonical_json,
    canonical_kernel,
    canonical_precision,
    register_family,
)

__all__ = [
    "Batch",
    "BatchItem",
    "CacheEntry",
    "FAMILIES",
    "HamiltonianSpec",
    "KPMServer",
    "MomentCache",
    "Request",
    "RequestQueue",
    "SpectraCache",
    "SpectrumEntry",
    "Ticket",
    "canonical_json",
    "canonical_kernel",
    "canonical_precision",
    "execute_batch",
    "plan_batches",
    "register_family",
]
