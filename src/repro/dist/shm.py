"""POSIX shared-memory arenas for the multiprocess KPM engine.

The :mod:`repro.dist.mp` engine moves block vectors between real OS
processes through ``multiprocessing.shared_memory`` segments instead of
pickled pipe messages: the parent creates every segment up front (an
:class:`ShmArena`), workers attach by name and map NumPy views directly
onto the shared pages — the halo "transfer" is then a plain array copy
into a window both sides have mapped, with no serialization.

Ownership is strictly parent-side: the arena that created a segment is
the only one that ever unlinks it.  Workers attaching a segment
immediately deregister it from their ``resource_tracker`` (otherwise
every child registers the name again and the interpreter prints bogus
"leaked shared_memory" warnings at shutdown — the tracker cannot know
the parent owns the lifetime).
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np


@dataclass(frozen=True)
class ShmSpec:
    """Picklable description of one shared array (sent to workers)."""

    name: str  # OS-level segment name
    shape: tuple[int, ...]
    dtype: str  # numpy dtype string, e.g. 'complex128'

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


class ShmArena:
    """Parent-side owner of a set of named shared-memory arrays.

    ``create()`` allocates a zero-initialized segment and returns a NumPy
    view; ``specs`` is the picklable map workers use to re-attach.  The
    arena is a context manager — on exit (success *or* failure) every
    segment is closed and unlinked, so a crashed run never leaks
    ``/dev/shm`` entries.
    """

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._specs: dict[str, ShmSpec] = {}
        self._arrays: dict[str, np.ndarray] = {}

    def create(self, key: str, shape: tuple[int, ...], dtype="complex128") -> np.ndarray:
        if key in self._segments:
            raise ValueError(f"shared array {key!r} already exists")
        nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
        seg = shared_memory.SharedMemory(create=True, size=max(nbytes, 1))
        arr = np.ndarray(shape, dtype=dtype, buffer=seg.buf)
        arr[...] = 0
        self._segments[key] = seg
        self._specs[key] = ShmSpec(seg.name, tuple(int(s) for s in shape), np.dtype(dtype).str)
        self._arrays[key] = arr
        return arr

    def __getitem__(self, key: str) -> np.ndarray:
        return self._arrays[key]

    @property
    def specs(self) -> dict[str, ShmSpec]:
        return dict(self._specs)

    @property
    def names(self) -> list[str]:
        """OS segment names (for leak checks in tests)."""
        return [seg.name for seg in self._segments.values()]

    def close(self) -> None:
        """Drop the NumPy views and unmap; segments stay alive for workers."""
        # The views hold references into seg.buf: they must die before
        # SharedMemory.close() or the mmap cannot be released.
        self._arrays.clear()
        for seg in self._segments.values():
            try:
                seg.close()
            except OSError:  # pragma: no cover - platform quirk
                pass

    def unlink(self) -> None:
        self.close()
        for seg in self._segments.values():
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()
        self._specs.clear()

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()


class ShmAttachment:
    """Worker-side view onto a parent-created arena.

    Maps every spec to a NumPy array and keeps the SharedMemory handles
    alive while the views are in use.  Never unlinks — the parent owns
    the segments.

    ``unregister`` balances the resource-tracker registration that
    attaching performs on this Python.  Children started by
    ``multiprocessing`` — fork *and* spawn — inherit the parent's
    tracker process (the tracker fd is forwarded), whose per-name set
    entry the parent's ``unlink`` removes exactly once; an extra
    unregister from a child makes the tracker print KeyError noise, so
    the default is False.  Pass True only when attaching from a process
    with its own tracker (an unrelated interpreter), where the
    registration would otherwise trigger bogus leak warnings — and a
    spurious unlink — at shutdown.
    """

    def __init__(self, specs: dict[str, ShmSpec], *, unregister: bool = False) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self.arrays: dict[str, np.ndarray] = {}
        for key, spec in specs.items():
            seg = shared_memory.SharedMemory(name=spec.name)
            if unregister:
                try:
                    resource_tracker.unregister(seg._name, "shared_memory")
                except Exception:  # pragma: no cover - tracker internals moved
                    pass
            self._segments[key] = seg
            self.arrays[key] = np.ndarray(spec.shape, dtype=spec.dtype, buffer=seg.buf)

    def __getitem__(self, key: str) -> np.ndarray:
        return self.arrays[key]

    def close(self) -> None:
        self.arrays.clear()
        for seg in self._segments.values():
            try:
                seg.close()
            except OSError:  # pragma: no cover - platform quirk
                pass
        self._segments.clear()

    def __enter__(self) -> "ShmAttachment":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def segment_exists(name: str) -> bool:
    """Whether a shared-memory segment with this OS name still exists.

    Leak-check helper for tests: call it on names expected to be dead
    (attaching a dead name fails before any tracker registration, so the
    probe is side-effect free in that case).
    """
    try:
        seg = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return False
    seg.close()
    return True
