"""Halo (communication-pattern) extraction from a partitioned matrix.

For the data-parallel SpMMV each rank owns a contiguous row block of the
matrix and the corresponding block-vector rows. Off-block matrix columns
reference vector rows owned by other ranks; before each multiplication
those *halo* rows must be received (and, symmetrically, the locally owned
rows that others reference must be sent). This module computes that
pattern once from the sparsity structure — exactly what GHOST's setup
phase does — and rewrites each rank's local matrix to use
``[local | halo]`` column indexing so the kernels run unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dist.partition import RowPartition
from repro.sparse.csr import CSRMatrix
from repro.util.errors import PartitionError


@dataclass
class CommPattern:
    """Per-rank-pair transfer lists for one halo exchange.

    ``send_rows[(p, q)]`` — *local* row indices (within rank p's block)
    that p sends to q, in the order q stores them in its halo. The number
    of vector rows moved per exchange is ``len(send_rows[(p, q)])``;
    multiply by ``R * S_d`` for bytes at block width R.
    """

    send_rows: dict[tuple[int, int], np.ndarray] = field(default_factory=dict)

    def neighbors_of(self, rank: int) -> list[int]:
        """Ranks that ``rank`` sends to (symmetric patterns: also receives)."""
        return sorted({q for (p, q) in self.send_rows if p == rank})

    def rows_sent(self, rank: int) -> int:
        return sum(
            v.size for (p, _q), v in self.send_rows.items() if p == rank
        )

    def total_rows_exchanged(self) -> int:
        return sum(v.size for v in self.send_rows.values())

    def bytes_per_exchange(self, r: int, s_d: int = 16) -> int:
        """Total bytes moved in one halo exchange at block width R."""
        return self.total_rows_exchanged() * r * s_d


@dataclass
class RankBlock:
    """One rank's share of the distributed matrix.

    ``matrix`` has ``n_local`` rows and ``n_local + n_halo`` columns;
    columns ``>= n_local`` address the halo, grouped by source rank in
    ascending rank order (``halo_sources``/``halo_counts`` describe the
    layout; ``halo_global`` holds the original global indices).
    """

    rank: int
    row_start: int
    row_stop: int
    matrix: CSRMatrix
    halo_global: np.ndarray
    halo_sources: np.ndarray
    halo_counts: np.ndarray

    @property
    def n_local(self) -> int:
        return self.row_stop - self.row_start

    @property
    def n_halo(self) -> int:
        return int(self.halo_global.size)


@dataclass
class DistributedMatrix:
    """A CSR matrix split into rank blocks plus the halo pattern."""

    partition: RowPartition
    blocks: list[RankBlock]
    pattern: CommPattern
    n_global: int

    @property
    def n_ranks(self) -> int:
        return self.partition.n_ranks


def partition_matrix(A: CSRMatrix, partition: RowPartition) -> DistributedMatrix:
    """Split ``A`` row-wise and derive the halo communication pattern."""
    if A.n_rows != A.n_cols:
        raise PartitionError("distributed KPM requires a square matrix")
    if partition.n_rows != A.n_rows:
        raise PartitionError(
            f"partition covers {partition.n_rows} rows, matrix has {A.n_rows}"
        )
    n_ranks = partition.n_ranks
    offsets = np.asarray(partition.offsets, dtype=np.int64)

    blocks: list[RankBlock] = []
    pattern = CommPattern()
    for rank in range(n_ranks):
        lo, hi = partition.bounds(rank)
        local = A.extract_rows(lo, hi)
        cols = local.indices.astype(np.int64)
        is_halo = (cols < lo) | (cols >= hi)
        halo_global = np.unique(cols[is_halo])
        owners = partition.owner_of(halo_global) if halo_global.size else np.empty(0, dtype=np.int64)
        # group halo slots by source rank (unique() already sorts globally,
        # and contiguous blocks mean sort-by-global == sort-by-(owner, global))
        halo_sources, halo_counts = (
            np.unique(owners, return_counts=True)
            if owners.size
            else (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        )
        # column remap: local rows -> [0, n_local), halo -> n_local + pos
        mapping = np.full(A.n_cols, -1, dtype=np.int64)
        mapping[lo:hi] = np.arange(hi - lo)
        mapping[halo_global] = (hi - lo) + np.arange(halo_global.size)
        remapped = local.remap_columns(mapping, (hi - lo) + halo_global.size)
        blocks.append(
            RankBlock(
                rank=rank, row_start=lo, row_stop=hi, matrix=remapped,
                halo_global=halo_global, halo_sources=halo_sources,
                halo_counts=halo_counts,
            )
        )
        # record the symmetric send lists: source rank p sends to this rank
        start = 0
        for p, cnt in zip(halo_sources.tolist(), halo_counts.tolist()):
            globals_from_p = halo_global[start : start + cnt]
            start += cnt
            pattern.send_rows[(p, rank)] = (
                globals_from_p - offsets[p]
            ).astype(np.int64)
    return DistributedMatrix(
        partition=partition, blocks=blocks, pattern=pattern, n_global=A.n_rows
    )
