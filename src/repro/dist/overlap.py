"""Communication-computation overlap: interior/boundary row splitting.

The classic halo-hiding technique (and the natural companion of the
paper's pipelining outlook): rows whose matrix entries reference only
local columns — the *interior* — can be multiplied while the halo
exchange is in flight; only the *boundary* rows must wait for remote
data. This module computes the split for a partitioned matrix, provides
a two-phase local SpMMV that exploits it, and models the hidden time.

Two split representations serve two purposes:

* :class:`OverlapSplit` (:func:`split_for_overlap`) — the *analysis*
  split: scattered interior/boundary index sets with extracted
  sub-matrices, feeding the time model and the two-phase reference
  product.
* :class:`TaskSplit` (:func:`task_split`) — the *execution* split the
  task-mode engines run: the interior is the largest **contiguous** run
  of halo-free rows (so the split kernels index the original local
  matrix in place, no extraction), everything else is a gathered
  boundary row list.  Both kernel backends consume it through their
  ``aug_spm(m)v_interior`` / ``..._boundary`` split kernels.

The functional result is identical to the plain local product (tested);
the benefit appears in the time model: per iteration, the exposed
communication shrinks from ``t_halo`` to ``max(0, t_halo - t_interior)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dist.halo import RankBlock
from repro.sparse.csr import CSRMatrix
from repro.sparse.spmv import spmmv
from repro.util.constants import DTYPE
from repro.util.counters import NULL_COUNTERS, PerfCounters


@dataclass
class OverlapSplit:
    """Interior/boundary row split of one rank's local matrix.

    ``interior`` and ``boundary`` are local row indices; ``interior_matrix``
    contains only the interior rows (all columns < n_local), while
    ``boundary_matrix`` has the boundary rows with the full local+halo
    column range.
    """

    interior: np.ndarray
    boundary: np.ndarray
    interior_matrix: CSRMatrix
    boundary_matrix: CSRMatrix
    n_local: int

    @property
    def interior_fraction(self) -> float:
        total = self.interior.size + self.boundary.size
        return self.interior.size / total if total else 1.0


def split_for_overlap(block: RankBlock) -> OverlapSplit:
    """Split a rank's rows into halo-independent and halo-dependent."""
    mat = block.matrix
    n_local = block.n_local
    rows = np.repeat(np.arange(mat.n_rows), mat.nnz_per_row)
    touches_halo = np.zeros(mat.n_rows, dtype=bool)
    np.logical_or.at(
        touches_halo, rows, mat.indices.astype(np.int64) >= n_local
    )
    interior = np.nonzero(~touches_halo)[0]
    boundary = np.nonzero(touches_halo)[0]

    def extract(row_set: np.ndarray, n_cols: int) -> CSRMatrix:
        if row_set.size == 0:
            return CSRMatrix(
                np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int32),
                np.empty(0, dtype=DTYPE), (0, n_cols),
            )
        parts_idx = []
        parts_val = []
        indptr = np.zeros(row_set.size + 1, dtype=np.int64)
        for k, r in enumerate(row_set.tolist()):
            lo, hi = mat.indptr[r], mat.indptr[r + 1]
            parts_idx.append(mat.indices[lo:hi])
            parts_val.append(mat.data[lo:hi])
            indptr[k + 1] = indptr[k] + (hi - lo)
        return CSRMatrix(
            indptr,
            np.concatenate(parts_idx) if parts_idx else np.empty(0, np.int32),
            np.concatenate(parts_val) if parts_val else np.empty(0, DTYPE),
            (row_set.size, n_cols),
        )

    return OverlapSplit(
        interior=interior,
        boundary=boundary,
        interior_matrix=extract(interior, n_local),
        boundary_matrix=extract(boundary, mat.n_cols),
        n_local=n_local,
    )


@dataclass(frozen=True)
class TaskSplit:
    """Execution-level interior/boundary split of one rank's local matrix.

    Unlike :class:`OverlapSplit` (scattered index sets plus extracted
    sub-matrices, for analysis), this is the shape the task-mode engines
    actually run: ``[row0, row1)`` is the largest *contiguous* run of
    halo-free rows — the split kernels traverse it on the original local
    matrix with absolute indexing — and ``boundary`` gathers every other
    local row (sorted ascending).  Halo-free rows that fall outside the
    contiguous run are deliberately classified as boundary: they could
    run early, but a contiguous interior keeps the hot phase a single
    streaming pass (and the loss is small on banded partitions, where
    the halo-touching rows cluster at the block edges).

    ``nnz_interior`` / ``nnz_boundary`` drive the overlap time model
    with the *same* split the kernels execute, so the model's hidden
    fraction and the measured one are comparable.  ``n_cols`` is the
    local+halo column count of the rank's matrix — the analytic charge
    model (:func:`repro.perf.report.expected_counters`) needs it to
    price this rank's index stream under a narrow precision profile
    (uint16 iff ``n_cols`` fits).
    """

    row0: int
    row1: int
    boundary: np.ndarray
    n_rows: int
    nnz_interior: int
    nnz_boundary: int
    n_cols: int = 0

    @property
    def n_interior(self) -> int:
        return self.row1 - self.row0

    @property
    def n_boundary(self) -> int:
        return int(self.boundary.size)

    @property
    def interior_fraction(self) -> float:
        """Interior share of the local compute, weighted by nnz.

        The split kernels stream matrix slots, so nnz (not rows) is the
        proxy for phase-1 compute time in
        :func:`exposed_communication_time`.
        """
        total = self.nnz_interior + self.nnz_boundary
        return self.nnz_interior / total if total else 1.0


def task_split(block: RankBlock) -> TaskSplit:
    """Compute the execution split the task-mode engines run.

    Interior = the largest contiguous run of rows whose entries reference
    only local columns (``< n_local``); boundary = every other row,
    gathered sorted.  Degenerate blocks are handled: no halo at all
    yields an all-interior split (empty boundary), an all-halo block an
    empty interior (``row0 == row1``).
    """
    mat = block.matrix
    n_local = block.n_local
    rows = np.repeat(np.arange(mat.n_rows), mat.nnz_per_row)
    touches_halo = np.zeros(mat.n_rows, dtype=bool)
    np.logical_or.at(
        touches_halo, rows, mat.indices.astype(np.int64) >= n_local
    )
    free = ~touches_halo
    # longest run of True in ``free``: diff of the padded mask gives the
    # run starts (+1) and stops (-1)
    row0 = row1 = 0
    if free.any():
        edges = np.diff(np.concatenate(([False], free, [False])).astype(np.int8))
        starts = np.nonzero(edges == 1)[0]
        stops = np.nonzero(edges == -1)[0]
        k = int(np.argmax(stops - starts))
        row0, row1 = int(starts[k]), int(stops[k])
    in_interior = np.zeros(mat.n_rows, dtype=bool)
    in_interior[row0:row1] = True
    boundary = np.nonzero(~in_interior)[0].astype(np.int64)
    per_row = mat.nnz_per_row
    nnz_interior = int(per_row[row0:row1].sum())
    return TaskSplit(
        row0=row0, row1=row1, boundary=boundary, n_rows=mat.n_rows,
        nnz_interior=nnz_interior,
        nnz_boundary=int(mat.nnz - nnz_interior),
        n_cols=mat.n_cols,
    )


#: Valid values of the user-facing ``overlap=`` knob.
OVERLAP_CHOICES = ("off", "on", "auto")


def resolve_overlap(overlap: str | bool | None, n_ranks: int) -> bool:
    """Turn the user-facing ``overlap`` knob into an execution decision.

    ``'auto'`` (or None) enables task mode whenever there is more than
    one rank — a single rank has no halo to hide.  Booleans pass
    through so programmatic callers can skip the string vocabulary.
    """
    if isinstance(overlap, bool):
        return overlap
    choice = "auto" if overlap is None else str(overlap).lower()
    if choice not in OVERLAP_CHOICES:
        raise ValueError(
            f"overlap must be one of {OVERLAP_CHOICES}, got {overlap!r}"
        )
    if choice == "auto":
        return n_ranks > 1
    return choice == "on"


def two_phase_spmmv(
    split: OverlapSplit,
    v_local: np.ndarray,
    halo: np.ndarray,
    out: np.ndarray | None = None,
    counters: PerfCounters = NULL_COUNTERS,
) -> np.ndarray:
    """Local SpMMV in two phases: interior (pre-halo) then boundary.

    In a real asynchronous implementation phase 1 runs while the halo
    exchange progresses; here the phases run back to back but the result
    is identical to the single-phase product (tested), and the split
    sizes feed :func:`exposed_communication_time`.
    """
    # storage-dtype generic: (n, r) complex or (n, r, 2) f16 pair layout
    if out is None:
        out = np.empty((split.n_local, *v_local.shape[1:]),
                       dtype=v_local.dtype)
    if split.interior.size:
        out[split.interior] = spmmv(
            split.interior_matrix, np.ascontiguousarray(v_local),
            counters=counters,
        )
    if split.boundary.size:
        x = np.ascontiguousarray(np.vstack([v_local, halo]))
        out[split.boundary] = spmmv(
            split.boundary_matrix, x, counters=counters
        )
    return out


def exposed_communication_time(
    t_halo: float, t_compute: float, interior_fraction: float
) -> float:
    """Per-iteration communication left exposed after overlap.

    The interior share of the compute hides the exchange; only the
    remainder is visible:
    ``max(0, t_halo - interior_fraction * t_compute)``.
    """
    if not 0.0 <= interior_fraction <= 1.0:
        raise ValueError(
            f"interior_fraction must be in [0, 1], got {interior_fraction}"
        )
    if t_halo < 0 or t_compute < 0:
        raise ValueError("times must be non-negative")
    return max(0.0, t_halo - interior_fraction * t_compute)
