"""Elastic distributed execution: rebalancing and membership changes
that never change the numbers.

The paper tunes its CPU/GPU row weights *before* the run (Section VI-B)
and keeps the communicator fixed for its lifetime.  At scale neither
assumption survives: ranks slow down mid-run (contention, clock
throttling, a sick node) and ranks come and go (preemption, node
failure, capacity arriving late).  This module makes both first-class
while keeping the one property that makes elasticity trustworthy — the
fp64 moments of an elastically executed run are **bitwise identical** to
an uninterrupted run on any fixed partition.

Two mechanisms compose into that guarantee:

* **Grid eta** (``eta_grid=B`` on the engines): the per-iteration dot
  products are accumulated per fixed global block of ``B`` rows instead
  of per rank, and the final reduction sums the ``ceil(N/B)`` block
  partials in block order.  The reduction order then depends only on
  ``(N, B)`` — never on the partition, the number of ranks, the engine,
  or the schedule — so *repartitioning never changes the eta reduction
  order* (DESIGN §11).  Partitions are built with ``align=B`` so every
  block has exactly one owner.

* **Segmented execution** (``stop_m`` on the engines): the driver runs
  the recurrence in segments ``[first_m, stop_m)``, pausing at an
  iteration boundary by publishing the global recurrence state through
  the engines' existing checkpoint path, then resuming the next segment
  under a *new* partition / world size via the existing ``resume_from``
  splice.  Checkpoint resume was already bitwise on a fixed partition;
  grid eta removes the partition from the equation.

On top of the invariant sit the two elastic behaviours:

* :class:`RebalanceMonitor` consumes the per-rank ``rank_busy`` span
  totals that the mp workers ship through the observability segment
  (compute + injected-fault time, *excluding* barrier waits, where fast
  ranks absorb their peers' skew) and computes the
  ``(max − min) / mean`` spread — the same statistic as
  :meth:`~repro.dist.autotune.AutotuneResult.imbalance`.  After
  ``windows`` consecutive segments above ``threshold`` the driver
  re-runs the throughput fixed point
  (:func:`~repro.dist.autotune.autotune_weights`) on the measured
  rows/second and repartitions at the next boundary.

* **Elastic membership**: a worker death inside a segment surfaces as a
  :class:`~repro.util.errors.WorkerFailure`; the driver drops the dead
  ranks, renormalizes the surviving weights, bumps the fault-injection
  attempt (so a planned one-shot fault does not chase the retry), and
  re-runs the segment from its entry state on the survivors — no engine
  degradation needed.  Planned ``join``/``leave`` events
  (:class:`MembershipPlan`) grow or shrink the world at segment
  boundaries.

Every membership event and rebalance is counted in the caller's
:class:`~repro.obs.metrics.MetricsRegistry` (``elastic.*``) and recorded
on the returned :class:`ElasticReport`.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.checkpoint import KpmCheckpoint
from repro.core.scaling import SpectralScale
from repro.dist.autotune import AutotuneResult, TimerFn, autotune_weights
from repro.dist.comm import MessageLog, SimWorld
from repro.dist.kpm_parallel import distributed_eta
from repro.dist.partition import RowPartition
from repro.obs import NULL_METRICS, MetricsRegistry
from repro.resil.faults import FaultPlan, as_fault_plan
from repro.sparse.csr import CSRMatrix
from repro.util.counters import NULL_COUNTERS, PerfCounters
from repro.util.errors import SimulationError, WorkerFailure

__all__ = [
    "RebalancePolicy",
    "resolve_rebalance",
    "MembershipSpec",
    "MembershipPlan",
    "MembershipEvent",
    "RebalanceMonitor",
    "SegmentRecord",
    "ElasticReport",
    "elastic_eta",
]


# ----------------------------------------------------------------------
# policy
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RebalancePolicy:
    """Knobs of the elastic driver.

    grid:
        Eta-grid block height ``B`` (rows).  Partitions are aligned to
        it; the bitwise invariant is "reduction order depends only on
        (N, B)".
    threshold:
        Relative busy-time spread ``(max − min) / mean`` above which a
        segment counts as skewed.
    windows:
        Consecutive skewed segments required before a rebalance fires
        (debounce: a one-segment hiccup is not a reason to repartition).
    interval:
        Segment length in inner iterations — the rebalance/membership
        decision cadence.  Boundaries land at
        ``first_m + interval`` (clipped by planned membership events).
    damping:
        Underrelaxation for :func:`autotune_weights` on measured rates.
    min_iters_left:
        Do not repartition when fewer inner iterations than this remain
        (the repartition would cost more than it saves).
    max_rebalances:
        Hard cap on weight recomputations per run.
    membership:
        Allow worker-death recovery by re-partitioning to survivors
        (off → a death propagates as :class:`WorkerFailure`, and the
        resilience supervisor's engine ladder takes over).
    max_leaves:
        Hard cap on ranks lost to deaths before giving up (guards
        against a fault that kills every retry).
    """

    grid: int = 64
    threshold: float = 0.25
    windows: int = 2
    interval: int = 8
    damping: float = 1.0
    min_iters_left: int = 2
    max_rebalances: int = 4
    membership: bool = True
    max_leaves: int = 8

    def __post_init__(self) -> None:
        if self.grid < 1:
            raise ValueError(f"grid must be >= 1, got {self.grid}")
        if self.threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {self.threshold}")
        if self.windows < 1 or self.interval < 1:
            raise ValueError(
                f"windows/interval must be >= 1, got "
                f"{self.windows}/{self.interval}"
            )
        if not 0 < self.damping <= 1:
            raise ValueError(f"damping must be in (0, 1], got {self.damping}")


def resolve_rebalance(rebalance) -> RebalancePolicy | None:
    """Coerce the user-facing ``rebalance=`` knob into a policy.

    ``None``/``False``/``'off'`` → None (elastic execution disabled);
    ``True``/``'auto'`` → the default policy; a number (or numeric
    string, e.g. from the CLI) → default policy with that threshold; a
    :class:`RebalancePolicy` passes through.
    """
    if rebalance is None or rebalance is False:
        return None
    if isinstance(rebalance, RebalancePolicy):
        return rebalance
    if rebalance is True:
        return RebalancePolicy()
    if isinstance(rebalance, str):
        text = rebalance.strip().lower()
        if text in ("", "off", "none", "no"):
            return None
        if text in ("auto", "on", "yes"):
            return RebalancePolicy()
        try:
            return RebalancePolicy(threshold=float(text))
        except ValueError:
            raise ValueError(
                f"rebalance must be 'off', 'auto', or a threshold, "
                f"got {rebalance!r}"
            ) from None
    if isinstance(rebalance, (int, float)):
        return RebalancePolicy(threshold=float(rebalance))
    raise TypeError(
        f"cannot build a RebalancePolicy from {type(rebalance).__name__}"
    )


# ----------------------------------------------------------------------
# planned membership
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class MembershipSpec:
    """One planned membership change, applied at the boundary ``m``.

    ``join`` adds ``ranks`` workers (each entering with the mean of the
    current weights); ``leave`` retires rank index ``rank`` gracefully
    (its state is in the boundary checkpoint, so nothing is lost).
    """

    kind: str
    m: int
    rank: int = 0
    ranks: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("join", "leave"):
            raise ValueError(
                f"membership kind must be 'join' or 'leave', got {self.kind!r}"
            )
        if self.m < 1 or self.rank < 0 or self.ranks < 1:
            raise ValueError(f"invalid membership spec {self}")


@dataclass(frozen=True)
class MembershipPlan:
    """Planned joins/leaves: ``'join:m=8;leave:m=16,rank=0'``."""

    specs: tuple[MembershipSpec, ...] = ()

    @classmethod
    def parse(cls, text: str) -> "MembershipPlan":
        specs = []
        for entry in filter(None, (e.strip() for e in text.split(";"))):
            kind, _, args = entry.partition(":")
            kw: dict = {}
            for pair in filter(None, (p.strip() for p in args.split(","))):
                key, sep, val = pair.partition("=")
                if not sep or key.strip() not in ("m", "rank", "ranks"):
                    raise ValueError(
                        f"malformed membership entry {entry!r}: expected "
                        f"m=/rank=/ranks= pairs, got {pair!r}"
                    )
                kw[key.strip()] = int(val)
            if "m" not in kw:
                raise ValueError(f"membership entry {entry!r} needs m=")
            specs.append(MembershipSpec(kind.strip(), **kw))
        return cls(tuple(sorted(specs, key=lambda s: s.m)))

    def __str__(self) -> str:
        parts = []
        for s in self.specs:
            bits = [f"m={s.m}"]
            if s.kind == "leave":
                bits.append(f"rank={s.rank}")
            elif s.ranks != 1:
                bits.append(f"ranks={s.ranks}")
            parts.append(f"{s.kind}:{','.join(bits)}")
        return ";".join(parts)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def boundaries(self) -> list[int]:
        """Iteration indices where a planned change must land."""
        return sorted({s.m for s in self.specs})

    def at(self, m: int) -> tuple[MembershipSpec, ...]:
        return tuple(s for s in self.specs if s.m == m)


def as_membership_plan(plan) -> MembershipPlan | None:
    """Coerce None / string / plan into a :class:`MembershipPlan`."""
    if plan is None:
        return None
    if isinstance(plan, MembershipPlan):
        return plan
    if isinstance(plan, str):
        return MembershipPlan.parse(plan) or None
    raise TypeError(
        f"cannot build a MembershipPlan from {type(plan).__name__}"
    )


@dataclass(frozen=True)
class MembershipEvent:
    """One membership change or rebalance as it actually happened."""

    kind: str  # 'join' | 'leave' | 'rebalance'
    m: int  # the boundary (joins, rebalances) or entry iteration (deaths)
    ranks: tuple[int, ...] = ()  # affected rank indices (pre-change)
    planned: bool = True  # False for deaths detected at runtime
    detail: str = ""

    def describe(self) -> str:
        who = f" ranks {list(self.ranks)}" if self.ranks else ""
        tag = "" if self.planned else " (failure)"
        out = f"{self.kind}{who} at m={self.m}{tag}"
        return out + (f": {self.detail}" if self.detail else "")


# ----------------------------------------------------------------------
# skew monitor
# ----------------------------------------------------------------------

def _spread(times) -> float:
    """``(max − min) / mean`` — AutotuneResult.imbalance's statistic."""
    t = np.asarray(times, dtype=float)
    return float((t.max() - t.min()) / max(t.mean(), 1e-300))


class RebalanceMonitor:
    """Debounced skew detector over per-segment rank busy times.

    Each segment, :meth:`observe` ingests the per-rank busy seconds (the
    mp workers' ``rank_busy`` span totals) and the rows each rank owned;
    ``windows`` consecutive observations above ``threshold`` arm
    :attr:`should_rebalance`, and :meth:`retune` then solves the
    throughput fixed point on the measured rows/second to produce new
    weights.  One observation below threshold resets the streak — a
    transient hiccup never repartitions.
    """

    def __init__(self, policy: RebalancePolicy) -> None:
        self.policy = policy
        self.history: list[float] = []
        self._streak = 0
        self._last: tuple[np.ndarray, np.ndarray] | None = None

    def observe(self, counts, busy) -> float:
        """Ingest one segment's (rows per rank, busy seconds per rank)."""
        counts = np.asarray(counts, dtype=float)
        busy = np.asarray(busy, dtype=float)
        imb = _spread(busy)
        self.history.append(imb)
        if imb > self.policy.threshold and busy.min() > 0:
            self._streak += 1
            self._last = (counts, busy)
        else:
            self._streak = 0
        return imb

    @property
    def should_rebalance(self) -> bool:
        return self._streak >= self.policy.windows and self._last is not None

    def reset(self) -> None:
        self._streak = 0

    def retune(
        self, n_rows: int, weights: list[float], timer: TimerFn | None = None
    ) -> AutotuneResult:
        """New weights from the last skewed window's measured throughput.

        ``timer`` overrides the measured-rate model with an explicit
        prediction callback — the deterministic path used by tests and
        the sim engine (which has no real busy times to measure).
        """
        if timer is None:
            if self._last is None:
                raise SimulationError("no skewed window observed to retune on")
            counts, busy = self._last
            rates = np.where(counts > 0, counts / np.maximum(busy, 1e-12), 0.0)
            fallback = max(rates.max(), 1e-12)
            rates = np.where(rates > 0, rates, fallback)
            timer = lambda p, nn: nn / rates[p]  # noqa: E731
        result = autotune_weights(
            n_rows, len(weights), timer,
            align=self.policy.grid, initial_weights=weights,
            damping=self.policy.damping,
        )
        self.reset()
        return result


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------

@dataclass
class SegmentRecord:
    """One executed segment of an elastic run."""

    first_m: int
    stop_m: int
    n_workers: int
    offsets: tuple[int, ...]
    attempt: int
    busy: tuple[float, ...] | None = None
    imbalance: float | None = None
    events: tuple[str, ...] = ()


@dataclass
class ElasticReport:
    """What an elastic run did: segments, membership, rebalances."""

    grid: int
    n_moments: int
    engine: str
    segments: list[SegmentRecord] = field(default_factory=list)
    events: list[MembershipEvent] = field(default_factory=list)
    rebalances: int = 0
    joins: int = 0
    leaves: int = 0
    final_weights: list[float] = field(default_factory=list)
    final_n_workers: int = 0
    log: MessageLog | None = None
    #: OS names of every shm segment any mp world of the run created —
    #: all must be dead once the run returns (leak-check hook)
    segment_names: list[str] = field(default_factory=list)

    def summary(self) -> str:
        lines = [
            f"elastic run: {len(self.segments)} segment(s), grid={self.grid}, "
            f"engine={self.engine}, finished on {self.final_n_workers} "
            f"worker(s)",
            f"  rebalances={self.rebalances} joins={self.joins} "
            f"leaves={self.leaves}",
        ]
        for seg in self.segments:
            imb = (
                "-" if seg.imbalance is None else f"{seg.imbalance:.3f}"
            )
            line = (
                f"  m=[{seg.first_m},{seg.stop_m}) workers={seg.n_workers} "
                f"imbalance={imb}"
            )
            if seg.events:
                line += " [" + "; ".join(seg.events) + "]"
            lines.append(line)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "grid": self.grid,
            "n_moments": self.n_moments,
            "engine": self.engine,
            "rebalances": self.rebalances,
            "joins": self.joins,
            "leaves": self.leaves,
            "final_weights": list(self.final_weights),
            "final_n_workers": self.final_n_workers,
            "events": [e.describe() for e in self.events],
            "segments": [
                {
                    "first_m": s.first_m,
                    "stop_m": s.stop_m,
                    "n_workers": s.n_workers,
                    "offsets": list(s.offsets),
                    "attempt": s.attempt,
                    "busy": None if s.busy is None else list(s.busy),
                    "imbalance": s.imbalance,
                    "events": list(s.events),
                }
                for s in self.segments
            ],
        }


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------

def elastic_eta(
    A: CSRMatrix,
    scale: SpectralScale,
    n_moments: int,
    start_block: np.ndarray,
    *,
    n_workers: int,
    weights=None,
    policy: RebalancePolicy | None = None,
    membership: MembershipPlan | str | None = None,
    engine: str = "mp",
    backend="auto",
    counters: PerfCounters = NULL_COUNTERS,
    metrics: MetricsRegistry = NULL_METRICS,
    overlap: bool | str | None = False,
    fault_plan: FaultPlan | str | None = None,
    attempt: int = 1,
    precision=None,
    threads: int | str | None = None,
    simd: str | None = None,
    checkpoint_path: str | Path | None = None,
    resume_from: KpmCheckpoint | str | Path | None = None,
    timer: TimerFn | None = None,
) -> tuple[np.ndarray, ElasticReport]:
    """Run the KPM eta recurrence elastically, bitwise-stable throughout.

    The recurrence is executed in segments of ``policy.interval`` inner
    iterations under grid-eta mode.  At every boundary the driver reads
    the segment's per-rank ``rank_busy`` totals, feeds them to a
    :class:`RebalanceMonitor`, applies any planned
    :class:`MembershipPlan` joins/leaves, and — when the monitor has
    seen ``policy.windows`` consecutive skewed segments — recomputes the
    row weights from the measured throughput and repartitions.  A worker
    death inside a segment shrinks the world to the survivors and
    retries the segment from its entry checkpoint.  None of this
    changes the fp64 moments: grid mode fixes the eta reduction order to
    the global block grid, so the returned eta is bitwise identical to
    an uninterrupted run of the same problem on any fixed grid-aligned
    partition.

    ``engine`` is ``'mp'`` (real worker processes; busy times are
    measured) or ``'sim'`` (in-process simulator; no real time exists,
    so skew detection and rebalancing only engage through the explicit
    ``timer`` prediction callback — the deterministic test path).
    ``checkpoint_path`` is where boundary checkpoints are written
    (a temporary directory when omitted); ``counters``/``metrics``/the
    shared :class:`MessageLog` accumulate across segments to the same
    totals as one uninterrupted run (failed attempts charge nothing).
    ``resume_from`` continues an interrupted elastic run from a boundary
    checkpoint (it must carry the same ``eta_grid`` — the engines refuse
    a cross-grid resume).

    Returns ``(eta, report)`` with eta shaped (R, M) like the other
    engines and a :class:`ElasticReport` describing every segment and
    event.
    """
    policy = policy or RebalancePolicy()
    plan = as_membership_plan(membership)
    fault_plan = as_fault_plan(fault_plan)
    if engine not in ("mp", "sim"):
        raise ValueError(f"engine must be 'mp' or 'sim', got {engine!r}")
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    from repro.dist.mp import MpWorld  # local import: mp pulls this module

    n = A.n_rows
    half = n_moments // 2
    if weights is None:
        cur_weights = [1.0 / n_workers] * n_workers
    else:
        w = np.asarray(weights, dtype=float)
        if w.shape != (n_workers,):
            raise ValueError(
                f"weights must have one entry per worker ({n_workers}), "
                f"got shape {w.shape}"
            )
        cur_weights = (w / w.sum()).tolist()

    shared_log = MessageLog()
    monitor = RebalanceMonitor(policy)
    report = ElasticReport(
        grid=policy.grid, n_moments=n_moments, engine=engine, log=shared_log
    )
    attempt_no = int(attempt)
    deaths = 0

    tmp = None
    if checkpoint_path is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-elastic-")
        checkpoint_path = Path(tmp.name) / "boundary.npz"
    checkpoint_path = Path(checkpoint_path)

    try:
        eta = None
        ck: KpmCheckpoint | None = None
        first_m = 1
        if resume_from is not None:
            ck = (
                resume_from
                if isinstance(resume_from, KpmCheckpoint)
                else KpmCheckpoint.load(resume_from)
            )
            first_m = ck.next_m
        while True:
            stop = min(half, first_m + policy.interval)
            if plan is not None:
                for b in plan.boundaries():
                    if first_m < b < stop:
                        stop = b
                        break
            is_final = stop >= half

            # -- run one segment (retrying on worker death) ------------
            while True:
                part = RowPartition.from_weights(
                    n, cur_weights, align=policy.grid
                )
                if engine == "mp":
                    world = MpWorld(n_workers)
                else:
                    world = SimWorld(n_workers)
                world.log = shared_log
                # Busy times ride the obs snapshots, which only ship
                # when *some* sink is live — force one if the caller's
                # are both null.
                seg_metrics = metrics
                if engine == "mp" and not metrics.enabled:
                    seg_metrics = MetricsRegistry()
                try:
                    eta = distributed_eta(
                        A, part, scale, n_moments,
                        start_block if ck is None else None,
                        world,
                        backend=backend, counters=counters,
                        metrics=seg_metrics, overlap=overlap,
                        checkpoint_every=0 if is_final else stop - first_m,
                        checkpoint_path=checkpoint_path,
                        resume_from=ck, fault_plan=fault_plan,
                        attempt=attempt_no, precision=precision,
                        threads=threads, simd=simd,
                        eta_grid=policy.grid, stop_m=stop,
                    )
                    if engine == "mp":
                        report.segment_names.extend(
                            world.last_segment_names or ()
                        )
                    break
                except WorkerFailure as wf:
                    if engine == "mp":
                        report.segment_names.extend(
                            getattr(world, "last_segment_names", None) or ()
                        )
                    dead = sorted({f.rank for f in wf.failures})
                    deaths += len(dead)
                    if (
                        not policy.membership
                        or not dead
                        or len(dead) >= n_workers
                        or deaths > policy.max_leaves
                    ):
                        raise
                    survivors = [
                        p for p in range(n_workers) if p not in dead
                    ]
                    total = sum(cur_weights[p] for p in survivors)
                    cur_weights = [cur_weights[p] / total for p in survivors]
                    n_workers = len(survivors)
                    attempt_no += 1  # armed one-shot faults stay fired
                    monitor.reset()  # old ranks' history is meaningless
                    event = MembershipEvent(
                        "leave", m=first_m, ranks=tuple(dead), planned=False,
                        detail="; ".join(f.describe() for f in wf.failures),
                    )
                    report.events.append(event)
                    report.leaves += len(dead)
                    metrics.count("elastic.leaves", len(dead))
                    metrics.count("elastic.retries")

            metrics.count("elastic.segments")
            seg_events: list[str] = []

            # -- read the segment's skew signal ------------------------
            busy = None
            if engine == "mp" and world.last_obs:
                busy = tuple(
                    float(
                        snap["metrics"]["timers"]
                        .get("rank_busy", {})
                        .get("total", 0.0)
                    )
                    for snap in world.last_obs
                )
            elif timer is not None:
                counts = part.counts()
                busy = tuple(
                    float(timer(p, int(counts[p]))) for p in range(n_workers)
                )
            imb = None
            if busy is not None and n_workers > 1:
                imb = monitor.observe(part.counts(), busy)
                metrics.gauge("elastic.imbalance", imb)

            # -- boundary decisions (not after the final segment) ------
            if not is_final:
                if (
                    monitor.should_rebalance
                    and n_workers > 1
                    and report.rebalances < policy.max_rebalances
                    and half - stop >= policy.min_iters_left
                ):
                    result = monitor.retune(n, cur_weights, timer)
                    cur_weights = result.weights
                    report.rebalances += 1
                    metrics.count("elastic.rebalances")
                    event = MembershipEvent(
                        "rebalance", m=stop,
                        ranks=tuple(range(n_workers)),
                        detail=f"weights -> "
                        f"{[round(x, 3) for x in cur_weights]}",
                    )
                    report.events.append(event)
                    seg_events.append(event.describe())
                for spec in plan.at(stop) if plan is not None else ():
                    if spec.kind == "join":
                        mean = sum(cur_weights) / len(cur_weights)
                        cur_weights = cur_weights + [mean] * spec.ranks
                        total = sum(cur_weights)
                        cur_weights = [x / total for x in cur_weights]
                        new = tuple(
                            range(n_workers, n_workers + spec.ranks)
                        )
                        n_workers += spec.ranks
                        report.joins += spec.ranks
                        metrics.count("elastic.joins", spec.ranks)
                        event = MembershipEvent("join", m=stop, ranks=new)
                    else:  # planned leave
                        if not 0 <= spec.rank < n_workers or n_workers == 1:
                            raise SimulationError(
                                f"membership plan retires rank {spec.rank} "
                                f"of a {n_workers}-worker world at m={stop}"
                            )
                        cur_weights = [
                            x for p, x in enumerate(cur_weights)
                            if p != spec.rank
                        ]
                        total = sum(cur_weights)
                        cur_weights = [x / total for x in cur_weights]
                        n_workers -= 1
                        report.leaves += 1
                        metrics.count("elastic.leaves")
                        event = MembershipEvent(
                            "leave", m=stop, ranks=(spec.rank,)
                        )
                    monitor.reset()  # rank identities changed
                    report.events.append(event)
                    seg_events.append(event.describe())

            report.segments.append(
                SegmentRecord(
                    first_m=first_m, stop_m=stop, n_workers=part.n_ranks,
                    offsets=tuple(part.offsets), attempt=attempt_no,
                    busy=busy, imbalance=imb, events=tuple(seg_events),
                )
            )

            if is_final:
                break

            # -- chain the boundary checkpoint into the next segment ---
            if engine == "mp":
                ck = world.last_checkpoint
            else:
                ck = KpmCheckpoint.load(checkpoint_path)
            if ck is None or ck.next_m != stop:
                got = None if ck is None else ck.next_m
                raise SimulationError(
                    f"segment [{first_m},{stop}) finished without its "
                    f"boundary checkpoint (got next_m={got})"
                )
            first_m = stop

        report.final_weights = list(cur_weights)
        report.final_n_workers = n_workers
        return eta, report
    finally:
        if tmp is not None:
            tmp.cleanup()
