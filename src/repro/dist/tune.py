"""Offline search-driven configuration tuning (``repro tune``).

The paper tunes its kernels by hand: SELL-C-sigma chunk geometry per
architecture (Table I), process weights per heterogeneous device pair
(Fig. 11), block width R per memory budget, and the overlap mode per
interconnect.  This module automates that search on the machine at
hand: it measures short probe runs of the actual engines over a
declared search space — backend, sparse format (CSR / SELL-C-sigma and
its C/sigma geometry), block width R, rank count, per-rank weights,
communication overlap, intra-rank threads, SIMD kernel selection,
precision profile — and
persists the best configuration as a *tuned profile* keyed by (matrix
signature, machine signature).  ``repro dos --engine auto`` consults
the profile store and runs the tuned configuration when one matches.

Search strategy: a seeded random sample of the space (always including
the untuned default, so the tuner can never regress below it) is
pre-ranked by an analytic cost model (Eq. 5-7 traffic over the
effective parallel bandwidth), the most promising candidates are
measured for real, and the best measured point is refined by greedy
single-knob mutation until no neighbor improves.  Measurements use the
same engines production runs use — serial ``compute_eta`` or the mp
engine — so the score *is* the quantity being optimized.

The profile store is a small JSON document; its default location is
``$REPRO_TUNE_PROFILE`` or ``~/.cache/repro/tuned.json``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.util.validation import check_positive

__all__ = [
    "TuneConfig",
    "TuneSpace",
    "TuneResult",
    "DEFAULT_CONFIG",
    "matrix_signature",
    "machine_signature",
    "profile_key",
    "default_profile_path",
    "model_cost",
    "measure",
    "tune",
    "save_profile",
    "load_profiles",
    "lookup",
]

#: Schema version of the persisted profile store.
PROFILE_VERSION = 1


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TuneConfig:
    """One point of the search space — everything a run needs to know.

    ``workers == 1`` means the serial stage-2 engine; ``workers > 1``
    selects the distributed engine named by ``engine`` ('mp' for real
    processes, 'sim' for the sequential simulator).  ``threads`` is the
    intra-rank thread count (None = sequential kernels).  ``simd``
    selects the native backend's vectorized kernels ('auto'/'on'/'off';
    bitwise-invisible in fp64, so purely a speed knob).  ``weights``
    is an optional per-rank partition weighting (None = equal split).
    """

    backend: str = "auto"          # kernel backend
    fmt: str = "csr"               # 'csr' | 'sell'
    chunk: int = 32                # SELL C (ignored for CSR)
    sigma: int = 1                 # SELL sigma (1 = no sorting)
    r: int = 8                     # block width R
    engine: str = "mp"             # distributed engine when workers > 1
    workers: int = 1               # rank count (1 = serial)
    weights: tuple | None = None   # per-rank weights (None = equal)
    overlap: str = "off"           # 'off' | 'on' task-mode overlap
    threads: int | None = None     # intra-rank kernel threads
    simd: str = "auto"             # native vectorized-kernel selector
    precision: str = "fp64"        # storage profile

    def __post_init__(self) -> None:
        if self.fmt not in ("csr", "sell"):
            raise ValueError(f"fmt must be 'csr' or 'sell', got {self.fmt!r}")
        if self.engine not in ("sim", "mp"):
            raise ValueError(
                f"engine must be 'sim' or 'mp', got {self.engine!r}"
            )
        if self.overlap not in ("off", "on"):
            raise ValueError(
                f"overlap must be 'off' or 'on', got {self.overlap!r}"
            )
        if self.simd not in ("auto", "on", "off"):
            raise ValueError(
                f"simd must be 'auto', 'on' or 'off', got {self.simd!r}"
            )
        check_positive("workers", self.workers)
        check_positive("r", self.r)
        if self.threads is not None:
            check_positive("threads", self.threads)
        if self.sigma != 1 and self.sigma % self.chunk:
            raise ValueError(
                f"sigma must be 1 or a multiple of chunk, got "
                f"C={self.chunk} sigma={self.sigma}"
            )
        if self.weights is not None:
            object.__setattr__(
                self, "weights", tuple(float(w) for w in self.weights)
            )
            if len(self.weights) != self.workers:
                raise ValueError(
                    f"{len(self.weights)} weights for {self.workers} workers"
                )

    def to_dict(self) -> dict:
        d = asdict(self)
        d["weights"] = list(self.weights) if self.weights is not None else None
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "TuneConfig":
        d = dict(d)
        if d.get("weights") is not None:
            d["weights"] = tuple(d["weights"])
        return cls(**d)


#: The untuned baseline: serial CSR fp64, sequential kernels.  Always a
#: member of the candidate pool, so ``tune()`` can never return a
#: configuration that measured slower than it.
DEFAULT_CONFIG = TuneConfig()


@dataclass(frozen=True)
class TuneSpace:
    """Candidate values per knob; the cartesian product is the space."""

    backends: tuple = ("auto",)
    fmts: tuple = ("csr", "sell")
    chunks: tuple = (8, 32)
    sigmas: tuple = (1, 128)
    rs: tuple = (4, 8, 16)
    engines: tuple = ("mp",)
    workers: tuple = (1, 2)
    weights: tuple = (None,)
    overlaps: tuple = ("off", "on")
    threads: tuple = (None, 2, 4)
    simds: tuple = ("auto", "off")
    precisions: tuple = ("fp64",)

    def sample(self, rng: np.random.Generator) -> TuneConfig:
        """One random (always-valid) point of the space."""
        chunk = int(rng.choice(self.chunks))
        sigma = int(rng.choice(self.sigmas))
        if sigma != 1:
            sigma = max(chunk, sigma - sigma % chunk)
        workers = int(rng.choice(self.workers))
        weights = self.weights[rng.integers(len(self.weights))]
        if weights is not None and len(weights) != workers:
            weights = None
        threads = self.threads[rng.integers(len(self.threads))]
        return TuneConfig(
            backend=str(rng.choice(self.backends)),
            fmt=str(rng.choice(self.fmts)),
            chunk=chunk,
            sigma=sigma,
            r=int(rng.choice(self.rs)),
            engine=str(rng.choice(self.engines)),
            workers=workers,
            weights=weights,
            overlap=str(rng.choice(self.overlaps)),
            threads=None if threads is None else int(threads),
            simd=str(rng.choice(self.simds)),
            precision=str(rng.choice(self.precisions)),
        )

    def neighbors(self, cfg: TuneConfig) -> list[TuneConfig]:
        """All single-knob mutations of ``cfg`` (the greedy neighborhood)."""
        out: list[TuneConfig] = []

        def push(**kw) -> None:
            try:
                cand = replace(cfg, **kw)
            except ValueError:
                return
            if cand != cfg:
                out.append(cand)

        for b in self.backends:
            push(backend=b)
        for f in self.fmts:
            push(fmt=f)
        if cfg.fmt == "sell":
            for c in self.chunks:
                s = cfg.sigma
                if s != 1:
                    s = max(c, s - s % c)
                push(chunk=c, sigma=s)
            for s in self.sigmas:
                if s != 1:
                    s = max(cfg.chunk, s - s % cfg.chunk)
                push(sigma=s)
        for r in self.rs:
            push(r=r)
        for w in self.workers:
            wts = cfg.weights
            if wts is not None and len(wts) != w:
                wts = None
            push(workers=w, weights=wts)
        if cfg.workers > 1:
            for e in self.engines:
                push(engine=e)
            for o in self.overlaps:
                push(overlap=o)
            for wts in self.weights:
                if wts is None or len(wts) == cfg.workers:
                    push(weights=wts)
        for t in self.threads:
            push(threads=None if t is None else int(t))
        for sm in self.simds:
            push(simd=sm)
        for p in self.precisions:
            push(precision=p)
        return out


@dataclass
class TuneResult:
    """Outcome of one tuning run."""

    config: TuneConfig
    seconds: float
    baseline_seconds: float
    signature: str
    #: every measured (config, seconds), in evaluation order
    evaluated: list = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Measured speedup over the untuned default (>= 1 by search
        construction: the default is always in the candidate pool)."""
        return self.baseline_seconds / max(self.seconds, 1e-300)

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "seconds": self.seconds,
            "baseline_seconds": self.baseline_seconds,
            "signature": self.signature,
        }


# -- signatures and the profile store ----------------------------------
def matrix_signature(H) -> str:
    """Shape class of the operator: rows, nnz, and mean row length."""
    return f"n{H.n_rows}-nnz{H.nnz}-nnzr{H.nnz / max(H.n_rows, 1):.1f}"


def machine_signature() -> str:
    """Host class: ISA + core count (what the knobs actually depend on)."""
    return f"{platform.machine() or 'unknown'}-c{os.cpu_count() or 1}"


def profile_key(H) -> str:
    return f"{machine_signature()}|{matrix_signature(H)}"


def default_profile_path() -> Path:
    env = os.environ.get("REPRO_TUNE_PROFILE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "tuned.json"


def load_profiles(path: str | Path | None = None) -> dict:
    """The profile store as a dict (empty when absent or unreadable)."""
    p = Path(path) if path is not None else default_profile_path()
    try:
        doc = json.loads(p.read_text())
    except (OSError, ValueError):
        return {}
    if not isinstance(doc, dict) or doc.get("version") != PROFILE_VERSION:
        return {}
    profiles = doc.get("profiles")
    return profiles if isinstance(profiles, dict) else {}

def save_profile(
    H, result: TuneResult, path: str | Path | None = None
) -> Path:
    """Insert/replace the profile for (machine, matrix); returns the path."""
    p = Path(path) if path is not None else default_profile_path()
    profiles = load_profiles(p)
    entry = result.to_dict()
    entry["saved_at"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    profiles[profile_key(H)] = entry
    p.parent.mkdir(parents=True, exist_ok=True)
    tmp = p.with_suffix(p.suffix + ".tmp")
    tmp.write_text(json.dumps(
        {"version": PROFILE_VERSION, "profiles": profiles}, indent=2,
    ))
    tmp.replace(p)
    return p


def lookup(H, path: str | Path | None = None) -> TuneConfig | None:
    """The tuned config for this (machine, matrix), or None."""
    entry = load_profiles(path).get(profile_key(H))
    if entry is None:
        return None
    try:
        return TuneConfig.from_dict(entry["config"])
    except (KeyError, TypeError, ValueError):
        return None


# -- scoring -----------------------------------------------------------
def model_cost(H, cfg: TuneConfig, n_moments: int = 32) -> float:
    """Analytic relative cost: Eq. 5-7 traffic over effective parallelism.

    A cheap pre-ranking for random candidates — bytes moved by one probe
    run (precision-priced, format-blind) divided by how many cores the
    configuration brings to bear — *not* a wall-time prediction.  Ties
    and format effects are left to the measurement stage.
    """
    from repro.perf.report import expected_counters

    expect = expected_counters(
        H, n_moments, cfg.r, "aug_spmmv", precision=cfg.precision
    )
    cores = os.cpu_count() or 1
    par = min(cores, cfg.workers * (cfg.threads or 1))
    # mp ranks pay a spawn/halo overhead a core count doesn't capture;
    # charge a small constant per extra rank so the model prefers
    # threads over ranks at equal parallelism (matches measurement).
    overhead = 1.0 + 0.05 * (cfg.workers - 1)
    return float(expect.bytes_total) * overhead / par


def _build_operator(H, cfg: TuneConfig):
    if cfg.fmt == "sell":
        from repro.sparse.sell import SellMatrix

        return SellMatrix(H, chunk_height=cfg.chunk, sigma=cfg.sigma)
    return H


def measure(
    H,
    cfg: TuneConfig,
    *,
    n_moments: int = 32,
    seed: int = 0,
    repeats: int = 1,
) -> float:
    """Wall-time of one probe run of ``cfg`` (best of ``repeats``).

    Uses the engines production uses: serial :func:`compute_eta` for
    ``workers == 1``, :func:`distributed_eta` on the configured world
    otherwise.  SELL configs pay their format conversion outside the
    timed region, exactly as a long production run amortizes it.
    """
    from repro.core.scaling import lanczos_scale
    from repro.core.stochastic import make_block_vector

    scale = lanczos_scale(H, seed=seed)
    block = make_block_vector(H.n_rows, cfg.r, "phase", seed)
    A, part = _prepare_probe(H, cfg)
    best = float("inf")
    for _ in range(max(1, int(repeats))):
        t0 = time.perf_counter()
        _run_probe(A, part, cfg, scale, n_moments, block)
        best = min(best, time.perf_counter() - t0)
    return best


def _prepare_probe(H, cfg):
    """Probe setup outside the timed region: format conversion and
    (for distributed configs) partitioning — one-time costs that a long
    production run amortizes."""
    if cfg.workers == 1:
        return _build_operator(H, cfg), None
    from repro.dist.halo import partition_matrix
    from repro.dist.partition import RowPartition

    if cfg.weights is not None:
        part = RowPartition.from_weights(
            H.n_rows, list(cfg.weights), align=4
        )
    else:
        part = RowPartition.equal(H.n_rows, cfg.workers, align=4)
    A = partition_matrix(H, part)
    if cfg.fmt == "sell" and cfg.overlap != "on":
        # Per-rank SELL: each rank's rectangular local block (local
        # rows x local+halo columns) is sorted and chunked
        # independently, exactly how a heterogeneous machine would
        # format each device's share.  The overlap path keeps CSR —
        # its split-task plan slices the local block by row ranges
        # that SELL's row permutation does not preserve.
        from repro.sparse.sell import SellMatrix

        for blk in A.blocks:
            blk.matrix = SellMatrix(
                blk.matrix, chunk_height=cfg.chunk, sigma=cfg.sigma
            )
    return A, part


def _run_probe(A, part, cfg, scale, n_moments, block) -> None:
    if cfg.workers == 1:
        from repro.core.moments import compute_eta

        compute_eta(
            A, scale, n_moments, block, "aug_spmmv",
            backend=cfg.backend, precision=cfg.precision,
            threads=cfg.threads, simd=cfg.simd,
        )
        return
    from repro.dist.comm import SimWorld
    from repro.dist.kpm_parallel import distributed_eta
    from repro.dist.mp import MpWorld

    world = (MpWorld(part.n_ranks) if cfg.engine == "mp"
             else SimWorld(part.n_ranks))
    distributed_eta(
        A, part, scale, n_moments, block, world,
        backend=cfg.backend, overlap=(cfg.overlap == "on"),
        precision=cfg.precision, threads=cfg.threads, simd=cfg.simd,
    )


# -- the search driver -------------------------------------------------
def tune(
    H,
    *,
    space: TuneSpace | None = None,
    n_random: int = 8,
    n_measure: int = 5,
    greedy_rounds: int = 2,
    n_moments: int = 32,
    seed: int = 0,
    repeats: int = 1,
    measure_fn=None,
    log=None,
) -> TuneResult:
    """Random + greedy search for the fastest configuration on this host.

    1. **Seed** the pool with :data:`DEFAULT_CONFIG` plus ``n_random``
       random samples of ``space``.
    2. **Pre-rank** the samples by :func:`model_cost` and measure the
       default plus the ``n_measure`` most promising candidates.
    3. **Greedy refinement**: for up to ``greedy_rounds`` rounds,
       measure every unvisited single-knob neighbor of the incumbent
       and move to the best one; stop early when no neighbor improves.

    A candidate whose measurement raises (e.g. a format/backend combo
    unavailable on this host) scores ``inf`` and simply drops out.
    ``measure_fn(H, cfg)`` overrides the measurement (tests inject a
    deterministic cost here).  Returns a :class:`TuneResult` whose
    ``config`` is never slower than the measured untuned default.
    """
    space = space if space is not None else TuneSpace()
    rng = np.random.default_rng(seed)
    if measure_fn is None:
        def measure_fn(h, cfg):  # noqa: ANN001 - local default
            return measure(h, cfg, n_moments=n_moments, seed=seed,
                           repeats=repeats)

    seen: dict[TuneConfig, float] = {}
    evaluated: list[tuple[TuneConfig, float]] = []

    def score(cfg: TuneConfig) -> float:
        if cfg in seen:
            return seen[cfg]
        try:
            s = float(measure_fn(H, cfg))
        except Exception:  # noqa: BLE001 - invalid combos drop out
            s = float("inf")
        seen[cfg] = s
        evaluated.append((cfg, s))
        if log is not None:
            log(cfg, s)
        return s

    pool = {space.sample(rng) for _ in range(max(0, int(n_random)))}
    pool.discard(DEFAULT_CONFIG)
    ranked = sorted(pool, key=lambda c: model_cost(H, c, n_moments))

    baseline = score(DEFAULT_CONFIG)
    for cfg in ranked[: max(0, int(n_measure))]:
        score(cfg)

    best = min(seen, key=seen.get)
    for _ in range(max(0, int(greedy_rounds))):
        improved = False
        for cand in space.neighbors(best):
            if cand in seen:
                continue
            if score(cand) < seen[best]:
                improved = True
        incumbent = min(seen, key=seen.get)
        if incumbent == best or not improved:
            best = incumbent
            break
        best = incumbent

    return TuneResult(
        config=best,
        seconds=seen[best],
        baseline_seconds=baseline,
        signature=profile_key(H),
        evaluated=evaluated,
    )
