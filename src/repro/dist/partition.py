"""Row partitioning, including the paper's weighted heterogeneous scheme.

"An intrinsic property of heterogeneous systems is that the components
usually do not only differ in architecture but also in performance. For
optimal load balancing this difference has to be taken into account for
work distribution. In our execution environment a weight has to be
provided for each process. From this weight we compute the amount of
matrix/vector rows that get assigned to it." (paper Section VI-A)

Rows are assigned as contiguous blocks (the data-parallel slab
decomposition); block boundaries can be aligned (e.g. to the 4-orbital
spinor blocks of the TI matrix, or to a SELL chunk height).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import PartitionError
from repro.util.validation import check_positive


@dataclass(frozen=True)
class RowPartition:
    """Contiguous row blocks: rank p owns rows [offsets[p], offsets[p+1])."""

    offsets: tuple[int, ...]

    def __post_init__(self) -> None:
        off = self.offsets
        if len(off) < 2:
            raise PartitionError("partition needs at least one rank")
        if off[0] != 0:
            raise PartitionError(f"offsets must start at 0, got {off[0]}")
        if any(b < a for a, b in zip(off, off[1:])):
            raise PartitionError(f"offsets must be non-decreasing: {off}")

    # ------------------------------------------------------------------
    @classmethod
    def equal(cls, n_rows: int, n_ranks: int, align: int = 1) -> "RowPartition":
        """Near-equal contiguous blocks."""
        return cls.from_weights(n_rows, [1.0] * n_ranks, align=align)

    @classmethod
    def from_weights(
        cls, n_rows: int, weights, align: int = 1
    ) -> "RowPartition":
        """Blocks proportional to ``weights``, aligned to ``align`` rows.

        The ideal cumulative boundaries ``n * cumsum(w) / sum(w)`` are
        rounded to the nearest multiple of ``align`` (the last boundary is
        pinned to ``n_rows``); a rank may end up empty if its weight is
        tiny relative to the alignment granularity.
        """
        check_positive("n_rows", n_rows)
        check_positive("align", align)
        w = np.asarray(weights, dtype=float)
        if w.ndim != 1 or w.size == 0:
            raise PartitionError(f"weights must be a non-empty 1-D sequence")
        if np.any(w < 0) or w.sum() <= 0:
            raise PartitionError(f"weights must be non-negative with positive sum")
        ideal = n_rows * np.cumsum(w) / w.sum()
        bounds = (np.round(ideal / align) * align).astype(np.int64)
        bounds[-1] = n_rows
        bounds = np.minimum(np.maximum.accumulate(bounds), n_rows)
        return cls((0, *bounds.tolist()))

    # ------------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        return len(self.offsets) - 1

    @property
    def n_rows(self) -> int:
        return self.offsets[-1]

    def bounds(self, rank: int) -> tuple[int, int]:
        """(first_row, one_past_last_row) of ``rank``."""
        if not 0 <= rank < self.n_ranks:
            raise PartitionError(
                f"rank {rank} outside partition of {self.n_ranks} ranks"
            )
        return self.offsets[rank], self.offsets[rank + 1]

    def slice_of(self, rank: int) -> slice:
        """``rank``'s rows as a slice — zero-copy views into shared arrays."""
        lo, hi = self.bounds(rank)
        return slice(lo, hi)

    def counts(self) -> np.ndarray:
        """Rows per rank."""
        return np.diff(np.asarray(self.offsets, dtype=np.int64))

    def owner_of(self, rows) -> np.ndarray:
        """Owning rank of each global row index (vectorized)."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= self.n_rows):
            raise PartitionError("row index outside the partitioned range")
        return np.searchsorted(np.asarray(self.offsets), rows, side="right") - 1

    def to_local(self, rows) -> np.ndarray:
        """Local index of each global row within its owner's block."""
        rows = np.asarray(rows, dtype=np.int64)
        owners = self.owner_of(rows)
        return rows - np.asarray(self.offsets)[owners]

    def imbalance(self, weights=None) -> float:
        """Max over ranks of (assigned rows / ideal rows); 1.0 is perfect."""
        counts = self.counts().astype(float)
        if weights is None:
            ideal = np.full(self.n_ranks, self.n_rows / self.n_ranks)
        else:
            w = np.asarray(weights, dtype=float)
            ideal = self.n_rows * w / w.sum()
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(ideal > 0, counts / ideal, np.inf)
        return float(np.max(ratio))


def grid_blocks(
    row_start: int, row_stop: int, grid: int
) -> list[tuple[int, slice]]:
    """The eta-grid blocks inside rows ``[row_start, row_stop)``.

    Returns ``(global_block_index, local_row_slice)`` pairs, where the
    slice indexes into a rank-local array holding exactly those rows.
    ``row_start`` must be a multiple of ``grid`` (grid-aligned
    partitions guarantee it), so no block ever straddles two ranks and
    each block's eta partial has exactly one writer.
    """
    check_positive("grid", grid)
    if row_start % grid:
        raise PartitionError(
            f"row range start {row_start} is not aligned to the eta grid "
            f"of {grid} rows"
        )
    out = []
    for k in range(row_start // grid, -(-row_stop // grid)):
        lo = k * grid - row_start
        hi = min((k + 1) * grid - row_start, row_stop - row_start)
        out.append((k, slice(lo, hi)))
    return out


def weights_from_performance(gflops: list[float]) -> list[float]:
    """Normalize device performances into partition weights.

    "A good guess is to calculate the weights from the single-device
    performance numbers" (paper Section VI-B); the benches also sweep
    perturbations of this guess to mirror the paper's experimental
    weight tuning.
    """
    g = np.asarray(gflops, dtype=float)
    if np.any(g <= 0):
        raise PartitionError("device performances must be positive")
    return (g / g.sum()).tolist()
