"""Cluster-scale performance model: paper Fig. 12 and Table III.

Combines the node-level performance model (:mod:`repro.perf.roofline`),
the domain-decomposition halo volumes of the TI application, and the
interconnect model (:mod:`repro.dist.network`) into end-to-end
predictions for:

* **weak scaling** of the "Square" and "Bar" test cases up to 1024
  Piz Daint nodes (Fig. 12) — base domain 400 x 100 x 40 per node,
* **strong scaling** at fixed problem size (Fig. 12's strong curves),
* **Table III** — node-hours to solve the largest system (R = 32,
  M = 2000) with the three solver variants: throughput-mode
  ``aug_spmv()``, per-iteration-reduction ``aug_spmmv()*``, and the
  optimal ``aug_spmmv()``.

Domain-decomposition conventions: nodes form a ``px x py`` process grid
over the (periodic) x and y axes; each node owns an
``(nx/px) x (ny/py) x nz`` slab and exchanges one stencil layer (4
orbitals deep) per face and iteration. A single node has no network
faces — its intra-node CPU/GPU traffic is already inside the node-level
heterogeneous efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.dist.network import CRAY_ARIES, NetworkModel
from repro.perf.arch import PIZ_DAINT_NODE, NodeConfig
from repro.perf.balance import KPM_FLOPS_PER_ROW, kpm_flops
from repro.perf.roofline import node_performance
from repro.util.constants import F_ADD, F_MUL, S_D
from repro.util.validation import check_positive

#: Orbitals per lattice site (matrix rows per site) of the TI application.
ORBITALS = 4


class WeakScalingCase(str, Enum):
    """The two weak-scaling domain families of paper Fig. 12."""

    SQUARE = "square"
    BAR = "bar"


def square_weak_scaling_domains(node_counts) -> list[tuple[int, int, int]]:
    """The 'Square' family: 400x100x40 on 1 node; y grows to 400 at 4
    nodes ("in order to have a quadratic tile"); thereafter the node
    count quadruples while x and y double. The 1024-node member is the
    6400 x 6400 x 40 system with 6.55e9 matrix rows — the paper's
    "matrix with over 6.5e9 rows"."""
    out = []
    for n in node_counts:
        if n == 1:
            out.append((400, 100, 40))
            continue
        k = int(round(np.log(n) / np.log(4)))
        if 4**k != n:
            raise ValueError(
                f"'Square' weak scaling is defined on powers of 4, got {n}"
            )
        out.append((400 * 2 ** (k - 1), 400 * 2 ** (k - 1), 40))
    return out


def bar_weak_scaling_domains(node_counts) -> list[tuple[int, int, int]]:
    """The 'Bar' family: fixed Ny = 100, Nz = 40, Nx grows by 400/node."""
    return [(400 * int(n), 100, 40) for n in node_counts]


def process_grid(case: WeakScalingCase, n_nodes: int) -> tuple[int, int]:
    """Node grid over the (x, y) axes: near-square for 'Square', 1-D in x
    for 'Bar' (matching how the domains grow)."""
    if case is WeakScalingCase.BAR:
        return n_nodes, 1
    px = int(np.sqrt(n_nodes))
    while n_nodes % px != 0:
        px -= 1
    return px, n_nodes // px


@dataclass
class ClusterModel:
    """End-to-end performance model for a homogeneous cluster of nodes.

    Setting ``network=NetworkModel(pcie_overlap=True)`` models the
    paper's proposed future optimization: "establish a pipeline for this
    GPU-CPU-MPI communication, i.e., download parts of the communication
    buffer to the host and transfer previous chunks via the network at
    the same time" (Section VII). The ablation bench quantifies the gain.
    """

    node: NodeConfig = PIZ_DAINT_NODE
    network: NetworkModel = CRAY_ARIES
    r: int = 32
    nnzr: float = 13.0
    heterogeneous_efficiency: float = 0.875
    #: Hide halo communication behind the interior-row computation
    #: (:mod:`repro.dist.overlap`); the exposed time becomes
    #: max(0, t_halo - interior_fraction * t_compute).
    comm_overlap: bool = False

    # ------------------------------------------------------------------
    def node_gflops(self, stage: str, r: int | None = None) -> float:
        """Heterogeneous per-node Gflop/s for a solver stage."""
        r = self.r if r is None else r
        return node_performance(
            self.node, stage, r,
            heterogeneous_efficiency=self.heterogeneous_efficiency,
        )["heterogeneous"]

    def gpu_row_fraction(self, stage: str = "aug_spmmv", r: int | None = None) -> float:
        """Share of a node's rows owned by its GPU rank(s) (weight guess)."""
        r = self.r if r is None else r
        perf = node_performance(
            self.node, stage, r,
            heterogeneous_efficiency=self.heterogeneous_efficiency,
        )
        total = perf["cpu"] + perf["gpu"]
        return perf["gpu"] / total if total > 0 else 0.0

    # ------------------------------------------------------------------
    def halo_rows_per_node(
        self, domain: tuple[int, int, int], grid: tuple[int, int]
    ) -> list[int]:
        """Matrix rows exchanged per face and iteration (one node's view).

        The stencil couples nearest-neighbor sites, so each face is one
        site layer deep: an x-face moves ``ORBITALS * ny_local * nz``
        rows. Periodic x/y means px > 1 (py > 1) always produces both
        faces; px == 1 wraps onto the node itself (no network message).
        """
        nx, ny, nz = domain
        px, py = grid
        # ceil-division local extents: when the grid does not divide the
        # domain exactly, the widest slab bounds the halo (and compute).
        nx_loc = -(-nx // px)
        ny_loc = -(-ny // py)
        faces: list[int] = []
        if px > 1:
            faces += [ORBITALS * ny_loc * nz] * 2
        if py > 1:
            faces += [ORBITALS * nx_loc * nz] * 2
        return faces

    def iteration_times(
        self,
        domain: tuple[int, int, int],
        n_nodes: int,
        *,
        stage: str = "aug_spmmv",
        r: int | None = None,
        reduction: str = "end",
        grid: tuple[int, int] | None = None,
        case: WeakScalingCase = WeakScalingCase.SQUARE,
    ) -> dict[str, float]:
        """Per-inner-iteration time components for one node (seconds)."""
        check_positive("n_nodes", n_nodes)
        r = self.r if r is None else r
        nx, ny, nz = domain
        n_rows = ORBITALS * nx * ny * nz
        if grid is None:
            grid = process_grid(case, n_nodes)
        if grid[0] * grid[1] != n_nodes:
            raise ValueError(f"grid {grid} does not match {n_nodes} nodes")
        rows_per_node = n_rows / n_nodes
        flops_per_iter = rows_per_node * r * (
            self.nnzr * (F_ADD + F_MUL) + KPM_FLOPS_PER_ROW
        )
        t_comp = flops_per_iter / (self.node_gflops(stage, r) * 1.0e9)
        face_bytes = [
            rows * r * S_D for rows in self.halo_rows_per_node(domain, grid)
        ]
        t_halo = self.network.halo_time(
            face_bytes, gpu_fraction=self.gpu_row_fraction(stage, r)
        )
        if self.comm_overlap:
            from repro.dist.overlap import exposed_communication_time

            # interior fraction of an (nx/px) x (ny/py) x nz slab: all
            # sites except the one-deep layers along each cut face
            px, py = grid
            nx_loc = -(-nx // px)
            ny_loc = -(-ny // py)
            frac_boundary = 0.0
            if px > 1:
                frac_boundary += min(2.0 / nx_loc, 1.0)
            if py > 1:
                frac_boundary += min(2.0 / ny_loc, 1.0)
            interior = max(0.0, 1.0 - frac_boundary)
            t_halo = exposed_communication_time(t_halo, t_comp, interior)
        t_reduce = 0.0
        if reduction == "every":
            t_reduce = self.network.allreduce_time(
                2 * r * S_D, n_nodes, compute_time=t_comp + t_halo
            )
        elif reduction != "end":
            raise ValueError(f"reduction must be 'end' or 'every', got {reduction!r}")
        return {
            "compute": t_comp,
            "halo": t_halo,
            "reduce": t_reduce,
            "total": t_comp + t_halo + t_reduce,
        }

    # ------------------------------------------------------------------
    def solve_time(
        self,
        domain: tuple[int, int, int],
        n_nodes: int,
        m: int,
        *,
        variant: str = "aug_spmmv",
        r: int | None = None,
        grid: tuple[int, int] | None = None,
        case: WeakScalingCase = WeakScalingCase.SQUARE,
    ) -> float:
        """Wall-clock seconds for a full KPM solve (R vectors, M moments).

        ``variant``:

        * ``'aug_spmmv'``   — blocked, one final reduction (optimal),
        * ``'aug_spmmv*'``  — blocked, global reduction every iteration,
        * ``'aug_spmv'``    — throughput mode: R independent width-1 runs.
        """
        check_positive("m", m)
        r = self.r if r is None else r
        if variant == "aug_spmv":
            it = self.iteration_times(
                domain, n_nodes, stage="aug_spmv", r=1,
                reduction="end", grid=grid, case=case,
            )
            t = r * (m / 2) * it["total"]
        elif variant in ("aug_spmmv", "aug_spmmv*"):
            reduction = "every" if variant.endswith("*") else "end"
            it = self.iteration_times(
                domain, n_nodes, stage="aug_spmmv", r=r,
                reduction=reduction, grid=grid, case=case,
            )
            t = (m / 2) * it["total"]
        else:
            raise ValueError(f"unknown variant {variant!r}")
        t += self.network.allreduce_time(2 * r * m * S_D, n_nodes)
        return t

    def solve_tflops(
        self,
        domain: tuple[int, int, int],
        n_nodes: int,
        m: int,
        *,
        variant: str = "aug_spmmv",
        r: int | None = None,
        grid: tuple[int, int] | None = None,
        case: WeakScalingCase = WeakScalingCase.SQUARE,
    ) -> float:
        """Sustained Tflop/s over a full solve."""
        r = self.r if r is None else r
        nx, ny, nz = domain
        n_rows = ORBITALS * nx * ny * nz
        flops = kpm_flops(n_rows, int(self.nnzr * n_rows), r, m)
        t = self.solve_time(
            domain, n_nodes, m, variant=variant, r=r, grid=grid, case=case
        )
        return flops / t / 1.0e12

    def node_hours(
        self,
        domain: tuple[int, int, int],
        n_nodes: int,
        m: int,
        *,
        variant: str = "aug_spmmv",
        r: int | None = None,
    ) -> float:
        """Compute-resource cost of a full solve (paper Table III)."""
        t = self.solve_time(domain, n_nodes, m, variant=variant, r=r)
        return t * n_nodes / 3600.0

    # ------------------------------------------------------------------
    def weak_scaling(
        self,
        case: WeakScalingCase | str,
        node_counts,
        m: int = 2000,
        r: int | None = None,
    ) -> list[dict[str, float]]:
        """Weak-scaling series (paper Fig. 12): Tflop/s vs node count."""
        case = WeakScalingCase(case)
        domains = (
            square_weak_scaling_domains(node_counts)
            if case is WeakScalingCase.SQUARE
            else bar_weak_scaling_domains(node_counts)
        )
        out = []
        base = None
        for n, domain in zip(node_counts, domains):
            tf = self.solve_tflops(domain, n, m, r=r, case=case)
            if base is None:
                base = tf
            out.append(
                {
                    "nodes": float(n),
                    "domain": domain,
                    "tflops": tf,
                    "efficiency": tf / (base * n / node_counts[0]),
                }
            )
        return out

    def strong_scaling(
        self,
        domain: tuple[int, int, int],
        node_counts,
        m: int = 2000,
        r: int | None = None,
        case: WeakScalingCase | str = WeakScalingCase.SQUARE,
    ) -> list[dict[str, float]]:
        """Strong-scaling series at fixed problem size (paper Fig. 12)."""
        case = WeakScalingCase(case)
        out = []
        base = None
        for n in node_counts:
            tf = self.solve_tflops(domain, int(n), m, r=r, case=case)
            if base is None:
                base = (tf, n)
            out.append(
                {
                    "nodes": float(n),
                    "tflops": tf,
                    "speedup": tf / base[0],
                    "efficiency": (tf / base[0]) / (n / base[1]),
                }
            )
        return out
