"""In-process SPMD communication simulator with message logging.

:class:`SimWorld` plays the role of ``MPI_COMM_WORLD``: it owns per-rank
device labels and a :class:`MessageLog`. Point-to-point transfers and
collectives are executed as immediate array copies (the simulator is
sequential, so no deadlock semantics are needed), while every transfer is
recorded with source, destination, byte count, and phase tag so the
network cost model can price an execution after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.errors import SimulationError
from repro.util.validation import check_positive


@dataclass(frozen=True)
class MessageRecord:
    """One logged transfer."""

    src: int
    dst: int
    nbytes: int
    phase: str


@dataclass
class MessageLog:
    """Ordered log of all simulated communication.

    The byte totals are maintained incrementally in :meth:`add` — a
    distributed run logs one record per message, and recomputing the
    totals by walking the whole log made every query O(messages).
    """

    records: list[MessageRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Rebuild the accumulators for logs constructed with pre-seeded
        # records (the dataclass field is part of the public signature).
        self._total_bytes = sum(r.nbytes for r in self.records)
        self._by_phase: dict[str, int] = {}
        for r in self.records:
            self._by_phase[r.phase] = self._by_phase.get(r.phase, 0) + r.nbytes

    def add(self, src: int, dst: int, nbytes: int, phase: str) -> None:
        nbytes = int(nbytes)
        self.records.append(MessageRecord(src, dst, nbytes, phase))
        self._total_bytes += nbytes
        self._by_phase[phase] = self._by_phase.get(phase, 0) + nbytes

    @property
    def total_bytes(self) -> int:
        return self._total_bytes

    @property
    def n_messages(self) -> int:
        return len(self.records)

    def bytes_by_phase(self) -> dict[str, int]:
        return dict(self._by_phase)

    def bytes_by_rank(self, n_ranks: int) -> np.ndarray:
        """Outgoing bytes per source rank (collectives attributed to src)."""
        out = np.zeros(n_ranks, dtype=np.int64)
        for r in self.records:
            if 0 <= r.src < n_ranks:
                out[r.src] += r.nbytes
        return out

    def clear(self) -> None:
        self.records.clear()
        self._total_bytes = 0
        self._by_phase = {}


def log_allreduce(log: MessageLog, n_ranks: int, nbytes: int, phase: str) -> None:
    """Charge one allreduce to ``log`` as recursive-doubling stages.

    Shared by :class:`SimWorld` and the multiprocess engine's accounting
    shim (:mod:`repro.dist.mp`), so a real shared-memory reduction is
    priced identically to the simulated one: 2 log2(P) stages, one
    buffer-sized message per participating rank per stage.
    """
    if n_ranks <= 1:
        return
    stages = max(int(np.ceil(np.log2(n_ranks))), 1)
    for stage in range(stages):
        for rank in range(n_ranks):
            partner = rank ^ (1 << stage)
            if partner < n_ranks and partner != rank:
                log.add(rank, partner, nbytes, phase)


class SimWorld:
    """A simulated communicator of ``n_ranks`` processes.

    ``devices`` optionally labels each rank (``'cpu'`` / ``'gpu'``); GPU
    ranks stage their communication buffers over PCI Express (paper
    Section VI-A), which the network model prices separately using these
    labels.
    """

    def __init__(self, n_ranks: int, devices: list[str] | None = None) -> None:
        check_positive("n_ranks", n_ranks)
        self.n_ranks = int(n_ranks)
        if devices is None:
            devices = ["cpu"] * self.n_ranks
        if len(devices) != self.n_ranks:
            raise SimulationError(
                f"need one device label per rank ({self.n_ranks}), "
                f"got {len(devices)}"
            )
        for d in devices:
            if d not in ("cpu", "gpu"):
                raise SimulationError(f"unknown device label {d!r}")
        self.devices = list(devices)
        self.log = MessageLog()

    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, data: np.ndarray, phase: str) -> np.ndarray:
        """Point-to-point transfer; returns the received array (a copy)."""
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            raise SimulationError(f"rank {src} attempted to send to itself")
        data = np.asarray(data)
        self.log.add(src, dst, data.nbytes, phase)
        return data.copy()

    def allreduce_sum(
        self, contributions: list[np.ndarray], phase: str = "allreduce"
    ) -> np.ndarray:
        """Global sum over per-rank arrays; every rank receives the result.

        Logged as the 2 log2(P) message stages of a recursive-doubling
        allreduce (the cost model prices latency separately; here we log
        the volume each rank moves: one buffer per stage).
        """
        if len(contributions) != self.n_ranks:
            raise SimulationError(
                f"allreduce needs one contribution per rank "
                f"({self.n_ranks}), got {len(contributions)}"
            )
        arrays = [np.asarray(c) for c in contributions]
        shape = arrays[0].shape
        for a in arrays[1:]:
            if a.shape != shape:
                raise SimulationError("allreduce contributions differ in shape")
        total = np.sum(arrays, axis=0)
        log_allreduce(self.log, self.n_ranks, arrays[0].nbytes, phase)
        return total

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise SimulationError(
                f"rank {rank} outside communicator of size {self.n_ranks}"
            )

    def __repr__(self) -> str:
        return f"SimWorld(n_ranks={self.n_ranks}, devices={self.devices})"
