"""Interconnect cost model: Cray Aries-class network plus PCIe staging.

Prices the communication of the distributed KPM solver:

* point-to-point halo messages with the usual latency/bandwidth
  (alpha-beta) model,
* PCI Express staging for GPU ranks — on the paper's systems every halo
  buffer of a GPU process is assembled on the device, downloaded through
  pinned host memory, and only then handed to MPI (Section VI-A; the
  paper's outlook proposes pipelining this, which we expose as an option),
* allreduce collectives via recursive doubling, with a synchronization
  penalty term: a global reduction in every iteration forces all ranks to
  line up, exposing load imbalance (this is what makes the per-iteration
  reduction variant of paper Table III ~8% slower, far beyond the pure
  wire time of a few-kilobyte message).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.constants import BYTES_PER_GB


@dataclass(frozen=True)
class NetworkModel:
    """Alpha-beta network plus PCIe staging parameters."""

    latency_s: float = 1.5e-6
    bandwidth_gbs: float = 8.5
    pcie_bandwidth_gbs: float = 6.0
    pcie_latency_s: float = 1.0e-5
    #: Effective per-stage latency of a large-scale allreduce, including
    #: software overhead (well above the wire latency).
    allreduce_stage_latency_s: float = 2.0e-5
    #: Fraction of the per-iteration compute time exposed as idle waiting
    #: when a global synchronization point (allreduce) occurs each
    #: iteration — load-imbalance / OS-noise amplification.
    sync_imbalance_fraction: float = 0.06
    #: Whether PCIe staging overlaps with network transfer (the pipelining
    #: optimization from the paper's outlook; False reproduces the paper).
    pcie_overlap: bool = False

    # ------------------------------------------------------------------
    def ptp_time(self, nbytes: float) -> float:
        """One point-to-point message."""
        if nbytes < 0:
            raise ValueError(f"message size must be >= 0, got {nbytes}")
        return self.latency_s + nbytes / (self.bandwidth_gbs * BYTES_PER_GB)

    def pcie_time(self, nbytes: float) -> float:
        """One host<->device staging transfer."""
        if nbytes < 0:
            raise ValueError(f"transfer size must be >= 0, got {nbytes}")
        return self.pcie_latency_s + nbytes / (
            self.pcie_bandwidth_gbs * BYTES_PER_GB
        )

    def halo_time(
        self,
        face_bytes: list[float],
        *,
        gpu_fraction: float = 0.0,
    ) -> float:
        """Per-iteration halo-exchange time for one node.

        ``face_bytes`` lists the message sizes this node exchanges (one
        entry per neighbor face); sends/receives of distinct faces are
        assumed serialized (no overlap, matching the paper's
        non-pipelined implementation). ``gpu_fraction`` of every buffer
        additionally crosses PCIe twice (device -> host before sending,
        host -> device after receiving).
        """
        t = 0.0
        for nbytes in face_bytes:
            t += self.ptp_time(nbytes)
            if gpu_fraction > 0.0:
                staging = 2.0 * self.pcie_time(nbytes * gpu_fraction)
                t = max(t, staging) if self.pcie_overlap else t + staging
        return t

    def allreduce_time(
        self, nbytes: float, n_ranks: int, *, compute_time: float = 0.0
    ) -> float:
        """Recursive-doubling allreduce over ``n_ranks`` processes.

        ``compute_time`` is the per-iteration compute span; when supplied,
        the synchronization-imbalance penalty is added (use it for the
        per-iteration-reduction variant; the one-off final reduction
        should pass 0).
        """
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        if n_ranks == 1:
            return 0.0
        stages = int(np.ceil(np.log2(n_ranks)))
        wire = stages * (
            self.allreduce_stage_latency_s
            + nbytes / (self.bandwidth_gbs * BYTES_PER_GB)
        )
        return wire + self.sync_imbalance_fraction * compute_time


    def price_log(
        self,
        log,
        devices: list[str] | None = None,
        *,
        n_ranks: int | None = None,
    ) -> dict[str, float]:
        """Price a :class:`~repro.dist.comm.MessageLog` after the fact.

        Connects the *functional* distributed runs (which record every
        transfer) to the cost model: each point-to-point message costs
        ``ptp_time``; messages with a GPU endpoint additionally pay PCIe
        staging on that side. Per-rank serialization is respected by
        attributing each message to its source and taking the maximum
        over ranks ("the slowest rank gates the iteration").

        Returns ``{"per_rank_max": ..., "sum": ..., "messages": ...}``
        in seconds/counts.
        """
        import numpy as np

        if n_ranks is None:
            n_ranks = (
                max((max(r.src, r.dst) for r in log.records), default=-1) + 1
            )
        per_rank = np.zeros(max(n_ranks, 1))
        total = 0.0
        for rec in log.records:
            t = self.ptp_time(rec.nbytes)
            for end in (rec.src, rec.dst):
                if devices is not None and 0 <= end < len(devices) \
                        and devices[end] == "gpu":
                    staging = self.pcie_time(rec.nbytes)
                    t = max(t, staging) if self.pcie_overlap else t + staging
            if 0 <= rec.src < per_rank.size:
                per_rank[rec.src] += t
            total += t
        return {
            "per_rank_max": float(per_rank.max()) if per_rank.size else 0.0,
            "sum": total,
            "messages": float(log.n_messages),
        }


#: The Piz Daint interconnect (Cray XC30 "Aries" dragonfly).
CRAY_ARIES = NetworkModel()
