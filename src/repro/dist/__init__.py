"""Distributed-execution substrate: simulated MPI over partitioned KPM.

The paper parallelizes KPM data-parallel across heterogeneous devices:
one MPI process per CPU/GPU, contiguous matrix-row blocks sized by device
weights, halo exchanges for the SpMMV input vectors, and a single global
reduction of the dot products at the very end (Section VI-A).

Without an MPI runtime we *simulate* the SPMD program: all ranks live in
one process (:class:`~repro.dist.comm.SimWorld`), communication is an
explicit buffer copy that is logged message-by-message, and the KPM
driver (:mod:`repro.dist.kpm_parallel`) runs the ranks' local kernels in
sequence. Results are bit-compatible with the serial solver; the message
log feeds the interconnect cost model (:mod:`repro.dist.network`) and the
cluster scaling model (:mod:`repro.dist.scaling_model`) that regenerate
paper Fig. 12 and Table III.
"""

from repro.dist.comm import SimWorld, MessageLog, MessageRecord
from repro.dist.partition import RowPartition, weights_from_performance
from repro.dist.halo import CommPattern, DistributedMatrix, partition_matrix
from repro.dist.kpm_parallel import distributed_eta, distributed_dos_moments
from repro.dist.network import NetworkModel, CRAY_ARIES
from repro.dist.autotune import autotune_weights, throughput_timer, AutotuneResult
from repro.dist.elastic import (
    RebalancePolicy,
    RebalanceMonitor,
    MembershipPlan,
    MembershipEvent,
    ElasticReport,
    elastic_eta,
    resolve_rebalance,
)
from repro.dist.tune import (
    TuneConfig,
    TuneSpace,
    TuneResult,
    tune,
    lookup,
    save_profile,
)
from repro.dist.overlap import split_for_overlap, two_phase_spmmv, OverlapSplit
from repro.dist.scaling_model import (
    ClusterModel,
    WeakScalingCase,
    square_weak_scaling_domains,
    bar_weak_scaling_domains,
)

__all__ = [
    "SimWorld",
    "MessageLog",
    "MessageRecord",
    "RowPartition",
    "weights_from_performance",
    "CommPattern",
    "DistributedMatrix",
    "partition_matrix",
    "distributed_eta",
    "distributed_dos_moments",
    "NetworkModel",
    "CRAY_ARIES",
    "ClusterModel",
    "WeakScalingCase",
    "square_weak_scaling_domains",
    "bar_weak_scaling_domains",
    "autotune_weights",
    "throughput_timer",
    "AutotuneResult",
    "RebalancePolicy",
    "RebalanceMonitor",
    "MembershipPlan",
    "MembershipEvent",
    "ElasticReport",
    "elastic_eta",
    "resolve_rebalance",
    "TuneConfig",
    "TuneSpace",
    "TuneResult",
    "tune",
    "lookup",
    "save_profile",
    "split_for_overlap",
    "two_phase_spmmv",
    "OverlapSplit",
]
