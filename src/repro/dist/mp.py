"""True multiprocess shared-memory KPM execution engine.

Where :class:`repro.dist.comm.SimWorld` *simulates* the paper's
data-parallel scheme sequentially in one process, this module runs the
identical rank loop of :mod:`repro.dist.kpm_parallel` in real OS
processes: every rank is a worker (``multiprocessing.Process``) that
owns a contiguous weighted row block (:mod:`repro.dist.partition`),
iterates the fused ``aug_spmmv`` kernel on it with its own kernel
backend, and meets its neighbours at per-iteration barriers.

Communication structure (paper Section VI-A, mapped onto one node):

* the start block is published once in a POSIX shared-memory segment —
  workers slice their rows zero-copy instead of receiving pickles;
* each directed halo edge (p → q) owns a shared *window* sized to its
  transfer list; one halo exchange is: every rank packs its send
  windows, a barrier, every rank gathers its ``[local | halo]`` kernel
  input from the windows it receives from, a barrier ("the assembly of
  communication buffers ... only the elements which need to be
  transferred are copied");
* per-rank eta contributions accumulate in a shared ``(P, M, R)`` array
  and are reduced **once** after the workers join — the single deferred
  global reduction of Section II.  ``reduction='every'`` instead
  synchronizes and sums after every iteration (the Table III
  ``aug_spmmv()*`` ablation).

Accounting: the engine charges :class:`~repro.dist.comm.MessageLog`
records equivalent to what :class:`SimWorld` logs for the same run
(halo volumes from the communication pattern, reductions priced as
recursive doubling via :func:`~repro.dist.comm.log_allreduce`), and
cross-checks the halo volume against byte counters the workers maintain
while actually copying the windows — so the network cost model keeps
working on real runs, and a worker that skipped communication is caught.

Failure model: any worker exception (or hard death) aborts the shared
barrier, which unblocks every peer; the parent terminates the world,
unlinks all shared memory, and raises
:class:`~repro.util.errors.SimulationError` — no hang, no leaked
``/dev/shm`` segments (asserted by the test suite).
"""

from __future__ import annotations

import json
import multiprocessing
import struct
import sys
import time
from threading import BrokenBarrierError

import numpy as np

from repro.core.moments import _check_moments
from repro.core.scaling import SpectralScale
from repro.dist.comm import MessageLog, log_allreduce
from repro.dist.halo import DistributedMatrix, RankBlock, partition_matrix
from repro.dist.partition import RowPartition
from repro.dist.shm import ShmArena, ShmAttachment
from repro.obs import NULL_METRICS, MetricsRegistry
from repro.sparse.backend import KernelBackend
from repro.sparse.csr import CSRMatrix
from repro.util.constants import DTYPE
from repro.util.counters import NULL_COUNTERS, PerfCounters
from repro.util.errors import SimulationError
from repro.util.validation import check_block_vector, check_positive

#: acct columns maintained by each worker (its row; no locking needed):
#: actual halo messages/bytes it packed, actual reduction events/bytes.
_ACCT_COLS = 4

#: Per-rank capacity of the observability return channel: one row of the
#: ``obs`` shared segment holds an 8-byte length prefix plus a JSON blob
#: of the worker's PerfCounters dump and MetricsRegistry snapshot (a few
#: KB in practice — the metric namespace is the fixed kernel vocabulary).
_OBS_BLOB_SIZE = 1 << 16


def _pack_obs_blob(row: np.ndarray, payload: dict) -> None:
    """Serialize ``payload`` into one length-prefixed ``obs`` row."""
    blob = json.dumps(payload, separators=(",", ":")).encode()
    if len(blob) > row.size - 8:
        raise RuntimeError(
            f"observability blob ({len(blob)} B) exceeds the shared "
            f"channel capacity ({row.size - 8} B)"
        )
    row[:8] = np.frombuffer(struct.pack("<q", len(blob)), dtype=np.uint8)
    row[8 : 8 + len(blob)] = np.frombuffer(blob, dtype=np.uint8)


def _unpack_obs_blob(row: np.ndarray) -> dict | None:
    """Parse one worker's length-prefixed JSON blob (None when empty)."""
    (length,) = struct.unpack("<q", row[:8].tobytes())
    if length <= 0:
        return None
    return json.loads(row[8 : 8 + length].tobytes().decode())


def _default_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class MpWorld:
    """A communicator of ``n_workers`` real OS processes.

    Drop-in peer of :class:`~repro.dist.comm.SimWorld` for the
    distributed drivers: :func:`repro.dist.kpm_parallel.distributed_eta`
    (and everything built on it) dispatches on the world type, so
    ``distributed_dos(..., world=MpWorld(4))`` runs the rank loop in
    parallel while ``SimWorld(4)`` simulates it sequentially.

    Parameters
    ----------
    n_workers:
        Number of worker processes (one per partition rank).
    devices:
        Optional ``'cpu'``/``'gpu'`` label per rank, as in ``SimWorld``
        (feeds the network cost model's PCIe staging surcharge).
    backend:
        Kernel backend override: ``None`` (use the driver's ``backend=``
        argument for every rank), a single name, or one name per rank —
        heterogeneous worlds can run native kernels on "fast" ranks and
        numpy on others.
    timeout:
        Seconds any worker may wait at a barrier (and the parent for the
        whole run) before the world is declared wedged and torn down.
    start_method:
        ``'fork'``/``'spawn'``/``'forkserver'``; default prefers fork
        (zero-copy matrix inheritance) where the platform offers it.
    """

    def __init__(
        self,
        n_workers: int,
        devices: list[str] | None = None,
        *,
        backend=None,
        timeout: float = 120.0,
        start_method: str | None = None,
    ) -> None:
        check_positive("n_workers", n_workers)
        self.n_ranks = int(n_workers)
        if devices is None:
            devices = ["cpu"] * self.n_ranks
        if len(devices) != self.n_ranks:
            raise SimulationError(
                f"need one device label per rank ({self.n_ranks}), "
                f"got {len(devices)}"
            )
        for d in devices:
            if d not in ("cpu", "gpu"):
                raise SimulationError(f"unknown device label {d!r}")
        self.devices = list(devices)
        self.backend = backend
        self.timeout = float(timeout)
        self.start_method = start_method or _default_start_method()
        self.log = MessageLog()
        #: OS segment names of the most recent run (leak checks in tests).
        self.last_segment_names: list[str] = []
        #: per-rank (halo_msgs, halo_bytes, reduce_events, reduce_bytes)
        #: actually performed by the workers in the most recent run.
        self.last_acct: np.ndarray | None = None
        #: per-rank observability snapshots of the most recent run
        #: (``{"counters": ..., "metrics": ...}`` dicts); None until a
        #: run with live counters/metrics completes.
        self.last_obs: list[dict | None] | None = None

    def __repr__(self) -> str:
        return (
            f"MpWorld(n_workers={self.n_ranks}, devices={self.devices}, "
            f"start_method={self.start_method!r})"
        )


def _backend_names(world: MpWorld, backend) -> list[str]:
    """One backend *name* per rank (workers resolve instances themselves)."""
    spec = world.backend if world.backend is not None else backend
    if isinstance(spec, KernelBackend):
        spec = spec.name
    if spec is None or isinstance(spec, str):
        return [spec or "auto"] * world.n_ranks
    names = [s.name if isinstance(s, KernelBackend) else str(s) for s in spec]
    if len(names) != world.n_ranks:
        raise SimulationError(
            f"need one backend per rank ({world.n_ranks}), got {len(names)}"
        )
    return names


# ---------------------------------------------------------------------
# worker
# ---------------------------------------------------------------------

def _worker(
    rank: int,
    blk: RankBlock,
    send_edges: list[tuple[int, np.ndarray]],
    specs: dict,
    barrier,
    errq,
    a: float,
    b: float,
    n_moments: int,
    r: int,
    reduction: str,
    backend_name: str,
    timeout: float,
    fault: tuple | None,
    want_obs: bool = False,
) -> None:
    """One rank's full KPM loop (module-level: spawn-picklable)."""
    att = None
    code = 0
    try:
        from repro.sparse.backend import get_backend

        bk = get_backend(backend_name)
        att = ShmAttachment(specs)
        start, eta, acct = att["start"], att["eta"], att["acct"]
        lo, hi = blk.row_start, blk.row_stop
        n_local = hi - lo

        # Local observability state: the parent cannot share its own
        # counters/metrics across the process boundary, so each worker
        # accumulates privately and ships a snapshot back through the
        # ``obs`` shared segment after its loop completes.
        if want_obs:
            w_counters: PerfCounters = PerfCounters()
            w_metrics: MetricsRegistry = MetricsRegistry()
        else:
            w_counters = NULL_COUNTERS
            w_metrics = NULL_METRICS

        v = np.ascontiguousarray(start[lo:hi, :], dtype=DTYPE)
        xbuf = np.empty((blk.matrix.n_cols, r), dtype=DTYPE)
        plan = bk.plan(blk.matrix, r)
        wins_out = [(q, rows, att[f"w{rank}_{q}"]) for q, rows in send_edges]
        wins_in = [
            (int(cnt), att[f"w{src}_{rank}"])
            for src, cnt in zip(
                blk.halo_sources.tolist(), blk.halo_counts.tolist()
            )
        ]

        def maybe_fault(m: int) -> None:
            if fault is not None and fault[0] == rank and fault[1] == m:
                if fault[2] == "exit":  # simulated hard crash (SIGKILL-like)
                    import os

                    os._exit(3)
                raise RuntimeError(f"injected fault in rank {rank} at m={m}")

        def exchange(vec: np.ndarray) -> None:
            with w_metrics.span("halo_exchange", phase="dist"):
                for _q, rows, win in wins_out:
                    win[...] = vec[rows, :]  # buffer assembly at the source
                    acct[rank, 0] += 1
                    acct[rank, 1] += win.nbytes
                barrier.wait(timeout)  # all windows packed
                xbuf[:n_local] = vec
                pos = n_local
                for cnt, win in wins_in:
                    xbuf[pos : pos + cnt] = win
                    pos += cnt
                barrier.wait(timeout)  # all windows consumed, reusable

        def reduce_now(m: int) -> None:
            # The contributions already sit in the shared eta array; a
            # barrier makes every rank's slice visible, then each rank
            # forms the global sum locally (allreduce semantics).
            with w_metrics.span("allreduce", phase="dist"):
                acct[rank, 2] += 2
                acct[rank, 3] += 2 * eta[rank, 2 * m].nbytes
                barrier.wait(timeout)
                eta[:, 2 * m].sum(axis=0)
                eta[:, 2 * m + 1].sum(axis=0)

        maybe_fault(0)
        exchange(v)
        # nu_1 = a (H nu_0 - b nu_0) on the local rows
        w = bk.spmmv(blk.matrix, xbuf, counters=w_counters, metrics=w_metrics)
        np.multiply(v, b, out=plan.work_block)
        w -= plan.work_block
        w *= a
        eta[rank, 0] = np.einsum("nr,nr->r", np.conj(v), v)
        eta[rank, 1] = np.einsum("nr,nr->r", np.conj(w), v)
        if reduction == "every":
            reduce_now(0)

        for m in range(1, n_moments // 2):
            maybe_fault(m)
            v, w = w, v
            exchange(v)
            ee, eo = bk.aug_spmmv_step(
                blk.matrix, xbuf, w, a, b, plan=plan,
                counters=w_counters, metrics=w_metrics,
            )
            eta[rank, 2 * m] = ee
            eta[rank, 2 * m + 1] = eo
            if reduction == "every":
                reduce_now(m)

        if want_obs:
            _pack_obs_blob(
                att["obs"][rank],
                {
                    "counters": w_counters.to_dict(),
                    "metrics": w_metrics.snapshot(),
                },
            )
    except BrokenBarrierError:
        code = 2  # a peer died; the parent reports the root cause
    except Exception as exc:  # noqa: BLE001 - forwarded to the parent
        try:
            errq.put((rank, f"{type(exc).__name__}: {exc}"))
        except Exception:  # pragma: no cover - queue already torn down
            pass
        try:
            barrier.abort()  # unblock every waiting peer immediately
        except Exception:  # pragma: no cover
            pass
        code = 1
    finally:
        if att is not None:
            att.close()
    sys.exit(code)


# ---------------------------------------------------------------------
# parent driver
# ---------------------------------------------------------------------

def _charge_log(
    log: MessageLog, dist: DistributedMatrix, r: int, n_moments: int,
    reduction: str,
) -> None:
    """Charge the run to ``log`` exactly as :class:`SimWorld` would.

    Record-for-record equivalent to the simulator executing the same
    partition/reduction — asserted by the differential tests, and the
    contract that keeps :mod:`repro.dist.network` pricing mp runs.
    """
    itemsize = np.dtype(DTYPE).itemsize

    def halo(phase: str) -> None:
        for block in dist.blocks:
            for src, cnt in zip(
                block.halo_sources.tolist(), block.halo_counts.tolist()
            ):
                log.add(src, block.rank, cnt * r * itemsize, phase)

    halo("halo_init")
    if reduction == "every":
        for _ in range(2):
            log_allreduce(log, dist.n_ranks, r * itemsize, "allreduce_iter")
    for _m in range(1, n_moments // 2):
        halo("halo")
        if reduction == "every":
            for _ in range(2):
                log_allreduce(log, dist.n_ranks, r * itemsize, "allreduce_iter")
    log_allreduce(
        log, dist.n_ranks, n_moments * r * itemsize, "allreduce_final"
    )


def _expected_halo_acct(
    dist: DistributedMatrix, r: int, n_moments: int
) -> tuple[np.ndarray, np.ndarray]:
    """(messages, bytes) per source rank over all M/2 halo exchanges."""
    itemsize = np.dtype(DTYPE).itemsize
    msgs = np.zeros(dist.n_ranks, dtype=np.int64)
    nbytes = np.zeros(dist.n_ranks, dtype=np.int64)
    for (p, _q), rows in dist.pattern.send_rows.items():
        if rows.size:
            msgs[p] += 1
            nbytes[p] += rows.size * r * itemsize
    n_exchanges = n_moments // 2
    return msgs * n_exchanges, nbytes * n_exchanges


def mp_eta(
    A: CSRMatrix | DistributedMatrix,
    partition: RowPartition | None,
    scale: SpectralScale,
    n_moments: int,
    start_block: np.ndarray,
    world: MpWorld,
    *,
    reduction: str = "end",
    backend: KernelBackend | str = "auto",
    counters: PerfCounters = NULL_COUNTERS,
    metrics: MetricsRegistry = NULL_METRICS,
    _fault: tuple | None = None,
) -> np.ndarray:
    """Multiprocess equivalent of :func:`repro.dist.kpm_parallel.distributed_eta`.

    Same signature and same result (to reduction-order tolerance) with a
    :class:`MpWorld` in place of the :class:`SimWorld`; ``_fault`` is a
    test-only ``(rank, iteration, mode)`` crash injector.

    With a live ``counters`` or ``metrics``, every worker accumulates its
    own :class:`PerfCounters` / :class:`MetricsRegistry` and ships a JSON
    snapshot back through the ``obs`` shared segment; the parent merges
    worker counters into ``counters`` (numeric totals then equal a serial
    run of the same problem) and worker metrics into ``metrics`` under a
    ``rank<p>.`` prefix.  The raw per-rank snapshots stay available as
    ``world.last_obs``.
    """
    _check_moments(n_moments)
    if reduction not in ("end", "every"):
        raise ValueError(f"reduction must be 'end' or 'every', got {reduction!r}")
    if isinstance(A, DistributedMatrix):
        dist = A
    else:
        if partition is None:
            raise ValueError("partition is required with a global matrix")
        dist = partition_matrix(A, partition)
    if world.n_ranks != dist.n_ranks:
        raise SimulationError(
            f"world has {world.n_ranks} ranks, partition has {dist.n_ranks}"
        )
    n = dist.n_global
    start_block = check_block_vector("start_block", start_block, n)
    r = start_block.shape[1]
    names = _backend_names(world, backend)
    ctx = multiprocessing.get_context(world.start_method)

    send_edges: list[list[tuple[int, np.ndarray]]] = [
        [] for _ in range(dist.n_ranks)
    ]
    for (p, q), rows in sorted(dist.pattern.send_rows.items()):
        if rows.size:
            send_edges[p].append((q, rows))

    want_obs = bool(counters.enabled or metrics.enabled)
    errors: list[tuple[int, str]] = []
    procs: list = []
    with ShmArena() as arena:
        start = arena.create("start", (n, r))
        start[...] = start_block
        eta_shared = arena.create("eta", (world.n_ranks, n_moments, r))
        acct = arena.create("acct", (world.n_ranks, _ACCT_COLS), dtype="int64")
        obs = None
        if want_obs:
            obs = arena.create(
                "obs", (world.n_ranks, _OBS_BLOB_SIZE), dtype="uint8"
            )
            obs[...] = 0
        for p, edges in enumerate(send_edges):
            for q, rows in edges:
                arena.create(f"w{p}_{q}", (rows.size, r))
        world.last_segment_names = list(arena.names)

        barrier = ctx.Barrier(world.n_ranks)
        errq = ctx.SimpleQueue()
        for rank in range(world.n_ranks):
            procs.append(
                ctx.Process(
                    target=_worker,
                    args=(
                        rank, dist.blocks[rank], send_edges[rank],
                        arena.specs, barrier, errq, scale.a, scale.b,
                        n_moments, r, reduction, names[rank],
                        world.timeout, _fault, want_obs,
                    ),
                    daemon=True,
                )
            )
        for p in procs:
            p.start()

        # Monitor: a worker death aborts the barrier so peers unblock
        # instead of waiting out their timeout; a wedged world is torn
        # down at the deadline.
        deadline = time.monotonic() + world.timeout
        timed_out = False
        while any(p.is_alive() for p in procs):
            if any(p.exitcode not in (None, 0) for p in procs):
                barrier.abort()
                break
            if time.monotonic() >= deadline:
                timed_out = True
                barrier.abort()
                break
            time.sleep(0.005)
        for p in procs:
            p.join(timeout=5.0)
            if p.is_alive():  # pragma: no cover - last-resort cleanup
                p.terminate()
                p.join(timeout=5.0)
        while not errq.empty():
            errors.append(errq.get())

        exit_codes = [p.exitcode for p in procs]
        if timed_out or errors or any(c != 0 for c in exit_codes):
            detail = "; ".join(f"rank {rk}: {msg}" for rk, msg in errors)
            if timed_out and not detail:
                detail = f"no progress within {world.timeout:.0f}s"
            if not detail:
                dead = [i for i, c in enumerate(exit_codes) if c not in (0, 2)]
                detail = f"worker(s) {dead} died with exit codes " + str(
                    [exit_codes[i] for i in dead]
                )
            raise SimulationError(f"multiprocess KPM run failed: {detail}")

        # Pull results out of shared memory before the arena unlinks.
        world.last_acct = acct.copy()
        obs_snaps: list[dict | None] = []
        if want_obs:
            obs_snaps = [
                _unpack_obs_blob(obs[p]) for p in range(world.n_ranks)
            ]
        eta_global = eta_shared.sum(axis=0)  # the single deferred reduction

        exp_msgs, exp_bytes = _expected_halo_acct(dist, r, n_moments)
        if not (
            np.array_equal(world.last_acct[:, 0], exp_msgs)
            and np.array_equal(world.last_acct[:, 1], exp_bytes)
        ):
            raise SimulationError(
                "halo accounting mismatch: workers moved "
                f"{world.last_acct[:, 1].tolist()} bytes, pattern predicts "
                f"{exp_bytes.tolist()}"
            )

    if want_obs:
        world.last_obs = obs_snaps
        for p, snap in enumerate(obs_snaps):
            if snap is None:
                raise SimulationError(
                    f"rank {p} finished without shipping its observability "
                    "snapshot"
                )
            counters.merge(PerfCounters.from_dict(snap["counters"]))
            metrics.merge_snapshot(snap["metrics"], prefix=f"rank{p}.")

    _charge_log(world.log, dist, r, n_moments, reduction)
    return eta_global.T.copy()  # (R, M), as the serial/sim engines
