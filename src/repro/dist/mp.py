"""True multiprocess shared-memory KPM execution engine.

Where :class:`repro.dist.comm.SimWorld` *simulates* the paper's
data-parallel scheme sequentially in one process, this module runs the
identical rank loop of :mod:`repro.dist.kpm_parallel` in real OS
processes: every rank is a worker (``multiprocessing.Process``) that
owns a contiguous weighted row block (:mod:`repro.dist.partition`),
iterates the fused ``aug_spmmv`` kernel on it with its own kernel
backend, and meets its neighbours at per-iteration barriers.

Communication structure (paper Section VI-A, mapped onto one node):

* the start block is published once in a POSIX shared-memory segment —
  workers slice their rows zero-copy instead of receiving pickles;
* each directed halo edge (p → q) owns a shared *window* sized to its
  transfer list; one halo exchange is: every rank packs its send
  windows, a barrier, every rank gathers its ``[local | halo]`` kernel
  input from the windows it receives from, a barrier ("the assembly of
  communication buffers ... only the elements which need to be
  transferred are copied");
* with ``overlap=True`` the exchange is *asynchronous* (task mode,
  paper Section VII's pipelining outlook): the windows are
  double-buffered (slot ``m % 2``) and signalled per directed edge with
  ready/free event pairs instead of the global barrier; each worker
  posts its outgoing halo, computes the **interior** rows (the
  contiguous halo-free range of :func:`repro.dist.overlap.task_split`)
  with the split kernels while the exchange is in flight, then waits
  for its incoming windows and finishes the **boundary** rows.  The
  per-phase eta partials are combined in the fixed order interior +
  boundary, so the overlapped moments are bitwise equal to the
  simulator running the same task-mode schedule;
* per-rank eta contributions accumulate in a shared ``(P, M, R)`` array
  and are reduced **once** after the workers join — the single deferred
  global reduction of Section II.  ``reduction='every'`` instead
  synchronizes and sums after every iteration (the Table III
  ``aug_spmmv()*`` ablation).

Accounting: the engine charges :class:`~repro.dist.comm.MessageLog`
records equivalent to what :class:`SimWorld` logs for the same run
(halo volumes from the communication pattern, reductions priced as
recursive doubling via :func:`~repro.dist.comm.log_allreduce`), and
cross-checks the halo volume against byte counters the workers maintain
while actually copying the windows — so the network cost model keeps
working on real runs, and a worker that skipped communication is caught.

Failure model: any worker exception (or hard death) aborts the shared
barrier, which unblocks every peer; the parent terminates the world,
unlinks all shared memory, and raises a structured
:class:`~repro.util.errors.WorkerFailure` (a ``SimulationError``) — no
hang, no leaked ``/dev/shm`` segments (asserted by the test suite).
Liveness is supervised by a shared *heartbeat* array each worker bumps
every iteration: the parent declares the world wedged when no heartbeat
advances within :attr:`MpTimeouts.stall`, instead of capping the whole
run with one fixed deadline.

Checkpoint/restart: with ``checkpoint_every > 0`` the workers
double-buffer their recurrence state into shared *checkpoint slots*
after every k-th iteration; rank 0 publishes the slot with a single
atomic state word after a barrier, and the **parent** — which survives
worker crashes — autosaves the published state to ``checkpoint_path``
via the atomic :class:`~repro.core.checkpoint.KpmCheckpoint` writer, and
salvages the latest published state even when the run fails.  Passing
``resume_from`` re-enters the loop at the checkpointed iteration;
resumed runs are bitwise equal to uninterrupted ones on the same
partition (asserted by ``tests/resil/``).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import struct
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from threading import BrokenBarrierError

import numpy as np

from repro.core.checkpoint import KpmCheckpoint, resolve_resume
from repro.core.moments import _check_moments
from repro.core.scaling import SpectralScale
from repro.dist.comm import MessageLog, log_allreduce
from repro.dist.halo import DistributedMatrix, RankBlock, partition_matrix
from repro.dist.partition import RowPartition, grid_blocks
from repro.dist.shm import ShmArena, ShmAttachment
from repro.obs import NULL_METRICS, MetricsRegistry
from repro.resil.faults import FaultInjector, FaultPlan, FaultSpec
from repro.sparse.backend import KernelBackend, resolve_simd
from repro.sparse.csr import CSRMatrix
from repro.sparse.fused import _col_dots, charge_col_dots
from repro.util.constants import DTYPE
from repro.util.counters import NULL_COUNTERS, PerfCounters
from repro.util.errors import SimulationError, WorkerFailure, WorkerFault
from repro.util.precision import Precision, get_precision
from repro.util.validation import check_block_vector, check_positive

#: acct columns maintained by each worker (its row; no locking needed):
#: actual halo messages/bytes it packed, actual reduction events/bytes.
_ACCT_COLS = 4

#: Per-rank capacity of the observability return channel: one row of the
#: ``obs`` shared segment holds an 8-byte length prefix plus a JSON blob
#: of the worker's PerfCounters dump and MetricsRegistry snapshot (a few
#: KB in practice — the metric namespace is the fixed kernel vocabulary).
_OBS_BLOB_SIZE = 1 << 16


@dataclass(frozen=True)
class MpTimeouts:
    """The engine's liveness knobs, gathered in one declarative object.

    Parameters
    ----------
    barrier:
        Seconds any worker may wait at a barrier before declaring its
        peers gone (``BrokenBarrierError`` → clean exit code 2).
    join:
        Seconds the parent waits for each worker to join after the run
        (or an abort) before escalating to ``terminate()``.
    stall:
        Heartbeat window: the parent tears the world down when *no*
        worker's per-iteration heartbeat advances for this long.  This
        replaces the old whole-run deadline — a long healthy run is
        fine, a wedged one is caught within one window.
    run:
        Optional whole-run wall-clock budget (None: unlimited).  Kept
        for callers that genuinely want a hard cap, e.g. a
        :class:`~repro.resil.RetryPolicy` per-attempt deadline.
    """

    barrier: float = 120.0
    join: float = 5.0
    stall: float = 120.0
    run: float | None = None

    def __post_init__(self) -> None:
        for name in ("barrier", "join", "stall"):
            if getattr(self, name) <= 0:
                raise ValueError(f"MpTimeouts.{name} must be positive")
        if self.run is not None and self.run <= 0:
            raise ValueError("MpTimeouts.run must be positive (or None)")

    @classmethod
    def from_legacy(cls, timeout: float) -> "MpTimeouts":
        """The semantics of the old single ``timeout=X`` knob."""
        return cls(barrier=float(timeout), stall=float(timeout),
                   run=float(timeout))


def _default_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _pack_obs_blob(row: np.ndarray, payload: dict) -> None:
    """Serialize ``payload`` into one length-prefixed ``obs`` row."""
    blob = json.dumps(payload, separators=(",", ":")).encode()
    if len(blob) > row.size - 8:
        raise RuntimeError(
            f"observability blob ({len(blob)} B) exceeds the shared "
            f"channel capacity ({row.size - 8} B)"
        )
    row[:8] = np.frombuffer(struct.pack("<q", len(blob)), dtype=np.uint8)
    row[8 : 8 + len(blob)] = np.frombuffer(blob, dtype=np.uint8)


def _unpack_obs_blob(row: np.ndarray) -> dict | None:
    """Parse one worker's length-prefixed JSON blob (None when empty)."""
    (length,) = struct.unpack("<q", row[:8].tobytes())
    if length <= 0:
        return None
    return json.loads(row[8 : 8 + length].tobytes().decode())


class MpWorld:
    """A communicator of ``n_workers`` real OS processes.

    Drop-in peer of :class:`~repro.dist.comm.SimWorld` for the
    distributed drivers: :func:`repro.dist.kpm_parallel.distributed_eta`
    (and everything built on it) dispatches on the world type, so
    ``distributed_dos(..., world=MpWorld(4))`` runs the rank loop in
    parallel while ``SimWorld(4)`` simulates it sequentially.

    Parameters
    ----------
    n_workers:
        Number of worker processes (one per partition rank).
    devices:
        Optional ``'cpu'``/``'gpu'`` label per rank, as in ``SimWorld``
        (feeds the network cost model's PCIe staging surcharge).
    backend:
        Kernel backend override: ``None`` (use the driver's ``backend=``
        argument for every rank), a single name, or one name per rank —
        heterogeneous worlds can run native kernels on "fast" ranks and
        numpy on others.
    timeouts:
        An :class:`MpTimeouts`; None uses the defaults.
    timeout:
        Legacy single knob: ``timeout=X`` is ``MpTimeouts(barrier=X,
        stall=X, run=X)`` — the old behaviour of one number governing
        both the barriers and the whole run.  Mutually exclusive with
        ``timeouts``.
    start_method:
        ``'fork'``/``'spawn'``/``'forkserver'``; default prefers fork
        (zero-copy matrix inheritance) where the platform offers it.
    """

    def __init__(
        self,
        n_workers: int,
        devices: list[str] | None = None,
        *,
        backend=None,
        timeout: float | None = None,
        timeouts: MpTimeouts | None = None,
        start_method: str | None = None,
    ) -> None:
        check_positive("n_workers", n_workers)
        self.n_ranks = int(n_workers)
        if devices is None:
            devices = ["cpu"] * self.n_ranks
        if len(devices) != self.n_ranks:
            raise SimulationError(
                f"need one device label per rank ({self.n_ranks}), "
                f"got {len(devices)}"
            )
        for d in devices:
            if d not in ("cpu", "gpu"):
                raise SimulationError(f"unknown device label {d!r}")
        self.devices = list(devices)
        self.backend = backend
        if timeouts is not None and timeout is not None:
            raise ValueError("pass either timeouts= or the legacy timeout=")
        if timeouts is not None:
            self.timeouts = timeouts
        elif timeout is not None:
            self.timeouts = MpTimeouts.from_legacy(timeout)
        else:
            self.timeouts = MpTimeouts()
        self.start_method = start_method or _default_start_method()
        self.log = MessageLog()
        #: OS segment names of the most recent run (leak checks in tests).
        self.last_segment_names: list[str] = []
        #: per-rank (halo_msgs, halo_bytes, reduce_events, reduce_bytes)
        #: actually performed by the workers in the most recent run.
        self.last_acct: np.ndarray | None = None
        #: per-rank observability snapshots of the most recent run
        #: (``{"counters": ..., "metrics": ...}`` dicts); None until a
        #: run with live counters/metrics completes.
        self.last_obs: list[dict | None] | None = None
        #: latest checkpoint state the parent captured from shared memory
        #: in the most recent run (autosaved or salvaged); None when the
        #: run did not checkpoint.
        self.last_checkpoint: KpmCheckpoint | None = None

    @property
    def timeout(self) -> float:
        """Back-compat view of the barrier timeout (the old single knob)."""
        return self.timeouts.barrier

    def __repr__(self) -> str:
        return (
            f"MpWorld(n_workers={self.n_ranks}, devices={self.devices}, "
            f"start_method={self.start_method!r})"
        )


def _backend_names(world: MpWorld, backend) -> list[str]:
    """One backend *name* per rank (workers resolve instances themselves)."""
    spec = world.backend if world.backend is not None else backend
    if isinstance(spec, KernelBackend):
        spec = spec.name
    if spec is None or isinstance(spec, str):
        return [spec or "auto"] * world.n_ranks
    names = [s.name if isinstance(s, KernelBackend) else str(s) for s in spec]
    if len(names) != world.n_ranks:
        raise SimulationError(
            f"need one backend per rank ({world.n_ranks}), got {len(names)}"
        )
    return names


@dataclass(frozen=True)
class _RunConfig:
    """Picklable per-run parameters shared by every worker."""

    a: float
    b: float
    n_moments: int
    r: int
    reduction: str
    timeouts: MpTimeouts
    fault_plan: FaultPlan | None
    attempt: int
    want_obs: bool
    first_m: int  # 1 for a fresh run, checkpoint.next_m when resuming
    checkpoint_every: int
    overlap: bool = False
    precision: str = "fp64"  # storage profile name (picklable)
    threads: int | None = None  # intra-rank kernel threads (None = serial)
    simd: str | None = None  # native vectorized-kernel selector
    eta_grid: int = 0  # B > 0: per-global-block eta partials (elastic)
    stop_m: int = 0  # 0 = run to M/2; else exclusive segment bound


# ---------------------------------------------------------------------
# worker
# ---------------------------------------------------------------------

def _pack_halo(vec: np.ndarray, rows: np.ndarray, win: np.ndarray) -> int:
    """Assemble one edge's send window, allocation-free.

    The gather writes straight into the (shared-memory) window — no
    temporary is materialized, so the steady-state iteration loop does
    not allocate per exchange (tested with tracemalloc).  ``mode='clip'``
    is what makes ``np.take`` buffer-free; it is safe because the row
    lists come from the communication pattern, validated in range at
    construction.  Returns the window byte count for the traffic
    accounting.
    """
    np.take(vec, rows, axis=0, out=win, mode="clip")
    return win.nbytes


def _worker(
    rank: int,
    blk: RankBlock,
    send_edges: list[tuple[int, np.ndarray]],
    specs: dict,
    barrier,
    events,
    errq,
    backend_name: str,
    cfg: _RunConfig,
) -> None:
    """One rank's full KPM loop (module-level: spawn-picklable)."""
    att = None
    abort = None
    code = 0
    try:
        from repro.sparse.backend import get_backend

        bk = get_backend(backend_name)
        att = ShmAttachment(specs)
        start, eta, acct = att["start"], att["eta"], att["acct"]
        hb = att["hb"]
        abort = att["abort"]
        lo, hi = blk.row_start, blk.row_stop
        n_local = hi - lo
        a, b, r = cfg.a, cfg.b, cfg.r
        prec = get_precision(cfg.precision)
        bt = cfg.timeouts.barrier
        inj = None
        if cfg.fault_plan is not None:
            inj = FaultInjector(cfg.fault_plan, rank=rank, attempt=cfg.attempt)

        # Local observability state: the parent cannot share its own
        # counters/metrics across the process boundary, so each worker
        # accumulates privately and ships a snapshot back through the
        # ``obs`` shared segment after its loop completes.
        if cfg.want_obs:
            w_counters: PerfCounters = PerfCounters()
            w_metrics: MetricsRegistry = MetricsRegistry()
        else:
            w_counters = NULL_COUNTERS
            w_metrics = NULL_METRICS

        xbuf = np.empty(prec.vec_shape(blk.matrix.n_cols, r),
                        dtype=prec.vector_dtype)
        plan = bk.plan(blk.matrix, r, precision=prec, threads=cfg.threads,
                       simd=cfg.simd)
        splan = None
        if cfg.overlap:
            from repro.dist.overlap import task_split

            splan = bk.split_plan(blk.matrix, task_split(blk), r,
                                  precision=prec, threads=cfg.threads,
                                  simd=cfg.simd)
        # Grid mode: this rank's fixed global eta blocks (each block has
        # exactly one writer, so the shared (K, M, R) array needs no
        # locking either).
        gblocks = (
            grid_blocks(lo, hi, cfg.eta_grid) if cfg.eta_grid else None
        )
        half = cfg.stop_m if cfg.stop_m else cfg.n_moments // 2
        wins_out = [(q, rows, att[f"w{rank}_{q}"]) for q, rows in send_edges]
        wins_in = [
            (src, int(cnt), att[f"w{src}_{rank}"])
            for src, cnt in zip(
                blk.halo_sources.tolist(), blk.halo_counts.tolist()
            )
        ]
        ck_on = cfg.checkpoint_every > 0
        if ck_on:
            ckv, ckw, ckst = att["ckv"], att["ckw"], att["ckst"]

        def ev_wait(ev) -> None:
            # Poll so a dead peer (parent sets the shared abort flag and
            # breaks the barrier) unblocks this wait too — events have no
            # abort() of their own.
            deadline = time.monotonic() + bt
            while not ev.wait(0.05):
                if abort[0]:
                    raise BrokenBarrierError
                if time.monotonic() > deadline:
                    raise BrokenBarrierError

        def exchange(m: int, vec: np.ndarray) -> None:
            with w_metrics.span("halo_exchange", phase="dist"):
                for _q, rows, win in wins_out:
                    # buffer assembly at the source, allocation-free
                    nbytes = _pack_halo(vec, rows, win)
                    if inj is not None:
                        inj.corrupt_window(m, win)
                    acct[rank, 0] += 1
                    acct[rank, 1] += nbytes
                barrier.wait(bt)  # all windows packed
                xbuf[:n_local] = vec
                pos = n_local
                for _src, cnt, win in wins_in:
                    xbuf[pos : pos + cnt] = win
                    pos += cnt
                barrier.wait(bt)  # all windows consumed, reusable

        def post_exchange(m: int, vec: np.ndarray) -> None:
            # Task mode, send side: claim this iteration's window slot
            # (free once the receiver has drained its previous use),
            # pack, and signal readiness — no global synchronization.
            slot = m % 2
            with w_metrics.span("halo_pack", phase="dist"):
                for q, rows, win in wins_out:
                    ready, free = events[(rank, q)][slot]
                    ev_wait(free)
                    free.clear()
                    nbytes = _pack_halo(vec, rows, win[slot])
                    if inj is not None:
                        inj.corrupt_window(m, win[slot])
                    acct[rank, 0] += 1
                    acct[rank, 1] += nbytes
                    ready.set()
                xbuf[:n_local] = vec

        def complete_exchange(m: int) -> None:
            # Task mode, receive side: runs *after* the interior phase;
            # any time still spent blocking here is exposed (un-hidden)
            # communication — the ``halo_wait`` span measures exactly it.
            slot = m % 2
            with w_metrics.span("halo_wait", phase="dist"):
                pos = n_local
                for src, cnt, win in wins_in:
                    ready, free = events[(src, rank)][slot]
                    ev_wait(ready)
                    xbuf[pos : pos + cnt] = win[slot]
                    ready.clear()
                    free.set()
                    pos += cnt

        def reduce_now(m: int) -> None:
            # The contributions already sit in the shared eta array; a
            # barrier makes every rank's slice visible, then each rank
            # forms the global sum locally (allreduce semantics).
            with w_metrics.span("allreduce", phase="dist"):
                acct[rank, 2] += 2
                acct[rank, 3] += 2 * eta[rank, 2 * m].nbytes
                barrier.wait(bt)
                eta[:, 2 * m].sum(axis=0)
                eta[:, 2 * m + 1].sum(axis=0)

        def publish_checkpoint(m: int, v: np.ndarray, w: np.ndarray) -> None:
            # Double-buffered: the k-th checkpoint of this run writes
            # slot k % 2, so the previously *published* slot stays
            # intact while this one is being filled — a crash mid-write
            # can never damage a state the parent might be saving.
            slot = ((m - cfg.first_m + 1) // cfg.checkpoint_every) % 2
            ckv[slot, lo:hi] = v
            ckw[slot, lo:hi] = w
            barrier.wait(bt)  # every rank's slice is in the slot
            if rank == 0:
                # One aligned int64 store publishes (next_m, slot).
                ckst[0] = (m + 1) * 2 + slot

        if cfg.first_m == 1:
            v = np.ascontiguousarray(start[lo:hi], dtype=prec.vector_dtype)
            # ``rank_busy`` spans time this rank's own work — the fault
            # probe (so an injected straggler's sleeps are measured) and
            # the kernel compute, but *not* the exchange barriers where
            # fast ranks absorb a slow peer's skew.  Their per-rank
            # totals are the elastic rebalancer's skew signal.
            with w_metrics.span("rank_busy"):
                if inj is not None:
                    inj.at_iteration(0)
            hb[rank] += 1
            if cfg.overlap:
                # Bootstrap has no prior compute to hide the exchange
                # behind: post and complete back to back.
                post_exchange(0, v)
                complete_exchange(0)
            else:
                exchange(0, v)
            # nu_1 = a (H nu_0 - b nu_0) on the local rows
            with w_metrics.span("rank_busy"):
                w = bk.spmmv(
                    blk.matrix, xbuf, counters=w_counters, metrics=w_metrics
                )
                if prec.half_vectors:
                    # one-off fp32 recombination through the plan's decode
                    # scratch (dots read the pre-rounding values, like the
                    # kernels' in-register accumulation), rounded back
                    vn = plan.vc[:n_local]
                    prec.decode(v, out=vn)
                    wn = plan.wc
                    prec.decode(w, out=wn)
                    np.multiply(vn, b, out=plan.work_block)
                    wn -= plan.work_block
                    wn *= a
                    eta[rank, 0], eta[rank, 1] = _col_dots(vn, wn)
                    prec.encode(wn, out=w)
                else:
                    np.multiply(v, b, out=plan.work_block)
                    w -= plan.work_block
                    w *= a
                    if gblocks is not None:
                        for k, sl in gblocks:
                            eta[k, 0], eta[k, 1] = _col_dots(v[sl], w[sl])
                    elif prec.is_fp64:
                        eta[rank, 0] = np.einsum("nr,nr->r", np.conj(v), v)
                        eta[rank, 1] = np.einsum("nr,nr->r", np.conj(w), v)
                    else:
                        eta[rank, 0], eta[rank, 1] = _col_dots(v, w)
            if cfg.reduction == "every":
                reduce_now(0)
        else:
            # Resume: the parent seeded the checkpointed (v, w) blocks
            # into the ``start`` / ``rw`` segments; no bootstrap.
            v = np.ascontiguousarray(start[lo:hi], dtype=prec.vector_dtype)
            w = np.ascontiguousarray(att["rw"][lo:hi], dtype=prec.vector_dtype)

        for m in range(cfg.first_m, half):
            with w_metrics.span("rank_busy"):
                if inj is not None:
                    inj.at_iteration(m)
            hb[rank] += 1
            v, w = w, v
            if cfg.overlap:
                # Task mode: publish the outgoing halo, update the
                # interior rows while the exchange is in flight (they
                # reference local columns only), then finish the
                # boundary rows once the halo has landed.  The fixed
                # interior + boundary combine keeps the moments
                # schedule-independent.
                post_exchange(m, v)
                with w_metrics.span("rank_busy"):
                    ee_i, eo_i = bk.aug_spmmv_interior(
                        blk.matrix, xbuf, w, a, b, plan=splan,
                        counters=w_counters, metrics=w_metrics,
                    )
                complete_exchange(m)
                with w_metrics.span("rank_busy"):
                    ee_b, eo_b = bk.aug_spmmv_boundary(
                        blk.matrix, xbuf, w, a, b, plan=splan,
                        counters=w_counters, metrics=w_metrics,
                    )
                ee, eo = ee_i + ee_b, eo_i + eo_b
            else:
                exchange(m, v)
                with w_metrics.span("rank_busy"):
                    ee, eo = bk.aug_spmmv_step(
                        blk.matrix, xbuf, w, a, b, plan=plan,
                        counters=w_counters, metrics=w_metrics,
                    )
            if gblocks is not None:
                # Grid mode: the kernel's fused per-rank dots are
                # discarded; recompute per fixed global block so the eta
                # reduction order never depends on this partition.  The
                # extra pass is charged explicitly (linear in rows —
                # the total stays partition independent).
                with w_metrics.span("rank_busy"):
                    for k, sl in gblocks:
                        eta[k, 2 * m], eta[k, 2 * m + 1] = _col_dots(
                            v[sl], w[sl]
                        )
                    charge_col_dots(n_local, r, w_counters, prec=prec)
            else:
                eta[rank, 2 * m] = ee
                eta[rank, 2 * m + 1] = eo
            if cfg.reduction == "every":
                reduce_now(m)
            if ck_on and (m - cfg.first_m + 1) % cfg.checkpoint_every == 0:
                publish_checkpoint(m, v, w)

        if cfg.want_obs:
            _pack_obs_blob(
                att["obs"][rank],
                {
                    "counters": w_counters.to_dict(),
                    "metrics": w_metrics.snapshot(),
                },
            )
    except BrokenBarrierError:
        code = 2  # a peer died; the parent reports the root cause
    except Exception as exc:  # noqa: BLE001 - forwarded to the parent
        kind = getattr(exc, "kind", None) or "exception"
        try:
            errq.put((rank, kind, f"{type(exc).__name__}: {exc}"))
        except Exception:  # pragma: no cover - queue already torn down
            pass
        if abort is not None:
            abort[0] = 1  # unblock peers parked on halo events
        try:
            barrier.abort()  # unblock every waiting peer immediately
        except Exception:  # pragma: no cover
            pass
        code = 1
    finally:
        if att is not None:
            att.close()
    sys.exit(code)


# ---------------------------------------------------------------------
# parent driver
# ---------------------------------------------------------------------

def _charge_log(
    log: MessageLog, dist: DistributedMatrix, r: int, n_moments: int,
    reduction: str, first_m: int = 1, s_vector: int | None = None,
    stop_m: int | None = None,
) -> None:
    """Charge the run to ``log`` exactly as :class:`SimWorld` would.

    Record-for-record equivalent to the simulator executing the same
    partition/reduction (and, with ``first_m > 1``, the same *resumed*
    iteration range) — asserted by the differential tests, and the
    contract that keeps :mod:`repro.dist.network` pricing mp runs.
    ``s_vector`` is the bytes per exchanged vector element (the
    precision profile's storage width; default fp64).  Reductions always
    move fp64 eta scalars regardless of profile.

    With ``stop_m`` set (an elastic segment) the final allreduce is
    charged for the columns this segment computed — ``2·stop_m`` fresh,
    ``2·(stop_m − first_m)`` resumed — so the per-segment charges of a
    segmented run sum exactly to the single uninterrupted-run charge.
    """
    itemsize = np.dtype(DTYPE).itemsize
    s_vec = itemsize if s_vector is None else int(s_vector)
    half = n_moments // 2 if stop_m is None else int(stop_m)

    def halo(phase: str) -> None:
        for block in dist.blocks:
            for src, cnt in zip(
                block.halo_sources.tolist(), block.halo_counts.tolist()
            ):
                log.add(src, block.rank, cnt * r * s_vec, phase)

    if first_m == 1:
        halo("halo_init")
        if reduction == "every":
            for _ in range(2):
                log_allreduce(log, dist.n_ranks, r * itemsize, "allreduce_iter")
    for _m in range(first_m, half):
        halo("halo")
        if reduction == "every":
            for _ in range(2):
                log_allreduce(log, dist.n_ranks, r * itemsize, "allreduce_iter")
    final_cols = (
        n_moments if stop_m is None
        else (2 * half if first_m == 1 else 2 * (half - first_m))
    )
    if final_cols:
        log_allreduce(
            log, dist.n_ranks, final_cols * r * itemsize, "allreduce_final"
        )


def _expected_halo_acct(
    dist: DistributedMatrix, r: int, n_moments: int, first_m: int = 1,
    s_vector: int | None = None, stop_m: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """(messages, bytes) per source rank over the run's halo exchanges.

    A fresh run exchanges M/2 times (one bootstrap + M/2 − 1 loop
    iterations); a run resumed at ``first_m`` skips the bootstrap and
    the first ``first_m − 1`` loop exchanges; a segment bounded by
    ``stop_m`` stops its loop exchanges there.  ``s_vector`` is the
    profile's bytes per exchanged vector element (default fp64).
    """
    s_vec = np.dtype(DTYPE).itemsize if s_vector is None else int(s_vector)
    msgs = np.zeros(dist.n_ranks, dtype=np.int64)
    nbytes = np.zeros(dist.n_ranks, dtype=np.int64)
    for (p, _q), rows in dist.pattern.send_rows.items():
        if rows.size:
            msgs[p] += 1
            nbytes[p] += rows.size * r * s_vec
    half = n_moments // 2 if stop_m is None else int(stop_m)
    n_exchanges = half - first_m + (1 if first_m == 1 else 0)
    return msgs * n_exchanges, nbytes * n_exchanges


def _legacy_fault_plan(_fault: tuple | None) -> FaultPlan | None:
    """The old test-only ``(rank, m, 'raise'|'exit')`` tuple as a plan."""
    if _fault is None:
        return None
    rank, m, mode = _fault
    kind = "crash" if mode == "exit" else "raise"
    return FaultPlan((FaultSpec(kind, rank=int(rank), m=int(m)),))


class _CheckpointChannel:
    """Parent-side reader of the shared double-buffered checkpoint slots.

    ``capture()`` performs a stable read: the state word is sampled
    before and after copying the slot, and the copy is discarded when it
    changed in between (the workers published a newer checkpoint while
    we were reading — the next poll picks it up).  The eta prefix
    ``[:, :2·next_m]`` is final once the state is published (every rank
    passed the checkpoint barrier after writing it), so summing it while
    workers fill later columns is safe.
    """

    def __init__(
        self, eta_shared, ckv, ckw, ckst, base_eta, first_m: int,
        n_moments: int, r: int, a: float, b: float,
        precision: str = "fp64", eta_grid: int = 0,
    ) -> None:
        self._eta = eta_shared
        self._ckv, self._ckw, self._ckst = ckv, ckw, ckst
        self._base = base_eta  # (R, 2·first_m) resumed prefix, or None
        self._first_m = first_m
        self._m_tot = n_moments
        self._r = r
        self._a, self._b = a, b
        self._precision = precision
        self._grid = int(eta_grid)
        self.saved_state = 0

    def capture(self) -> KpmCheckpoint | None:
        s1 = int(self._ckst[0])
        if s1 <= self.saved_state:
            return None
        next_m, slot = s1 // 2, s1 % 2
        # Fresh runs reduce every filled column; resumed runs only the
        # columns computed this run — the inherited prefix is spliced in
        # verbatim (never re-reduced, preserving bitwise equality).
        col0 = 2 * self._first_m if self._base is not None else 0
        v = self._ckv[slot].copy()
        w = self._ckw[slot].copy()
        prefix = self._eta[:, col0 : 2 * next_m].sum(axis=0)
        if int(self._ckst[0]) != s1:
            return None  # torn read: a newer state landed mid-copy
        eta = np.zeros((self._r, self._m_tot), dtype=DTYPE)
        if self._base is not None:
            eta[:, :col0] = self._base
        eta[:, col0 : 2 * next_m] = prefix.T
        self.saved_state = s1
        return KpmCheckpoint(
            v=v, w=w, eta=eta, next_m=next_m,
            n_moments=self._m_tot, a=self._a, b=self._b,
            precision=self._precision, eta_grid=self._grid,
        )


def mp_eta(
    A: CSRMatrix | DistributedMatrix,
    partition: RowPartition | None,
    scale: SpectralScale,
    n_moments: int,
    start_block: np.ndarray | None,
    world: MpWorld,
    *,
    reduction: str = "end",
    backend: KernelBackend | str = "auto",
    counters: PerfCounters = NULL_COUNTERS,
    metrics: MetricsRegistry = NULL_METRICS,
    overlap: bool | str | None = False,
    checkpoint_every: int = 0,
    checkpoint_path: str | Path | None = None,
    resume_from: KpmCheckpoint | str | Path | None = None,
    fault_plan: FaultPlan | None = None,
    attempt: int = 1,
    _fault: tuple | None = None,
    precision: Precision | str | None = None,
    progress=None,
    progress_every: int = 0,
    threads: int | str | None = None,
    simd: str | None = None,
    eta_grid: int = 0,
    stop_m: int | None = None,
) -> np.ndarray:
    """Multiprocess equivalent of :func:`repro.dist.kpm_parallel.distributed_eta`.

    Same signature and same result (to reduction-order tolerance) with a
    :class:`MpWorld` in place of the :class:`SimWorld`, plus the
    fault-tolerance surface: ``checkpoint_every``/``checkpoint_path``
    enable the parent-side autosave described in the module docstring,
    ``resume_from`` continues an interrupted run (``start_block`` is then
    ignored and may be None), and ``fault_plan``/``attempt`` inject
    planned faults into the workers (``_fault`` is the legacy test-only
    ``(rank, iteration, mode)`` form of the same thing).

    ``overlap`` selects the task-mode pipelined schedule (see the module
    docstring): ``True``/``'on'``, ``False``/``'off'``, or
    ``'auto'``/None (on when the world has more than one rank).  The
    overlapped moments are bitwise equal to the simulator's task-mode
    schedule; against ``overlap=False`` they agree to reduction-order
    tolerance (the per-iteration dots are summed as interior + boundary
    partials instead of one pass).

    With a live ``counters`` or ``metrics``, every worker accumulates its
    own :class:`PerfCounters` / :class:`MetricsRegistry` and ships a JSON
    snapshot back through the ``obs`` shared segment; the parent merges
    worker counters into ``counters`` (numeric totals then equal a serial
    run of the same problem) and worker metrics into ``metrics`` under a
    ``rank<p>.`` prefix.  The raw per-rank snapshots stay available as
    ``world.last_obs``.

    ``progress``/``progress_every`` stream partial eta prefixes from the
    parent's checkpoint autosave: the callback fires with
    ``(n_eta, eta_prefix)`` whenever a capture publishes new state, so it
    requires ``checkpoint_every > 0`` (``progress_every`` only gates
    whether the hook is armed here — the cadence is the workers'
    checkpoint cadence).

    ``threads`` is the per-rank intra-rank kernel thread count: ``None``
    keeps the sequential kernels, an int is used verbatim on every rank,
    and ``'auto'`` budgets the host's cores across the ranks
    (``max(1, cores // n_ranks)`` — the paper's one-process-per-socket
    hybrid, scaled to this machine).  fp64 moments are bitwise identical
    for every setting.  ``simd`` selects the native backend's vectorized
    kernels on every rank (``None``/``'auto'``/``'on'``/``'off'``) —
    also bitwise invisible in fp64.

    ``eta_grid``/``stop_m`` mirror :func:`distributed_eta`: a positive
    ``eta_grid`` accumulates eta partials per fixed global block of that
    many rows (grid-aligned partitions required; moments then bitwise
    independent of the partition and world size), and ``stop_m`` halts
    the recurrence at that iteration, returning a segment whose
    uncomputed columns are zero — the elastic driver's pause point.
    """
    _check_moments(n_moments)
    from repro.dist.overlap import resolve_overlap

    overlap = resolve_overlap(overlap, world.n_ranks)
    if reduction not in ("end", "every"):
        raise ValueError(f"reduction must be 'end' or 'every', got {reduction!r}")
    if checkpoint_every and checkpoint_path is None:
        raise ValueError("checkpoint_every requires checkpoint_path")
    if fault_plan is None:
        fault_plan = _legacy_fault_plan(_fault)
    if isinstance(A, DistributedMatrix):
        dist = A
    else:
        if partition is None:
            raise ValueError("partition is required with a global matrix")
        dist = partition_matrix(A, partition)
    if world.n_ranks != dist.n_ranks:
        raise SimulationError(
            f"world has {world.n_ranks} ranks, partition has {dist.n_ranks}"
        )
    n = dist.n_global
    timeouts = world.timeouts
    prec = get_precision(precision)

    grid = int(eta_grid or 0)
    half = n_moments // 2 if stop_m is None else int(stop_m)
    if stop_m is not None and not 1 <= half <= n_moments // 2:
        raise SimulationError(
            f"stop_m must lie in [1, {n_moments // 2}], got {stop_m}"
        )
    if grid:
        if grid < 0:
            raise SimulationError(f"eta_grid must be non-negative, got {grid}")
        if reduction != "end":
            raise SimulationError(
                "eta_grid requires reduction='end' (grid partials are "
                "reduced once, after the loop)"
            )
        if prec.half_vectors:
            raise SimulationError(
                f"eta_grid is not supported by the {prec.name} profile "
                "(half-precision vectors)"
            )
        for blk in dist.blocks:
            if blk.row_start % grid:
                raise SimulationError(
                    f"rank {blk.rank} starts at row {blk.row_start}, not "
                    f"aligned to the eta grid of {grid} rows — build the "
                    f"partition with align={grid}"
                )

    ck = None
    if resume_from is not None:
        ck = resolve_resume(resume_from, n_moments, scale.a, scale.b, metrics,
                            prec, eta_grid=grid)
        if ck.v.shape[0] != n:
            raise SimulationError(
                f"checkpoint holds {ck.v.shape[0]} rows, matrix has {n}"
            )
        r = ck.v.shape[1]
        first_m = ck.next_m
        if first_m > half:
            raise SimulationError(
                f"checkpoint resumes at m={first_m}, beyond stop_m={half}"
            )
        base_eta = ck.eta[:, : 2 * first_m].astype(DTYPE, copy=True)
    else:
        start_block = check_block_vector("start_block", start_block, n)
        r = start_block.shape[1]
        first_m = 1
        base_eta = None

    names = _backend_names(world, backend)
    ctx = multiprocessing.get_context(world.start_method)

    send_edges: list[list[tuple[int, np.ndarray]]] = [
        [] for _ in range(dist.n_ranks)
    ]
    for (p, q), rows in sorted(dist.pattern.send_rows.items()):
        if rows.size:
            send_edges[p].append((q, rows))

    if threads == "auto":
        # Budget the host's cores across the ranks: the paper's hybrid
        # MPI+OpenMP shape (one process per socket, threads inside).
        resolved_threads = max(1, (os.cpu_count() or 1) // world.n_ranks)
    elif threads is None:
        resolved_threads = None
    else:
        resolved_threads = max(1, int(threads))

    want_obs = bool(counters.enabled or metrics.enabled)
    cfg = _RunConfig(
        a=scale.a, b=scale.b, n_moments=n_moments, r=r, reduction=reduction,
        timeouts=timeouts, fault_plan=fault_plan, attempt=int(attempt),
        want_obs=want_obs, first_m=first_m,
        checkpoint_every=int(checkpoint_every), overlap=overlap,
        precision=prec.name, threads=resolved_threads,
        simd=resolve_simd(simd),
        eta_grid=grid, stop_m=int(stop_m or 0),
    )
    errors: list[tuple[int, str, str]] = []
    procs: list = []
    world.last_checkpoint = None
    with ShmArena() as arena:
        vec_dt = np.dtype(prec.vector_dtype).str
        start = arena.create("start", prec.vec_shape(n, r), dtype=vec_dt)
        if ck is not None:
            start[...] = ck.v
            arena.create("rw", prec.vec_shape(n, r), dtype=vec_dt)[...] = ck.w
        elif start_block.dtype == np.float16 or prec.is_fp64:
            start[...] = start_block
        elif prec.half_vectors:
            prec.encode(start_block, out=start)
        else:
            start[...] = start_block.astype(prec.vector_dtype)
        n_slots = -(-n // grid) if grid else world.n_ranks
        eta_shared = arena.create("eta", (n_slots, n_moments, r))
        acct = arena.create("acct", (world.n_ranks, _ACCT_COLS), dtype="int64")
        hb = arena.create("hb", (world.n_ranks,), dtype="int64")
        abort_flag = arena.create("abort", (1,), dtype="int64")
        obs = None
        if want_obs:
            obs = arena.create(
                "obs", (world.n_ranks, _OBS_BLOB_SIZE), dtype="uint8"
            )
        channel = None
        if checkpoint_every > 0:
            ckv = arena.create("ckv", (2, *prec.vec_shape(n, r)), dtype=vec_dt)
            ckw = arena.create("ckw", (2, *prec.vec_shape(n, r)), dtype=vec_dt)
            ckst = arena.create("ckst", (1,), dtype="int64")
            channel = _CheckpointChannel(
                eta_shared, ckv, ckw, ckst, base_eta, first_m,
                n_moments, r, scale.a, scale.b, prec.name, grid,
            )
        # Halo windows: task mode double-buffers each directed edge (slot
        # m % 2) and pairs every (edge, slot) with ready/free events —
        # free initially set (both slots start drained).
        events: dict[tuple[int, int], list] = {}
        for p, edges in enumerate(send_edges):
            for q, rows in edges:
                wshape = prec.vec_shape(rows.size, r)
                shape = (2, *wshape) if overlap else wshape
                arena.create(f"w{p}_{q}", shape, dtype=vec_dt)
                if overlap:
                    slots = []
                    for _slot in range(2):
                        ready, free = ctx.Event(), ctx.Event()
                        free.set()
                        slots.append((ready, free))
                    events[(p, q)] = slots
        world.last_segment_names = list(arena.names)

        barrier = ctx.Barrier(world.n_ranks)
        errq = ctx.SimpleQueue()
        for rank in range(world.n_ranks):
            procs.append(
                ctx.Process(
                    target=_worker,
                    args=(
                        rank, dist.blocks[rank], send_edges[rank],
                        arena.specs, barrier, events, errq, names[rank], cfg,
                    ),
                    daemon=True,
                )
            )
        for p in procs:
            p.start()

        def abort_world() -> None:
            # Both wake-up channels: the shared flag unblocks event
            # waits (task mode), barrier.abort() unblocks barrier waits.
            abort_flag[0] = 1
            barrier.abort()

        def autosave() -> None:
            if channel is None:
                return
            saved = channel.capture()
            if saved is not None:
                world.last_checkpoint = saved
                with metrics.span("checkpoint_save", phase="ckpt") as sp:
                    out = saved.save(checkpoint_path)
                    sp.note(file_bytes=out.stat().st_size, next_m=saved.next_m)
                if progress is not None and progress_every > 0:
                    # capture() dedupes repeats, so every firing carries a
                    # strictly longer globally-reduced prefix
                    progress(2 * saved.next_m, saved.eta[:, : 2 * saved.next_m])

        # Monitor: a worker death aborts the barrier so peers unblock
        # instead of waiting out their timeout; liveness is judged by the
        # heartbeat array (stall window), optionally capped by a whole-run
        # deadline; published checkpoints are autosaved as they appear.
        t0 = time.monotonic()
        deadline = None if timeouts.run is None else t0 + timeouts.run
        hb_last = hb.copy()
        hb_t = t0
        stalled = timed_out = False
        while any(p.is_alive() for p in procs):
            if any(p.exitcode not in (None, 0) for p in procs):
                abort_world()
                break
            now = time.monotonic()
            hb_now = hb.copy()
            if not np.array_equal(hb_now, hb_last):
                hb_last = hb_now
                hb_t = now
            elif now - hb_t >= timeouts.stall:
                stalled = True
                abort_world()
                break
            if deadline is not None and now >= deadline:
                timed_out = True
                abort_world()
                break
            autosave()
            time.sleep(0.005)
        for p in procs:
            p.join(timeout=timeouts.join)
            if p.is_alive():
                p.terminate()
                p.join(timeout=timeouts.join)
        while not errq.empty():
            errors.append(errq.get())

        # Workers are gone: one last capture salvages any checkpoint
        # published after the monitor's final poll (or, on failure, the
        # state the supervisor will resume from).
        autosave()

        exit_codes = [p.exitcode for p in procs]
        failed = (
            stalled or timed_out or errors
            or any(c != 0 for c in exit_codes)
        )
        if failed:
            raise _worker_failure(
                errors, exit_codes, stalled, timed_out, hb_last,
                timeouts, world.last_checkpoint,
            )

        # Pull results out of shared memory before the arena unlinks.
        world.last_acct = acct.copy()
        obs_snaps: list[dict | None] = []
        if want_obs:
            obs_snaps = [
                _unpack_obs_blob(obs[p]) for p in range(world.n_ranks)
            ]
        if first_m > 1:
            # Splice: checkpointed prefix verbatim (never re-reduced, so
            # resumed == uninterrupted bitwise), freshly computed suffix.
            eta_global = np.empty((n_moments, r), dtype=DTYPE)
            eta_global[: 2 * first_m] = base_eta.T
            eta_global[2 * first_m :] = eta_shared[:, 2 * first_m :].sum(axis=0)
        else:
            eta_global = eta_shared.sum(axis=0)  # the single deferred reduction

        exp_msgs, exp_bytes = _expected_halo_acct(
            dist, r, n_moments, first_m, prec.s_vector, stop_m
        )
        if not (
            np.array_equal(world.last_acct[:, 0], exp_msgs)
            and np.array_equal(world.last_acct[:, 1], exp_bytes)
        ):
            raise SimulationError(
                "halo accounting mismatch: workers moved "
                f"{world.last_acct[:, 1].tolist()} bytes, pattern predicts "
                f"{exp_bytes.tolist()}"
            )

    if want_obs:
        world.last_obs = obs_snaps
        for p, snap in enumerate(obs_snaps):
            if snap is None:
                raise SimulationError(
                    f"rank {p} finished without shipping its observability "
                    "snapshot"
                )
            counters.merge(PerfCounters.from_dict(snap["counters"]))
            metrics.merge_snapshot(snap["metrics"], prefix=f"rank{p}.")

    _charge_log(world.log, dist, r, n_moments, reduction, first_m,
                prec.s_vector, stop_m)
    return eta_global.T.copy()  # (R, M), as the serial/sim engines


def _worker_failure(
    errors: list[tuple[int, str, str]],
    exit_codes: list[int | None],
    stalled: bool,
    timed_out: bool,
    heartbeats: np.ndarray,
    timeouts: MpTimeouts,
    salvaged: KpmCheckpoint | None,
) -> WorkerFailure:
    """Assemble the structured failure for a dead/wedged world."""
    faults: list[WorkerFault] = []
    details: list[str] = []
    errored = set()
    for rank, kind, msg in errors:
        errored.add(rank)
        faults.append(WorkerFault(
            rank=rank, kind="stall" if kind == "stall" else "exception",
            detail=msg,
        ))
        details.append(f"rank {rank}: {msg}")
    dead = [
        i for i, c in enumerate(exit_codes)
        if c not in (0, 2) and i not in errored
    ]
    if dead:
        for i in dead:
            faults.append(WorkerFault(
                rank=i, kind="death", exit_code=exit_codes[i],
                detail=f"died with exit code {exit_codes[i]}",
            ))
        details.append(
            f"worker(s) {dead} died with exit codes "
            + str([exit_codes[i] for i in dead])
        )
    if stalled:
        suspect = int(np.argmin(heartbeats))
        faults.append(WorkerFault(
            rank=suspect, kind="stall",
            detail=f"no heartbeat progress within {timeouts.stall:.1f}s",
        ))
        details.append(
            f"no heartbeat progress within {timeouts.stall:.1f}s "
            f"(slowest: rank {suspect})"
        )
    if timed_out:
        faults.append(WorkerFault(
            rank=int(np.argmin(heartbeats)), kind="timeout",
            detail=f"run deadline of {timeouts.run:.1f}s expired",
        ))
        details.append(f"no progress within {timeouts.run:.0f}s")
    if not details:  # pragma: no cover - defensive
        details.append("unknown worker failure")
    return WorkerFailure(
        "multiprocess KPM run failed: " + "; ".join(details),
        failures=faults,
        resume_m=salvaged.next_m if salvaged is not None else None,
    )
