"""Automatic heterogeneous weight determination (paper outlook, realized).

"A future step could be to determine the process weights for
heterogeneous execution automatically and take this burden away from the
user." (paper Section VII)

This module implements that step: starting from any weights (uniform by
default), it runs short measurement rounds of the blocked kernel on each
rank, observes the per-rank time per row, and rebalances so that all
ranks are predicted to finish together. The fixed point of the update

    w_p  <-  (rows_p / t_p) / sum_q (rows_q / t_q)

is the throughput-proportional weighting; convergence is typically 2-3
rounds. The rank "times" come from a supplied timing callback — in the
simulated environment that is the device performance model, in a real
deployment it would be a wall-clock probe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.dist.partition import RowPartition
from repro.util.errors import PartitionError
from repro.util.validation import check_positive

#: Timing callback signature: (rank, n_local_rows) -> seconds.
TimerFn = Callable[[int, int], float]


@dataclass
class AutotuneResult:
    """Outcome of the weight auto-tuner."""

    weights: list[float]
    partition: RowPartition
    rounds: int
    converged: bool
    history: list[list[float]] = field(default_factory=list)

    def imbalance(self, times: list[float]) -> float:
        """Relative spread ``(max(t) - min(t)) / mean(t)`` of round times.

        This is the same statistic the tuning loop tests against
        ``tolerance`` (0.0 = perfectly balanced), so a converged result
        always reports ``imbalance(times) <= tolerance`` for its final
        round — the two definitions were previously inconsistent
        (``max/mean``), which made converged runs report an apparent
        residual imbalance of ~1.0.  Guarded against a zero mean (all
        ranks measured 0 s → balanced by definition).
        """
        t = np.asarray(times, dtype=float)
        return float((t.max() - t.min()) / max(t.mean(), 1e-300))


def throughput_timer(gflops_per_rank: list[float], flops_per_row: float) -> TimerFn:
    """Timing callback backed by per-rank Gflop/s (model or measured)."""
    rates = np.asarray(gflops_per_rank, dtype=float)
    if np.any(rates <= 0):
        raise PartitionError("rank performance must be positive")

    def timer(rank: int, n_rows: int) -> float:
        return n_rows * flops_per_row / (rates[rank] * 1e9)

    return timer


def autotune_weights(
    n_rows: int,
    n_ranks: int,
    timer: TimerFn,
    *,
    align: int = 4,
    initial_weights: list[float] | None = None,
    max_rounds: int = 8,
    tolerance: float = 0.02,
    damping: float = 1.0,
) -> AutotuneResult:
    """Iteratively balance rank weights until times agree within
    ``tolerance`` (relative spread of per-rank round times).

    ``damping`` < 1 underrelaxes the update, useful when the timing
    callback is noisy (real measurements).
    """
    check_positive("n_rows", n_rows)
    check_positive("n_ranks", n_ranks)
    check_positive("max_rounds", max_rounds)
    if not 0 < damping <= 1:
        raise ValueError(f"damping must be in (0, 1], got {damping}")
    weights = (
        np.full(n_ranks, 1.0 / n_ranks)
        if initial_weights is None
        else np.asarray(initial_weights, dtype=float)
    )
    if weights.shape != (n_ranks,) or np.any(weights < 0) or weights.sum() <= 0:
        raise PartitionError(f"invalid initial weights {initial_weights!r}")
    weights = weights / weights.sum()

    history: list[list[float]] = []
    part = RowPartition.from_weights(n_rows, weights.tolist(), align=align)
    for rounds in range(1, max_rounds + 1):
        counts = part.counts().astype(float)
        times = np.array(
            [timer(p, int(counts[p])) for p in range(n_ranks)], dtype=float
        )
        history.append(weights.tolist())
        spread = (times.max() - times.min()) / max(times.mean(), 1e-300)
        if spread <= tolerance:
            return AutotuneResult(
                weights.tolist(), part, rounds, True, history
            )
        # observed throughput of each rank (rows per second); ranks that
        # got zero rows are probed with one alignment block so they can
        # re-enter the distribution
        probe = np.maximum(counts, align)
        probe_times = np.array(
            [max(timer(p, int(probe[p])), 1e-300) for p in range(n_ranks)]
        )
        thru = probe / probe_times
        target = thru / thru.sum()
        weights = (1.0 - damping) * weights + damping * target
        weights /= weights.sum()
        part = RowPartition.from_weights(n_rows, weights.tolist(), align=align)
    return AutotuneResult(weights.tolist(), part, max_rounds, False, history)
