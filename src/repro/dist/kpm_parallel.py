"""Distributed KPM driver on the simulated SPMD world.

Executes the blocked (stage-2) KPM iteration over a row-partitioned
matrix exactly as the paper's heterogeneous production code does:

1. each rank assembles its send buffers ("the assembly of communication
   buffers ... only the elements which need to be transferred are
   copied", Section VI-A) and halo-exchanges the current block vector;
2. each rank runs the augmented SpMMV on its local rows (local + halo
   column layout), computing its partial dot products on the fly;
3. the per-iteration eta contributions are either reduced globally every
   iteration (the ``aug_spmmv()*`` variant of Table III) or accumulated
   locally and reduced **once at the very end** — "a careful
   implementation reduces the amount of global reductions in the dot
   products to a single one at the end of the inner loop" (Section II).

The returned moments are identical (up to floating-point reduction
order) to the serial solver for any rank count and any weighting — the
test suite asserts this.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.checkpoint import KpmCheckpoint, resolve_resume
from repro.core.moments import _check_moments
from repro.core.scaling import SpectralScale
from repro.dist.comm import SimWorld, log_allreduce
from repro.dist.halo import DistributedMatrix, partition_matrix
from repro.dist.partition import RowPartition, grid_blocks
from repro.obs import NULL_METRICS, MetricsRegistry
from repro.resil.faults import FaultInjector, FaultPlan
from repro.sparse.backend import KernelBackend, get_backend
from repro.sparse.csr import CSRMatrix
from repro.sparse.fused import _col_dots, charge_col_dots
from repro.util.constants import DTYPE
from repro.util.counters import NULL_COUNTERS, PerfCounters
from repro.util.errors import SimulationError
from repro.util.precision import Precision, get_precision
from repro.util.validation import check_block_vector


def _halo_exchange_into(
    world: SimWorld,
    dist: DistributedMatrix,
    local_vs: list[np.ndarray],
    xbufs: list[np.ndarray],
    phase: str,
) -> None:
    """Halo-exchange into each rank's preallocated ``x = [v_loc; halo]``.

    The first ``n_local`` rows of ``xbufs[rank]`` receive that rank's own
    block, the tail the halo rows from its neighbours, logging every
    message — no per-iteration buffer allocation.
    """
    for block in dist.blocks:
        xbuf = xbufs[block.rank]
        n_local = local_vs[block.rank].shape[0]
        xbuf[:n_local] = local_vs[block.rank]
        pos = n_local
        for src, cnt in zip(block.halo_sources.tolist(), block.halo_counts.tolist()):
            send_rows = dist.pattern.send_rows[(src, block.rank)]
            if send_rows.size != cnt:
                raise SimulationError("inconsistent halo pattern")
            buf = local_vs[src][send_rows, :]  # buffer assembly at the source
            xbuf[pos : pos + cnt] = world.send(src, block.rank, buf, phase)
            pos += cnt


def distributed_eta(
    A: CSRMatrix | DistributedMatrix,
    partition: RowPartition | None,
    scale: SpectralScale,
    n_moments: int,
    start_block: np.ndarray,
    world,
    *,
    reduction: str = "end",
    backend: KernelBackend | str = "auto",
    counters: PerfCounters = NULL_COUNTERS,
    metrics: MetricsRegistry = NULL_METRICS,
    overlap: bool | str | None = False,
    checkpoint_every: int = 0,
    checkpoint_path: str | Path | None = None,
    resume_from: KpmCheckpoint | str | Path | None = None,
    fault_plan: FaultPlan | None = None,
    attempt: int = 1,
    precision: Precision | str | None = None,
    progress=None,
    progress_every: int = 0,
    threads: int | str | None = None,
    simd: str | None = None,
    eta_grid: int = 0,
    stop_m: int | None = None,
) -> np.ndarray:
    """Distributed equivalent of :func:`repro.core.moments.compute_eta`.

    Parameters
    ----------
    A:
        Global matrix (partitioned on the fly) or a pre-partitioned
        :class:`DistributedMatrix`.
    partition:
        Required when ``A`` is a global matrix; ignored otherwise.
    start_block:
        Global (N, R) start block; each rank gets its row slice.
    world:
        The communicator: a :class:`SimWorld` executes the rank loop
        sequentially in-process, a :class:`~repro.dist.mp.MpWorld` runs
        it in real worker processes over shared memory (same results to
        reduction-order tolerance, same message accounting).  Must match
        the partition's rank count.
    reduction:
        ``'end'`` — one global reduction after the loop (the optimal
        scheme); ``'every'`` — reduce each iteration's dots immediately
        (the Table III ``aug_spmmv()*`` ablation).
    backend:
        Kernel backend for each rank's local augmented SpMMV (the fused
        block kernels accept the rectangular local+halo column layout,
        so native and numpy run the identical distributed algorithm).
    counters:
        Traffic/flop sink.  Every rank's kernel charges accumulate here
        (the mp engine merges per-worker counters in), so the numeric
        totals equal the serial run on the same problem — only the
        per-kernel ``calls`` tallies are rank-multiplied.
    metrics:
        Span registry.  The sim world records kernel spans inline plus
        ``halo_exchange``/``allreduce`` phase spans; the mp engine ships
        per-worker snapshots back and merges them ``rank<p>.``-prefixed.
    overlap:
        Task-mode pipelined schedule: ``True``/``'on'``, ``False``/
        ``'off'``, or ``'auto'``/None (on when the world has more than
        one rank).  Each rank updates its interior (halo-free) rows with
        the split kernels while the halo exchange is in flight, then
        finishes the boundary rows — in the mp engine the exchange is
        genuinely asynchronous (per-edge events, double-buffered
        windows); the sim world executes the same task-mode schedule
        sequentially, with *bitwise identical* moments (the per-phase
        eta partials are combined in the fixed order interior +
        boundary, making the result schedule-independent).
    checkpoint_every / checkpoint_path:
        With ``checkpoint_every = k > 0`` the global recurrence state is
        saved atomically to ``checkpoint_path`` after every k inner
        iterations (in the mp engine by the *parent*, which survives
        worker crashes).
    resume_from:
        A :class:`KpmCheckpoint` (or path) to continue from;
        ``start_block`` is then ignored (and may be None).  A resumed
        run is bitwise equal to an uninterrupted one on the same world
        type and partition.
    fault_plan / attempt:
        Optional :class:`~repro.resil.FaultPlan` injected at the same
        probe points in both engines (the sim world surfaces
        process-level faults as
        :class:`~repro.util.errors.FaultInjected`); ``attempt`` selects
        which of the plan's faults are armed.
    precision:
        Storage profile (:mod:`repro.util.precision`).  The halo
        exchange ships the profile's narrow vector storage — the wire
        bytes per exchanged row drop with ``s_vector`` exactly as the
        kernels' memory traffic does — and checkpoints record the
        profile (cross-precision resume is refused).
    progress / progress_every:
        Optional streaming callback ``progress(n_eta, eta_prefix)``
        fired after every ``progress_every`` iterations with the
        globally-reduced eta prefix of every column (the serve layer's
        partial-spectrum stream).  The sim world fires it inline; the
        mp engine fires it from the parent's checkpoint autosave, so it
        needs ``checkpoint_every > 0`` there.
    threads:
        Intra-rank thread count for the native threaded kernels (None =
        sequential kernels).  ``'auto'`` budgets the host's cores across
        the ranks (``max(1, cores // n_ranks)``).  fp64 results stay
        bitwise identical at every thread count, so mp == sim holds
        threaded or not.
    simd:
        Vectorized-kernel selector for the native backend
        (``None``/``'auto'``/``'on'``/``'off'``), applied uniformly on
        every rank.  fp64 results are bitwise identical either way, so
        the knob is invisible to the distributed contracts.
    eta_grid:
        ``B > 0`` switches the eta reduction to *grid mode*
        (:mod:`repro.dist.elastic`): the per-iteration dot products are
        recomputed per fixed global block of ``B`` rows (the kernels'
        fused per-rank dots are discarded) and the final reduction sums
        the ``ceil(N / B)`` block partials in block order.  The
        reduction order then depends only on ``(N, B)`` — never on the
        partition, rank count, schedule, or engine — which is what makes
        a mid-run repartition bitwise invisible.  Requires a
        ``B``-aligned partition, ``reduction='end'``, and a full-width
        storage profile (fp64/fp32).
    stop_m:
        Optional exclusive upper bound on the inner-iteration range: the
        run executes ``[first_m, stop_m)`` instead of ``[first_m, M/2)``
        and returns eta with only the columns ``[0, 2·stop_m)``
        meaningful.  The elastic driver runs a sequence of such segments
        — chained through boundary checkpoints — whose concatenation is
        bitwise equal to one uninterrupted run under grid mode.

    Returns
    -------
    eta:
        (R, M) complex, matching the serial engines.
    """
    from repro.dist.mp import MpWorld, mp_eta

    if isinstance(world, MpWorld):
        return mp_eta(
            A, partition, scale, n_moments, start_block, world,
            reduction=reduction, backend=backend, counters=counters,
            metrics=metrics, overlap=overlap,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path, resume_from=resume_from,
            fault_plan=fault_plan, attempt=attempt, precision=precision,
            progress=progress, progress_every=progress_every,
            threads=threads, simd=simd, eta_grid=eta_grid, stop_m=stop_m,
        )
    _check_moments(n_moments)
    from repro.dist.overlap import resolve_overlap, task_split

    if threads == "auto":
        import os

        threads = max(1, (os.cpu_count() or 1) // world.n_ranks)
    elif threads is not None:
        threads = max(1, int(threads))

    overlap = resolve_overlap(overlap, world.n_ranks)
    if reduction not in ("end", "every"):
        raise ValueError(f"reduction must be 'end' or 'every', got {reduction!r}")
    if checkpoint_every and checkpoint_path is None:
        raise ValueError("checkpoint_every requires checkpoint_path")
    if isinstance(A, DistributedMatrix):
        dist = A
    else:
        if partition is None:
            raise ValueError("partition is required with a global matrix")
        dist = partition_matrix(A, partition)
    if world.n_ranks != dist.n_ranks:
        raise SimulationError(
            f"world has {world.n_ranks} ranks, partition has {dist.n_ranks}"
        )
    n = dist.n_global
    a, b = scale.a, scale.b
    prec = get_precision(precision)
    bk = get_backend(backend)

    grid = int(eta_grid or 0)
    half = n_moments // 2 if stop_m is None else int(stop_m)
    if stop_m is not None and not 1 <= half <= n_moments // 2:
        raise ValueError(
            f"stop_m must be in [1, {n_moments // 2}], got {stop_m}"
        )
    if grid:
        if grid < 1:
            raise ValueError(f"eta_grid must be positive, got {eta_grid}")
        if reduction != "end":
            raise ValueError("eta_grid requires reduction='end'")
        if prec.half_vectors:
            raise ValueError(
                "eta_grid requires full-width vector storage (fp64/fp32); "
                f"got precision {prec.name!r}"
            )
        for blk in dist.blocks:
            if blk.row_start % grid:
                raise SimulationError(
                    f"rank {blk.rank} starts at row {blk.row_start}, not "
                    f"aligned to the eta grid of {grid} rows"
                )

    ck = None
    if resume_from is not None:
        ck = resolve_resume(resume_from, n_moments, a, b, metrics, prec,
                            eta_grid=grid)
        if ck.v.shape[0] != n:
            raise SimulationError(
                f"checkpoint holds {ck.v.shape[0]} rows, matrix has {n}"
            )
        r = ck.v.shape[1]
        first_m = ck.next_m
        base_eta = ck.eta[:, : 2 * first_m].astype(DTYPE, copy=True)
        if first_m > half:
            raise SimulationError(
                f"checkpoint resumes at m={first_m}, beyond stop_m={half}"
            )
    else:
        start_block = check_block_vector("start_block", start_block, n)
        r = start_block.shape[1]
        first_m = 1
        base_eta = None

    injectors = None
    if fault_plan is not None and fault_plan:
        injectors = [
            FaultInjector(fault_plan, rank=rank, attempt=attempt,
                          in_process=True)
            for rank in range(world.n_ranks)
        ]

    def probe_faults(m: int) -> None:
        if injectors is not None:
            for inj in injectors:
                inj.at_iteration(m)

    # Per-rank persistent state, sized once: the local block of the
    # current vector, the rectangular x = [v_loc; halo] kernel input, and
    # each rank's workspace plan for the fused kernel.
    def _to_storage(sl: np.ndarray) -> np.ndarray:
        """Private storage-dtype copy of a global-array row slice."""
        if sl.dtype == np.float16 or prec.is_fp64:
            return np.array(sl, copy=True, order="C")
        if prec.half_vectors:
            return prec.encode(sl)
        return sl.astype(prec.vector_dtype)

    if ck is not None:
        v_loc = [
            ck.v[blk.row_start : blk.row_stop, :].astype(
                prec.vector_dtype, copy=True)
            for blk in dist.blocks
        ]
        w_loc = [
            ck.w[blk.row_start : blk.row_stop, :].astype(
                prec.vector_dtype, copy=True)
            for blk in dist.blocks
        ]
    else:
        v_loc = [
            _to_storage(start_block[blk.row_start : blk.row_stop, :])
            for blk in dist.blocks
        ]
    xbufs = [
        np.empty(prec.vec_shape(blk.matrix.n_cols, r),
                 dtype=prec.vector_dtype)
        for blk in dist.blocks
    ]
    plans = [
        bk.plan(blk.matrix, r, precision=prec, threads=threads,
                simd=simd)
        for blk in dist.blocks
    ]
    splans = None
    if overlap:
        splans = [
            bk.split_plan(blk.matrix, task_split(blk), r, precision=prec,
                          threads=threads, simd=simd)
            for blk in dist.blocks
        ]
    # Grid mode accumulates one eta partial per global row block instead
    # of one per rank — ceil(N / B) slots whose axis-0 sum is the fixed
    # partition-independent reduction order.
    n_slots = -(-n // grid) if grid else world.n_ranks
    gblocks = (
        [grid_blocks(blk.row_start, blk.row_stop, grid)
         for blk in dist.blocks]
        if grid else None
    )
    eta_acc = np.zeros((n_slots, n_moments, r), dtype=DTYPE)

    def save_checkpoint(m: int) -> None:
        # State after iteration m, exactly as the serial engine saves it:
        # (v, w) post-step, eta prefix [0 : 2(m+1)) globally reduced.
        eta_full = np.zeros((r, n_moments), dtype=DTYPE)
        col0 = 2 * first_m if base_eta is not None else 0
        if base_eta is not None:
            eta_full[:, :col0] = base_eta
        eta_full[:, col0 : 2 * (m + 1)] = (
            eta_acc[:, col0 : 2 * (m + 1)].sum(axis=0).T
        )
        with metrics.span("checkpoint_save", phase="ckpt") as sp:
            saved = KpmCheckpoint(
                v=np.concatenate(v_loc, axis=0),
                w=np.concatenate(w_loc, axis=0),
                eta=eta_full, next_m=m + 1, n_moments=n_moments, a=a, b=b,
                precision=prec.name, eta_grid=grid,
            ).save(checkpoint_path)
            sp.note(file_bytes=saved.stat().st_size, next_m=m + 1)

    if ck is None:
        # nu_1 = a (H nu_0 - b nu_0), distributed
        probe_faults(0)
        with metrics.span("halo_exchange", phase="dist"):
            _halo_exchange_into(world, dist, v_loc, xbufs, phase="halo_init")
        w_loc = []
        for rank, (blk, v, xbuf, plan) in enumerate(
            zip(dist.blocks, v_loc, xbufs, plans)
        ):
            u = bk.spmmv(blk.matrix, xbuf, counters=counters, metrics=metrics)
            if prec.half_vectors:
                # one-off fp32 recombination through the plan's decode
                # scratch, rounded back to half storage; the bootstrap
                # dots read the pre-rounding fp32 values, exactly as the
                # per-step kernels accumulate theirs in registers
                nr = blk.matrix.n_rows
                vn = plan.vc[:nr]
                prec.decode(v, out=vn)
                un = plan.wc
                prec.decode(u, out=un)
                np.multiply(vn, b, out=plan.work_block)
                un -= plan.work_block
                un *= a
                eta_acc[rank, 0], eta_acc[rank, 1] = _col_dots(vn, un)
                prec.encode(un, out=u)
            else:
                np.multiply(v, b, out=plan.work_block)
                u -= plan.work_block
                u *= a
                if grid:
                    # per-block bootstrap dots: same _col_dots kernel on
                    # each contiguous block slice, so the values depend
                    # only on the global rows of the block
                    for k, sl in gblocks[rank]:
                        eta_acc[k, 0], eta_acc[k, 1] = _col_dots(v[sl], u[sl])
                elif prec.is_fp64:
                    eta_acc[rank, 0] = np.einsum("nr,nr->r", np.conj(v), v)
                    eta_acc[rank, 1] = np.einsum("nr,nr->r", np.conj(u), v)
                else:
                    # fp64-accumulated dots on the compute-dtype blocks
                    eta_acc[rank, 0], eta_acc[rank, 1] = _col_dots(v, u)
            w_loc.append(u)
        if reduction == "every":
            with metrics.span("allreduce", phase="dist"):
                for m_i in (0, 1):
                    world.allreduce_sum(
                        list(eta_acc[:, m_i]), phase="allreduce_iter"
                    )

    for m in range(first_m, half):
        probe_faults(m)
        v_loc, w_loc = w_loc, v_loc
        with metrics.span("halo_exchange", phase="dist"):
            _halo_exchange_into(world, dist, v_loc, xbufs, phase="halo")
        for rank, blk in enumerate(dist.blocks):
            # The rectangular fused kernel runs the update and the dots
            # over the first n_local rows of x — the rank's partial etas.
            # Task mode runs the same update as interior + boundary split
            # phases: the interior rows reference local columns only, so
            # the values are independent of when the halo tail of x
            # landed — bitwise what the mp engine's genuinely overlapped
            # schedule computes.
            if overlap:
                ee, eo = bk.aug_spmmv_split_step(
                    blk.matrix, xbufs[rank], w_loc[rank], a, b,
                    plan=splans[rank], counters=counters, metrics=metrics,
                )
            else:
                ee, eo = bk.aug_spmmv_step(
                    blk.matrix, xbufs[rank], w_loc[rank], a, b,
                    plan=plans[rank], counters=counters, metrics=metrics,
                )
            if grid:
                # Discard the kernel's fused per-rank dots and recompute
                # per global block: the extra pass is charged explicitly
                # (linear in rows, so the total is partition independent)
                # and the block partials make eta order-invariant under
                # repartitioning.
                vv, ww = v_loc[rank], w_loc[rank]
                for k, sl in gblocks[rank]:
                    eta_acc[k, 2 * m], eta_acc[k, 2 * m + 1] = _col_dots(
                        vv[sl], ww[sl]
                    )
                charge_col_dots(vv.shape[0], r, counters, prec=prec)
            else:
                eta_acc[rank, 2 * m] = ee
                eta_acc[rank, 2 * m + 1] = eo
        if reduction == "every":
            with metrics.span("allreduce", phase="dist"):
                world.allreduce_sum(
                    list(eta_acc[:, 2 * m]), phase="allreduce_iter"
                )
                world.allreduce_sum(
                    list(eta_acc[:, 2 * m + 1]), phase="allreduce_iter"
                )
        if progress is not None and progress_every > 0 \
                and (m - first_m + 1) % progress_every == 0:
            # Stream the globally-reduced eta prefix, composed exactly as
            # save_checkpoint composes it (base splice + rank sum).
            prefix = np.zeros((r, 2 * (m + 1)), dtype=DTYPE)
            col0 = 2 * first_m if base_eta is not None else 0
            if base_eta is not None:
                prefix[:, :col0] = base_eta
            prefix[:, col0:] = eta_acc[:, col0 : 2 * (m + 1)].sum(axis=0).T
            progress(2 * (m + 1), prefix)
        if checkpoint_every and (m - first_m + 1) % checkpoint_every == 0:
            save_checkpoint(m)

    # final reduction over ranks: one collective for the whole eta array
    with metrics.span("allreduce", phase="dist"):
        if grid or stop_m is not None:
            # Grid mode: the K block partials are summed in block order
            # (NumPy's axis-0 reduce is sequential in k per element) —
            # the canonical reduction whose order depends only on (N, B).
            # The wire cost is still one P-rank allreduce of the columns
            # this run computed, logged explicitly because the slot axis
            # no longer matches the rank count.
            eta_global = eta_acc.sum(axis=0)
            itemsize = np.dtype(DTYPE).itemsize
            cols = (
                n_moments if stop_m is None
                else (2 * half if first_m == 1 else 2 * (half - first_m))
            )
            if cols:
                log_allreduce(world.log, world.n_ranks, cols * r * itemsize,
                              "allreduce_final")
        else:
            eta_global = world.allreduce_sum(
                [eta_acc[rank] for rank in range(world.n_ranks)],
                phase="allreduce_final",
            )
    if first_m > 1:
        # Splice the checkpointed prefix in verbatim (never re-reduced),
        # matching the mp engine's resumed composition bitwise.
        eta_global[: 2 * first_m] = base_eta.T
    return eta_global.T.copy()  # (R, M)


def distributed_dos(
    A: CSRMatrix | DistributedMatrix,
    partition: RowPartition | None,
    n_moments: int,
    n_vectors: int,
    world,
    *,
    scale: SpectralScale | None = None,
    seed: int | None = None,
    kernel: str = "jackson",
    n_points: int | None = None,
    reduction: str = "end",
    backend: KernelBackend | str = "auto",
    counters: PerfCounters = NULL_COUNTERS,
    metrics: MetricsRegistry = NULL_METRICS,
    overlap: bool | str | None = False,
    precision: Precision | str | None = None,
    threads: int | str | None = None,
    simd: str | None = None,
):
    """Full distributed KPM-DOS application: the paper's production code.

    Estimates the spectral map (Lanczos on the global operator), draws
    the stochastic block, runs the distributed blocked solver on the
    simulated ranks, and reconstructs rho(E). Returns a
    :class:`repro.core.solver.DOSResult` identical (bit-for-bit moments)
    to the serial :class:`~repro.core.solver.KPMSolver` with the same
    seed and scale.
    """
    from repro.core.moments import eta_to_moments
    from repro.core.reconstruct import reconstruct_dos
    from repro.core.scaling import lanczos_scale
    from repro.core.solver import DOSResult
    from repro.core.stochastic import make_block_vector

    if isinstance(A, DistributedMatrix):
        dist = A
        global_for_scale = None
    else:
        dist = None
        global_for_scale = A
    if scale is None:
        if global_for_scale is None:
            raise ValueError(
                "pass an explicit scale when starting from a "
                "DistributedMatrix (the global operator is unavailable)"
            )
        scale = lanczos_scale(global_for_scale, seed=seed)
    n = (dist.n_global if dist is not None else A.n_rows)
    block = make_block_vector(n, n_vectors, seed=seed)
    eta = distributed_eta(
        A, partition, scale, n_moments, block, world, reduction=reduction,
        backend=backend, counters=counters, metrics=metrics, overlap=overlap,
        precision=precision, threads=threads, simd=simd,
    )
    mu = eta_to_moments(eta).mean(axis=0).real
    pts = n_points if n_points is not None else max(2 * n_moments, 256)
    energies, rho = reconstruct_dos(
        mu, scale, n_points=pts, kernel=kernel
    )
    return DOSResult(energies, rho, mu, scale, n_vectors, kernel)


def distributed_dos_moments(
    A: CSRMatrix | DistributedMatrix,
    partition: RowPartition | None,
    scale: SpectralScale,
    n_moments: int,
    start_block: np.ndarray,
    world,
    *,
    reduction: str = "end",
    backend: KernelBackend | str = "auto",
    counters: PerfCounters = NULL_COUNTERS,
    metrics: MetricsRegistry = NULL_METRICS,
    overlap: bool | str | None = False,
    precision: Precision | str | None = None,
    threads: int | str | None = None,
    simd: str | None = None,
) -> np.ndarray:
    """Distributed stochastic-trace moments (mean over the R vectors)."""
    from repro.core.moments import eta_to_moments

    eta = distributed_eta(
        A, partition, scale, n_moments, start_block, world, reduction=reduction,
        backend=backend, counters=counters, metrics=metrics, overlap=overlap,
        precision=precision, threads=threads, simd=simd,
    )
    return eta_to_moments(eta).mean(axis=0).real
