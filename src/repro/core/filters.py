"""KPM spectral filters: polynomial window projectors.

The eigenvalue-counting application (paper Refs. [8], [22]) pairs with a
second use of the same Chebyshev machinery: approximating the spectral
projector ``P = chi_[E1,E2](H)`` as a damped polynomial in ``H~`` and
applying it to block vectors — the filtering step of FEAST-style
subspace eigensolvers, whose subspace size KPM-DOS predicts.

The Chebyshev coefficients of the characteristic function of
``[x1, x2] in (-1, 1)`` are analytic:

    c_0 = (arccos x1 - arccos x2) / pi,
    c_m = 2 (sin(m arccos x1) - sin(m arccos x2)) / (m pi),

damped with a Jackson kernel against Gibbs ringing. Applying the filter
costs ``order`` SpMMVs over the block — the identical data-parallel
kernel as KPM stage 2.
"""

from __future__ import annotations

import numpy as np

from repro.core.damping import get_kernel
from repro.core.scaling import SpectralScale
from repro.sparse.csr import CSRMatrix
from repro.sparse.sell import SellMatrix
from repro.sparse.spmv import spmmv
from repro.util.constants import DTYPE
from repro.util.counters import NULL_COUNTERS, PerfCounters
from repro.util.validation import check_positive


def window_coefficients(
    x1: float, x2: float, order: int, kernel: str = "jackson"
) -> np.ndarray:
    """Damped Chebyshev coefficients of chi_[x1, x2] on (-1, 1).

    The returned array c satisfies
    ``chi(x) ~= c_0 + 2 sum_{m>=1} c_m T_m(x)`` after damping.
    """
    check_positive("order", order)
    if not -1.0 < x1 < x2 < 1.0:
        raise ValueError(
            f"need -1 < x1 < x2 < 1, got [{x1}, {x2}]"
        )
    t1, t2 = np.arccos(x1), np.arccos(x2)
    m = np.arange(1, order)
    c = np.empty(order)
    c[0] = (t1 - t2) / np.pi
    c[1:] = (np.sin(m * t1) - np.sin(m * t2)) / (m * np.pi)
    return c * get_kernel(kernel, order)


def evaluate_window(
    coeffs: np.ndarray, x: np.ndarray
) -> np.ndarray:
    """Scalar evaluation of the filter polynomial (tests / diagnostics)."""
    x = np.asarray(x, dtype=float)
    theta = np.arccos(np.clip(x, -1.0, 1.0))
    m = np.arange(len(coeffs))
    t_table = np.cos(np.outer(m, theta))
    weights = np.full(len(coeffs), 2.0)
    weights[0] = 1.0
    return np.tensordot(coeffs * weights, t_table, axes=([0], [0]))


def apply_filter(
    H: CSRMatrix | SellMatrix,
    scale: SpectralScale,
    block: np.ndarray,
    e_lo: float,
    e_hi: float,
    order: int = 512,
    kernel: str = "jackson",
    counters: PerfCounters = NULL_COUNTERS,
) -> np.ndarray:
    """Apply the polynomial window projector to a block of vectors.

    Returns ``P_approx @ block`` where P_approx ~ chi_[e_lo, e_hi](H).
    Components belonging to eigenvalues inside the window survive with
    weight ~1, outside decay to ~0 over the Jackson resolution
    ``~ spectral width * pi / order`` around the window edges.
    """
    if e_hi <= e_lo:
        raise ValueError(f"empty window [{e_lo}, {e_hi}]")
    single = block.ndim == 1
    v = np.ascontiguousarray(
        block[:, None] if single else block, dtype=DTYPE
    )
    x1 = float(np.clip(scale.to_unit(e_lo), -0.999999, 0.999999))
    x2 = float(np.clip(scale.to_unit(e_hi), -0.999999, 0.999999))
    if x2 <= x1:
        raise ValueError(
            f"window [{e_lo}, {e_hi}] collapses under the spectral map"
        )
    coeffs = window_coefficients(x1, x2, order, kernel)

    a, b = scale.a, scale.b
    two_a = 2.0 * a
    v_prev = v.copy()  # T_0 block
    out = coeffs[0] * v_prev
    if order > 1:
        v_cur = spmmv(H, v_prev, counters=counters)
        v_cur -= b * v_prev
        v_cur *= a
        out += 2.0 * coeffs[1] * v_cur
        scratch = np.empty_like(v)
        for m in range(2, order):
            spmmv(H, v_cur, out=scratch, counters=counters)
            v_prev *= -1.0
            v_prev += two_a * scratch
            v_prev -= (two_a * b) * v_cur
            v_prev, v_cur = v_cur, v_prev
            out += 2.0 * coeffs[m] * v_cur
    return out[:, 0] if single else out


def filtered_subspace(
    H: CSRMatrix | SellMatrix,
    scale: SpectralScale,
    e_lo: float,
    e_hi: float,
    n_vectors: int,
    *,
    order: int = 512,
    seed: int | None = None,
    counters: PerfCounters = NULL_COUNTERS,
) -> np.ndarray:
    """Orthonormal basis of the filtered random subspace.

    One FEAST-style filtering round: filter ``n_vectors`` random vectors
    through the window and orthonormalize. With ``n_vectors`` comfortably
    above the KPM eigencount of the window, the span captures the target
    eigenspace. Returns an orthonormal (N, n_vectors) block.
    """
    from repro.core.stochastic import make_block_vector

    check_positive("n_vectors", n_vectors)
    block = make_block_vector(H.n_rows, n_vectors, seed=seed)
    filtered = apply_filter(
        H, scale, block, e_lo, e_hi, order=order, counters=counters
    )
    q, _ = np.linalg.qr(filtered)
    return np.ascontiguousarray(q)
