"""Spectral rescaling of H into the Chebyshev interval [-1, 1].

KPM expands in Chebyshev polynomials, whose orthogonality interval is
[-1, 1]; the original operator must therefore be rescaled as

    H~ = a (H - b 1)                                   (paper Section II)

with ``a, b`` chosen so that spec(H~) is strictly inside [-1, 1].
"Suitable values a, b are determined initially with Gershgorin's circle
theorem or a few Lanczos sweeps" — both options are implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.sell import SellMatrix
from repro.sparse.spmv import spmv
from repro.util.constants import DTYPE
from repro.util.errors import ConvergenceError
from repro.util.rng import make_rng
from repro.util.validation import check_in_range, check_positive


@dataclass(frozen=True)
class SpectralScale:
    """The linear spectral map ``x = a (E - b)`` and its inverse.

    Attributes
    ----------
    a:
        Contraction factor (1 / half-width of the padded spectral window).
    b:
        Center of the spectral window.
    emin, emax:
        The estimated spectral bounds the map was derived from.
    """

    a: float
    b: float
    emin: float
    emax: float

    @classmethod
    def from_bounds(cls, emin: float, emax: float, epsilon: float = 0.01) -> "SpectralScale":
        """Build the map from spectral bounds with safety margin ``epsilon``.

        The spectrum is mapped into [-(1-epsilon), +(1-epsilon)]; KPM
        diverges if any eigenvalue of H~ leaves [-1, 1], so a small
        positive margin is essential with estimated bounds.
        """
        if not emax > emin:
            raise ValueError(f"need emax > emin, got [{emin}, {emax}]")
        check_in_range("epsilon", epsilon, 0.0, 0.5)
        half_width = (emax - emin) / (2.0 * (1.0 - epsilon))
        return cls(a=1.0 / half_width, b=(emax + emin) / 2.0, emin=emin, emax=emax)

    def to_unit(self, energy):
        """Map physical energy E to x = a (E - b) in [-1, 1]."""
        return self.a * (np.asarray(energy) - self.b)

    def from_unit(self, x):
        """Inverse map x -> E = x / a + b."""
        return np.asarray(x) / self.a + self.b

    def density_jacobian(self) -> float:
        """|dx/dE| = a: converts a density in x into a density in E."""
        return self.a


def gershgorin_scale(H: CSRMatrix, epsilon: float = 0.01) -> SpectralScale:
    """Spectral map from Gershgorin's circle theorem (cheap, rigorous).

    Gershgorin bounds always *enclose* the spectrum, so the resulting map
    is safe by construction — at the cost of a wider window (lower energy
    resolution per Chebyshev moment) than Lanczos-estimated bounds.
    """
    emin, emax = H.gershgorin_bounds()
    return SpectralScale.from_bounds(emin, emax, epsilon)


def lanczos_bounds(
    H: CSRMatrix | SellMatrix,
    n_iter: int = 50,
    seed: int | None | np.random.Generator = None,
    *,
    margin: float = 0.05,
) -> tuple[float, float]:
    """Extremal-eigenvalue estimates from a plain Lanczos sweep.

    Runs ``n_iter`` Lanczos steps from a random start vector and returns
    the extreme Ritz values, stretched outward by ``margin`` times the
    spectral width (Ritz values approach the true extremes from inside, so
    an outward safety factor is required before use in KPM).
    """
    check_positive("n_iter", n_iter)
    n = H.n_rows
    rng = make_rng(seed)
    v = rng.normal(size=n) + 1j * rng.normal(size=n)
    v = v.astype(DTYPE)
    v /= np.linalg.norm(v)
    v_prev = np.zeros(n, dtype=DTYPE)
    alphas: list[float] = []
    betas: list[float] = []
    beta = 0.0
    m = min(n_iter, n)
    for _ in range(m):
        w = spmv(H, v)
        alpha = float(np.vdot(v, w).real)
        w -= alpha * v + beta * v_prev
        # one re-orthogonalization pass keeps the extreme Ritz values sane
        w -= np.vdot(v, w) * v
        beta = float(np.linalg.norm(w))
        alphas.append(alpha)
        if beta < 1e-14:
            break
        betas.append(beta)
        v_prev, v = v, w / beta
    if not alphas:
        raise ConvergenceError("Lanczos produced no Ritz values")
    t = np.diag(alphas)
    if betas:
        k = len(alphas)
        off = np.array(betas[: k - 1])
        t = t + np.diag(off, 1) + np.diag(off, -1)
    ritz = np.linalg.eigvalsh(t)
    lo, hi = float(ritz[0]), float(ritz[-1])
    width = max(hi - lo, 1e-300)
    return lo - margin * width, hi + margin * width


def lanczos_scale(
    H: CSRMatrix | SellMatrix,
    n_iter: int = 50,
    epsilon: float = 0.01,
    seed: int | None | np.random.Generator = None,
) -> SpectralScale:
    """Spectral map from Lanczos bounds (tighter window than Gershgorin)."""
    emin, emax = lanczos_bounds(H, n_iter=n_iter, seed=seed)
    return SpectralScale.from_bounds(emin, emax, epsilon)
