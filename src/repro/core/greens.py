"""KPM Green functions: the Lorentz-kernel application of the moments.

The same Chebyshev moments that give the DOS also give the retarded /
advanced Green function (Weisse et al., Rev. Mod. Phys. 78, 275 (2006),
the paper's Ref. [7]):

    G^{+/-}(x) = <v| (x - H~ +/- i0)^{-1} |v>
             = -/+ (2i / sqrt(1 - x^2))
               * sum_m  mu_m g_m exp(-/+ i m arccos x) / (1 + delta_m0)

Its imaginary part reproduces the spectral density,
``rho(x) = -Im G^+(x) / pi``, which the test suite uses as a cross-check
between the two reconstruction paths. The Lorentz kernel is the natural
damping here (it preserves the analytic structure of G — paper Ref. [7]).
"""

from __future__ import annotations

import numpy as np

from repro.core.damping import get_kernel
from repro.core.scaling import SpectralScale
from repro.util.errors import ShapeError


def greens_function(
    moments: np.ndarray,
    x: np.ndarray,
    *,
    retarded: bool = True,
    kernel: str = "jackson",
    **kernel_kwargs,
) -> np.ndarray:
    """Evaluate G(x +/- i0) from Chebyshev moments at x in (-1, 1).

    ``moments`` may be batched on leading axes (last axis = m). Returns
    a complex array of shape ``moments.shape[:-1] + x.shape``.
    """
    moments = np.asarray(moments)
    if moments.ndim < 1:
        raise ShapeError("moments must have at least one axis")
    x = np.asarray(x, dtype=float)
    if np.any((x <= -1.0) | (x >= 1.0)):
        raise ValueError("evaluation points must lie strictly inside (-1, 1)")
    m_count = moments.shape[-1]
    g = get_kernel(kernel, m_count, **kernel_kwargs)
    damped = moments * g
    # weight 1/(1 + delta_m0): halve the m = 0 term
    damped = damped.copy()
    damped[..., 0] = damped[..., 0] / 2.0
    theta = np.arccos(x)
    sign = -1.0 if retarded else 1.0
    phases = np.exp(sign * 1j * np.outer(np.arange(m_count), theta))
    series = np.tensordot(damped, phases, axes=([-1], [0]))
    prefactor = sign * 2j / np.sqrt(1.0 - x**2)
    return prefactor * series


def greens_function_energy(
    moments: np.ndarray,
    scale: SpectralScale,
    energies: np.ndarray,
    *,
    retarded: bool = True,
    kernel: str = "jackson",
    **kernel_kwargs,
) -> np.ndarray:
    """G(E +/- i0) on physical energies: G_E(E) = a * G_x(a (E - b)).

    Energies outside the spectral window return 0 (the principal-value
    tail is not reconstructed outside (-1, 1)).
    """
    energies = np.asarray(energies, dtype=float)
    x = scale.to_unit(energies)
    moments = np.asarray(moments)
    out = np.zeros(moments.shape[:-1] + energies.shape, dtype=complex)
    inside = (x > -1.0) & (x < 1.0)
    if np.any(inside):
        out[..., inside] = greens_function(
            moments, x[inside], retarded=retarded, kernel=kernel,
            **kernel_kwargs,
        )
    return out * scale.density_jacobian()


def dos_from_greens(
    moments: np.ndarray,
    scale: SpectralScale,
    energies: np.ndarray,
    kernel: str = "jackson",
) -> np.ndarray:
    """rho(E) = -Im G^+(E) / pi — must equal the direct reconstruction."""
    g = greens_function_energy(
        moments, scale, energies, retarded=True, kernel=kernel
    )
    return -g.imag / np.pi
