"""Chebyshev moment computation — the paper's three optimization stages.

All engines compute the same mathematical object: for each stochastic
start vector |v_r> the sequence

    eta_0 = <nu_0|nu_0>,  eta_1 = <nu_1|nu_0>,
    eta_2m = <nu_m|nu_m>,  eta_2m+1 = <nu_{m+1}|nu_m>,   m = 1 .. M/2-1,

where |nu_m> = T_m(H~)|nu_0> via the two-term recurrence Eq. (3). The
doubling identities 2 T_m^2 = T_0 + T_2m and 2 T_m T_{m+1} = T_1 + T_{2m+1}
then yield the full set of M Chebyshev moments from M/2 matrix
applications (:func:`eta_to_moments`).

The engines differ only in *implementation* — exactly the paper's point:

* ``NAIVE``     — paper Fig. 3: spmv + axpy + scal + axpy + nrm2 + dot.
* ``AUG_SPMV``  — paper Fig. 4 (stage 1): one fused kernel per iteration.
* ``AUG_SPMMV`` — paper Fig. 5 (stage 2): all R vectors blocked, one
  matrix traversal per iteration.

Orthogonally, ``backend`` selects *who executes* the kernels — the
NumPy reference or the compiled native kernels — through
:mod:`repro.sparse.backend`. All workspaces are hoisted into a
per-(matrix, R) plan before the M/2-iteration loop, which then runs
allocation-free: the nu_m / nu_{m+1} buffers swap by reference and every
kernel writes into preallocated storage.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.core.scaling import SpectralScale
from repro.obs import NULL_METRICS, MetricsRegistry
from repro.sparse.backend import KernelBackend, get_backend
from repro.sparse.csr import CSRMatrix
from repro.sparse.fused import _col_dots, vec_dots
from repro.sparse.sell import SellMatrix
from repro.util.constants import DTYPE
from repro.util.counters import NULL_COUNTERS, PerfCounters
from repro.util.precision import FP64, Precision, get_precision
from repro.util.validation import check_block_vector, check_positive


class MomentEngine(str, Enum):
    """Which implementation computes the moments (identical results)."""

    NAIVE = "naive"
    AUG_SPMV = "aug_spmv"
    AUG_SPMMV = "aug_spmmv"


def _check_moments(n_moments: int) -> None:
    check_positive("n_moments", n_moments)
    if n_moments % 2 != 0 or n_moments < 2:
        raise ValueError(
            f"n_moments must be an even integer >= 2 (the recurrence yields "
            f"two moments per iteration), got {n_moments}"
        )


def _eta_single(
    H: CSRMatrix | SellMatrix,
    scale: SpectralScale,
    n_moments: int,
    start: np.ndarray,
    bk: KernelBackend,
    step_fn,
    plan,
    counters: PerfCounters,
    metrics: MetricsRegistry = NULL_METRICS,
    prec: Precision = FP64,
) -> np.ndarray:
    """Shared single-vector driver for the NAIVE and AUG_SPMV engines.

    ``step_fn`` is a bound backend step (naive/aug_spmv); ``plan`` holds
    its workspaces, so the loop allocates nothing per iteration.
    """
    a, b = scale.a, scale.b
    eta = np.empty(n_moments, dtype=DTYPE)
    if prec.half_vectors:
        # nu_0/nu_1 live in half pair storage; the bootstrap recombination
        # runs once in fp32 through the plan's decode scratch, then the
        # result is rounded back — exactly the per-step kernel contract.
        if start.dtype == np.float16:
            v = np.ascontiguousarray(start)
        else:
            v = prec.encode(start)
        w = bk.spmv(H, v, counters=counters, metrics=metrics)
        vc, wc = plan.vc[:, 0], plan.wc[:, 0]
        prec.decode(v, out=vc)
        prec.decode(w, out=wc)
        np.multiply(vc, b, out=plan.work)
        wc -= plan.work
        wc *= a
        prec.encode(wc, out=w)
        eta[0], eta[1] = vec_dots(vc, wc)
    else:
        v = start.astype(prec.vector_dtype, copy=True)  # nu_0
        # nu_1 = a (H nu_0 - b nu_0)
        w = np.empty_like(v)
        bk.spmv(H, v, out=w, counters=counters, metrics=metrics)
        np.multiply(v, b, out=plan.work)
        w -= plan.work
        w *= a
        # fp64-accumulated dots; bitwise np.vdot for the fp64 profile
        eta[0], eta[1] = vec_dots(v, w)
    for m in range(1, n_moments // 2):
        v, w = w, v  # v = nu_m, w = nu_{m-1}
        eta_even, eta_odd = step_fn(
            H, v, w, a, b, plan=plan, counters=counters, metrics=metrics
        )
        eta[2 * m] = eta_even
        eta[2 * m + 1] = eta_odd
    return eta


def compute_eta(
    H: CSRMatrix | SellMatrix,
    scale: SpectralScale,
    n_moments: int,
    start_block: np.ndarray,
    engine: MomentEngine | str = MomentEngine.AUG_SPMMV,
    counters: PerfCounters = NULL_COUNTERS,
    backend: KernelBackend | str = "auto",
    metrics: MetricsRegistry = NULL_METRICS,
    precision: Precision | str | None = None,
    threads: int | None = None,
    simd: str | None = None,
) -> np.ndarray:
    """Compute the raw scalar products eta for every start vector.

    Parameters
    ----------
    H:
        The (unscaled) sparse Hermitian operator.
    scale:
        Spectral map; the kernels apply ``H~ = a (H - b 1)`` on the fly —
        the rescaled matrix is never materialized (paper Figs. 4, 5).
    n_moments:
        Number of moments M (even); M/2 matrix applications per vector.
    start_block:
        (N, R) C-contiguous block of start vectors.
    engine:
        Which optimization stage to execute.
    backend:
        Kernel backend: ``'auto'`` (native when compilable, else numpy),
        ``'numpy'``, ``'native'``, or a :class:`KernelBackend` instance.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`; when live, every
        kernel invocation records a wall-time span with the counters'
        traffic/flop delta attached (free with the null default).
    precision:
        Storage profile (:mod:`repro.util.precision`): ``'fp64'``
        (default, bitwise the historical path), ``'fp32'``, or
        ``'fp16v'``.  The eta accumulation is fp64 in every profile;
        the naive engine runs fp16v through the backends' decode pass
        (half-storage SpMV + fp32 BLAS-1).
    threads:
        Intra-rank thread count for the native threaded kernels.
        ``None`` (default) keeps the sequential kernels; any explicit
        count routes the augmented steps through the block-grid threaded
        variants, whose fp64 results are bitwise identical at every
        thread count.  The NumPy backend accepts and ignores the knob.
    simd:
        Vectorized-kernel selector for the native backend
        (``None``/``'auto'``/``'on'``/``'off'``); fp64 results are
        bitwise identical either way, so this is purely a performance
        knob.  The NumPy backend accepts and ignores it.

    Returns
    -------
    eta:
        Complex array (R, M); ``eta[r, 2m]`` is real (stored complex).
    """
    _check_moments(n_moments)
    engine = MomentEngine(engine)
    prec = get_precision(precision)
    bk = get_backend(backend)
    n = H.n_rows
    start_block = check_block_vector("start_block", start_block, n)
    if start_block.dtype == np.float16 and not prec.half_vectors:
        raise TypeError(
            "start_block uses float16 pair storage but precision is "
            f"{prec.name!r}; pass precision='fp16v'"
        )
    # (n, r) complex or (n, r, 2) f16 pair storage: r is axis 1 either way
    r = start_block.shape[1]
    eta = np.empty((r, n_moments), dtype=DTYPE)

    if engine in (MomentEngine.NAIVE, MomentEngine.AUG_SPMV):
        step_fn = (
            bk.naive_step if engine is MomentEngine.NAIVE else bk.aug_spmv_step
        )
        plan = bk.plan(H, 1, precision=prec, threads=threads, simd=simd)
        for i in range(r):
            eta[i] = _eta_single(
                H, scale, n_moments, start_block[:, i], bk, step_fn, plan,
                counters, metrics, prec,
            )
        return eta

    # --- stage 2: blocked ---------------------------------------------
    a, b = scale.a, scale.b
    plan = bk.plan(H, r, precision=prec, threads=threads, simd=simd)
    if prec.half_vectors:
        # Block bootstrap in half storage: the SpMMV streams the f16
        # layout, then the one-off recombination runs in fp32 through the
        # plan's decode scratch and is rounded back to storage.
        if start_block.dtype == np.float16:
            V = np.ascontiguousarray(start_block)
        else:
            V = prec.encode(start_block)
        W = bk.spmmv(H, V, counters=counters, metrics=metrics)
        Vc, Wc = plan.vc[: H.n_rows], plan.wc
        prec.decode(V, out=Vc)
        prec.decode(W, out=Wc)
        np.multiply(Vc, b, out=plan.work_block)
        Wc -= plan.work_block
        Wc *= a
        prec.encode(Wc, out=W)
        eta[:, 0], eta[:, 1] = _col_dots(Vc, Wc)
    else:
        # nu_0 block (private copy; complex128 fp64 / complex64 fp32)
        V = start_block.astype(prec.vector_dtype, copy=True)
        W = bk.spmmv(H, V, counters=counters, metrics=metrics)  # nu_1 block
        np.multiply(V, b, out=plan.work_block)
        W -= plan.work_block
        W *= a
        eta[:, 0], eta[:, 1] = _col_dots(V, W)
    for m in range(1, n_moments // 2):
        V, W = W, V
        eta_even, eta_odd = bk.aug_spmmv_step(
            H, V, W, a, b, plan=plan, counters=counters, metrics=metrics
        )
        eta[:, 2 * m] = eta_even
        eta[:, 2 * m + 1] = eta_odd
    return eta


def eta_to_moments(eta: np.ndarray) -> np.ndarray:
    """Convert raw scalar products into Chebyshev moments.

    mu_0 = eta_0, mu_1 = eta_1,
    mu_2m   = 2 eta_2m   - mu_0,
    mu_2m+1 = 2 eta_2m+1 - mu_1        (m >= 1).

    Works on a single (M,) sequence or a stacked (R, M) array.
    """
    eta = np.asarray(eta)
    mu = 2.0 * eta
    mu[..., 0] = eta[..., 0]
    mu[..., 1] = eta[..., 1]
    mu[..., 2::2] -= eta[..., 0:1]
    mu[..., 3::2] -= eta[..., 1:2]
    return mu


def compute_dos_moments(
    H: CSRMatrix | SellMatrix,
    scale: SpectralScale,
    n_moments: int,
    start_block: np.ndarray,
    engine: MomentEngine | str = MomentEngine.AUG_SPMMV,
    counters: PerfCounters = NULL_COUNTERS,
    backend: KernelBackend | str = "auto",
    metrics: MetricsRegistry = NULL_METRICS,
    precision: Precision | str | None = None,
    threads: int | None = None,
    simd: str | None = None,
) -> np.ndarray:
    """Stochastic-trace DOS moments mu_m ~= tr[T_m(H~)].

    Averages the per-vector moments over the R start vectors:
    tr[A] ~= (1/R) sum_r <v_r|A|v_r> for iid random vectors with
    E[v v^H] = Identity (paper Section II). Returns a real (M,) array.
    """
    eta = compute_eta(
        H, scale, n_moments, start_block, engine, counters, backend=backend,
        metrics=metrics, precision=precision, threads=threads, simd=simd,
    )
    mu = eta_to_moments(eta)
    return mu.mean(axis=0).real
