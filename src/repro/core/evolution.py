"""Chebyshev time evolution — the KPM-family propagator.

The paper's conclusion announces applying the blocked-kernel findings
"to other blocked sparse linear algebra algorithms besides KPM"; the
canonical neighbor is Chebyshev time propagation, which expands

    exp(-i H t) |psi> = e^{-i b t} * [ c_0(tau) + 2 sum_{m>=1} c_m(tau)
                                       (-i)^m T_m(H~) ] |psi>,
    c_m(tau) = J_m(tau),   tau = a^{-1} t  (Bessel functions),

over exactly the same two-term recurrence and therefore the same
augmented (blocked) kernels as KPM-DOS. The expansion order follows from
tau: |J_m(tau)| collapses super-exponentially once m > tau, so
``order ~ tau + buffer`` gives machine precision.
"""

from __future__ import annotations

import numpy as np
from scipy.special import jv

from repro.core.scaling import SpectralScale
from repro.sparse.csr import CSRMatrix
from repro.sparse.sell import SellMatrix
from repro.sparse.spmv import spmmv
from repro.util.constants import DTYPE
from repro.util.counters import NULL_COUNTERS, PerfCounters
from repro.util.validation import check_positive


def chebyshev_expansion_order(tau: float, tolerance: float = 1e-12) -> int:
    """Terms needed for |J_m(tau)| < tolerance beyond the last kept m.

    Uses the standard estimate: convergence sets in at m ~ tau; a
    logarithmic buffer covers the super-exponential tail.
    """
    if tau < 0:
        raise ValueError(f"tau must be >= 0, got {tau}")
    if not 0 < tolerance < 1:
        raise ValueError(f"tolerance must be in (0, 1), got {tolerance}")
    # beyond m ~ tau the Bessel envelope enters its Airy tail:
    # |J_m(tau)| ~ exp(-(2/3) c^{3/2}) at m = tau + c tau^{1/3}, so the
    # buffer must grow like tau^{1/3} * log(1/tol)^{2/3}
    c = (1.5 * np.log(1.0 / tolerance)) ** (2.0 / 3.0)
    buffer = c * max(tau, 1.0) ** (1.0 / 3.0) + 10.0
    return max(int(np.ceil(tau + buffer)), 4)


def evolve(
    H: CSRMatrix | SellMatrix,
    scale: SpectralScale,
    psi0: np.ndarray,
    t: float,
    *,
    order: int | None = None,
    counters: PerfCounters = NULL_COUNTERS,
) -> np.ndarray:
    """Propagate |psi(t)> = exp(-i H t) |psi0>.

    ``psi0`` may be a single vector (N,) or a row-major block (N, R) —
    the blocked path runs the same SpMMV amortization as KPM stage 2.
    The spectral map must enclose spec(H) (use
    :func:`repro.core.scaling.lanczos_scale`).
    """
    single = psi0.ndim == 1
    psi = np.ascontiguousarray(
        psi0[:, None] if single else psi0, dtype=DTYPE
    )
    n, r = psi.shape
    if n != H.n_rows:
        raise ValueError(
            f"psi0 has {n} rows but the operator has {H.n_rows}"
        )
    # H = H~ / a + b  =>  exp(-iHt) = exp(-ibt) exp(-i H~ tau), tau = t/a
    tau = abs(t) / scale.a
    sgn = 1.0 if t >= 0 else -1.0
    if order is None:
        order = chebyshev_expansion_order(tau)
    check_positive("order", order)

    coeff = jv(np.arange(order), tau)
    a, b = scale.a, scale.b
    two_a = 2.0 * a

    v_prev = psi.copy()  # T_0 |psi>
    out = coeff[0] * v_prev
    if order > 1:
        # T_1 |psi> = H~ |psi>
        v_cur = spmmv(H, v_prev, counters=counters)
        v_cur -= b * v_prev
        v_cur *= a
        out = out + 2.0 * coeff[1] * (-1j * sgn) * v_cur
        phase = -1j * sgn
        scratch = np.empty_like(psi)
        for m in range(2, order):
            # v_next = 2 a (H - b) v_cur - v_prev, into v_prev's storage
            spmmv(H, v_cur, out=scratch, counters=counters)
            v_prev *= -1.0
            v_prev += two_a * scratch
            v_prev -= (two_a * b) * v_cur
            v_prev, v_cur = v_cur, v_prev
            phase = phase * (-1j * sgn)
            out += 2.0 * coeff[m] * phase * v_cur
    out *= np.exp(-1j * b * t)
    return out[:, 0] if single else out


def autocorrelation(
    H: CSRMatrix | SellMatrix,
    scale: SpectralScale,
    psi0: np.ndarray,
    times: np.ndarray,
    *,
    counters: PerfCounters = NULL_COUNTERS,
) -> np.ndarray:
    """Survival amplitude C(t) = <psi0| exp(-i H t) |psi0> over ``times``.

    The Fourier transform of C(t) is the local spectral function — the
    time-domain counterpart of the KPM-DOS quantity.
    """
    times = np.asarray(times, dtype=float)
    psi0 = np.asarray(psi0, dtype=DTYPE)
    out = np.empty(times.shape, dtype=complex)
    for i, t in enumerate(times.ravel()):
        psi_t = evolve(H, scale, psi0, float(t), counters=counters)
        out.ravel()[i] = np.vdot(psi0, psi_t)
    return out
