"""Adaptive stochastic trace estimation and resolution planning.

Production concerns around the KPM loop that the paper's production code
(GHOST/the KPM application) handles outside the kernels:

* choosing M for a target energy resolution (Jackson width ~ pi/M in the
  Chebyshev variable),
* growing the number of stochastic vectors R until the trace moments
  reach a target relative accuracy, in blocks sized for the stage-2
  kernel (i.e. keeping the SpMMV width large).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.moments import compute_eta, eta_to_moments
from repro.core.scaling import SpectralScale
from repro.core.stochastic import make_block_vector
from repro.sparse.csr import CSRMatrix
from repro.sparse.sell import SellMatrix
from repro.util.counters import NULL_COUNTERS, PerfCounters
from repro.util.rng import make_rng
from repro.util.validation import check_positive


def moments_for_resolution(scale: SpectralScale, delta_e: float) -> int:
    """Moments M needed so the Jackson kernel resolves ``delta_e``.

    The Jackson-broadened delta has width ~ pi/M in x in [-1, 1];
    converting with dx = a dE gives M ~ pi / (a * delta_e), rounded up
    to the next even integer (the recurrence produces moment pairs).
    """
    check_positive("delta_e", delta_e)
    m = int(np.ceil(np.pi / (scale.a * delta_e)))
    return m + (m % 2)


def resolution_for_moments(scale: SpectralScale, n_moments: int) -> float:
    """Inverse of :func:`moments_for_resolution`: energy width at M."""
    check_positive("n_moments", n_moments)
    return np.pi / (scale.a * n_moments)


@dataclass
class AdaptiveTraceResult:
    """Outcome of the adaptive trace estimation."""

    moments: np.ndarray  # (M,) averaged trace moments
    stderr: np.ndarray  # (M,) standard error of the mean
    n_vectors: int
    converged: bool
    batches: int

    def relative_error(self) -> float:
        """Max standard error relative to mu_0 (= N) over all moments."""
        return float(np.max(self.stderr) / abs(self.moments[0]))


def adaptive_trace_moments(
    H: CSRMatrix | SellMatrix,
    scale: SpectralScale,
    n_moments: int,
    *,
    rel_tol: float = 1e-3,
    batch: int = 16,
    max_vectors: int = 512,
    kind: str = "phase",
    seed: int | None = None,
    engine: str = "aug_spmmv",
    counters: PerfCounters = NULL_COUNTERS,
) -> AdaptiveTraceResult:
    """Grow R in blocked batches until the trace moments converge.

    Each batch runs the stage-2 blocked kernel at width ``batch`` (so
    the amortization of the matrix stream is preserved — running the
    adaptive loop one vector at a time would be the paper's
    "throughput mode" anti-pattern). Convergence: the standard error of
    every moment drops below ``rel_tol * |mu_0|``.
    """
    check_positive("batch", batch)
    check_positive("max_vectors", max_vectors)
    if rel_tol <= 0:
        raise ValueError(f"rel_tol must be positive, got {rel_tol}")
    rng = make_rng(seed)
    all_mu: list[np.ndarray] = []
    n_done = 0
    batches = 0
    while n_done < max_vectors:
        width = min(batch, max_vectors - n_done)
        block = make_block_vector(H.n_rows, width, kind, rng)
        eta = compute_eta(H, scale, n_moments, block, engine, counters)
        all_mu.append(eta_to_moments(eta).real)
        n_done += width
        batches += 1
        mu = np.concatenate(all_mu, axis=0)
        mean = mu.mean(axis=0)
        if n_done >= 2:
            stderr = mu.std(axis=0, ddof=1) / np.sqrt(n_done)
            if np.max(stderr) <= rel_tol * abs(mean[0]):
                return AdaptiveTraceResult(
                    mean, stderr, n_done, True, batches
                )
    mu = np.concatenate(all_mu, axis=0)
    mean = mu.mean(axis=0)
    stderr = (
        mu.std(axis=0, ddof=1) / np.sqrt(n_done)
        if n_done >= 2
        else np.zeros_like(mean)
    )
    return AdaptiveTraceResult(mean, stderr, n_done, False, batches)
