"""Reconstruction of spectral quantities from Chebyshev moments.

Given kernel-damped moments ``g_m mu_m``, the expansion of the spectral
density in the Chebyshev variable x in [-1, 1] is

    f(x) = (1 / (pi sqrt(1 - x^2))) * [ g_0 mu_0 + 2 sum_{m>=1} g_m mu_m T_m(x) ].

This module evaluates that series (directly, or via a DCT-III on Chebyshev
nodes) and converts back to physical energies through the spectral map,
``rho(E) = a * f(a (E - b))``. It is the "second computationally
inexpensive step, independent of the KPM iteration" of paper Section II.
"""

from __future__ import annotations

import numpy as np
from scipy.fft import dct

from repro.core.damping import get_kernel
from repro.core.scaling import SpectralScale
from repro.util.errors import ShapeError
from repro.util.validation import check_positive


def chebyshev_grid(n_points: int) -> np.ndarray:
    """Chebyshev nodes x_k = cos(pi (k + 1/2) / K), ascending.

    These are the natural evaluation abscissae for the DCT-based fast
    reconstruction; they also cluster near the interval edges where the
    1/sqrt(1-x^2) weight varies fastest.
    """
    check_positive("n_points", n_points)
    k = np.arange(n_points)
    return np.cos(np.pi * (n_points - 0.5 - k) / n_points)


def reconstruct_chebyshev(
    moments: np.ndarray,
    x: np.ndarray,
    kernel: str = "jackson",
) -> np.ndarray:
    """Evaluate the damped Chebyshev series at arbitrary x in (-1, 1).

    Parameters
    ----------
    moments:
        (M,) or (..., M) moment array; reconstruction maps the last axis.
    x:
        Evaluation points strictly inside (-1, 1).
    kernel:
        Damping kernel name ('jackson', 'lorentz', 'dirichlet').

    Returns
    -------
    Density in the Chebyshev variable, shape ``moments.shape[:-1] + x.shape``.
    """
    moments = np.asarray(moments)
    x = np.asarray(x, dtype=float)
    if np.any((x <= -1.0) | (x >= 1.0)):
        raise ValueError("evaluation points must lie strictly inside (-1, 1)")
    m_count = moments.shape[-1]
    g = get_kernel(kernel, m_count)
    damped = moments * g
    theta = np.arccos(x)
    # T_m(x) = cos(m * arccos x): build (M, P) table once
    m_arr = np.arange(m_count)
    t_table = np.cos(np.outer(m_arr, theta))
    series = 2.0 * np.tensordot(damped, t_table, axes=([-1], [0]))
    series -= damped[..., 0][..., None] * t_table[0]  # m=0 term has weight 1
    return series / (np.pi * np.sqrt(1.0 - x**2))


def reconstruct_chebyshev_dct(
    moments: np.ndarray,
    n_points: int,
    kernel: str = "jackson",
) -> tuple[np.ndarray, np.ndarray]:
    """Fast reconstruction on the Chebyshev grid via DCT-III.

    Evaluating ``sum_m c_m cos(m theta_k)`` on ``theta_k = pi(k+1/2)/K``
    is exactly a type-III discrete cosine transform, turning the O(M*P)
    direct sum into O(P log P). Returns ``(x_grid, density)`` with the
    grid ascending; the moment array may be batched on leading axes.
    """
    moments = np.asarray(moments)
    m_count = moments.shape[-1]
    if n_points < m_count:
        raise ValueError(
            f"n_points ({n_points}) must be >= number of moments ({m_count}) "
            "to resolve the highest Chebyshev harmonic"
        )
    g = get_kernel(kernel, m_count)
    damped = moments * g
    coeff = np.zeros(moments.shape[:-1] + (n_points,))
    coeff[..., :m_count] = damped.real
    # scipy dct type 3 computes y_k = x_0 + 2 sum_{m>=1} x_m cos(m theta_k)
    # with theta_k = pi (k + 1/2) / K — exactly g_0 mu_0 + 2 sum g_m mu_m T_m.
    series = dct(coeff, type=3, axis=-1)
    x_desc = np.cos(np.pi * (np.arange(n_points) + 0.5) / n_points)
    density_desc = series / (np.pi * np.sqrt(1.0 - x_desc**2))
    return x_desc[::-1].copy(), density_desc[..., ::-1].copy()


def reconstruct_dos(
    moments: np.ndarray,
    scale: SpectralScale,
    energies: np.ndarray | None = None,
    n_points: int = 1024,
    kernel: str = "jackson",
    *,
    use_dct: bool | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Reconstruct rho(E) on physical energies.

    Parameters
    ----------
    moments:
        (M,) trace moments (mu_0 = N reproduces a DOS integrating to N;
        divide by N beforehand for a normalized density).
    scale:
        The spectral map used during moment computation.
    energies:
        Explicit evaluation energies; if ``None``, the Chebyshev grid
        mapped into the spectral window is used (and the DCT fast path
        becomes available).
    n_points:
        Grid size when ``energies`` is None.
    use_dct:
        Force (True) or forbid (False) the DCT path; default: automatic
        (DCT whenever evaluating on the implicit Chebyshev grid).

    Returns
    -------
    (energies, rho):
        ``rho`` has the same leading batch axes as ``moments``.
    """
    moments = np.asarray(moments)
    if moments.ndim < 1:
        raise ShapeError("moments must have at least one axis")
    if energies is None:
        if use_dct is None or use_dct:
            x, density = reconstruct_chebyshev_dct(moments, n_points, kernel)
        else:
            x = chebyshev_grid(n_points)
            density = reconstruct_chebyshev(moments, x, kernel)
        return scale.from_unit(x), density * scale.density_jacobian()
    if use_dct:
        raise ValueError("use_dct=True requires energies=None (Chebyshev grid)")
    energies = np.asarray(energies, dtype=float)
    x = scale.to_unit(energies)
    inside = (x > -1.0) & (x < 1.0)
    density = np.zeros(moments.shape[:-1] + energies.shape)
    if np.any(inside):
        density[..., inside] = reconstruct_chebyshev(moments, x[inside], kernel)
    return energies, density * scale.density_jacobian()


def integrate_density(
    energies: np.ndarray, rho: np.ndarray, e_lo: float | None = None, e_hi: float | None = None
) -> float:
    """Trapezoidal integral of a reconstructed density over [e_lo, e_hi].

    With trace moments (mu_0 = N) the full integral approximates N; over a
    sub-interval it estimates the eigenvalue count — the paper's
    "eigenvalue counting for predetermination of sub-space sizes" use case
    (Refs. [8], [22]).
    """
    energies = np.asarray(energies, dtype=float)
    rho = np.asarray(rho, dtype=float)
    if energies.shape != rho.shape[-len(energies.shape):]:
        raise ShapeError("energies and rho grids are inconsistent")
    lo = energies[0] if e_lo is None else e_lo
    hi = energies[-1] if e_hi is None else e_hi
    if hi < lo:
        raise ValueError(f"empty integration interval [{lo}, {hi}]")
    mask = (energies >= lo) & (energies <= hi)
    if mask.sum() < 2:
        return 0.0
    return float(np.trapezoid(rho[..., mask], energies[mask], axis=-1))
