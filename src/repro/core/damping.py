"""Kernel damping factors g_m for the truncated Chebyshev series.

Truncating the Chebyshev expansion of a delta function at M moments
produces Gibbs oscillations; KPM multiplies the moments by kernel
coefficients ``g_m`` chosen to suppress them (Weisse et al., Rev. Mod.
Phys. 78, 275 (2006), the paper's Ref. [7]).

* **Jackson** — the standard choice for densities of states: strictly
  positive reconstruction, energy resolution ~ pi/M.
* **Lorentz** — preserves causality (used for Green functions); parameter
  lambda trades resolution against damping.
* **Dirichlet** — no damping (g_m = 1), provided as the baseline.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive


def dirichlet_kernel(n_moments: int) -> np.ndarray:
    """Trivial kernel g_m = 1 (raw truncated series, Gibbs-afflicted)."""
    check_positive("n_moments", n_moments)
    return np.ones(n_moments)


def jackson_kernel(n_moments: int) -> np.ndarray:
    """Jackson kernel coefficients.

    g_m = [ (M - m + 1) cos(pi m / (M+1))
            + sin(pi m / (M+1)) cot(pi / (M+1)) ] / (M + 1)

    Guarantees a non-negative DOS reconstruction and approximates each
    delta peak by a near-Gaussian of width ~ pi/M.
    """
    check_positive("n_moments", n_moments)
    m_arr = np.arange(n_moments, dtype=float)
    big_m = float(n_moments)
    phase = np.pi / (big_m + 1.0)
    return (
        (big_m - m_arr + 1.0) * np.cos(phase * m_arr)
        + np.sin(phase * m_arr) / np.tan(phase)
    ) / (big_m + 1.0)


def lorentz_kernel(n_moments: int, lam: float = 4.0) -> np.ndarray:
    """Lorentz kernel g_m = sinh(lambda (1 - m/M)) / sinh(lambda)."""
    check_positive("n_moments", n_moments)
    check_positive("lam", lam)
    m_arr = np.arange(n_moments, dtype=float)
    return np.sinh(lam * (1.0 - m_arr / n_moments)) / np.sinh(lam)


_KERNELS = {
    "jackson": jackson_kernel,
    "lorentz": lorentz_kernel,
    "dirichlet": dirichlet_kernel,
    "none": dirichlet_kernel,
}


def get_kernel(name: str, n_moments: int, **kwargs) -> np.ndarray:
    """Look up a damping kernel by name ('jackson', 'lorentz', 'dirichlet')."""
    try:
        fn = _KERNELS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown kernel {name!r}; choose from {sorted(set(_KERNELS))}"
        ) from None
    return fn(n_moments, **kwargs)
