"""The paper's primary contribution: the KPM-DOS solver pipeline.

Layers (bottom-up):

* :mod:`repro.core.scaling` — spectral interval estimation (Gershgorin /
  Lanczos) and the linear map H~ = a (H - b 1) into [-1, 1].
* :mod:`repro.core.moments` — the three moment engines corresponding to
  the paper's optimization stages (Figs. 3, 4, 5).
* :mod:`repro.core.damping` — Jackson / Lorentz / Dirichlet kernel
  coefficients g_m.
* :mod:`repro.core.reconstruct` — Chebyshev series -> rho(E), local DOS,
  spectral function A(k, E).
* :mod:`repro.core.stochastic` — random block vectors and trace
  estimation statistics.
* :mod:`repro.core.solver` — the user-facing :class:`KPMSolver`.
"""

from repro.core.scaling import SpectralScale, gershgorin_scale, lanczos_bounds, lanczos_scale
from repro.core.damping import jackson_kernel, lorentz_kernel, dirichlet_kernel, get_kernel
from repro.core.moments import (
    MomentEngine,
    compute_eta,
    eta_to_moments,
    compute_dos_moments,
)
from repro.core.stochastic import make_block_vector, trace_from_moments
from repro.core.reconstruct import (
    reconstruct_chebyshev,
    reconstruct_dos,
    chebyshev_grid,
)
from repro.core.solver import KPMSolver, DOSResult, LDOSResult, SpectralFunctionResult
from repro.core.adaptive import (
    adaptive_trace_moments,
    moments_for_resolution,
    resolution_for_moments,
)
from repro.core.greens import greens_function, greens_function_energy, dos_from_greens
from repro.core.evolution import evolve, autocorrelation, chebyshev_expansion_order
from repro.core.filters import apply_filter, filtered_subspace, window_coefficients
from repro.core.checkpoint import KpmCheckpoint, checkpointed_eta

__all__ = [
    "SpectralScale",
    "gershgorin_scale",
    "lanczos_bounds",
    "lanczos_scale",
    "jackson_kernel",
    "lorentz_kernel",
    "dirichlet_kernel",
    "get_kernel",
    "MomentEngine",
    "compute_eta",
    "eta_to_moments",
    "compute_dos_moments",
    "make_block_vector",
    "trace_from_moments",
    "reconstruct_chebyshev",
    "reconstruct_dos",
    "chebyshev_grid",
    "KPMSolver",
    "DOSResult",
    "LDOSResult",
    "SpectralFunctionResult",
    "adaptive_trace_moments",
    "moments_for_resolution",
    "resolution_for_moments",
    "greens_function",
    "greens_function_energy",
    "dos_from_greens",
    "evolve",
    "autocorrelation",
    "chebyshev_expansion_order",
    "apply_filter",
    "filtered_subspace",
    "window_coefficients",
    "KpmCheckpoint",
    "checkpointed_eta",
]
