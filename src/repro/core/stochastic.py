"""Stochastic estimators: random block vectors, trace statistics, LDOS.

KPM approximates traces by averaging over R random vectors,
``tr[A] ~= (1/R) sum_r <v_r|A|v_r>`` (paper Section II). This module
provides the vector ensembles, error estimates for the trace, and the
stochastic *diagonal* estimator used for site-resolved LDOS maps
(paper Fig. 2, left panel).
"""

from __future__ import annotations

import numpy as np

from repro.core.scaling import SpectralScale
from repro.sparse.backend import KernelBackend, get_backend
from repro.sparse.csr import CSRMatrix
from repro.sparse.fused import _recombine
from repro.sparse.sell import SellMatrix
from repro.util.constants import DTYPE
from repro.util.counters import NULL_COUNTERS, PerfCounters
from repro.util.errors import ShapeError
from repro.util.precision import Precision, get_precision
from repro.util.rng import (
    gaussian_vector,
    make_rng,
    rademacher_vector,
    random_phase_vector,
)
from repro.util.validation import check_positive

_ENSEMBLES = {
    "phase": random_phase_vector,
    "rademacher": rademacher_vector,
    "gaussian": gaussian_vector,
}


def make_block_vector(
    n: int,
    r: int,
    kind: str = "phase",
    seed: int | None | np.random.Generator = None,
) -> np.ndarray:
    """Draw an (n, R) C-contiguous block of random start vectors.

    ``kind`` selects the ensemble: ``'phase'`` (random complex phases —
    the KPM standard, E[v v^H] = Identity with minimal variance),
    ``'rademacher'`` (+/-1), or ``'gaussian'``.
    """
    check_positive("n", n)
    check_positive("r", r)
    try:
        draw = _ENSEMBLES[kind]
    except KeyError:
        raise ValueError(
            f"unknown ensemble {kind!r}; choose from {sorted(_ENSEMBLES)}"
        ) from None
    rng = make_rng(seed)
    block = np.empty((n, r), dtype=DTYPE)
    for i in range(r):
        block[:, i] = draw(rng, n)
    return block


def unit_block_vector(n: int, sites: np.ndarray) -> np.ndarray:
    """Block of Cartesian unit vectors e_i for the given row indices.

    Used for *exact* (non-stochastic) LDOS on small systems and in tests
    as the reference for the stochastic diagonal estimator.
    """
    sites = np.asarray(sites, dtype=np.int64)
    if sites.ndim != 1:
        raise ShapeError(f"sites must be 1-D, got shape {sites.shape}")
    if sites.size and (sites.min() < 0 or sites.max() >= n):
        raise ValueError("site index out of range")
    block = np.zeros((n, sites.size), dtype=DTYPE)
    block[sites, np.arange(sites.size)] = 1.0
    return block


def trace_from_moments(mu_per_vector: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Mean and standard error of the stochastic trace over R vectors.

    Parameters
    ----------
    mu_per_vector:
        (R, M) per-vector moment estimates.

    Returns
    -------
    (mean, stderr):
        Both (M,); ``stderr`` is the standard error of the mean
        (zero when R == 1, where no error estimate is possible).
    """
    mu = np.asarray(mu_per_vector)
    if mu.ndim != 2:
        raise ShapeError(f"expected (R, M) moments, got shape {mu.shape}")
    r = mu.shape[0]
    mean = mu.mean(axis=0)
    if r < 2:
        return mean, np.zeros_like(mean, dtype=float)
    stderr = mu.std(axis=0, ddof=1) / np.sqrt(r)
    return mean, stderr


def ldos_moments(
    H: CSRMatrix | SellMatrix,
    scale: SpectralScale,
    n_moments: int,
    start_block: np.ndarray,
    rows: np.ndarray,
    counters: PerfCounters = NULL_COUNTERS,
    backend: KernelBackend | str = "auto",
    precision: Precision | str | None = None,
    simd: str | None = None,
) -> np.ndarray:
    """Stochastic diagonal (LDOS) moments for selected matrix rows.

    Estimates ``mu_m[i] = <i|T_m(H~)|i>`` via the diagonal estimator
    ``E_r[ conj(v_r[i]) * (T_m(H~) v_r)[i] ]``, valid for ensembles with
    independent zero-mean entries (phase/rademacher/gaussian). Unlike the
    trace computation, all M moments need their own |nu_m>, so this runs
    M - 1 (not M/2) blocked matrix applications — the doubling trick only
    exists for the *global* scalar products.

    With ``start_block`` = unit vectors on ``rows`` (R == len(rows)), the
    same loop returns the *exact* LDOS instead (used in tests).

    ``precision`` narrows the block-vector storage to complex64
    (``'fp32'``) or float16 pair storage (``'fp16v'``, via a per-step
    decode pass: the SpMMV streams the half layout, the recurrence
    recombination runs in fp32 and is rounded back to storage); the
    per-site products are accumulated in fp64 in every profile.

    ``simd`` selects the native backend's vectorized SpMMV kernels
    (``None``/``'auto'``/``'on'``/``'off'``) — a pure performance knob.

    Returns real (len(rows), M).
    """
    if n_moments < 2:
        raise ValueError(f"n_moments must be >= 2, got {n_moments}")
    prec = get_precision(precision)
    rows = np.asarray(rows, dtype=np.int64)
    r = start_block.shape[1]
    a, b = scale.a, scale.b
    bk = get_backend(backend)
    plan = bk.plan(H, r, precision=prec, simd=simd)

    exact = _is_unit_block(start_block, rows)
    out = np.zeros((rows.size, n_moments))

    if prec.half_vectors:
        return _ldos_moments_half(
            H, n_moments, start_block, rows, a, b, bk, plan, prec,
            counters, exact, out,
        )

    v_prev = start_block.astype(prec.vector_dtype, copy=True)  # nu_0
    v_cur = bk.spmmv(H, v_prev, counters=counters)  # nu_1
    np.multiply(v_prev, b, out=plan.work_block)
    v_cur -= plan.work_block
    v_cur *= a

    g0 = v_prev[rows, :]
    conj0 = np.conj(g0 if g0.dtype == DTYPE else g0.astype(DTYPE))

    def accumulate(m: int, v_m: np.ndarray) -> None:
        # gather-then-widen: the dot accumulation is fp64 per profile
        gm = v_m[rows, :]
        prod = conj0 * (gm if gm.dtype == DTYPE else gm.astype(DTYPE))
        if exact:
            out[:, m] = prod[np.arange(rows.size), np.arange(rows.size)].real
        else:
            out[:, m] = prod.mean(axis=1).real

    accumulate(0, v_prev)
    accumulate(1, v_cur)
    for m in range(2, n_moments):
        # nu_{m} = 2 a (H - b) nu_{m-1} - nu_{m-2}, in v_prev's storage
        bk.spmmv(H, v_cur, out=plan.u_block, counters=counters)
        _recombine(v_prev, plan.u_block, v_cur, a, b)
        v_prev, v_cur = v_cur, v_prev
        accumulate(m, v_cur)
    return out


def _ldos_moments_half(
    H, n_moments, start_block, rows, a, b, bk, plan, prec, counters,
    exact, out,
) -> np.ndarray:
    """fp16v body of :func:`ldos_moments` — the decode-pass recurrence.

    nu_{m-1}/nu_m live in float16 (re, im) pair storage and the SpMMV
    streams that layout directly; each recombination decodes the three
    live blocks into the plan's complex64 scratch, runs the fp32
    arithmetic there, and rounds the new block back into half storage —
    the same per-step contract as the fused half kernels.
    """
    n = H.n_rows
    r = plan.r
    if start_block.dtype == np.float16:
        v_prev = np.ascontiguousarray(start_block)
    else:
        v_prev = prec.encode(start_block)
    v_cur = bk.spmmv(H, v_prev, counters=counters)  # nu_1, half storage
    vc, wc = plan.vc[:n], plan.wc
    prec.decode(v_prev, out=vc)
    prec.decode(v_cur, out=wc)
    np.multiply(vc, b, out=plan.work_block)
    wc -= plan.work_block
    wc *= a
    prec.encode(wc, out=v_cur)

    conj0 = np.conj(vc[rows, :].astype(DTYPE))
    gbuf = np.empty((rows.size, r), dtype=prec.compute_dtype)

    def accumulate(m: int, v_m: np.ndarray) -> None:
        # decode the gathered rows only; fp64 product accumulation
        prec.decode(v_m[rows, :], out=gbuf)
        prod = conj0 * gbuf.astype(DTYPE)
        if exact:
            out[:, m] = prod[np.arange(rows.size), np.arange(rows.size)].real
        else:
            out[:, m] = prod.mean(axis=1).real

    accumulate(0, v_prev)
    accumulate(1, v_cur)
    for m in range(2, n_moments):
        # nu_m = 2 a (H - b) nu_{m-1} - nu_{m-2}: half SpMMV into the
        # plan's half scratch, fp32 recombination, round back into
        # v_prev's storage (which then becomes nu_m)
        bk.spmmv(H, v_cur, out=plan.uh_block, counters=counters)
        prec.decode(plan.uh_block, out=plan.u_block)
        prec.decode(v_cur, out=vc)
        prec.decode(v_prev, out=wc)
        _recombine(wc, plan.u_block, vc, a, b)
        prec.encode(wc, out=v_prev)
        v_prev, v_cur = v_cur, v_prev
        accumulate(m, v_cur)
    return out


def _is_unit_block(block: np.ndarray, rows: np.ndarray) -> bool:
    """Detect the exact-LDOS case: block == unit vectors on ``rows``."""
    if block.shape[1] != rows.size:
        return False
    if not np.allclose(block[rows, np.arange(rows.size)], 1.0):
        return False
    return np.count_nonzero(block) == rows.size
