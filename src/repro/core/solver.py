"""High-level KPM solver facade.

:class:`KPMSolver` wires the full pipeline together — spectral scaling,
stochastic start vectors, a moment engine (any of the paper's three
optimization stages), kernel damping, and reconstruction — behind the
three physics-facing queries of the paper's application section:

* :meth:`KPMSolver.dos` — density of states (paper Fig. 1),
* :meth:`KPMSolver.ldos` — site-resolved local DOS (paper Fig. 2, left),
* :meth:`KPMSolver.spectral_function` — momentum-resolved A(k, E)
  (paper Fig. 2, right),

plus :meth:`KPMSolver.eigencount` for the eigenvalue-counting use case of
the paper's Refs. [8], [22].
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.core.moments import MomentEngine, compute_eta, eta_to_moments
from repro.core.reconstruct import integrate_density, reconstruct_dos
from repro.core.scaling import SpectralScale, gershgorin_scale, lanczos_scale
from repro.core.stochastic import ldos_moments, make_block_vector, unit_block_vector
from repro.obs import NULL_METRICS, MetricsRegistry
from repro.physics.hamiltonian import plane_wave_vector
from repro.physics.lattice import Lattice3D
from repro.sparse.backend import KernelBackend
from repro.sparse.csr import CSRMatrix
from repro.sparse.sell import SellMatrix
from repro.util.counters import NULL_COUNTERS, PerfCounters
from repro.util.precision import Precision, get_precision
from repro.util.validation import check_positive


@dataclass
class DOSResult:
    """Reconstructed density of states.

    ``rho`` integrates to (approximately) the matrix dimension N —
    it counts eigenvalues per unit energy, like paper Eq. (2).
    """

    energies: np.ndarray
    rho: np.ndarray
    moments: np.ndarray
    scale: SpectralScale
    n_vectors: int
    kernel: str

    def normalized(self) -> "DOSResult":
        """Return a copy whose density integrates to 1."""
        n = self.moments[0]
        return DOSResult(
            self.energies, self.rho / n, self.moments / n,
            self.scale, self.n_vectors, self.kernel,
        )


@dataclass
class LDOSResult:
    """Site-resolved local density of states rho_i(E)."""

    energies: np.ndarray
    rho: np.ndarray  # (n_sites_queried, n_energies)
    rows: np.ndarray
    scale: SpectralScale
    kernel: str

    def at_energy(self, energy: float) -> np.ndarray:
        """LDOS of every queried row at the grid point nearest ``energy``."""
        idx = int(np.argmin(np.abs(self.energies - energy)))
        return self.rho[:, idx]


def dos_result_from_moments(
    mu: np.ndarray,
    scale: SpectralScale,
    *,
    kernel: str = "jackson",
    n_vectors: int = 1,
    energies: np.ndarray | None = None,
    n_points: int | None = None,
) -> DOSResult:
    """Reconstruct a :class:`DOSResult` from precomputed trace moments.

    Moments are kernel-free: damping happens here, at reconstruction.
    This is the path the serving layer takes on a moment-cache hit — a
    repeat query with a different kernel re-damps the stored ``mu``
    instead of re-running M/2 operator applications — and it produces
    exactly what :meth:`KPMSolver.dos` would for the same moments.
    """
    mu = np.asarray(mu)
    n_moments = mu.shape[-1]
    pts = n_points if n_points is not None else max(2 * n_moments, 256)
    e_grid, rho = reconstruct_dos(
        mu, scale, energies=energies, n_points=pts, kernel=kernel
    )
    return DOSResult(e_grid, rho, mu, scale, n_vectors, kernel)


@dataclass
class SpectralFunctionResult:
    """Momentum-resolved spectral function A(k, E)."""

    energies: np.ndarray
    a_ke: np.ndarray  # (n_k, n_energies)
    k_points: list = field(default_factory=list)

    def band_maximum(self) -> np.ndarray:
        """E position of the strongest spectral weight for each k."""
        return self.energies[np.argmax(self.a_ke, axis=1)]


class KPMSolver:
    """Kernel Polynomial Method solver for a sparse Hermitian operator.

    Parameters
    ----------
    H:
        Operator in CSR or SELL-C-sigma storage.
    n_moments:
        Chebyshev moments M (even). Energy resolution ~ spectral width / M.
    n_vectors:
        Stochastic vectors R (the paper's block width).
    scale:
        Explicit spectral map; default: estimated via ``bounds``.
    bounds:
        ``'lanczos'`` (tight, default) or ``'gershgorin'`` (rigorous).
    engine:
        Moment engine — ``'naive'``, ``'aug_spmv'`` or ``'aug_spmmv'``
        (paper optimization stages 0/1/2). Identical results, different
        kernel structure and speed.
    kernel:
        Damping kernel for reconstruction ('jackson' by default).
    seed:
        RNG seed for the stochastic vectors.
    counters:
        Optional traffic/flop accounting sink.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry` recording per-kernel
        wall-time spans (with the counters' traffic attributed span by
        span) and, when built with a :class:`~repro.obs.Trace`, a JSONL
        trace of every span.  Free with the null default.
    backend:
        Kernel backend executing the inner iterations — ``'auto'``
        (native C kernels when compilable, else numpy), ``'numpy'``,
        ``'native'``, or a :class:`~repro.sparse.backend.KernelBackend`.
    dist_engine:
        ``None`` (serial, default), ``'sim'`` (sequential SPMD
        simulator) or ``'mp'`` (real worker processes over shared
        memory).  Both run the paper's data-parallel scheme: weighted
        row partition, halo exchange, one deferred global reduction —
        and produce the serial moments to reduction-order tolerance.
    workers:
        Rank count for the distributed engines (ignored when
        ``dist_engine`` is None).
    weights:
        Optional per-rank partition weights (heterogeneous nodes,
        paper Section VI-B); equal split by default.
    overlap:
        Communication/computation overlap for the distributed engines
        (task-mode pipelining): ``'on'``/``True``, ``'off'``/``False``,
        or ``'auto'`` (the default — on whenever more than one rank
        runs).  Ignored in serial solves.  Overlapped and synchronous
        schedules agree to reduction-order tolerance; the two engines
        agree *bitwise* with each other per schedule.
    resilience:
        Optional :class:`~repro.resil.Resilience` configuration.  When
        set, every moment computation runs under a
        :class:`~repro.resil.Supervisor`: failed attempts are retried
        under its policy, resumed from the latest checkpoint, and
        degraded ``mp → sim → serial`` (and ``native → numpy``) instead
        of failing the solve.  The last run's
        :class:`~repro.resil.ResilienceReport` is exposed as
        ``solver.resilience_report``.
    precision:
        Storage profile (:mod:`repro.util.precision`): ``'fp64'``
        (default — bitwise the historical path), ``'fp32'`` (complex64
        values and vectors, fp64 dot accumulation, compressed column
        indices), or ``'fp16v'`` (float16 pair vectors, fp32 compute).
        Threaded through every engine — serial, distributed, supervised
        — and recorded in checkpoints.  LDOS and the naive engine run
        ``fp16v`` through the backends' decode pass (half-storage
        SpM(M)V, fp32 BLAS-1).
    threads:
        Intra-rank kernel thread count for the native backend: ``None``
        (default) keeps the sequential kernels, an int routes the
        augmented steps through the block-grid threaded variants, and
        ``'auto'`` budgets the host's cores (whole machine serially,
        ``cores // workers`` per rank distributed).  fp64 moments are
        bitwise identical at every setting.
    simd:
        Native backend vectorized-kernel selector: ``None``/``'auto'``
        (use the AVX2/FMA kernels when the compiled library has them),
        ``'on'`` (request them; falls back to scalar with a metrics
        counter when unavailable), or ``'off'`` (scalar kernels).  fp64
        moments are bitwise identical either way — a pure performance
        knob, threaded through every engine like ``threads``.
    rebalance:
        Elastic execution (:mod:`repro.dist.elastic`): ``'off'``/None
        (default), ``'auto'``/True (default policy), a skew threshold,
        or a :class:`~repro.dist.elastic.RebalancePolicy`.  With
        ``dist_engine='mp'`` the moments run segmented under the elastic
        driver — live skew rebalancing, worker-death recovery onto the
        survivors — and with ``dist_engine='sim'`` (or a degraded rung)
        the same grid-eta reduction runs on a fixed world, so fp64
        moments are bitwise identical across all of it.  The last run's
        :class:`~repro.dist.elastic.ElasticReport` is exposed as
        ``solver.elastic_report``.
    membership:
        Planned membership events for elastic runs
        (:class:`~repro.dist.elastic.MembershipPlan` or its string form,
        e.g. ``'join:m=8;leave:m=16,rank=0'``).
    """

    def __init__(
        self,
        H: CSRMatrix | SellMatrix,
        n_moments: int = 512,
        n_vectors: int = 8,
        *,
        scale: SpectralScale | None = None,
        bounds: str = "lanczos",
        engine: MomentEngine | str = MomentEngine.AUG_SPMMV,
        kernel: str = "jackson",
        vector_kind: str = "phase",
        seed: int | None = None,
        counters: PerfCounters = NULL_COUNTERS,
        metrics: MetricsRegistry = NULL_METRICS,
        backend: KernelBackend | str = "auto",
        dist_engine: str | None = None,
        workers: int = 2,
        weights: list[float] | None = None,
        overlap: bool | str | None = "auto",
        resilience=None,
        precision: Precision | str | None = None,
        threads: int | str | None = None,
        simd: str | None = None,
        rebalance=None,
        membership=None,
    ) -> None:
        check_positive("n_moments", n_moments)
        check_positive("n_vectors", n_vectors)
        self.precision = get_precision(precision)
        self.H = H
        self.n_moments = int(n_moments)
        self.n_vectors = int(n_vectors)
        self.engine = MomentEngine(engine)
        self.kernel = kernel
        self.backend = backend
        self.vector_kind = vector_kind
        self.seed = seed
        self.counters = counters
        self.metrics = metrics
        if dist_engine not in (None, "sim", "mp"):
            raise ValueError(
                f"dist_engine must be None, 'sim' or 'mp', got {dist_engine!r}"
            )
        if dist_engine is not None:
            check_positive("workers", workers)
            if not isinstance(H, CSRMatrix):
                raise ValueError(
                    "distributed engines partition CSR operators; convert "
                    "SELL-C-sigma back with to_csr() first"
                )
        self.dist_engine = dist_engine
        self.workers = int(workers)
        self.weights = list(weights) if weights is not None else None
        # validate eagerly: a typo'd overlap= fails at construction, not
        # deep inside a worker process
        from repro.dist.overlap import resolve_overlap

        resolve_overlap(overlap, self.workers)
        self.overlap = overlap
        if threads is not None and threads != "auto":
            check_positive("threads", int(threads))
            threads = int(threads)
        self.threads = threads
        # validate eagerly, like overlap/rebalance: a typo'd simd= fails
        # at construction, not deep inside an engine or worker process
        from repro.sparse.backend import resolve_simd

        self.simd = None if simd is None else resolve_simd(simd)
        self.resilience = resilience
        # validate eagerly, like overlap: a typo'd rebalance= fails here
        from repro.dist.elastic import resolve_rebalance

        self.rebalance = resolve_rebalance(rebalance)
        self.membership = membership
        if self.rebalance is not None and dist_engine is None \
                and resilience is None:
            raise ValueError(
                "rebalance requires a distributed engine "
                "(dist_engine='mp'/'sim') or a resilience config"
            )
        #: the ElasticReport of the most recent elastic solve; None
        #: until one runs (or when rebalance is off).
        self.elastic_report = None
        #: the communicator of the most recent distributed solve
        #: (message log, per-rank accounting); None until one runs.
        self.world = None
        #: the ResilienceReport of the most recent supervised solve;
        #: None until one runs (or when resilience is not configured).
        self.resilience_report = None
        if scale is not None:
            self.scale = scale
        elif bounds == "gershgorin":
            if not isinstance(H, CSRMatrix):
                raise ValueError("gershgorin bounds require a CSRMatrix")
            self.scale = gershgorin_scale(H)
        elif bounds == "lanczos":
            self.scale = lanczos_scale(H, seed=seed)
        else:
            raise ValueError(
                f"bounds must be 'lanczos' or 'gershgorin', got {bounds!r}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_spec(
        cls,
        spec,
        n_moments: int = 512,
        n_vectors: int = 8,
        *,
        scale_seed: int | None = 0,
        **kwargs,
    ) -> "KPMSolver":
        """Build a solver from a canonical operator spec.

        ``spec`` is a :class:`~repro.serve.spec.HamiltonianSpec` (or its
        ``to_dict()`` form).  The spectral map is pinned with
        ``scale_seed`` — the same convention the serving layer uses to
        make a request's moments a pure function of its content key —
        so a solo ``from_spec`` solve is the bitwise reference for a
        coalesced server solve of the same spec.  The built model stays
        available as ``solver.model`` (site geometry for LDOS row
        selection etc.).
        """
        from repro.serve.spec import HamiltonianSpec

        if isinstance(spec, dict):
            spec = HamiltonianSpec.from_dict(spec)
        H, model = spec.build()
        if "scale" not in kwargs:
            kwargs["scale"] = lanczos_scale(H, seed=scale_seed)
        solver = cls(H, n_moments, n_vectors, **kwargs)
        solver.model = model
        return solver

    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return self.H.n_rows

    def _start_block(self) -> np.ndarray:
        return make_block_vector(
            self.dimension, self.n_vectors, self.vector_kind, self.seed
        )

    def _serial_threads(self) -> int | None:
        """Resolve ``'auto'`` for the serial engines: the whole machine."""
        if self.threads == "auto":
            return max(1, os.cpu_count() or 1)
        return self.threads

    def _make_world(self):
        from repro.dist.comm import SimWorld
        from repro.dist.mp import MpWorld

        if self.dist_engine == "mp":
            return MpWorld(self.workers)
        return SimWorld(self.workers)

    def _distributed_eta(self) -> np.ndarray:
        from repro.dist.kpm_parallel import distributed_eta
        from repro.dist.partition import RowPartition

        if self.rebalance is not None and self.dist_engine == "mp":
            from repro.dist.elastic import elastic_eta

            eta, report = elastic_eta(
                self.H, self.scale, self.n_moments, self._start_block(),
                n_workers=self.workers, weights=self.weights,
                policy=self.rebalance, membership=self.membership,
                engine="mp", backend=self.backend, counters=self.counters,
                metrics=self.metrics, overlap=self.overlap,
                precision=self.precision, threads=self.threads,
                simd=self.simd,
            )
            self.elastic_report = report
            self.world = None  # segments each ran their own world
            return eta
        align = 4 if self.rebalance is None else self.rebalance.grid
        if self.weights is not None:
            part = RowPartition.from_weights(
                self.dimension, self.weights, align=align
            )
        else:
            part = RowPartition.equal(self.dimension, self.workers,
                                      align=align)
        self.world = self._make_world()
        return distributed_eta(
            self.H, part, self.scale, self.n_moments, self._start_block(),
            self.world, backend=self.backend, counters=self.counters,
            metrics=self.metrics, overlap=self.overlap,
            precision=self.precision, threads=self.threads, simd=self.simd,
            eta_grid=0 if self.rebalance is None else self.rebalance.grid,
        )

    def _supervised_eta(self) -> np.ndarray:
        from repro.resil import Supervisor

        sup = Supervisor.from_config(
            self.resilience, metrics=self.metrics, counters=self.counters,
            seed=self.seed,
        )
        if self.rebalance is not None:
            # solver-level elastic knobs override the Resilience config
            sup.rebalance = self.rebalance
            sup.membership = self.membership or sup.membership
        eta = sup.run_eta(
            self.H, self.scale, self.n_moments, self._start_block(),
            engine=self.dist_engine or "serial", workers=self.workers,
            weights=self.weights, backend=self.backend,
            overlap=self.overlap, precision=self.precision,
            threads=self.threads, simd=self.simd,
        )
        self.world = sup.last_world
        self.resilience_report = sup.report
        if sup.last_elastic_report is not None:
            self.elastic_report = sup.last_elastic_report
        return eta

    # ------------------------------------------------------------------
    def moments(self) -> np.ndarray:
        """Raw stochastic-trace Chebyshev moments mu_m ~= tr[T_m(H~)].

        With ``dist_engine`` set, the moments come from the distributed
        stage-2 driver (simulated or real processes); otherwise from the
        serial engine selected at construction.  Identical values either
        way, up to floating-point reduction order.  With ``resilience``
        configured the computation runs under the fault-tolerance
        supervisor (retries, checkpoint recovery, engine degradation).
        """
        if self.resilience is not None:
            eta = self._supervised_eta()
        elif self.dist_engine is not None:
            eta = self._distributed_eta()
        else:
            eta = compute_eta(
                self.H, self.scale, self.n_moments, self._start_block(),
                self.engine, self.counters, backend=self.backend,
                metrics=self.metrics, precision=self.precision,
                threads=self._serial_threads(), simd=self.simd,
            )
        return eta_to_moments(eta).mean(axis=0).real

    def dos(
        self,
        energies: np.ndarray | None = None,
        n_points: int | None = None,
    ) -> DOSResult:
        """Density of states (eigenvalues per unit energy).

        With ``energies=None`` the density is evaluated on the Chebyshev
        grid (fast DCT path); pass explicit energies to probe arbitrary
        windows, e.g. the narrow zoom of paper Fig. 1 (right panel).
        """
        mu = self.moments()
        pts = n_points if n_points is not None else max(2 * self.n_moments, 256)
        with self.metrics.span("reconstruct", phase="solver"):
            e_grid, rho = reconstruct_dos(
                mu, self.scale, energies=energies, n_points=pts,
                kernel=self.kernel,
            )
        return DOSResult(e_grid, rho, mu, self.scale, self.n_vectors, self.kernel)

    def ldos(
        self,
        rows: np.ndarray,
        energies: np.ndarray | None = None,
        n_points: int | None = None,
        *,
        exact: bool = False,
    ) -> LDOSResult:
        """Local DOS for the given matrix rows.

        ``exact=True`` uses one unit start vector per row (cost scales
        with ``len(rows)``; fine for small row sets / small systems),
        otherwise the stochastic diagonal estimator with ``n_vectors``
        random vectors covers *all* requested rows at once.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if exact:
            block = unit_block_vector(self.dimension, rows)
        else:
            block = self._start_block()
        mu = ldos_moments(
            self.H, self.scale, self.n_moments, block, rows, self.counters,
            backend=self.backend, precision=self.precision, simd=self.simd,
        )
        pts = n_points if n_points is not None else max(2 * self.n_moments, 256)
        e_grid, rho = reconstruct_dos(
            mu, self.scale, energies=energies, n_points=pts, kernel=self.kernel
        )
        return LDOSResult(e_grid, rho, rows, self.scale, self.kernel)

    def spectral_function(
        self,
        lattice: Lattice3D,
        k_points: list,
        energies: np.ndarray | None = None,
        n_points: int | None = None,
        orbitals: list[int] | None = None,
    ) -> SpectralFunctionResult:
        """Momentum-resolved spectral function A(k, E) (paper Fig. 2, right).

        For each k, sums ``<k,o| delta(E - H) |k,o>`` over the requested
        orbitals using exact plane-wave probe states — one KPM run of
        block width ``len(orbitals)`` per k-point.
        """
        orbitals = list(range(4)) if orbitals is None else list(orbitals)
        pts = n_points if n_points is not None else max(2 * self.n_moments, 256)
        all_rho = []
        e_grid = None
        for k in k_points:
            block = np.ascontiguousarray(
                np.stack(
                    [plane_wave_vector(lattice, k, o) for o in orbitals], axis=1
                )
            )
            eta = compute_eta(
                self.H, self.scale, self.n_moments, block,
                self.engine, self.counters, backend=self.backend,
                precision=self.precision, threads=self._serial_threads(),
                simd=self.simd,
            )
            mu = eta_to_moments(eta).sum(axis=0).real  # sum over orbitals
            e_grid, rho = reconstruct_dos(
                mu, self.scale, energies=energies, n_points=pts,
                kernel=self.kernel,
            )
            all_rho.append(rho)
        return SpectralFunctionResult(e_grid, np.array(all_rho), list(k_points))

    def eigencount(self, e_lo: float, e_hi: float) -> float:
        """Estimated number of eigenvalues in [e_lo, e_hi].

        Integrates the reconstructed DOS — the eigenvalue-counting
        application of the paper's Refs. [8], [22] (sub-space sizing for
        projection eigensolvers).
        """
        result = self.dos()
        return integrate_density(result.energies, result.rho, e_lo, e_hi)
