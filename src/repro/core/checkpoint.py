"""Checkpoint/restart for long KPM moment computations.

The paper's production runs burn hundreds of node-hours (Table III);
any real deployment checkpoints the Chebyshev recurrence. The state is
tiny relative to the computation: the two current block vectors, the eta
scalars accumulated so far, and the loop position — saved as a
compressed ``.npz``. Restarting is bit-exact: the recurrence is
deterministic given (v, w).
"""

from __future__ import annotations

import hashlib
import os
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.scaling import SpectralScale
from repro.obs import NULL_METRICS, MetricsRegistry
from repro.sparse.backend import KernelBackend, get_backend
from repro.sparse.csr import CSRMatrix
from repro.sparse.fused import _col_dots
from repro.sparse.sell import SellMatrix
from repro.util.constants import DTYPE
from repro.util.counters import NULL_COUNTERS, PerfCounters
from repro.util.errors import CheckpointError, FormatError
from repro.util.precision import FP64, Precision, get_precision

_FORMAT_VERSION = 1


def _npz_path(path: str | Path) -> Path:
    """The on-disk path of a checkpoint: always carries the .npz suffix.

    ``np.savez_compressed`` silently appends ``.npz`` to any other
    suffix, so both :meth:`KpmCheckpoint.save` and
    :meth:`KpmCheckpoint.load` must normalize the same way or a
    ``save("state.ckpt")`` / ``load("state.ckpt")`` round trip fails.
    """
    path = Path(path)
    return path if path.suffix == ".npz" else path.with_name(path.name + ".npz")


@dataclass
class KpmCheckpoint:
    """Complete state of an interrupted stage-2 moment computation.

    ``v``/``w`` are stored in the active precision profile's vector
    *storage* dtype (complex128 / complex64 / float16 pairs), so a
    checkpoint ships exactly the bytes the kernels would stream — a
    resume under the same profile is bit-exact, and a narrow-profile
    checkpoint is 2x (fp32) or 4x (fp16v) smaller on disk before
    compression.  ``eta`` is always complex128 (the accumulation is fp64
    in every profile).
    """

    v: np.ndarray  # nu_m block
    w: np.ndarray  # nu_{m+1} block (post-update storage)
    eta: np.ndarray  # (R, M) with entries [0 : 2*next_m) filled
    next_m: int  # next inner-iteration index
    n_moments: int
    a: float
    b: float
    precision: str = "fp64"
    #: eta reduction grid of the run that saved this state: 0 = classic
    #: per-rank partials, B > 0 = fixed global row blocks of B rows
    #: (:mod:`repro.dist.elastic`).  The spliced eta prefix is only
    #: bitwise-composable with a run using the *same* reduction order,
    #: so a cross-grid resume is refused like a cross-precision one.
    eta_grid: int = 0

    def _digest(self) -> str:
        """Integrity digest over the state that resuming actually reads.

        Only the filled eta prefix is hashed — the tail of the array is
        scratch whose bytes legitimately differ between a serial run
        (``np.empty``) and the distributed engines (zero-filled shared
        memory).  The precision and eta-grid tags enter the digest only
        when not the baseline (fp64 / per-rank reduction), so digests of
        older checkpoints keep verifying unchanged.
        """
        h = hashlib.sha256()
        h.update(f"{self.next_m}:{self.n_moments}:{self.a!r}:{self.b!r}:".encode())
        if self.precision != "fp64":
            h.update(f"{self.precision}:".encode())
        if self.eta_grid:
            h.update(f"grid{self.eta_grid}:".encode())
        for arr in (self.v, self.w, self.eta[:, : 2 * self.next_m]):
            h.update(np.ascontiguousarray(arr).tobytes())
        return h.hexdigest()

    def save(self, path: str | Path) -> Path:
        """Atomically write the state; returns the suffix-normalized path.

        The archive is written to a ``*.tmp.npz`` sibling and moved into
        place with ``os.replace``, so a crash mid-write (or a concurrent
        reader) never observes a truncated checkpoint — the previous one
        stays intact until the new one is durable.
        """
        path = _npz_path(path)
        tmp = path.with_name(path.stem + f".tmp.{os.getpid()}.npz")
        try:
            np.savez_compressed(
                tmp,
                version=_FORMAT_VERSION,
                v=self.v, w=self.w, eta=self.eta,
                next_m=self.next_m, n_moments=self.n_moments,
                a=self.a, b=self.b,
                precision=self.precision,
                eta_grid=self.eta_grid,
                digest=self._digest(),
            )
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "KpmCheckpoint":
        """Load a checkpoint, verifying its integrity digest.

        Raises :class:`~repro.util.errors.CheckpointError` on a missing,
        truncated, or corrupt file (never the raw ``zipfile`` /
        ``KeyError`` NumPy produces) and :class:`FormatError` on a valid
        file of an unsupported version.
        """
        orig = Path(path)
        path = orig if orig.exists() else _npz_path(orig)
        if not path.exists():
            raise CheckpointError(f"checkpoint file not found: {orig}")
        try:
            with np.load(path) as data:
                if int(data["version"]) != _FORMAT_VERSION:
                    raise FormatError(
                        f"checkpoint version {int(data['version'])} not supported"
                    )
                ck = cls(
                    v=data["v"], w=data["w"], eta=data["eta"],
                    next_m=int(data["next_m"]),
                    n_moments=int(data["n_moments"]),
                    a=float(data["a"]), b=float(data["b"]),
                    # pre-precision checkpoints carry no tag: fp64
                    precision=(
                        str(data["precision"])
                        if "precision" in data.files else "fp64"
                    ),
                    # pre-elastic checkpoints carry no tag: per-rank
                    eta_grid=(
                        int(data["eta_grid"])
                        if "eta_grid" in data.files else 0
                    ),
                )
                stored = str(data["digest"]) if "digest" in data.files else None
        except FormatError:
            raise
        except (zipfile.BadZipFile, KeyError, OSError, ValueError, EOFError) as exc:
            raise CheckpointError(
                f"checkpoint {path} is truncated or corrupt: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        if stored is not None and stored != ck._digest():
            raise CheckpointError(
                f"checkpoint {path} failed its integrity check "
                "(stored digest does not match the state)"
            )
        return ck


def resolve_resume(
    resume_from: "KpmCheckpoint | str | Path",
    n_moments: int,
    a: float,
    b: float,
    metrics: MetricsRegistry = NULL_METRICS,
    precision: Precision | str | None = None,
    eta_grid: int = 0,
) -> KpmCheckpoint:
    """Load (if needed) and validate a resume checkpoint against the run.

    Shared by the serial, simulated, and multiprocess engines so every
    entry point enforces the same compatibility rules: matching moment
    count, matching spectral map, matching precision profile, and
    matching eta reduction grid — a cross-precision resume would
    silently re-round (or worse, re-expand) the recurrence state, and a
    cross-grid resume would splice an eta prefix reduced in a different
    order, so both are refused outright.
    """
    if isinstance(resume_from, KpmCheckpoint):
        ck = resume_from
    else:
        with metrics.span("checkpoint_load", phase="ckpt"):
            ck = KpmCheckpoint.load(resume_from)
    if ck.n_moments != n_moments:
        raise FormatError(
            f"checkpoint was taken for M={ck.n_moments}, "
            f"requested M={n_moments}"
        )
    if not (np.isclose(ck.a, a) and np.isclose(ck.b, b)):
        raise FormatError("checkpoint spectral map mismatch")
    prec = get_precision(precision)
    if ck.precision != prec.name:
        raise CheckpointError(
            f"checkpoint was taken under precision {ck.precision!r} but "
            f"this run uses {prec.name!r}; resume with "
            f"precision={ck.precision!r} (the recurrence state cannot be "
            "converted across storage profiles without silently changing "
            "the results)"
        )
    if ck.eta_grid != int(eta_grid):
        raise CheckpointError(
            f"checkpoint was taken with eta_grid={ck.eta_grid} but this "
            f"run uses eta_grid={int(eta_grid)}; the spliced eta prefix "
            "is only bitwise-composable under the same reduction order"
        )
    return ck


def checkpointed_eta(
    H: CSRMatrix | SellMatrix,
    scale: SpectralScale,
    n_moments: int,
    start_block: np.ndarray,
    *,
    checkpoint_every: int = 0,
    checkpoint_path: str | Path | None = None,
    resume_from: KpmCheckpoint | str | Path | None = None,
    counters: PerfCounters = NULL_COUNTERS,
    backend: KernelBackend | str = "auto",
    metrics: MetricsRegistry = NULL_METRICS,
    fault=None,
    precision: Precision | str | None = None,
    progress=None,
    progress_every: int = 0,
    threads: int | None = None,
    simd: str | None = None,
) -> np.ndarray:
    """Stage-2 eta computation with optional checkpoint/restart.

    Identical results to :func:`repro.core.moments.compute_eta` with the
    ``aug_spmmv`` engine (asserted by the tests). With
    ``checkpoint_every = k > 0`` the state is saved to
    ``checkpoint_path`` after every k inner iterations; pass
    ``resume_from`` (a checkpoint object or path) to continue an
    interrupted run — ``start_block`` is then ignored.  The resume is
    bit-exact under any one ``backend``; checkpoints themselves are
    backend-agnostic (plain recurrence state), so a run interrupted on
    one backend can resume on another, matching to floating-point
    reduction-order tolerance.  ``metrics`` records per-kernel spans
    plus ``checkpoint_save`` / ``checkpoint_load`` I/O spans.
    ``fault`` is an optional :class:`~repro.resil.FaultInjector` probed
    at the top of every inner iteration (the in-process equivalent of
    the multiprocess engine's injected crashes).  ``precision`` selects
    the storage profile; checkpoints record it and a resume under a
    different profile raises :class:`CheckpointError`.

    ``progress`` is an optional streaming callback fired as
    ``progress(n_eta, eta_prefix)`` after every ``progress_every`` inner
    iterations, where ``eta_prefix`` is a read-only view of the first
    ``n_eta`` scalar products of every column — the serve layer's
    partial-spectrum stream.  The callback runs on the compute path:
    keep it cheap and never let it raise.
    """
    if n_moments % 2 or n_moments < 2:
        raise ValueError(f"n_moments must be even >= 2, got {n_moments}")
    if checkpoint_every and checkpoint_path is None:
        raise ValueError("checkpoint_every requires checkpoint_path")
    a, b = scale.a, scale.b
    prec = get_precision(precision)
    bk = get_backend(backend)

    if resume_from is not None:
        ck = resolve_resume(resume_from, n_moments, a, b, metrics, prec)
        # storage-dtype copies: the resumed state streams exactly the
        # bytes the interrupted run held, so the resume is bit-exact
        v = ck.v.astype(prec.vector_dtype, copy=True)
        w = ck.w.astype(prec.vector_dtype, copy=True)
        eta = ck.eta.astype(DTYPE, copy=True)
        first_m = ck.next_m
        r = int(prec.logical_shape(v)[1])
        plan = bk.plan(H, r, precision=prec, threads=threads, simd=simd)
    elif prec.half_vectors:
        # mirror compute_eta's half bootstrap: SpMMV in f16 storage, one
        # fp32 recombination through the plan's decode scratch
        if start_block.dtype == np.float16:
            v = np.ascontiguousarray(start_block)
        else:
            v = prec.encode(start_block)
        r = v.shape[1]
        plan = bk.plan(H, r, precision=prec, threads=threads, simd=simd)
        w = bk.spmmv(H, v, counters=counters, metrics=metrics)
        vc, wc = plan.vc[: H.n_rows], plan.wc
        prec.decode(v, out=vc)
        prec.decode(w, out=wc)
        wc -= b * vc
        wc *= a
        prec.encode(wc, out=w)
        eta = np.empty((r, n_moments), dtype=DTYPE)
        eta[:, 0], eta[:, 1] = _col_dots(vc, wc)
        first_m = 1
    else:
        v = start_block.astype(prec.vector_dtype, copy=True)
        w = bk.spmmv(H, v, counters=counters, metrics=metrics)
        w -= b * v
        w *= a
        r = v.shape[1]
        eta = np.empty((r, n_moments), dtype=DTYPE)
        # same dot kernel as compute_eta's bootstrap: bitwise-identical
        # moments whichever entry point ran the computation
        eta[:, 0], eta[:, 1] = _col_dots(v, w)
        first_m = 1
        plan = bk.plan(H, r, precision=prec, threads=threads, simd=simd)

    for m in range(first_m, n_moments // 2):
        if fault is not None:
            fault.at_iteration(m)
        v, w = w, v
        ee, eo = bk.aug_spmmv_step(H, v, w, a, b, plan=plan,
                                   counters=counters, metrics=metrics)
        eta[:, 2 * m] = ee
        eta[:, 2 * m + 1] = eo
        if progress is not None and progress_every > 0 \
                and (m - first_m + 1) % progress_every == 0:
            progress(2 * (m + 1), eta[:, : 2 * (m + 1)])
        if checkpoint_every and (m - first_m + 1) % checkpoint_every == 0:
            # after the step: w holds nu_{m+1}, v holds nu_m; the next
            # iteration's swap expects exactly (v, w) in these roles
            with metrics.span("checkpoint_save", phase="ckpt") as sp:
                saved = KpmCheckpoint(
                    v=v, w=w, eta=eta, next_m=m + 1,
                    n_moments=n_moments, a=a, b=b, precision=prec.name,
                ).save(checkpoint_path)
                sp.note(file_bytes=saved.stat().st_size)
    return eta
