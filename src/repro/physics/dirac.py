"""The 4x4 Dirac Gamma matrices entering the TI Hamiltonian (paper Eq. (1)).

The Hamiltonian couples a local orbital-and-spin degree of freedom (4
components per lattice site) through five matrices: ``Gamma_0 = Identity``
and four Hermitian, mutually anticommuting, unit-square matrices
``Gamma_1..Gamma_4`` satisfying the Clifford algebra

    {Gamma_a, Gamma_b} = 2 delta_ab * Identity,   a, b in {1..4}.

The paper cites the operator "for the sake of completeness although its
precise form is not relevant" — any faithful Clifford representation gives
the same spectrum. We use the tensor-product representation common in the
topological-insulator literature (e.g. Schubert et al., PRB 85, 201105):

    Gamma_1 = tau_z (x) sigma_0     (the "mass" matrix, diagonal)
    Gamma_2 = tau_x (x) sigma_x
    Gamma_3 = tau_x (x) sigma_y
    Gamma_4 = tau_x (x) sigma_z

with tau/sigma the Pauli matrices in orbital/spin space. Gamma_1 being
diagonal makes the on-site term ``V_n Gamma_0 + 2 Gamma_1`` diagonal, which
yields exactly 1 on-site nonzero per matrix row; each hopping block
``(Gamma_1 - i Gamma_{j+1})/2`` contributes 2 nonzeros per row and
direction, so a bulk row has 1 + 6*2 = 13 nonzeros — the paper's
``N_nz ~= 13 N``.
"""

from __future__ import annotations

import numpy as np

from repro.util.constants import DTYPE

#: Pauli matrices (sigma_0 is the 2x2 identity).
SIGMA_0 = np.eye(2, dtype=DTYPE)
SIGMA_X = np.array([[0, 1], [1, 0]], dtype=DTYPE)
SIGMA_Y = np.array([[0, -1j], [1j, 0]], dtype=DTYPE)
SIGMA_Z = np.array([[1, 0], [0, -1]], dtype=DTYPE)


def gamma_matrices() -> list[np.ndarray]:
    """Return ``[Gamma_0, Gamma_1, Gamma_2, Gamma_3, Gamma_4]``.

    Gamma_0 is the 4x4 identity; Gamma_1..Gamma_4 obey the Clifford
    algebra (verified by :func:`check_clifford` and the test suite).
    """
    g0 = np.eye(4, dtype=DTYPE)
    g1 = np.kron(SIGMA_Z, SIGMA_0)
    g2 = np.kron(SIGMA_X, SIGMA_X)
    g3 = np.kron(SIGMA_X, SIGMA_Y)
    g4 = np.kron(SIGMA_X, SIGMA_Z)
    return [g0, g1, g2, g3, g4]


#: Module-level cached list [Gamma_0 .. Gamma_4].
GAMMA: list[np.ndarray] = gamma_matrices()


def hopping_block(j: int, t: float = 1.0) -> np.ndarray:
    """The 4x4 hopping block along lattice direction ``j`` in {1, 2, 3}.

    Implements the paper's ``-t (Gamma_1 - i Gamma_{j+1}) / 2``, i.e. the
    matrix that couples site ``n + e_j`` (row) to site ``n`` (column); the
    Hermitian conjugate partner is added separately by the assembler.
    """
    if j not in (1, 2, 3):
        raise ValueError(f"direction j must be 1, 2 or 3, got {j}")
    return (-t * 0.5) * (GAMMA[1] - 1j * GAMMA[j + 1])


def onsite_block(v: float, mass: float = 1.0) -> np.ndarray:
    """The 4x4 on-site block ``v * Gamma_0 + 2 * mass * Gamma_1``.

    The paper writes the on-site term as ``V_n Gamma_0 + 2 Gamma_1``
    (mass = 1 in units of the hopping t); we keep ``mass`` adjustable so
    the topological phase can be tuned in the examples.
    """
    return v * GAMMA[0] + (2.0 * mass) * GAMMA[1]


def check_clifford(gammas: list[np.ndarray] | None = None, tol: float = 1e-14) -> bool:
    """Verify Hermiticity and ``{Gamma_a, Gamma_b} = 2 delta_ab`` for a=1..4."""
    g = GAMMA if gammas is None else gammas
    eye = np.eye(4)
    if not np.allclose(g[0], eye, atol=tol):
        return False
    for a in range(1, 5):
        if not np.allclose(g[a], g[a].conj().T, atol=tol):
            return False
        for b in range(1, 5):
            anti = g[a] @ g[b] + g[b] @ g[a]
            expect = 2.0 * eye if a == b else np.zeros((4, 4))
            if not np.allclose(anti, expect, atol=tol):
                return False
    return True
