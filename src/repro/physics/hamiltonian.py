"""Assembly of the topological-insulator Hamiltonian (paper Eq. (1)).

The operator

    H = -t * sum_{n, j=1..3} [ Psi+_{n+e_j} (Gamma_1 - i Gamma_{j+1})/2 Psi_n
                               + H.c. ]
        + sum_n Psi+_n (V_n Gamma_0 + 2 Gamma_1) Psi_n

acts on 4 orbital/spin components per site of an Nx x Ny x Nz lattice
(periodic in x, y; open in z), so the matrix dimension is
``N = 4 Nx Ny Nz``. With the Gamma representation of
:mod:`repro.physics.dirac` the on-site block is diagonal and every hopping
block has two entries per row, giving 13 nonzeros per bulk row — the
paper's ``N_nz ~= 13 N``. The matrix is complex Hermitian; several
sub-diagonals plus the periodic wrap-around diagonals "in the matrix
corners" make it a stencil but *not* a band matrix, exactly as described
in paper Section I-B.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.physics.dirac import hopping_block, onsite_block
from repro.physics.lattice import Lattice3D
from repro.sparse.csr import CSRMatrix
from repro.util.constants import DTYPE

#: Orbital components per lattice site.
N_ORBITALS = 4


def _block_entries(block: np.ndarray, tol: float = 0.0) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Nonzero (orbital-row, orbital-col, value) triplets of a 4x4 block."""
    rows, cols = np.nonzero(np.abs(block) > tol)
    return rows, cols, block[rows, cols]


@dataclass(frozen=True)
class TopologicalInsulatorModel:
    """Parameter bundle for the TI Hamiltonian.

    Attributes
    ----------
    lattice:
        Site geometry and boundary conditions.
    t:
        Hopping amplitude (energy unit; paper sets t = 1).
    mass:
        Coefficient of the on-site ``2 * mass * Gamma_1`` Wilson term
        (paper value: 1, i.e. the term "2 Gamma_1").
    """

    lattice: Lattice3D
    t: float = 1.0
    mass: float = 1.0

    @property
    def dimension(self) -> int:
        """Matrix dimension N = 4 Nx Ny Nz."""
        return N_ORBITALS * self.lattice.n_sites

    def build(self, potential: np.ndarray | None = None) -> CSRMatrix:
        """Assemble H as a :class:`CSRMatrix`.

        Parameters
        ----------
        potential:
            Real on-site potential V_n, one value per lattice site (linear
            index order); ``None`` means the clean system.
        """
        lat = self.lattice
        n_sites = lat.n_sites
        if potential is None:
            potential = np.zeros(n_sites)
        potential = np.asarray(potential, dtype=float)
        if potential.shape != (n_sites,):
            raise ValueError(
                f"potential must have one entry per site ({n_sites}), "
                f"got shape {potential.shape}"
            )

        rows_list: list[np.ndarray] = []
        cols_list: list[np.ndarray] = []
        vals_list: list[np.ndarray] = []

        # --- on-site term: diagonal in our Gamma representation ----------
        onsite_diag = np.real(np.diag(onsite_block(0.0, self.mass)))
        sites = np.arange(n_sites, dtype=np.int64)
        for orb in range(N_ORBITALS):
            idx = N_ORBITALS * sites + orb
            rows_list.append(idx)
            cols_list.append(idx)
            vals_list.append((potential + onsite_diag[orb]).astype(DTYPE))

        # --- hopping terms, one block per direction and orientation ------
        for j in (1, 2, 3):
            src, dst = lat.neighbor_pairs(j - 1)
            if src.size == 0:
                continue
            block = hopping_block(j, self.t)
            orows, ocols, ovals = _block_entries(block)
            for orow, ocol, oval in zip(orows, ocols, ovals):
                # forward: row block at dst, column block at src
                rows_list.append(N_ORBITALS * dst + orow)
                cols_list.append(N_ORBITALS * src + ocol)
                vals_list.append(np.full(src.size, oval, dtype=DTYPE))
                # Hermitian conjugate: row at src, column at dst
                rows_list.append(N_ORBITALS * src + ocol)
                cols_list.append(N_ORBITALS * dst + orow)
                vals_list.append(np.full(src.size, np.conj(oval), dtype=DTYPE))

        return CSRMatrix.from_coo(
            np.concatenate(rows_list),
            np.concatenate(cols_list),
            np.concatenate(vals_list),
            (self.dimension, self.dimension),
        )

    def expected_nnz(self) -> int:
        """Exact stored-entry count for the clean system.

        1 diagonal entry per row plus 2 entries per row per realized
        neighbor hop (each direction contributes both orientations).
        Rows on open boundaries have fewer hops.
        """
        lat = self.lattice
        total = N_ORBITALS * lat.n_sites  # diagonal
        for axis in range(3):
            src, _ = lat.neighbor_pairs(axis)
            # each (src,dst) pair puts 8 entries in forward + 8 in conjugate
            # = 2 per row for the 8 involved rows; total entries = 16 pairs.
            total += 16 * src.size
        return total


def build_topological_insulator(
    nx: int,
    ny: int,
    nz: int,
    *,
    t: float = 1.0,
    mass: float = 1.0,
    potential: np.ndarray | None = None,
    pbc: tuple[bool, bool, bool] = (True, True, False),
) -> tuple[CSRMatrix, TopologicalInsulatorModel]:
    """Convenience builder: lattice + model + matrix in one call.

    Returns ``(H, model)`` so callers keep the geometry for later use
    (LDOS site selection, plane-wave construction, partition geometry).
    """
    model = TopologicalInsulatorModel(Lattice3D(nx, ny, nz, pbc), t=t, mass=mass)
    return model.build(potential), model


def plane_wave_vector(
    lattice: Lattice3D, k: tuple[float, float, float], orbital: int
) -> np.ndarray:
    """Normalized plane-wave state |k, orbital> on the 4-component lattice.

    ``psi_{n,o} = exp(i k . r_n) delta_{o,orbital} / sqrt(n_sites)`` — the
    probe state for the momentum-resolved spectral function A(k, E) of
    paper Fig. 2 (right panel). ``k`` is in radians per lattice constant.
    """
    if not 0 <= orbital < N_ORBITALS:
        raise ValueError(f"orbital must be in [0, {N_ORBITALS}), got {orbital}")
    x, y, z = lattice.all_coords()
    phase = np.exp(1j * (k[0] * x + k[1] * y + k[2] * z)) / np.sqrt(lattice.n_sites)
    psi = np.zeros(N_ORBITALS * lattice.n_sites, dtype=DTYPE)
    psi[N_ORBITALS * np.arange(lattice.n_sites) + orbital] = phase
    return psi
