"""Graphene quantum-dot superlattice model (paper Refs. [20], [21]).

Pieper et al. (PRB 89, 165121) — cited by the paper for the quantum-dot
physics — study dot-bound and dispersive states in *graphene* quantum-dot
superlattices. We implement that model as a second KPM workload: a
nearest-neighbor tight-binding Hamiltonian on the honeycomb lattice,

    H = -t sum_<ij> c+_i c_j + sum_i V_i c+_i c_i ,

real symmetric with 3 off-diagonal entries per bulk row (coordination
number of the honeycomb lattice) plus the potential diagonal. Its DOS has
the characteristic linear vanishing at E = 0 (Dirac point) and van Hove
singularities at |E| = t — sharp features that make it a good acceptance
test for the KPM reconstruction pipeline.

Geometry: the standard two-site unit cell on an ``ncx x ncy`` cell grid,
periodic in both directions. Site index = ``2*(cx + ncx*cy) + s`` with
sublattice s in {0, 1}; neighbor of an A site (s=0): the B site of the
same cell, of the cell at (cx-1, cy), and of the cell at (cx, cy-1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.util.constants import DTYPE
from repro.util.validation import check_positive


@dataclass(frozen=True)
class GrapheneModel:
    """Honeycomb-lattice tight-binding model parameters."""

    ncx: int
    ncy: int
    t: float = 1.0

    def __post_init__(self) -> None:
        check_positive("ncx", self.ncx)
        check_positive("ncy", self.ncy)

    @property
    def n_sites(self) -> int:
        """Total sites: 2 per unit cell."""
        return 2 * self.ncx * self.ncy

    @property
    def dimension(self) -> int:
        return self.n_sites

    def cell_index(self, cx, cy) -> np.ndarray:
        """Linear cell index with periodic wrapping."""
        cx = np.asarray(cx) % self.ncx
        cy = np.asarray(cy) % self.ncy
        return cx + self.ncx * cy

    def site_positions(self) -> np.ndarray:
        """Cartesian positions (n_sites, 2) with unit lattice constant.

        Lattice vectors a1 = (1, 0), a2 = (1/2, sqrt(3)/2); the B
        sublattice is displaced by (1/2, 1/(2 sqrt(3))).
        """
        cells = np.arange(self.ncx * self.ncy)
        cx = cells % self.ncx
        cy = cells // self.ncx
        base = np.stack(
            [cx + 0.5 * cy, (np.sqrt(3.0) / 2.0) * cy], axis=1
        )
        delta = np.array([0.5, 0.5 / np.sqrt(3.0)])
        pos = np.empty((self.n_sites, 2))
        pos[0::2] = base
        pos[1::2] = base + delta
        return pos

    def build(self, potential: np.ndarray | None = None) -> CSRMatrix:
        """Assemble the Hamiltonian as a CSR matrix.

        ``potential`` holds one real value per *site* (dimension
        ``n_sites``), e.g. from :func:`graphene_dot_potential`.
        """
        n = self.n_sites
        if potential is None:
            potential = np.zeros(n)
        potential = np.asarray(potential, dtype=float)
        if potential.shape != (n,):
            raise ValueError(
                f"potential must have shape ({n},), got {potential.shape}"
            )
        cells = np.arange(self.ncx * self.ncy)
        cx = cells % self.ncx
        cy = cells // self.ncx
        a_sites = 2 * cells
        rows, cols, vals = [], [], []
        # three B neighbors of each A site
        for (dx, dy) in ((0, 0), (-1, 0), (0, -1)):
            b_sites = 2 * self.cell_index(cx + dx, cy + dy) + 1
            rows.append(a_sites)
            cols.append(b_sites)
            vals.append(np.full(cells.size, -self.t, dtype=DTYPE))
            rows.append(b_sites)
            cols.append(a_sites)
            vals.append(np.full(cells.size, -self.t, dtype=DTYPE))
        # store diagonal entries only where the potential acts (keeps the
        # clean lattice at exactly 3 nonzeros per row)
        sites = np.nonzero(potential != 0.0)[0]
        rows.append(sites)
        cols.append(sites)
        vals.append(potential[sites].astype(DTYPE))
        return CSRMatrix.from_coo(
            np.concatenate(rows),
            np.concatenate(cols),
            np.concatenate(vals),
            (n, n),
            drop_zeros=False,
        )


def graphene_dot_potential(
    model: GrapheneModel,
    v_dot: float,
    spacing: float,
    radius: float | None = None,
) -> np.ndarray:
    """Quantum-dot superlattice potential on the honeycomb lattice.

    Dots of strength ``v_dot`` and radius ``radius`` (default spacing/4)
    centered on a square grid of period ``spacing`` in Cartesian space.
    """
    check_positive("spacing", spacing)
    if radius is None:
        radius = spacing / 4.0
    pos = model.site_positions()
    dx = (pos[:, 0] + 0.5 * spacing) % spacing - 0.5 * spacing
    dy = (pos[:, 1] + 0.5 * spacing) % spacing - 0.5 * spacing
    return np.where(dx**2 + dy**2 <= radius**2, v_dot, 0.0)


def build_graphene_dot_lattice(
    ncx: int,
    ncy: int,
    *,
    t: float = 1.0,
    v_dot: float = 0.0,
    spacing: float = 10.0,
) -> tuple[CSRMatrix, GrapheneModel]:
    """Convenience builder mirroring :func:`build_topological_insulator`."""
    model = GrapheneModel(ncx, ncy, t=t)
    pot = (
        graphene_dot_potential(model, v_dot, spacing)
        if v_dot != 0.0
        else None
    )
    return model.build(pot), model
