"""3D cuboid lattice with configurable boundary conditions.

The paper treats finite ``Nx x Ny x Nz`` samples with periodic boundary
conditions in x and y (producing the "outlying diagonals in the matrix
corners") and open boundaries in z. Site linearization is x-fastest:

    site(x, y, z) = x + Nx * (y + Ny * z)

so that the distributed row partition along z (or y) produces contiguous
row blocks, matching the slab decomposition of the parallel runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive


@dataclass(frozen=True)
class Lattice3D:
    """A finite Nx x Ny x Nz lattice.

    Parameters
    ----------
    nx, ny, nz:
        Extents in each direction.
    pbc:
        Per-axis periodic flags; the paper's setting is
        ``(True, True, False)``.
    """

    nx: int
    ny: int
    nz: int
    pbc: tuple[bool, bool, bool] = (True, True, False)

    def __post_init__(self) -> None:
        check_positive("nx", self.nx)
        check_positive("ny", self.ny)
        check_positive("nz", self.nz)
        if len(self.pbc) != 3:
            raise ValueError(f"pbc must have 3 entries, got {self.pbc!r}")

    # ------------------------------------------------------------------
    @property
    def n_sites(self) -> int:
        """Number of lattice sites Nx*Ny*Nz."""
        return self.nx * self.ny * self.nz

    @property
    def shape(self) -> tuple[int, int, int]:
        return (self.nx, self.ny, self.nz)

    def extent(self, axis: int) -> int:
        """Extent along ``axis`` in {0, 1, 2}."""
        return self.shape[axis]

    # ------------------------------------------------------------------
    def site_index(self, x, y, z) -> np.ndarray:
        """Linear site index for (arrays of) coordinates, x-fastest."""
        x = np.asarray(x)
        y = np.asarray(y)
        z = np.asarray(z)
        return x + self.nx * (y + self.ny * z)

    def site_coords(self, n) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Inverse of :meth:`site_index`: (x, y, z) of linear indices."""
        n = np.asarray(n)
        x = n % self.nx
        rest = n // self.nx
        y = rest % self.ny
        z = rest // self.ny
        return x, y, z

    def all_coords(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Coordinates of every site, in linear-index order."""
        return self.site_coords(np.arange(self.n_sites))

    # ------------------------------------------------------------------
    def neighbor_pairs(self, axis: int) -> tuple[np.ndarray, np.ndarray]:
        """All (source, destination) site pairs for a +1 hop along ``axis``.

        Destination is ``source + e_axis``. With periodic boundary
        conditions the hop wraps around; with open boundaries, edge sites
        have no partner and are omitted. Both arrays have equal length:
        ``n_sites`` for a periodic axis (with extent > 1), otherwise
        ``n_sites * (extent-1)/extent``.

        For an axis of extent 1, periodic wrapping would produce a
        self-hop ``n -> n``; these are omitted as unphysical (and they
        would double-count with the Hermitian-conjugate term).
        """
        if axis not in (0, 1, 2):
            raise ValueError(f"axis must be 0, 1 or 2, got {axis}")
        x, y, z = self.all_coords()
        coords = [x.copy(), y.copy(), z.copy()]
        extent = self.extent(axis)
        if extent == 1:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        shifted = coords[axis] + 1
        if self.pbc[axis]:
            keep = np.ones(self.n_sites, dtype=bool)
            shifted = shifted % extent
        else:
            keep = shifted < extent
            shifted = np.minimum(shifted, extent - 1)
        src = np.arange(self.n_sites)[keep]
        coords[axis] = shifted
        dst = self.site_index(*coords)[keep]
        return src, dst

    def boundary_sites(self, axis: int, side: int) -> np.ndarray:
        """Sites on the ``side`` (0 = low, 1 = high) face along ``axis``."""
        x, y, z = self.all_coords()
        coords = (x, y, z)[axis]
        target = 0 if side == 0 else self.extent(axis) - 1
        return np.nonzero(coords == target)[0]

    def __repr__(self) -> str:
        return (
            f"Lattice3D({self.nx}x{self.ny}x{self.nz}, "
            f"pbc={tuple(self.pbc)}, sites={self.n_sites})"
        )
