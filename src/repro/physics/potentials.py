"""External potentials V_n imposed on the lattice.

The paper's application decorates the topological insulator with "an
external electric potential V_n that is used to create a superlattice
structure of quantum dots" (Fig. 2: dot strength V_dot = 0.153, dot
spacing D = 100). All generators return one real value per lattice site in
linear-index order; the Hamiltonian assembler multiplies by Gamma_0.
"""

from __future__ import annotations

import numpy as np

from repro.physics.lattice import Lattice3D
from repro.util.rng import make_rng
from repro.util.validation import check_positive


def zero_potential(lattice: Lattice3D) -> np.ndarray:
    """The clean system: V_n = 0 everywhere."""
    return np.zeros(lattice.n_sites)


def single_dot_potential(
    lattice: Lattice3D,
    v_dot: float,
    radius: float,
    center: tuple[float, float] | None = None,
    *,
    surface_only: bool = True,
    smooth: bool = False,
) -> np.ndarray:
    """One cylindrical quantum dot of strength ``v_dot``.

    The dot is a disk of the given ``radius`` in the x-y plane around
    ``center`` (domain center by default). ``surface_only`` restricts the
    potential to the z = 0 surface layer, the physically relevant case for
    gating a topological-insulator film; ``smooth`` applies a Gaussian
    profile instead of a hard wall (softer dots host better-defined
    dot-bound states, cf. Ref. [21]).
    """
    check_positive("radius", radius)
    x, y, z = lattice.all_coords()
    cx, cy = center if center is not None else ((lattice.nx - 1) / 2.0, (lattice.ny - 1) / 2.0)
    # minimum-image distance on the periodic x/y torus
    dx = np.abs(x - cx)
    dy = np.abs(y - cy)
    if lattice.pbc[0]:
        dx = np.minimum(dx, lattice.nx - dx)
    if lattice.pbc[1]:
        dy = np.minimum(dy, lattice.ny - dy)
    d2 = dx**2 + dy**2
    if smooth:
        v = v_dot * np.exp(-0.5 * d2 / radius**2)
    else:
        v = np.where(d2 <= radius**2, v_dot, 0.0)
    if surface_only:
        v = np.where(z == 0, v, 0.0)
    return v


def dot_superlattice_potential(
    lattice: Lattice3D,
    v_dot: float = 0.153,
    spacing: int = 100,
    radius: float | None = None,
    *,
    surface_only: bool = True,
    smooth: bool = False,
) -> np.ndarray:
    """Square superlattice of quantum dots with period ``spacing`` (paper D).

    Defaults mirror the paper's Fig. 2 parameters (V_dot = 0.153, D = 100).
    Dots are centered on the grid ``(i*D + D/2, j*D + D/2)``; ``radius``
    defaults to ``D/4``. For faithful tiling, ``spacing`` should divide the
    periodic extents; other values are allowed (edge dots get clipped).
    """
    check_positive("spacing", spacing)
    if radius is None:
        radius = spacing / 4.0
    check_positive("radius", radius)
    x, y, z = lattice.all_coords()
    # distance to the nearest dot center in each direction: centers sit at
    # (k + 1/2) * spacing, so fold coordinates into one superlattice cell.
    dx = (x + 0.5 * spacing) % spacing - 0.5 * spacing
    dy = (y + 0.5 * spacing) % spacing - 0.5 * spacing
    d2 = dx**2 + dy**2
    if smooth:
        v = v_dot * np.exp(-0.5 * d2 / radius**2)
    else:
        v = np.where(d2 <= radius**2, v_dot, 0.0)
    if surface_only:
        v = np.where(z == 0, v, 0.0)
    return v


def disorder_potential(
    lattice: Lattice3D,
    strength: float,
    seed: int | None | np.random.Generator = None,
) -> np.ndarray:
    """Uncorrelated (Anderson) disorder, uniform in [-strength/2, strength/2].

    Used by tests and the ablation benches to break translational symmetry
    completely (the paper notes the dot superlattice already removes it).
    """
    if strength < 0:
        raise ValueError(f"disorder strength must be >= 0, got {strength}")
    rng = make_rng(seed)
    return rng.uniform(-0.5 * strength, 0.5 * strength, size=lattice.n_sites)
