"""Application substrate: quantum lattice models producing sparse matrices.

The paper's benchmark application is the 3D topological-insulator
Hamiltonian of Eq. (1) — a complex Hermitian matrix of dimension
``N = 4 Nx Ny Nz`` with about 13 nonzeros per row, periodic in x and y,
open in z, optionally decorated with a quantum-dot superlattice potential.
This subpackage builds that matrix from scratch, plus a graphene
quantum-dot model (the paper's Refs. [20], [21]) as a second workload.
"""

from repro.physics.dirac import GAMMA, gamma_matrices, check_clifford
from repro.physics.lattice import Lattice3D
from repro.physics.potentials import (
    zero_potential,
    dot_superlattice_potential,
    disorder_potential,
    single_dot_potential,
)
from repro.physics.hamiltonian import (
    TopologicalInsulatorModel,
    build_topological_insulator,
)
from repro.physics.graphene import GrapheneModel, build_graphene_dot_lattice

__all__ = [
    "GAMMA",
    "gamma_matrices",
    "check_clifford",
    "Lattice3D",
    "zero_potential",
    "dot_superlattice_potential",
    "disorder_potential",
    "single_dot_potential",
    "TopologicalInsulatorModel",
    "build_topological_insulator",
    "GrapheneModel",
    "build_graphene_dot_lattice",
]
