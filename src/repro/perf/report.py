"""Performance-report generation: the paper's analysis as one text blob.

``full_report(...)`` strings together the model pipeline for a given
problem configuration — Table-I accounting, code balances, per-device
rooflines, node prediction, cluster prediction — the way a performance
engineer would write it up. Used by the CLI (``python -m repro report``)
and handy in notebooks.

The *validation* half of the module closes the loop on measurement:
:func:`expected_counters` re-charges a serial moment computation purely
analytically (the same Table-I ``charge_*`` helpers the kernels call at
runtime), :func:`measured_vs_model_section` diffs a run's measured
:class:`~repro.util.counters.PerfCounters` against that minimum and the
Eq. (4)-(7) aggregate models, and :func:`trace_section` folds a span
trace (see :mod:`repro.obs`) into per-kernel wall time and achieved
bytes/flop — the paper's "validate the model against the measurement"
methodology as executable code.
"""

from __future__ import annotations

from io import StringIO

import numpy as np

from repro.perf.arch import ARCHITECTURES, PIZ_DAINT_NODE, NodeConfig
from repro.perf.balance import (
    bmin,
    bmin_limit,
    kpm_flops,
    kpm_min_traffic,
    naive_balance,
    precision_widths,
)
from repro.perf.roofline import (
    cpu_kernel_performance,
    custom_roofline,
    gpu_kernel_performance,
    node_performance,
)
from repro.sparse.fused import (
    _slots,
    charge_aug_spmmv,
    charge_aug_spmmv_part,
    charge_aug_spmv,
    charge_col_dots,
)
from repro.sparse.spmv import _charge_spmv
from repro.util.constants import F_ADD, F_MUL
from repro.util.counters import PerfCounters
from repro.util.precision import FP64, PRECISIONS, Precision, get_precision
from repro.util.validation import check_positive


def architecture_table() -> str:
    """Paper Table II as text."""
    out = StringIO()
    out.write(
        f"{'device':>8} {'kind':>5} {'clock':>7} {'cores':>6} "
        f"{'b GB/s':>7} {'LLC MiB':>8} {'peak GF/s':>10}\n"
    )
    for arch in ARCHITECTURES.values():
        out.write(
            f"{arch.name:>8} {arch.kind:>5} {arch.clock_mhz:>7.0f} "
            f"{arch.cores:>6} {arch.bandwidth_gbs:>7.1f} "
            f"{arch.llc_mib:>8.2f} {arch.peak_gflops:>10.1f}\n"
        )
    return out.getvalue()


def balance_section(n: int, nnzr: float, r: int, m: int) -> str:
    """Eq. (4)-(7) accounting for the given configuration."""
    nnz = int(nnzr * n)
    out = StringIO()
    out.write(f"problem: N = {n:,}, N_nz = {nnz:,} ({nnzr:.1f}/row), "
              f"R = {r}, M = {m}\n")
    out.write(f"total flops:           {kpm_flops(n, nnz, r, m):.3e}\n")
    for stage in ("naive", "aug_spmv", "aug_spmmv"):
        v = kpm_min_traffic(n, nnz, r, m, stage)
        out.write(f"V_KPM[{stage:>9}]:    {v:.3e} bytes\n")
    out.write(
        f"code balance: naive {naive_balance(nnzr):.3f}, "
        f"stage1 {bmin(1, nnzr):.3f}, stage2(R={r}) {bmin(r, nnzr):.3f}, "
        f"limit {bmin_limit(nnzr):.3f} bytes/flop\n"
    )
    return out.getvalue()


def precision_balance_section(r: int, nnzr: float = 13.0) -> str:
    """Eq. (5)-(7) code balances under each storage profile.

    One row per profile with its stream widths (matrix value, vector
    storage, index — uint16 eligibility assumed for the narrow
    profiles) and the resulting naive / stage-1 / stage-2 / limit
    balances.  fp32 halves every balance; fp16v drops the R -> inf
    limit 4x below the paper's Eq. (7).
    """
    out = StringIO()
    out.write(f"{'profile':>8} {'S_d':>4} {'S_v':>4} {'S_i':>4} "
              f"{'naive':>7} {'B_min(1)':>9} {f'B_min({r})':>9} "
              f"{'limit':>7}\n")
    for name in PRECISIONS:
        s_d, s_v, s_i = precision_widths(name)
        out.write(
            f"{name:>8} {s_d:>4} {s_v:>4} {s_i:>4} "
            f"{naive_balance(nnzr, s_d=s_d, s_i=s_i, s_v=s_v):>7.3f} "
            f"{bmin(1, nnzr, s_d=s_d, s_i=s_i, s_v=s_v):>9.3f} "
            f"{bmin(r, nnzr, s_d=s_d, s_i=s_i, s_v=s_v):>9.3f} "
            f"{bmin_limit(nnzr, s_d=s_v):>7.3f}\n"
        )
    return out.getvalue()


def device_section(r: int, nnzr: float) -> str:
    """Per-device roofline predictions for all three stages."""
    out = StringIO()
    out.write(f"{'device':>8} {'naive':>8} {'stage1':>8} "
              f"{'stage2(R)':>10} {'P*_LLC':>8}\n")
    for arch in ARCHITECTURES.values():
        if arch.kind == "cpu":
            vals = [
                cpu_kernel_performance(arch, s, r)
                for s in ("naive", "aug_spmv", "aug_spmmv")
            ]
            p_llc = custom_roofline(arch, r)["p_llc"]
        else:
            vals = [
                gpu_kernel_performance(arch, s, r)
                for s in ("naive", "aug_spmv", "aug_spmmv")
            ]
            p_llc = float("nan")
        out.write(
            f"{arch.name:>8} {vals[0]:>8.1f} {vals[1]:>8.1f} "
            f"{vals[2]:>10.1f} {p_llc:>8.1f}\n"
        )
    return out.getvalue()


def node_section(node: NodeConfig, r: int) -> str:
    """Fig. 11-style node summary."""
    out = StringIO()
    out.write(f"node: {node.name} "
              f"({len(node.cpus)} CPU + {len(node.gpus)} GPU)\n")
    for stage in ("naive", "aug_spmv", "aug_spmmv"):
        d = node_performance(node, stage, r)
        out.write(
            f"  {stage:>10}: cpu {d['cpu']:7.1f}  gpu {d['gpu']:7.1f}  "
            f"hetero {d['heterogeneous']:7.1f} Gflop/s "
            f"(eff {d['parallel_efficiency']:.0%})\n"
        )
    return out.getvalue()


def cluster_section(domain: tuple[int, int, int], nodes: int, m: int, r: int) -> str:
    """Fig. 12 / Table III-style cluster prediction."""
    # local import: repro.dist depends on repro.perf, not vice versa
    from repro.dist.scaling_model import ClusterModel

    cm = ClusterModel(r=r)
    out = StringIO()
    out.write(f"cluster: {nodes} x {cm.node.name} nodes, "
              f"domain {domain}, M = {m}\n")
    for variant in ("aug_spmv", "aug_spmmv*", "aug_spmmv"):
        tf = cm.solve_tflops(domain, nodes, m, variant=variant)
        nh = cm.node_hours(domain, nodes, m, variant=variant)
        out.write(f"  {variant:>11}: {tf:8.2f} Tflop/s, "
                  f"{nh:8.1f} node-hours\n")
    return out.getvalue()


def _charge_naive_iteration(
    A, c: PerfCounters, prec: Precision = FP64
) -> None:
    """Analytic charge of one naive inner iteration (Fig. 3 call chain).

    Under ``fp16v`` only the SpMV streams half storage; the BLAS-1 chain
    runs on the decoded complex64 copies (the backends' decode pass), so
    its streams price at the compute-dtype width.
    """
    n = A.n_rows
    s_x = (
        np.dtype(prec.compute_dtype).itemsize
        if prec.half_vectors else prec.s_vector
    )
    _charge_spmv(A, 1, c, "spmv", prec)
    for _ in range(2):  # two axpy calls
        c.charge("axpy", loads=2 * n * s_x, stores=n * s_x,
                 flops=n * (F_ADD + F_MUL))
    c.charge("scal", loads=n * s_x, stores=n * s_x, flops=n * F_MUL)
    c.charge("nrm2", loads=n * s_x, flops=n * (F_ADD // 2 + F_MUL // 2))
    c.charge("dot", loads=2 * n * s_x, flops=n * (F_ADD + F_MUL))


def expected_counters(
    A, n_moments: int, n_vectors: int, engine: str = "aug_spmmv",
    splits=None, precision: Precision | str | None = None,
) -> PerfCounters:
    """Analytic minimum-traffic counters of one serial moment computation.

    Re-charges, call for call, exactly what
    :func:`repro.core.moments.compute_eta` charges at runtime for the
    given engine — the bootstrap Sp(M)MV plus M/2 - 1 inner-iteration
    kernels (per vector for the single-vector engines).  A measured
    :class:`PerfCounters` from an instrumented run must equal this
    *exactly* (integer bytes and flops); any drift means a kernel's
    accounting diverged from Table I.

    ``splits`` models the overlapped (task-mode) distributed schedule:
    a sequence of per-rank :class:`repro.dist.overlap.TaskSplit`-like
    objects (``n_interior``/``nnz_interior``/``n_boundary``/
    ``nnz_boundary``).  Each rank then charges its bootstrap ``spmmv``
    on its local block and every inner iteration as an
    ``aug_spmmv_int`` + ``aug_spmmv_bnd`` pair.  By the exact-sum
    property of :func:`repro.sparse.fused.charge_aug_spmmv_part` the
    byte/flop totals are identical to the serial charge — only the
    per-kernel call attribution differs — so measured == analytic
    stays exact under overlap.  Only valid with ``engine='aug_spmmv'``.

    ``precision`` re-prices every stream with the profile's widths —
    including, in the splits path, each rank's *own* index width: a
    rank whose local+halo column count (``sp.n_cols``) fits uint16
    charges S_i = 2 under a narrow profile even when the global
    operator does not.
    """
    if n_moments % 2 or n_moments < 2:
        raise ValueError(f"n_moments must be even >= 2, got {n_moments}")
    check_positive("n_vectors", n_vectors)
    if splits is not None and engine != "aug_spmmv":
        raise ValueError(
            f"splits= is only meaningful for engine='aug_spmmv', "
            f"got {engine!r}"
        )
    prec = get_precision(precision)
    c = PerfCounters()
    half = n_moments // 2
    if splits is not None:
        for sp in splits:
            n_loc = sp.n_interior + sp.n_boundary
            slots_loc = sp.nnz_interior + sp.nnz_boundary
            # per-rank index width: locality decides uint16 eligibility
            s_i = prec.index_bytes(getattr(sp, "n_cols", 0) or A.n_cols)
            s_x = prec.s_vector
            # Bootstrap nu_1 block on the rank's local rows — identical
            # per-row charge to _charge_spmv of the local matrix.
            c.charge(
                "spmmv",
                loads=slots_loc * (prec.s_value + s_i)
                + n_vectors * n_loc * s_x,
                stores=n_vectors * n_loc * s_x,
                flops=n_vectors * slots_loc * (F_ADD + F_MUL),
            )
        for _ in range(half - 1):
            for sp in splits:
                s_i = prec.index_bytes(getattr(sp, "n_cols", 0) or A.n_cols)
                charge_aug_spmmv_part(
                    sp.n_interior, sp.nnz_interior, n_vectors, c,
                    "aug_spmmv_int", prec, s_index=s_i,
                )
                charge_aug_spmmv_part(
                    sp.n_boundary, sp.nnz_boundary, n_vectors, c,
                    "aug_spmmv_bnd", prec, s_index=s_i,
                )
    elif engine == "aug_spmmv":
        _charge_spmv(A, n_vectors, c, "spmmv", prec)  # bootstrap nu_1 block
        for _ in range(half - 1):
            charge_aug_spmmv(A, n_vectors, c, prec)
    elif engine == "aug_spmv":
        for _ in range(n_vectors):
            _charge_spmv(A, 1, c, "spmv", prec)  # bootstrap nu_1
            for _ in range(half - 1):
                charge_aug_spmv(A, c, prec)
    elif engine == "naive":
        for _ in range(n_vectors):
            _charge_spmv(A, 1, c, "spmv", prec)  # bootstrap nu_1
            for _ in range(half - 1):
                _charge_naive_iteration(A, c, prec)
    else:
        raise ValueError(
            f"engine must be 'naive', 'aug_spmv' or 'aug_spmmv', "
            f"got {engine!r}"
        )
    return c


def expected_segment_counters(
    A, n_moments: int, n_vectors: int, *, first_m: int = 1,
    stop_m: int | None = None, eta_grid: int = 0,
    precision: Precision | str | None = None,
) -> PerfCounters:
    """Analytic counters of one elastic *segment* ``[first_m, stop_m)``.

    The elastic driver (:mod:`repro.dist.elastic`) runs the moment loop
    in boundary-delimited segments, each on its own partition and worker
    count.  This models what every rank's counters of one such segment
    must sum to: the bootstrap Sp(M)MV when the segment starts the run
    (``first_m == 1``), one fused ``aug_spmmv`` per iteration of the
    segment, and — in grid-eta mode — one column-dot post-pass per
    iteration (the per-block eta recomputation, linear in rows and
    therefore partition-independent).  Per-rank Table-I charges are
    exact sums over rows/nonzeros, so the merged measurement of any
    partition must equal this *exactly*, whatever the worker count —
    the elastic analogue of :func:`expected_counters`.  Summing the
    segment charges over a segmentation of ``[1, M/2)`` reproduces the
    grid-mode full-run charge for the same reason.
    """
    if n_moments % 2 or n_moments < 2:
        raise ValueError(f"n_moments must be even >= 2, got {n_moments}")
    check_positive("n_vectors", n_vectors)
    half = n_moments // 2 if stop_m is None else int(stop_m)
    if not 1 <= half <= n_moments // 2:
        raise ValueError(
            f"stop_m must be in [1, {n_moments // 2}], got {stop_m}"
        )
    if not 1 <= first_m <= half:
        raise ValueError(
            f"first_m must be in [1, {half}], got {first_m}"
        )
    prec = get_precision(precision)
    c = PerfCounters()
    if first_m == 1:
        _charge_spmv(A, n_vectors, c, "spmmv", prec)  # bootstrap nu_1 block
    for _ in range(first_m, half):
        charge_aug_spmmv(A, n_vectors, c, prec)
        if eta_grid:
            charge_col_dots(A.n_rows, n_vectors, c, prec=prec)
    return c


def _kernel_model_balance(
    A, name: str, r: int, prec: Precision = FP64
) -> float | None:
    """Model bytes/flop of one kernel invocation (None when unmodeled)."""
    c = PerfCounters()
    if name == "aug_spmmv":
        charge_aug_spmmv(A, r, c, prec)
    elif name == "aug_spmv":
        charge_aug_spmv(A, c, prec)
    elif name == "spmv":
        _charge_spmv(A, 1, c, name, prec)
    elif name == "spmmv":
        _charge_spmv(A, r, c, name, prec)
    elif name == "naive_step":
        _charge_naive_iteration(A, c, prec)
    else:
        return None
    return c.code_balance


def measured_vs_model_section(
    A,
    counters: PerfCounters,
    n_moments: int,
    n_vectors: int,
    engine: str = "aug_spmmv",
    metrics=None,
    precision: Precision | str | None = None,
) -> str:
    """Measured counters vs. the analytic minimum and the Eq. (4) model.

    ``counters`` is the live :class:`PerfCounters` a serial
    ``compute_eta`` run charged; ``metrics`` optionally the
    :class:`~repro.obs.MetricsRegistry` of the same run, adding a
    per-kernel achieved-vs-model code-balance table (with wall-clock
    Gflop/s where the spans carried time).  ``precision`` must match
    the run's profile for the exact-match line to hold.
    """
    prec = get_precision(precision)
    exp = expected_counters(A, n_moments, n_vectors, engine, precision=prec)
    slots = _slots(A)
    nnzr = slots / A.n_rows
    s_d, s_x, s_i = prec.s_value, prec.s_vector, prec.index_bytes(A.n_cols)
    out = StringIO()
    out.write(
        f"engine {engine}, M = {n_moments}, R = {n_vectors}, "
        f"N = {A.n_rows:,}, streamed slots = {slots:,} ({nnzr:.2f}/row)"
        + ("" if prec.is_fp64 else
           f", precision {prec.name} (S_d={s_d}, S_v={s_x}, S_i={s_i})")
        + "\n"
    )
    out.write(
        f"  measured: {counters.bytes_total:,} B  {counters.flops:,} F  "
        f"balance {counters.code_balance:.4f} B/F\n"
    )
    out.write(
        f"  analytic: {exp.bytes_total:,} B  {exp.flops:,} F  "
        f"balance {exp.code_balance:.4f} B/F\n"
    )
    exact = (
        counters.bytes_loaded == exp.bytes_loaded
        and counters.bytes_stored == exp.bytes_stored
        and counters.flops == exp.flops
    )
    if exact:
        out.write("  exact match: yes\n")
    else:
        out.write(
            "  exact match: NO  "
            f"(d_loads {counters.bytes_loaded - exp.bytes_loaded:+,}, "
            f"d_stores {counters.bytes_stored - exp.bytes_stored:+,}, "
            f"d_flops {counters.flops - exp.flops:+,})\n"
        )
    # Eq. (4) aggregate: all M/2 iterations priced as the stage kernel
    # (the bootstrap Sp(M)MV is slightly cheaper, so measured <= model).
    v_model = kpm_min_traffic(A.n_rows, slots, n_vectors, n_moments, engine,
                              s_d=s_d, s_i=s_i, s_v=s_x)
    f_model = kpm_flops(A.n_rows, slots, n_vectors, n_moments)
    out.write(
        f"  Eq.(4) V_KPM[{engine}]: {v_model:.4e} B "
        f"(measured/model = {counters.bytes_total / v_model:.4f})\n"
    )
    out.write(
        f"  Table-I flops:        {f_model:.4e} F "
        f"(measured/model = {counters.flops / f_model:.4f})\n"
    )
    out.write(
        f"  model balances: naive {naive_balance(nnzr, s_d=s_d, s_i=s_i, s_v=s_x):.3f}, "
        f"stage1 {bmin(1, nnzr, s_d=s_d, s_i=s_i, s_v=s_x):.3f}, "
        f"stage2(R={n_vectors}) "
        f"{bmin(n_vectors, nnzr, s_d=s_d, s_i=s_i, s_v=s_x):.3f}, "
        f"limit {bmin_limit(nnzr, s_d=s_x):.3f} B/F\n"
    )
    if metrics is not None and metrics.timers:
        out.write(
            f"  {'kernel':>12} {'calls':>7} {'wall ms':>10} "
            f"{'B/F meas':>9} {'B/F model':>10} {'Gflop/s':>8}\n"
        )
        for name, t in sorted(
            metrics.timers.items(), key=lambda kv: kv[1].total, reverse=True
        ):
            nbytes, nflops = metrics.span_traffic(name)
            if not nflops:
                continue
            # rank-tagged entries (merged mp metrics) model against the
            # kernel's leaf name; per-call balance depends on nnz/row,
            # which the row partition preserves.
            model_bf = _kernel_model_balance(
                A, name.rpartition(".")[2], n_vectors, prec
            )
            model_s = f"{model_bf:10.4f}" if model_bf is not None else f"{'-':>10}"
            gfs = nflops / t.total / 1e9 if t.total > 0 else float("nan")
            out.write(
                f"  {name:>12} {t.count:>7} {t.total * 1e3:>10.3f} "
                f"{nbytes / nflops:>9.4f} {model_s} {gfs:>8.2f}\n"
            )
    return out.getvalue()


def trace_section(records: list[dict]) -> str:
    """Per-span-name totals of a parsed JSONL trace (see repro.obs.trace)."""
    from repro.obs import aggregate_spans

    agg = aggregate_spans(records)
    out = StringIO()
    out.write(
        f"{'span':>16} {'count':>7} {'wall ms':>10} {'bytes':>14} "
        f"{'flops':>14} {'B/F':>7}\n"
    )
    for name, e in sorted(
        agg.items(), key=lambda kv: kv[1]["seconds"], reverse=True
    ):
        bf = f"{e['bytes'] / e['flops']:7.3f}" if e["flops"] else f"{'-':>7}"
        out.write(
            f"{name:>16} {e['count']:>7} {e['seconds'] * 1e3:>10.3f} "
            f"{e['bytes']:>14,} {e['flops']:>14,} {bf}\n"
        )
    return out.getvalue()


def full_report(
    *,
    nx: int = 100,
    ny: int = 100,
    nz: int = 40,
    r: int = 32,
    m: int = 2000,
    nodes: int = 64,
    node: NodeConfig = PIZ_DAINT_NODE,
) -> str:
    """The complete model-driven performance analysis as text."""
    check_positive("nodes", nodes)
    n = 4 * nx * ny * nz
    sections = [
        ("ARCHITECTURES (paper Table II)", architecture_table()),
        ("ACCOUNTING (paper Table I, Eqs. (4)-(7))",
         balance_section(n, 13.0, r, m)),
        ("PRECISION PROFILES (Eqs. (5)-(7) per storage profile)",
         precision_balance_section(r, 13.0)),
        ("DEVICE ROOFLINES (paper Figs. 7, 8, 10)", device_section(r, 13.0)),
        ("NODE LEVEL (paper Fig. 11)", node_section(node, r)),
        ("CLUSTER (paper Fig. 12, Table III)",
         cluster_section((nx, ny, nz), nodes, m, r)),
    ]
    out = StringIO()
    for title, body in sections:
        out.write(f"\n== {title} ==\n{body}")
    return out.getvalue()
