"""Performance-report generation: the paper's analysis as one text blob.

``full_report(...)`` strings together the model pipeline for a given
problem configuration — Table-I accounting, code balances, per-device
rooflines, node prediction, cluster prediction — the way a performance
engineer would write it up. Used by the CLI (``python -m repro report``)
and handy in notebooks.
"""

from __future__ import annotations

from io import StringIO

from repro.perf.arch import ARCHITECTURES, PIZ_DAINT_NODE, NodeConfig
from repro.perf.balance import bmin, bmin_limit, kpm_flops, kpm_min_traffic, naive_balance
from repro.perf.roofline import (
    cpu_kernel_performance,
    custom_roofline,
    gpu_kernel_performance,
    node_performance,
)
from repro.util.validation import check_positive


def architecture_table() -> str:
    """Paper Table II as text."""
    out = StringIO()
    out.write(
        f"{'device':>8} {'kind':>5} {'clock':>7} {'cores':>6} "
        f"{'b GB/s':>7} {'LLC MiB':>8} {'peak GF/s':>10}\n"
    )
    for arch in ARCHITECTURES.values():
        out.write(
            f"{arch.name:>8} {arch.kind:>5} {arch.clock_mhz:>7.0f} "
            f"{arch.cores:>6} {arch.bandwidth_gbs:>7.1f} "
            f"{arch.llc_mib:>8.2f} {arch.peak_gflops:>10.1f}\n"
        )
    return out.getvalue()


def balance_section(n: int, nnzr: float, r: int, m: int) -> str:
    """Eq. (4)-(7) accounting for the given configuration."""
    nnz = int(nnzr * n)
    out = StringIO()
    out.write(f"problem: N = {n:,}, N_nz = {nnz:,} ({nnzr:.1f}/row), "
              f"R = {r}, M = {m}\n")
    out.write(f"total flops:           {kpm_flops(n, nnz, r, m):.3e}\n")
    for stage in ("naive", "aug_spmv", "aug_spmmv"):
        v = kpm_min_traffic(n, nnz, r, m, stage)
        out.write(f"V_KPM[{stage:>9}]:    {v:.3e} bytes\n")
    out.write(
        f"code balance: naive {naive_balance(nnzr):.3f}, "
        f"stage1 {bmin(1, nnzr):.3f}, stage2(R={r}) {bmin(r, nnzr):.3f}, "
        f"limit {bmin_limit(nnzr):.3f} bytes/flop\n"
    )
    return out.getvalue()


def device_section(r: int, nnzr: float) -> str:
    """Per-device roofline predictions for all three stages."""
    out = StringIO()
    out.write(f"{'device':>8} {'naive':>8} {'stage1':>8} "
              f"{'stage2(R)':>10} {'P*_LLC':>8}\n")
    for arch in ARCHITECTURES.values():
        if arch.kind == "cpu":
            vals = [
                cpu_kernel_performance(arch, s, r)
                for s in ("naive", "aug_spmv", "aug_spmmv")
            ]
            p_llc = custom_roofline(arch, r)["p_llc"]
        else:
            vals = [
                gpu_kernel_performance(arch, s, r)
                for s in ("naive", "aug_spmv", "aug_spmmv")
            ]
            p_llc = float("nan")
        out.write(
            f"{arch.name:>8} {vals[0]:>8.1f} {vals[1]:>8.1f} "
            f"{vals[2]:>10.1f} {p_llc:>8.1f}\n"
        )
    return out.getvalue()


def node_section(node: NodeConfig, r: int) -> str:
    """Fig. 11-style node summary."""
    out = StringIO()
    out.write(f"node: {node.name} "
              f"({len(node.cpus)} CPU + {len(node.gpus)} GPU)\n")
    for stage in ("naive", "aug_spmv", "aug_spmmv"):
        d = node_performance(node, stage, r)
        out.write(
            f"  {stage:>10}: cpu {d['cpu']:7.1f}  gpu {d['gpu']:7.1f}  "
            f"hetero {d['heterogeneous']:7.1f} Gflop/s "
            f"(eff {d['parallel_efficiency']:.0%})\n"
        )
    return out.getvalue()


def cluster_section(domain: tuple[int, int, int], nodes: int, m: int, r: int) -> str:
    """Fig. 12 / Table III-style cluster prediction."""
    # local import: repro.dist depends on repro.perf, not vice versa
    from repro.dist.scaling_model import ClusterModel

    cm = ClusterModel(r=r)
    out = StringIO()
    out.write(f"cluster: {nodes} x {cm.node.name} nodes, "
              f"domain {domain}, M = {m}\n")
    for variant in ("aug_spmv", "aug_spmmv*", "aug_spmmv"):
        tf = cm.solve_tflops(domain, nodes, m, variant=variant)
        nh = cm.node_hours(domain, nodes, m, variant=variant)
        out.write(f"  {variant:>11}: {tf:8.2f} Tflop/s, "
                  f"{nh:8.1f} node-hours\n")
    return out.getvalue()


def full_report(
    *,
    nx: int = 100,
    ny: int = 100,
    nz: int = 40,
    r: int = 32,
    m: int = 2000,
    nodes: int = 64,
    node: NodeConfig = PIZ_DAINT_NODE,
) -> str:
    """The complete model-driven performance analysis as text."""
    check_positive("nodes", nodes)
    n = 4 * nx * ny * nz
    sections = [
        ("ARCHITECTURES (paper Table II)", architecture_table()),
        ("ACCOUNTING (paper Table I, Eqs. (4)-(7))",
         balance_section(n, 13.0, r, m)),
        ("DEVICE ROOFLINES (paper Figs. 7, 8, 10)", device_section(r, 13.0)),
        ("NODE LEVEL (paper Fig. 11)", node_section(node, r)),
        ("CLUSTER (paper Fig. 12, Table III)",
         cluster_section((nx, ny, nz), nodes, m, r)),
    ]
    out = StringIO()
    for title, body in sections:
        out.write(f"\n== {title} ==\n{body}")
    return out.getvalue()
