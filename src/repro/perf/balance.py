"""Byte/flop accounting: paper Table I and code balance Eqs. (4)-(7).

Everything is parameterized exactly as in the paper:

* ``N``      — matrix dimension,
* ``N_nz``   — number of nonzeros,
* ``R``      — number of stochastic vectors / block width,
* ``M``      — number of Chebyshev moments (M/2 inner iterations),
* ``S_d``    — bytes per data element (16 for complex double),
* ``S_i``    — bytes per index element (4),
* ``F_a``    — flops per addition (2 complex),
* ``F_m``    — flops per multiplication (6 complex).

The same formulas are charged at runtime by the instrumented kernels in
:mod:`repro.sparse`, so the test suite can verify Table I against actual
kernel executions entry by entry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.constants import F_ADD, F_MUL, S_D, S_I

#: Flops per matrix row and inner iteration beyond the SpMV:
#: the paper's 7 F_a / 2 + 9 F_m / 2 (= 34 for complex arithmetic).
KPM_FLOPS_PER_ROW = 7 * F_ADD // 2 + 9 * F_MUL // 2


@dataclass(frozen=True)
class TrafficFlops:
    """A (bytes, flops) pair with convenience arithmetic."""

    bytes: float
    flops: float

    @property
    def balance(self) -> float:
        """Code balance in bytes/flop (inf when flops == 0)."""
        return self.bytes / self.flops if self.flops else float("inf")

    def __add__(self, other: "TrafficFlops") -> "TrafficFlops":
        return TrafficFlops(self.bytes + other.bytes, self.flops + other.flops)

    def __mul__(self, k: float) -> "TrafficFlops":
        return TrafficFlops(self.bytes * k, self.flops * k)

    __rmul__ = __mul__


def table1_min_bytes(
    func: str, n: int, nnz: int, s_d: int = S_D, s_i: int = S_I
) -> float:
    """Minimum bytes per call of each paper Fig. 3 function (Table I)."""
    per_call = {
        "spmv": nnz * (s_d + s_i) + 2 * n * s_d,
        "axpy": 3 * n * s_d,
        "scal": 2 * n * s_d,
        "nrm2": n * s_d,
        "dot": 2 * n * s_d,
    }
    try:
        return float(per_call[func])
    except KeyError:
        raise ValueError(
            f"unknown function {func!r}; Table I covers {sorted(per_call)}"
        ) from None


def table1_flops(
    func: str, n: int, nnz: int, f_a: int = F_ADD, f_m: int = F_MUL
) -> float:
    """Flops per call of each paper Fig. 3 function (Table I)."""
    per_call = {
        "spmv": nnz * (f_a + f_m),
        "axpy": n * (f_a + f_m),
        "scal": n * f_m,
        "nrm2": n * (f_a / 2 + f_m / 2),
        "dot": n * (f_a + f_m),
    }
    try:
        return float(per_call[func])
    except KeyError:
        raise ValueError(
            f"unknown function {func!r}; Table I covers {sorted(per_call)}"
        ) from None


def table1_calls(func: str, r: int, m: int) -> float:
    """Number of calls per full naive KPM solve (Table I, '# Calls')."""
    per_solver = {
        "spmv": r * m / 2,
        "axpy": r * m,
        "scal": r * m / 2,
        "nrm2": r * m / 2,
        "dot": r * m / 2,
    }
    try:
        return per_solver[func]
    except KeyError:
        raise ValueError(
            f"unknown function {func!r}; Table I covers {sorted(per_solver)}"
        ) from None


def kpm_min_traffic(
    n: int,
    nnz: int,
    r: int,
    m: int,
    stage: str = "aug_spmmv",
    s_d: int = S_D,
    s_i: int = S_I,
) -> float:
    """Total minimum solver traffic V_KPM in bytes — paper Eq. (4).

    =============  =================================================
    stage          V_KPM
    =============  =================================================
    ``naive``      R M/2 [N_nz (S_d + S_i) + 13 S_d N]
    ``aug_spmv``   R M/2 [N_nz (S_d + S_i) + 3 S_d N]
    ``aug_spmmv``    M/2 [N_nz (S_d + S_i) + 3 R S_d N]
    =============  =================================================
    """
    matrix = nnz * (s_d + s_i)
    if stage == "naive":
        return r * m / 2 * (matrix + 13 * s_d * n)
    if stage == "aug_spmv":
        return r * m / 2 * (matrix + 3 * s_d * n)
    if stage == "aug_spmmv":
        return m / 2 * (matrix + 3 * r * s_d * n)
    raise ValueError(
        f"stage must be 'naive', 'aug_spmv' or 'aug_spmmv', got {stage!r}"
    )


def kpm_flops(
    n: int, nnz: int, r: int, m: int, f_a: int = F_ADD, f_m: int = F_MUL
) -> float:
    """Total solver flops — Table I 'KPM' row (independent of the stage:
    the optimizations only move bytes, never flops; paper Section III)."""
    return r * m / 2 * (nnz * (f_a + f_m) + n * (7 * f_a / 2 + 9 * f_m / 2))


def bmin(
    r: int,
    nnzr: float = 13.0,
    s_d: int = S_D,
    s_i: int = S_I,
    f_a: int = F_ADD,
    f_m: int = F_MUL,
) -> float:
    """Minimum code balance of the blocked solver — paper Eq. (5).

    B_min(R) = [N_nzr / R (S_d + S_i) + 3 S_d]
               / [N_nzr (F_a + F_m) + 7 F_a/2 + 9 F_m/2]

    With the paper's parameters this is (260/R + 48) / 138 bytes/flop:
    ~2.23 at R = 1 (Eq. (6)) and -> ~0.35 for R -> inf (Eq. (7)).
    """
    if r < 1:
        raise ValueError(f"block width R must be >= 1, got {r}")
    num = nnzr / r * (s_d + s_i) + 3 * s_d
    den = nnzr * (f_a + f_m) + (7 * f_a / 2 + 9 * f_m / 2)
    return num / den


def bmin_limit(
    nnzr: float = 13.0,
    s_d: int = S_D,
    f_a: int = F_ADD,
    f_m: int = F_MUL,
) -> float:
    """R -> infinity limit of the code balance — paper Eq. (7) (~0.35)."""
    den = nnzr * (f_a + f_m) + (7 * f_a / 2 + 9 * f_m / 2)
    return 3 * s_d / den


def naive_balance(
    nnzr: float = 13.0,
    s_d: int = S_D,
    s_i: int = S_I,
    f_a: int = F_ADD,
    f_m: int = F_MUL,
) -> float:
    """Code balance of the naive algorithm (13 vector transfers/iter)."""
    num = nnzr * (s_d + s_i) + 13 * s_d
    den = nnzr * (f_a + f_m) + (7 * f_a / 2 + 9 * f_m / 2)
    return num / den
