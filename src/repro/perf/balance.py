"""Byte/flop accounting: paper Table I and code balance Eqs. (4)-(7).

Everything is parameterized exactly as in the paper:

* ``N``      — matrix dimension,
* ``N_nz``   — number of nonzeros,
* ``R``      — number of stochastic vectors / block width,
* ``M``      — number of Chebyshev moments (M/2 inner iterations),
* ``S_d``    — bytes per data element (16 for complex double),
* ``S_i``    — bytes per index element (4),
* ``F_a``    — flops per addition (2 complex),
* ``F_m``    — flops per multiplication (6 complex).

The same formulas are charged at runtime by the instrumented kernels in
:mod:`repro.sparse`, so the test suite can verify Table I against actual
kernel executions entry by entry.

Mixed precision splits ``S_d`` in two: the matrix-value stream width
``s_d`` and the vector storage width ``s_v`` (they differ in the fp16v
profile: complex64 values but float16 pair vectors).  Every formula
below takes an optional ``s_v`` (defaulting to ``s_d``, which keeps the
paper's single-S_d notation for the uniform profiles), and
:func:`precision_widths` resolves the three stream widths of a
:class:`~repro.util.precision.Precision` profile in one call.  The
flops never change — precision moves bytes only, exactly like the
paper's blocking optimizations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.constants import F_ADD, F_MUL, S_D, S_I
from repro.util.precision import S_I_NARROW, get_precision

#: Flops per matrix row and inner iteration beyond the SpMV:
#: the paper's 7 F_a / 2 + 9 F_m / 2 (= 34 for complex arithmetic).
KPM_FLOPS_PER_ROW = 7 * F_ADD // 2 + 9 * F_MUL // 2


@dataclass(frozen=True)
class TrafficFlops:
    """A (bytes, flops) pair with convenience arithmetic."""

    bytes: float
    flops: float

    @property
    def balance(self) -> float:
        """Code balance in bytes/flop (inf when flops == 0)."""
        return self.bytes / self.flops if self.flops else float("inf")

    def __add__(self, other: "TrafficFlops") -> "TrafficFlops":
        return TrafficFlops(self.bytes + other.bytes, self.flops + other.flops)

    def __mul__(self, k: float) -> "TrafficFlops":
        return TrafficFlops(self.bytes * k, self.flops * k)

    __rmul__ = __mul__


def precision_widths(
    precision=None, n_cols: int | None = None
) -> tuple[int, int, int]:
    """``(s_d, s_v, s_i)`` stream widths of a storage profile.

    ``n_cols`` decides uint16 index eligibility for the narrow profiles;
    when omitted, eligibility is assumed — the distributed partition
    renumbers rank-local columns into [local | halo] order, so
    production narrow runs stream uint16 indices.  The fp64 profile
    always returns the paper's (16, 16, 4).
    """
    prec = get_precision(precision)
    if n_cols is None:
        s_i = S_I_NARROW if prec.narrow_indices else S_I
    else:
        s_i = prec.index_bytes(n_cols)
    return prec.s_value, prec.s_vector, s_i


def table1_min_bytes(
    func: str, n: int, nnz: int, s_d: int = S_D, s_i: int = S_I
) -> float:
    """Minimum bytes per call of each paper Fig. 3 function (Table I)."""
    per_call = {
        "spmv": nnz * (s_d + s_i) + 2 * n * s_d,
        "axpy": 3 * n * s_d,
        "scal": 2 * n * s_d,
        "nrm2": n * s_d,
        "dot": 2 * n * s_d,
    }
    try:
        return float(per_call[func])
    except KeyError:
        raise ValueError(
            f"unknown function {func!r}; Table I covers {sorted(per_call)}"
        ) from None


def table1_flops(
    func: str, n: int, nnz: int, f_a: int = F_ADD, f_m: int = F_MUL
) -> float:
    """Flops per call of each paper Fig. 3 function (Table I)."""
    per_call = {
        "spmv": nnz * (f_a + f_m),
        "axpy": n * (f_a + f_m),
        "scal": n * f_m,
        "nrm2": n * (f_a / 2 + f_m / 2),
        "dot": n * (f_a + f_m),
    }
    try:
        return float(per_call[func])
    except KeyError:
        raise ValueError(
            f"unknown function {func!r}; Table I covers {sorted(per_call)}"
        ) from None


def table1_calls(func: str, r: int, m: int) -> float:
    """Number of calls per full naive KPM solve (Table I, '# Calls')."""
    per_solver = {
        "spmv": r * m / 2,
        "axpy": r * m,
        "scal": r * m / 2,
        "nrm2": r * m / 2,
        "dot": r * m / 2,
    }
    try:
        return per_solver[func]
    except KeyError:
        raise ValueError(
            f"unknown function {func!r}; Table I covers {sorted(per_solver)}"
        ) from None


def kpm_min_traffic(
    n: int,
    nnz: int,
    r: int,
    m: int,
    stage: str = "aug_spmmv",
    s_d: int = S_D,
    s_i: int = S_I,
    s_v: int | None = None,
) -> float:
    """Total minimum solver traffic V_KPM in bytes — paper Eq. (4).

    =============  =================================================
    stage          V_KPM
    =============  =================================================
    ``naive``      R M/2 [N_nz (S_d + S_i) + 13 S_v N]
    ``aug_spmv``   R M/2 [N_nz (S_d + S_i) + 3 S_v N]
    ``aug_spmmv``    M/2 [N_nz (S_d + S_i) + 3 R S_v N]
    =============  =================================================

    ``s_v`` (vector storage width) defaults to ``s_d``, the paper's
    uniform-precision notation; the fp16v profile passes s_d=8, s_v=4.
    """
    s_x = s_d if s_v is None else s_v
    matrix = nnz * (s_d + s_i)
    if stage == "naive":
        return r * m / 2 * (matrix + 13 * s_x * n)
    if stage == "aug_spmv":
        return r * m / 2 * (matrix + 3 * s_x * n)
    if stage == "aug_spmmv":
        return m / 2 * (matrix + 3 * r * s_x * n)
    raise ValueError(
        f"stage must be 'naive', 'aug_spmv' or 'aug_spmmv', got {stage!r}"
    )


def kpm_flops(
    n: int, nnz: int, r: int, m: int, f_a: int = F_ADD, f_m: int = F_MUL
) -> float:
    """Total solver flops — Table I 'KPM' row (independent of the stage:
    the optimizations only move bytes, never flops; paper Section III)."""
    return r * m / 2 * (nnz * (f_a + f_m) + n * (7 * f_a / 2 + 9 * f_m / 2))


def bmin(
    r: int,
    nnzr: float = 13.0,
    s_d: int = S_D,
    s_i: int = S_I,
    f_a: int = F_ADD,
    f_m: int = F_MUL,
    s_v: int | None = None,
) -> float:
    """Minimum code balance of the blocked solver — paper Eq. (5).

    B_min(R) = [N_nzr / R (S_d + S_i) + 3 S_v]
               / [N_nzr (F_a + F_m) + 7 F_a/2 + 9 F_m/2]

    With the paper's parameters (S_v = S_d = 16) this is
    (260/R + 48) / 138 bytes/flop: ~2.23 at R = 1 (Eq. (6)) and
    -> ~0.35 for R -> inf (Eq. (7)).  The narrow profiles pass their
    own widths (fp32: 8/8/2 -> half the balance at every R; fp16v:
    8/4/2 -> the R -> inf limit drops 4x to ~0.087).
    """
    if r < 1:
        raise ValueError(f"block width R must be >= 1, got {r}")
    s_x = s_d if s_v is None else s_v
    num = nnzr / r * (s_d + s_i) + 3 * s_x
    den = nnzr * (f_a + f_m) + (7 * f_a / 2 + 9 * f_m / 2)
    return num / den


def bmin_limit(
    nnzr: float = 13.0,
    s_d: int = S_D,
    f_a: int = F_ADD,
    f_m: int = F_MUL,
) -> float:
    """R -> infinity limit of the code balance — paper Eq. (7) (~0.35).

    Only the three block-vector streams survive the limit, so ``s_d``
    here is the *vector* storage width: narrow profiles pass their
    ``s_vector`` (8 for fp32, 4 for fp16v).
    """
    den = nnzr * (f_a + f_m) + (7 * f_a / 2 + 9 * f_m / 2)
    return 3 * s_d / den


def naive_balance(
    nnzr: float = 13.0,
    s_d: int = S_D,
    s_i: int = S_I,
    f_a: int = F_ADD,
    f_m: int = F_MUL,
    s_v: int | None = None,
) -> float:
    """Code balance of the naive algorithm (13 vector transfers/iter)."""
    s_x = s_d if s_v is None else s_v
    num = nnzr * (s_d + s_i) + 13 * s_x
    den = nnzr * (f_a + f_m) + (7 * f_a / 2 + 9 * f_m / 2)
    return num / den
