"""Performance-model substrate: architectures, balance, rooflines, caches.

Implements the paper's entire modelling apparatus:

* :mod:`repro.perf.arch` — the benchmark systems of paper Table II.
* :mod:`repro.perf.balance` — the byte/flop accounting of paper Table I
  and the code-balance formulas Eqs. (4)-(7).
* :mod:`repro.perf.roofline` — the roofline model Eq. (9), the
  LLC-refined custom roofline Eq. (11), and the GPU timing model behind
  Figs. 10-11.
* :mod:`repro.perf.traffic` — analytic per-memory-level traffic models
  (DRAM / L2 / texture cache) for all kernel variants (Figs. 9-10).
* :mod:`repro.perf.cachesim` — an LRU cache simulator measuring the
  actual transfer volume V_meas, hence Omega = V_meas / V_KPM (Eq. (8)).
"""

from repro.perf.arch import (
    Architecture,
    IVB,
    SNB,
    K20M,
    K20X,
    NodeConfig,
    EMMY_NODE,
    PIZ_DAINT_NODE,
    ARCHITECTURES,
)
from repro.perf.balance import (
    TrafficFlops,
    table1_min_bytes,
    table1_flops,
    kpm_min_traffic,
    kpm_flops,
    bmin,
    bmin_limit,
    KPM_FLOPS_PER_ROW,
)
from repro.perf.roofline import (
    roofline,
    memory_bound_performance,
    llc_code_balance,
    custom_roofline,
    cpu_kernel_performance,
    gpu_kernel_performance,
    node_performance,
)
from repro.perf.traffic import gpu_level_traffic, omega_parametric
from repro.perf.cachesim import LRUCache, simulate_kpm_omega, kpm_access_stream
from repro.perf.energy import EnergyModel, variant_energy_table
from repro.perf.report import full_report

__all__ = [
    "Architecture",
    "IVB",
    "SNB",
    "K20M",
    "K20X",
    "NodeConfig",
    "EMMY_NODE",
    "PIZ_DAINT_NODE",
    "ARCHITECTURES",
    "TrafficFlops",
    "table1_min_bytes",
    "table1_flops",
    "kpm_min_traffic",
    "kpm_flops",
    "bmin",
    "bmin_limit",
    "KPM_FLOPS_PER_ROW",
    "roofline",
    "memory_bound_performance",
    "llc_code_balance",
    "custom_roofline",
    "cpu_kernel_performance",
    "gpu_kernel_performance",
    "node_performance",
    "gpu_level_traffic",
    "omega_parametric",
    "LRUCache",
    "simulate_kpm_omega",
    "kpm_access_stream",
    "EnergyModel",
    "variant_energy_table",
    "full_report",
]
