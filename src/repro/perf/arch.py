"""Architecture models — paper Table II plus calibrated cache parameters.

The four devices of the paper:

===========  ======  =====  ======  ====  =====  =======
device       clock   SIMD   cores/  b     LLC    P_peak
             (MHz)   bytes  SMX     GB/s  MiB    Gflop/s
===========  ======  =====  ======  ====  =====  =======
IVB          2200    32     10      50    25     176
SNB          2600    32     8       48    20     166.4
K20m         706     512    13      150   1.25   1174
K20X         732     512    14      170   1.5    1311
===========  ======  =====  ======  ====  =====  =======

(IVB = Intel Xeon E5-2660 v2, fixed clock; SNB = Intel Xeon E5-2670,
turbo; K20m ECC off; K20X ECC on. For the GPUs, "cores" is the SMX count
and LLC is the L2 cache.)

Fields beyond Table II (cache-level bandwidths, in-core efficiency,
latency penalty of in-kernel reductions) are *calibrated* against the
paper's measured Figs. 7, 8, 10, 11 — they are inputs to the reproduction
in the same way the measured attainable bandwidth b is an input to the
paper's own roofline model. Calibration rationale is given per field.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Architecture:
    """One compute device (CPU socket or GPU card).

    Attributes mirror paper Table II; see module docstring for the
    provenance of the calibrated extras.
    """

    name: str
    kind: str  # "cpu" | "gpu"
    clock_mhz: float
    simd_bytes: int
    cores: int  # physical cores (CPU) or SMX units (GPU)
    bandwidth_gbs: float  # attainable main-memory bandwidth b
    llc_mib: float
    peak_gflops: float

    # -- calibrated, non-Table-II fields --------------------------------
    #: LLC (L3 on CPU, L2 on GPU) attainable bandwidth in GB/s. CPU values
    #: chosen so the custom roofline Eq. (11) saturates near the measured
    #: ~65 Gflop/s of paper Fig. 8 (IVB); GPU values so the L2 curves of
    #: paper Fig. 10 saturate in the 550-650 GB/s band.
    llc_bandwidth_gbs: float = 0.0
    #: Texture/read-only cache bandwidth (GPU only); Fig. 10 TEX curves
    #: saturate around 800 GB/s.
    tex_bandwidth_gbs: float = 0.0
    #: Fraction of per-core peak reachable by the fused complex kernel
    #: when it is core-bound (CPU; Fig. 7 shows ~7 Gflop/s per IVB core).
    incore_efficiency: float = 0.4
    #: Throughput multiplier (< 1) when the on-the-fly dot products make
    #: the GPU kernel latency-bound (paper Fig. 10(c): "all measured
    #: bandwidths are at a significantly lower level").
    dot_latency_efficiency: float = 0.55
    #: Throughput multiplier (<= 1) for the *naive* algorithm's chain of
    #: separate BLAS-1 kernels: per-kernel launch/synchronization overhead
    #: and the separate reduction kernels keep the naive code below its
    #: bandwidth ceiling (calibrated against paper Fig. 11's naive bars).
    blas1_efficiency: float = 1.0
    #: Threads per warp (GPU).
    warp_size: int = 32

    @property
    def peak_per_core_gflops(self) -> float:
        """Peak of one core (CPU) or one SMX (GPU)."""
        return self.peak_gflops / self.cores

    @property
    def machine_balance(self) -> float:
        """Machine balance b / P_peak in bytes/flop."""
        return self.bandwidth_gbs / self.peak_gflops

    @property
    def llc_bytes(self) -> int:
        return int(self.llc_mib * 1024 * 1024)


#: Intel Xeon E5-2660 v2 "Ivy Bridge", 10 cores, fixed 2.2 GHz.
IVB = Architecture(
    name="IVB", kind="cpu", clock_mhz=2200, simd_bytes=32, cores=10,
    bandwidth_gbs=50.0, llc_mib=25.0, peak_gflops=176.0,
    llc_bandwidth_gbs=120.0, incore_efficiency=0.40, blas1_efficiency=0.85,
)

#: Intel Xeon E5-2670 "Sandy Bridge", 8 cores, turbo (Piz Daint host CPU).
SNB = Architecture(
    name="SNB", kind="cpu", clock_mhz=2600, simd_bytes=32, cores=8,
    bandwidth_gbs=48.0, llc_mib=20.0, peak_gflops=166.4,
    llc_bandwidth_gbs=110.0, incore_efficiency=0.40, blas1_efficiency=0.85,
)

#: NVIDIA Tesla K20m (Kepler GK110), ECC disabled (Emmy GPUs).
K20M = Architecture(
    name="K20m", kind="gpu", clock_mhz=706, simd_bytes=512, cores=13,
    bandwidth_gbs=150.0, llc_mib=1.25, peak_gflops=1174.0,
    llc_bandwidth_gbs=550.0, tex_bandwidth_gbs=850.0,
    dot_latency_efficiency=0.26, blas1_efficiency=0.74,
)

#: NVIDIA Tesla K20X (Kepler GK110), ECC enabled (Piz Daint GPUs).
K20X = Architecture(
    name="K20X", kind="gpu", clock_mhz=732, simd_bytes=512, cores=14,
    bandwidth_gbs=170.0, llc_mib=1.5, peak_gflops=1311.0,
    llc_bandwidth_gbs=600.0, tex_bandwidth_gbs=900.0,
    dot_latency_efficiency=0.26, blas1_efficiency=0.74,
)

#: Intel Xeon Phi 5110P "Knights Corner" — the paper's outlook device
#: ("Although the Intel Xeon Phi coprocessor is already supported in our
#: software, we still have to carry out detailed model-driven performance
#: engineering for this architecture", Section VII). Not part of Table II;
#: parameters from the product specification and published STREAM numbers
#: (60 cores at 1053 MHz, 512-bit SIMD, ~150 GB/s attainable, 30 MiB of
#: distributed L2 acting as the LLC, 1011 Gflop/s DP peak). The in-core
#: efficiency is lower than on the big cores: the fused complex kernel
#: needs gather support and masking that KNC handles poorly.
KNC = Architecture(
    name="KNC", kind="cpu", clock_mhz=1053, simd_bytes=64, cores=60,
    bandwidth_gbs=150.0, llc_mib=30.0, peak_gflops=1011.0,
    llc_bandwidth_gbs=300.0, incore_efficiency=0.12, blas1_efficiency=0.8,
)

#: Registry by name.
ARCHITECTURES: dict[str, Architecture] = {
    a.name: a for a in (IVB, SNB, K20M, K20X, KNC)
}


@dataclass(frozen=True)
class NodeConfig:
    """A heterogeneous compute node: CPU sockets plus GPU cards.

    ``gpu_management_cores`` CPU cores per GPU are "sacrificed" to host
    code and kernel launches (paper Section VI-A: one core per GPU), so
    they do not contribute to the CPU kernel performance.
    """

    name: str
    cpus: tuple[Architecture, ...]
    gpus: tuple[Architecture, ...]
    gpu_management_cores: int = 1
    #: PCI Express bandwidth for host<->device staging of halo buffers.
    pcie_bandwidth_gbs: float = 6.0
    pcie_latency_us: float = 10.0

    @property
    def aggregate_peak_gflops(self) -> float:
        return sum(a.peak_gflops for a in self.cpus) + sum(
            a.peak_gflops for a in self.gpus
        )

    @property
    def devices(self) -> tuple[Architecture, ...]:
        return self.cpus + self.gpus

    def cpu_compute_cores(self, cpu: Architecture) -> int:
        """Cores of ``cpu`` left for compute after GPU management.

        GPU-management cores are distributed one per GPU across the CPU
        sockets round-robin (each socket of Emmy manages its own GPU;
        the single Piz Daint socket manages the single GPU).
        """
        gpus_per_socket = len(self.gpus) / max(len(self.cpus), 1)
        sacrificed = int(round(gpus_per_socket * self.gpu_management_cores))
        return max(cpu.cores - sacrificed, 1)


#: Emmy cluster node (RRZE): 2 x IVB + 2 x K20m.
EMMY_NODE = NodeConfig(name="Emmy", cpus=(IVB, IVB), gpus=(K20M, K20M))

#: Piz Daint (CSCS) Cray XC30 node: 1 x SNB + 1 x K20X.
PIZ_DAINT_NODE = NodeConfig(name="PizDaint", cpus=(SNB,), gpus=(K20X,))
