"""Analytic per-memory-level traffic models (paper Figs. 9 and 10).

The paper measures, with nvprof, the data volume moved through DRAM, the
L2 cache, and the texture (read-only data) cache of the Kepler GPU while
running three kernel variants at varying block width R. The qualitative
findings (paper Section V-B) that this module reproduces analytically:

* DRAM volume **per block vector** *decreases* with R — the matrix
  stream (the dominant term at small R) is amortized over R vectors.
* Texture-cache volume per block vector *increases linearly* with R —
  "the scalar matrix data is broadcast to the threads in a warp via this
  cache", and the number of broadcast targets per matrix element grows
  with the number of vector lanes.
* L2 volume stays comparatively flat: it carries the gathered input
  vector rows and the index stream.

The model is validated at small scale against the functional GPU
simulator (:mod:`repro.hw.gpu`), which counts transactions of the actual
Fig. 6 thread mapping, and against the cache simulator for the CPU side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.arch import Architecture
from repro.util.constants import S_D, S_I


@dataclass(frozen=True)
class LevelTraffic:
    """Bytes moved through each memory level for one kernel invocation."""

    dram: float
    l2: float
    tex: float

    def per_vector(self, r: int) -> "LevelTraffic":
        """Normalize to one block-vector column (the paper's Fig. 9 unit)."""
        return LevelTraffic(self.dram / r, self.l2 / r, self.tex / r)


def omega_parametric(
    r: int,
    n: int,
    nnzr: float,
    cache_bytes: float,
    stencil_rows: float,
    s_d: int = S_D,
    s_i: int = S_I,
    s_v: int | None = None,
) -> float:
    """Parametric model for Omega = V_meas / V_KPM (paper Eq. (8)).

    The input-vector rows of a stencil matrix are reused across the
    ``stencil_rows`` matrix rows spanned by the stencil (for the TI
    matrix: ~ 2 * 4 Nx Ny rows between the z-neighbor diagonals). The
    block-vector working set inside that reuse window is
    ``fp = stencil_rows * R * S_d``; once it exceeds about half the last
    level cache, gathered rows start being evicted between uses and get
    re-read from memory — up to 2 extra reads of the full input block
    (one per stencil wing). This matches the measured Omega annotations
    of paper Fig. 8 (Omega ~ 1 at small R up to ~1.5 at R = 32 on IVB).

    Returns Omega >= 1 for one inner iteration of the blocked solver.

    ``s_v`` is the vector storage width (defaults to ``s_d``): narrow
    vectors shrink the reuse-window footprint, so a profile like fp16v
    doubles the R at which cache pressure sets in.
    """
    if r < 1:
        raise ValueError(f"R must be >= 1, got {r}")
    s_x = s_d if s_v is None else s_v
    v_min = nnzr * n * (s_d + s_i) + 3 * r * n * s_x
    footprint = stencil_rows * r * s_x
    half_cache = cache_bytes / 2.0
    excess = max(0.0, (footprint - half_cache) / half_cache)
    extra_reads = min(2.0, excess)
    v_extra = extra_reads * r * n * s_x
    return 1.0 + v_extra / v_min


def gpu_level_traffic(
    kernel: str,
    r: int,
    n: int,
    nnzr: float,
    arch: Architecture,
    s_d: int = S_D,
    s_i: int = S_I,
    s_v: int | None = None,
) -> LevelTraffic:
    """Per-call traffic through DRAM / L2 / TEX for one kernel invocation.

    ``kernel`` is one of

    * ``'spmmv'``        — plain SpMMV (paper Fig. 10(a), Fig. 9),
    * ``'aug_spmmv_nodot'`` — augmented, dots separate (Fig. 10(b)),
    * ``'aug_spmmv'``    — fully augmented with on-the-fly dots
      (Fig. 10(c); same traffic as (b), lower *bandwidths* because the
      kernel becomes latency-bound — handled by the timing model).

    Model terms:

    * DRAM: the compulsory stream — matrix data+indices once, plus the
      vector blocks (2 N R S_d for plain SpMMV: read X, write Y; the
      augmented variants add the read of W), inflated by the cache-
      pressure factor of :func:`omega_parametric` applied to the gathered
      input block.
    * L2: all vector-gather requests (N_nz R S_d — every matrix entry
      gathers one row of X through L2) plus the index stream.
    * TEX: matrix-data broadcasts; each matrix element is requested by
      the R lanes covering its row, so the request volume seen by the
      texture cache is N_nz R S_d (linear in R per block vector).
    """
    if kernel not in ("spmmv", "aug_spmmv_nodot", "aug_spmmv"):
        raise ValueError(f"unknown kernel variant {kernel!r}")
    s_x = s_d if s_v is None else s_v
    nnz = nnzr * n
    matrix_bytes = nnz * (s_d + s_i)
    vec_streams = 2 if kernel == "spmmv" else 3
    omega = omega_parametric(
        r, n, nnzr, arch.llc_bytes,
        stencil_rows=max(nnz / n, 1.0) * 2.0,  # generic stencil span proxy
        s_d=s_d, s_i=s_i, s_v=s_x,
    )
    # On the GPU the L2 is far too small to hold the gather window at all
    # realistic sizes; extra input-vector reads appear once R > warp_size/4.
    gather_refactor = 1.0 + min(1.0, r / arch.warp_size)
    dram = matrix_bytes + vec_streams * r * n * s_x + (
        (gather_refactor - 1.0) * r * n * s_x
    )
    # vector gathers through L2 move storage-width rows; the texture
    # cache broadcasts *matrix* values, so its stream keeps s_d
    l2 = nnz * r * s_x + nnz * s_i + vec_streams * r * n * s_x
    tex = nnz * r * s_d  # exactly linear in R (index stream goes via L2)
    return LevelTraffic(dram=dram * omega, l2=l2, tex=tex)
