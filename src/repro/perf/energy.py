"""Energy-to-solution model.

The paper's introduction motivates heterogeneous execution with
"performance and energy efficiency", and its Ref. [15] (Anzt et al.)
reports energy results for blocked SpMMV on GPUs. This module adds the
corresponding first-order model: device power draw (TDP-based, with an
idle fraction while a device waits), integrated over the modeled solve
time — enough to rank the solver variants by energy, which is the
decision the node-hours of Table III already imply.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.arch import Architecture, NodeConfig, PIZ_DAINT_NODE
from repro.util.validation import check_positive

#: Thermal design power in watts (vendor specifications).
DEVICE_TDP_W: dict[str, float] = {
    "IVB": 95.0,
    "SNB": 115.0,
    "K20m": 225.0,
    "K20X": 235.0,
    "KNC": 225.0,
}

#: Share of TDP a device burns while idling in a busy node.
IDLE_FRACTION = 0.35

#: Non-device node overhead (memory, NIC, blades) in watts.
NODE_OVERHEAD_W = 100.0


@dataclass(frozen=True)
class EnergyModel:
    """Node-level power/energy accounting."""

    node: NodeConfig = PIZ_DAINT_NODE
    idle_fraction: float = IDLE_FRACTION
    overhead_w: float = NODE_OVERHEAD_W

    def device_power(self, arch: Architecture, active: bool = True) -> float:
        """Power draw of one device in watts."""
        try:
            tdp = DEVICE_TDP_W[arch.name]
        except KeyError:
            raise ValueError(f"no TDP on record for {arch.name!r}") from None
        return tdp if active else self.idle_fraction * tdp

    def node_power(
        self, *, cpus_active: bool = True, gpus_active: bool = True
    ) -> float:
        """Node power for a given activity pattern, in watts."""
        p = self.overhead_w
        p += sum(self.device_power(c, cpus_active) for c in self.node.cpus)
        p += sum(self.device_power(g, gpus_active) for g in self.node.gpus)
        return p

    def energy_to_solution_kwh(
        self,
        solve_seconds: float,
        n_nodes: int,
        *,
        cpus_active: bool = True,
        gpus_active: bool = True,
    ) -> float:
        """Total cluster energy for one solve, in kWh."""
        check_positive("n_nodes", n_nodes)
        if solve_seconds < 0:
            raise ValueError(f"solve time must be >= 0, got {solve_seconds}")
        watts = self.node_power(
            cpus_active=cpus_active, gpus_active=gpus_active
        )
        return watts * n_nodes * solve_seconds / 3.6e6


def variant_energy_table(
    domain: tuple[int, int, int] = (6400, 6400, 40),
    m: int = 2000,
    r: int = 32,
) -> list[dict]:
    """Energy comparison of the Table III solver variants.

    Throughput mode (stage 1) keeps every device powered for >2x the
    time, so its energy penalty mirrors — and slightly exceeds — its
    node-hour penalty. Returns one dict per variant.
    """
    from repro.dist.scaling_model import ClusterModel

    cm = ClusterModel(r=r)
    em = EnergyModel(node=cm.node)
    rows = []
    for variant, nodes in (
        ("aug_spmv", 288), ("aug_spmmv*", 1024), ("aug_spmmv", 1024)
    ):
        t = cm.solve_time(domain, nodes, m, variant=variant)
        rows.append(
            {
                "variant": variant,
                "nodes": nodes,
                "seconds": t,
                "node_hours": t * nodes / 3600.0,
                "energy_kwh": em.energy_to_solution_kwh(t, nodes),
            }
        )
    return rows
