"""Roofline models: paper Eqs. (9)-(11) and the device timing models.

* :func:`roofline` — the classic model P* = min(P_peak, b / B) (Eq. (9)).
* :func:`custom_roofline` — the paper's refinement Eq. (11),
  P* = min(P*_MEM, P*_LLC), for kernels decoupled from main memory.
* :func:`cpu_kernel_performance` / :func:`gpu_kernel_performance` —
  complete per-device predictions for all three optimization stages,
  combining code balance, Omega, the LLC bound, in-core throughput, and
  (GPU) the latency penalty of in-kernel reductions. These feed the
  node-level (Fig. 11) and cluster-level (Fig. 12, Table III) models.
"""

from __future__ import annotations

from repro.perf.arch import Architecture, NodeConfig
from repro.perf.balance import (
    KPM_FLOPS_PER_ROW,
    bmin,
    naive_balance,
    precision_widths,
)
from repro.perf.traffic import gpu_level_traffic, omega_parametric
from repro.util.constants import BYTES_PER_GB, F_ADD, F_MUL, S_D, S_I


def roofline(peak_gflops: float, bandwidth_gbs: float, balance: float) -> float:
    """Paper Eq. (9): P* = min(P_peak, b / B) in Gflop/s.

    ``balance`` is the code balance B in bytes/flop; b/B has units
    (GB/s)/(B/F) = Gflop/s.
    """
    if balance <= 0:
        raise ValueError(f"code balance must be positive, got {balance}")
    return min(peak_gflops, bandwidth_gbs / balance)


def memory_bound_performance(bandwidth_gbs: float, balance: float) -> float:
    """Paper Eq. (10): P*_MEM = b / B."""
    if balance <= 0:
        raise ValueError(f"code balance must be positive, got {balance}")
    return bandwidth_gbs / balance


def llc_code_balance(
    r: int,
    nnzr: float = 13.0,
    s_d: int = S_D,
    s_i: int = S_I,
    f_a: int = F_ADD,
    f_m: int = F_MUL,
    s_v: int | None = None,
) -> float:
    """Cache-level code balance B_LLC(R) of the blocked fused kernel.

    Traffic seen by the last level cache per inner iteration: the matrix
    stream passes through once (N_nz (S_d + S_i)), every vector gather is
    served by the LLC (N_nz R S_d), and the three block-vector streams
    (read V, read W, write W) pass through as well (3 R N S_d). This is
    the quantity the paper obtains empirically by benchmarking an
    in-cache working set (Section V-A); dividing the LLC bandwidth by it
    gives P*_LLC of Eq. (11).
    """
    if r < 1:
        raise ValueError(f"R must be >= 1, got {r}")
    s_x = s_d if s_v is None else s_v
    bytes_per_row = nnzr * (s_d + s_i) / r + nnzr * s_x + 3 * s_x
    flops_per_row = nnzr * (f_a + f_m) + KPM_FLOPS_PER_ROW
    return bytes_per_row / flops_per_row


def custom_roofline(
    arch: Architecture,
    r: int,
    nnzr: float = 13.0,
    omega: float = 1.0,
    precision=None,
) -> dict[str, float]:
    """Paper Eq. (11): P* = min(P*_MEM, P*_LLC) for the blocked kernel.

    Returns the components too, so benches can plot the bound crossover
    of paper Fig. 8: ``{"p_mem", "p_llc", "p_star"}`` in Gflop/s.
    ``precision`` swaps in a narrow profile's stream widths everywhere
    (both bounds rise — the kernel moves fewer bytes per flop).
    """
    s_d, s_v, s_i = precision_widths(precision)
    balance = omega * bmin(r, nnzr, s_d=s_d, s_i=s_i, s_v=s_v)
    p_mem = memory_bound_performance(arch.bandwidth_gbs, balance)
    p_llc = arch.llc_bandwidth_gbs / llc_code_balance(
        r, nnzr, s_d=s_d, s_i=s_i, s_v=s_v
    )
    return {
        "p_mem": min(p_mem, arch.peak_gflops),
        "p_llc": min(p_llc, arch.peak_gflops),
        "p_star": min(p_mem, p_llc, arch.peak_gflops),
    }


def cpu_kernel_performance(
    arch: Architecture,
    stage: str,
    r: int = 1,
    *,
    cores: int | None = None,
    n: int | None = None,
    nnzr: float = 13.0,
    stencil_rows: float | None = None,
    rfo: bool = True,
    precision=None,
) -> float:
    """Predicted CPU Gflop/s for one optimization stage.

    Combines three ceilings:

    * in-core execution: ``cores * peak_per_core * incore_efficiency``
      (the linear regime of paper Fig. 7),
    * main memory: ``b / (Omega * B(stage, R))``,
    * last level cache: ``b_LLC / B_LLC(R)`` (blocked kernel only).

    ``n``/``stencil_rows`` feed the parametric Omega model; with the
    defaults Omega = 1 (the best case, as in the paper's Fig. 7 roofline).
    """
    if arch.kind != "cpu":
        raise ValueError(f"{arch.name} is not a CPU")
    cores = arch.cores if cores is None else cores
    if not 1 <= cores <= arch.cores:
        raise ValueError(f"cores must be in [1, {arch.cores}], got {cores}")
    core_frac = cores / arch.cores
    p_core = cores * arch.peak_per_core_gflops * arch.incore_efficiency

    s_d, s_v, s_i = precision_widths(precision)
    omega = 1.0
    if n is not None and stencil_rows is not None:
        omega = omega_parametric(
            r, n, nnzr, arch.llc_bytes, stencil_rows, s_d=s_d, s_i=s_i,
            s_v=s_v,
        )

    # write-allocate (RFO) traffic: every vector store first loads the
    # target line, adding S_v per stored element on x86 CPUs. Table I is
    # *minimum* traffic; the actual-performance model must include RFO.
    flops_per_row = nnzr * (F_ADD + F_MUL) + KPM_FLOPS_PER_ROW
    if stage == "naive":
        # 4 vector stores per row and iteration (u twice, w twice)
        balance = omega * naive_balance(nnzr, s_d=s_d, s_i=s_i, s_v=s_v) \
            + (4 * s_v if rfo else 0) / flops_per_row
        return min(
            p_core, arch.blas1_efficiency * arch.bandwidth_gbs / balance
        )
    if stage == "aug_spmv":
        # single store (w)
        balance = omega * bmin(1, nnzr, s_d=s_d, s_i=s_i, s_v=s_v) \
            + (s_v if rfo else 0) / flops_per_row
        return min(p_core, arch.bandwidth_gbs / balance)
    if stage == "aug_spmmv":
        # R stores per row -> S_v per flop-normalized R
        balance = omega * bmin(r, nnzr, s_d=s_d, s_i=s_i, s_v=s_v) \
            + (s_v if rfo else 0) / flops_per_row
        p_mem = arch.bandwidth_gbs / balance
        # LLC bandwidth scales with the active cores (distributed L3 slices)
        p_llc = core_frac * arch.llc_bandwidth_gbs / llc_code_balance(
            r, nnzr, s_d=s_d, s_i=s_i, s_v=s_v
        )
        return min(p_core, p_mem, p_llc)
    raise ValueError(
        f"stage must be 'naive', 'aug_spmv' or 'aug_spmmv', got {stage!r}"
    )


def gpu_kernel_performance(
    arch: Architecture,
    stage: str,
    r: int = 1,
    *,
    n: int = 1_600_000,
    nnzr: float = 13.0,
    precision=None,
) -> float:
    """Predicted GPU Gflop/s for one optimization stage.

    Builds the per-call time as the maximum over the per-level transfer
    times (DRAM, L2, texture cache — volumes from
    :func:`repro.perf.traffic.gpu_level_traffic`) and the in-core flop
    time, then applies the latency-efficiency penalty for kernels with
    on-the-fly reductions (paper Fig. 10(c): with dot products the kernel
    is latency- rather than bandwidth-bound).
    """
    if arch.kind != "gpu":
        raise ValueError(f"{arch.name} is not a GPU")
    nnz = nnzr * n
    s_d, s_v, s_i = precision_widths(precision)
    if stage == "naive":
        # separate BLAS-1 kernels: memory bound at the naive balance,
        # derated by per-kernel launch and separate-reduction overhead
        return min(
            arch.peak_gflops,
            arch.blas1_efficiency * arch.bandwidth_gbs
            / naive_balance(nnzr, s_d=s_d, s_i=s_i, s_v=s_v),
        )
    if stage == "aug_spmv":
        # Stage 1 uses the classic SpMV thread mapping (one warp per
        # SELL-32 chunk, coalesced over rows), not the R-lane block
        # mapping of Fig. 6 — its fused dot products cost only a mild
        # latency penalty, keeping it between the naive and blocked
        # stages on the GPU (paper Fig. 11 middle bars).
        return min(
            arch.peak_gflops,
            0.55 * arch.bandwidth_gbs / bmin(1, nnzr, s_d=s_d, s_i=s_i,
                                             s_v=s_v),
        )
    if stage == "aug_spmmv":
        kernel, r_eff, latency = "aug_spmmv", r, True
    elif stage == "aug_spmmv_nodot":
        kernel, r_eff, latency = "aug_spmmv_nodot", r, False
    elif stage == "spmmv":
        kernel, r_eff, latency = "spmmv", r, False
    else:
        raise ValueError(f"unknown stage {stage!r}")

    traffic = gpu_level_traffic(kernel, r_eff, n, nnzr, arch, s_d=s_d,
                                s_i=s_i, s_v=s_v)
    flops = r_eff * (nnz * (F_ADD + F_MUL) + n * KPM_FLOPS_PER_ROW)
    t_dram = traffic.dram / (arch.bandwidth_gbs * BYTES_PER_GB)
    t_l2 = traffic.l2 / (arch.llc_bandwidth_gbs * BYTES_PER_GB)
    t_tex = traffic.tex / (arch.tex_bandwidth_gbs * BYTES_PER_GB)
    t_flop = flops / (arch.peak_gflops * 1.0e9)
    t = max(t_dram, t_l2, t_tex, t_flop)
    if latency:
        t /= arch.dot_latency_efficiency
    return flops / t / 1.0e9


def gpu_level_bandwidths(
    arch: Architecture,
    kernel: str,
    r: int,
    *,
    n: int = 1_600_000,
    nnzr: float = 13.0,
) -> dict[str, float]:
    """Achieved DRAM/L2/TEX bandwidths in GB/s — paper Fig. 10's series.

    The achieved bandwidth of a level is its transfer volume divided by
    the kernel runtime (which is set by the *slowest* level / the
    latency penalty), so non-bottleneck levels show below-peak numbers —
    exactly how nvprof-derived bandwidths behave in the paper.
    """
    traffic = gpu_level_traffic(kernel, r, n, nnzr, arch)
    nnz = nnzr * n
    flops = r * (nnz * (F_ADD + F_MUL) + n * KPM_FLOPS_PER_ROW)
    t_dram = traffic.dram / (arch.bandwidth_gbs * BYTES_PER_GB)
    t_l2 = traffic.l2 / (arch.llc_bandwidth_gbs * BYTES_PER_GB)
    t_tex = traffic.tex / (arch.tex_bandwidth_gbs * BYTES_PER_GB)
    t_flop = flops / (arch.peak_gflops * 1.0e9)
    t = max(t_dram, t_l2, t_tex, t_flop)
    if kernel == "aug_spmmv":
        t /= arch.dot_latency_efficiency
    return {
        "dram": traffic.dram / t / BYTES_PER_GB,
        "l2": traffic.l2 / t / BYTES_PER_GB,
        "tex": traffic.tex / t / BYTES_PER_GB,
        "time_s": t,
    }


def node_performance(
    node: NodeConfig,
    stage: str,
    r: int = 32,
    *,
    heterogeneous_efficiency: float = 0.875,
    nnzr: float = 13.0,
    n: int = 3_200_000,
) -> dict[str, float]:
    """Node-level Gflop/s per device class and combined (paper Fig. 11).

    The heterogeneous number is the sum of the device performances, with
    the CPU contribution reduced by the sacrificed GPU-management cores,
    scaled by ``heterogeneous_efficiency`` (PCIe communication and
    management overhead; the paper measures 85-90%).
    """
    cpu_only = sum(
        cpu_kernel_performance(c, stage, r, n=n, nnzr=nnzr,
                               stencil_rows=2 * max(nnzr, 1.0))
        for c in node.cpus
    )
    gpu_only = sum(
        gpu_kernel_performance(g, stage, r, n=n, nnzr=nnzr) for g in node.gpus
    )
    cpu_in_hetero = sum(
        cpu_kernel_performance(
            c, stage, r, cores=node.cpu_compute_cores(c), n=n, nnzr=nnzr,
            stencil_rows=2 * max(nnzr, 1.0),
        )
        for c in node.cpus
    )
    hetero = (cpu_in_hetero + gpu_only) * heterogeneous_efficiency
    return {
        "cpu": cpu_only,
        "gpu": gpu_only,
        "heterogeneous": hetero,
        "parallel_efficiency": hetero / (cpu_only + gpu_only),
    }
