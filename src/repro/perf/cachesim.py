"""Cache simulation: measuring V_meas and Omega (paper Eq. (8)).

The paper measures the actual transfer volume V_meas with LIKWID (CPU) or
nvprof (GPU) hardware counters. Without those counters we *simulate* the
cache: the kernel's memory-access stream is generated explicitly (address
per logical access, in execution order) and replayed through an LRU cache
model at cache-line granularity; every miss transfers one line from
memory. ``Omega = V_meas / V_KPM`` then follows directly.

Because an exact trace-driven simulation is O(accesses), callers use the
standard downsizing technique: simulate a proportionally smaller problem
against a proportionally smaller cache (the stencil structure — and hence
the reuse pattern — of the TI matrix is scale-invariant), as validated in
the test suite.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.util.constants import S_D, S_I
from repro.util.validation import check_positive


class LRUCache:
    """Fully associative LRU cache at line granularity.

    Fully associative LRU has the *stack property* (a larger cache never
    misses more on the same trace), which the property-based tests
    exploit; real set-associative caches deviate only mildly for the
    streaming-plus-window patterns simulated here.
    """

    def __init__(self, capacity_bytes: int, line_bytes: int = 64) -> None:
        check_positive("line_bytes", line_bytes)
        if capacity_bytes < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_bytes}")
        self.line_bytes = int(line_bytes)
        self.capacity_lines = int(capacity_bytes // line_bytes)
        self._lines: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access_lines(self, lines: np.ndarray) -> None:
        """Replay a sequence of line indices (already divided by line size)."""
        cache = self._lines
        cap = self.capacity_lines
        if cap == 0:
            self.misses += len(lines)
            return
        hits = 0
        misses = 0
        for ln in lines.tolist():
            if ln in cache:
                cache.move_to_end(ln)
                hits += 1
            else:
                misses += 1
                cache[ln] = None
                if len(cache) > cap:
                    cache.popitem(last=False)
        self.hits += hits
        self.misses += misses

    def access_bytes(self, addresses: np.ndarray, sizes: np.ndarray | int) -> None:
        """Replay byte-granular accesses; multi-line accesses touch each line."""
        addresses = np.asarray(addresses, dtype=np.int64)
        sizes = np.broadcast_to(np.asarray(sizes, dtype=np.int64), addresses.shape)
        first = addresses // self.line_bytes
        last = (addresses + sizes - 1) // self.line_bytes
        span = last - first
        if np.all(span == 0):
            self.access_lines(first)
            return
        # expand multi-line accesses in order
        counts = span + 1
        total = int(counts.sum())
        out = np.empty(total, dtype=np.int64)
        pos = 0
        for f, c in zip(first.tolist(), counts.tolist()):
            out[pos : pos + c] = np.arange(f, f + c)
            pos += c
        self.access_lines(out)

    @property
    def miss_bytes(self) -> int:
        """Bytes transferred from memory (misses x line size)."""
        return self.misses * self.line_bytes

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0


@dataclass
class AccessStream:
    """One inner iteration's access stream: (address, size) in order."""

    addresses: np.ndarray
    sizes: np.ndarray


def kpm_access_stream(A: CSRMatrix, r: int, stage: str = "aug_spmmv") -> AccessStream:
    """Memory-access stream of one blocked inner iteration.

    Address-space layout (disjoint regions, byte addresses):

    * matrix values  — streamed once, S_d per entry,
    * matrix indices — streamed once, S_i per entry,
    * input block V  — gathered per entry (R S_d contiguous bytes at the
      entry's column) plus one streaming read per row for the shift term,
    * output block W — one read + one write per row (R S_d).

    For ``stage='aug_spmv'`` the same stream with R = 1 is produced; the
    ``naive`` stage replays the vector streams once per BLAS-1 call
    (13 passes, paper Table I).
    """
    check_positive("r", r)
    n = A.n_rows
    nnz = A.nnz
    row_nnz = A.nnz_per_row

    base_val = 0
    base_idx = base_val + nnz * S_D
    base_v = base_idx + nnz * S_I
    base_w = base_v + n * r * S_D

    cols = A.indices.astype(np.int64)
    # interleave per-row: value, index, gather for each entry; then the
    # row-level streams. Build in row order with entry-level interleaving.
    val_addr = base_val + np.arange(nnz, dtype=np.int64) * S_D
    idx_addr = base_idx + np.arange(nnz, dtype=np.int64) * S_I
    gather_addr = base_v + cols * (r * S_D)

    entry_addr = np.empty(3 * nnz, dtype=np.int64)
    entry_addr[0::3] = val_addr
    entry_addr[1::3] = idx_addr
    entry_addr[2::3] = gather_addr
    entry_size = np.empty(3 * nnz, dtype=np.int64)
    entry_size[0::3] = S_D
    entry_size[1::3] = S_I
    entry_size[2::3] = r * S_D

    # row-level stream addresses
    row_v = base_v + np.arange(n, dtype=np.int64) * (r * S_D)
    row_w = base_w + np.arange(n, dtype=np.int64) * (r * S_D)

    addr_parts: list[np.ndarray] = []
    size_parts: list[np.ndarray] = []
    entry_ptr = 3 * A.indptr

    if stage == "naive":
        # The naive algorithm runs each BLAS-1 call as a *separate full
        # pass* over the vectors (that is exactly why it moves 13 N S_d):
        # spmv writes u, then axpy/scal/axpy/nrm2/dot each restream their
        # operands. u lives in its own region.
        base_u = base_w + n * r * S_D
        row_u = base_u + np.arange(n, dtype=np.int64) * (r * S_D)
        # 1. spmv: matrix traversal with v gathers, u written per row
        for i in range(n):
            lo, hi = int(entry_ptr[i]), int(entry_ptr[i + 1])
            addr_parts.append(entry_addr[lo:hi])
            size_parts.append(entry_size[lo:hi])
            addr_parts.append(row_u[i : i + 1])
            size_parts.append(np.full(1, r * S_D, dtype=np.int64))
        # 2..6: full-array passes (operand streams interleaved per row)
        passes = [
            (row_u, row_v, row_u),  # axpy: u <- u - b v
            (row_w, row_w),         # scal: w <- -w
            (row_w, row_u, row_w),  # axpy: w <- w + 2a u
            (row_v,),               # nrm2: <v|v>
            (row_w, row_v),         # dot:  <w|v>
        ]
        for operands in passes:
            stacked = np.stack(operands, axis=1).reshape(-1)
            addr_parts.append(stacked)
            size_parts.append(np.full(stacked.size, r * S_D, dtype=np.int64))
    else:
        # fused kernel: one pass — entries plus the 3 row streams in place
        for i in range(n):
            lo, hi = int(entry_ptr[i]), int(entry_ptr[i + 1])
            addr_parts.append(entry_addr[lo:hi])
            size_parts.append(entry_size[lo:hi])
            addr_parts.append(
                np.array([row_v[i], row_w[i], row_w[i]], dtype=np.int64)
            )
            size_parts.append(np.full(3, r * S_D, dtype=np.int64))
    return AccessStream(
        np.concatenate(addr_parts), np.concatenate(size_parts)
    )


def simulate_kpm_omega(
    A: CSRMatrix,
    r: int,
    cache_bytes: int,
    line_bytes: int = 64,
    stage: str = "aug_spmmv",
    *,
    warmup_iterations: int = 1,
) -> float:
    """Measured-over-minimum traffic Omega for the blocked inner iteration.

    Replays ``warmup_iterations`` iterations to populate the cache, then
    measures one more; Omega = (measured miss bytes) / V_KPM(minimum).
    The minimum is Eq. (4)'s per-iteration term
    ``N_nz (S_d + S_i) + 3 R N S_d`` (matrix + three block streams).
    """
    stream = kpm_access_stream(A, r, stage)
    cache = LRUCache(cache_bytes, line_bytes)
    for _ in range(warmup_iterations):
        cache.access_bytes(stream.addresses, stream.sizes)
    cache.reset_stats()
    cache.access_bytes(stream.addresses, stream.sizes)
    vec_passes = 13 if stage == "naive" else 3
    v_min = A.nnz * (S_D + S_I) + vec_passes * r * A.n_rows * S_D
    return cache.miss_bytes / v_min
