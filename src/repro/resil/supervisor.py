"""The resilience supervisor: retries, recovery, graceful degradation.

At the paper's headline scale (1024 nodes, Section VII) component
failure is the expected case; the KPM's structure makes it cheap to
survive, because the stochastic trace is a sum of independent Chebyshev
recurrences whose state (two block vectors + the eta prefix) checkpoints
in O(N·R) bytes.  The :class:`Supervisor` wraps every execution engine
with that observation:

1. run an attempt (mp / sim / serial engine, any kernel backend);
2. on failure, *classify* it — worker death, stall, corrupt checkpoint,
   backend failure — and record it through the observability layer;
3. retry under a declarative :class:`~repro.resil.policy.RetryPolicy`,
   resuming from the latest atomic :class:`KpmCheckpoint` instead of
   restarting from m=0;
4. when an engine keeps failing, degrade along ``mp → sim → serial``
   (and ``native → numpy`` for backend-classified failures) rather than
   give up.

Invariant (asserted by ``tests/resil/``): recovery never changes
numerics — a resumed run is bitwise equal to an uninterrupted one on the
same engine, because the checkpoint is an exact snapshot of the
recurrence state and the moment prefix.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.checkpoint import KpmCheckpoint, _npz_path, checkpointed_eta
from repro.obs import NULL_METRICS, MetricsRegistry
from repro.resil.faults import (
    FaultInjector,
    FaultPlan,
    as_fault_plan,
    corrupt_checkpoint_file,
)
from repro.resil.policy import RetryPolicy
from repro.util.counters import NULL_COUNTERS, PerfCounters
from repro.util.errors import (
    BackendError,
    CheckpointError,
    FaultInjected,
    ReproError,
    RetryExhaustedError,
    WorkerFailure,
)

#: Degradation ladders: the engines tried, in order, starting from the
#: one the caller asked for.  ``sim`` replays the identical data-parallel
#: schedule sequentially (no processes to die), ``serial`` drops the
#: partitioning altogether.
ENGINE_LADDERS = {
    "mp": ("mp", "sim", "serial"),
    "sim": ("sim", "serial"),
    "serial": ("serial",),
}

#: Error classes the supervisor distinguishes (reported per class).
ERROR_CLASSES = (
    "worker_death", "stall", "worker_exception", "checkpoint", "backend",
    "engine", "unknown",
)


def classify_error(exc: BaseException) -> str:
    """Map an attempt's exception onto one of :data:`ERROR_CLASSES`."""
    if isinstance(exc, CheckpointError):
        return "checkpoint"
    if isinstance(exc, BackendError):
        return "backend"
    if isinstance(exc, WorkerFailure):
        kinds = exc.kinds
        if "stall" in kinds or "timeout" in kinds:
            return "stall"
        if "death" in kinds:
            return "worker_death"
        if "exception" in kinds:
            return "worker_exception"
        return "engine"
    if isinstance(exc, FaultInjected):
        return "stall" if exc.kind == "stall" else "worker_exception"
    if isinstance(exc, ReproError):
        return "engine"
    return "unknown"


@dataclass
class AttemptRecord:
    """One failed attempt, as recorded in the resilience report."""

    attempt: int
    engine: str
    backend: str
    error_class: str
    detail: str
    resumed_from: int | None = None


@dataclass
class ResilienceReport:
    """What faulted, what retried, and what the recovery cost."""

    attempts: list[AttemptRecord] = field(default_factory=list)
    faults: int = 0
    retries: int = 0
    resumes: int = 0
    resume_m: int | None = None
    engine_degradations: int = 0
    backend_degradations: int = 0
    checkpoint_discards: int = 0
    final_engine: str | None = None
    final_backend: str | None = None
    # elastic execution (populated when a RebalancePolicy is active)
    elastic_segments: int = 0
    rebalances: int = 0
    membership_joins: int = 0
    membership_leaves: int = 0

    def summary(self) -> str:
        """One human-readable line for CLI output."""
        elastic = ""
        if self.elastic_segments:
            elastic = (
                f"; elastic: {self.elastic_segments} segment(s), "
                f"{self.rebalances} rebalance(s), "
                f"{self.membership_joins} join(s), "
                f"{self.membership_leaves} leave(s)"
            )
        if not self.faults:
            return (
                f"resilience: clean first attempt "
                f"(engine={self.final_engine}, backend={self.final_backend})"
                + elastic
            )
        classes = ", ".join(
            sorted({a.error_class for a in self.attempts})
        )
        bits = [
            f"resilience: {self.faults} fault(s) [{classes}]",
            f"{self.retries} retr{'y' if self.retries == 1 else 'ies'}",
        ]
        if self.resumes:
            bits.append(f"resumed from checkpoint at m={self.resume_m}")
        if self.engine_degradations:
            bits.append(f"degraded engine {self.engine_degradations}x")
        if self.backend_degradations:
            bits.append("degraded backend native->numpy")
        bits.append(
            f"finished on engine={self.final_engine} backend={self.final_backend}"
        )
        return ", ".join(bits) + elastic


@dataclass
class Resilience:
    """Declarative resilience configuration for :class:`KPMSolver`.

    Handed to ``KPMSolver(resilience=...)`` (or built by the CLI from
    ``--retries/--fault-plan/--checkpoint-every/--degrade``); the solver
    constructs a :class:`Supervisor` from it per run.
    """

    policy: RetryPolicy = field(default_factory=RetryPolicy)
    checkpoint_every: int = 0
    checkpoint_path: str | Path | None = None
    degrade: bool = True
    fault_plan: FaultPlan | str | None = None
    mp_timeouts: object | None = None  # repro.dist.mp.MpTimeouts
    #: elastic execution: 'off'/None, 'auto'/True, a threshold, or a
    #: repro.dist.elastic.RebalancePolicy (see resolve_rebalance)
    rebalance: object = None
    #: planned membership events, e.g. 'join:m=8;leave:m=16,rank=0'
    membership: object = None


class Supervisor:
    """Runs one eta computation to completion despite faults.

    Parameters mirror :class:`Resilience`; ``metrics``/``counters`` are
    the run's observability sinks (every fault, retry, resume, and
    degradation lands there), ``seed`` keys the deterministic backoff
    jitter, and ``sleep`` is injectable for tests.
    """

    def __init__(
        self,
        policy: RetryPolicy | None = None,
        *,
        degrade: bool = True,
        checkpoint_every: int = 0,
        checkpoint_path: str | Path | None = None,
        fault_plan: FaultPlan | str | None = None,
        mp_timeouts=None,
        rebalance=None,
        membership=None,
        metrics: MetricsRegistry = NULL_METRICS,
        counters: PerfCounters = NULL_COUNTERS,
        seed: int | None = None,
        sleep=time.sleep,
    ) -> None:
        from repro.dist.elastic import resolve_rebalance

        self.policy = policy or RetryPolicy()
        self.degrade = bool(degrade)
        self.checkpoint_every = int(checkpoint_every)
        self.checkpoint_path = checkpoint_path
        self.fault_plan = as_fault_plan(fault_plan, seed=seed or 0)
        self.mp_timeouts = mp_timeouts
        self.rebalance = resolve_rebalance(rebalance)
        self.membership = membership
        #: ElasticReport of the most recent elastic mp attempt (or None)
        self.last_elastic_report = None
        self.metrics = metrics
        self.counters = counters
        self.seed = 0 if seed is None else int(seed)
        self._sleep = sleep
        self.report = ResilienceReport()
        #: communicator of the most recent distributed attempt (or None)
        self.last_world = None

    @classmethod
    def from_config(
        cls,
        config: Resilience,
        *,
        metrics: MetricsRegistry = NULL_METRICS,
        counters: PerfCounters = NULL_COUNTERS,
        seed: int | None = None,
    ) -> "Supervisor":
        return cls(
            config.policy,
            degrade=config.degrade,
            checkpoint_every=config.checkpoint_every,
            checkpoint_path=config.checkpoint_path,
            fault_plan=config.fault_plan,
            mp_timeouts=config.mp_timeouts,
            rebalance=config.rebalance,
            membership=config.membership,
            metrics=metrics,
            counters=counters,
            seed=seed,
        )

    # ------------------------------------------------------------------
    def run_eta(
        self,
        H,
        scale,
        n_moments: int,
        start_block: np.ndarray,
        *,
        engine: str | None = "serial",
        workers: int = 2,
        weights: list[float] | None = None,
        backend="auto",
        reduction: str = "end",
        overlap: bool | str | None = False,
        precision=None,
        threads: int | str | None = None,
        simd: str | None = None,
        progress=None,
        progress_every: int = 0,
    ) -> np.ndarray:
        """Compute eta under supervision; the engine's usual return value.

        ``precision`` selects the storage profile and is threaded through
        every rung of the degradation ladder unchanged — a retry or an
        engine fallback never silently widens (or narrows) the run.
        ``threads`` rides the same rail: the intra-rank kernel thread
        count survives retries and engine fallbacks, and fp64 results are
        bitwise identical at every setting, so a mid-run degradation
        never perturbs the moments.  ``simd`` (the native backend's
        vectorized-kernel selector) rides the very same rail with the
        very same bitwise guarantee.

        ``progress``/``progress_every`` stream partial eta prefixes as
        each engine exposes them (see :func:`checkpointed_eta` and
        :func:`distributed_eta`); a retry simply re-streams from wherever
        the resumed attempt picks up.

        Raises :class:`~repro.util.errors.RetryExhaustedError` only after
        every attempt on every remaining ladder rung has failed.
        """
        engine = engine or "serial"
        if engine not in ENGINE_LADDERS:
            raise ValueError(
                f"engine must be one of {sorted(ENGINE_LADDERS)}, got {engine!r}"
            )
        ladder = ENGINE_LADDERS[engine] if self.degrade else (engine,)

        ckpt_path = self.checkpoint_path
        own_dir: Path | None = None
        if self.checkpoint_every > 0 and ckpt_path is None:
            own_dir = Path(tempfile.mkdtemp(prefix="repro-resil-"))
            ckpt_path = own_dir / "attempt.npz"

        backend_cur = backend
        history: list[tuple] = []
        attempt = 0
        last_exc: Exception | None = None
        try:
            for rung, eng in enumerate(ladder):
                if rung > 0:
                    self.report.engine_degradations += 1
                    self.metrics.count("resil.engine_degraded")
                for _ in range(self.policy.max_attempts):
                    attempt += 1
                    if attempt > 1:
                        self.report.retries += 1
                        self.metrics.count("resil.retries")
                        delay = self.policy.backoff(attempt - 1, seed=self.seed)
                        if delay > 0:
                            self._sleep(delay)
                    resume = self._prepare_resume(ckpt_path, attempt)
                    try:
                        with self.metrics.span(
                            "resil.attempt", phase="resil", engine=eng,
                            attempt=attempt,
                            resumed_from=(resume.next_m if resume else None),
                        ):
                            eta = self._run_once(
                                eng, backend_cur, resume, attempt, ckpt_path,
                                H, scale, n_moments, start_block,
                                workers, weights, reduction, overlap,
                                precision, threads, simd, progress,
                                progress_every,
                            )
                    except Exception as exc:  # noqa: BLE001 - classified below
                        last_exc = exc
                        cls_name = classify_error(exc)
                        detail = f"{type(exc).__name__}: {exc}"
                        self.report.faults += 1
                        self.report.attempts.append(AttemptRecord(
                            attempt, eng, self._backend_name(backend_cur),
                            cls_name, detail[:300],
                            resume.next_m if resume else None,
                        ))
                        history.append((eng, attempt, cls_name, detail[:300]))
                        self.metrics.count("resil.faults")
                        self.metrics.count(f"resil.faults.{cls_name}")
                        with self.metrics.span(
                            "resil.fault", phase="resil", engine=eng,
                            attempt=attempt, error_class=cls_name,
                        ):
                            pass  # zero-length span: one trace record per fault
                        backend_cur = self._maybe_degrade_backend(
                            cls_name, backend_cur, detail
                        )
                        continue
                    self.report.final_engine = eng
                    self.report.final_backend = self._backend_name(backend_cur)
                    return eta
        finally:
            if own_dir is not None:
                shutil.rmtree(own_dir, ignore_errors=True)
        raise RetryExhaustedError(
            f"KPM run failed after {attempt} attempt(s) across engines "
            f"{list(ladder)}: {last_exc}",
            history=history,
        ) from last_exc

    # ------------------------------------------------------------------
    @staticmethod
    def _backend_name(backend) -> str:
        return backend if isinstance(backend, str) else getattr(
            backend, "name", str(backend)
        )

    def _maybe_degrade_backend(self, cls_name: str, backend_cur, detail: str):
        """``native → numpy`` when the failure is backend-classified."""
        name = self._backend_name(backend_cur)
        if cls_name != "backend" or name not in ("auto", "native"):
            return backend_cur
        from repro.sparse.backend import report_backend_failure

        report_backend_failure("native", detail)
        self.report.backend_degradations += 1
        self.metrics.count("resil.backend_degraded")
        return "numpy"

    def _prepare_resume(
        self, ckpt_path: str | Path | None, attempt: int
    ) -> KpmCheckpoint | None:
        """Load the latest checkpoint (after any planned corruption drill).

        A corrupt checkpoint is counted, discarded, and the attempt falls
        back to a fresh start — never a crash of the supervisor itself.
        """
        if ckpt_path is None:
            return None
        if self.fault_plan:
            for spec in self.fault_plan.checkpoint_faults(attempt):
                corrupt_checkpoint_file(ckpt_path, seed=self.fault_plan.seed)
        on_disk = _npz_path(ckpt_path)
        if not on_disk.exists():
            return None
        try:
            ck = KpmCheckpoint.load(on_disk)
        except CheckpointError as exc:
            self.report.checkpoint_discards += 1
            self.metrics.count("resil.checkpoint_discarded")
            with self.metrics.span(
                "resil.fault", phase="resil", attempt=attempt,
                error_class="checkpoint", detail=str(exc)[:200],
            ):
                pass
            on_disk.unlink(missing_ok=True)
            return None
        self.report.resumes += 1
        self.report.resume_m = ck.next_m
        self.metrics.count("resil.resumes")
        self.metrics.gauge("resil.resume_m", ck.next_m)
        return ck

    def _run_once(
        self, eng: str, backend, resume, attempt: int, ckpt_path,
        H, scale, n_moments, start_block, workers, weights, reduction,
        overlap=False, precision=None, threads=None, simd=None,
        progress=None, progress_every=0,
    ) -> np.ndarray:
        every = self.checkpoint_every
        path = ckpt_path if every > 0 else None
        if self.rebalance is not None:
            return self._run_elastic(
                eng, backend, resume, attempt, path, H, scale, n_moments,
                start_block, workers, weights, reduction, overlap,
                precision, threads, simd,
            )
        if eng == "serial":
            inj = None
            if self.fault_plan:
                inj = FaultInjector(
                    self.fault_plan, rank=0, attempt=attempt, in_process=True
                )
            if threads == "auto":
                # A degraded serial rung inherits the whole machine.
                threads = max(1, os.cpu_count() or 1)
            return checkpointed_eta(
                H, scale, n_moments, start_block,
                checkpoint_every=every, checkpoint_path=path,
                resume_from=resume, counters=self.counters,
                backend=backend, metrics=self.metrics, fault=inj,
                precision=precision, threads=threads, simd=simd,
                progress=progress, progress_every=progress_every,
            )

        from repro.dist.comm import SimWorld
        from repro.dist.kpm_parallel import distributed_eta
        from repro.dist.mp import MpTimeouts, MpWorld
        from repro.dist.partition import RowPartition

        if weights is not None:
            part = RowPartition.from_weights(H.n_rows, weights, align=4)
        else:
            part = RowPartition.equal(H.n_rows, workers, align=4)
        if eng == "mp":
            timeouts = self.mp_timeouts
            if timeouts is None and self.policy.attempt_deadline is not None:
                timeouts = MpTimeouts(run=self.policy.attempt_deadline)
            world = MpWorld(part.n_ranks, timeouts=timeouts)
        else:
            world = SimWorld(part.n_ranks)
        self.last_world = world
        return distributed_eta(
            H, part, scale, n_moments, start_block, world,
            reduction=reduction, backend=backend, counters=self.counters,
            metrics=self.metrics, overlap=overlap, checkpoint_every=every,
            checkpoint_path=path, resume_from=resume,
            fault_plan=self.fault_plan, attempt=attempt,
            precision=precision, threads=threads, simd=simd,
            progress=progress, progress_every=progress_every,
        )

    def _run_elastic(
        self, eng: str, backend, resume, attempt: int, path,
        H, scale, n_moments, start_block, workers, weights, reduction,
        overlap, precision, threads, simd,
    ) -> np.ndarray:
        """One attempt under a live :class:`RebalancePolicy`.

        The mp rung runs the full elastic driver — worker deaths
        re-partition onto the survivors *inside* the attempt, so the
        engine ladder only engages when elasticity itself gives up.  The
        sim and serial rungs replay the identical grid-eta reduction
        (serial as a one-rank sim world), so a degradation mid-ladder
        still returns bitwise-identical fp64 moments.
        """
        from repro.dist.comm import SimWorld
        from repro.dist.elastic import elastic_eta
        from repro.dist.kpm_parallel import distributed_eta
        from repro.dist.partition import RowPartition

        pol = self.rebalance
        if eng == "mp":
            eta, rep = elastic_eta(
                H, scale, n_moments, start_block,
                n_workers=workers, weights=weights, policy=pol,
                membership=self.membership, engine="mp", backend=backend,
                counters=self.counters, metrics=self.metrics,
                overlap=overlap, fault_plan=self.fault_plan,
                attempt=attempt, precision=precision, threads=threads,
                simd=simd, checkpoint_path=path, resume_from=resume,
            )
            self.last_elastic_report = rep
            self.report.elastic_segments += len(rep.segments)
            self.report.rebalances += rep.rebalances
            self.report.membership_joins += rep.joins
            self.report.membership_leaves += rep.leaves
            return eta
        n_ranks = 1 if eng == "serial" else workers
        if weights is not None and eng != "serial":
            part = RowPartition.from_weights(H.n_rows, weights, align=pol.grid)
        else:
            part = RowPartition.equal(H.n_rows, n_ranks, align=pol.grid)
        world = SimWorld(part.n_ranks)
        self.last_world = world
        every = self.checkpoint_every
        return distributed_eta(
            H, part, scale, n_moments, start_block, world,
            reduction=reduction, backend=backend, counters=self.counters,
            metrics=self.metrics, overlap=overlap, checkpoint_every=every,
            checkpoint_path=path, resume_from=resume,
            fault_plan=self.fault_plan, attempt=attempt,
            precision=precision, threads=threads, simd=simd,
            eta_grid=pol.grid,
        )
