"""Fault-tolerant KPM execution: retries, recovery, degradation.

Public surface of the resilience layer:

* :class:`RetryPolicy` — declarative retry schedule (attempts, backoff,
  deterministic jitter, per-attempt deadline);
* :class:`FaultPlan` / :class:`FaultSpec` / :class:`FaultInjector` —
  first-class seedable fault injection (crash / raise / stall / slow /
  corrupt-halo / corrupt-ckpt) shared by every engine and the CLI;
* :class:`Supervisor` — runs an eta computation to completion despite
  faults: classify, checkpoint-resume, retry, degrade
  ``mp → sim → serial`` and ``native → numpy``;
* :class:`Resilience` — the configuration object consumed by
  ``KPMSolver(resilience=...)``.
"""

from repro.resil.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    as_fault_plan,
    corrupt_checkpoint_file,
)
from repro.resil.policy import RetryPolicy
from repro.resil.supervisor import (
    ENGINE_LADDERS,
    AttemptRecord,
    Resilience,
    ResilienceReport,
    Supervisor,
    classify_error,
)

__all__ = [
    "ENGINE_LADDERS",
    "FAULT_KINDS",
    "AttemptRecord",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "Resilience",
    "ResilienceReport",
    "RetryPolicy",
    "Supervisor",
    "as_fault_plan",
    "classify_error",
    "corrupt_checkpoint_file",
]
