"""First-class, seedable fault plans for every execution engine.

The multiprocess engine used to carry a test-only ``_fault`` tuple that
could crash one rank at one iteration.  This module promotes that hook
into a declarative :class:`FaultPlan` — parseable from a CLI string,
picklable into worker processes, and deterministic under a seed — so
fault drills are a first-class workload, not a test fixture:

* ``crash``        — hard process death (``os._exit``) in the mp engine;
  an in-process engine raises :class:`~repro.util.errors.FaultInjected`
  instead of killing the host interpreter.
* ``raise``        — an ordinary worker exception.
* ``stall``        — the rank stops making progress (sleeps), tripping
  the parent's heartbeat stall detector.
* ``slow``         — the rank sleeps ``delay`` seconds per iteration
  (a straggler, not a failure: the run still completes).
* ``corrupt-halo`` — the rank scribbles seeded noise over one of its
  packed halo send windows (silent data corruption drill; mp only).
* ``corrupt-ckpt`` — the supervisor truncates the checkpoint file before
  the given attempt, exercising the ``CheckpointError`` recovery path.

Plan strings are ``kind:key=val,key=val`` entries joined with ``;``::

    crash:rank=1,m=8
    stall:rank=0,m=4;corrupt-ckpt:attempt=2

Every fault defaults to ``attempt=1`` — it fires on the first attempt
and *not* on retries, which is what makes an injected crash recoverable
by the supervisor (the paper-scale failure this models, a node dying,
does not deterministically chase the job across restarts).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, fields
from pathlib import Path

import numpy as np

from repro.util.errors import FaultInjected

#: Fault kinds probed inside an engine's iteration loop.
ITERATION_KINDS = ("crash", "raise", "stall", "slow")

#: All valid fault kinds.
FAULT_KINDS = (*ITERATION_KINDS, "corrupt-halo", "corrupt-ckpt")

#: How long an injected stall sleeps when no explicit ``delay`` is given
#: (long enough that the stall detector, not the sleep, ends it).
_STALL_SLEEP = 3600.0


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: what, where (rank), and when (iteration/attempt).

    ``count`` repeats an iteration-probed fault over the ``count``
    consecutive iterations ``[m, m + count)`` — the persistent-straggler
    drill (``slow:rank=1,m=1,count=24,delay=0.01``) that the elastic
    rebalancer is built to detect, versus the default one-shot hiccup.
    """

    kind: str
    rank: int = 0
    m: int = 0
    attempt: int = 1
    delay: float = 0.0
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.rank < 0 or self.m < 0 or self.attempt < 1 or self.delay < 0 \
                or self.count < 1:
            raise ValueError(f"invalid fault spec {self}")

    def to_str(self) -> str:
        """The parseable string form (inverse of :meth:`FaultPlan.parse`)."""
        parts = []
        for f in fields(self):
            if f.name == "kind":
                continue
            val = getattr(self, f.name)
            if val != f.default:
                out = f"{val:g}" if isinstance(val, float) else str(val)
                parts.append(f"{f.name}={out}")
        return self.kind + (":" + ",".join(parts) if parts else "")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable collection of :class:`FaultSpec` entries."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse ``'kind:k=v,k=v;kind:...'`` into a plan.

        Raises ``ValueError`` with the offending entry on any malformed
        input — a CLI typo must fail loudly, not silently drop a drill.
        """
        specs = []
        for entry in filter(None, (e.strip() for e in text.split(";"))):
            kind, _, args = entry.partition(":")
            kw: dict = {}
            for pair in filter(None, (p.strip() for p in args.split(","))):
                key, sep, val = pair.partition("=")
                if not sep:
                    raise ValueError(
                        f"malformed fault entry {entry!r}: expected key=value, "
                        f"got {pair!r}"
                    )
                key = key.strip()
                if key == "delay":
                    kw[key] = float(val)
                elif key in ("rank", "m", "attempt", "count"):
                    kw[key] = int(val)
                else:
                    raise ValueError(
                        f"unknown fault parameter {key!r} in {entry!r}"
                    )
            specs.append(FaultSpec(kind.strip(), **kw))
        return cls(tuple(specs), seed=seed)

    def __str__(self) -> str:
        return ";".join(s.to_str() for s in self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def checkpoint_faults(self, attempt: int) -> tuple[FaultSpec, ...]:
        """The ``corrupt-ckpt`` entries scheduled for this attempt."""
        return tuple(
            s for s in self.specs
            if s.kind == "corrupt-ckpt" and s.attempt == attempt
        )


def as_fault_plan(plan, seed: int = 0) -> FaultPlan | None:
    """Coerce None / string / plan into a :class:`FaultPlan` (or None)."""
    if plan is None:
        return None
    if isinstance(plan, FaultPlan):
        return plan
    if isinstance(plan, str):
        return FaultPlan.parse(plan, seed=seed)
    raise TypeError(f"cannot build a FaultPlan from {type(plan).__name__}")


class FaultInjector:
    """One rank's view of a fault plan during one attempt.

    Engines construct an injector per rank and probe it at well-defined
    points: :meth:`at_iteration` at the top of every inner iteration,
    :meth:`corrupt_window` after packing each halo send window.  The
    probes are O(1) dict lookups, so leaving injection wired into the
    production loop costs nothing when no plan is set.

    ``in_process=True`` (the sim and serial engines) converts the
    process-level faults into :class:`FaultInjected` exceptions so the
    host interpreter survives; the mp engine runs them for real.
    """

    def __init__(
        self,
        plan: FaultPlan | None,
        *,
        rank: int = 0,
        attempt: int = 1,
        in_process: bool = False,
    ) -> None:
        self.rank = int(rank)
        self.attempt = int(attempt)
        self.in_process = bool(in_process)
        self.seed = plan.seed if plan is not None else 0
        self._at: dict[int, FaultSpec] = {}
        self._halo: dict[int, FaultSpec] = {}
        for spec in (plan.specs if plan is not None else ()):
            if spec.rank != self.rank or spec.attempt != self.attempt:
                continue
            if spec.kind in ITERATION_KINDS:
                for m in range(spec.m, spec.m + spec.count):
                    self._at[m] = spec
            elif spec.kind == "corrupt-halo":
                self._halo[spec.m] = spec

    def __bool__(self) -> bool:
        return bool(self._at or self._halo)

    def spec_at(self, m: int) -> FaultSpec | None:
        return self._at.get(m)

    def at_iteration(self, m: int) -> None:
        """Fire any fault planned for iteration ``m`` on this rank."""
        spec = self._at.get(m)
        if spec is None:
            return
        msg = f"injected fault in rank {self.rank} at m={m}"
        if spec.kind == "slow":
            time.sleep(spec.delay or 0.01)
            return
        if spec.kind == "stall":
            if self.in_process:
                time.sleep(min(spec.delay or 0.05, 0.25))
                raise FaultInjected(f"{msg} (stall)", kind="stall")
            time.sleep(spec.delay or _STALL_SLEEP)
            return
        if spec.kind == "crash" and not self.in_process:
            os._exit(3)  # simulated hard node failure (SIGKILL-like)
        raise FaultInjected(msg, kind=spec.kind)

    def corrupt_window(self, m: int, window: np.ndarray) -> bool:
        """Overwrite a packed halo window with seeded noise if planned."""
        spec = self._halo.get(m)
        if spec is None:
            return False
        rng = np.random.default_rng(
            [abs(int(self.seed)) % 2**32, self.rank, m]
        )
        noise = rng.standard_normal(window.shape) + 1j * rng.standard_normal(
            window.shape
        )
        window[...] = noise.astype(window.dtype)
        return True


def corrupt_checkpoint_file(path: str | Path, seed: int = 0) -> bool:
    """Truncate + scribble a checkpoint file in place (a drill, not an op).

    Returns False when the file does not exist.  The damage is
    deterministic in ``seed`` and guaranteed to fail both the zip layer
    and the integrity digest, so ``KpmCheckpoint.load`` surfaces a
    :class:`~repro.util.errors.CheckpointError`.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    if not path.exists():
        return False
    data = path.read_bytes()
    keep = max(len(data) // 2, 1)
    rng = np.random.default_rng(abs(int(seed)) % 2**32)
    path.write_bytes(bytes(data[:keep]) + rng.bytes(16))
    return True
