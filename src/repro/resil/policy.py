"""Declarative retry policies for supervised KPM execution.

A :class:`RetryPolicy` is plain data — the supervisor interprets it.
Backoff is exponential with *deterministic* jitter: the jitter factor is
drawn from a counter-based RNG keyed on ``(seed, attempt)``, so two runs
of the same seed back off on the identical schedule.  Determinism
matters here for the same reason it does in the moment engines: the
differential test suites replay failure scenarios, and a retry schedule
that depends on wall clock or global RNG state would make those replays
flaky.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RetryPolicy:
    """How many times, and how patiently, to retry a failed attempt.

    Parameters
    ----------
    max_attempts:
        Attempts per ladder rung (so ``retries = max_attempts - 1``
        before the supervisor degrades to the next engine or gives up).
    base_delay:
        Seconds before the first retry; 0 (default) disables sleeping
        entirely — right for tests and for failures where waiting buys
        nothing (a deterministic injected fault).
    backoff_factor:
        Multiplier applied per further retry (exponential backoff).
    max_delay:
        Cap on any single backoff sleep.
    jitter:
        Fractional symmetric jitter (0.1 = ±10%) applied to each delay,
        drawn deterministically from ``(seed, attempt)``.
    attempt_deadline:
        Optional wall-clock budget (seconds) for one attempt.  Enforced
        by the multiprocess engine's run deadline; the in-process engines
        cannot be preempted and treat it as advisory.
    seed:
        Jitter seed; the supervisor overrides it with the run seed so
        the whole failure/recovery schedule is a function of the run.
    """

    max_attempts: int = 3
    base_delay: float = 0.0
    backoff_factor: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1
    attempt_deadline: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        for name in ("base_delay", "backoff_factor", "max_delay", "jitter"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.attempt_deadline is not None and self.attempt_deadline <= 0:
            raise ValueError("attempt_deadline must be positive (or None)")

    def backoff(self, retry: int, seed: int | None = None) -> float:
        """Sleep before the ``retry``-th retry (1-based); deterministic.

        ``backoff(1)`` is the delay after the first failure.  Returns 0.0
        whenever ``base_delay`` is 0.
        """
        if retry < 1:
            raise ValueError(f"retry index must be >= 1, got {retry}")
        if self.base_delay <= 0:
            return 0.0
        delay = min(self.max_delay, self.base_delay * self.backoff_factor ** (retry - 1))
        if self.jitter > 0:
            s = self.seed if seed is None else seed
            u = np.random.default_rng([abs(int(s)) % 2**32, retry]).random()
            delay *= 1.0 + self.jitter * (2.0 * u - 1.0)
        return float(min(delay, self.max_delay * (1.0 + self.jitter)))
