"""repro — reproduction of *Performance Engineering of the Kernel
Polynomial Method on Large-Scale CPU-GPU Systems* (Kreutzer, Hager,
Wellein, Pieper, Alvermann, Fehske — IPDPS 2015, DOI
10.1109/IPDPS.2015.76).

Quick tour
----------

>>> from repro import build_topological_insulator, KPMSolver
>>> H, model = build_topological_insulator(16, 16, 8)
>>> solver = KPMSolver(H, n_moments=256, n_vectors=8, seed=0)
>>> dos = solver.dos()
>>> float(dos.rho.max()) > 0
True

Subpackages
-----------

``repro.sparse``   CRS and SELL-C-sigma formats; naive, augmented-SpMV
                   (stage 1) and augmented-SpMMV (stage 2) kernels.
``repro.physics``  the 3D topological-insulator Hamiltonian (Eq. (1)),
                   quantum-dot superlattice potentials, graphene model.
``repro.core``     the KPM-DOS pipeline: scaling, moments, damping,
                   reconstruction, stochastic estimators, solver facade.
``repro.perf``     Table II architectures, Table I/Eqs. (4)-(7) balance
                   accounting, rooflines (Eqs. (9)-(11)), traffic models,
                   cache simulator (Omega, Eq. (8)).
``repro.hw``       functional Kepler-GPU simulator executing the Fig. 6
                   kernel with transaction counting.
``repro.dist``     simulated-MPI distributed KPM, weighted heterogeneous
                   partitioning, halo exchange, network model, and the
                   cluster scaling model (Fig. 12, Table III).
"""

from repro.core.solver import KPMSolver, DOSResult, LDOSResult
from repro.core.moments import MomentEngine
from repro.physics.hamiltonian import (
    TopologicalInsulatorModel,
    build_topological_insulator,
)
from repro.physics.lattice import Lattice3D
from repro.sparse.csr import CSRMatrix
from repro.sparse.sell import SellMatrix

__version__ = "1.0.0"

__all__ = [
    "KPMSolver",
    "DOSResult",
    "LDOSResult",
    "MomentEngine",
    "TopologicalInsulatorModel",
    "build_topological_insulator",
    "Lattice3D",
    "CSRMatrix",
    "SellMatrix",
    "__version__",
]
