"""GPU timing model: turn counted transactions into predicted runtime.

Bridges the functional simulator (:mod:`repro.hw.gpu`, which counts what
happened) and the architecture model (:mod:`repro.perf.arch`, which says
how fast each resource is). The kernel time is the slowest of

* DRAM transfer time,
* L2 transfer time,
* texture-cache transfer time,
* in-core execution time, derated by SIMT predication losses
  (``GpuRunStats.sm_efficiency``) and occupancy, and
* a latency floor for the shuffle-reduction chain when on-the-fly dot
  products are enabled (paper Fig. 10(c): latency-bound).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.gpu import GpuRunStats
from repro.perf.arch import Architecture
from repro.util.constants import BYTES_PER_GB


@dataclass(frozen=True)
class GpuTimingModel:
    """Tunable latency/occupancy parameters of the timing estimate."""

    #: Cycles of latency per shuffle instruction that cannot be hidden
    #: when the reduction chain serializes a warp.
    shuffle_latency_cycles: float = 10.0
    #: Fraction of peak issue rate reachable at full occupancy.
    issue_efficiency: float = 0.85
    #: Active warps required per SMX to hide memory latency fully;
    #: fewer warps scale the memory times up.
    warps_to_hide_latency: int = 16

    def occupancy_factor(self, stats: GpuRunStats, arch: Architecture) -> float:
        """< 1 when too few warps run per SMX to hide latency."""
        if stats.warps <= 0:
            return 1.0
        warps_per_smx = stats.warps / arch.cores
        return min(1.0, warps_per_smx / self.warps_to_hide_latency)

    def estimate(self, stats: GpuRunStats, arch: Architecture) -> dict[str, float]:
        """Per-component and total predicted times in seconds."""
        if arch.kind != "gpu":
            raise ValueError(f"{arch.name} is not a GPU")
        hide = max(self.occupancy_factor(stats, arch), 1e-3)
        t_dram = stats.dram_bytes / (arch.bandwidth_gbs * BYTES_PER_GB) / hide
        t_l2 = stats.l2_bytes / (arch.llc_bandwidth_gbs * BYTES_PER_GB) / hide
        t_tex = stats.tex_bytes / (
            max(arch.tex_bandwidth_gbs, 1e-9) * BYTES_PER_GB
        ) / hide
        flop_rate = arch.peak_gflops * 1e9 * self.issue_efficiency
        # predication: issued lane-steps include the inactive ones
        issued = stats.active_lane_steps + stats.predicated_lane_steps
        work = stats.flops / max(stats.sm_efficiency(), 1e-3) \
            if issued else stats.flops
        t_core = work / flop_rate
        clock_hz = arch.clock_mhz * 1e6
        t_shuffle = (
            stats.shuffle_ops
            * self.shuffle_latency_cycles
            / (arch.cores * clock_hz)
            / hide
        )
        total = max(t_dram, t_l2, t_tex, t_core) + t_shuffle
        return {
            "dram": t_dram,
            "l2": t_l2,
            "tex": t_tex,
            "core": t_core,
            "shuffle": t_shuffle,
            "total": total,
            "occupancy": hide,
        }

    def gflops(self, stats: GpuRunStats, arch: Architecture) -> float:
        """Predicted sustained Gflop/s of the counted kernel run."""
        t = self.estimate(stats, arch)["total"]
        return stats.flops / t / 1e9 if t > 0 else 0.0
