"""Warp-level primitives: shuffle and tree reductions (Kepler semantics).

Kepler introduced shuffle instructions that exchange register values
between the lanes of a warp without shared memory (paper Section IV-C-2:
"this architecture implements shuffle instructions, which enable sharing
values between threads in a warp"). The dot-product reduction uses
``log2(warpSize)`` successive ``shfl_down`` steps (Section IV-C-3).

All functions are vectorized over an arbitrary batch of warps: the input
arrays have shape ``(..., width)`` where the last axis holds the lanes.
"""

from __future__ import annotations

import numpy as np


def _check_width(width: int) -> None:
    if width < 1 or (width & (width - 1)) != 0:
        raise ValueError(f"shuffle width must be a power of two, got {width}")


def shfl_down(values: np.ndarray, delta: int, width: int | None = None) -> np.ndarray:
    """CUDA ``__shfl_down_sync`` semantics on the last axis.

    Lane ``i`` receives the value of lane ``i + delta`` if that lane is
    inside the same ``width``-sized sub-group, otherwise it keeps its own
    value (exactly CUDA's out-of-range behavior).
    """
    values = np.asarray(values)
    lanes = values.shape[-1]
    width = lanes if width is None else width
    _check_width(width)
    if lanes % width != 0:
        raise ValueError(
            f"lane count {lanes} must be a multiple of width {width}"
        )
    if not 0 <= delta:
        raise ValueError(f"delta must be >= 0, got {delta}")
    idx = np.arange(lanes)
    src = idx + delta
    same_group = (src // width) == (idx // width)
    src = np.where(same_group & (src < lanes), src, idx)
    return values[..., src]


def warp_reduce_sum(values: np.ndarray, width: int | None = None) -> np.ndarray:
    """Binary-tree sum over each ``width`` lane group via shfl_down.

    After ``log2(width)`` shuffle steps the first lane of each group holds
    the group sum (CUDA reduction idiom; the other lanes hold partial
    sums). Returns the full lane array — callers read lane 0 of each
    group, mirroring "the full reduction result ... can then be obtained
    from the first thread" (paper Section IV-C-3).
    """
    values = np.asarray(values)
    width = values.shape[-1] if width is None else width
    _check_width(width)
    out = values
    delta = width // 2
    while delta >= 1:
        out = out + shfl_down(out, delta, width)
        delta //= 2
    return out


def reduction_steps(width: int) -> int:
    """Number of shuffle steps for a width-wide reduction: log2(width)."""
    _check_width(width)
    return int(width).bit_length() - 1
