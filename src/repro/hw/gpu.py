"""Functional Kepler-GPU device model with transaction counting.

:class:`KeplerGpu` executes the paper's Fig. 6 kernel faithfully at the
warp level:

1. **SpMMV phase** — warps are arranged along block-vector rows: a warp
   of 32 threads covers ``32/R`` consecutive matrix rows x R block
   columns. Vector gathers are coalesced per row (R contiguous values);
   matrix entries are broadcast to the R lanes of their row through the
   read-only (texture) cache.
2. **Warp re-indexing** — lanes are logically transposed so the values
   belonging to one block column become contiguous ("no data actually
   gets transposed but merely the indexing changes", Section IV-C-2).
3. **Dot products** — each lane forms its local products, then
   ``log2``-step shuffle reductions produce per-warp partials; a
   deterministic block/global reduction (the CUB stand-in) finishes.

Per-memory-level transactions are counted during execution: texture
(matrix broadcasts), L2 (index stream, vector gathers and streams), and
DRAM (misses of an LRU model of the small Kepler L2). These counts
validate the analytic traffic model of :mod:`repro.perf.traffic` at
small scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.warp import reduction_steps, warp_reduce_sum
from repro.perf.arch import Architecture, K20M
from repro.perf.cachesim import LRUCache
from repro.sparse.csr import CSRMatrix
from repro.util.constants import BYTES_PER_GB, DTYPE, F_ADD, F_MUL, S_D, S_I
from repro.util.errors import SimulationError
from repro.util.validation import check_block_vector


@dataclass(frozen=True)
class GpuLaunchConfig:
    """Kernel launch geometry.

    ``block_dim`` is the paper's maximum (and chosen) 1024 threads;
    ``warp_size`` is 32 on all modern NVIDIA GPUs. The block width R must
    divide the warp size (the implementation is "optimized towards
    relatively large vector blocks", Section IV-C).
    """

    block_dim: int = 1024
    warp_size: int = 32
    #: L2 transaction segment size in bytes.
    l2_segment: int = 32
    #: Texture transaction size in bytes.
    tex_segment: int = 32
    #: L2 cache line size used by the DRAM-side LRU model.
    l2_line: int = 128

    def __post_init__(self) -> None:
        if self.block_dim % self.warp_size != 0:
            raise ValueError("block_dim must be a multiple of warp_size")
        if self.warp_size < 1:
            raise ValueError("warp_size must be >= 1")


@dataclass
class GpuRunStats:
    """Counters accumulated over one kernel execution."""

    warps: int = 0
    blocks: int = 0
    k_steps: int = 0
    active_lane_steps: int = 0
    predicated_lane_steps: int = 0
    shuffle_ops: int = 0
    flops: int = 0
    tex_transactions: int = 0
    tex_bytes: int = 0
    l2_transactions: int = 0
    l2_bytes: int = 0
    dram_bytes: int = 0

    def sm_efficiency(self) -> float:
        """Fraction of lane-steps doing useful work (1 - divergence loss)."""
        total = self.active_lane_steps + self.predicated_lane_steps
        return self.active_lane_steps / total if total else 1.0

    def estimate_time(self, arch: Architecture) -> float:
        """Crude runtime estimate from the counted volumes (seconds)."""
        t_dram = self.dram_bytes / (arch.bandwidth_gbs * BYTES_PER_GB)
        t_l2 = self.l2_bytes / (arch.llc_bandwidth_gbs * BYTES_PER_GB)
        t_tex = self.tex_bytes / (max(arch.tex_bandwidth_gbs, 1e-9) * BYTES_PER_GB)
        t_flop = self.flops / (arch.peak_gflops * 1.0e9)
        return max(t_dram, t_l2, t_tex, t_flop)


class KeplerGpu:
    """Functional SIMT device executing the paper's GPU kernels.

    Parameters
    ----------
    arch:
        Architecture record (defaults to the K20m of the node-level
        study); only the L2 capacity feeds the DRAM model.
    config:
        Launch configuration.
    """

    def __init__(
        self,
        arch: Architecture = K20M,
        config: GpuLaunchConfig = GpuLaunchConfig(),
    ) -> None:
        if arch.kind != "gpu":
            raise ValueError(f"{arch.name} is not a GPU")
        self.arch = arch
        self.config = config

    # ------------------------------------------------------------------
    def _layout(self, n: int, r: int) -> tuple[int, int, int]:
        ws = self.config.warp_size
        if r < 1 or ws % r != 0:
            raise SimulationError(
                f"block width R={r} must divide the warp size {ws}"
            )
        rows_per_warp = ws // r
        n_warps = -(-n // rows_per_warp)
        warps_per_block = self.config.block_dim // ws
        n_blocks = -(-n_warps // warps_per_block)
        return rows_per_warp, n_warps, n_blocks

    # ------------------------------------------------------------------
    def run_aug_spmmv(
        self,
        A: CSRMatrix,
        V: np.ndarray,
        W: np.ndarray,
        a: float,
        b: float,
        *,
        with_dots: bool = True,
        fused_update: bool = True,
    ) -> tuple[np.ndarray | None, np.ndarray | None, GpuRunStats]:
        """Execute one augmented-SpMMV iteration on the simulated device.

        Overwrites ``W`` with ``2 a (A - b 1) V - W`` (or with ``A V``
        when ``fused_update`` is False — the plain SpMMV kernel of paper
        Fig. 10(a)) and returns ``(eta_even, eta_odd, stats)``;
        the etas are None when ``with_dots`` is False (Fig. 10(b)).
        """
        n = A.n_rows
        V = check_block_vector("V", V, n)
        W = check_block_vector("W", W, n, V.shape[1])
        r = V.shape[1]
        cfg = self.config
        rows_per_warp, n_warps, n_blocks = self._layout(n, r)
        ws = cfg.warp_size

        stats = GpuRunStats(warps=n_warps, blocks=n_blocks)
        l2_model = LRUCache(self.arch.llc_bytes, cfg.l2_line)

        # ---- lane geometry, vectorized over all warps ------------------
        lanes = np.arange(n_warps * ws)
        lane_in_warp = lanes % ws
        warp_id = lanes // ws
        row = warp_id * rows_per_warp + lane_in_warp // r
        col = lane_in_warp % r
        lane_active = row < n
        row_safe = np.minimum(row, n - 1)

        row_len = np.zeros(n_warps * rows_per_warp, dtype=np.int64)
        row_len[: n] = A.nnz_per_row
        # per-lane row length (0 for padding rows)
        lane_row_len = np.where(lane_active, row_len[np.minimum(
            row, n_warps * rows_per_warp - 1)], 0)
        row_start = np.zeros_like(row_safe)
        row_start[lane_active] = A.indptr[row_safe[lane_active]]

        # one representative lane per (warp, row): the col==0 lane
        row_lane_mask = col == 0

        acc = np.zeros(n_warps * ws, dtype=DTYPE)
        lmax = int(lane_row_len.max()) if lane_row_len.size else 0

        base_v = (A.nnz * (S_D + S_I) + cfg.l2_line - 1) // cfg.l2_line * cfg.l2_line
        base_w = base_v + n * r * S_D

        gather_seg = max(1, (r * S_D) // cfg.l2_segment)

        for k in range(lmax):
            step_active = lane_active & (k < lane_row_len)
            n_active = int(step_active.sum())
            if n_active == 0:
                break
            stats.k_steps += 1
            stats.active_lane_steps += n_active
            # predication only costs cycles in warps that are scheduled at
            # all (i.e. have at least one active lane at this step)
            per_warp = step_active.reshape(n_warps, ws)
            scheduled = per_warp.any(axis=1)
            stats.predicated_lane_steps += int(
                (~per_warp & scheduled[:, None]).sum()
            )
            ptr = row_start + k
            cidx = np.zeros_like(ptr)
            val = np.zeros(n_warps * ws, dtype=DTYPE)
            sel = step_active
            cidx[sel] = A.indices[ptr[sel]]
            val[sel] = A.data[ptr[sel]]
            x = np.zeros(n_warps * ws, dtype=DTYPE)
            x[sel] = V[cidx[sel], col[sel]]
            acc += val * x
            stats.flops += n_active * (F_ADD + F_MUL)

            # --- transaction accounting per active row ------------------
            row_repr = sel & row_lane_mask
            n_rows_active = int(row_repr.sum())
            # matrix value broadcast via the texture cache: every active
            # lane issues a read request for its row's element; the cache
            # serves all R lanes of a row from one line, but the *request*
            # volume — what nvprof's texture-throughput counter reports,
            # and what the paper observes to "scale linearly with R" —
            # counts each lane.
            stats.tex_transactions += n_active
            stats.tex_bytes += n_active * S_D
            # index load through L2: one segment per active row
            stats.l2_transactions += n_rows_active
            stats.l2_bytes += n_rows_active * cfg.l2_segment
            # coalesced vector gather: ceil(R*S_d / segment) per row
            stats.l2_transactions += n_rows_active * gather_seg
            stats.l2_bytes += n_active * S_D
            # DRAM side: matrix stream is compulsory; gathers through LRU
            stats.dram_bytes += n_rows_active * (S_D + S_I)
            addr = base_v + cidx[row_repr] * (r * S_D)
            before = l2_model.misses
            l2_model.access_bytes(addr, r * S_D)
            stats.dram_bytes += (l2_model.misses - before) * cfg.l2_line

        # ---- fused update and streaming accesses ----------------------
        sel = lane_active
        v_own = np.zeros(n_warps * ws, dtype=DTYPE)
        v_own[sel] = V[row_safe[sel], col[sel]]
        w_own = np.zeros(n_warps * ws, dtype=DTYPE)
        w_own[sel] = W[row_safe[sel], col[sel]]
        if fused_update:
            w_new = 2.0 * a * (acc - b * v_own) - w_own
            stats.flops += int(sel.sum()) * (3 * F_ADD + 3 * F_MUL + F_MUL)
            streams = 3  # read V row, read W row, write W row
        else:
            w_new = acc
            streams = 2  # read V rows (gathered already) + write Y row
        W[row_safe[sel], col[sel]] = w_new[sel]

        n_rows_total = n
        stream_trans = n_rows_total * gather_seg * streams
        stats.l2_transactions += stream_trans
        stats.l2_bytes += n_rows_total * r * S_D * streams
        row_addrs = np.arange(n, dtype=np.int64) * (r * S_D)
        for base in ([base_v, base_w, base_w] if streams == 3 else [base_v, base_w]):
            before = l2_model.misses
            l2_model.access_bytes(base + row_addrs, r * S_D)
            stats.dram_bytes += (l2_model.misses - before) * cfg.l2_line

        if not with_dots:
            return None, None, stats

        # ---- on-the-fly dot products -----------------------------------
        p_even = np.where(sel, np.conj(v_own) * v_own, 0.0)
        p_odd = np.where(sel, np.conj(w_new) * v_own, 0.0)
        stats.flops += int(sel.sum()) * 2 * (F_ADD + F_MUL)

        # warp re-indexing: transpose (rows_per_warp, R) -> (R, rows_per_warp)
        def warp_transpose(p: np.ndarray) -> np.ndarray:
            return (
                p.reshape(n_warps, rows_per_warp, r)
                .transpose(0, 2, 1)
                .reshape(n_warps, r, rows_per_warp)
            )

        eta_even = np.zeros(r, dtype=DTYPE)
        eta_odd = np.zeros(r, dtype=DTYPE)
        for p, eta in ((p_even, eta_even), (p_odd, eta_odd)):
            groups = warp_transpose(p)  # (n_warps, r, rows_per_warp)
            reduced = warp_reduce_sum(groups, rows_per_warp)
            stats.shuffle_ops += n_warps * ws * reduction_steps(rows_per_warp)
            warp_partials = reduced[..., 0]  # lane 0 of each column group
            # block-level then global reduction (CUB stand-in), in order
            wpb = cfg.block_dim // ws
            for blk in range(n_blocks):
                lo, hi = blk * wpb, min((blk + 1) * wpb, n_warps)
                eta += warp_partials[lo:hi].sum(axis=0)
        stats.flops += 2 * n_warps * r * reduction_steps(max(rows_per_warp, 2))
        return eta_even.real.copy(), eta_odd, stats
