"""Functional GPU (SIMT) simulator.

The paper's GPU kernel (Section IV-C, Fig. 6) is the non-trivial piece of
the implementation: warps laid out along block-vector rows for coalesced
vector access, matrix entries broadcast to the lanes of a row through the
read-only (texture) cache, warp re-indexing for the on-the-fly dot
products, and intra-warp shuffle reductions (log2(warpSize) steps).

This subpackage *executes* that kernel functionally — warp by warp, with
predication, shuffle semantics, and per-memory-level transaction counting
— so we can (a) validate the algorithm against the NumPy kernels and
(b) validate the analytic traffic model of :mod:`repro.perf.traffic`
against counted transactions at small scale.
"""

from repro.hw.warp import shfl_down, warp_reduce_sum
from repro.hw.gpu import KeplerGpu, GpuRunStats, GpuLaunchConfig
from repro.hw.timing import GpuTimingModel

__all__ = [
    "shfl_down",
    "warp_reduce_sum",
    "KeplerGpu",
    "GpuRunStats",
    "GpuLaunchConfig",
    "GpuTimingModel",
]
