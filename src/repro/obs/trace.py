"""JSONL span tracing for KPM runs.

One :class:`Trace` owns one append-only JSONL file; each record is a
single closed span (or point event) as a flat JSON object.  The schema
is deliberately minimal and self-describing:

========  ==========================================================
field     meaning
========  ==========================================================
``name``  span name — the kernel or phase (``"aug_spmmv"``,
          ``"halo_exchange"``, ``"checkpoint_save"``, ...)
``dt``    wall-clock duration in seconds
``ts``    absolute wall-clock epoch seconds at record emission
``phase`` optional grouping tag (``"bootstrap"``, ``"moments"``,
          ``"reduce"``, ...)
``bytes`` optional: minimum traffic charged inside the span
``flops`` optional: flops charged inside the span
(rest)    free-form metadata passed by the instrumentation site
========  ==========================================================

The emitter never buffers more than one line, so a crashed run leaves a
readable trace up to the failure point. :func:`read_trace` parses a file
back into the list of records; :func:`aggregate_spans` folds them into
per-name totals (count, wall time, bytes, flops) — the shape the report
tool prints.
"""

from __future__ import annotations

import json
import time
from pathlib import Path


class Trace:
    """Append-only JSONL span emitter (context manager).

    Parameters
    ----------
    path:
        Output file; truncated on open (one trace file per run).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "w", encoding="utf-8")
        self.n_records = 0

    def emit(self, record: dict) -> None:
        """Write one record (a flat JSON-serializable dict) as one line."""
        record = dict(record)
        record.setdefault("ts", time.time())
        self._fh.write(json.dumps(record, separators=(",", ":"), default=float))
        self._fh.write("\n")
        self._fh.flush()
        self.n_records += 1

    def event(self, name: str, **meta) -> None:
        """Emit a zero-duration point event."""
        self.emit({"name": name, "dt": 0.0, **meta})

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "Trace":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_trace(path: str | Path) -> list[dict]:
    """Parse a JSONL trace file back into its list of span records."""
    records = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def aggregate_spans(records: list[dict]) -> dict[str, dict]:
    """Fold span records into per-name totals.

    Returns ``{name: {"count", "seconds", "bytes", "flops"}}`` with
    bytes/flops present only when at least one span carried them.
    """
    agg: dict[str, dict] = {}
    for rec in records:
        name = rec.get("name", "?")
        entry = agg.setdefault(
            name, {"count": 0, "seconds": 0.0, "bytes": 0, "flops": 0}
        )
        entry["count"] += 1
        entry["seconds"] += float(rec.get("dt", 0.0))
        entry["bytes"] += int(rec.get("bytes", 0))
        entry["flops"] += int(rec.get("flops", 0))
    return agg
