"""Structured runtime metrics: named timers, counters, and gauges.

The paper's whole argument is measurement-driven — every model (code
balance Eq. (5)-(7), roofline Eq. (8)-(11), the cluster predictions) is
validated against *measured* traffic and wall time.  This module is the
runtime side of that methodology: a :class:`MetricsRegistry` collects
per-phase wall-clock spans and named counters/gauges while the solver
runs, cheap enough to stay enabled in production paths and free when the
shared no-op default :data:`NULL_METRICS` is used (mirroring
:data:`repro.util.counters.NULL_COUNTERS`).

A span is the unit of instrumentation::

    with metrics.span("aug_spmmv", phase="moments", counters=counters):
        ...  # kernel call

It records wall time into ``timers["aug_spmmv"]`` and, when a *live*
:class:`~repro.util.counters.PerfCounters` is passed, attributes the
bytes/flops charged inside the span to ``counters["bytes.aug_spmmv"]``
and ``counters["flops.aug_spmmv"]`` — so the achieved code balance of
every kernel falls out of one run.  When the registry carries a
:class:`~repro.obs.trace.Trace`, each closed span is additionally
emitted as one JSONL record.

Registries are mergeable (:meth:`MetricsRegistry.merge`, optionally
rank-prefixed) and serializable (:meth:`MetricsRegistry.snapshot` /
:meth:`MetricsRegistry.merge_snapshot`), which is how the multiprocess
engine ships per-worker measurements back through shared memory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass
class TimerStat:
    """Accumulated wall-clock statistics of one named timer."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = 0.0

    def record(self, dt: float) -> None:
        self.count += 1
        self.total += dt
        if dt < self.min:
            self.min = dt
        if dt > self.max:
            self.max = dt

    @property
    def mean(self) -> float:
        """Mean span duration (0.0 when never recorded)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count, "total": self.total,
            "min": self.min, "max": self.max,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TimerStat":
        return cls(
            count=int(d["count"]), total=float(d["total"]),
            min=float(d["min"]), max=float(d["max"]),
        )

    def merge(self, other: "TimerStat") -> "TimerStat":
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self


class _Span:
    """Context manager timing one instrumented region (see ``span()``)."""

    __slots__ = ("_registry", "name", "phase", "meta", "_counters",
                 "_t0", "_bytes0", "_flops0")

    def __init__(self, registry, name, phase, counters, meta) -> None:
        self._registry = registry
        self.name = name
        self.phase = phase
        self.meta = meta
        self._counters = counters

    def note(self, **meta) -> None:
        """Attach extra metadata to this span's trace record."""
        self.meta.update(meta)

    def __enter__(self) -> "_Span":
        c = self._counters
        if c is not None and c.enabled:
            self._bytes0 = c.bytes_total
            self._flops0 = c.flops
        else:
            self._bytes0 = None
            self._flops0 = None
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        dt = time.perf_counter() - self._t0
        self._registry._close_span(self, dt)


class _NullSpan:
    """Shared do-nothing span returned by the disabled registry."""

    __slots__ = ()

    def note(self, **meta) -> None:
        return

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class MetricsRegistry:
    """Named timers, counters, and gauges with span-based timing.

    Parameters
    ----------
    trace:
        Optional :class:`~repro.obs.trace.Trace`; every closed span is
        then also emitted as one JSONL record.
    enabled:
        When False every operation is a no-op (``span`` returns a shared
        null context manager, no dict lookups, no timing calls).
    """

    def __init__(self, trace=None, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self.trace = trace
        self.timers: dict[str, TimerStat] = {}
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.distributions: dict[str, TimerStat] = {}

    # -- recording -----------------------------------------------------
    def span(self, name: str, phase: str | None = None, counters=None, **meta):
        """Open a timed span; use as a context manager.

        ``counters`` may be a live :class:`PerfCounters`; the bytes/flops
        charged to it *inside* the span are attributed to this span (and
        to the ``bytes.<name>`` / ``flops.<name>`` metric counters).
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, phase, counters, meta)

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the named monotonic counter."""
        if self.enabled:
            self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to the most recent value."""
        if self.enabled:
            self.gauges[name] = value

    def timer(self, name: str) -> TimerStat:
        """The named timer's statistics (created empty on first access)."""
        stat = self.timers.get(name)
        if stat is None:
            stat = self.timers[name] = TimerStat()
        return stat

    def observe(self, name: str, value: float) -> None:
        """Record one sample of the named value distribution.

        Distributions carry count/total/min/max/mean like timers but for
        arbitrary measured values — coalescing widths, bytes-per-request,
        queue depths — where a ``gauge`` would forget everything but the
        last sample and a ``count`` would forget the spread.
        """
        if self.enabled:
            self.distribution(name).record(value)

    def distribution(self, name: str) -> TimerStat:
        """The named distribution's stats (created empty on first access)."""
        stat = self.distributions.get(name)
        if stat is None:
            stat = self.distributions[name] = TimerStat()
        return stat

    def _close_span(self, span: _Span, dt: float) -> None:
        self.timer(span.name).record(dt)
        nbytes = nflops = None
        if span._bytes0 is not None:
            c = span._counters
            nbytes = c.bytes_total - span._bytes0
            nflops = c.flops - span._flops0
            self.count(f"bytes.{span.name}", nbytes)
            self.count(f"flops.{span.name}", nflops)
        if self.trace is not None:
            record = {"name": span.name, "dt": dt}
            if span.phase is not None:
                record["phase"] = span.phase
            if nbytes is not None:
                record["bytes"] = nbytes
                record["flops"] = nflops
            if span.meta:
                record.update(span.meta)
            self.trace.emit(record)

    # -- aggregation ---------------------------------------------------
    def merge(self, other: "MetricsRegistry", prefix: str = "") -> "MetricsRegistry":
        """Accumulate ``other`` into ``self``, optionally name-prefixed.

        A non-empty ``prefix`` (e.g. ``"rank2."``) keeps the merged
        entries distinguishable — how per-worker measurements stay
        rank-tagged in the parent.
        """
        return self.merge_snapshot(other.snapshot(), prefix)

    def merge_snapshot(self, snap: dict, prefix: str = "") -> "MetricsRegistry":
        """Accumulate a :meth:`snapshot` dict into ``self`` (see merge)."""
        if not self.enabled:
            return self
        for name, d in snap.get("timers", {}).items():
            self.timer(prefix + name).merge(TimerStat.from_dict(d))
        for name, v in snap.get("counters", {}).items():
            self.count(prefix + name, v)
        for name, v in snap.get("gauges", {}).items():
            self.gauge(prefix + name, v)
        for name, d in snap.get("distributions", {}).items():
            self.distribution(prefix + name).merge(TimerStat.from_dict(d))
        return self

    def snapshot(self) -> dict:
        """JSON-serializable dump of every timer, counter, gauge, and
        distribution."""
        snap = {
            "timers": {k: t.to_dict() for k, t in self.timers.items()},
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
        }
        if self.distributions:
            snap["distributions"] = {
                k: t.to_dict() for k, t in self.distributions.items()
            }
        return snap

    def span_traffic(self, name: str) -> tuple[float | None, float | None]:
        """The (bytes, flops) attributed to the named timer's spans.

        Resolves the rank-prefixed form too: merged timer ``rank0.spmv``
        pairs with counters ``rank0.bytes.spmv`` / ``rank0.flops.spmv``.
        """
        prefix, _, leaf = name.rpartition(".")
        if prefix:
            return (
                self.counters.get(f"{prefix}.bytes.{leaf}"),
                self.counters.get(f"{prefix}.flops.{leaf}"),
            )
        return self.counters.get(f"bytes.{leaf}"), self.counters.get(f"flops.{leaf}")

    def summary(self) -> str:
        """Human-readable multi-line summary, timers sorted by total time."""
        lines = []
        timers = sorted(
            self.timers.items(), key=lambda kv: kv[1].total, reverse=True
        )
        for name, t in timers:
            line = (
                f"{name:>24}: {t.count:>6} x  "
                f"total {t.total * 1e3:10.3f} ms  mean {t.mean * 1e6:9.1f} us"
            )
            nbytes, nflops = self.span_traffic(name)
            if nflops:
                line += f"  {nbytes / nflops:6.3f} B/F"
                if t.total > 0:
                    line += f"  {nflops / t.total / 1e9:7.2f} Gflop/s"
            lines.append(line)
        for name, v in sorted(self.counters.items()):
            if (
                not name.startswith(("bytes.", "flops."))
                and ".bytes." not in name
                and ".flops." not in name
            ):
                lines.append(f"{name:>24}: {v:,.0f}")
        for name, v in sorted(self.gauges.items()):
            lines.append(f"{name:>24}: {v:g}")
        for name, d in sorted(self.distributions.items()):
            lines.append(
                f"{name:>24}: {d.count:>6} x  mean {d.mean:12.2f}  "
                f"min {d.min:g}  max {d.max:g}"
            )
        return "\n".join(lines) if lines else "(no metrics recorded)"


class _NullMetrics(MetricsRegistry):
    """The disabled registry: every operation is a no-op.

    Like ``NULL_COUNTERS`` it is a process-wide shared singleton, so it
    must be impossible to corrupt: ``merge``/``merge_snapshot`` refuse to
    accumulate and attribute assignment raises.
    """

    def __init__(self) -> None:
        super().__init__(enabled=False)
        self._frozen = True

    def __setattr__(self, name: str, value) -> None:
        if getattr(self, "_frozen", False):
            raise AttributeError(
                "NULL_METRICS is a shared immutable sentinel; create a "
                "MetricsRegistry() to record metrics"
            )
        super().__setattr__(name, value)

    def span(self, name, phase=None, counters=None, **meta):
        return _NULL_SPAN

    def count(self, name, value=1) -> None:
        return

    def gauge(self, name, value) -> None:
        return

    def observe(self, name, value) -> None:
        return

    def merge_snapshot(self, snap, prefix="") -> "MetricsRegistry":
        return self


#: Shared no-op registry used as the default everywhere.
NULL_METRICS = _NullMetrics()

#: Process-wide registry for rare runtime health events that happen
#: outside any per-run registry — backend compile failures, quarantines,
#: fallback decisions.  Always enabled (the events are rare enough that
#: the cost is irrelevant); callers wanting these events in a run report
#: merge it into their own registry.
GLOBAL_METRICS = MetricsRegistry()
