"""Runtime observability: structured metrics and span tracing.

The measurement side of the paper's methodology at runtime — wall-clock
spans, byte/flop attribution per kernel, JSONL traces — with a free
no-op default so the hot paths stay uninstrumented unless asked.

See :mod:`repro.obs.metrics` and :mod:`repro.obs.trace`; the validation
side (measured vs. analytic model) lives in :mod:`repro.perf.report`
and ``tools/check_metrics.py``.
"""

from repro.obs.metrics import GLOBAL_METRICS, NULL_METRICS, MetricsRegistry, TimerStat
from repro.obs.trace import Trace, aggregate_spans, read_trace

__all__ = [
    "GLOBAL_METRICS",
    "NULL_METRICS",
    "MetricsRegistry",
    "TimerStat",
    "Trace",
    "aggregate_spans",
    "read_trace",
]
